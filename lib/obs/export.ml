(** Export of scraped metrics as JSONL and Prometheus text, and of trace
    rings as Chrome trace-event JSON.

    An exporter owns a filename prefix.  Each [scrape] appends one JSON
    line (a timestamped snapshot of every metric) to [prefix.metrics.jsonl]
    and atomically rewrites [prefix.prom] with the Prometheus text
    exposition of the same snapshot; [close] takes a final scrape and, if
    tracing was enabled, writes [prefix.trace.json].  Periodic driving is
    the caller's business: the analyzer driver arms a [Timer_mgr] timer
    that calls [scrape] at the configured interval (this module must not
    depend on [hilti_rt], which it instruments). *)

(** Write [content] to [path] atomically: temp file in the same directory,
    then rename.  An interrupted run can never leave a truncated file. *)
let write_file_atomic path content =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
  let oc = open_out tmp in
  let ok =
    try
      output_string oc content;
      close_out oc;
      true
    with e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e
  in
  ignore ok;
  Sys.rename tmp path

let json_escape = Trace.json_escape

let json_of_sample (s : Metrics.sample) =
  let label =
    match s.s_label with
    | None -> ""
    | Some (k, v) -> Printf.sprintf {|,"label":{"%s":"%s"}|} (json_escape k) (json_escape v)
  in
  match s.s_value with
  | Metrics.V_counter v ->
      Printf.sprintf {|{"name":"%s","type":"counter","value":%d%s}|}
        (json_escape s.s_name) v label
  | Metrics.V_gauge v ->
      Printf.sprintf {|{"name":"%s","type":"gauge","value":%g%s}|}
        (json_escape s.s_name) v label
  | Metrics.V_histogram h ->
      let b = Buffer.create 128 in
      Array.iteri
        (fun i n ->
          if n > 0 then begin
            if Buffer.length b > 0 then Buffer.add_char b ',';
            Buffer.add_string b (Printf.sprintf {|"%s":%d|} (Metrics.bucket_le i) n)
          end)
        h.Metrics.buckets;
      Printf.sprintf
        {|{"name":"%s","type":"histogram","count":%d,"sum":%d,"buckets":{%s}%s}|}
        (json_escape s.s_name) h.Metrics.count h.Metrics.sum (Buffer.contents b)
        label

(** One scrape rendered as a single JSON line: timestamp + samples. *)
let jsonl_line ~ts_ns samples =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf {|{"ts_ns":%Ld,"metrics":[|} ts_ns);
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (json_of_sample s))
    samples;
  Buffer.add_string b "]}\n";
  Buffer.contents b

let prom_label = function
  | None -> ""
  | Some (k, v) -> Printf.sprintf "{%s=\"%s\"}" k (String.escaped v)

let prom_label_with extra = function
  | None -> Printf.sprintf "{%s}" extra
  | Some (k, v) -> Printf.sprintf "{%s=\"%s\",%s}" k (String.escaped v) extra

(** Prometheus text exposition of one scrape.  HELP/TYPE headers are
    emitted once per metric family, histograms as cumulative
    [_bucket{le=...}] plus [_sum] and [_count]. *)
let prometheus_text samples =
  let b = Buffer.create 2048 in
  let seen_header = Hashtbl.create 16 in
  let header name help ty =
    if not (Hashtbl.mem seen_header name) then begin
      Hashtbl.add seen_header name ();
      if help <> "" then Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name ty)
    end
  in
  List.iter
    (fun (s : Metrics.sample) ->
      match s.s_value with
      | Metrics.V_counter v ->
          header s.s_name s.s_help "counter";
          Buffer.add_string b
            (Printf.sprintf "%s%s %d\n" s.s_name (prom_label s.s_label) v)
      | Metrics.V_gauge v ->
          header s.s_name s.s_help "gauge";
          Buffer.add_string b
            (Printf.sprintf "%s%s %g\n" s.s_name (prom_label s.s_label) v)
      | Metrics.V_histogram h ->
          header s.s_name s.s_help "histogram";
          let cum = ref 0 in
          Array.iteri
            (fun i n ->
              cum := !cum + n;
              (* Collapse empty interior buckets; always emit +Inf. *)
              if n > 0 || i = Metrics.nbuckets - 1 then
                Buffer.add_string b
                  (Printf.sprintf "%s_bucket%s %d\n" s.s_name
                     (prom_label_with
                        (Printf.sprintf "le=\"%s\"" (Metrics.bucket_le i))
                        s.s_label)
                     !cum))
            h.Metrics.buckets;
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %d\n" s.s_name (prom_label s.s_label)
               h.Metrics.sum);
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %d\n" s.s_name (prom_label s.s_label)
               h.Metrics.count))
    samples;
  Buffer.contents b

type t = {
  prefix : string;
  jsonl : out_channel;
  mutable scrapes : int;
  mutable closed : bool;
}

(** Create an exporter writing [prefix.metrics.jsonl] (truncated) and,
    on each scrape, [prefix.prom]. *)
let create ~prefix =
  { prefix; jsonl = open_out (prefix ^ ".metrics.jsonl"); scrapes = 0; closed = false }

(** Snapshot the registry now: append a JSONL line, rewrite the .prom
    file atomically. *)
let scrape ?ts_ns t =
  if not t.closed then begin
    let ts_ns =
      match ts_ns with Some ts -> ts | None -> Trace.monotonic_ns ()
    in
    let samples = Metrics.scrape () in
    output_string t.jsonl (jsonl_line ~ts_ns samples);
    flush t.jsonl;
    write_file_atomic (t.prefix ^ ".prom") (prometheus_text samples);
    t.scrapes <- t.scrapes + 1
  end

(** Final scrape, then close.  Writes [prefix.trace.json] when tracing
    captured any events. *)
let close ?ts_ns t =
  if not t.closed then begin
    scrape ?ts_ns t;
    t.closed <- true;
    close_out t.jsonl;
    if Trace.events () <> [] then
      write_file_atomic (t.prefix ^ ".trace.json") (Trace.to_chrome_json ())
  end
