(** Domain-safe metrics: counters, gauges, and log-scale histograms (§3.3).

    The paper's runtime treats measurement as part of the abstract machine
    (profilers with periodic dumps to disk); this module supplies the
    counters and distributions the profilers lack, instrumenting the whole
    pipeline — packet I/O, flow state, VM dispatch, the domain pool — with
    exact (never sampled) values.

    {2 Sharding}

    Counters and histograms are sharded per OCaml domain exactly like
    {!Hilti_rt.Profiler}'s cycle counters: each domain owns a private shard
    reached through domain-local storage, so a hot-path increment is a
    deref + store with no synchronisation, and the global value is the sum
    over all registered shards, taken at scrape time.  Shards of terminated
    domains stay registered, so nothing is lost.  Gauges are a single
    [Atomic] cell (they track levels, not flows, and are updated at coarse
    points such as queue submit/take).

    {2 Enablement}

    All recording operations are gated on a global flag, off by default:
    with observability disabled the fast path is one load + branch and
    never allocates.  Scraping works regardless (it just sees zeros). *)

(* The global enable flag.  A plain ref read is race-benign: the flag is
   flipped before a run starts, and OCaml guarantees no tearing.  Exposed
   directly so per-instruction gating in the VM is a single load. *)
let on = ref false

let set_enabled b = on := b
let enabled () = !on

(** Run [f] with recording forced to [b], restoring the previous state
    afterwards (tests and the overhead benchmark). *)
let with_enabled b f =
  let saved = !on in
  on := b;
  Fun.protect ~finally:(fun () -> on := saved) f

(* ---- Counters --------------------------------------------------------------------- *)

type counter = {
  c_name : string;
  c_help : string;
  c_label : (string * string) option;
  c_lock : Mutex.t;
  c_shards : int ref list ref;  (* one per domain that ever touched it *)
  c_key : int ref Domain.DLS.key;
}

let make_counter name help label =
  let lock = Mutex.create () in
  let shards = ref [] in
  {
    c_name = name;
    c_help = help;
    c_label = label;
    c_lock = lock;
    c_shards = shards;
    c_key =
      (* First access from a domain creates and registers its shard. *)
      Domain.DLS.new_key (fun () ->
          let r = ref 0 in
          Mutex.protect lock (fun () -> shards := r :: !shards);
          r);
  }

(** Add [n] to the counter.  When metrics are disabled this is a load and
    a branch; when enabled, a domain-local deref + store. *)
let add c n =
  if !on then begin
    let r = Domain.DLS.get c.c_key in
    r := !r + n
  end

let incr c = add c 1

(** Current value: the sum over all domains' shards (exact). *)
let counter_value c =
  Mutex.protect c.c_lock (fun () ->
      List.fold_left (fun acc r -> acc + !r) 0 !(c.c_shards))

(* ---- Histograms ------------------------------------------------------------------- *)

(** Number of log-scale buckets.  Bucket 0 holds values [<= 0]; bucket [j]
    ([1 <= j < nbuckets-1]) holds values in [\[2^(j-1), 2^j)]; the last
    bucket holds everything larger. *)
let nbuckets = 32

type hsnapshot = { buckets : int array; sum : int; count : int }

type hshard = {
  hs_buckets : int array;
  mutable hs_sum : int;
  mutable hs_count : int;
}

type histogram = {
  h_name : string;
  h_help : string;
  h_label : (string * string) option;
  h_lock : Mutex.t;
  h_shards : hshard list ref;
  h_key : hshard Domain.DLS.key;
}

let bucket_of v =
  if v <= 0 then 0
  else begin
    (* Index of the highest set bit, plus one: 1 -> 1, 2..3 -> 2, ... *)
    let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
    Stdlib.min (nbuckets - 1) (bits 0 v)
  end

(** Inclusive upper bound of bucket [j], as the Prometheus [le] label. *)
let bucket_le j =
  if j >= nbuckets - 1 then "+Inf"
  else if j = 0 then "0"
  else string_of_int ((1 lsl j) - 1)

let make_histogram name help label =
  let lock = Mutex.create () in
  let shards = ref [] in
  {
    h_name = name;
    h_help = help;
    h_label = label;
    h_lock = lock;
    h_shards = shards;
    h_key =
      Domain.DLS.new_key (fun () ->
          let s = { hs_buckets = Array.make nbuckets 0; hs_sum = 0; hs_count = 0 } in
          Mutex.protect lock (fun () -> shards := s :: !shards);
          s);
  }

(** Record one observation (no allocation; domain-local array update). *)
let observe h v =
  if !on then begin
    let s = Domain.DLS.get h.h_key in
    let b = bucket_of v in
    s.hs_buckets.(b) <- s.hs_buckets.(b) + 1;
    s.hs_sum <- s.hs_sum + v;
    s.hs_count <- s.hs_count + 1
  end

let empty_hsnapshot () = { buckets = Array.make nbuckets 0; sum = 0; count = 0 }

(** Merge two snapshots (element-wise sum — associative and commutative,
    which is what makes per-domain sharding exact). *)
let hmerge a b =
  {
    buckets = Array.init nbuckets (fun i -> a.buckets.(i) + b.buckets.(i));
    sum = a.sum + b.sum;
    count = a.count + b.count;
  }

(** Build a snapshot from raw observations without touching the registry
    (the associativity tests use this). *)
let hsnapshot_of_list vs =
  let buckets = Array.make nbuckets 0 in
  let sum = ref 0 and count = ref 0 in
  List.iter
    (fun v ->
      buckets.(bucket_of v) <- buckets.(bucket_of v) + 1;
      sum := !sum + v;
      Stdlib.incr count)
    vs;
  { buckets; sum = !sum; count = !count }

(** Current distribution: the merge over all domains' shards. *)
let histogram_snapshot h =
  Mutex.protect h.h_lock (fun () ->
      List.fold_left
        (fun acc s ->
          hmerge acc
            { buckets = Array.copy s.hs_buckets; sum = s.hs_sum; count = s.hs_count })
        (empty_hsnapshot ()) !(h.h_shards))

(* ---- Gauges ----------------------------------------------------------------------- *)

type gauge = {
  g_name : string;
  g_help : string;
  g_label : (string * string) option;
  g_cell : int Atomic.t;
}

let gauge_set g v = if !on then Atomic.set g.g_cell v
let gauge_add g n = if !on then ignore (Atomic.fetch_and_add g.g_cell n)
let gauge_incr g = gauge_add g 1
let gauge_decr g = gauge_add g (-1)
let gauge_value g = Atomic.get g.g_cell

(* ---- Registry --------------------------------------------------------------------- *)

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let registry_lock = Mutex.create ()
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let key_of name label =
  match label with
  | None -> name
  | Some (k, v) -> Printf.sprintf "%s{%s=%s}" name k v

let register name label mk classify =
  let key = key_of name label in
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt registry key with
      | Some m -> (
          match classify m with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf "Metrics: %s re-registered with a different kind" key))
      | None ->
          let v, m = mk () in
          Hashtbl.add registry key m;
          v)

(** Create (or fetch) the counter [name].  Registration is idempotent:
    the same name + label yields the same counter. *)
let counter ?(help = "") ?label name =
  register name label
    (fun () ->
      let c = make_counter name help label in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)

(** Create (or fetch) the gauge [name]. *)
let gauge ?(help = "") ?label name =
  register name label
    (fun () ->
      let g =
        { g_name = name; g_help = help; g_label = label; g_cell = Atomic.make 0 }
      in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)

(** Create (or fetch) the histogram [name]. *)
let histogram ?(help = "") ?label name =
  register name label
    (fun () ->
      let h = make_histogram name help label in
      (h, Histogram h))
    (function Histogram h -> Some h | _ -> None)

(* ---- Scraping --------------------------------------------------------------------- *)

(** One scraped value.  Collectors (e.g. the profiler bridge) may also
    produce samples without owning a registered metric. *)
type value = V_counter of int | V_gauge of float | V_histogram of hsnapshot

type sample = {
  s_name : string;
  s_help : string;
  s_label : (string * string) option;
  s_value : value;
}

let collectors : (unit -> sample list) list ref = ref []

(** Register a callback contributing extra samples to every scrape
    (used by {!Hilti_rt.Profiler} to expose its totals). *)
let register_collector f = collectors := f :: !collectors

let sample_of_metric = function
  | Counter c ->
      {
        s_name = c.c_name;
        s_help = c.c_help;
        s_label = c.c_label;
        s_value = V_counter (counter_value c);
      }
  | Gauge g ->
      {
        s_name = g.g_name;
        s_help = g.g_help;
        s_label = g.g_label;
        s_value = V_gauge (float_of_int (gauge_value g));
      }
  | Histogram h ->
      {
        s_name = h.h_name;
        s_help = h.h_help;
        s_label = h.h_label;
        s_value = V_histogram (histogram_snapshot h);
      }

(** Scrape every registered metric plus all collector contributions,
    sorted by (name, label) for deterministic output. *)
let scrape () =
  let own =
    Mutex.protect registry_lock (fun () ->
        Hashtbl.fold (fun _ m acc -> m :: acc) registry [])
  in
  let samples =
    List.map sample_of_metric own
    @ List.concat_map (fun f -> f ()) !collectors
  in
  List.sort
    (fun a b ->
      match compare a.s_name b.s_name with 0 -> compare a.s_label b.s_label | c -> c)
    samples

(** Zero every registered metric (shards included).  Collectors are not
    touched — reset their owners separately. *)
let reset () =
  let metrics =
    Mutex.protect registry_lock (fun () ->
        Hashtbl.fold (fun _ m acc -> m :: acc) registry [])
  in
  List.iter
    (function
      | Counter c ->
          Mutex.protect c.c_lock (fun () ->
              List.iter (fun r -> r := 0) !(c.c_shards))
      | Gauge g -> Atomic.set g.g_cell 0
      | Histogram h ->
          Mutex.protect h.h_lock (fun () ->
              List.iter
                (fun s ->
                  Array.fill s.hs_buckets 0 nbuckets 0;
                  s.hs_sum <- 0;
                  s.hs_count <- 0)
                !(h.h_shards)))
    metrics

(** Find a scraped counter value by name (testing convenience). *)
let find_counter samples name =
  List.find_map
    (fun s ->
      match s.s_value with
      | V_counter v when s.s_name = name && s.s_label = None -> Some v
      | _ -> None)
    samples
