(** Lightweight trace spans and instant events with bounded per-domain rings.

    Each domain appends completed spans into its own fixed-capacity ring
    buffer (no locking on the hot path beyond the ring's own writes); when
    a ring is full the oldest events are overwritten and a drop count is
    kept.  [events] merges all rings into a time-sorted list, and
    [to_chrome_json] renders the Chrome trace-event array format that
    chrome://tracing and Perfetto load directly. *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : char;  (* 'X' = complete span, 'i' = instant *)
  ev_ts : int64;  (* start, ns *)
  ev_dur : int64;  (* span duration, ns; 0 for instants *)
  ev_dom : int;  (* Domain.self at record time *)
}

type ring = {
  buf : event option array;
  mutable head : int;  (* next write position *)
  mutable count : int;  (* total events ever written *)
}

(** Per-domain ring capacity.  8192 spans per domain keeps the tail of a
    long run while bounding memory at a few hundred KiB per domain. *)
let capacity = 8192

let on = ref false

let set_enabled b = on := b
let enabled () = !on

let rings_lock = Mutex.create ()
let rings : ring list ref = ref []

let ring_key : ring Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let r = { buf = Array.make capacity None; head = 0; count = 0 } in
      Mutex.protect rings_lock (fun () -> rings := r :: !rings);
      r)

let monotonic_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let push ev =
  let r = Domain.DLS.get ring_key in
  r.buf.(r.head) <- Some ev;
  r.head <- (r.head + 1) mod capacity;
  r.count <- r.count + 1

(** Record an instant event (a point in time, no duration). *)
let instant ?(cat = "rt") name =
  if !on then
    push
      {
        ev_name = name;
        ev_cat = cat;
        ev_ph = 'i';
        ev_ts = monotonic_ns ();
        ev_dur = 0L;
        ev_dom = (Domain.self () :> int);
      }

(** Run [f] inside a named span.  When tracing is disabled this is just
    [f ()] — one load and a branch of overhead. *)
let with_span ?(cat = "rt") name f =
  if not !on then f ()
  else begin
    let t0 = monotonic_ns () in
    Fun.protect f ~finally:(fun () ->
        push
          {
            ev_name = name;
            ev_cat = cat;
            ev_ph = 'X';
            ev_ts = t0;
            ev_dur = Int64.sub (monotonic_ns ()) t0;
            ev_dom = (Domain.self () :> int);
          })
  end

(** Number of events overwritten because a ring wrapped. *)
let dropped () =
  Mutex.protect rings_lock (fun () ->
      List.fold_left
        (fun acc r -> acc + Stdlib.max 0 (r.count - capacity))
        0 !rings)

(** All retained events, merged across domains and sorted by start time. *)
let events () =
  let all =
    Mutex.protect rings_lock (fun () ->
        List.concat_map
          (fun r -> Array.to_list r.buf |> List.filter_map Fun.id)
          !rings)
  in
  List.sort (fun a b -> Int64.compare a.ev_ts b.ev_ts) all

let reset () =
  Mutex.protect rings_lock (fun () ->
      List.iter
        (fun r ->
          Array.fill r.buf 0 capacity None;
          r.head <- 0;
          r.count <- 0)
        !rings)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(** Render the retained events as a Chrome trace-event JSON array.
    Timestamps and durations are microseconds (the format's unit); the
    recording domain becomes the [tid]. *)
let to_chrome_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string b ",\n";
      let us ns = Int64.to_float ns /. 1e3 in
      match ev.ev_ph with
      | 'X' ->
          Buffer.add_string b
            (Printf.sprintf
               {|{"name":"%s","cat":"%s","ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":%d}|}
               (json_escape ev.ev_name) (json_escape ev.ev_cat) (us ev.ev_ts)
               (us ev.ev_dur) ev.ev_dom)
      | _ ->
          Buffer.add_string b
            (Printf.sprintf
               {|{"name":"%s","cat":"%s","ph":"i","ts":%.3f,"s":"t","pid":1,"tid":%d}|}
               (json_escape ev.ev_name) (json_escape ev.ev_cat) (us ev.ev_ts)
               ev.ev_dom))
    (events ());
  Buffer.add_string b "]\n";
  Buffer.contents b
