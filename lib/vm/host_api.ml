(** The host application API (§3.4).

    Wraps the full toolchain — validate, link, optimize, lower — and the
    execution context behind the interface a host application sees:
    call exported functions ("C stubs"), register host-side functions that
    HILTI code can call out to, drive suspendable parse functions through
    fibers, exchange values, and run the virtual-thread scheduler. *)

type t = {
  ctx : Vm.context;
  opt_stats : Hilti_passes.Pipeline.stats option;
  linked : Module_ir.t;
}

exception Compile_error of string list

(** Compile a set of modules into an execution environment.

    @param optimize run the HILTI-level optimization pipeline (default on)
    @param validate reject invalid IR (default on)
    @param verify run the bytecode verifier after lowering (default on);
      on success the VM uses the fast dispatch loop that skips the checks
      the verifier discharged
    @param specialize rewrite verified bytecode onto unboxed int/float
      register banks and fuse hot instruction pairs (default on; effective
      only together with [verify], whose typing export drives the bank
      assignment)
    @param frame_reuse run the interprocedural summary analysis
      ({!Summary.license_frame_reuse}) and let the VM recycle a per-worker
      arena frame for every function the analysis proves safe (default on;
      effective only together with [verify] — the reuse contract leans on
      the verifier's defined-before-use proof) *)
let compile ?(optimize = true) ?(validate = true) ?(verify = true)
    ?(specialize = true) ?(frame_reuse = true) (modules : Module_ir.t list) : t =
  let linked = Hilti_passes.Linker.link modules in
  (* Validation runs on the linked unit, where cross-module references
     (functions, hooks, globals) are all visible. *)
  if validate then begin
    match Validate.check_module linked with
    | [] -> ()
    | errors -> raise (Compile_error errors)
  end;
  let opt_stats =
    if optimize then Some (Hilti_passes.Pipeline.optimize linked) else None
  in
  let program = Lower.lower_module linked in
  if verify then begin
    (try ignore (Verify.verify_exn program)
     with Verify.Verify_error errors -> raise (Compile_error errors));
    if specialize then ignore (Specialize.specialize program);
    if frame_reuse then ignore (Summary.license_frame_reuse program)
  end;
  let ctx = Vm.create program in
  (* The standard library surface host applications always get. *)
  Vm.register_host ctx "Hilti::print" (fun c args ->
      c.Vm.debug_sink (String.concat ", " (List.map Value.to_string args));
      Value.Null);
  Vm.register_host ctx "Hilti::abort" (fun _ _ ->
      raise (Value.hilti_exception "Hilti::Abort" Value.Null));
  { ctx; opt_stats; linked }

(** Redirect [Hilti::print] / [debug.msg] output (e.g. into a buffer). *)
let set_output t sink = t.ctx.Vm.debug_sink <- sink

(** Register a host ("C") function callable from HILTI code. *)
let register t name fn = Vm.register_host t.ctx name (fun _ args -> fn args)

(** Register a host function that also receives the VM context. *)
let register_ctx t name fn = Vm.register_host t.ctx name fn

(** Call an exported HILTI function synchronously. *)
let call t name args = Vm.call t.ctx name args

(** Run a hook by name. *)
let run_hook t name args = Vm.run_hook t.ctx name args

(** Abstract-cycle counter (the PAPI stand-in). *)
let cycles t = Vm.instr_count t.ctx

(** Hang guard: after [n] more retired instructions any dispatch loop
    raises [Vm.Step_budget_exceeded] (a raw OCaml exception that generated
    try-handlers cannot catch).  [clear_step_budget] turns it off. *)
let set_step_budget t n = t.ctx.Vm.step_kill <- t.ctx.Vm.instr_count + n

let clear_step_budget t = t.ctx.Vm.step_kill <- max_int

(* ---- Fibers: incremental processing entry points -------------------------- *)

type parse_run = {
  fiber : Value.t Hilti_rt.Fiber.t;
  mutable outcome : Value.t Hilti_rt.Fiber.outcome option;
}

(** Start [name] inside a fresh fiber.  The call runs until it returns,
    fails, or suspends waiting for input (any blocking operation). *)
let call_fiber t name args : parse_run =
  let fiber = Hilti_rt.Fiber.create (fun () -> Vm.call t.ctx name args) in
  let run = { fiber; outcome = None } in
  run.outcome <- Some (Hilti_rt.Fiber.resume fiber);
  run

(** Resume a suspended run (after appending more input to the bytes object
    the parser is reading). *)
let resume (run : parse_run) =
  match run.outcome with
  | Some Hilti_rt.Fiber.Suspended ->
      run.outcome <- Some (Hilti_rt.Fiber.resume run.fiber);
      run.outcome
  | other -> other

let outcome (run : parse_run) = run.outcome

let finished (run : parse_run) =
  match run.outcome with
  | Some (Hilti_rt.Fiber.Done _) | Some (Hilti_rt.Fiber.Failed _) -> true
  | _ -> false

(** Result value, once finished.  Raises the fiber's failure if it failed. *)
let result_exn (run : parse_run) =
  match run.outcome with
  | Some (Hilti_rt.Fiber.Done v) -> v
  | Some (Hilti_rt.Fiber.Failed e) -> raise e
  | _ -> invalid_arg "Host_api.result_exn: still suspended"

let cancel (run : parse_run) = Hilti_rt.Fiber.cancel run.fiber

(* ---- Threads ---------------------------------------------------------------- *)

(** Schedule an asynchronous invocation of a HILTI function on virtual
    thread [tid] ([thread.schedule] from the host side).  Arguments are
    deep-copied, preserving the isolation model of §3.2. *)
let schedule t tid name args =
  match Bytecode.find_func t.ctx.Vm.program name with
  | Some idx ->
      (* Copy at schedule time, as [thread.schedule] does: the sender can
         keep mutating its own data afterwards. *)
      let args = List.map Value.deep_copy args in
      Vm.schedule_job t.ctx tid idx args
  | None -> raise (Vm.Runtime_error ("unknown function " ^ name))

(** Schedule an arbitrary host-side closure on virtual thread [tid].  Under
    [Hilti_par] it runs on whichever domain owns the thread; [fn] receives
    that domain's execution context with [current_thread] set to [tid]. *)
let schedule_host t tid ~label fn =
  Hilti_rt.Scheduler.schedule t.ctx.Vm.scheduler tid ~label (fun () ->
      let ctx = Vm.exec_context t.ctx in
      let saved = ctx.Vm.current_thread in
      ctx.Vm.current_thread <- tid;
      Fun.protect
        ~finally:(fun () -> ctx.Vm.current_thread <- saved)
        (fun () -> fn ctx))

(** The virtual thread currently executing (for host callbacks). *)
let current_thread t = (Vm.exec_context t.ctx).Vm.current_thread

(** Drain all scheduled virtual-thread jobs. *)
let run_scheduler t = Vm.run_scheduler t.ctx

(** Advance trace time across every virtual thread's timer manager. *)
let advance_time t time = Vm.advance_time t.ctx time

let scheduler_stats t = Hilti_rt.Scheduler.stats t.ctx.Vm.scheduler

(** Static size of the lowered program, for reporting. *)
let code_size t = Bytecode.code_size t.ctx.Vm.program
