(** Register-bank specialization: rewrite verified bytecode onto unboxed
    int/float register banks and fuse hot instruction pairs.

    This is the stage between {!Lower} and execution that the HILTI paper
    leaves to LLVM: keeping scalar locals out of boxed heap values.  We
    partition each function's frame three ways, driven by the verifier's
    exported per-register type join ({!Bytecode.func.typing}):

    - registers whose every definition is provably [Int] move to a flat
      unboxed int bank (a [Bytes.t], 8 bytes per slot, accessed with the
      unboxing-aware [get/set_int64_ne] primitives);
    - registers provably [Double] move to a [float array] bank;
    - everything else stays in the boxed {!Value.t} frame.

    Arithmetic and comparisons over banked registers are re-emitted as
    type-specialized opcodes ([IArith_u], [FCmp_u], ...) that read and
    write the banks directly — no argument array, no [Value] allocation,
    no primitive dispatch.  Boxing/unboxing bridges ([BoxI]/[UnboxI]/...)
    are inserted only where a banked register crosses into generic code
    (calls, globals, container ops), and {!Hilti_obs} counts every
    crossing under [vm_regbank_transfers].

    The invariant that makes staleness safe: for a banked {e written}
    register the bank is authoritative and the boxed slot is a shadow
    refreshed by a [Box*] bridge immediately before every generic read;
    for a banked constant-pool register (never written, entry-initialized)
    the boxed default stays valid forever, so it needs no bridges at all
    and its value can be folded into [*K_u] immediate forms.

    After expansion, a peephole pass (the generic engine in
    {!Hilti_passes.Peephole}) fuses the pairs that dominate the
    per-opcode-group retirement counters on the firewall/DNS workloads:
    compare+branch, arith+move, and the increment+jump loop backedge.
    Fusion iterates to a fixpoint so [arith; mov; jump] latches cascade
    into a single [IIncrJ_u]. *)

open Bytecode

type stats = {
  mutable s_funcs : int;       (** functions rewritten *)
  mutable s_int_regs : int;    (** registers moved to the int bank *)
  mutable s_float_regs : int;  (** registers moved to the float bank *)
  mutable s_bridges : int;     (** static box/unbox bridge sites emitted *)
  mutable s_fused : int;       (** instruction pairs fused *)
}

(* ---- Instruction shape helpers -------------------------------------------- *)

(* Registers an instruction reads from the boxed frame.  Specialized
   opcodes read banks, not the frame — except the unbox bridges, whose
   source is a boxed register. *)
let boxed_reads (i : instr) : int list =
  match i with
  | Mov (_, s) | StoreGlobal (_, s) | Throw s | UnboxI (_, s) | UnboxF (_, s) -> [ s ]
  | Br (c, _, _) -> [ c ]
  | Switch (v, _, _) -> [ v ]
  | Ret r -> if r >= 0 then [ r ] else []
  | Call (_, args, _) | CallC (_, args, _) | HookRun (_, args)
  | Bind (_, args, _) | Prim (_, args, _) ->
      Array.to_list args
  | Schedule (_, args, tid) -> tid :: Array.to_list args
  | _ -> []

(* The boxed register an instruction defines on fallthrough, or -1.
   TryPush's exception register is defined on the exception edge, not
   here — and is [Texception]-tagged, so never banked anyway. *)
let boxed_def (i : instr) : int =
  match i with
  | Const (d, _) | Mov (d, _) | LoadGlobal (d, _) -> d
  | Call (_, _, d) | CallC (_, _, d) | Bind (_, _, d) | Prim (_, _, d) -> d
  | BoxI (d, _) | BoxF (d, _) | ICmp_u (_, d, _, _) | ICmpK_u (_, d, _, _)
  | FCmp_u (_, d, _, _) ->
      d
  | _ -> -1

let ibank_reads (i : instr) : int list =
  match i with
  | IMov_u (_, s) | BoxI (_, s) -> [ s ]
  | IArith_u (_, _, _, a, b) | ICmp_u (_, _, a, b) | IBrCmp_u (_, a, b, _, _) -> [ a; b ]
  | IArithK_u (_, _, _, a, _) | ICmpK_u (_, _, a, _) | IBrCmpK_u (_, a, _, _, _) -> [ a ]
  | IIncrJ_u (_, d, _, _) -> [ d ]
  | _ -> []

let fbank_reads (i : instr) : int list =
  match i with
  | FMov_u (_, s) | BoxF (_, s) -> [ s ]
  | FArith_u (_, _, a, b) | FCmp_u (_, _, a, b) | FBrCmp_u (_, a, b, _, _) -> [ a; b ]
  | _ -> []

let targets_of (i : instr) : int list =
  match i with
  | Jump t | IIncrJ_u (_, _, _, t) -> [ t ]
  | Br (_, t, e) | IBrCmp_u (_, _, _, t, e) | IBrCmpK_u (_, _, _, t, e)
  | FBrCmp_u (_, _, _, t, e) ->
      [ t; e ]
  | Switch (_, d, cases) -> d :: List.map snd (Array.to_list cases)
  | TryPush (pc, _) -> [ pc ]
  | _ -> []

let retarget (f : int -> int) (i : instr) : instr =
  match i with
  | Jump t -> Jump (f t)
  | Br (c, t, e) -> Br (c, f t, f e)
  | Switch (v, d, cases) -> Switch (v, f d, Array.map (fun (c, pc) -> (c, f pc)) cases)
  | TryPush (pc, r) -> TryPush (f pc, r)
  | IBrCmp_u (c, a, b, t, e) -> IBrCmp_u (c, a, b, f t, f e)
  | IBrCmpK_u (c, a, k, t, e) -> IBrCmpK_u (c, a, k, f t, f e)
  | IIncrJ_u (w, d, k, t) -> IIncrJ_u (w, d, k, f t)
  | FBrCmp_u (c, a, b, t, e) -> FBrCmp_u (c, a, b, f t, f e)
  | i -> i

(* The generic interpreter supports the full [int_arith] table for ints
   but only these four for doubles — everything else must stay on the
   generic path so error behaviour is identical. *)
let double_arith_ok = function
  | A_add | A_sub | A_mul | A_div -> true
  | _ -> false

(* ---- Per-function rewrite -------------------------------------------------- *)

let specialize_func (st : stats) (f : func) : unit =
  let nregs = f.nregs in
  let code = f.code in
  let len = Array.length code in
  (* Which registers are written by any instruction (vs. constant-pool /
     parameter registers whose boxed value never goes stale). *)
  let written = Array.make nregs false in
  Array.iter
    (fun i ->
      let d = boxed_def i in
      if d >= 0 then written.(d) <- true)
    code;
  (* Registers that participate in a specializable primitive site. *)
  let spec_use = Array.make nregs false in
  let mark r = if r >= 0 then spec_use.(r) <- true in
  Array.iter
    (fun i ->
      match i with
      | Prim (P_int_arith _, [| a; b |], d)
      | Prim (P_int_cmp _, [| a; b |], d)
      | Prim (P_double_cmp _, [| a; b |], d) ->
          mark a; mark b; mark d
      | Prim (P_double_arith op, [| a; b |], d) when double_arith_ok op ->
          mark a; mark b; mark d
      | _ -> ())
    code;
  (* Bank assignment: provably-typed, non-parameter registers that feed a
     specializable site. *)
  let int_slot = Array.make nregs (-1) in
  let float_slot = Array.make nregs (-1) in
  let n_int = ref 0 and n_float = ref 0 in
  for r = f.nparams to nregs - 1 do
    if spec_use.(r) then
      match f.typing.(r) with
      | Tint ->
          int_slot.(r) <- !n_int;
          incr n_int
      | Tdouble ->
          float_slot.(r) <- !n_float;
          incr n_float
      | _ -> ()
  done;
  (* Constant-pool registers foldable into *K_u immediates. *)
  let imm_int = Array.make nregs None in
  for r = f.nparams to nregs - 1 do
    if (not written.(r)) && f.entry_init.(r) then
      match f.reg_defaults.(r) with
      | Value.Int k -> imm_int.(r) <- Some k
      | _ -> ()
  done;
  (* Two scratch slots per bank for unboxing generic operands at mixed
     sites; slot ids follow the banked registers. *)
  let si0 = !n_int and si1 = !n_int + 1 in
  let sf0 = !n_float and sf1 = !n_float + 1 in
  let n_int = if !n_int > 0 then !n_int + 2 else 0 in
  let n_float = if !n_float > 0 then !n_float + 2 else 0 in
  let ibanked r = r >= 0 && int_slot.(r) >= 0 in
  let fbanked r = r >= 0 && float_slot.(r) >= 0 in
  (* Bank templates, preloading entry-initialized defaults so a banked
     local read before its first store sees its typed default. *)
  let ibank_init = Bytes.make (8 * n_int) '\000' in
  let fbank_init = Array.make n_float 0.0 in
  for r = 0 to nregs - 1 do
    if int_slot.(r) >= 0 && f.entry_init.(r) then (
      match f.reg_defaults.(r) with
      | Value.Int k -> Bytes.set_int64_ne ibank_init (int_slot.(r) * 8) k
      | _ -> ());
    if float_slot.(r) >= 0 && f.entry_init.(r) then (
      match f.reg_defaults.(r) with
      | Value.Double x -> fbank_init.(float_slot.(r)) <- x
      | _ -> ())
  done;
  (* ---- Expansion: rewrite each instruction into its specialized block.
     Pre-bridges come first so control transfers into the block execute
     them; post-bridges run only on fallthrough (a completed definition). *)
  let bridge i =
    st.s_bridges <- st.s_bridges + 1;
    i
  in
  (* Resolve an int operand to a bank slot, unboxing a generic register
     into a scratch slot.  Operand-order unboxing preserves the generic
     path's as_int failure order, so dynamic-check counters match. *)
  let int_operand scratch r pre =
    if ibanked r then (int_slot.(r), pre)
    else (scratch, bridge (UnboxI (scratch, r)) :: pre)
  in
  let float_operand scratch r pre =
    if fbanked r then (float_slot.(r), pre)
    else (scratch, bridge (UnboxF (scratch, r)) :: pre)
  in
  let expand (i : instr) : instr list =
    match i with
    (* Definitions of banked registers: write the bank only; the boxed
       shadow goes stale and is refreshed by Box* before generic reads. *)
    | Const (d, Value.Int k) when ibanked d -> [ IConst_u (int_slot.(d), k) ]
    | Const (d, Value.Double x) when fbanked d -> [ FConst_u (float_slot.(d), x) ]
    | Mov (d, s) when ibanked d && ibanked s -> [ IMov_u (int_slot.(d), int_slot.(s)) ]
    | Mov (d, s) when fbanked d && fbanked s -> [ FMov_u (float_slot.(d), float_slot.(s)) ]
    | Mov (d, s) when ibanked d -> [ bridge (UnboxI (int_slot.(d), s)) ]
    | Mov (d, s) when fbanked d -> [ bridge (UnboxF (float_slot.(d), s)) ]
    | Mov (d, s) when ibanked s && written.(s) -> [ bridge (BoxI (d, int_slot.(s))) ]
    | Mov (d, s) when fbanked s && written.(s) -> [ bridge (BoxF (d, float_slot.(s))) ]
    | Prim (P_int_arith (op, w), [| a; b |], d)
      when ibanked a || ibanked b || ibanked d ->
        let sa, pre = int_operand si0 a [] in
        let dst = if ibanked d then int_slot.(d) else si0 in
        let core, pre =
          match imm_int.(b) with
          | Some k -> (IArithK_u (op, w, dst, sa, k), pre)
          | None ->
              let sb, pre = int_operand si1 b pre in
              (IArith_u (op, w, dst, sa, sb), pre)
        in
        let post = if d >= 0 && not (ibanked d) then [ bridge (BoxI (d, dst)) ] else [] in
        List.rev pre @ (core :: post)
    | Prim (P_int_cmp c, [| a; b |], d) when ibanked a || ibanked b ->
        let sa, pre = int_operand si0 a [] in
        let core, pre =
          match imm_int.(b) with
          | Some k -> (ICmpK_u (c, d, sa, k), pre)
          | None ->
              let sb, pre = int_operand si1 b pre in
              (ICmp_u (c, d, sa, sb), pre)
        in
        List.rev pre @ [ core ]
    | Prim (P_double_arith op, [| a; b |], d)
      when double_arith_ok op && (fbanked a || fbanked b || fbanked d) ->
        let sa, pre = float_operand sf0 a [] in
        let sb, pre = float_operand sf1 b pre in
        let dst = if fbanked d then float_slot.(d) else sf0 in
        let post = if d >= 0 && not (fbanked d) then [ bridge (BoxF (d, dst)) ] else [] in
        List.rev pre @ (FArith_u (op, dst, sa, sb) :: post)
    | Prim (P_double_cmp c, [| a; b |], d) when fbanked a || fbanked b ->
        let sa, pre = float_operand sf0 a [] in
        let sb, pre = float_operand sf1 b pre in
        List.rev pre @ [ FCmp_u (c, d, sa, sb) ]
    | i ->
        (* Generic instruction: refresh boxed shadows of banked written
           registers it reads, and pull any banked register it defines
           back into its bank afterwards. *)
        let reads = List.sort_uniq compare (boxed_reads i) in
        let pre =
          List.filter_map
            (fun r ->
              if ibanked r && written.(r) then Some (bridge (BoxI (r, int_slot.(r))))
              else if fbanked r && written.(r) then Some (bridge (BoxF (r, float_slot.(r))))
              else None)
            reads
        in
        let d = boxed_def i in
        let post =
          if ibanked d then [ bridge (UnboxI (int_slot.(d), d)) ]
          else if fbanked d then [ bridge (UnboxF (float_slot.(d), d)) ]
          else []
        in
        pre @ (i :: post)
  in
  let starts = Array.make (max len 1) 0 in
  let out = ref [] in
  let n = ref 0 in
  Array.iteri
    (fun pc i ->
      starts.(pc) <- !n;
      List.iter
        (fun j ->
          out := j :: !out;
          incr n)
        (expand i))
    code;
  let expanded = Array.of_list (List.rev !out) in
  let remap t = if t >= 0 && t < len then starts.(t) else t in
  let expanded = Array.map (retarget remap) expanded in
  (* ---- Superinstruction fusion: iterate so latch sequences cascade
     (arith+mov collapses first, then incr+jump). *)
  let cur = ref expanded in
  let rounds = ref 0 in
  let progress = ref true in
  while !progress && !rounds < 8 do
    incr rounds;
    let breads = Array.make (max nregs 1) 0 in
    let ireads = Array.make (max n_int 1) 0 in
    let freads = Array.make (max n_float 1) 0 in
    let tally arr ls = List.iter (fun r -> if r >= 0 then arr.(r) <- arr.(r) + 1) ls in
    Array.iter
      (fun i ->
        tally breads (boxed_reads i);
        tally ireads (ibank_reads i);
        tally freads (fbank_reads i))
      !cur;
    let try_fuse a b =
      match (a, b) with
      | ICmp_u (c, d, x, y), Br (c', t, e) when c' = d && d >= 0 && breads.(d) = 1 ->
          Some (IBrCmp_u (c, x, y, t, e))
      | ICmpK_u (c, d, x, k), Br (c', t, e) when c' = d && d >= 0 && breads.(d) = 1 ->
          Some (IBrCmpK_u (c, x, k, t, e))
      | FCmp_u (c, d, x, y), Br (c', t, e) when c' = d && d >= 0 && breads.(d) = 1 ->
          Some (FBrCmp_u (c, x, y, t, e))
      | IArith_u (op, w, d, x, y), IMov_u (d2, s) when s = d && ireads.(d) = 1 ->
          Some (IArith_u (op, w, d2, x, y))
      | IArithK_u (op, w, d, x, k), IMov_u (d2, s) when s = d && ireads.(d) = 1 ->
          Some (IArithK_u (op, w, d2, x, k))
      | FArith_u (op, d, x, y), FMov_u (d2, s) when s = d && freads.(d) = 1 ->
          Some (FArith_u (op, d2, x, y))
      | IArithK_u (A_add, w, d, x, k), Jump t when x = d -> Some (IIncrJ_u (w, d, k, t))
      | _ -> None
    in
    let fused_code, nfused = Hilti_passes.Peephole.run ~targets_of ~retarget ~try_fuse !cur in
    cur := fused_code;
    st.s_fused <- st.s_fused + nfused;
    if nfused = 0 then progress := false
  done;
  f.code <- !cur;
  f.spec <-
    Some { n_int; n_float; ibank_init; fbank_init; int_slot; float_slot };
  st.s_funcs <- st.s_funcs + 1;
  st.s_int_regs <- st.s_int_regs + (if n_int > 0 then n_int - 2 else 0);
  st.s_float_regs <- st.s_float_regs + (if n_float > 0 then n_float - 2 else 0)

(** Rewrite every function of a verified program onto register banks and
    mark it [specialized].  Idempotent: already-specialized functions are
    skipped.  Raises [Invalid_argument] on unverified programs — bank
    assignment is only sound on top of the verifier's typing export. *)
let specialize (p : program) : stats =
  if not p.verified then
    invalid_arg "Specialize.specialize: program must be verified first";
  let st = { s_funcs = 0; s_int_regs = 0; s_float_regs = 0; s_bridges = 0; s_fused = 0 } in
  Array.iter
    (fun f ->
      if f.spec = None && Array.length f.typing >= f.nregs then specialize_func st f)
    p.funcs;
  p.specialized <- true;
  st
