(** The lowered register-machine form the VM executes.

    Where HILTI's prototype compiles IR to LLVM bitcode and on to native
    code, we lower to a flat array of register operations per function —
    the same pipeline position, with jump targets resolved to instruction
    indices and all name/type resolution (struct fields, enum labels,
    bitset masks, overlay layouts, globals' slots) done at lowering time so
    the execution loop performs no lookups by name. *)

type int_arith = A_add | A_sub | A_mul | A_div | A_mod | A_shl | A_shr | A_and | A_or | A_xor | A_min | A_max

type cmp = C_eq | C_lt | C_gt | C_leq | C_geq

type string_op =
  | S_concat | S_length | S_eq | S_lt | S_find | S_substr | S_to_bytes
  | S_upper | S_lower | S_starts_with | S_contains | S_split1
  | S_format  (** first arg is the format string *)

type bytes_op =
  | B_new | B_length | B_append | B_freeze | B_is_frozen | B_trim | B_sub
  | B_find | B_match_prefix | B_can_read | B_read | B_to_string | B_to_int
  | B_eq | B_starts_with | B_contains | B_offset
  | B_unpack_uint | B_unpack_sint | B_upper | B_lower

type iter_op =
  | I_begin | I_end | I_incr | I_advance | I_deref | I_eq | I_distance
  | I_at_end | I_is_eod | I_is_frozen

type addr_op = AD_family | AD_eq | AD_mask | AD_to_string
type port_op = PO_protocol | PO_number | PO_eq
type net_op = NE_contains | NE_prefix | NE_length | NE_eq

type time_op = TI_add | TI_sub | TI_cmp of cmp | TI_wall | TI_to_double | TI_nsecs
type interval_op = IV_add | IV_sub | IV_mul | IV_eq | IV_lt | IV_to_double | IV_nsecs

type struct_op =
  | ST_get of string
  | ST_get_default of string
  | ST_set of string
  | ST_unset of string
  | ST_is_set of string

type list_op = L_append | L_push_front | L_pop_front | L_front | L_back | L_size | L_clear
type vector_op = V_push_back | V_get | V_set | V_size | V_reserve | V_clear | V_pop_back
type set_op = SE_insert | SE_exists | SE_remove | SE_size | SE_clear | SE_timeout
type map_op =
  | M_insert | M_get | M_get_default | M_exists | M_remove | M_size | M_clear
  | M_default | M_timeout

type channel_op = CH_write | CH_read | CH_try_read | CH_size
type classifier_op = CL_add | CL_compile | CL_get | CL_matches
type regexp_op = RE_compile | RE_find | RE_match_token | RE_span | RE_groups
type file_op = F_open | F_write | F_close
type profiler_op = PR_start | PR_stop | PR_snapshot
type debug_op = D_msg | D_assert | D_internal_error

type new_spec =
  | New_struct of string * string list  (** type name, field names *)
  | New_list
  | New_vector
  | New_set
  | New_map
  | New_channel of int option           (** capacity *)
  | New_bytes
  | New_timer_mgr
  | New_classifier of int               (** number of rule fields *)
  | New_match_state                      (** from a regexp operand *)

type overlay_spec = {
  ov_offset : int;
  ov_fmt : Module_ir.unpack_fmt;
  ov_bits : (int * int) option;
  ov_result : Htype.t;
}

type prim =
  | P_select
  | P_equal
  | P_make_tuple
  | P_new of new_spec
  | P_bool_and | P_bool_or | P_bool_not
  | P_int_arith of int_arith * int   (** op, width *)
  | P_int_cmp of cmp
  | P_int_neg of int | P_int_abs
  | P_int_to_double | P_int_to_time | P_int_to_interval | P_int_to_string
  | P_double_arith of int_arith
  | P_double_cmp of cmp
  | P_double_neg | P_double_abs | P_double_to_int
  | P_string of string_op
  | P_bytes of bytes_op
  | P_iter of iter_op
  | P_addr of addr_op
  | P_port of port_op
  | P_net of net_op
  | P_time of time_op
  | P_interval of interval_op
  | P_tuple_get of int
  | P_tuple_length
  | P_tuple_eq
  | P_struct of struct_op
  | P_enum_from_int of string
  | P_enum_value
  | P_enum_eq
  | P_bitset_set of int64 | P_bitset_clear of int64 | P_bitset_has of int64 | P_bitset_eq
  | P_list of list_op
  | P_vector of vector_op
  | P_set of set_op
  | P_map of map_op
  | P_channel of channel_op
  | P_classifier of classifier_op
  | P_regexp of regexp_op
  | P_overlay_get of overlay_spec
  | P_timer_new | P_timer_cancel
  | P_timer_mgr_schedule | P_timer_mgr_advance | P_timer_mgr_advance_global
  | P_timer_mgr_current | P_timer_mgr_expire_all
  | P_thread_id
  | P_exc_new | P_exc_data | P_exc_name
  | P_file of file_op
  | P_iosrc_read | P_iosrc_close
  | P_profiler of profiler_op
  | P_debug of debug_op
  | P_callable_call

(* ---- Abstract value tags --------------------------------------------------- *)

(* Coarse per-value type tags.  {!Verify} runs a forward abstract
   interpretation over these to type-check primitives, and exports a
   per-register join (the [typing] field below) that {!Specialize} uses to
   assign registers to unboxed banks. *)

type tag =
  | Any
  | Tnull
  | Tbool
  | Tint
  | Tdouble
  | Tstring
  | Tbytes
  | Taddr
  | Tport
  | Tnet
  | Ttime
  | Tinterval
  | Tenum
  | Tbitset
  | Ttuple
  | Texception
  | Tcallable

let tag_name = function
  | Any -> "any"
  | Tnull -> "null"
  | Tbool -> "bool"
  | Tint -> "int"
  | Tdouble -> "double"
  | Tstring -> "string"
  | Tbytes -> "bytes"
  | Taddr -> "addr"
  | Tport -> "port"
  | Tnet -> "net"
  | Ttime -> "time"
  | Tinterval -> "interval"
  | Tenum -> "enum"
  | Tbitset -> "bitset"
  | Ttuple -> "tuple"
  | Texception -> "exception"
  | Tcallable -> "callable"

let tag_of_value (v : Value.t) : tag =
  match v with
  | Value.Null -> Tnull
  | Value.Bool _ -> Tbool
  | Value.Int _ -> Tint
  | Value.Double _ -> Tdouble
  | Value.String _ -> Tstring
  | Value.Bytes _ -> Tbytes
  | Value.Addr _ -> Taddr
  | Value.Port _ -> Tport
  | Value.Net _ -> Tnet
  | Value.Time _ -> Ttime
  | Value.Interval _ -> Tinterval
  | Value.Enum _ -> Tenum
  | Value.Bitset _ -> Tbitset
  | Value.Tuple _ -> Ttuple
  | Value.Exception _ -> Texception
  | Value.Callable _ -> Tcallable
  | _ -> Any

let join_tag a b = if a = b then a else Any

type instr =
  | Const of int * Value.t            (** dst <- constant *)
  | Mov of int * int                  (** dst <- src *)
  | LoadGlobal of int * int           (** dst <- globals[slot] *)
  | StoreGlobal of int * int          (** globals[slot] <- src *)
  | Jump of int
  | Br of int * int * int             (** cond, then-pc, else-pc *)
  | Switch of int * int * (Value.t * int) array
  | Call of int * int array * int     (** func idx, arg regs, dst (-1 = none) *)
  | CallC of string * int array * int (** host function, arg regs, dst *)
  | Ret of int                        (** reg, -1 for void *)
  | TryPush of int * int              (** handler pc, exception dst reg *)
  | TryPop
  | Throw of int
  | Yield
  | HookRun of string * int array
  | Schedule of int * int array * int (** func idx, arg regs, thread-id reg *)
  | Bind of int * int array * int     (** func idx, arg regs, dst: make callable *)
  | Prim of prim * int array * int    (** arg regs, dst (-1 = none) *)
  | Nop
  (* Specialized register-bank opcodes, emitted only by {!Specialize} on
     verified programs.  Integer operands live in a per-frame unboxed
     [Bytes.t] bank (8 bytes per slot, native endian), floats in a flat
     [float array]; [UnboxI]/[BoxI]/[UnboxF]/[BoxF] are the only bridges
     between a bank and the boxed {!Value.t} frame. *)
  | IConst_u of int * int64           (** ibank[d] <- k *)
  | IMov_u of int * int               (** ibank[d] <- ibank[s] *)
  | UnboxI of int * int               (** ibank[d] <- as_int regs[s] (bridge) *)
  | BoxI of int * int                 (** regs[d] <- Int ibank[s] (bridge) *)
  | IArith_u of int_arith * int * int * int * int
      (** op, width, dst, a, b — all int-bank slots *)
  | IArithK_u of int_arith * int * int * int * int64
      (** op, width, dst, a, immediate (folded constant-pool operand) *)
  | ICmp_u of cmp * int * int * int   (** regs[d] <- Bool (ibank[a] ? ibank[b]) *)
  | ICmpK_u of cmp * int * int * int64
  | IBrCmp_u of cmp * int * int * int * int
      (** fused compare+branch: a, b, then-pc, else-pc *)
  | IBrCmpK_u of cmp * int * int64 * int * int
  | IIncrJ_u of int * int * int64 * int
      (** fused increment+jump backedge: width, d, k, target *)
  | FConst_u of int * float           (** fbank[d] <- k *)
  | FMov_u of int * int
  | UnboxF of int * int               (** fbank[d] <- as_double regs[s] (bridge) *)
  | BoxF of int * int                 (** regs[d] <- Double fbank[s] (bridge) *)
  | FArith_u of int_arith * int * int * int   (** op, dst, a, b — float-bank slots *)
  | FCmp_u of cmp * int * int * int   (** regs[d] <- Bool (fbank[a] ? fbank[b]) *)
  | FBrCmp_u of cmp * int * int * int * int

(** Per-function register-bank layout, attached by {!Specialize}.  The
    templates are immutable after specialization: every activation copies
    them into fresh per-frame banks (so banks clone exactly like frames do
    under the multicore engine — nothing mutable is shared). *)
type spec = {
  n_int : int;                (** int-bank slots, incl. scratch *)
  n_float : int;
  ibank_init : Bytes.t;       (** 8*n_int bytes; constant-pool slots preloaded *)
  fbank_init : float array;
  int_slot : int array;       (** boxed reg -> int-bank slot, -1 if unbanked *)
  float_slot : int array;     (** boxed reg -> float-bank slot, -1 if unbanked *)
}

type func = {
  name : string;
  nparams : int;
  nregs : int;
  mutable code : instr array;
  (** rewritten in place by {!Specialize} (bank bridges + fused pairs) *)
  returns_value : bool;
  exported : bool;
  reg_defaults : Value.t array;  (** typed default values for locals *)
  entry_init : bool array;
  (** which registers hold a meaningful value when the frame is created:
      parameters, declared locals (typed defaults) and constant-pool
      registers — lowering temporaries are [false] and must be proven
      defined-before-used by {!Verify}. *)
  mutable typing : tag array;
  (** per-register type-tag assignment (join over all definition sites and
      the entry state), exported by {!Verify.verify_exn}; [[||]] before
      verification *)
  mutable spec : spec option;
  (** register-bank layout, set by {!Specialize}; [None] until then *)
}

type program = {
  funcs : func array;
  func_index : (string, int) Hashtbl.t;
  globals : string array;                   (** slot -> name (post-link layout) *)
  global_defaults : Value.t array;          (** typed initial values per slot *)
  global_index : (string, int) Hashtbl.t;
  hooks : (string, int list) Hashtbl.t;     (** hook name -> func idxs, priority order *)
  types : (string, Module_ir.type_decl) Hashtbl.t;
  mutable verified : bool;
  (** set (only) by {!Verify} after every function passed the static
      checker; the VM then selects the fast dispatch loop that elides the
      bounds/definedness checks the verifier discharged *)
  mutable specialized : bool;
  (** set (only) by {!Specialize} after rewriting every function onto the
      unboxed register banks; the VM then selects the specialized dispatch
      loop *)
  mutable reuse : bool array;
  (** per-function frame-reuse licence, set (only) by
      [Summary.license_frame_reuse]: [reuse.(i)] means the interprocedural
      analysis proved no two activations of function [i] can be live on
      one domain at once, so the VM may recycle a per-worker arena frame
      instead of copying the bank templates per activation.  Empty ([[||]])
      until the analysis runs — the VM treats missing entries as [false]. *)
  mutable reuse_susp : bool array;
  (** the suspend-tolerant licence class, stamped together with [reuse]:
      [reuse_susp.(i)] means function [i] meets every frame-reuse
      condition {e except} that its synchronous closure may suspend.  The
      VM serves these activations from the arena too — a parked fiber
      keeps its slot's busy bit set, so an overlapping activation falls
      back to copying (counted as [vm_frame_suspend_copies]); the licence
      removes the per-activation copy for the common non-overlapping
      case.  Disjoint from [reuse]. *)
}

let find_func p name = Hashtbl.find_opt p.func_index name

(** Rough static instruction count, for reporting. *)
let code_size p =
  Array.fold_left (fun acc f -> acc + Array.length f.code) 0 p.funcs

(* ---- Disassembly ---------------------------------------------------------- *)

let regs rs = String.concat " " (List.map (Printf.sprintf "r%d") (Array.to_list rs))

let int_arith_name = function
  | A_add -> "add" | A_sub -> "sub" | A_mul -> "mul" | A_div -> "div"
  | A_mod -> "mod" | A_shl -> "shl" | A_shr -> "shr" | A_and -> "and"
  | A_or -> "or" | A_xor -> "xor" | A_min -> "min" | A_max -> "max"

let cmp_name = function
  | C_eq -> "eq" | C_lt -> "lt" | C_gt -> "gt" | C_leq -> "leq" | C_geq -> "geq"

let instr_to_string (i : instr) =
  match i with
  | Const (d, v) -> Printf.sprintf "r%d <- const %s" d (Value.to_string v)
  | Mov (d, s) -> Printf.sprintf "r%d <- r%d" d s
  | LoadGlobal (d, slot) -> Printf.sprintf "r%d <- global[%d]" d slot
  | StoreGlobal (slot, s) -> Printf.sprintf "global[%d] <- r%d" slot s
  | Jump pc -> Printf.sprintf "jump %d" pc
  | Br (c, t, e) -> Printf.sprintf "br r%d ? %d : %d" c t e
  | Switch (v, d, cases) ->
      Printf.sprintf "switch r%d default %d [%s]" v d
        (String.concat "; "
           (List.map
              (fun (c, pc) -> Printf.sprintf "%s->%d" (Value.to_string c) pc)
              (Array.to_list cases)))
  | Call (f, args, d) -> Printf.sprintf "r%d <- call #%d (%s)" d f (regs args)
  | CallC (n, args, d) -> Printf.sprintf "r%d <- callc %s (%s)" d n (regs args)
  | Ret r -> if r < 0 then "ret" else Printf.sprintf "ret r%d" r
  | TryPush (pc, r) -> Printf.sprintf "try.push @%d -> r%d" pc r
  | TryPop -> "try.pop"
  | Throw r -> Printf.sprintf "throw r%d" r
  | Yield -> "yield"
  | HookRun (n, args) -> Printf.sprintf "hook.run %s (%s)" n (regs args)
  | Schedule (f, args, tid) -> Printf.sprintf "schedule #%d (%s) -> thread r%d" f (regs args) tid
  | Bind (f, args, d) -> Printf.sprintf "r%d <- bind #%d (%s)" d f (regs args)
  | Prim (_, args, d) -> Printf.sprintf "r%d <- prim (%s)" d (regs args)
  | Nop -> "nop"
  | IConst_u (d, k) -> Printf.sprintf "i%d <- const %Ld" d k
  | IMov_u (d, s) -> Printf.sprintf "i%d <- i%d" d s
  | UnboxI (d, s) -> Printf.sprintf "i%d <- unbox r%d" d s
  | BoxI (d, s) -> Printf.sprintf "r%d <- box i%d" d s
  | IArith_u (op, w, d, a, b) ->
      Printf.sprintf "i%d <- %s.%d i%d i%d" d (int_arith_name op) w a b
  | IArithK_u (op, w, d, a, k) ->
      Printf.sprintf "i%d <- %s.%d i%d %Ld" d (int_arith_name op) w a k
  | ICmp_u (c, d, a, b) -> Printf.sprintf "r%d <- %s i%d i%d" d (cmp_name c) a b
  | ICmpK_u (c, d, a, k) -> Printf.sprintf "r%d <- %s i%d %Ld" d (cmp_name c) a k
  | IBrCmp_u (c, a, b, t, e) ->
      Printf.sprintf "br (%s i%d i%d) ? %d : %d" (cmp_name c) a b t e
  | IBrCmpK_u (c, a, k, t, e) ->
      Printf.sprintf "br (%s i%d %Ld) ? %d : %d" (cmp_name c) a k t e
  | IIncrJ_u (w, d, k, t) -> Printf.sprintf "i%d <- add.%d i%d %Ld; jump %d" d w d k t
  | FConst_u (d, k) -> Printf.sprintf "f%d <- const %g" d k
  | FMov_u (d, s) -> Printf.sprintf "f%d <- f%d" d s
  | UnboxF (d, s) -> Printf.sprintf "f%d <- unbox r%d" d s
  | BoxF (d, s) -> Printf.sprintf "r%d <- box f%d" d s
  | FArith_u (op, d, a, b) ->
      Printf.sprintf "f%d <- %s f%d f%d" d (int_arith_name op) a b
  | FCmp_u (c, d, a, b) -> Printf.sprintf "r%d <- %s f%d f%d" d (cmp_name c) a b
  | FBrCmp_u (c, a, b, t, e) ->
      Printf.sprintf "br (%s f%d f%d) ? %d : %d" (cmp_name c) a b t e

let disassemble_func (f : func) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s: %d params, %d regs, %d instrs\n" f.name f.nparams f.nregs
       (Array.length f.code));
  Array.iteri
    (fun i ins -> Buffer.add_string buf (Printf.sprintf "  %04d  %s\n" i (instr_to_string ins)))
    f.code;
  Buffer.contents buf

let disassemble (p : program) =
  String.concat "\n" (List.map disassemble_func (Array.to_list p.funcs))
