(** Interprocedural call-graph construction and bottom-up effect
    summaries over lowered programs (the paper's §5 claim that a typed IR
    makes global analysis of traffic-analysis programs tractable).

    For every bytecode function this module computes an {e effect
    vector}: the global slots it reads and writes, the host-API functions
    it calls (classified through the audited {!Hilti_passes.Effects}
    table), its allocation sites, the timers it registers or advances,
    and whether it can suspend, schedule work or call through a callable.
    Summaries are transitive over the {e synchronous} call graph (direct
    [Call]s plus [HookRun] targets, which execute inline) and are solved
    bottom-up with the generic {!Hilti_passes.Fixpoint} driver, so mutual
    recursion converges without special casing.  Asynchronous edges
    ([Bind], [Schedule], timer callables) are kept separate: their
    targets run in a later activation, which is exactly the distinction
    the shard-race rules and the frame-reuse licence need.

    Consumers:
    - the static shard-race detector ([Hilti_analysis.Racecheck]);
    - the escape analysis ({!Escape}), for host-API sink classification;
    - {!license_frame_reuse}, which marks the functions whose activation
      frames the VM may recycle from a per-worker arena. *)

module IntSet = Set.Make (Int)
module StrSet = Set.Make (String)

module SiteSet = Set.Make (struct
  type t = int * int (* func idx, pc *)

  let compare = compare
end)

module Effects = Hilti_passes.Effects

(* ---- The effect vector -------------------------------------------------- *)

type t = {
  reads_globals : IntSet.t;    (** global slots loaded *)
  writes_globals : IntSet.t;   (** global slots stored *)
  host_calls : StrSet.t;       (** host-API functions called (CallC) *)
  allocs : SiteSet.t;          (** P_new sites, as (func idx, pc) *)
  emits_events : bool;         (** calls a host fn audited [Emits_event] *)
  does_io : bool;              (** calls a host fn audited [Io] *)
  reads_host_state : bool;     (** host fn audited [Reads_global] *)
  writes_host_state : bool;    (** host fn audited [Writes_global] *)
  unknown_host : bool;         (** calls a host fn missing from the table *)
  runs_hooks : bool;           (** HookRun (synchronous hook dispatch) *)
  registers_timers : bool;     (** timer.new / timer_mgr.schedule / container timeouts *)
  advances_timers : bool;      (** timer_mgr.advance/advance_global/expire_all *)
  schedules : bool;            (** thread.schedule (async, deep-copied args) *)
  binds : bool;                (** callable.bind (captures values for later) *)
  calls_indirect : bool;       (** callable.call — statically unknown target *)
  may_suspend : bool;          (** yield or a blocking primitive *)
  throws : bool;               (** explicit throw *)
}

let bottom =
  {
    reads_globals = IntSet.empty;
    writes_globals = IntSet.empty;
    host_calls = StrSet.empty;
    allocs = SiteSet.empty;
    emits_events = false;
    does_io = false;
    reads_host_state = false;
    writes_host_state = false;
    unknown_host = false;
    runs_hooks = false;
    registers_timers = false;
    advances_timers = false;
    schedules = false;
    binds = false;
    calls_indirect = false;
    may_suspend = false;
    throws = false;
  }

let join a b =
  {
    reads_globals = IntSet.union a.reads_globals b.reads_globals;
    writes_globals = IntSet.union a.writes_globals b.writes_globals;
    host_calls = StrSet.union a.host_calls b.host_calls;
    allocs = SiteSet.union a.allocs b.allocs;
    emits_events = a.emits_events || b.emits_events;
    does_io = a.does_io || b.does_io;
    reads_host_state = a.reads_host_state || b.reads_host_state;
    writes_host_state = a.writes_host_state || b.writes_host_state;
    unknown_host = a.unknown_host || b.unknown_host;
    runs_hooks = a.runs_hooks || b.runs_hooks;
    registers_timers = a.registers_timers || b.registers_timers;
    advances_timers = a.advances_timers || b.advances_timers;
    schedules = a.schedules || b.schedules;
    binds = a.binds || b.binds;
    calls_indirect = a.calls_indirect || b.calls_indirect;
    may_suspend = a.may_suspend || b.may_suspend;
    throws = a.throws || b.throws;
  }

let equal a b =
  IntSet.equal a.reads_globals b.reads_globals
  && IntSet.equal a.writes_globals b.writes_globals
  && StrSet.equal a.host_calls b.host_calls
  && SiteSet.equal a.allocs b.allocs
  && a.emits_events = b.emits_events
  && a.does_io = b.does_io
  && a.reads_host_state = b.reads_host_state
  && a.writes_host_state = b.writes_host_state
  && a.unknown_host = b.unknown_host
  && a.runs_hooks = b.runs_hooks
  && a.registers_timers = b.registers_timers
  && a.advances_timers = b.advances_timers
  && a.schedules = b.schedules
  && a.binds = b.binds
  && a.calls_indirect = b.calls_indirect
  && a.may_suspend = b.may_suspend
  && a.throws = b.throws

(* ---- Instruction classification ----------------------------------------- *)

(* Primitives that can suspend the enclosing fiber waiting for input (the
   [blocking] wrapper and the incremental token matcher in {!Vm}), plus
   [yield] itself at the instruction level.  A function containing one may
   have two activations interleaved on one domain. *)
let prim_may_suspend (p : Bytecode.prim) =
  match p with
  | Bytecode.P_bytes
      (Bytecode.B_match_prefix | Bytecode.B_read | Bytecode.B_unpack_uint
      | Bytecode.B_unpack_sint) ->
      true
  | Bytecode.P_iter Bytecode.I_deref -> true
  | Bytecode.P_channel (Bytecode.CH_write | Bytecode.CH_read) -> true
  | Bytecode.P_overlay_get _ -> true
  | Bytecode.P_regexp Bytecode.RE_match_token -> true
  | _ -> false

let prim_registers_timer (p : Bytecode.prim) =
  match p with
  | Bytecode.P_timer_new | Bytecode.P_timer_mgr_schedule -> true
  | Bytecode.P_set Bytecode.SE_timeout | Bytecode.P_map Bytecode.M_timeout -> true
  | _ -> false

let prim_advances_timers (p : Bytecode.prim) =
  match p with
  | Bytecode.P_timer_mgr_advance | Bytecode.P_timer_mgr_advance_global
  | Bytecode.P_timer_mgr_expire_all ->
      true
  | _ -> false

(* ---- Call graph ---------------------------------------------------------- *)

type callgraph = {
  sync_succs : int list array;
      (** [Call] targets plus [HookRun] hook bodies: run inline, inside
          the caller's activation *)
  async_succs : int list array;
      (** [Bind] and [Schedule] targets: captured now, run in a later
          activation (possibly from a timer, possibly on another shard) *)
  host_sites : (string * int) list array;
      (** host-API call sites per function: (name, pc) *)
}

let callgraph (p : Bytecode.program) : callgraph =
  let n = Array.length p.Bytecode.funcs in
  let sync = Array.make n [] and async = Array.make n [] and hosts = Array.make n [] in
  let add arr i j = if not (List.mem j arr.(i)) then arr.(i) <- j :: arr.(i) in
  Array.iteri
    (fun i (f : Bytecode.func) ->
      Array.iteri
        (fun pc instr ->
          match instr with
          | Bytecode.Call (callee, _, _) -> add sync i callee
          | Bytecode.HookRun (name, _) ->
              List.iter (add sync i)
                (Option.value ~default:[] (Hashtbl.find_opt p.Bytecode.hooks name))
          | Bytecode.Bind (callee, _, _) | Bytecode.Schedule (callee, _, _) ->
              add async i callee
          | Bytecode.CallC (name, _, _) -> hosts.(i) <- (name, pc) :: hosts.(i)
          | _ -> ())
        f.Bytecode.code)
    p.Bytecode.funcs;
  { sync_succs = sync; async_succs = async; host_sites = hosts }

(* ---- Per-function local effects ------------------------------------------ *)

let local_summary (p : Bytecode.program) (fidx : int) : t =
  let f = p.Bytecode.funcs.(fidx) in
  let acc = ref bottom in
  let upd g = acc := g !acc in
  Array.iteri
    (fun pc instr ->
      match instr with
      | Bytecode.LoadGlobal (_, slot) ->
          upd (fun s -> { s with reads_globals = IntSet.add slot s.reads_globals })
      | Bytecode.StoreGlobal (slot, _) ->
          upd (fun s -> { s with writes_globals = IntSet.add slot s.writes_globals })
      | Bytecode.CallC (name, _, _) ->
          upd (fun s ->
              let s = { s with host_calls = StrSet.add name s.host_calls } in
              match Effects.host_effects name with
              | None -> { s with unknown_host = true }
              | Some h ->
                  let has c = List.mem c h.Effects.hf_effects in
                  {
                    s with
                    emits_events = s.emits_events || has Effects.Emits_event;
                    does_io = s.does_io || has Effects.Io;
                    reads_host_state = s.reads_host_state || has Effects.Reads_global;
                    writes_host_state = s.writes_host_state || has Effects.Writes_global;
                    calls_indirect = s.calls_indirect || h.Effects.hf_reenters_vm;
                  })
      | Bytecode.HookRun _ -> upd (fun s -> { s with runs_hooks = true })
      | Bytecode.Schedule _ -> upd (fun s -> { s with schedules = true })
      | Bytecode.Bind _ -> upd (fun s -> { s with binds = true })
      | Bytecode.Yield -> upd (fun s -> { s with may_suspend = true })
      | Bytecode.Throw _ -> upd (fun s -> { s with throws = true })
      | Bytecode.Prim (prim, _, _) ->
          upd (fun s ->
              let s =
                match prim with
                | Bytecode.P_new _ ->
                    { s with allocs = SiteSet.add (fidx, pc) s.allocs }
                | Bytecode.P_callable_call -> { s with calls_indirect = true }
                | _ -> s
              in
              {
                s with
                may_suspend = s.may_suspend || prim_may_suspend prim;
                registers_timers = s.registers_timers || prim_registers_timer prim;
                advances_timers = s.advances_timers || prim_advances_timers prim;
              })
      | _ -> ())
    f.Bytecode.code;
  !acc

(* ---- Bottom-up interprocedural solve ------------------------------------- *)

module L = struct
  type nonrec t = t

  let bottom = bottom
  let equal = equal
  let join = join
end

module Solver = Hilti_passes.Fixpoint.Make (L)

type program_summary = {
  prog : Bytecode.program;
  cg : callgraph;
  local : t array;      (** each function's own effects *)
  total : t array;
      (** transitive closure over synchronous edges: what an activation of
          the function can do before it returns *)
  recursive : bool array;
      (** function can reach itself over synchronous edges — a second
          activation can be live while the first still is *)
}

let compute (p : Bytecode.program) : program_summary =
  let n = Array.length p.Bytecode.funcs in
  let cg = callgraph p in
  let local = Array.init n (local_summary p) in
  let solved =
    Solver.solve ~n
      ~deps:(fun i -> cg.sync_succs.(i))
      ~transfer:(fun i get ->
        List.fold_left (fun acc j -> join acc (get j)) local.(i) cg.sync_succs.(i))
  in
  let total = Array.init n solved in
  let recursive =
    Array.init n (fun i ->
        let from_callees =
          Hilti_passes.Fixpoint.reachable ~n
            ~succs:(fun j -> cg.sync_succs.(j))
            cg.sync_succs.(i)
        in
        from_callees.(i))
  in
  { prog = p; cg; local; total; recursive }

(** Functions reachable (synchronously) from the named entry points —
    the "packet path" of the shard-race rules. *)
let reachable_from (s : program_summary) (entries : int list) : bool array =
  Hilti_passes.Fixpoint.reachable
    ~n:(Array.length s.prog.Bytecode.funcs)
    ~succs:(fun i -> s.cg.sync_succs.(i))
    entries

(* ---- The frame-reuse licence ---------------------------------------------- *)

(** Can the VM hand activations of function [i] a recycled per-worker
    frame instead of copying the bank templates?  Safe exactly when no
    two activations of [i] can be live on one domain at the same time:

    - [i] must not (transitively, synchronously) reach itself — no direct
      or mutual recursion;
    - nothing [i] runs may suspend: a parked fiber keeps its frame live
      while another activation starts;
    - nothing [i] runs may re-enter the VM through a statically unknown
      edge: [callable.call], a timer-manager advance (expired timers run
      their callables inline), or a host function that is either audited
      as re-entering or missing from the audit table entirely.

    The summary is transitive, so one check of [total] covers the whole
    synchronous closure.  (The VM additionally keeps a per-slot busy bit
    and falls back to copying, so a hole in this licence degrades
    performance, not correctness — and the checked interpreter's poison
    mode turns any stale read into a hard failure.) *)
let reusable (s : program_summary) (i : int) : bool =
  let t = s.total.(i) in
  (not s.recursive.(i))
  && (not t.may_suspend)
  && (not t.calls_indirect)
  && (not t.advances_timers)
  && not t.unknown_host

(** The suspend-tolerant licence class: every {!reusable} condition holds
    {e except} that the synchronous closure may suspend.  Safe because a
    parked fiber's activation keeps its arena slot's busy bit set (effect
    suspension captures — does not unwind — the VM's release handler), so
    an overlapping activation observes busy and takes the copy fallback;
    the VM counts those fallbacks as [vm_frame_suspend_copies].  Kept
    disjoint from {!reusable} so the two populations can be metered
    separately. *)
let reusable_susp (s : program_summary) (i : int) : bool =
  let t = s.total.(i) in
  (not s.recursive.(i))
  && t.may_suspend
  && (not t.calls_indirect)
  && (not t.advances_timers)
  && not t.unknown_host

(** Compute summaries and stamp the per-function reuse licences into the
    program ({!Bytecode.program.reuse} and [reuse_susp]), enabling the
    VM's frame-arena path.  Returns the summary for further consumers. *)
let license_frame_reuse (p : Bytecode.program) : program_summary =
  let s = compute p in
  let n = Array.length p.Bytecode.funcs in
  p.Bytecode.reuse <- Array.init n (reusable s);
  p.Bytecode.reuse_susp <- Array.init n (reusable_susp s);
  s

(* ---- Debug rendering ------------------------------------------------------ *)

let to_string (s : program_summary) (i : int) : string =
  let t = s.total.(i) in
  let flag name b = if b then [ name ] else [] in
  let slots set =
    IntSet.elements set
    |> List.map (fun g -> s.prog.Bytecode.globals.(g))
    |> String.concat ","
  in
  let parts =
    (if IntSet.is_empty t.reads_globals then []
     else [ "reads{" ^ slots t.reads_globals ^ "}" ])
    @ (if IntSet.is_empty t.writes_globals then []
       else [ "writes{" ^ slots t.writes_globals ^ "}" ])
    @ (if StrSet.is_empty t.host_calls then []
       else [ "host{" ^ String.concat "," (StrSet.elements t.host_calls) ^ "}" ])
    @ (if SiteSet.is_empty t.allocs then []
       else [ Printf.sprintf "allocs:%d" (SiteSet.cardinal t.allocs) ])
    @ flag "emits-event" t.emits_events
    @ flag "io" t.does_io
    @ flag "unknown-host" t.unknown_host
    @ flag "hooks" t.runs_hooks
    @ flag "timers" t.registers_timers
    @ flag "advances-timers" t.advances_timers
    @ flag "schedules" t.schedules
    @ flag "binds" t.binds
    @ flag "indirect" t.calls_indirect
    @ flag "suspends" t.may_suspend
    @ flag "recursive" s.recursive.(i)
    @ flag "reusable" (reusable s i)
  in
  Printf.sprintf "%s: %s" s.prog.Bytecode.funcs.(i).Bytecode.name
    (if parts = [] then "pure" else String.concat " " parts)
