(** eBPF-style static verifier for lowered bytecode (run after {!Lower}).

    Before a program may execute in the VM's fast path, every function is
    checked once, statically:

    - {b control flow}: every [Jump]/[Br]/[Switch]/[TryPush] target is a
      valid instruction index, and no path falls off the end of the code
      array (lowering always terminates functions with [Ret]);
    - {b frame bounds}: register counts are sane and every register field
      of every instruction is inside the frame ([-1] is the "discard"
      destination the VM ignores); global slots and callee indices index
      their arrays; direct calls pass exactly the callee's parameter
      count;
    - {b definedness}: along {e all} paths (including exceptional edges
      from [TryPush] to its handler) every register is written before it
      is read.  Parameters, declared locals (typed defaults) and
      constant-pool registers are defined at entry ([entry_init]);
      lowering temporaries must be proven;
    - {b type tags}: a forward abstract interpretation over coarse value
      tags (int/bool/double/string/...; [Any] for polymorphic or joined
      states) checks primitive operands against the {!Isa}-derived
      signatures — e.g. [P_int_arith] demands two ints, [Br] a bool.

    The analysis is a joined forward dataflow at instruction granularity:
    definedness is a must-set (bitwise AND at joins), tags join to [Any]
    on conflict.  On success {!verify_exn} marks the program
    {!Bytecode.program.verified}, which the VM uses to select the
    unchecked dispatch loop; the count of statically discharged checks is
    exported as the [vm_safety_checks{mode="static_discharged"}] metric
    (its dynamic counterpart counts runtime check failures). *)

open Bytecode

exception Verify_error of string list

type report = {
  funcs : int;
  instrs : int;
  checks_discharged : int;  (** per-use checks proven once, statically *)
  errors : string list;
}

let m_discharged =
  Hilti_obs.Metrics.counter "vm_safety_checks"
    ~label:("mode", "static_discharged")
    ~help:"Safety checks proven statically by the bytecode verifier"

(* ---- Abstract value tags ------------------------------------------------- *)

(* The [tag] type and its helpers live in {!Bytecode} (opened above) so the
   exported per-register [typing] can be stored on the function record. *)

(* [Any] is unknown (checks pass); [Tnull] is the default of
   reference-typed slots before first assignment, and joins freely. *)
let compatible ~expected ~actual =
  expected = Any || actual = Any || actual = Tnull || expected = actual

(** Expected operand tags for a primitive ([None] = unchecked /
    polymorphic position) and the tag of its result.  Coarse on purpose:
    only families whose operand kinds are fixed by the {!Isa} signature
    are constrained. *)
let prim_sig (p : prim) : tag option array option * tag =
  let a1 x = Some [| x |] in
  let a2 x y = Some [| x; y |] in
  let t x = Some x in
  let sig_ args ret = (Option.map (Array.map t) args, ret) in
  match p with
  | P_select -> (Some [| t Tbool; None; None |], Any)
  | P_equal | P_tuple_eq -> sig_ None Tbool
  | P_make_tuple -> sig_ None Ttuple
  | P_bool_and | P_bool_or -> sig_ (a2 Tbool Tbool) Tbool
  | P_bool_not -> sig_ (a1 Tbool) Tbool
  | P_int_arith _ -> sig_ (a2 Tint Tint) Tint
  | P_int_cmp _ -> sig_ (a2 Tint Tint) Tbool
  | P_int_neg _ | P_int_abs -> sig_ (a1 Tint) Tint
  | P_int_to_double -> sig_ (a1 Tint) Tdouble
  | P_int_to_time -> sig_ (a1 Tint) Ttime
  | P_int_to_interval -> sig_ (a1 Tint) Tinterval
  | P_int_to_string -> (Some [| t Tint; t Tint |], Tstring)  (* base optional *)
  | P_double_arith _ -> sig_ (a2 Tdouble Tdouble) Tdouble
  | P_double_cmp _ -> sig_ (a2 Tdouble Tdouble) Tbool
  | P_double_neg | P_double_abs -> sig_ (a1 Tdouble) Tdouble
  | P_double_to_int -> sig_ (a1 Tdouble) Tint
  | P_string op -> (
      match op with
      | S_concat -> sig_ (a2 Tstring Tstring) Tstring
      | S_length -> sig_ (a1 Tstring) Tint
      | S_eq | S_lt | S_starts_with | S_contains ->
          sig_ (a2 Tstring Tstring) Tbool
      | S_find -> sig_ (a2 Tstring Tstring) Tint
      | S_substr -> (Some [| t Tstring; t Tint; t Tint |], Tstring)
      | S_to_bytes -> sig_ (a1 Tstring) Tbytes
      | S_upper | S_lower -> sig_ (a1 Tstring) Tstring
      | S_split1 -> sig_ (a2 Tstring Tstring) Ttuple
      | S_format -> (None, Tstring))  (* varargs after the format string *)
  | P_bytes op -> (
      (* First operand may be bytes or a bytes iterator: unchecked. *)
      match op with
      | B_length | B_to_int | B_offset -> (None, Tint)
      | B_is_frozen | B_can_read | B_eq | B_starts_with | B_contains
      | B_match_prefix ->
          (None, Tbool)
      | B_to_string -> (None, Tstring)
      | B_new | B_sub -> (None, Tbytes)
      | B_read | B_find | B_unpack_uint | B_unpack_sint ->
          (None, Ttuple)  (* (value, rest-iterator) pairs *)
      | _ -> (None, Any))
  | P_iter _ -> (None, Any)
  | P_addr op -> (
      match op with
      | AD_family -> sig_ (a1 Taddr) Tenum
      | AD_eq -> sig_ (a2 Taddr Taddr) Tbool
      | AD_mask -> (Some [| t Taddr; t Tint; t Tint |], Taddr)
      | AD_to_string -> sig_ (a1 Taddr) Tstring)
  | P_port op -> (
      match op with
      | PO_protocol -> sig_ (a1 Tport) Tenum
      | PO_number -> sig_ (a1 Tport) Tint
      | PO_eq -> sig_ (a2 Tport Tport) Tbool)
  | P_net op -> (
      match op with
      | NE_contains -> sig_ (a2 Tnet Taddr) Tbool
      | NE_prefix -> sig_ (a1 Tnet) Taddr
      | NE_length -> sig_ (a1 Tnet) Tint
      | NE_eq -> sig_ (a2 Tnet Tnet) Tbool)
  | P_time op -> (
      match op with
      | TI_add -> sig_ (a2 Ttime Tinterval) Ttime
      | TI_sub -> (None, Any)  (* time-time or time-interval *)
      | TI_cmp _ -> sig_ (a2 Ttime Ttime) Tbool
      | TI_wall -> sig_ (Some [||]) Ttime
      | TI_to_double -> sig_ (a1 Ttime) Tdouble
      | TI_nsecs -> sig_ (a1 Ttime) Tint)
  | P_interval op -> (
      match op with
      | IV_add | IV_sub -> sig_ (a2 Tinterval Tinterval) Tinterval
      | IV_mul -> sig_ (a2 Tinterval Tint) Tinterval
      | IV_eq | IV_lt -> sig_ (a2 Tinterval Tinterval) Tbool
      | IV_to_double -> sig_ (a1 Tinterval) Tdouble
      | IV_nsecs -> sig_ (a1 Tinterval) Tint)
  | P_tuple_get _ -> sig_ (a1 Ttuple) Any
  | P_tuple_length -> sig_ (a1 Ttuple) Tint
  | P_enum_from_int _ -> sig_ (a1 Tint) Tenum
  | P_enum_value -> sig_ (a1 Tenum) Tint
  | P_enum_eq -> sig_ (a2 Tenum Tenum) Tbool
  | P_bitset_set _ | P_bitset_clear _ -> sig_ (a1 Tbitset) Tbitset
  | P_bitset_has _ -> sig_ (a1 Tbitset) Tbool
  | P_bitset_eq -> sig_ (a2 Tbitset Tbitset) Tbool
  | P_exc_new -> (None, Texception)
  | P_exc_name -> sig_ (a1 Texception) Tstring
  | P_exc_data -> sig_ (a1 Texception) Any
  | P_thread_id -> (None, Tint)
  | _ -> (None, Any)

(* ---- Per-function verification ------------------------------------------- *)

let max_frame_regs = 1 lsl 16

type state = { init : Bytes.t; tags : tag array }

let copy_state s = { init = Bytes.copy s.init; tags = Array.copy s.tags }

(* Meet [src] into [dst]; returns true if [dst] changed.  Definedness is a
   must-set (AND); tags join towards [Any]. *)
let meet_into ~src ~dst =
  let changed = ref false in
  Bytes.iteri
    (fun i c ->
      if c = '\001' && Bytes.get src.init i = '\000' then begin
        Bytes.set dst.init i '\000';
        changed := true
      end)
    dst.init;
  Array.iteri
    (fun i t ->
      let j = join_tag t src.tags.(i) in
      if j <> t then begin
        dst.tags.(i) <- j;
        changed := true
      end)
    dst.tags;
  !changed

let verify_func (p : program) (f : func) : int * string list =
  let errors = ref [] in
  let checks = ref 0 in
  let err pc fmt =
    Printf.ksprintf
      (fun msg -> errors := Printf.sprintf "%s@%d: %s" f.name pc msg :: !errors)
      fmt
  in
  let len = Array.length f.code in
  (* Frame shape. *)
  if f.nregs < 0 || f.nregs > max_frame_regs then
    err (-1) "frame size %d out of bounds (max %d)" f.nregs max_frame_regs;
  if f.nparams < 0 || f.nparams > f.nregs then
    err (-1) "%d parameters do not fit in %d registers" f.nparams f.nregs;
  if Array.length f.reg_defaults < max f.nregs 1 then
    err (-1) "reg_defaults shorter than frame (%d < %d)"
      (Array.length f.reg_defaults) f.nregs;
  if Array.length f.entry_init < max f.nregs 1 then
    err (-1) "entry_init shorter than frame (%d < %d)"
      (Array.length f.entry_init) f.nregs;
  if len = 0 then err (-1) "empty code array";
  if !errors <> [] then (0, List.rev !errors)
  else begin
    let nglobals = Array.length p.globals in
    let nfuncs = Array.length p.funcs in
    let check_target pc t what =
      incr checks;
      if t < 0 || t >= len then err pc "%s target %d out of range [0,%d)" what t len
    in
    let check_dst pc d =
      incr checks;
      if d < -1 || d >= f.nregs then err pc "destination r%d out of frame" d
    in
    (* Instruction-granularity forward dataflow. *)
    let entry =
      {
        init =
          Bytes.init f.nregs (fun i ->
              if i < f.nparams || f.entry_init.(i) then '\001' else '\000');
        tags =
          Array.init f.nregs (fun i ->
              if i < f.nparams then Any
              else if f.entry_init.(i) then tag_of_value f.reg_defaults.(i)
              else Any);
      }
    in
    let states : state option array = Array.make len None in
    let work = Queue.create () in
    let flow pc st =
      if pc >= 0 && pc < len then
        match states.(pc) with
        | None ->
            states.(pc) <- Some (copy_state st);
            Queue.add pc work
        | Some cur -> if meet_into ~src:st ~dst:cur then Queue.add pc work
    in
    flow 0 entry;
    let use st pc r what =
      incr checks;
      if r < 0 || r >= f.nregs then begin
        err pc "%s register r%d out of frame" what r;
        Any
      end
      else if Bytes.get st.init r = '\000' then begin
        err pc "register r%d used before definition (%s)" r what;
        Any
      end
      else st.tags.(r)
    in
    let def st pc d tag =
      check_dst pc d;
      if d >= 0 && d < f.nregs then begin
        Bytes.set st.init d '\001';
        st.tags.(d) <- tag
      end
    in
    let require pc what ~expected ~actual =
      incr checks;
      if not (compatible ~expected ~actual) then
        err pc "%s: type tag mismatch (expected %s, got %s)" what
          (tag_name expected) (tag_name actual)
    in
    (* Bank bounds for specialized opcodes: slots index the per-frame
       unboxed banks whose sizes come from the {!Specialize} metadata; a
       specialized opcode in a function without that metadata can never
       execute safely. *)
    let islot pc s what =
      incr checks;
      match f.spec with
      | None -> err pc "%s: specialized opcode without bank metadata" what
      | Some sp ->
          if s < 0 || s >= sp.n_int then
            err pc "%s: int-bank slot %d out of range [0,%d)" what s sp.n_int
    in
    let fslot pc s what =
      incr checks;
      match f.spec with
      | None -> err pc "%s: specialized opcode without bank metadata" what
      | Some sp ->
          if s < 0 || s >= sp.n_float then
            err pc "%s: float-bank slot %d out of range [0,%d)" what s sp.n_float
    in
    while not (Queue.is_empty work) do
      let pc = Queue.pop work in
      let st = copy_state (Option.get states.(pc)) in
      let fallthrough = ref true in
      (match f.code.(pc) with
      | Const (d, v) -> def st pc d (tag_of_value v)
      | Mov (d, s) ->
          let t = use st pc s "mov source" in
          def st pc d t
      | LoadGlobal (d, slot) ->
          incr checks;
          if slot < 0 || slot >= nglobals then
            err pc "global slot %d out of range [0,%d)" slot nglobals;
          let t =
            if slot >= 0 && slot < nglobals then
              match tag_of_value p.global_defaults.(slot) with
              | Tnull -> Any  (* reference global: holds its real type later *)
              | t -> t
            else Any
          in
          def st pc d t
      | StoreGlobal (slot, s) ->
          incr checks;
          if slot < 0 || slot >= nglobals then
            err pc "global slot %d out of range [0,%d)" slot nglobals;
          ignore (use st pc s "store.global source")
      | Jump t ->
          check_target pc t "jump";
          flow t st;
          fallthrough := false
      | Br (c, t, e) ->
          let ct = use st pc c "branch condition" in
          require pc "branch condition" ~expected:Tbool ~actual:ct;
          check_target pc t "branch-then";
          check_target pc e "branch-else";
          flow t st;
          flow e st;
          fallthrough := false
      | Switch (v, d, cases) ->
          ignore (use st pc v "switch value");
          check_target pc d "switch-default";
          flow d st;
          Array.iter
            (fun (_, t) ->
              check_target pc t "switch-case";
              flow t st)
            cases;
          fallthrough := false
      | Call (fi, args, d) ->
          incr checks;
          if fi < 0 || fi >= nfuncs then
            err pc "callee index %d out of range [0,%d)" fi nfuncs
          else begin
            let callee = p.funcs.(fi) in
            incr checks;
            if Array.length args <> callee.nparams then
              err pc "call to %s passes %d args, expects %d" callee.name
                (Array.length args) callee.nparams
          end;
          Array.iteri (fun i r -> ignore (use st pc r (Printf.sprintf "call arg %d" i))) args;
          def st pc d Any
      | CallC (_, args, d) ->
          Array.iteri (fun i r -> ignore (use st pc r (Printf.sprintf "callc arg %d" i))) args;
          def st pc d Any
      | Ret r ->
          if r >= 0 then ignore (use st pc r "return value");
          fallthrough := false
      | TryPush (h, r) ->
          check_target pc h "try.push handler";
          check_dst pc r;
          (* On the exceptional edge the handler sees everything defined
             at the push point, plus the caught exception. *)
          let hstate = copy_state st in
          def hstate pc r Texception;
          flow h hstate
      | TryPop -> ()
      | Throw r ->
          ignore (use st pc r "throw operand");
          fallthrough := false
      | Yield -> ()
      | HookRun (_, args) ->
          Array.iteri (fun i r -> ignore (use st pc r (Printf.sprintf "hook arg %d" i))) args
      | Schedule (fi, args, tid) ->
          incr checks;
          if fi < 0 || fi >= nfuncs then
            err pc "schedule callee %d out of range [0,%d)" fi nfuncs;
          Array.iteri
            (fun i r -> ignore (use st pc r (Printf.sprintf "schedule arg %d" i)))
            args;
          let tt = use st pc tid "schedule thread id" in
          require pc "schedule thread id" ~expected:Tint ~actual:tt
      | Bind (fi, args, d) ->
          incr checks;
          if fi < 0 || fi >= nfuncs then
            err pc "bind callee %d out of range [0,%d)" fi nfuncs;
          Array.iteri (fun i r -> ignore (use st pc r (Printf.sprintf "bind arg %d" i))) args;
          def st pc d Tcallable
      | Prim (prim, args, d) ->
          let expected, ret = prim_sig prim in
          Array.iteri
            (fun i r ->
              let actual = use st pc r (Printf.sprintf "prim arg %d" i) in
              match expected with
              | Some exp when i < Array.length exp -> (
                  match exp.(i) with
                  | Some e ->
                      require pc (Printf.sprintf "prim arg %d" i) ~expected:e
                        ~actual
                  | None -> ())
              | _ -> ())
            args;
          def st pc d ret
      | Nop -> ()
      | IConst_u (d, _) -> islot pc d "iconst"
      | IMov_u (d, s) ->
          islot pc d "imov dst";
          islot pc s "imov src"
      | UnboxI (d, s) ->
          islot pc d "unbox.i dst";
          let t = use st pc s "unbox.i source" in
          require pc "unbox.i source" ~expected:Tint ~actual:t
      | BoxI (d, s) ->
          islot pc s "box.i source";
          def st pc d Tint
      | IArith_u (_, _, d, a, b) ->
          islot pc d "int-arith dst";
          islot pc a "int-arith operand";
          islot pc b "int-arith operand"
      | IArithK_u (_, _, d, a, _) ->
          islot pc d "int-arith dst";
          islot pc a "int-arith operand"
      | ICmp_u (_, d, a, b) ->
          islot pc a "int-cmp operand";
          islot pc b "int-cmp operand";
          def st pc d Tbool
      | ICmpK_u (_, d, a, _) ->
          islot pc a "int-cmp operand";
          def st pc d Tbool
      | IBrCmp_u (_, a, b, t, e) ->
          islot pc a "br-cmp operand";
          islot pc b "br-cmp operand";
          check_target pc t "br-cmp-then";
          check_target pc e "br-cmp-else";
          flow t st;
          flow e st;
          fallthrough := false
      | IBrCmpK_u (_, a, _, t, e) ->
          islot pc a "br-cmp operand";
          check_target pc t "br-cmp-then";
          check_target pc e "br-cmp-else";
          flow t st;
          flow e st;
          fallthrough := false
      | IIncrJ_u (_, d, _, t) ->
          islot pc d "incr-jump counter";
          check_target pc t "incr-jump";
          flow t st;
          fallthrough := false
      | FConst_u (d, _) -> fslot pc d "fconst"
      | FMov_u (d, s) ->
          fslot pc d "fmov dst";
          fslot pc s "fmov src"
      | UnboxF (d, s) ->
          fslot pc d "unbox.f dst";
          let t = use st pc s "unbox.f source" in
          require pc "unbox.f source" ~expected:Tdouble ~actual:t
      | BoxF (d, s) ->
          fslot pc s "box.f source";
          def st pc d Tdouble
      | FArith_u (_, d, a, b) ->
          fslot pc d "float-arith dst";
          fslot pc a "float-arith operand";
          fslot pc b "float-arith operand"
      | FCmp_u (_, d, a, b) ->
          fslot pc a "float-cmp operand";
          fslot pc b "float-cmp operand";
          def st pc d Tbool
      | FBrCmp_u (_, a, b, t, e) ->
          fslot pc a "br-cmp operand";
          fslot pc b "br-cmp operand";
          check_target pc t "br-cmp-then";
          check_target pc e "br-cmp-else";
          flow t st;
          flow e st;
          fallthrough := false);
      if !fallthrough then begin
        incr checks;
        if pc + 1 >= len then err pc "control falls off the end of the code"
        else flow (pc + 1) st
      end
    done;
    (!checks, List.rev !errors)
  end

(* ---- Per-register typing export ------------------------------------------- *)

(** A sound, flow-insensitive per-register tag assignment: the join of the
    entry state (parameters are [Any]; declared locals and constant-pool
    registers carry their default's tag) with every definition site's
    static result tag.  Definitions whose static tag is not guaranteed at
    runtime ([LoadGlobal] — stores are not type-checked — and calls)
    contribute [Any], so [typing.(r) = Tint] really does mean every value
    ever held by [r] is a [Value.Int]: exactly the guarantee
    {!Specialize} needs to move [r] into an unboxed bank.  [Mov] edges
    are resolved by fixpoint. *)
let compute_typing (f : func) : tag array =
  let n = max f.nregs 1 in
  let t = Array.make n Any in
  let have = Array.make n false in
  let contribute r tag =
    if r >= 0 && r < f.nregs then
      if not have.(r) then begin
        t.(r) <- tag;
        have.(r) <- true
      end
      else t.(r) <- join_tag t.(r) tag
  in
  for r = 0 to f.nregs - 1 do
    if r < f.nparams then contribute r Any
    else if f.entry_init.(r) then contribute r (tag_of_value f.reg_defaults.(r))
  done;
  let movs = ref [] in
  Array.iter
    (fun i ->
      match i with
      | Const (d, v) -> contribute d (tag_of_value v)
      | Mov (d, s) -> movs := (d, s) :: !movs
      | LoadGlobal (d, _) | Call (_, _, d) | CallC (_, _, d) -> contribute d Any
      | TryPush (_, r) -> contribute r Texception
      | Bind (_, _, d) -> contribute d Tcallable
      | Prim (p, _, d) -> contribute d (snd (prim_sig p))
      | BoxI (d, _) -> contribute d Tint
      | BoxF (d, _) -> contribute d Tdouble
      | ICmp_u (_, d, _, _) | ICmpK_u (_, d, _, _) | FCmp_u (_, d, _, _) ->
          contribute d Tbool
      | _ -> ())
    f.code;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (d, s) ->
        if s >= 0 && s < f.nregs && have.(s) && d >= 0 && d < f.nregs then begin
          let before_have = have.(d) and before_t = t.(d) in
          contribute d t.(s);
          if have.(d) <> before_have || t.(d) <> before_t then changed := true
        end)
      !movs
  done;
  t

(** Verify every function; never raises, never sets the flag. *)
let verify (p : program) : report =
  let instrs = code_size p in
  let checks = ref 0 and errors = ref [] in
  Array.iter
    (fun f ->
      let c, e = verify_func p f in
      checks := !checks + c;
      errors := !errors @ e)
    p.funcs;
  { funcs = Array.length p.funcs; instrs; checks_discharged = !checks;
    errors = !errors }

(** Verify and, on success, mark the program verified (enabling the VM's
    fast dispatch), export each function's register typing, and account
    the discharged checks; raises {!Verify_error} otherwise. *)
let verify_exn (p : program) : report =
  let r = verify p in
  if r.errors <> [] then raise (Verify_error r.errors);
  Array.iter (fun f -> f.typing <- compute_typing f) p.funcs;
  Hilti_obs.Metrics.add m_discharged r.checks_discharged;
  p.verified <- true;
  r
