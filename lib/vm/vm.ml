(** The HILTI execution engine.

    Executes lowered bytecode with:
    - per-function register frames and an explicit per-frame handler stack
      for exceptions (HILTI propagates exceptions with explicit checks
      after calls, §5 "Runtime Model");
    - fiber integration: the [yield] instruction and all blocking
      operations suspend the enclosing {!Hilti_rt.Fiber}, giving the
      transparent incremental processing of §3.2 — a parser simply blocks
      reading bytes and the host resumes it when more data arrives;
    - virtual threads: each 64-bit thread id owns its own copy of the
      thread-local globals array and its own timer manager; [thread.schedule]
      deep-copies arguments (state isolation, §3.2);
    - an abstract cycle counter charged per executed instruction, standing
      in for PAPI cycle measurements in the evaluation. *)

open Bytecode

exception Runtime_error of string

exception Step_budget_exceeded
(** Raised by the dispatch loops when [step_kill] instructions have been
    retired.  Deliberately a raw OCaml exception, not a HILTI one, so
    generated [try] handlers cannot swallow it — the fuzzer uses it as a
    hang detector on hostile input. *)

let fail fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

(* ---- Dispatch observability -------------------------------------------------- *)

(* Executed instructions are attributed to coarse opcode groups.  The
   dispatch loop must stay tight, so per-activation tallies go into a
   local array and are flushed into the sharded counters when the function
   returns; with metrics disabled the loop carries no extra work at all. *)

let opgroup_names =
  [| "data"; "control"; "call"; "exception"; "thread"; "global"; "prim"; "misc";
     "ispec"; "fspec"; "fused"; "bridge" |]

let n_opgroups = Array.length opgroup_names

(* Index of the "bridge" group: box/unbox crossings between the unboxed
   register banks and the boxed frame, also surfaced as the dedicated
   [vm_regbank_transfers] counter. *)
let bridge_group = 11

let opgroup_of (i : Bytecode.instr) =
  match i with
  | Const _ | Mov _ -> 0
  | Jump _ | Br _ | Switch _ -> 1
  | Call _ | CallC _ | Ret _ | Bind _ -> 2
  | TryPush _ | TryPop | Throw _ -> 3
  | Yield | HookRun _ | Schedule _ -> 4
  | LoadGlobal _ | StoreGlobal _ -> 5
  | Prim _ -> 6
  | Nop -> 7
  | IConst_u _ | IMov_u _ | IArith_u _ | IArithK_u _ | ICmp_u _ | ICmpK_u _ -> 8
  | FConst_u _ | FMov_u _ | FArith_u _ | FCmp_u _ -> 9
  | IBrCmp_u _ | IBrCmpK_u _ | IIncrJ_u _ | FBrCmp_u _ -> 10
  | UnboxI _ | BoxI _ | UnboxF _ | BoxF _ -> bridge_group

let m_opgroup =
  Array.map
    (fun g ->
      Hilti_obs.Metrics.counter "vm_instructions"
        ~help:"VM instructions retired, by opcode group" ~label:("group", g))
    opgroup_names

let m_func_instrs =
  Hilti_obs.Metrics.histogram "vm_func_instrs"
    ~help:"Instructions retired per function activation"

let m_regbank_transfers =
  Hilti_obs.Metrics.counter "vm_regbank_transfers"
    ~help:"Box/unbox bridge crossings between unboxed register banks and the boxed frame"

(* One recyclable activation frame per function, per context (and contexts
   are per-domain under [Hilti_par], so arena slots are never shared
   between domains).  Only functions carrying the interprocedural
   frame-reuse licence ([Bytecode.program.reuse], stamped by [Summary])
   ever get a slot; the [a_busy] bit is the runtime safety net — any
   activation that finds its slot taken (an edge the analysis did not see)
   silently falls back to the copying path, so a licence hole can cost
   performance but never correctness. *)
type arena_slot = {
  a_regs : Value.t array;
  a_ibank : Bytes.t;      (** empty when the function has no bank layout *)
  a_fbank : float array;
  mutable a_busy : bool;
}

type context = {
  program : Bytecode.program;
  host_funcs : (string, context -> Value.t list -> Value.t) Hashtbl.t;
  scheduler : Hilti_rt.Scheduler.t;
  vthread_globals : (int64, Value.t array) Hashtbl.t;
  mutable current_thread : int64;
  mutable cached_tid : int64;          (* thread whose globals are cached *)
  mutable cached_globals : Value.t array;
  mutable instr_count : int;
  mutable step_kill : int;             (* raise past this instr_count; max_int = off *)
  cycles : int ref;                    (* per-context abstract cycle counter *)
  mutable debug_sink : string -> unit;
  mutable arena : arena_slot option array;
      (* frame arena, indexed by func idx; [[||]] until first licensed
         activation.  Never shared: each domain clone owns its own. *)
  parent : context option;             (* Some root for per-domain clones *)
}

let main_thread_id = 0L

let create program =
  {
    program;
    host_funcs = Hashtbl.create 16;
    scheduler = Hilti_rt.Scheduler.create ();
    vthread_globals = Hashtbl.create 8;
    current_thread = main_thread_id;
    cached_tid = Int64.min_int;
    cached_globals = [||];
    instr_count = 0;
    step_kill = max_int;
    cycles = Hilti_rt.Profiler.new_counter ();
    debug_sink = (fun s -> print_endline s);
    arena = [||];
    parent = None;
  }

let register_host ctx name fn = Hashtbl.replace ctx.host_funcs name fn

let instr_count ctx = Int64.of_int ctx.instr_count

(* ---- Per-domain execution contexts (the parallel engine) --------------------- *)

(* A domain clone shares the immutable program, the host-function table and
   the scheduler, but owns the mutable execution state (current thread,
   globals table/cache, instruction counter).  [Hilti_par] makes one clone
   per worker domain and registers it in domain-local storage; every VM
   entry point then resolves the context it was handed to the clone of the
   domain it is actually executing on, so jobs, callables and fibers can
   migrate between domains without sharing mutable state. *)

let clone_for_domain ctx =
  if ctx.parent <> None then invalid_arg "Vm.clone_for_domain: already a clone";
  {
    ctx with
    vthread_globals = Hashtbl.create 8;
    current_thread = main_thread_id;
    cached_tid = Int64.min_int;
    cached_globals = [||];
    instr_count = 0;
    step_kill = max_int;
    cycles = Hilti_rt.Profiler.new_counter ();
    arena = [||];
    parent = Some ctx;
  }

let domain_contexts : (context * context) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(** Register [clone] as the executing domain's context for [root]
    (called once per worker domain by the parallel engine). *)
let set_domain_context ~root ~clone =
  let l = Domain.DLS.get domain_contexts in
  l := (root, clone) :: List.filter (fun (r, _) -> r != root) !l

(** Resolve [ctx] (root or any clone of it) to the context owned by the
    executing domain: the registered clone on an engine worker, the root
    everywhere else. *)
let exec_context ctx =
  let root = match ctx.parent with Some r -> r | None -> ctx in
  match !(Domain.DLS.get domain_contexts) with
  | [] -> root
  | l -> (
      match List.find_opt (fun (r, _) -> r == root) l with
      | Some (_, clone) -> clone
      | None -> root)

(** The executing virtual thread's globals array (created on demand). *)
let globals_for ctx tid =
  match Hashtbl.find_opt ctx.vthread_globals tid with
  | Some g -> g
  | None ->
      let g = Array.map Value.deep_copy ctx.program.global_defaults in
      Hashtbl.add ctx.vthread_globals tid g;
      g

let current_globals ctx =
  if Int64.equal ctx.cached_tid ctx.current_thread then ctx.cached_globals
  else begin
    let g = globals_for ctx ctx.current_thread in
    ctx.cached_tid <- ctx.current_thread;
    ctx.cached_globals <- g;
    g
  end

(** The executing virtual thread's timer manager. *)
let current_timer_mgr ctx =
  Hilti_rt.Scheduler.timers_for ctx.scheduler ctx.current_thread

(* ---- Blocking operations ---------------------------------------------------- *)

(** Run [f], suspending the enclosing fiber while it signals that more
    input is needed.  Outside a fiber the suspension cannot happen, so the
    condition surfaces as Hilti::WouldBlock. *)
let blocking f =
  let rec go () =
    match f () with
    | v -> v
    | exception Hilti_types.Hbytes.Would_block -> (
        match Hilti_rt.Fiber.yield () with
        | () -> go ()
        | exception Effect.Unhandled _ -> raise (Value.would_block ()))
  in
  go ()

(* ---- Int semantics ------------------------------------------------------------ *)

let wrap width v =
  if width >= 64 then v
  else
    (* Sign-extended wrap-around at the declared width. *)
    let shift = 64 - width in
    Int64.shift_right (Int64.shift_left v shift) shift

let int_arith op width a b =
  let r =
    match op with
    | A_add -> Int64.add a b
    | A_sub -> Int64.sub a b
    | A_mul -> Int64.mul a b
    | A_div -> if b = 0L then raise (Value.division_by_zero ()) else Int64.div a b
    | A_mod -> if b = 0L then raise (Value.division_by_zero ()) else Int64.rem a b
    | A_shl -> Int64.shift_left a (Int64.to_int b land 63)
    | A_shr -> Int64.shift_right_logical a (Int64.to_int b land 63)
    | A_and -> Int64.logand a b
    | A_or -> Int64.logor a b
    | A_xor -> Int64.logxor a b
    | A_min -> if Int64.compare a b <= 0 then a else b
    | A_max -> if Int64.compare a b >= 0 then a else b
  in
  wrap width r

let compare_by op c =
  match op with
  | C_eq -> c = 0
  | C_lt -> c < 0
  | C_gt -> c > 0
  | C_leq -> c <= 0
  | C_geq -> c >= 0

(* ---- Frames --------------------------------------------------------------------- *)

type frame = {
  regs : Value.t array;
  mutable pc : int;
  mutable tries : (int * int) list;  (* handler pc, exception register *)
}

(* Debug mode for the frame arena: on acquire, every register the frame
   contract does not initialize ([entry_init] false — lowering
   temporaries the verifier proved defined-before-used) is filled with a
   physically-unique sentinel instead of its bank-template default.  The
   checked interpreter then turns any read of a stale slot into a hard
   failure, making "reuse never observes a leftover value" an executable
   assertion rather than an argument. *)
let arena_debug = ref false

let arena_poison : Value.t = Value.String "\xffhilti-arena-poison\xff"

let reg frame i =
  let v = frame.regs.(i) in
  if !arena_debug && v == arena_poison then
    fail "frame arena: read of stale register r%d in a reused frame" i;
  v

let setreg frame i v = if i >= 0 then frame.regs.(i) <- v

(* Unchecked variants for the verified dispatch loop: {!Verify} proved
   every register field of every instruction to be inside the frame, so
   the bounds checks are statically discharged.  [-1] remains the
   "discard" destination. *)
let ureg frame i = Array.unsafe_get frame.regs i

let usetreg frame i v = if i >= 0 then Array.unsafe_set frame.regs i v

(* ---- The frame arena ------------------------------------------------------------ *)

let m_frames_reused =
  Hilti_obs.Metrics.counter "frames_reused"
    ~help:
      "Activations served from the per-worker frame arena instead of copying bank templates"

let m_frame_suspend_copies =
  Hilti_obs.Metrics.counter "vm_frame_suspend_copies"
    ~help:
      "Activations of may-suspend functions that copied bank templates because their arena slot was parked busy by a suspended activation"

let poison_uninit (f : Bytecode.func) (regs : Value.t array) =
  if !arena_debug then
    Array.iteri
      (fun i init -> if not init then regs.(i) <- arena_poison)
      f.entry_init

(* A cached slot is only reusable while its shapes still match the
   function: {!Specialize} may rewrite [reg_defaults] and attach banks
   after a slot was first created. *)
let slot_fits (f : Bytecode.func) (s : arena_slot) =
  Array.length s.a_regs = Array.length f.reg_defaults
  && (match f.spec with
     | Some sp ->
         Bytes.length s.a_ibank = Bytes.length sp.ibank_init
         && Array.length s.a_fbank = Array.length sp.fbank_init
     | None -> true)

(** Hand out the per-context arena frame for function [fidx], or [None]
    when the activation must copy: no licence
    ({!Bytecode.program.reuse} / [reuse_susp]), or the slot is busy (a
    nested or parked activation — correctness is preserved by falling
    back).  For the suspend-tolerant class the busy fallback is the
    expected steady-state cost of overlapping parked fibers, so it is
    metered separately as [vm_frame_suspend_copies].  On reuse the bank
    templates are blitted over the slot in place, so the activation
    starts from exactly the state a fresh copy would have. *)
let acquire_frame ctx (fidx : int) (f : Bytecode.func) : arena_slot option =
  let lic = ctx.program.reuse in
  let lic_s = ctx.program.reuse_susp in
  let strict = fidx < Array.length lic && Array.unsafe_get lic fidx in
  let susp = fidx < Array.length lic_s && Array.unsafe_get lic_s fidx in
  if not (strict || susp) then None
  else begin
    if Array.length ctx.arena = 0 then
      ctx.arena <- Array.make (Array.length ctx.program.funcs) None;
    match ctx.arena.(fidx) with
    | Some s when (not s.a_busy) && slot_fits f s ->
        s.a_busy <- true;
        Array.blit f.reg_defaults 0 s.a_regs 0 (Array.length f.reg_defaults);
        (match f.spec with
        | Some sp ->
            Bytes.blit sp.ibank_init 0 s.a_ibank 0 (Bytes.length sp.ibank_init);
            Array.blit sp.fbank_init 0 s.a_fbank 0 (Array.length sp.fbank_init)
        | None -> ());
        poison_uninit f s.a_regs;
        if Hilti_obs.Metrics.enabled () then Hilti_obs.Metrics.incr m_frames_reused;
        Some s
    | Some s when s.a_busy ->
        (* Parked-fiber overlap: a suspended activation still owns the
           slot.  Copy, and meter the cost for the suspend class. *)
        if susp && Hilti_obs.Metrics.enabled () then
          Hilti_obs.Metrics.incr m_frame_suspend_copies;
        None
    | _ ->
        (* First licensed activation (or a stale-shaped slot): build the
           slot from the templates; later activations reuse it. *)
        let s =
          {
            a_regs = Array.copy f.reg_defaults;
            a_ibank =
              (match f.spec with
              | Some sp -> Bytes.copy sp.ibank_init
              | None -> Bytes.empty);
            a_fbank =
              (match f.spec with
              | Some sp -> Array.copy sp.fbank_init
              | None -> [||]);
            a_busy = true;
          }
        in
        poison_uninit f s.a_regs;
        ctx.arena.(fidx) <- Some s;
        Some s
  end

let release_frame = function Some s -> s.a_busy <- false | None -> ()

(* Unchecked 64-bit bank accesses for the specialized dispatch loop:
   {!Verify} type-checks every specialized opcode's slot against the bank
   sizes in [func.spec], so the bounds checks are statically discharged —
   same contract as [ureg]/[usetreg].  These are the unboxing-aware
   compiler primitives, so reads feed arithmetic without allocating. *)
external ibank_get : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external ibank_set : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

(* Preallocated booleans so specialized comparisons never allocate their
   boxed result. *)
let vtrue = Value.Bool true
let vfalse = Value.Bool false

(* Printf-lite formatting for string.format: %s %d %f %%. *)
let format_string fmt args =
  let buf = Buffer.create (String.length fmt + 16) in
  let args = ref args in
  let next () =
    match !args with
    | [] -> raise (Value.value_error "string.format: not enough arguments")
    | a :: rest ->
        args := rest;
        a
  in
  let n = String.length fmt in
  let i = ref 0 in
  while !i < n do
    if fmt.[!i] = '%' && !i + 1 < n then begin
      (match fmt.[!i + 1] with
      | 's' -> Buffer.add_string buf (Value.to_string (next ()))
      | 'd' -> Buffer.add_string buf (Int64.to_string (Value.as_int (next ())))
      | 'f' -> Buffer.add_string buf (Printf.sprintf "%f" (Value.as_double (next ())))
      | 'g' -> Buffer.add_string buf (Printf.sprintf "%g" (Value.as_double (next ())))
      | 'x' -> Buffer.add_string buf (Printf.sprintf "%Lx" (Value.as_int (next ())))
      | '%' -> Buffer.add_char buf '%'
      | c -> raise (Value.value_error (Printf.sprintf "string.format: bad %%%c" c)));
      i := !i + 2
    end
    else begin
      Buffer.add_char buf fmt.[!i];
      incr i
    end
  done;
  Buffer.contents buf

(* ---- Primitive dispatch ------------------------------------------------------------- *)

let rec exec_prim ctx (p : prim) (args : Value.t array) : Value.t =
  let a n = args.(n) in
  match p with
  | P_select -> if Value.as_bool (a 0) then a 1 else a 2
  | P_equal -> Value.Bool (Value.equal (a 0) (a 1))
  | P_make_tuple -> Value.Tuple (Array.copy args)
  | P_new spec -> exec_new ctx spec args
  | P_bool_and -> Value.Bool (Value.as_bool (a 0) && Value.as_bool (a 1))
  | P_bool_or -> Value.Bool (Value.as_bool (a 0) || Value.as_bool (a 1))
  | P_bool_not -> Value.Bool (not (Value.as_bool (a 0)))
  | P_int_arith (op, w) -> Value.Int (int_arith op w (Value.as_int (a 0)) (Value.as_int (a 1)))
  | P_int_cmp c -> Value.Bool (compare_by c (Int64.compare (Value.as_int (a 0)) (Value.as_int (a 1))))
  | P_int_neg w -> Value.Int (wrap w (Int64.neg (Value.as_int (a 0))))
  | P_int_abs -> Value.Int (Int64.abs (Value.as_int (a 0)))
  | P_int_to_double -> Value.Double (Int64.to_float (Value.as_int (a 0)))
  | P_int_to_time -> Value.Time (Hilti_types.Time_ns.of_secs (Value.as_int_i (a 0)))
  | P_int_to_interval -> Value.Interval (Hilti_types.Interval_ns.of_secs (Value.as_int_i (a 0)))
  | P_int_to_string ->
      let base = if Array.length args > 1 then Value.as_int_i (a 1) else 10 in
      let v = Value.as_int (a 0) in
      Value.String
        (match base with
        | 10 -> Int64.to_string v
        | 16 -> Printf.sprintf "%Lx" v
        | 8 -> Printf.sprintf "%Lo" v
        | _ -> raise (Value.value_error "int.to_string: base must be 8, 10 or 16"))
  | P_double_arith op ->
      let x = Value.as_double (a 0) and y = Value.as_double (a 1) in
      Value.Double
        (match op with
        | A_add -> x +. y
        | A_sub -> x -. y
        | A_mul -> x *. y
        | A_div -> if y = 0. then raise (Value.division_by_zero ()) else x /. y
        | _ -> fail "double arith")
  | P_double_cmp c ->
      Value.Bool (compare_by c (Float.compare (Value.as_double (a 0)) (Value.as_double (a 1))))
  | P_double_neg -> Value.Double (-.Value.as_double (a 0))
  | P_double_abs -> Value.Double (Float.abs (Value.as_double (a 0)))
  | P_double_to_int -> Value.Int (Int64.of_float (Value.as_double (a 0)))
  | P_string op -> exec_string op args
  | P_bytes op -> exec_bytes op args
  | P_iter op -> exec_iter op args
  | P_addr op -> exec_addr op args
  | P_port op -> exec_port op args
  | P_net op -> exec_net op args
  | P_time op -> exec_time op args
  | P_interval op -> exec_interval op args
  | P_tuple_get i ->
      let t = Value.as_tuple (a 0) in
      if i < 0 || i >= Array.length t then raise (Value.index_error ()) else t.(i)
  | P_tuple_length -> Value.Int (Int64.of_int (Array.length (Value.as_tuple (a 0))))
  | P_tuple_eq -> Value.Bool (Value.equal (a 0) (a 1))
  | P_struct op -> exec_struct op args
  | P_enum_from_int name ->
      let v = Value.as_int_i (a 0) in
      let known =
        match Hashtbl.find_opt ctx.program.types name with
        | Some (Module_ir.Enum_decl labels) -> List.exists (fun (_, x) -> x = v) labels
        | _ -> false
      in
      Value.Enum (name, v, not known)
  | P_enum_value -> (
      match a 0 with
      | Value.Enum (_, v, _) -> Value.Int (Int64.of_int v)
      | v -> raise (Value.type_error ("enum: " ^ Value.to_string v)))
  | P_enum_eq -> Value.Bool (Value.equal (a 0) (a 1))
  | P_bitset_set mask -> (
      match a 0 with
      | Value.Bitset (n, bits) -> Value.Bitset (n, Int64.logor bits mask)
      | v -> raise (Value.type_error ("bitset: " ^ Value.to_string v)))
  | P_bitset_clear mask -> (
      match a 0 with
      | Value.Bitset (n, bits) -> Value.Bitset (n, Int64.logand bits (Int64.lognot mask))
      | v -> raise (Value.type_error ("bitset: " ^ Value.to_string v)))
  | P_bitset_has mask -> (
      match a 0 with
      | Value.Bitset (_, bits) -> Value.Bool (Int64.logand bits mask = mask)
      | v -> raise (Value.type_error ("bitset: " ^ Value.to_string v)))
  | P_bitset_eq -> Value.Bool (Value.equal (a 0) (a 1))
  | P_list op -> exec_list op args
  | P_vector op -> exec_vector op args
  | P_set op -> exec_set ctx op args
  | P_map op -> exec_map ctx op args
  | P_channel op -> exec_channel op args
  | P_classifier op -> exec_classifier op args
  | P_regexp op -> exec_regexp op args
  | P_overlay_get spec -> exec_overlay ctx spec args
  | P_timer_new ->
      let c = Value.as_callable (a 0) in
      Value.Timer (Hilti_rt.Timer.create (fun () -> ignore (c.Value.invoke ())))
  | P_timer_cancel ->
      Hilti_rt.Timer.cancel (Value.as_timer (a 0));
      Value.Null
  | P_timer_mgr_schedule ->
      let mgr = Value.as_timer_mgr (a 0) in
      let at = Value.as_time (a 1) in
      let timer =
        match a 2 with
        | Value.Timer t -> t
        | Value.Callable c -> Hilti_rt.Timer.create (fun () -> ignore (c.Value.invoke ()))
        | v -> raise (Value.type_error ("timer: " ^ Value.to_string v))
      in
      Hilti_rt.Timer_mgr.schedule mgr timer at;
      Value.Timer timer
  | P_timer_mgr_advance ->
      ignore (Hilti_rt.Timer_mgr.advance (Value.as_timer_mgr (a 0)) (Value.as_time (a 1)));
      Value.Null
  | P_timer_mgr_advance_global ->
      ignore (Hilti_rt.Timer_mgr.advance (current_timer_mgr ctx) (Value.as_time (a 0)));
      Value.Null
  | P_timer_mgr_current -> Value.Time (Hilti_rt.Timer_mgr.current (Value.as_timer_mgr (a 0)))
  | P_timer_mgr_expire_all ->
      ignore (Hilti_rt.Timer_mgr.expire_all (Value.as_timer_mgr (a 0)));
      Value.Null
  | P_thread_id -> Value.Int ctx.current_thread
  | P_exc_new ->
      let name = Value.as_string (a 0) in
      let arg = if Array.length args > 1 then a 1 else Value.Null in
      Value.Exception { ename = name; earg = arg }
  | P_exc_data -> (Value.as_exception (a 0)).Value.earg
  | P_exc_name -> Value.String (Value.as_exception (a 0)).Value.ename
  | P_file op -> exec_file ctx op args
  | P_iosrc_read -> (
      match Hilti_rt.Iosrc.read (Value.as_iosrc (a 0)) with
      | Some pkt ->
          let b = Hilti_types.Hbytes.of_string pkt.Hilti_rt.Iosrc.data in
          Hilti_types.Hbytes.freeze b;
          Value.Tuple [| Value.Time pkt.Hilti_rt.Iosrc.ts; Value.Bytes b |]
      | None -> raise (Value.exhausted ()))
  | P_iosrc_close -> Value.Null
  | P_profiler op ->
      let p = Hilti_rt.Profiler.find_or_create (Value.as_string (a 0)) in
      (match op with
      | PR_start -> Hilti_rt.Profiler.start p
      | PR_stop -> Hilti_rt.Profiler.stop p
      | PR_snapshot -> Hilti_rt.Profiler.snapshot p);
      Value.Null
  | P_debug op -> (
      match op with
      | D_msg ->
          let msg =
            if Array.length args > 1 then
              Printf.sprintf "[%s] %s" (Value.to_string (a 0)) (Value.to_string (a 1))
            else Value.to_string (a 0)
          in
          ctx.debug_sink msg;
          Value.Null
      | D_assert ->
          if not (Value.as_bool (a 0)) then
            raise
              (Value.hilti_exception "Hilti::AssertionError"
                 (if Array.length args > 1 then a 1 else Value.Null))
          else Value.Null
      | D_internal_error ->
          raise (Value.hilti_exception "Hilti::InternalError" (a 0)))
  | P_callable_call -> (Value.as_callable (a 0)).Value.invoke ()

and exec_new _ctx spec args =
  match spec with
  | New_struct (name, fields) -> Value.Struct (Value.new_struct name fields)
  | New_list -> Value.List (Deque.create ())
  | New_vector -> Value.Vector (Dynarray.create ())
  | New_set -> Value.Set (Hilti_rt.Exp_map.create ())
  | New_map -> Value.Map (Hilti_rt.Exp_map.create ())
  | New_bytes -> Value.Bytes (Hilti_types.Hbytes.create ())
  | New_channel cap -> Value.Channel (Hilti_rt.Channel.create ?capacity:cap ())
  | New_timer_mgr -> Value.Timer_mgr (Hilti_rt.Timer_mgr.create ())
  | New_classifier nfields ->
      Value.Classifier
        { Value.cls = Hilti_rt.Classifier.create nfields; key_types = [] }
  | New_match_state ->
      let re = Value.as_regexp args.(0) in
      Value.Match_state (Hilti_rt.Regexp.matcher re)

and exec_string op args =
  let a n = args.(n) in
  let s n = Value.as_string (a n) in
  match op with
  | S_concat -> Value.String (s 0 ^ s 1)
  | S_length -> Value.Int (Int64.of_int (String.length (s 0)))
  | S_eq -> Value.Bool (String.equal (s 0) (s 1))
  | S_lt -> Value.Bool (String.compare (s 0) (s 1) < 0)
  | S_find -> (
      let hay = s 0 and needle = s 1 in
      let nl = String.length needle and hl = String.length hay in
      let rec go i =
        if i + nl > hl then Value.Int (-1L)
        else if String.sub hay i nl = needle then Value.Int (Int64.of_int i)
        else go (i + 1)
      in
      go 0)
  | S_substr ->
      let str = s 0 and start = Value.as_int_i (a 1) and len = Value.as_int_i (a 2) in
      if start < 0 || len < 0 || start + len > String.length str then
        raise (Value.index_error ())
      else Value.String (String.sub str start len)
  | S_to_bytes ->
      let b = Hilti_types.Hbytes.of_string (s 0) in
      Hilti_types.Hbytes.freeze b;
      Value.Bytes b
  | S_upper -> Value.String (String.uppercase_ascii (s 0))
  | S_lower -> Value.String (String.lowercase_ascii (s 0))
  | S_starts_with ->
      let str = s 0 and p = s 1 in
      Value.Bool
        (String.length p <= String.length str && String.sub str 0 (String.length p) = p)
  | S_contains -> (
      match exec_string S_find args with
      | Value.Int i -> Value.Bool (i >= 0L)
      | _ -> assert false)
  | S_split1 -> (
      let str = s 0 and sep = s 1 in
      match exec_string S_find [| a 0; a 1 |] with
      | Value.Int i when i >= 0L ->
          let i = Int64.to_int i in
          Value.Tuple
            [| Value.String (String.sub str 0 i);
               Value.String
                 (String.sub str (i + String.length sep)
                    (String.length str - i - String.length sep)) |]
      | _ -> Value.Tuple [| Value.String str; Value.String "" |])
  | S_format ->
      let fmt = s 0 in
      Value.String (format_string fmt (List.tl (Array.to_list args)))

and exec_bytes op args =
  let a n = args.(n) in
  let open Hilti_types in
  match op with
  | B_new -> Value.Bytes (Hbytes.create ())
  | B_length -> Value.Int (Int64.of_int (Hbytes.length (Value.as_bytes (a 0))))
  | B_append ->
      let b = Value.as_bytes (a 0) in
      (match a 1 with
      | Value.Bytes src -> Hbytes.append b (Hbytes.to_string src)
      | Value.String s -> Hbytes.append b s
      | v -> raise (Value.type_error ("bytes.append: " ^ Value.to_string v)));
      Value.Null
  | B_freeze ->
      Hbytes.freeze (Value.as_bytes (a 0));
      Value.Null
  | B_is_frozen -> Value.Bool (Hbytes.is_frozen (Value.as_bytes (a 0)))
  | B_trim ->
      (* Accepts the bytes object itself or any iterator into it: generated
         parsers only hold iterators, never the underlying stream value. *)
      let target =
        match a 0 with
        | Value.Bytes b -> b
        | Value.Iter (Value.Ibytes it) -> it.Hbytes.bytes
        | v -> raise (Value.type_error ("bytes.trim: " ^ Value.to_string v))
      in
      Hbytes.trim target (Value.as_bytes_iter (a 1));
      Value.Null
  | B_sub ->
      let i1 = Value.as_bytes_iter (a 0) and i2 = Value.as_bytes_iter (a 1) in
      let b = Hbytes.of_string (Hbytes.sub i1 i2) in
      Hbytes.freeze b;
      Value.Bytes b
  | B_find -> (
      let from =
        match a 0 with
        | Value.Bytes b -> Hbytes.begin_ b
        | Value.Iter (Value.Ibytes it) -> it
        | v -> raise (Value.type_error ("bytes.find: " ^ Value.to_string v))
      in
      let from =
        if Array.length args > 2 then Value.as_bytes_iter (a 2) else from
      in
      let needle =
        match a 1 with
        | Value.Bytes b -> Hbytes.to_string b
        | Value.String s -> s
        | v -> raise (Value.type_error ("bytes.find: " ^ Value.to_string v))
      in
      match Hbytes.find from needle with
      | Some it -> Value.Tuple [| Value.Bool true; Value.Iter (Value.Ibytes it) |]
      | None ->
          Value.Tuple
            [| Value.Bool false;
               Value.Iter (Value.Ibytes from) |])
  | B_match_prefix ->
      let it = Value.as_bytes_iter (a 0) in
      let s =
        match a 1 with
        | Value.Bytes b -> Hbytes.to_string b
        | Value.String s -> s
        | v -> raise (Value.type_error ("bytes.match_prefix: " ^ Value.to_string v))
      in
      Value.Bool (blocking (fun () -> Hbytes.match_prefix it s))
  | B_can_read ->
      let it = Value.as_bytes_iter (a 0) in
      Value.Bool (Hbytes.available it >= Value.as_int_i (a 1))
  | B_read ->
      let it = Value.as_bytes_iter (a 0) and n = Value.as_int_i (a 1) in
      if n < 0 then raise (Value.value_error "bytes.read: negative length");
      let data, it' = blocking (fun () -> Hbytes.read it n) in
      let b = Hbytes.of_string data in
      Hbytes.freeze b;
      Value.Tuple [| Value.Bytes b; Value.Iter (Value.Ibytes it') |]
  | B_to_string -> Value.String (Hbytes.to_string (Value.as_bytes (a 0)))
  | B_to_int -> (
      let s = String.trim (Hbytes.to_string (Value.as_bytes (a 0))) in
      let base = if Array.length args > 1 then Value.as_int_i (a 1) else 10 in
      let s_prefixed =
        match base with
        | 10 -> s
        | 16 -> "0x" ^ s
        | 8 -> "0o" ^ s
        | _ -> raise (Value.value_error "bytes.to_int: bad base")
      in
      match Int64.of_string_opt s_prefixed with
      | Some v -> Value.Int v
      | None -> raise (Value.value_error ("bytes.to_int: " ^ s)))
  | B_eq ->
      Value.Bool
        (Hbytes.to_string (Value.as_bytes (a 0)) = Hbytes.to_string (Value.as_bytes (a 1)))
  | B_starts_with ->
      let b = Value.as_bytes (a 0) in
      let s =
        match a 1 with
        | Value.Bytes x -> Hbytes.to_string x
        | Value.String x -> x
        | v -> raise (Value.type_error (Value.to_string v))
      in
      let content = Hbytes.to_string b in
      Value.Bool
        (String.length s <= String.length content
        && String.sub content 0 (String.length s) = s)
  | B_contains -> (
      let b = Value.as_bytes (a 0) in
      let s =
        match a 1 with
        | Value.Bytes x -> Hbytes.to_string x
        | Value.String x -> x
        | v -> raise (Value.type_error (Value.to_string v))
      in
      match Hbytes.find (Hbytes.begin_ b) s with
      | Some _ -> Value.Bool true
      | None -> Value.Bool false)
  | B_offset ->
      let b = Value.as_bytes (a 0) in
      Value.Iter (Value.Ibytes (Hbytes.iter_at b (Value.as_int_i (a 1))))
  | B_unpack_uint | B_unpack_sint ->
      let it = Value.as_bytes_iter (a 0) in
      let width = Value.as_int_i (a 1) in
      let order = if Value.as_bool (a 2) then Hbytes.Big else Hbytes.Little in
      let read = if op = B_unpack_uint then Hbytes.read_uint else Hbytes.read_sint in
      let v, it' = blocking (fun () -> read it ~width ~order) in
      Value.Tuple [| Value.Int v; Value.Iter (Value.Ibytes it') |]
  | B_upper ->
      let b = Hbytes.of_string (String.uppercase_ascii (Hbytes.to_string (Value.as_bytes (a 0)))) in
      Hbytes.freeze b;
      Value.Bytes b
  | B_lower ->
      let b = Hbytes.of_string (String.lowercase_ascii (Hbytes.to_string (Value.as_bytes (a 0)))) in
      Hbytes.freeze b;
      Value.Bytes b

and exec_iter op args =
  let a n = args.(n) in
  let open Hilti_types in
  match op with
  | I_begin -> (
      match a 0 with
      | Value.Bytes b -> Value.Iter (Value.Ibytes (Hbytes.begin_ b))
      | Value.List d -> Value.Iter (Value.Isnapshot (ref (Deque.to_list d)))
      | Value.Vector v -> Value.Iter (Value.Ivector (v, 0))
      | Value.Set s ->
          let elems = Hilti_rt.Exp_map.fold (fun _ v acc -> v :: acc) s [] in
          Value.Iter (Value.Isnapshot (ref (List.rev elems)))
      | Value.Map m ->
          let elems =
            Hilti_rt.Exp_map.fold
              (fun _ (k, v) acc -> Value.Tuple [| k; v |] :: acc)
              m []
          in
          Value.Iter (Value.Isnapshot (ref (List.rev elems)))
      | v -> raise (Value.type_error ("iter.begin: " ^ Value.to_string v)))
  | I_end -> (
      match a 0 with
      | Value.Bytes b -> Value.Iter (Value.Ibytes (Hbytes.end_ b))
      | Value.Iter (Value.Ibytes it) ->
          (* End of the iterator's underlying bytes object. *)
          Value.Iter (Value.Ibytes (Hbytes.end_ (it_bytes it)))
      | Value.List _ | Value.Set _ | Value.Map _ ->
          Value.Iter (Value.Isnapshot (ref []))
      | Value.Vector v -> Value.Iter (Value.Ivector (v, Dynarray.size v))
      | v -> raise (Value.type_error ("iter.end: " ^ Value.to_string v)))
  | I_incr -> (
      match Value.as_iter (a 0) with
      | Value.Ibytes it -> Value.Iter (Value.Ibytes (Hbytes.incr it))
      | Value.Isnapshot l -> (
          match !l with
          | [] -> raise (Value.index_error ())
          | _ :: rest -> Value.Iter (Value.Isnapshot (ref rest)))
      | Value.Ivector (v, i) -> Value.Iter (Value.Ivector (v, i + 1)))
  | I_advance -> (
      let n = Value.as_int_i (a 1) in
      match Value.as_iter (a 0) with
      | Value.Ibytes it -> Value.Iter (Value.Ibytes (Hbytes.advance it n))
      | Value.Isnapshot l ->
          let rec drop k lst = if k <= 0 then lst else match lst with [] -> [] | _ :: r -> drop (k - 1) r in
          Value.Iter (Value.Isnapshot (ref (drop n !l)))
      | Value.Ivector (v, i) -> Value.Iter (Value.Ivector (v, i + n)))
  | I_deref -> (
      match Value.as_iter (a 0) with
      | Value.Ibytes it -> Value.Int (Int64.of_int (blocking (fun () -> Hbytes.get it)))
      | Value.Isnapshot l -> (
          match !l with [] -> raise (Value.index_error ()) | x :: _ -> x)
      | Value.Ivector (v, i) -> (
          match Dynarray.get v i with
          | x -> x
          | exception Dynarray.Out_of_bounds -> raise (Value.index_error ())))
  | I_eq -> (
      match (Value.as_iter (a 0), Value.as_iter (a 1)) with
      | Value.Ibytes x, Value.Ibytes y -> Value.Bool (Hbytes.iter_equal x y)
      | Value.Isnapshot x, Value.Isnapshot y ->
          Value.Bool (List.length !x = List.length !y)
      | Value.Ivector (_, i), Value.Ivector (_, j) -> Value.Bool (i = j)
      | _ -> Value.Bool false)
  | I_distance -> (
      match (Value.as_iter (a 0), Value.as_iter (a 1)) with
      | Value.Ibytes x, Value.Ibytes y -> Value.Int (Int64.of_int (Hbytes.distance x y))
      | Value.Ivector (_, i), Value.Ivector (_, j) -> Value.Int (Int64.of_int (j - i))
      | _ -> raise (Value.type_error "iter.distance"))
  | I_at_end -> (
      match Value.as_iter (a 0) with
      | Value.Ibytes it -> Value.Bool (Hbytes.at_end it)
      | Value.Isnapshot l -> Value.Bool (!l = [])
      | Value.Ivector (v, i) -> Value.Bool (i >= Dynarray.size v))
  | I_is_eod -> (
      match Value.as_iter (a 0) with
      | Value.Ibytes it -> Value.Bool (Hbytes.is_eod it)
      | Value.Isnapshot l -> Value.Bool (!l = [])
      | Value.Ivector (v, i) -> Value.Bool (i >= Dynarray.size v))
  | I_is_frozen -> (
      match Value.as_iter (a 0) with
      | Value.Ibytes it -> Value.Bool (Hbytes.is_frozen (it_bytes it))
      | Value.Isnapshot _ | Value.Ivector _ -> Value.Bool true)

and exec_addr op args =
  let a n = args.(n) in
  let open Hilti_types in
  match op with
  | AD_family ->
      let fam = Addr.family (Value.as_addr (a 0)) in
      Value.Enum ("Hilti::AddrFamily", (match fam with Addr.IPv4 -> 4 | Addr.IPv6 -> 6), false)
  | AD_eq -> Value.Bool (Addr.equal (Value.as_addr (a 0)) (Value.as_addr (a 1)))
  | AD_mask ->
      let addr = Value.as_addr (a 0) and len = Value.as_int_i (a 1) in
      Value.Net (Network.make addr len)
  | AD_to_string -> Value.String (Addr.to_string (Value.as_addr (a 0)))

and exec_port op args =
  let a n = args.(n) in
  let open Hilti_types in
  match op with
  | PO_protocol ->
      let proto = Port.proto (Value.as_port (a 0)) in
      Value.Enum
        ( "Hilti::Protocol",
          (match proto with Port.TCP -> 1 | Port.UDP -> 2 | Port.ICMP -> 3),
          false )
  | PO_number -> Value.Int (Int64.of_int (Port.number (Value.as_port (a 0))))
  | PO_eq -> Value.Bool (Port.equal (Value.as_port (a 0)) (Value.as_port (a 1)))

and exec_net op args =
  let a n = args.(n) in
  let open Hilti_types in
  match op with
  | NE_contains -> Value.Bool (Network.contains (Value.as_net (a 0)) (Value.as_addr (a 1)))
  | NE_prefix -> Value.Addr (Network.prefix (Value.as_net (a 0)))
  | NE_length -> Value.Int (Int64.of_int (Network.length (Value.as_net (a 0))))
  | NE_eq -> Value.Bool (Network.equal (Value.as_net (a 0)) (Value.as_net (a 1)))

and exec_time op args =
  let a n = args.(n) in
  let open Hilti_types in
  match op with
  | TI_add -> Value.Time (Time_ns.add (Value.as_time (a 0)) (Interval_ns.to_ns (Value.as_interval (a 1))))
  | TI_sub -> Value.Interval (Interval_ns.of_ns (Time_ns.diff (Value.as_time (a 0)) (Value.as_time (a 1))))
  | TI_cmp c -> Value.Bool (compare_by c (Time_ns.compare (Value.as_time (a 0)) (Value.as_time (a 1))))
  | TI_wall -> Value.Time (Time_ns.now ())
  | TI_to_double -> Value.Double (Time_ns.to_float (Value.as_time (a 0)))
  | TI_nsecs -> Value.Int (Time_ns.to_ns (Value.as_time (a 0)))

and exec_interval op args =
  let a n = args.(n) in
  let open Hilti_types in
  match op with
  | IV_add -> Value.Interval (Interval_ns.add (Value.as_interval (a 0)) (Value.as_interval (a 1)))
  | IV_sub -> Value.Interval (Interval_ns.sub (Value.as_interval (a 0)) (Value.as_interval (a 1)))
  | IV_mul -> Value.Interval (Interval_ns.mul (Value.as_interval (a 0)) (Value.as_int_i (a 1)))
  | IV_eq -> Value.Bool (Interval_ns.equal (Value.as_interval (a 0)) (Value.as_interval (a 1)))
  | IV_lt -> Value.Bool (Interval_ns.compare (Value.as_interval (a 0)) (Value.as_interval (a 1)) < 0)
  | IV_to_double -> Value.Double (Interval_ns.to_float (Value.as_interval (a 0)))
  | IV_nsecs -> Value.Int (Interval_ns.to_ns (Value.as_interval (a 0)))

and exec_struct op args =
  let a n = args.(n) in
  let s = Value.as_struct (a 0) in
  match op with
  | ST_get f -> (
      match !(Value.struct_field s f) with
      | Some v -> v
      | None -> raise (Value.unset_field f))
  | ST_get_default f -> (
      match !(Value.struct_field s f) with Some v -> v | None -> a 1)
  | ST_set f ->
      Value.struct_field s f := Some (a 1);
      Value.Null
  | ST_unset f ->
      Value.struct_field s f := None;
      Value.Null
  | ST_is_set f -> Value.Bool (!(Value.struct_field s f) <> None)

and exec_list op args =
  let a n = args.(n) in
  let d = Value.as_list (a 0) in
  match op with
  | L_append ->
      Deque.push_back d (a 1);
      Value.Null
  | L_push_front ->
      Deque.push_front d (a 1);
      Value.Null
  | L_pop_front -> (
      match Deque.pop_front d with Some v -> v | None -> raise (Value.underflow ()))
  | L_front -> (
      match Deque.peek_front d with Some v -> v | None -> raise (Value.underflow ()))
  | L_back -> (
      match Deque.peek_back d with Some v -> v | None -> raise (Value.underflow ()))
  | L_size -> Value.Int (Int64.of_int (Deque.size d))
  | L_clear ->
      Deque.clear d;
      Value.Null

and exec_vector op args =
  let a n = args.(n) in
  let v = Value.as_vector (a 0) in
  let guard f = try f () with Dynarray.Out_of_bounds -> raise (Value.index_error ()) in
  match op with
  | V_push_back ->
      Dynarray.push v (a 1);
      Value.Null
  | V_get -> guard (fun () -> Dynarray.get v (Value.as_int_i (a 1)))
  | V_set ->
      guard (fun () ->
          Dynarray.set v (Value.as_int_i (a 1)) (a 2);
          Value.Null)
  | V_size -> Value.Int (Int64.of_int (Dynarray.size v))
  | V_reserve ->
      Dynarray.reserve v (Value.as_int_i (a 1));
      Value.Null
  | V_clear ->
      Dynarray.clear v;
      Value.Null
  | V_pop_back -> guard (fun () -> Dynarray.pop v)

and expire_strategy_of args i =
  (* (strategy enum, interval) trailing arguments of *.timeout. *)
  let strategy_val =
    match args.(i) with
    | Value.Enum (_, v, _) -> v
    | Value.Int v -> Int64.to_int v
    | v -> raise (Value.type_error ("expire strategy: " ^ Value.to_string v))
  in
  let ival = Value.as_interval args.(i + 1) in
  match strategy_val with
  | 0 -> Hilti_rt.Expire.Create ival
  | 1 -> Hilti_rt.Expire.Access ival
  | 2 -> Hilti_rt.Expire.Write ival
  | _ -> Hilti_rt.Expire.Never

and exec_set ctx op args =
  let a n = args.(n) in
  let s = Value.as_set (a 0) in
  match op with
  | SE_insert ->
      Hilti_rt.Exp_map.insert s (Value.key_string (a 1)) (a 1);
      Value.Null
  | SE_exists -> Value.Bool (Hilti_rt.Exp_map.mem_touch s (Value.key_string (a 1)))
  | SE_remove ->
      Hilti_rt.Exp_map.remove s (Value.key_string (a 1));
      Value.Null
  | SE_size -> Value.Int (Int64.of_int (Hilti_rt.Exp_map.size s))
  | SE_clear ->
      Hilti_rt.Exp_map.clear s;
      Value.Null
  | SE_timeout ->
      Hilti_rt.Exp_map.set_timeout s (expire_strategy_of args 1) (current_timer_mgr ctx);
      Value.Null

and exec_map ctx op args =
  let a n = args.(n) in
  let m = Value.as_map (a 0) in
  match op with
  | M_insert ->
      Hilti_rt.Exp_map.insert m (Value.key_string (a 1)) (a 1, a 2);
      Value.Null
  | M_get -> (
      match Hilti_rt.Exp_map.find_opt m (Value.key_string (a 1)) with
      | Some (_, v) -> v
      | None -> raise (Value.index_error ()))
  | M_get_default -> (
      match Hilti_rt.Exp_map.find_opt m (Value.key_string (a 1)) with
      | Some (_, v) -> v
      | None -> a 2)
  | M_exists -> Value.Bool (Hilti_rt.Exp_map.mem_touch m (Value.key_string (a 1)))
  | M_remove ->
      Hilti_rt.Exp_map.remove m (Value.key_string (a 1));
      Value.Null
  | M_size -> Value.Int (Int64.of_int (Hilti_rt.Exp_map.size m))
  | M_clear ->
      Hilti_rt.Exp_map.clear m;
      Value.Null
  | M_default ->
      let default = a 1 in
      Hilti_rt.Exp_map.set_default m (fun _ -> (Value.Null, Value.deep_copy default));
      Value.Null
  | M_timeout ->
      Hilti_rt.Exp_map.set_timeout m (expire_strategy_of args 1) (current_timer_mgr ctx);
      Value.Null

and exec_channel op args =
  let a n = args.(n) in
  let c = Value.as_channel (a 0) in
  match op with
  | CH_write ->
      blocking (fun () ->
          if not (Hilti_rt.Channel.try_write c (Value.deep_copy (a 1))) then
            raise Hilti_types.Hbytes.Would_block);
      Value.Null
  | CH_read ->
      blocking (fun () ->
          match Hilti_rt.Channel.try_read c with
          | Some v -> v
          | None -> raise Hilti_types.Hbytes.Would_block)
  | CH_try_read -> (
      match Hilti_rt.Channel.try_read c with
      | Some v -> Value.Tuple [| Value.Bool true; v |]
      | None -> Value.Tuple [| Value.Bool false; Value.Null |])
  | CH_size -> Value.Int (Int64.of_int (Hilti_rt.Channel.size c))

and classifier_field_of_value (v : Value.t) : Hilti_rt.Classifier.field =
  let open Hilti_types in
  match v with
  | Value.Net n -> Hilti_rt.Classifier.field_of_network n
  | Value.Addr addr -> Hilti_rt.Classifier.field_of_addr addr
  | Value.Port p -> Hilti_rt.Classifier.field_of_port p
  | Value.Int i ->
      let b = Bytes.create 8 in
      Bytes.set_int64_be b 0 i;
      Hilti_rt.Classifier.field_of_string (Bytes.to_string b)
  | Value.Bool b_ ->
      Hilti_rt.Classifier.field_of_string (if b_ then "\x01" else "\x00")
  | Value.Bytes b -> Hilti_rt.Classifier.field_of_string (Hbytes.to_string b)
  | Value.String s -> Hilti_rt.Classifier.field_of_string s
  | Value.Null -> Hilti_rt.Classifier.wildcard
  | v -> raise (Value.type_error ("classifier field: " ^ Value.to_string v))

and classifier_key_of_value (v : Value.t) : string =
  (classifier_field_of_value v).Hilti_rt.Classifier.data

and exec_classifier op args =
  let a n = args.(n) in
  let c = Value.as_classifier (a 0) in
  match op with
  | CL_add ->
      let fields =
        match a 1 with
        | Value.Tuple vs -> Array.map classifier_field_of_value vs
        | Value.Struct s ->
            Array.map
              (fun (_, f) ->
                match !f with
                | Some v -> classifier_field_of_value v
                | None -> Hilti_rt.Classifier.wildcard)
              s.Value.sfields
        | v -> [| classifier_field_of_value v |]
      in
      let priority =
        if Array.length args > 3 then Value.as_int_i (a 3) else 0
      in
      Hilti_rt.Classifier.add c.Value.cls ~priority fields (a 2);
      Value.Null
  | CL_compile ->
      Hilti_rt.Classifier.compile c.Value.cls;
      Value.Null
  | CL_get -> (
      let keys =
        match a 1 with
        | Value.Tuple vs -> Array.map classifier_key_of_value vs
        | v -> [| classifier_key_of_value v |]
      in
      match Hilti_rt.Classifier.get c.Value.cls keys with
      | Some v -> v
      | None -> raise (Value.index_error ()))
  | CL_matches -> (
      let keys =
        match a 1 with
        | Value.Tuple vs -> Array.map classifier_key_of_value vs
        | v -> [| classifier_key_of_value v |]
      in
      match Hilti_rt.Classifier.get c.Value.cls keys with
      | Some _ -> Value.Bool true
      | None -> Value.Bool false)

and exec_regexp op args =
  let a n = args.(n) in
  let open Hilti_types in
  match op with
  | RE_compile ->
      let patterns =
        match a 0 with
        | Value.String s -> [ s ]
        | Value.Bytes b -> [ Hbytes.to_string b ]
        | Value.List d ->
            List.map
              (function
                | Value.String s -> s
                | Value.Bytes b -> Hbytes.to_string b
                | v -> raise (Value.type_error (Value.to_string v)))
              (Deque.to_list d)
        | Value.Tuple vs ->
            Array.to_list
              (Array.map
                 (function
                   | Value.String s -> s
                   | Value.Bytes b -> Hbytes.to_string b
                   | v -> raise (Value.type_error (Value.to_string v)))
                 vs)
        | v -> raise (Value.type_error ("regexp.compile: " ^ Value.to_string v))
      in
      Value.Regexp (Hilti_rt.Regexp.compile patterns)
  | RE_find -> (
      let re = Value.as_regexp (a 0) in
      let it =
        match a 1 with
        | Value.Bytes b -> Hbytes.begin_ b
        | Value.Iter (Value.Ibytes it) -> it
        | v -> raise (Value.type_error (Value.to_string v))
      in
      let data = Hbytes.sub it (Hbytes.end_ (it_bytes it)) in
      match Hilti_rt.Regexp.search re data ~pos:0 with
      | Some (_, id, _) -> Value.Int (Int64.of_int id)
      | None -> Value.Int (-1L))
  | RE_match_token ->
      let re = Value.as_regexp (a 0) in
      let it = Value.as_bytes_iter (a 1) in
      exec_match_token re it
  | RE_span -> (
      let re = Value.as_regexp (a 0) in
      let b = Value.as_bytes (a 1) in
      let data = Hbytes.to_string b in
      match Hilti_rt.Regexp.search re data ~pos:0 with
      | Some (start, id, len) ->
          Value.Tuple
            [| Value.Int (Int64.of_int id);
               Value.Iter (Value.Ibytes (Hbytes.iter_at b (Hbytes.start_offset b + start)));
               Value.Iter (Value.Ibytes (Hbytes.iter_at b (Hbytes.start_offset b + start + len))) |]
      | None -> Value.Tuple [| Value.Int (-1L); Value.Iter (Value.Ibytes (Hbytes.begin_ b)); Value.Iter (Value.Ibytes (Hbytes.begin_ b)) |])
  | RE_groups ->
      Value.Int (Int64.of_int (List.length (Hilti_rt.Regexp.patterns (Value.as_regexp (a 0)))))

and it_bytes (it : Hilti_types.Hbytes.iter) = it.Hilti_types.Hbytes.bytes

(* Incremental anchored token match: longest match semantics, suspending
   the fiber while the outcome is undecidable. *)
and exec_match_token re (start : Hilti_types.Hbytes.iter) : Value.t =
  let open Hilti_types in
  let m = Hilti_rt.Regexp.matcher re in
  let b = it_bytes start in
  (* Track how much we already fed across waits. *)
  let fed = ref start.Hbytes.pos in
  let rec loop2 () =
    let end_off = Hbytes.end_offset b in
    if !fed < end_off then begin
      let chunk = Hbytes.sub (Hbytes.iter_at b !fed) (Hbytes.end_ b) in
      let consumed = Hilti_rt.Regexp.feed m chunk 0 (String.length chunk) in
      fed := !fed + consumed
    end;
    let final = Hbytes.is_frozen b in
    match Hilti_rt.Regexp.result m ~final with
    | Hilti_rt.Regexp.Match (id, len) ->
        Value.Tuple
          [| Value.Int (Int64.of_int id);
             Value.Iter (Value.Ibytes (Hbytes.advance start len)) |]
    | Hilti_rt.Regexp.No_match ->
        Value.Tuple [| Value.Int (-1L); Value.Iter (Value.Ibytes start) |]
    | Hilti_rt.Regexp.Need_more ->
        (match Hilti_rt.Fiber.yield () with
        | () -> ()
        | exception Effect.Unhandled _ -> raise (Value.would_block ()));
        loop2 ()
  in
  loop2 ()

and exec_overlay ctx spec args =
  ignore ctx;
  let open Hilti_types in
  let it =
    match args.(0) with
    | Value.Bytes b -> Hbytes.begin_ b
    | Value.Iter (Value.Ibytes it) -> it
    | v -> raise (Value.type_error ("overlay.get: " ^ Value.to_string v))
  in
  let fit = Hbytes.advance it spec.ov_offset in
  match spec.ov_fmt with
  | Module_ir.U_bytes n ->
      let data, _ = blocking (fun () -> Hbytes.read fit n) in
      let b = Hbytes.of_string data in
      Hbytes.freeze b;
      Value.Bytes b
  | Module_ir.U_ipv4 ->
      let v, _ = blocking (fun () -> Hbytes.read_uint fit ~width:4 ~order:Hbytes.Big) in
      Value.Addr (Addr.of_ipv4_int32 (Int64.to_int32 v))
  | Module_ir.U_uint (w, order) | Module_ir.U_sint (w, order) ->
      let signed = match spec.ov_fmt with Module_ir.U_sint _ -> true | _ -> false in
      let read = if signed then Hbytes.read_sint else Hbytes.read_uint in
      let v, _ = blocking (fun () -> read fit ~width:w ~order) in
      let v =
        match spec.ov_bits with
        | Some (lo, hi) ->
            let width = hi - lo + 1 in
            Int64.logand (Int64.shift_right_logical v lo)
              (Int64.sub (Int64.shift_left 1L width) 1L)
        | None -> v
      in
      Value.Int v

and exec_file ctx op args =
  let a n = args.(n) in
  match op with
  | F_open ->
      let path = Value.as_string (a 0) in
      let mode =
        if Array.length args > 1 then Value.as_string (a 1) else "disk"
      in
      if mode = "memory" then Value.File (Hilti_rt.Hfile.open_memory ~serializer:ctx.scheduler path)
      else Value.File (Hilti_rt.Hfile.open_disk ~serializer:ctx.scheduler path)
  | F_write ->
      let f = Value.as_file (a 0) in
      let data =
        match a 1 with
        | Value.String s -> s
        | Value.Bytes b -> Hilti_types.Hbytes.to_string b
        | v -> Value.to_string v
      in
      Hilti_rt.Hfile.write f data;
      Value.Null
  | F_close ->
      Hilti_rt.Hfile.close (Value.as_file (a 0));
      Value.Null

(* ---- The dispatch loop ------------------------------------------------------------ *)

(* Two handwritten copies of the dispatch loop: [exec_func_checked] with
   ordinary (bounds-checked) array accesses, and [exec_func_verified]
   using [Array.unsafe_get]/[unsafe_set] for registers, code fetch and
   globals — every one of those accesses was proven in range by {!Verify}
   before [program.verified] was set.  A functor would express this once,
   but without flambda the functor call stays indirect in the hottest
   loop, which is exactly the cost verified mode exists to remove. *)

and exec_func ctx (fidx : int) (args : Value.t list) : Value.t =
  if ctx.program.specialized then exec_func_spec ctx fidx args
  else if ctx.program.verified then exec_func_verified ctx fidx args
  else exec_func_checked ctx fidx args

and exec_func_checked ctx (fidx : int) (args : Value.t list) : Value.t =
  let f = ctx.program.funcs.(fidx) in
  let slot = acquire_frame ctx fidx f in
  let regs =
    match slot with Some s -> s.a_regs | None -> Array.copy f.reg_defaults
  in
  let frame = { regs; pc = 0; tries = [] } in
  List.iteri (fun i v -> if i < f.nregs then frame.regs.(i) <- v) args;
  let code = f.code in
  let result = ref Value.Null in
  let running = ref true in
  (* Metrics tally, allocated only when observability is on; flushed into
     the sharded counters once per activation, not per instruction. *)
  let obs =
    if Hilti_obs.Metrics.enabled () then Some (Array.make n_opgroups 0) else None
  in
  let instrs_at_entry = ctx.instr_count in
  (try
     while !running do
    let i = code.(frame.pc) in
    ctx.instr_count <- ctx.instr_count + 1;
    if ctx.instr_count >= ctx.step_kill then raise Step_budget_exceeded;
    ctx.cycles := !(ctx.cycles) + 1;
    (match obs with
    | Some ops ->
        let g = opgroup_of i in
        ops.(g) <- ops.(g) + 1
    | None -> ());
    let next = frame.pc + 1 in
    (try
       match i with
       | Const (dst, v) ->
           setreg frame dst v;
           frame.pc <- next
       | Mov (dst, src) ->
           setreg frame dst (reg frame src);
           frame.pc <- next
       | LoadGlobal (dst, slot) ->
           setreg frame dst (current_globals ctx).(slot);
           frame.pc <- next
       | StoreGlobal (slot, src) ->
           (current_globals ctx).(slot) <- reg frame src;
           frame.pc <- next
       | Jump pc -> frame.pc <- pc
       | Br (c, t, e) -> frame.pc <- (if Value.as_bool (reg frame c) then t else e)
       | Switch (v, default, cases) ->
           let value = reg frame v in
           let rec find k =
             if k >= Array.length cases then default
             else
               let cv, pc = cases.(k) in
               if Value.equal cv value then pc else find (k + 1)
           in
           frame.pc <- find 0
       | Call (callee, arg_regs, dst) ->
           let args = Array.to_list (Array.map (reg frame) arg_regs) in
           let r = exec_func ctx callee args in
           setreg frame dst r;
           frame.pc <- next
       | CallC (name, arg_regs, dst) -> (
           match Hashtbl.find_opt ctx.host_funcs name with
           | Some fn ->
               let args = Array.to_list (Array.map (reg frame) arg_regs) in
               setreg frame dst (fn ctx args);
               frame.pc <- next
           | None -> fail "unresolved host function %s" name)
       | Ret r ->
           result := (if r >= 0 then reg frame r else Value.Null);
           running := false
       | TryPush (handler, exc_reg) ->
           frame.tries <- (handler, exc_reg) :: frame.tries;
           frame.pc <- next
       | TryPop ->
           (match frame.tries with
           | _ :: rest -> frame.tries <- rest
           | [] -> ());
           frame.pc <- next
       | Throw r -> (
           match reg frame r with
           | Value.Exception e -> raise (Value.Hilti_error e)
           | v -> raise (Value.Hilti_error { ename = "Hilti::Exception"; earg = v }))
       | Yield ->
           (match Hilti_rt.Fiber.yield () with
           | () -> ()
           | exception Effect.Unhandled _ ->
               (* Suspending outside a fiber cannot park anywhere. *)
               raise (Value.would_block ()));
           frame.pc <- next
       | HookRun (name, arg_regs) ->
           let args = Array.to_list (Array.map (reg frame) arg_regs) in
           run_hook ctx name args;
           frame.pc <- next
       | Schedule (callee, arg_regs, tid_reg) ->
           let tid = Value.as_int (reg frame tid_reg) in
           let args =
             Array.to_list (Array.map (fun r -> Value.deep_copy (reg frame r)) arg_regs)
           in
           schedule_job ctx tid callee args;
           frame.pc <- next
       | Bind (callee, arg_regs, dst) ->
           let args = Array.to_list (Array.map (reg frame) arg_regs) in
           let name = ctx.program.funcs.(callee).name in
           setreg frame dst
             (Value.Callable
                {
                  description = name;
                  (* Resolve at invocation: the callable may fire later on a
                     different domain (e.g. from a migrated timer). *)
                  invoke = (fun () -> exec_func (exec_context ctx) callee args);
                });
           frame.pc <- next
       | Prim (p, arg_regs, dst) ->
           let args = Array.map (reg frame) arg_regs in
           let v =
             (* Substrate-level exceptions surface as HILTI exceptions so
                generated code can catch them. *)
             try exec_prim ctx p args with
             | Hilti_types.Hbytes.Out_of_range ->
                 raise (Value.value_error "bytes: out of range")
             | Hilti_types.Hbytes.Frozen ->
                 raise (Value.value_error "bytes: frozen")
             | Hilti_rt.Regexp.Parse_error msg -> raise (Value.value_error msg)
             | Invalid_argument msg ->
                 (* Hostile field values (e.g. a lying length that goes
                    negative) reach substrate primitives; surface them as a
                    catchable HILTI exception, not a raw OCaml crash. *)
                 raise (Value.value_error ("prim: " ^ msg))
           in
           setreg frame dst v;
           frame.pc <- next
       | Nop -> frame.pc <- next
       | IConst_u _ | IMov_u _ | UnboxI _ | BoxI _ | IArith_u _ | IArithK_u _
       | ICmp_u _ | ICmpK_u _ | IBrCmp_u _ | IBrCmpK_u _ | IIncrJ_u _
       | FConst_u _ | FMov_u _ | UnboxF _ | BoxF _ | FArith_u _ | FCmp_u _
       | FBrCmp_u _ ->
           (* Specialized programs are routed to [exec_func_spec]; a bank
              opcode reaching this loop is a dispatch bug, not user error. *)
           fail "specialized opcode in %s outside specialized dispatch" f.name
     with Value.Hilti_error e when frame.tries <> [] && e.Value.ename <> "Hilti::HookStop" ->
       let handler, exc_reg = List.hd frame.tries in
       frame.tries <- List.tl frame.tries;
       setreg frame exc_reg (Value.Exception e);
       frame.pc <- handler)
     done
   with e ->
     release_frame slot;
     raise e);
  release_frame slot;
  (match obs with
  | Some ops ->
      Array.iteri
        (fun g n -> if n > 0 then Hilti_obs.Metrics.add m_opgroup.(g) n)
        ops;
      Hilti_obs.Metrics.observe m_func_instrs (ctx.instr_count - instrs_at_entry)
  | None -> ());
  !result

(* Keep in lockstep with [exec_func_checked]; only the array accesses the
   verifier discharged differ. *)
and exec_func_verified ctx (fidx : int) (args : Value.t list) : Value.t =
  let f = ctx.program.funcs.(fidx) in
  let slot = acquire_frame ctx fidx f in
  let regs =
    match slot with Some s -> s.a_regs | None -> Array.copy f.reg_defaults
  in
  let frame = { regs; pc = 0; tries = [] } in
  List.iteri (fun i v -> if i < f.nregs then frame.regs.(i) <- v) args;
  let code = f.code in
  let result = ref Value.Null in
  let running = ref true in
  let obs =
    if Hilti_obs.Metrics.enabled () then Some (Array.make n_opgroups 0) else None
  in
  let instrs_at_entry = ctx.instr_count in
  (try
     while !running do
    let i = Array.unsafe_get code frame.pc in
    ctx.instr_count <- ctx.instr_count + 1;
    if ctx.instr_count >= ctx.step_kill then raise Step_budget_exceeded;
    ctx.cycles := !(ctx.cycles) + 1;
    (match obs with
    | Some ops ->
        let g = opgroup_of i in
        ops.(g) <- ops.(g) + 1
    | None -> ());
    let next = frame.pc + 1 in
    (try
       match i with
       | Const (dst, v) ->
           usetreg frame dst v;
           frame.pc <- next
       | Mov (dst, src) ->
           usetreg frame dst (ureg frame src);
           frame.pc <- next
       | LoadGlobal (dst, slot) ->
           usetreg frame dst (Array.unsafe_get (current_globals ctx) slot);
           frame.pc <- next
       | StoreGlobal (slot, src) ->
           Array.unsafe_set (current_globals ctx) slot (ureg frame src);
           frame.pc <- next
       | Jump pc -> frame.pc <- pc
       | Br (c, t, e) -> frame.pc <- (if Value.as_bool (ureg frame c) then t else e)
       | Switch (v, default, cases) ->
           let value = ureg frame v in
           let rec find k =
             if k >= Array.length cases then default
             else
               let cv, pc = Array.unsafe_get cases k in
               if Value.equal cv value then pc else find (k + 1)
           in
           frame.pc <- find 0
       | Call (callee, arg_regs, dst) ->
           let args = Array.to_list (Array.map (ureg frame) arg_regs) in
           let r = exec_func_verified ctx callee args in
           usetreg frame dst r;
           frame.pc <- next
       | CallC (name, arg_regs, dst) -> (
           match Hashtbl.find_opt ctx.host_funcs name with
           | Some fn ->
               let args = Array.to_list (Array.map (ureg frame) arg_regs) in
               usetreg frame dst (fn ctx args);
               frame.pc <- next
           | None -> fail "unresolved host function %s" name)
       | Ret r ->
           result := (if r >= 0 then ureg frame r else Value.Null);
           running := false
       | TryPush (handler, exc_reg) ->
           frame.tries <- (handler, exc_reg) :: frame.tries;
           frame.pc <- next
       | TryPop ->
           (match frame.tries with
           | _ :: rest -> frame.tries <- rest
           | [] -> ());
           frame.pc <- next
       | Throw r -> (
           match ureg frame r with
           | Value.Exception e -> raise (Value.Hilti_error e)
           | v -> raise (Value.Hilti_error { ename = "Hilti::Exception"; earg = v }))
       | Yield ->
           (match Hilti_rt.Fiber.yield () with
           | () -> ()
           | exception Effect.Unhandled _ ->
               raise (Value.would_block ()));
           frame.pc <- next
       | HookRun (name, arg_regs) ->
           let args = Array.to_list (Array.map (ureg frame) arg_regs) in
           run_hook ctx name args;
           frame.pc <- next
       | Schedule (callee, arg_regs, tid_reg) ->
           let tid = Value.as_int (ureg frame tid_reg) in
           let args =
             Array.to_list (Array.map (fun r -> Value.deep_copy (ureg frame r)) arg_regs)
           in
           schedule_job ctx tid callee args;
           frame.pc <- next
       | Bind (callee, arg_regs, dst) ->
           let args = Array.to_list (Array.map (ureg frame) arg_regs) in
           let name = ctx.program.funcs.(callee).name in
           usetreg frame dst
             (Value.Callable
                {
                  description = name;
                  invoke = (fun () -> exec_func (exec_context ctx) callee args);
                });
           frame.pc <- next
       | Prim (p, arg_regs, dst) ->
           let args = Array.map (ureg frame) arg_regs in
           let v =
             try exec_prim ctx p args with
             | Hilti_types.Hbytes.Out_of_range ->
                 raise (Value.value_error "bytes: out of range")
             | Hilti_types.Hbytes.Frozen ->
                 raise (Value.value_error "bytes: frozen")
             | Hilti_rt.Regexp.Parse_error msg -> raise (Value.value_error msg)
             | Invalid_argument msg ->
                 (* Hostile field values (e.g. a lying length that goes
                    negative) reach substrate primitives; surface them as a
                    catchable HILTI exception, not a raw OCaml crash. *)
                 raise (Value.value_error ("prim: " ^ msg))
           in
           usetreg frame dst v;
           frame.pc <- next
       | Nop -> frame.pc <- next
       | IConst_u _ | IMov_u _ | UnboxI _ | BoxI _ | IArith_u _ | IArithK_u _
       | ICmp_u _ | ICmpK_u _ | IBrCmp_u _ | IBrCmpK_u _ | IIncrJ_u _
       | FConst_u _ | FMov_u _ | UnboxF _ | BoxF _ | FArith_u _ | FCmp_u _
       | FBrCmp_u _ ->
           fail "specialized opcode in %s outside specialized dispatch" f.name
     with Value.Hilti_error e when frame.tries <> [] && e.Value.ename <> "Hilti::HookStop" ->
       let handler, exc_reg = List.hd frame.tries in
       frame.tries <- List.tl frame.tries;
       usetreg frame exc_reg (Value.Exception e);
       frame.pc <- handler)
     done
   with e ->
     release_frame slot;
     raise e);
  release_frame slot;
  (match obs with
  | Some ops ->
      Array.iteri
        (fun g n -> if n > 0 then Hilti_obs.Metrics.add m_opgroup.(g) n)
        ops;
      Hilti_obs.Metrics.observe m_func_instrs (ctx.instr_count - instrs_at_entry)
  | None -> ());
  !result

(* The specialized dispatch loop: verified semantics plus the unboxed
   register banks {!Specialize} attached to every function.  Each
   activation copies the immutable bank templates, exactly as [regs]
   copies [reg_defaults] — so under [Hilti_par] banks clone per frame and
   nothing mutable is shared between domains.  The bank arithmetic is
   written out inline (not via [int_arith]/[exec_prim]): without flambda a
   helper call re-boxes its int64/float arguments, which is precisely the
   allocation this loop exists to remove. *)
and exec_func_spec ctx (fidx : int) (args : Value.t list) : Value.t =
  let f = ctx.program.funcs.(fidx) in
  let sp =
    match f.spec with
    | Some s -> s
    | None -> fail "function %s has no register-bank metadata" f.name
  in
  let slot = acquire_frame ctx fidx f in
  let regs =
    match slot with Some s -> s.a_regs | None -> Array.copy f.reg_defaults
  in
  let frame = { regs; pc = 0; tries = [] } in
  List.iteri (fun i v -> if i < f.nregs then frame.regs.(i) <- v) args;
  (* [acquire_frame] already blitted the bank templates over a reused
     slot's banks, so both paths start from the template state. *)
  let ibank =
    match slot with Some s -> s.a_ibank | None -> Bytes.copy sp.ibank_init
  in
  let fbank =
    match slot with Some s -> s.a_fbank | None -> Array.copy sp.fbank_init
  in
  let code = f.code in
  let result = ref Value.Null in
  let running = ref true in
  let obs =
    if Hilti_obs.Metrics.enabled () then Some (Array.make n_opgroups 0) else None
  in
  let instrs_at_entry = ctx.instr_count in
  (try
     while !running do
    let i = Array.unsafe_get code frame.pc in
    ctx.instr_count <- ctx.instr_count + 1;
    if ctx.instr_count >= ctx.step_kill then raise Step_budget_exceeded;
    ctx.cycles := !(ctx.cycles) + 1;
    (match obs with
    | Some ops ->
        let g = opgroup_of i in
        ops.(g) <- ops.(g) + 1
    | None -> ());
    let next = frame.pc + 1 in
    (try
       match i with
       | Const (dst, v) ->
           usetreg frame dst v;
           frame.pc <- next
       | Mov (dst, src) ->
           usetreg frame dst (ureg frame src);
           frame.pc <- next
       | LoadGlobal (dst, slot) ->
           usetreg frame dst (Array.unsafe_get (current_globals ctx) slot);
           frame.pc <- next
       | StoreGlobal (slot, src) ->
           Array.unsafe_set (current_globals ctx) slot (ureg frame src);
           frame.pc <- next
       | Jump pc -> frame.pc <- pc
       | Br (c, t, e) -> frame.pc <- (if Value.as_bool (ureg frame c) then t else e)
       | Switch (v, default, cases) ->
           let value = ureg frame v in
           let rec find k =
             if k >= Array.length cases then default
             else
               let cv, pc = Array.unsafe_get cases k in
               if Value.equal cv value then pc else find (k + 1)
           in
           frame.pc <- find 0
       | Call (callee, arg_regs, dst) ->
           let args = Array.to_list (Array.map (ureg frame) arg_regs) in
           let r = exec_func_spec ctx callee args in
           usetreg frame dst r;
           frame.pc <- next
       | CallC (name, arg_regs, dst) -> (
           match Hashtbl.find_opt ctx.host_funcs name with
           | Some fn ->
               let args = Array.to_list (Array.map (ureg frame) arg_regs) in
               usetreg frame dst (fn ctx args);
               frame.pc <- next
           | None -> fail "unresolved host function %s" name)
       | Ret r ->
           result := (if r >= 0 then ureg frame r else Value.Null);
           running := false
       | TryPush (handler, exc_reg) ->
           frame.tries <- (handler, exc_reg) :: frame.tries;
           frame.pc <- next
       | TryPop ->
           (match frame.tries with
           | _ :: rest -> frame.tries <- rest
           | [] -> ());
           frame.pc <- next
       | Throw r -> (
           match ureg frame r with
           | Value.Exception e -> raise (Value.Hilti_error e)
           | v -> raise (Value.Hilti_error { ename = "Hilti::Exception"; earg = v }))
       | Yield ->
           (match Hilti_rt.Fiber.yield () with
           | () -> ()
           | exception Effect.Unhandled _ ->
               raise (Value.would_block ()));
           frame.pc <- next
       | HookRun (name, arg_regs) ->
           let args = Array.to_list (Array.map (ureg frame) arg_regs) in
           run_hook ctx name args;
           frame.pc <- next
       | Schedule (callee, arg_regs, tid_reg) ->
           let tid = Value.as_int (ureg frame tid_reg) in
           let args =
             Array.to_list (Array.map (fun r -> Value.deep_copy (ureg frame r)) arg_regs)
           in
           schedule_job ctx tid callee args;
           frame.pc <- next
       | Bind (callee, arg_regs, dst) ->
           let args = Array.to_list (Array.map (ureg frame) arg_regs) in
           let name = ctx.program.funcs.(callee).name in
           usetreg frame dst
             (Value.Callable
                {
                  description = name;
                  invoke = (fun () -> exec_func (exec_context ctx) callee args);
                });
           frame.pc <- next
       | Prim (p, arg_regs, dst) ->
           let args = Array.map (ureg frame) arg_regs in
           let v =
             try exec_prim ctx p args with
             | Hilti_types.Hbytes.Out_of_range ->
                 raise (Value.value_error "bytes: out of range")
             | Hilti_types.Hbytes.Frozen ->
                 raise (Value.value_error "bytes: frozen")
             | Hilti_rt.Regexp.Parse_error msg -> raise (Value.value_error msg)
             | Invalid_argument msg ->
                 (* Hostile field values (e.g. a lying length that goes
                    negative) reach substrate primitives; surface them as a
                    catchable HILTI exception, not a raw OCaml crash. *)
                 raise (Value.value_error ("prim: " ^ msg))
           in
           usetreg frame dst v;
           frame.pc <- next
       | Nop -> frame.pc <- next
       (* ---- Int bank ---- *)
       | IConst_u (d, k) ->
           ibank_set ibank (d lsl 3) k;
           frame.pc <- next
       | IMov_u (d, s) ->
           ibank_set ibank (d lsl 3) (ibank_get ibank (s lsl 3));
           frame.pc <- next
       | UnboxI (d, s) ->
           (* Mirrors [Value.as_int] so failure counting matches the
              generic path. *)
           (match ureg frame s with
           | Value.Int k -> ibank_set ibank (d lsl 3) k
           | v -> raise (Value.type_error ("int: " ^ Value.to_string v)));
           frame.pc <- next
       | BoxI (d, s) ->
           usetreg frame d (Value.Int (ibank_get ibank (s lsl 3)));
           frame.pc <- next
       | IArith_u (op, w, d, a, b) ->
           let x = ibank_get ibank (a lsl 3) and y = ibank_get ibank (b lsl 3) in
           let r =
             match op with
             | A_add -> Int64.add x y
             | A_sub -> Int64.sub x y
             | A_mul -> Int64.mul x y
             | A_div -> if y = 0L then raise (Value.division_by_zero ()) else Int64.div x y
             | A_mod -> if y = 0L then raise (Value.division_by_zero ()) else Int64.rem x y
             | A_shl -> Int64.shift_left x (Int64.to_int y land 63)
             | A_shr -> Int64.shift_right_logical x (Int64.to_int y land 63)
             | A_and -> Int64.logand x y
             | A_or -> Int64.logor x y
             | A_xor -> Int64.logxor x y
             | A_min -> if x <= y then x else y
             | A_max -> if x >= y then x else y
           in
           let r =
             if w >= 64 then r
             else Int64.shift_right (Int64.shift_left r (64 - w)) (64 - w)
           in
           ibank_set ibank (d lsl 3) r;
           frame.pc <- next
       | IArithK_u (op, w, d, a, y) ->
           let x = ibank_get ibank (a lsl 3) in
           let r =
             match op with
             | A_add -> Int64.add x y
             | A_sub -> Int64.sub x y
             | A_mul -> Int64.mul x y
             | A_div -> if y = 0L then raise (Value.division_by_zero ()) else Int64.div x y
             | A_mod -> if y = 0L then raise (Value.division_by_zero ()) else Int64.rem x y
             | A_shl -> Int64.shift_left x (Int64.to_int y land 63)
             | A_shr -> Int64.shift_right_logical x (Int64.to_int y land 63)
             | A_and -> Int64.logand x y
             | A_or -> Int64.logor x y
             | A_xor -> Int64.logxor x y
             | A_min -> if x <= y then x else y
             | A_max -> if x >= y then x else y
           in
           let r =
             if w >= 64 then r
             else Int64.shift_right (Int64.shift_left r (64 - w)) (64 - w)
           in
           ibank_set ibank (d lsl 3) r;
           frame.pc <- next
       | ICmp_u (c, d, a, b) ->
           let x = ibank_get ibank (a lsl 3) and y = ibank_get ibank (b lsl 3) in
           let r =
             match c with
             | C_eq -> Int64.equal x y
             | C_lt -> x < y
             | C_gt -> x > y
             | C_leq -> x <= y
             | C_geq -> x >= y
           in
           usetreg frame d (if r then vtrue else vfalse);
           frame.pc <- next
       | ICmpK_u (c, d, a, y) ->
           let x = ibank_get ibank (a lsl 3) in
           let r =
             match c with
             | C_eq -> Int64.equal x y
             | C_lt -> x < y
             | C_gt -> x > y
             | C_leq -> x <= y
             | C_geq -> x >= y
           in
           usetreg frame d (if r then vtrue else vfalse);
           frame.pc <- next
       | IBrCmp_u (c, a, b, t, e) ->
           let x = ibank_get ibank (a lsl 3) and y = ibank_get ibank (b lsl 3) in
           let r =
             match c with
             | C_eq -> Int64.equal x y
             | C_lt -> x < y
             | C_gt -> x > y
             | C_leq -> x <= y
             | C_geq -> x >= y
           in
           frame.pc <- (if r then t else e)
       | IBrCmpK_u (c, a, y, t, e) ->
           let x = ibank_get ibank (a lsl 3) in
           let r =
             match c with
             | C_eq -> Int64.equal x y
             | C_lt -> x < y
             | C_gt -> x > y
             | C_leq -> x <= y
             | C_geq -> x >= y
           in
           frame.pc <- (if r then t else e)
       | IIncrJ_u (w, d, k, t) ->
           let r = Int64.add (ibank_get ibank (d lsl 3)) k in
           let r =
             if w >= 64 then r
             else Int64.shift_right (Int64.shift_left r (64 - w)) (64 - w)
           in
           ibank_set ibank (d lsl 3) r;
           frame.pc <- t
       (* ---- Float bank ---- *)
       | FConst_u (d, k) ->
           Array.unsafe_set fbank d k;
           frame.pc <- next
       | FMov_u (d, s) ->
           Array.unsafe_set fbank d (Array.unsafe_get fbank s);
           frame.pc <- next
       | UnboxF (d, s) ->
           (* Mirrors [Value.as_double], including the int coercion. *)
           (match ureg frame s with
           | Value.Double x -> Array.unsafe_set fbank d x
           | Value.Int k -> Array.unsafe_set fbank d (Int64.to_float k)
           | v -> raise (Value.type_error ("double: " ^ Value.to_string v)));
           frame.pc <- next
       | BoxF (d, s) ->
           usetreg frame d (Value.Double (Array.unsafe_get fbank s));
           frame.pc <- next
       | FArith_u (op, d, a, b) ->
           let x = Array.unsafe_get fbank a and y = Array.unsafe_get fbank b in
           let r =
             match op with
             | A_add -> x +. y
             | A_sub -> x -. y
             | A_mul -> x *. y
             | A_div -> if y = 0. then raise (Value.division_by_zero ()) else x /. y
             | _ -> fail "double arith"
           in
           Array.unsafe_set fbank d r;
           frame.pc <- next
       | FCmp_u (c, d, a, b) ->
           (* Float.compare, not the native comparisons: NaN ordering must
              match the generic [P_double_cmp] path exactly. *)
           let r =
             compare_by c
               (Float.compare (Array.unsafe_get fbank a) (Array.unsafe_get fbank b))
           in
           usetreg frame d (if r then vtrue else vfalse);
           frame.pc <- next
       | FBrCmp_u (c, a, b, t, e) ->
           let r =
             compare_by c
               (Float.compare (Array.unsafe_get fbank a) (Array.unsafe_get fbank b))
           in
           frame.pc <- (if r then t else e)
     with Value.Hilti_error e when frame.tries <> [] && e.Value.ename <> "Hilti::HookStop" ->
       let handler, exc_reg = List.hd frame.tries in
       frame.tries <- List.tl frame.tries;
       usetreg frame exc_reg (Value.Exception e);
       frame.pc <- handler)
     done
   with e ->
     release_frame slot;
     raise e);
  release_frame slot;
  (match obs with
  | Some ops ->
      Array.iteri
        (fun g n -> if n > 0 then Hilti_obs.Metrics.add m_opgroup.(g) n)
        ops;
      if ops.(bridge_group) > 0 then
        Hilti_obs.Metrics.add m_regbank_transfers ops.(bridge_group);
      Hilti_obs.Metrics.observe m_func_instrs (ctx.instr_count - instrs_at_entry)
  | None -> ());
  !result

and run_hook ctx name args =
  match Hashtbl.find_opt ctx.program.hooks name with
  | None -> ()
  | Some idxs -> (
      try List.iter (fun idx -> ignore (exec_func ctx idx args)) idxs
      with Value.Hilti_error e when e.Value.ename = "Hilti::HookStop" -> ())

(** Schedule bytecode function [callee] on virtual thread [tid]
    ([thread.schedule]).  The caller must have deep-copied [args] already.
    The job resolves its execution context when it runs: under [Hilti_par]
    that is the clone owned by whichever domain the thread landed on. *)
and schedule_job ctx tid callee (args : Value.t list) =
  let label = ctx.program.funcs.(callee).name in
  Hilti_rt.Scheduler.schedule ctx.scheduler tid ~label (fun () ->
      let ctx = exec_context ctx in
      let saved = ctx.current_thread in
      ctx.current_thread <- tid;
      Fun.protect
        ~finally:(fun () -> ctx.current_thread <- saved)
        (fun () -> ignore (exec_func ctx callee args)))

(** Call a HILTI function by name (the generated C-stub entry point).
    Runs on the current domain's execution context. *)
let call ctx name args =
  let ctx = exec_context ctx in
  match Bytecode.find_func ctx.program name with
  | Some idx -> exec_func ctx idx args
  | None -> fail "unknown function %s" name

(** Run the scheduler until all queued virtual-thread jobs are drained. *)
let run_scheduler ctx = Hilti_rt.Scheduler.run ctx.scheduler

(** Advance the global notion of time on all virtual threads. *)
let advance_time ctx time = Hilti_rt.Scheduler.advance_time ctx.scheduler time
