(** Lowering: HILTI IR -> register bytecode.

    Performs, at compile time, everything the execution loop should not do
    by name: variable-to-register allocation, block-label resolution,
    constant materialization (including enum labels and bitset masks
    resolved against their declarations), struct/overlay layout lookup, and
    the global (thread-local) variable array layout that HILTI's custom
    linker computes across compilation units (§5 "Linker"). *)

open Bytecode

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* Builtin declarations every program sees (the "import Hilti" prelude). *)
let builtin_enums =
  [ ("Hilti::AddrFamily", Module_ir.Enum_decl [ ("IPv4", 4); ("IPv6", 6) ]);
    ("Hilti::Protocol", Module_ir.Enum_decl [ ("TCP", 1); ("UDP", 2); ("ICMP", 3) ]);
    ("Hilti::ExpireStrategy",
     Module_ir.Enum_decl [ ("Create", 0); ("Access", 1); ("Write", 2) ]) ]

(* Typed default values: HILTI variables are defined before first use. *)
let rec default_value (t : Htype.t) : Value.t =
  match t with
  | Htype.Bool -> Value.Bool false
  | Htype.Int _ -> Value.Int 0L
  | Htype.Double -> Value.Double 0.0
  | Htype.String -> Value.String ""
  | Htype.Time -> Value.Time Hilti_types.Time_ns.epoch
  | Htype.Interval -> Value.Interval Hilti_types.Interval_ns.zero
  | Htype.Addr -> Value.Addr (Hilti_types.Addr.of_ipv4_octets 0 0 0 0)
  | Htype.Port -> Value.Port (Hilti_types.Port.tcp 0)
  | Htype.Net ->
      Value.Net (Hilti_types.Network.make (Hilti_types.Addr.of_ipv4_octets 0 0 0 0) 0)
  | Htype.Enum n -> Value.Enum (n, 0, true)
  | Htype.Bitset n -> Value.Bitset (n, 0L)
  | Htype.Tuple ts -> Value.Tuple (Array.of_list (List.map default_value ts))
  | _ -> Value.Null

(* ---- Constants -------------------------------------------------------------- *)

let rec value_of_constant types (c : Constant.t) : Value.t =
  match c with
  | Constant.Bool b -> Value.Bool b
  | Constant.Int (v, _) -> Value.Int v
  | Constant.Double d -> Value.Double d
  | Constant.String s -> Value.String s
  | Constant.Bytes s ->
      let b = Hilti_types.Hbytes.of_string s in
      Hilti_types.Hbytes.freeze b;
      Value.Bytes b
  | Constant.Addr a -> Value.Addr a
  | Constant.Port p -> Value.Port p
  | Constant.Net n -> Value.Net n
  | Constant.Time t -> Value.Time t
  | Constant.Interval i -> Value.Interval i
  | Constant.Enum_label (tn, lbl) -> (
      match Hashtbl.find_opt types tn with
      | Some (Module_ir.Enum_decl labels) -> (
          match List.assoc_opt lbl labels with
          | Some v -> Value.Enum (tn, v, false)
          | None -> fail "enum %s has no label %s" tn lbl)
      | _ -> fail "unknown enum type %s" tn)
  | Constant.Bitset_labels (tn, ls) -> (
      match Hashtbl.find_opt types tn with
      | Some (Module_ir.Bitset_decl labels) ->
          let mask =
            List.fold_left
              (fun acc l ->
                match List.assoc_opt l labels with
                | Some bit -> Int64.logor acc (Int64.shift_left 1L bit)
                | None -> fail "bitset %s has no label %s" tn l)
              0L ls
          in
          Value.Bitset (tn, mask)
      | _ -> fail "unknown bitset type %s" tn)
  | Constant.Tuple cs ->
      Value.Tuple (Array.of_list (List.map (value_of_constant types) cs))
  | Constant.Null -> Value.Null
  | Constant.Unset -> Value.Null

(* ---- Pre-instructions with symbolic labels ------------------------------------ *)

type pre =
  | P of Bytecode.instr
  | PJump of string
  | PBr of int * string * string
  | PSwitch of int * string * (Value.t * string) array
  | PTryPush of string * int

(* ---- Function lowering ---------------------------------------------------------- *)

type fctx = {
  types : (string, Module_ir.type_decl) Hashtbl.t;
  var_types : (string, Htype.t) Hashtbl.t;
  regs : (string, int) Hashtbl.t;
  mutable nregs : int;
  mutable out : pre list;  (* reversed *)
  mutable nout : int;      (* length of [out]; kept so block-offset
                              recording is O(1) per block instead of a
                              List.length walk (quadratic in program size) *)
  global_index : (string, int) Hashtbl.t;
  fname_index : (string, int) Hashtbl.t;  (* resolved HILTI functions *)
  c_funcs : (string, unit) Hashtbl.t;     (* declared host functions *)
  (* Constant pool: each distinct constant lives in a dedicated register
     initialized with the frame (no per-use Const instructions). *)
  const_regs : (Constant.t, int) Hashtbl.t;
  mutable const_inits : (int * Value.t) list;
}

let emit ctx p =
  ctx.out <- p :: ctx.out;
  ctx.nout <- ctx.nout + 1

let fresh ctx =
  let r = ctx.nregs in
  ctx.nregs <- r + 1;
  r

let reg_of_var ctx name =
  match Hashtbl.find_opt ctx.regs name with
  | Some r -> r
  | None -> fail "unknown variable %s" name

let var_type ctx name = Hashtbl.find_opt ctx.var_types name

(* Lower an operand to a register holding its value. *)
let rec lower_operand ctx (op : Instr.operand) : int =
  match op with
  | Instr.Const c -> (
      match Hashtbl.find_opt ctx.const_regs c with
      | Some r -> r
      | None ->
          let r = fresh ctx in
          Hashtbl.add ctx.const_regs c r;
          ctx.const_inits <- (r, value_of_constant ctx.types c) :: ctx.const_inits;
          r)
  | Instr.Local n -> (
      match Hashtbl.find_opt ctx.regs n with
      | Some r -> r
      | None -> (
          (* Tolerate module-level names written without the Global marker. *)
          match Hashtbl.find_opt ctx.global_index n with
          | Some slot ->
              let r = fresh ctx in
              emit ctx (P (LoadGlobal (r, slot)));
              r
          | None -> fail "unknown variable %s" n))
  | Instr.Global n -> (
      match Hashtbl.find_opt ctx.global_index n with
      | Some slot ->
          let r = fresh ctx in
          emit ctx (P (LoadGlobal (r, slot)));
          r
      | None -> fail "unknown global %s" n)
  | Instr.Tuple_op ops ->
      let args = Array.of_list (List.map (lower_operand ctx) ops) in
      let r = fresh ctx in
      emit ctx (P (Prim (P_make_tuple, args, r)));
      r
  | Instr.Member m ->
      (* A bare member used as a value is its name as a string. *)
      let r = fresh ctx in
      emit ctx (P (Const (r, Value.String m)));
      r
  | Instr.Fname f ->
      let r = fresh ctx in
      emit ctx (P (Const (r, Value.Caddr f)));
      r
  | Instr.Label l -> fail "label %s used as a value" l
  | Instr.Type_op t -> fail "type %s used as a value" (Htype.to_string t)

(* Static type of an operand when known. *)
let operand_htype ctx (op : Instr.operand) : Htype.t option =
  match op with
  | Instr.Const c -> Some (Constant.typ c)
  | Instr.Local n | Instr.Global n -> var_type ctx n
  | _ -> None

let int_width ctx op =
  match operand_htype ctx op with
  | Some (Htype.Int w) -> w
  | Some (Htype.Ref (Htype.Int w)) -> w
  | _ -> 64

(* Store the instruction result into its target (local register or global
   slot). *)
let store_target ctx (target : string option) (compute : int -> unit) : unit =
  match target with
  | None ->
      (* Result discarded: still run for effects into a scratch reg. *)
      compute (-1)
  | Some name -> (
      match Hashtbl.find_opt ctx.regs name with
      | Some r -> compute r
      | None -> (
          match Hashtbl.find_opt ctx.global_index name with
          | Some slot ->
              let r = fresh ctx in
              compute r;
              emit ctx (P (StoreGlobal (slot, r)))
          | None -> fail "unknown target %s" name))

(* Helpers shared by families of mnemonics. *)
let int_arith_of = function
  | "add" -> A_add | "sub" -> A_sub | "mul" -> A_mul | "div" -> A_div
  | "mod" -> A_mod | "shl" -> A_shl | "shr" -> A_shr | "and" -> A_and
  | "or" -> A_or | "xor" -> A_xor | "min" -> A_min | "max" -> A_max
  | op -> fail "unknown arith op %s" op

let cmp_of = function
  | "eq" -> C_eq | "lt" -> C_lt | "gt" -> C_gt | "leq" -> C_leq | "geq" -> C_geq
  | op -> fail "unknown comparison %s" op

let struct_field_names ctx tname =
  match Hashtbl.find_opt ctx.types tname with
  | Some (Module_ir.Struct_decl fields) -> List.map fst fields
  | _ -> fail "unknown struct type %s" tname

let classifier_nfields ctx (rule_ty : Htype.t) =
  match rule_ty with
  | Htype.Struct n -> List.length (struct_field_names ctx n)
  | Htype.Tuple ts -> List.length ts
  | Htype.Any -> fail "classifier rule type must be concrete"
  | _ -> 1

let overlay_spec ctx tname fname : overlay_spec =
  match Hashtbl.find_opt ctx.types tname with
  | Some (Module_ir.Overlay_decl fields) -> (
      match List.find_opt (fun f -> f.Module_ir.of_name = fname) fields with
      | Some f ->
          {
            ov_offset = f.Module_ir.of_offset;
            ov_fmt = f.Module_ir.of_fmt;
            ov_bits = f.Module_ir.of_bits;
            ov_result = f.Module_ir.of_type;
          }
      | None -> fail "overlay %s has no field %s" tname fname)
  | _ -> fail "unknown overlay type %s" tname

let overlay_size ctx tname =
  match Hashtbl.find_opt ctx.types tname with
  | Some (Module_ir.Overlay_decl fields) ->
      List.fold_left
        (fun acc f ->
          let w =
            match f.Module_ir.of_fmt with
            | Module_ir.U_uint (w, _) | Module_ir.U_sint (w, _) -> w
            | Module_ir.U_ipv4 -> 4
            | Module_ir.U_bytes n -> n
          in
          max acc (f.Module_ir.of_offset + w))
        0 fields
  | _ -> fail "unknown overlay type %s" tname

let bitset_mask ctx op =
  match op with
  | Instr.Const (Constant.Bitset_labels (tn, ls)) -> (
      match Hashtbl.find_opt ctx.types tn with
      | Some (Module_ir.Bitset_decl labels) ->
          List.fold_left
            (fun acc l ->
              match List.assoc_opt l labels with
              | Some bit -> Int64.logor acc (Int64.shift_left 1L bit)
              | None -> fail "bitset %s has no label %s" tn l)
            0L ls
      | _ -> fail "unknown bitset %s" tn)
  | _ -> fail "bitset operation needs constant labels"

(* Lower one IR instruction. *)
let lower_instr ctx (i : Instr.t) =
  let m = i.Instr.mnemonic in
  let ops = i.Instr.operands in
  let op n = List.nth ops n in
  let prim ?(args = ops) p =
    let arg_regs = Array.of_list (List.map (lower_operand ctx) args) in
    store_target ctx i.Instr.target (fun dst -> emit ctx (P (Prim (p, arg_regs, dst))))
  in
  let label_of = function
    | Instr.Label l -> l
    | o -> fail "%s: expected label, got %s" m (Instr.operand_to_string o)
  in
  let member_of = function
    | Instr.Member f -> f
    | Instr.Const (Constant.String f) -> f
    | o -> fail "%s: expected member, got %s" m (Instr.operand_to_string o)
  in
  let fname_of = function
    | Instr.Fname f -> f
    | o -> fail "%s: expected function, got %s" m (Instr.operand_to_string o)
  in
  let group, sub =
    if List.mem m Instr.flow_mnemonics then ("flow", m)
    else
      match String.index_opt m '.' with
      | Some d ->
          (String.sub m 0 d, String.sub m (d + 1) (String.length m - d - 1))
      | None -> ("flow", m)
  in
  let call_target f args_op dst_wanted =
    let args =
      match args_op with
      | Some (Instr.Tuple_op l) -> l
      | Some o -> [ o ]
      | None -> []
    in
    let arg_regs = Array.of_list (List.map (lower_operand ctx) args) in
    match Hashtbl.find_opt ctx.fname_index f with
    | Some idx ->
        store_target ctx dst_wanted (fun dst -> emit ctx (P (Call (idx, arg_regs, dst))))
    | None ->
        (* Unknown at link time: a host-application ("C") function. *)
        store_target ctx dst_wanted (fun dst -> emit ctx (P (CallC (f, arg_regs, dst))))
  in
  match (group, sub) with
  (* ---- flow ------------------------------------------------------------- *)
  | "flow", "jump" -> emit ctx (PJump (label_of (op 0)))
  | "flow", "if.else" ->
      let c = lower_operand ctx (op 0) in
      emit ctx (PBr (c, label_of (op 1), label_of (op 2)))
  | "flow", "call" ->
      let f = fname_of (op 0) in
      call_target f (if List.length ops > 1 then Some (op 1) else None) i.Instr.target
  | "flow", "return.void" -> emit ctx (P (Ret (-1)))
  | "flow", "return.result" ->
      let r = lower_operand ctx (op 0) in
      emit ctx (P (Ret r))
  | "flow", "yield" -> emit ctx (P Yield)
  | "flow", "throw" ->
      let r = lower_operand ctx (op 0) in
      emit ctx (P (Throw r))
  | "flow", "try.push" ->
      let exc_reg =
        match op 1 with
        | Instr.Local n -> reg_of_var ctx n
        | o -> fail "try.push: expected local, got %s" (Instr.operand_to_string o)
      in
      emit ctx (PTryPush (label_of (op 0), exc_reg))
  | "flow", "try.pop" -> emit ctx (P TryPop)
  | "flow", "select" -> prim P_select
  | "flow", "equal" -> prim P_equal
  | "flow", "assign" ->
      let src = lower_operand ctx (op 0) in
      store_target ctx i.Instr.target (fun dst ->
          if dst >= 0 then emit ctx (P (Mov (dst, src))))
  | "flow", "nop" -> emit ctx (P Nop)
  | "flow", "switch" ->
      let v = lower_operand ctx (op 0) in
      let default = label_of (op 1) in
      let cases =
        List.filteri (fun idx _ -> idx >= 2) ops
        |> List.map (function
             | Instr.Tuple_op [ Instr.Const c; Instr.Label l ] ->
                 (value_of_constant ctx.types c, l)
             | o -> fail "switch: bad case %s" (Instr.operand_to_string o))
      in
      emit ctx (PSwitch (v, default, Array.of_list cases))
  | "flow", "new" -> (
      match op 0 with
      | Instr.Type_op ty ->
          let spec =
            match Htype.deref ty with
            | Htype.Struct n -> New_struct (n, struct_field_names ctx n)
            | Htype.List _ -> New_list
            | Htype.Vector _ -> New_vector
            | Htype.Set _ -> New_set
            | Htype.Map _ -> New_map
            | Htype.Bytes -> New_bytes
            | Htype.Timer_mgr -> New_timer_mgr
            | Htype.Channel _ ->
                let cap =
                  match ops with
                  | [ _; Instr.Const (Constant.Int (c, _)) ] -> Some (Int64.to_int c)
                  | _ -> None
                in
                New_channel cap
            | Htype.Classifier (rule, _) -> New_classifier (classifier_nfields ctx rule)
            | Htype.Match_state -> New_match_state
            | t -> fail "new: unsupported type %s" (Htype.to_string t)
          in
          let extra =
            match spec with
            | New_match_state -> List.filteri (fun idx _ -> idx >= 1) ops
            | _ -> []
          in
          let arg_regs = Array.of_list (List.map (lower_operand ctx) extra) in
          store_target ctx i.Instr.target (fun dst ->
              emit ctx (P (Prim (P_new spec, arg_regs, dst))))
      | o -> fail "new: expected type operand, got %s" (Instr.operand_to_string o))
  (* ---- bool ------------------------------------------------------------- *)
  | "bool", "and" -> prim P_bool_and
  | "bool", "or" -> prim P_bool_or
  | "bool", "not" -> prim P_bool_not
  (* ---- int -------------------------------------------------------------- *)
  | "int", ("add" | "sub" | "mul" | "div" | "mod" | "shl" | "shr" | "and" | "or" | "xor" | "min" | "max") ->
      prim (P_int_arith (int_arith_of sub, int_width ctx (op 0)))
  | "int", ("eq" | "lt" | "gt" | "leq" | "geq") -> prim (P_int_cmp (cmp_of sub))
  | "int", "neg" -> prim (P_int_neg (int_width ctx (op 0)))
  | "int", "abs" -> prim P_int_abs
  | "int", "to_double" -> prim P_int_to_double
  | "int", "to_time" -> prim P_int_to_time
  | "int", "to_interval" -> prim P_int_to_interval
  | "int", "to_string" -> prim P_int_to_string
  (* ---- double ------------------------------------------------------------ *)
  | "double", ("add" | "sub" | "mul" | "div") -> prim (P_double_arith (int_arith_of sub))
  | "double", ("eq" | "lt" | "gt" | "leq" | "geq") -> prim (P_double_cmp (cmp_of sub))
  | "double", "neg" -> prim P_double_neg
  | "double", "abs" -> prim P_double_abs
  | "double", "to_int" -> prim P_double_to_int
  (* ---- string ------------------------------------------------------------- *)
  | "string", _ ->
      let sop =
        match sub with
        | "concat" -> S_concat | "length" -> S_length | "eq" -> S_eq
        | "lt" -> S_lt | "find" -> S_find | "substr" -> S_substr
        | "to_bytes" -> S_to_bytes | "to_upper" -> S_upper | "to_lower" -> S_lower
        | "starts_with" -> S_starts_with | "contains" -> S_contains
        | "split1" -> S_split1 | "format" -> S_format
        | _ -> fail "unknown string op %s" sub
      in
      prim (P_string sop)
  (* ---- bytes --------------------------------------------------------------- *)
  | "bytes", _ ->
      let bop =
        match sub with
        | "new" -> B_new | "length" -> B_length | "append" -> B_append
        | "freeze" -> B_freeze | "is_frozen" -> B_is_frozen | "trim" -> B_trim
        | "sub" -> B_sub | "find" -> B_find | "match_prefix" -> B_match_prefix
        | "can_read" -> B_can_read | "read" -> B_read | "to_string" -> B_to_string
        | "to_int" -> B_to_int | "eq" -> B_eq | "starts_with" -> B_starts_with
        | "contains" -> B_contains | "offset" -> B_offset
        | "unpack_uint" -> B_unpack_uint | "unpack_sint" -> B_unpack_sint
        | "to_upper" -> B_upper | "to_lower" -> B_lower
        | _ -> fail "unknown bytes op %s" sub
      in
      prim (P_bytes bop)
  (* ---- iterators ------------------------------------------------------------- *)
  | "iter", _ ->
      let iop =
        match sub with
        | "begin" -> I_begin | "end" -> I_end | "incr" -> I_incr
        | "advance" -> I_advance | "deref" -> I_deref | "eq" -> I_eq
        | "distance" -> I_distance | "at_end" -> I_at_end | "is_eod" -> I_is_eod
        | "is_frozen" -> I_is_frozen
        | _ -> fail "unknown iter op %s" sub
      in
      prim (P_iter iop)
  (* ---- domain types ------------------------------------------------------------ *)
  | "addr", "family" -> prim (P_addr AD_family)
  | "addr", "eq" -> prim (P_addr AD_eq)
  | "addr", "mask" -> prim (P_addr AD_mask)
  | "addr", "to_string" -> prim (P_addr AD_to_string)
  | "port", "protocol" -> prim (P_port PO_protocol)
  | "port", "number" -> prim (P_port PO_number)
  | "port", "eq" -> prim (P_port PO_eq)
  | "net", "contains" -> prim (P_net NE_contains)
  | "net", "prefix" -> prim (P_net NE_prefix)
  | "net", "length" -> prim (P_net NE_length)
  | "net", "eq" -> prim (P_net NE_eq)
  | "time", "add" -> prim (P_time TI_add)
  | "time", "sub" -> prim (P_time TI_sub)
  | "time", ("eq" | "lt" | "gt" | "leq" | "geq") -> prim (P_time (TI_cmp (cmp_of sub)))
  | "time", "wall" -> prim (P_time TI_wall)
  | "time", "to_double" -> prim (P_time TI_to_double)
  | "time", "nsecs" -> prim (P_time TI_nsecs)
  | "interval", "add" -> prim (P_interval IV_add)
  | "interval", "sub" -> prim (P_interval IV_sub)
  | "interval", "mul" -> prim (P_interval IV_mul)
  | "interval", "eq" -> prim (P_interval IV_eq)
  | "interval", "lt" -> prim (P_interval IV_lt)
  | "interval", "to_double" -> prim (P_interval IV_to_double)
  | "interval", "nsecs" -> prim (P_interval IV_nsecs)
  (* ---- tuples --------------------------------------------------------------------- *)
  | "tuple", "get" -> (
      match op 1 with
      | Instr.Const (Constant.Int (idx, _)) ->
          prim ~args:[ op 0 ] (P_tuple_get (Int64.to_int idx))
      | o -> fail "tuple.get: constant index required, got %s" (Instr.operand_to_string o))
  | "tuple", "length" -> prim P_tuple_length
  | "tuple", "eq" -> prim P_tuple_eq
  (* ---- structs --------------------------------------------------------------------- *)
  | "struct", "get" -> prim ~args:[ op 0 ] (P_struct (ST_get (member_of (op 1))))
  | "struct", "get_default" ->
      prim ~args:[ op 0; op 2 ] (P_struct (ST_get_default (member_of (op 1))))
  | "struct", "set" -> prim ~args:[ op 0; op 2 ] (P_struct (ST_set (member_of (op 1))))
  | "struct", "unset" -> prim ~args:[ op 0 ] (P_struct (ST_unset (member_of (op 1))))
  | "struct", "is_set" -> prim ~args:[ op 0 ] (P_struct (ST_is_set (member_of (op 1))))
  (* ---- enums ------------------------------------------------------------------------- *)
  | "enum", "from_int" -> (
      match op 0 with
      | Instr.Type_op (Htype.Enum n) -> prim ~args:[ op 1 ] (P_enum_from_int n)
      | o -> fail "enum.from_int: expected enum type, got %s" (Instr.operand_to_string o))
  | "enum", "value" -> prim P_enum_value
  | "enum", "eq" -> prim P_enum_eq
  (* ---- bitsets ------------------------------------------------------------------------ *)
  | "bitset", "set" -> prim ~args:[ op 0 ] (P_bitset_set (bitset_mask ctx (op 1)))
  | "bitset", "clear" -> prim ~args:[ op 0 ] (P_bitset_clear (bitset_mask ctx (op 1)))
  | "bitset", "has" -> prim ~args:[ op 0 ] (P_bitset_has (bitset_mask ctx (op 1)))
  | "bitset", "eq" -> prim P_bitset_eq
  (* ---- containers ----------------------------------------------------------------------- *)
  | "list", _ ->
      let lop =
        match sub with
        | "append" -> L_append | "push_front" -> L_push_front
        | "pop_front" -> L_pop_front | "front" -> L_front | "back" -> L_back
        | "size" -> L_size | "clear" -> L_clear
        | "timeout" -> fail "list.timeout: not supported on lists"
        | _ -> fail "unknown list op %s" sub
      in
      prim (P_list lop)
  | "vector", _ ->
      let vop =
        match sub with
        | "push_back" -> V_push_back | "get" -> V_get | "set" -> V_set
        | "size" -> V_size | "reserve" -> V_reserve | "clear" -> V_clear
        | "pop_back" -> V_pop_back
        | _ -> fail "unknown vector op %s" sub
      in
      prim (P_vector vop)
  | "set", _ ->
      let sop =
        match sub with
        | "insert" -> SE_insert | "exists" -> SE_exists | "remove" -> SE_remove
        | "size" -> SE_size | "clear" -> SE_clear | "timeout" -> SE_timeout
        | _ -> fail "unknown set op %s" sub
      in
      prim (P_set sop)
  | "map", _ ->
      let mop =
        match sub with
        | "insert" -> M_insert | "get" -> M_get | "get_default" -> M_get_default
        | "exists" -> M_exists | "remove" -> M_remove | "size" -> M_size
        | "clear" -> M_clear | "default" -> M_default | "timeout" -> M_timeout
        | _ -> fail "unknown map op %s" sub
      in
      prim (P_map mop)
  | "channel", _ ->
      let cop =
        match sub with
        | "write" -> CH_write | "read" -> CH_read | "try_read" -> CH_try_read
        | "size" -> CH_size
        | _ -> fail "unknown channel op %s" sub
      in
      prim (P_channel cop)
  | "classifier", _ ->
      let cop =
        match sub with
        | "add" -> CL_add | "compile" -> CL_compile | "get" -> CL_get
        | "matches" -> CL_matches
        | _ -> fail "unknown classifier op %s" sub
      in
      prim (P_classifier cop)
  | "regexp", _ ->
      let rop =
        match sub with
        | "compile" -> RE_compile | "find" -> RE_find
        | "match_token" -> RE_match_token | "span" -> RE_span
        | "groups" -> RE_groups
        | _ -> fail "unknown regexp op %s" sub
      in
      prim (P_regexp rop)
  (* ---- overlays ---------------------------------------------------------------------------- *)
  | "overlay", "get" ->
      let tname =
        match op 0 with
        | Instr.Type_op (Htype.Overlay n) | Instr.Member n -> n
        | o -> fail "overlay.get: expected overlay type, got %s" (Instr.operand_to_string o)
      in
      prim ~args:[ op 2 ] (P_overlay_get (overlay_spec ctx tname (member_of (op 1))))
  | "overlay", "size" ->
      let tname =
        match op 0 with
        | Instr.Type_op (Htype.Overlay n) | Instr.Member n -> n
        | o -> fail "overlay.size: expected overlay type, got %s" (Instr.operand_to_string o)
      in
      store_target ctx i.Instr.target (fun dst ->
          emit ctx (P (Const (dst, Value.Int (Int64.of_int (overlay_size ctx tname))))))
  (* ---- timers -------------------------------------------------------------------------------- *)
  | "timer", "new" -> prim P_timer_new
  | "timer", "cancel" -> prim P_timer_cancel
  | "timer_mgr", "new" -> prim (P_new New_timer_mgr)
  | "timer_mgr", "schedule" -> prim P_timer_mgr_schedule
  | "timer_mgr", "advance" -> prim P_timer_mgr_advance
  | "timer_mgr", "advance_global" -> prim P_timer_mgr_advance_global
  | "timer_mgr", "current" -> prim P_timer_mgr_current
  | "timer_mgr", "expire_all" -> prim P_timer_mgr_expire_all
  (* ---- threads --------------------------------------------------------------------------------- *)
  | "thread", "schedule" ->
      let f = fname_of (op 0) in
      let args =
        match op 1 with
        | Instr.Tuple_op l -> l
        | o -> [ o ]
      in
      let arg_regs = Array.of_list (List.map (lower_operand ctx) args) in
      let tid = lower_operand ctx (op 2) in
      let idx =
        match Hashtbl.find_opt ctx.fname_index f with
        | Some idx -> idx
        | None -> fail "thread.schedule: unknown function %s" f
      in
      emit ctx (P (Schedule (idx, arg_regs, tid)))
  | "thread", "id" -> prim P_thread_id
  (* ---- hooks ------------------------------------------------------------------------------------- *)
  | "hook", "run" ->
      let name = fname_of (op 0) in
      let args = match op 1 with Instr.Tuple_op l -> l | o -> [ o ] in
      let arg_regs = Array.of_list (List.map (lower_operand ctx) args) in
      emit ctx (P (HookRun (name, arg_regs)))
  | "hook", "stop" ->
      (* Modeled as a distinguished exception understood by the hook runner. *)
      let r = fresh ctx in
      emit ctx (P (Const (r, Value.Exception { ename = "Hilti::HookStop"; earg = Value.Null })));
      emit ctx (P (Throw r))
  (* ---- callables ---------------------------------------------------------------------------------- *)
  | "callable", "bind" ->
      let f = fname_of (op 0) in
      let args = match op 1 with Instr.Tuple_op l -> l | o -> [ o ] in
      let arg_regs = Array.of_list (List.map (lower_operand ctx) args) in
      let idx =
        match Hashtbl.find_opt ctx.fname_index f with
        | Some idx -> idx
        | None -> fail "callable.bind: unknown function %s" f
      in
      store_target ctx i.Instr.target (fun dst -> emit ctx (P (Bind (idx, arg_regs, dst))))
  | "callable", "call" -> prim P_callable_call
  (* ---- exceptions ----------------------------------------------------------------------------------- *)
  | "exception", "new" -> prim P_exc_new
  | "exception", "data" -> prim P_exc_data
  | "exception", "name" -> prim P_exc_name
  (* ---- file / iosrc / profiler / debug ------------------------------------------------------------------ *)
  | "file", "open" -> prim (P_file F_open)
  | "file", "write" -> prim (P_file F_write)
  | "file", "close" -> prim (P_file F_close)
  | "iosrc", "read" -> prim P_iosrc_read
  | "iosrc", "close" -> prim P_iosrc_close
  | "profiler", "start" -> prim (P_profiler PR_start)
  | "profiler", "stop" -> prim (P_profiler PR_stop)
  | "profiler", "snapshot" -> prim (P_profiler PR_snapshot)
  | "debug", "msg" -> prim (P_debug D_msg)
  | "debug", "assert" -> prim (P_debug D_assert)
  | "debug", "internal_error" -> prim (P_debug D_internal_error)
  | _ -> fail "cannot lower instruction %s" m

(* Resolve symbolic labels to instruction offsets. *)
let resolve_labels (pres : pre list) (block_offsets : (string, int) Hashtbl.t) =
  let resolve l =
    match Hashtbl.find_opt block_offsets l with
    | Some pc -> pc
    | None -> fail "unresolved label %s" l
  in
  List.map
    (fun p ->
      match p with
      | P i -> i
      | PJump l -> Jump (resolve l)
      | PBr (c, t, e) -> Br (c, resolve t, resolve e)
      | PSwitch (v, d, cases) ->
          Switch (v, resolve d, Array.map (fun (c, l) -> (c, resolve l)) cases)
      | PTryPush (l, r) -> TryPush (resolve l, r))
    pres

let lower_func types global_index fname_index c_funcs internal_name
    (f : Module_ir.func) : Bytecode.func =
  let ctx =
    {
      types;
      var_types = Hashtbl.create 16;
      regs = Hashtbl.create 16;
      nregs = 0;
      out = [];
      nout = 0;
      global_index;
      fname_index;
      c_funcs;
      const_regs = Hashtbl.create 16;
      const_inits = [];
    }
  in
  List.iter
    (fun (n, t) ->
      Hashtbl.replace ctx.var_types n t;
      Hashtbl.replace ctx.regs n (fresh ctx))
    (f.Module_ir.params @ f.Module_ir.locals);
  (* Two-phase emission: lower every block recording start offsets, then
     patch label references. *)
  let block_offsets = Hashtbl.create 8 in
  List.iter
    (fun (b : Module_ir.block) ->
      Hashtbl.replace block_offsets b.Module_ir.label ctx.nout;
      List.iter (lower_instr ctx) b.Module_ir.instrs)
    f.Module_ir.blocks;
  (* Implicit return for void functions. *)
  (match ctx.out with
  | P (Ret _) :: _ -> ()
  | _ -> emit ctx (P (Ret (-1))));
  let code = Array.of_list (resolve_labels (List.rev ctx.out) block_offsets) in
  let reg_defaults = Array.make (max ctx.nregs 1) Value.Null in
  let entry_init = Array.make (max ctx.nregs 1) false in
  List.iter
    (fun (n, t) ->
      match Hashtbl.find_opt ctx.regs n with
      | Some r ->
          reg_defaults.(r) <- default_value t;
          entry_init.(r) <- true
      | None -> ())
    (f.Module_ir.params @ f.Module_ir.locals);
  List.iter
    (fun (r, v) ->
      reg_defaults.(r) <- v;
      entry_init.(r) <- true)
    ctx.const_inits;
  {
    name = internal_name;
    nparams = List.length f.Module_ir.params;
    nregs = ctx.nregs;
    code;
    returns_value = f.Module_ir.result <> Htype.Void;
    exported = f.Module_ir.exported;
    reg_defaults;
    entry_init;
    typing = [||];
    spec = None;
  }

(** Lower a (linked) module into an executable program. *)
let lower_module (m : Module_ir.t) : Bytecode.program =
  let types = Hashtbl.create 32 in
  List.iter (fun (n, d) -> Hashtbl.replace types n d) builtin_enums;
  List.iter (fun (n, d) -> Hashtbl.replace types n d) m.Module_ir.types;
  (* Global (thread-local) layout: the linker's merged array (§5). *)
  let global_index = Hashtbl.create 16 in
  let globals = Array.of_list (List.map fst m.Module_ir.globals) in
  let global_defaults =
    Array.of_list (List.map (fun (_, t) -> default_value t) m.Module_ir.globals)
  in
  Array.iteri (fun slot n -> Hashtbl.replace global_index n slot) globals;
  (* Function index space: ordinary functions first, then hook bodies. *)
  let hilti_funcs =
    List.filter (fun f -> f.Module_ir.cc <> Module_ir.Cc_c) m.Module_ir.funcs
  in
  let c_funcs = Hashtbl.create 8 in
  List.iter
    (fun (f : Module_ir.func) ->
      if f.Module_ir.cc = Module_ir.Cc_c then Hashtbl.replace c_funcs f.Module_ir.fname ())
    m.Module_ir.funcs;
  let fname_index = Hashtbl.create 32 in
  List.iteri
    (fun i (f : Module_ir.func) -> Hashtbl.replace fname_index f.Module_ir.fname i)
    hilti_funcs;
  let nfuncs = List.length hilti_funcs in
  (* Hook bodies get stable internal names and indices after functions,
     ordered by descending priority (the cross-unit hook merge). *)
  let hook_bodies =
    List.stable_sort
      (fun a b -> Int.compare b.Module_ir.hook_priority a.Module_ir.hook_priority)
      m.Module_ir.hooks
  in
  let hooks_table = Hashtbl.create 8 in
  List.iteri
    (fun i (h : Module_ir.func) ->
      let idx = nfuncs + i in
      let existing = Option.value ~default:[] (Hashtbl.find_opt hooks_table h.Module_ir.fname) in
      Hashtbl.replace hooks_table h.Module_ir.fname (existing @ [ idx ]))
    hook_bodies;
  let lowered_funcs =
    List.map
      (fun (f : Module_ir.func) ->
        lower_func types global_index fname_index c_funcs f.Module_ir.fname f)
      hilti_funcs
  in
  let lowered_hooks =
    List.mapi
      (fun i (h : Module_ir.func) ->
        lower_func types global_index fname_index c_funcs
          (Printf.sprintf "%s#%d" h.Module_ir.fname i)
          h)
      hook_bodies
  in
  let funcs = Array.of_list (lowered_funcs @ lowered_hooks) in
  let func_index = Hashtbl.create 32 in
  Array.iteri (fun i (f : Bytecode.func) -> Hashtbl.replace func_index f.name i) funcs;
  { funcs; func_index; globals; global_defaults; global_index; hooks = hooks_table;
    types; verified = false; specialized = false; reuse = [||]; reuse_susp = [||] }
