(** Runtime values of the HILTI execution environment.

    Heap kinds (bytes, structs, containers, ...) have reference semantics:
    the OCaml value is the reference, and the garbage collector plays the
    role of HILTI's reference counting (§5 "Runtime Model").  Value kinds
    (ints, addresses, tuples, ...) are immutable.

    Map and set keys are canonicalized through {!key_string}, giving the
    hash-of-value semantics HILTI requires for its containers. *)

open Hilti_types

type t =
  | Null
  | Bool of bool
  | Int of int64
  | Double of float
  | String of string
  | Bytes of Hbytes.t
  | Addr of Addr.t
  | Port of Port.t
  | Net of Network.t
  | Time of Time_ns.t
  | Interval of Interval_ns.t
  | Enum of string * int * bool     (** type name, value, undef? *)
  | Bitset of string * int64        (** type name, bits *)
  | Tuple of t array
  | Struct of strukt
  | List of t Deque.t
  | Vector of t Dynarray.t
  | Set of (string, t) Hilti_rt.Exp_map.t            (** key string -> element *)
  | Map of (string, t * t) Hilti_rt.Exp_map.t        (** key string -> (key, value) *)
  | Iter of iter
  | Channel of t Hilti_rt.Channel.t
  | Classifier of classifier
  | Regexp of Hilti_rt.Regexp.t
  | Match_state of Hilti_rt.Regexp.matcher
  | Timer of Hilti_rt.Timer.t
  | Timer_mgr of Hilti_rt.Timer_mgr.t
  | Exception of exn_value
  | Callable of callable
  | File of Hilti_rt.Hfile.t
  | Iosrc of Hilti_rt.Iosrc.t
  | Caddr of string                  (** name of a registered host function *)

and strukt = { sname : string; sfields : (string * t option ref) array }

and iter =
  | Ibytes of Hbytes.iter
  | Isnapshot of t list ref          (** remaining elements of a container walk *)
  | Ivector of t Dynarray.t * int

and classifier = {
  cls : (t Hilti_rt.Classifier.t[@warning "-69"]);
  mutable key_types : Htype.t list;  (** field types, fixed at first add *)
}

and exn_value = { ename : string; earg : t }

and callable = { description : string; invoke : unit -> t }

(* ---- HILTI exceptions ----------------------------------------------------- *)

exception Hilti_error of exn_value
(** The VM-level exception: propagates until a [try.push] handler or the
    host boundary. *)

let hilti_exception name arg = Hilti_error { ename = name; earg = arg }

(* Runtime safety checks that actually fired — the dynamic counterpart of
   the verifier's [static_discharged] count: every exception constructed
   here is a check the verifier could not (or does not try to) discharge
   statically.  Only the raise path pays for the counter. *)
let m_dynamic_hit =
  Hilti_obs.Metrics.counter "vm_safety_checks"
    ~label:("mode", "dynamic_hit")
    ~help:"Runtime safety checks that fired (raised a HILTI exception)"

let safety_failure name arg =
  Hilti_obs.Metrics.incr m_dynamic_hit;
  hilti_exception name arg

let index_error () = safety_failure "Hilti::IndexError" Null
let value_error msg = safety_failure "Hilti::ValueError" (String msg)
let division_by_zero () = safety_failure "Hilti::DivisionByZero" Null
let underflow () = safety_failure "Hilti::Underflow" Null
let unset_field f = safety_failure "Hilti::UnsetField" (String f)
let exhausted () = safety_failure "Hilti::Exhausted" Null
let type_error msg = safety_failure "Hilti::TypeError" (String msg)
let would_block () = hilti_exception "Hilti::WouldBlock" Null

(* ---- Printing --------------------------------------------------------------- *)

let rec to_string = function
  | Null -> "Null"
  | Bool b -> if b then "True" else "False"
  | Int i -> Int64.to_string i
  | Double d -> Printf.sprintf "%g" d
  | String s -> s
  | Bytes b -> Hbytes.to_string b
  | Addr a -> Addr.to_string a
  | Port p -> Port.to_string p
  | Net n -> Network.to_string n
  | Time t -> Time_ns.to_string t
  | Interval i -> Interval_ns.to_string i
  | Enum (n, v, undef) ->
      if undef then n ^ "::Undef" else Printf.sprintf "%s(%d)" n v
  | Bitset (n, bits) -> Printf.sprintf "%s(0x%Lx)" n bits
  | Tuple vs ->
      "(" ^ String.concat ", " (Array.to_list (Array.map to_string vs)) ^ ")"
  | Struct s ->
      let fields =
        Array.to_list s.sfields
        |> List.filter_map (fun (n, v) ->
               match !v with
               | Some v -> Some (Printf.sprintf "%s=%s" n (to_string v))
               | None -> None)
      in
      Printf.sprintf "%s{%s}" s.sname (String.concat ", " fields)
  | List d -> "[" ^ String.concat ", " (List.map to_string (Deque.to_list d)) ^ "]"
  | Vector v ->
      "vector("
      ^ String.concat ", " (List.map to_string (Dynarray.to_list v))
      ^ ")"
  | Set s ->
      let elems = Hilti_rt.Exp_map.fold (fun _ v acc -> to_string v :: acc) s [] in
      "{" ^ String.concat ", " (List.sort compare elems) ^ "}"
  | Map m ->
      let elems =
        Hilti_rt.Exp_map.fold
          (fun _ (k, v) acc -> Printf.sprintf "%s: %s" (to_string k) (to_string v) :: acc)
          m []
      in
      "{" ^ String.concat ", " (List.sort compare elems) ^ "}"
  | Iter _ -> "<iterator>"
  | Channel c -> Printf.sprintf "<channel:%d>" (Hilti_rt.Channel.size c)
  | Classifier _ -> "<classifier>"
  | Regexp re ->
      "/" ^ String.concat "|" (Hilti_rt.Regexp.patterns re) ^ "/"
  | Match_state _ -> "<match_state>"
  | Timer _ -> "<timer>"
  | Timer_mgr m ->
      Printf.sprintf "<timer_mgr@%s>" (Time_ns.to_string (Hilti_rt.Timer_mgr.current m))
  | Exception e -> Printf.sprintf "%s(%s)" e.ename (to_string e.earg)
  | Callable c -> Printf.sprintf "<callable:%s>" c.description
  | File f -> Printf.sprintf "<file:%s>" (Hilti_rt.Hfile.path f)
  | Iosrc s -> Printf.sprintf "<iosrc:%s>" (Hilti_rt.Iosrc.kind s)
  | Caddr n -> Printf.sprintf "<caddr:%s>" n

(* ---- Canonical keys for hashing ------------------------------------------------ *)

exception Not_hashable of string

(** Canonical byte encoding of a hashable value, used as map/set key. *)
let rec key_string v =
  match v with
  | Bool b -> if b then "b1" else "b0"
  | Int i -> "i" ^ Int64.to_string i
  | Double d -> "d" ^ string_of_float d
  | String s -> "s" ^ s
  | Bytes b -> "y" ^ Hbytes.to_string b
  | Addr a ->
      let hi, lo = Addr.halves a in
      Printf.sprintf "a%Lx.%Lx" hi lo
  | Port p -> "p" ^ Port.to_string p
  | Net n -> "n" ^ Network.to_string n
  | Time t -> "t" ^ Int64.to_string (Time_ns.to_ns t)
  | Interval i -> "v" ^ Int64.to_string (Interval_ns.to_ns i)
  | Enum (n, x, u) -> Printf.sprintf "e%s:%d:%b" n x u
  | Bitset (n, bits) -> Printf.sprintf "B%s:%Lx" n bits
  | Tuple vs ->
      "("
      ^ String.concat "\x00" (Array.to_list (Array.map key_string vs))
      ^ ")"
  | Null -> "0"
  | _ -> raise (Not_hashable (to_string v))

(* ---- Equality -------------------------------------------------------------------- *)

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> Int64.equal x y
  | Double x, Double y -> x = y
  | String x, String y -> String.equal x y
  | Bytes x, Bytes y -> Hbytes.to_string x = Hbytes.to_string y
  | Addr x, Addr y -> Addr.equal x y
  | Port x, Port y -> Port.equal x y
  | Net x, Net y -> Network.equal x y
  | Time x, Time y -> Time_ns.equal x y
  | Interval x, Interval y -> Interval_ns.equal x y
  | Enum (n1, v1, u1), Enum (n2, v2, u2) -> n1 = n2 && v1 = v2 && u1 = u2
  | Bitset (n1, b1), Bitset (n2, b2) -> n1 = n2 && Int64.equal b1 b2
  | Tuple x, Tuple y ->
      Array.length x = Array.length y
      &&
      let ok = ref true in
      Array.iteri (fun i xv -> if not (equal xv y.(i)) then ok := false) x;
      !ok
  | Iter (Ibytes x), Iter (Ibytes y) -> Hbytes.iter_equal x y
  (* Heap values compare by identity, as HILTI references do. *)
  | Struct x, Struct y -> x == y
  | List x, List y -> x == y
  | Vector x, Vector y -> x == y
  | Set x, Set y -> x == y
  | Map x, Map y -> x == y
  | Exception x, Exception y -> x.ename = y.ename && equal x.earg y.earg
  | Caddr x, Caddr y -> x = y
  | _ -> false

(* ---- Deep copy (message-passing isolation, §3.2) ------------------------------------ *)

(** Deep-copy a value so the receiver of a cross-thread message cannot see
    sender-side mutations. *)
let rec deep_copy v =
  match v with
  | Null | Bool _ | Int _ | Double _ | String _ | Addr _ | Port _ | Net _
  | Time _ | Interval _ | Enum _ | Bitset _ | Caddr _ ->
      v
  | Bytes b -> Bytes (Hbytes.of_string (Hbytes.to_string b))
  | Tuple vs -> Tuple (Array.map deep_copy vs)
  | Struct s ->
      Struct
        {
          sname = s.sname;
          sfields =
            Array.map (fun (n, f) -> (n, ref (Option.map deep_copy !f))) s.sfields;
        }
  | List d ->
      let d' = Deque.create () in
      List.iter (fun x -> Deque.push_back d' (deep_copy x)) (Deque.to_list d);
      List d'
  | Vector dv ->
      let dv' = Dynarray.create () in
      List.iter (fun x -> Dynarray.push dv' (deep_copy x)) (Dynarray.to_list dv);
      Vector dv'
  | Set s ->
      let s' = Hilti_rt.Exp_map.create () in
      Hilti_rt.Exp_map.iter (fun k v -> Hilti_rt.Exp_map.insert s' k (deep_copy v)) s;
      Set s'
  | Map m ->
      let m' = Hilti_rt.Exp_map.create () in
      Hilti_rt.Exp_map.iter
        (fun k (kv, vv) -> Hilti_rt.Exp_map.insert m' k (deep_copy kv, deep_copy vv))
        m;
      Map m'
  | Exception e -> Exception { e with earg = deep_copy e.earg }
  (* Runtime objects that cannot be meaningfully copied travel by
     reference; HILTI forbids sending them across threads. *)
  | Iter _ | Channel _ | Classifier _ | Regexp _ | Match_state _ | Timer _
  | Timer_mgr _ | Callable _ | File _ | Iosrc _ ->
      v

(* ---- Coercions with TypeError --------------------------------------------------------- *)

let as_bool = function Bool b -> b | v -> raise (type_error ("bool: " ^ to_string v))
let as_int = function Int i -> i | v -> raise (type_error ("int: " ^ to_string v))
let as_int_i = function Int i -> Int64.to_int i | v -> raise (type_error ("int: " ^ to_string v))
let as_double = function Double d -> d | Int i -> Int64.to_float i | v -> raise (type_error ("double: " ^ to_string v))
let as_string = function String s -> s | v -> raise (type_error ("string: " ^ to_string v))
let as_bytes = function Bytes b -> b | v -> raise (type_error ("bytes: " ^ to_string v))
let as_addr = function Addr a -> a | v -> raise (type_error ("addr: " ^ to_string v))
let as_port = function Port p -> p | v -> raise (type_error ("port: " ^ to_string v))
let as_net = function Net n -> n | v -> raise (type_error ("net: " ^ to_string v))
let as_time = function Time t -> t | v -> raise (type_error ("time: " ^ to_string v))
let as_interval = function Interval i -> i | v -> raise (type_error ("interval: " ^ to_string v))
let as_tuple = function Tuple t -> t | v -> raise (type_error ("tuple: " ^ to_string v))
let as_struct = function Struct s -> s | v -> raise (type_error ("struct: " ^ to_string v))
let as_list = function List d -> d | v -> raise (type_error ("list: " ^ to_string v))
let as_vector = function Vector d -> d | v -> raise (type_error ("vector: " ^ to_string v))
let as_set = function Set s -> s | v -> raise (type_error ("set: " ^ to_string v))
let as_map = function Map m -> m | v -> raise (type_error ("map: " ^ to_string v))
let as_iter = function Iter i -> i | v -> raise (type_error ("iterator: " ^ to_string v))

let as_bytes_iter = function
  | Iter (Ibytes it) -> it
  | v -> raise (type_error ("bytes iterator: " ^ to_string v))

let as_channel = function Channel c -> c | v -> raise (type_error ("channel: " ^ to_string v))
let as_classifier = function Classifier c -> c | v -> raise (type_error ("classifier: " ^ to_string v))
let as_regexp = function Regexp r -> r | v -> raise (type_error ("regexp: " ^ to_string v))
let as_timer = function Timer t -> t | v -> raise (type_error ("timer: " ^ to_string v))
let as_timer_mgr = function Timer_mgr m -> m | v -> raise (type_error ("timer_mgr: " ^ to_string v))
let as_exception = function Exception e -> e | v -> raise (type_error ("exception: " ^ to_string v))
let as_callable = function Callable c -> c | v -> raise (type_error ("callable: " ^ to_string v))
let as_file = function File f -> f | v -> raise (type_error ("file: " ^ to_string v))
let as_iosrc = function Iosrc s -> s | v -> raise (type_error ("iosrc: " ^ to_string v))

(* ---- Struct helpers ------------------------------------------------------------------ *)

let struct_field s name =
  let rec go i =
    if i >= Array.length s.sfields then raise (unset_field name)
    else
      let n, f = s.sfields.(i) in
      if n = name then f else go (i + 1)
  in
  go 0

let new_struct sname field_names =
  { sname; sfields = Array.of_list (List.map (fun n -> (n, ref None)) field_names) }
