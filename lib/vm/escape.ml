(** Flow-of-values escape analysis over lowered programs.

    Classifies every allocation site ([P_new]) and frame slot into three
    classes, the granularity the paper's §5 thread-locality argument
    needs:

    - {e activation-local} ([Local]): the object never leaves the
      activation that allocated it — dies with the frame;
    - {e flow-local} ([Flow_local]): the object outlives the activation
      (returned to the caller, parked in a timer of the activation's
      virtual thread) but stays confined to one flow's processing chain;
    - {e escaping} ([Escaping]): the object crosses the flow boundary —
      stored to a global slot, captured by [thread.schedule] /
      [callable.bind], thrown as an exception payload, or passed to a
      host-API sink (event emission, logging) or an unaudited host
      function.

    The analysis is a field-insensitive Andersen-style points-to over
    {e sites}: each register holds a set of abstract sites; each site has
    a contents set fed by container inserts and drained by container
    reads.  Aliasing needs no special handling — a moved container
    register carries the same site, so inserts through either alias land
    in the same contents set.  Interprocedural flow runs through
    parameter pseudo-sites (caller argument sites become the contents of
    the callee's [Param] site) and through return-site sets (the caller's
    destination register inherits the callee's returned sites verbatim),
    iterated to a global fixpoint, so escape verdicts propagate both down
    (escaping callee param ⇒ caller argument escapes) and up (caller
    escaping a returned object ⇒ the callee's site escapes).

    Soundness contract (checked by the QCheck harness against the checked
    interpreter): a site classified [Local] is never observed escaping at
    runtime.  The converse is allowed — the analysis may conservatively
    over-classify. *)

module Effects = Hilti_passes.Effects

type site =
  | Alloc of int * int  (** allocation at (func idx, pc) *)
  | Param of int * int  (** parameter [j] of function — stands for whatever
                            any caller passes *)
  | External            (** loaded from a global, produced by a host call:
                            already shared before we saw it *)

module SiteSet = Set.Make (struct
  type t = site

  let compare = compare
end)

type cls = Local | Flow_local | Escaping

let cls_name = function
  | Local -> "local"
  | Flow_local -> "flow-local"
  | Escaping -> "escaping"

let cls_join a b =
  match (a, b) with
  | Escaping, _ | _, Escaping -> Escaping
  | Flow_local, _ | _, Flow_local -> Flow_local
  | Local, Local -> Local

type result = {
  site_class : (int * int, cls) Hashtbl.t;
      (** classification of every [P_new] site, keyed by (func idx, pc) *)
  reg_class : cls array array;
      (** per function, per register: the worst class of any value the
          slot can hold ([External] counts as escaping — the slot holds
          already-shared data) *)
  param_escapes : bool array array;
      (** per function: does parameter [j] escape through the function? *)
  n_local : int;
  n_flow : int;
  n_escaping : int;
}

(* ---- Obs counters --------------------------------------------------------- *)

let m_sites_local =
  Hilti_obs.Metrics.counter "escape_sites_local"
    ~help:"Allocation sites proven activation-local by escape analysis"

let m_sites_escaping =
  Hilti_obs.Metrics.counter "escape_sites_escaping"
    ~help:"Allocation sites classified escaping by escape analysis"

(* ---- Primitive classification --------------------------------------------- *)

(* Inserts: value operands (past the container in position 0) are retained
   by the container — they flow into the contents of the container's sites. *)
let insert_like (p : Bytecode.prim) =
  match p with
  | Bytecode.P_list (Bytecode.L_append | Bytecode.L_push_front) -> true
  | Bytecode.P_vector (Bytecode.V_push_back | Bytecode.V_set) -> true
  | Bytecode.P_set Bytecode.SE_insert -> true
  | Bytecode.P_map Bytecode.M_insert -> true
  | Bytecode.P_struct (Bytecode.ST_set _) -> true
  | Bytecode.P_classifier Bytecode.CL_add -> true
  | Bytecode.P_channel Bytecode.CH_write -> true
  | Bytecode.P_set Bytecode.SE_timeout | Bytecode.P_map Bytecode.M_timeout ->
      true (* the expiry callable is retained by the container *)
  | _ -> false

(* Reads: the destination receives something previously inserted into the
   container operand — its sites' contents. *)
let read_like (p : Bytecode.prim) =
  match p with
  | Bytecode.P_list (Bytecode.L_front | Bytecode.L_back | Bytecode.L_pop_front)
    ->
      true
  | Bytecode.P_vector Bytecode.V_get -> true
  | Bytecode.P_map (Bytecode.M_get | Bytecode.M_get_default) -> true
  | Bytecode.P_struct (Bytecode.ST_get _ | Bytecode.ST_get_default _) -> true
  | Bytecode.P_classifier (Bytecode.CL_get | Bytecode.CL_matches) -> true
  | Bytecode.P_channel (Bytecode.CH_read | Bytecode.CH_try_read) -> true
  | Bytecode.P_iter Bytecode.I_deref -> true
  | Bytecode.P_exc_data -> true
  | _ -> false

(* Aggregates: the destination value directly carries references to the
   operands (tuples, exceptions with payloads, timers wrapping callables),
   so the destination register inherits the operands' sites. *)
let aggregate_like (p : Bytecode.prim) =
  match p with
  | Bytecode.P_make_tuple | Bytecode.P_select -> true
  | Bytecode.P_tuple_get _ -> true (* projection: subset of the tuple's sites *)
  | Bytecode.P_exc_new -> true
  | Bytecode.P_timer_new -> true
  | _ -> false

(* ---- The analysis ---------------------------------------------------------- *)

let analyze (p : Bytecode.program) : result =
  let nf = Array.length p.Bytecode.funcs in
  let pts =
    Array.map (fun (f : Bytecode.func) -> Array.make f.Bytecode.nregs SiteSet.empty)
      p.Bytecode.funcs
  in
  (* Seed: parameter registers hold their pseudo-site. *)
  Array.iteri
    (fun fi (f : Bytecode.func) ->
      for j = 0 to f.Bytecode.nparams - 1 do
        pts.(fi).(j) <- SiteSet.singleton (Param (fi, j))
      done)
    p.Bytecode.funcs;
  let contents : (site, SiteSet.t) Hashtbl.t = Hashtbl.create 64 in
  let retsites = Array.make nf SiteSet.empty in
  let escaping : (site, unit) Hashtbl.t = Hashtbl.create 64 in
  let flowlocal : (site, unit) Hashtbl.t = Hashtbl.create 64 in
  let changed = ref true in
  let contents_of s =
    Option.value ~default:SiteSet.empty (Hashtbl.find_opt contents s)
  in
  let add_pts fi r set =
    if r >= 0 && not (SiteSet.subset set pts.(fi).(r)) then begin
      pts.(fi).(r) <- SiteSet.union pts.(fi).(r) set;
      changed := true
    end
  in
  let add_contents s set =
    let cur = contents_of s in
    if not (SiteSet.subset set cur) then begin
      Hashtbl.replace contents s (SiteSet.union cur set);
      changed := true
    end
  in
  let mark tbl s =
    if not (Hashtbl.mem tbl s) then begin
      Hashtbl.replace tbl s ();
      changed := true
    end
  in
  let escape_set set = SiteSet.iter (mark escaping) set in
  let flow_set set = SiteSet.iter (mark flowlocal) set in
  (* Reads drain the contents of the container's sites; [External]
     containers yield [External] contents. *)
  let drained set =
    SiteSet.fold
      (fun s acc ->
        let acc = SiteSet.union acc (contents_of s) in
        if s = External then SiteSet.add External acc else acc)
      set SiteSet.empty
  in
  let step_instr fi (regs : SiteSet.t array) pc instr =
    let sites r = if r >= 0 && r < Array.length regs then regs.(r) else SiteSet.empty in
    let sites_of_args args =
      Array.fold_left (fun acc r -> SiteSet.union acc (sites r)) SiteSet.empty args
    in
    match instr with
    | Bytecode.Mov (d, s) -> add_pts fi d (sites s)
    | Bytecode.LoadGlobal (d, _) -> add_pts fi d (SiteSet.singleton External)
    | Bytecode.StoreGlobal (_, s) -> escape_set (sites s)
    | Bytecode.Call (callee, args, d) ->
        let cf = p.Bytecode.funcs.(callee) in
        Array.iteri
          (fun j a ->
            if j < cf.Bytecode.nparams then
              add_contents (Param (callee, j)) (sites a))
          args;
        add_pts fi d retsites.(callee)
    | Bytecode.HookRun (name, args) ->
        List.iter
          (fun callee ->
            let cf = p.Bytecode.funcs.(callee) in
            Array.iteri
              (fun j a ->
                if j < cf.Bytecode.nparams then
                  add_contents (Param (callee, j)) (sites a))
              args)
          (Option.value ~default:[] (Hashtbl.find_opt p.Bytecode.hooks name))
    | Bytecode.CallC (name, args, d) ->
        let retained =
          match Effects.host_effects name with
          | None -> true (* unknown: assume it keeps everything *)
          | Some h -> h.Effects.hf_sink
        in
        if retained then Array.iter (fun a -> escape_set (sites a)) args;
        add_pts fi d (SiteSet.singleton External)
    | Bytecode.Ret r ->
        if r >= 0 then begin
          let s = sites r in
          if not (SiteSet.subset s retsites.(fi)) then begin
            retsites.(fi) <- SiteSet.union retsites.(fi) s;
            changed := true
          end;
          flow_set s
        end
    | Bytecode.Throw r -> escape_set (sites r)
    | Bytecode.Schedule (_, args, _) ->
        Array.iter (fun a -> escape_set (sites a)) args
    | Bytecode.Bind (_, args, d) ->
        (* The callable may fire from a timer or another activation: its
           captures outlive us but stay on this virtual thread. *)
        Array.iter (fun a -> flow_set (sites a)) args;
        add_pts fi d (sites_of_args args)
    | Bytecode.Prim (prim, args, d) -> (
        match prim with
        | Bytecode.P_new _ -> add_pts fi d (SiteSet.singleton (Alloc (fi, pc)))
        | Bytecode.P_timer_mgr_schedule ->
            (* args: mgr, time, timer/callable — parked on this thread's
               manager, fires in a later activation of the same flow. *)
            Array.iteri (fun i a -> if i >= 2 then flow_set (sites a)) args
        | _ ->
            if insert_like prim then begin
              let container = if Array.length args > 0 then sites args.(0) else SiteSet.empty in
              let values =
                Array.to_list args |> List.tl
                |> List.fold_left (fun acc a -> SiteSet.union acc (sites a)) SiteSet.empty
              in
              SiteSet.iter (fun s -> add_contents s values) container;
              (* Inserting into an already-shared container shares the value. *)
              if SiteSet.mem External container then escape_set values
            end
            else if read_like prim then
              add_pts fi d (drained (if Array.length args > 0 then sites args.(0) else SiteSet.empty))
            else if aggregate_like prim then add_pts fi d (sites_of_args args))
    | Bytecode.Const _ | Bytecode.Jump _ | Bytecode.Br _ | Bytecode.Switch _
    | Bytecode.TryPush _ | Bytecode.TryPop | Bytecode.Yield | Bytecode.Nop ->
        ()
    (* Specialized bank opcodes only move unboxed ints/floats. *)
    | Bytecode.IConst_u _ | Bytecode.IMov_u _ | Bytecode.UnboxI _
    | Bytecode.BoxI _ | Bytecode.IArith_u _ | Bytecode.IArithK_u _
    | Bytecode.ICmp_u _ | Bytecode.ICmpK_u _ | Bytecode.IBrCmp_u _
    | Bytecode.IBrCmpK_u _ | Bytecode.IIncrJ_u _ | Bytecode.FConst_u _
    | Bytecode.FMov_u _ | Bytecode.UnboxF _ | Bytecode.BoxF _
    | Bytecode.FArith_u _ | Bytecode.FCmp_u _ | Bytecode.FBrCmp_u _ ->
        ()
  in
  while !changed do
    changed := false;
    Array.iteri
      (fun fi (f : Bytecode.func) ->
        Array.iteri (fun pc i -> step_instr fi pts.(fi) pc i) f.Bytecode.code)
      p.Bytecode.funcs;
    (* Closure: what an escaping (flow-local) container holds escapes
       (leaves the activation) with it. *)
    Hashtbl.iter (fun s () -> escape_set (contents_of s)) escaping;
    Hashtbl.iter (fun s () -> flow_set (contents_of s)) flowlocal
  done;
  (* ---- Fold the solution into the reported classification. ---- *)
  let classify s =
    if Hashtbl.mem escaping s then Escaping
    else if Hashtbl.mem flowlocal s then Flow_local
    else match s with External -> Escaping | _ -> Local
  in
  let site_class = Hashtbl.create 32 in
  let n_local = ref 0 and n_flow = ref 0 and n_escaping = ref 0 in
  Array.iteri
    (fun fi (f : Bytecode.func) ->
      Array.iteri
        (fun pc instr ->
          match instr with
          | Bytecode.Prim (Bytecode.P_new _, _, _) ->
              let c = classify (Alloc (fi, pc)) in
              Hashtbl.replace site_class (fi, pc) c;
              (match c with
              | Local -> incr n_local
              | Flow_local -> incr n_flow
              | Escaping -> incr n_escaping)
          | _ -> ())
        f.Bytecode.code)
    p.Bytecode.funcs;
  let reg_class =
    Array.mapi
      (fun fi (f : Bytecode.func) ->
        Array.init f.Bytecode.nregs (fun r ->
            SiteSet.fold (fun s acc -> cls_join acc (classify s)) pts.(fi).(r) Local))
      p.Bytecode.funcs
  in
  let param_escapes =
    Array.mapi
      (fun fi (f : Bytecode.func) ->
        Array.init f.Bytecode.nparams (fun j -> Hashtbl.mem escaping (Param (fi, j))))
      p.Bytecode.funcs
  in
  if Hilti_obs.Metrics.enabled () then begin
    Hilti_obs.Metrics.add m_sites_local !n_local;
    Hilti_obs.Metrics.add m_sites_escaping !n_escaping
  end;
  {
    site_class;
    reg_class;
    param_escapes;
    n_local = !n_local;
    n_flow = !n_flow;
    n_escaping = !n_escaping;
  }

(** Classification of one allocation site, for reports and tests. *)
let site_cls (r : result) ~func ~pc =
  Hashtbl.find_opt r.site_class (func, pc)

let to_string (p : Bytecode.program) (r : result) : string =
  let b = Buffer.create 256 in
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) r.site_class []
  |> List.sort compare
  |> List.iter (fun ((fi, pc), c) ->
         Buffer.add_string b
           (Printf.sprintf "%s@%d: %s\n" p.Bytecode.funcs.(fi).Bytecode.name pc
              (cls_name c)));
  Buffer.contents b
