(** Programmatic IR construction — the equivalent of HILTI's C++ AST API
    (§3.4), which host-application compilers (BinPAC++, the Bro script
    compiler, the BPF and firewall rule compilers) use to emit HILTI code
    in memory before handing it to the toolchain. *)

open Module_ir

type t = {
  modul : Module_ir.t;
  func : func;
  mutable current : block;
  mutable tmp_counter : int;
  block_index : (string, block) Hashtbl.t;  (* label -> block, O(1) lookup *)
}

(** Begin a new function in [modul]; its entry block is current. *)
let func modul ?(cc = Cc_hilti) ?(hook_priority = 0) ?(exported = false) fname
    ~params ~result =
  let entry = { label = "entry"; instrs = [] } in
  let f =
    { fname; params; result; locals = []; blocks = [ entry ]; cc; hook_priority; exported }
  in
  (match cc with Cc_hook -> add_hook modul f | _ -> add_func modul f);
  let block_index = Hashtbl.create 16 in
  Hashtbl.add block_index entry.label entry;
  { modul; func = f; current = entry; tmp_counter = 0; block_index }

(** Declare (or re-use) a local variable. *)
let local b name ty =
  if not (List.mem_assoc name b.func.locals || List.mem_assoc name b.func.params)
  then b.func.locals <- b.func.locals @ [ (name, ty) ];
  name

(** A fresh temporary local of the given type. *)
let tmp b ty =
  b.tmp_counter <- b.tmp_counter + 1;
  let name = Printf.sprintf "__t%d" b.tmp_counter in
  local b name ty

(** Create a new block (without switching to it). *)
let new_block b label =
  match Hashtbl.find_opt b.block_index label with
  | Some blk -> blk
  | None ->
      let blk = { label; instrs = [] } in
      Hashtbl.add b.block_index label blk;
      b.func.blocks <- b.func.blocks @ [ blk ];
      blk

(** Bulk-create blocks in order with a single list append.  Generators
    emitting many thousands of blocks (the classifier lowering) need this:
    per-block [new_block] appends are quadratic in the block count.
    Labels that already exist are skipped. *)
let declare_blocks b labels =
  let fresh =
    List.filter_map
      (fun label ->
        if Hashtbl.mem b.block_index label then None
        else begin
          let blk = { label; instrs = [] } in
          Hashtbl.add b.block_index label blk;
          Some blk
        end)
      labels
  in
  b.func.blocks <- b.func.blocks @ fresh

(** Switch emission to the given block, creating it if necessary. *)
let set_block b label = b.current <- new_block b label

(** Append an instruction to the current block. *)
let instr b ?target ?location mnemonic operands =
  let i = Instr.make ?target ?location mnemonic operands in
  b.current.instrs <- b.current.instrs @ [ i ]

(* Shorthands for common emission patterns ------------------------------- *)

let assign b ~target op = instr b ~target "assign" [ op ]

let call b ?target fname args =
  instr b ?target "call" [ Instr.Fname fname; Instr.Tuple_op args ]

let jump b label = instr b "jump" [ Instr.Label label ]

let if_else b cond ~then_ ~else_ =
  instr b "if.else" [ cond; Instr.Label then_; Instr.Label else_ ]

let return_ b = instr b "return.void" []
let return_result b op = instr b "return.result" [ op ]

(** Emit [target = <mnemonic> ops] with a fresh temporary as target;
    returns the temporary's name as an operand. *)
let emit b ty mnemonic operands =
  let target = tmp b ty in
  instr b ~target mnemonic operands;
  Instr.Local target

let const_int ?(width = 64) v = Instr.Const (Constant.Int (Int64.of_int v, width))
let const_bool v = Instr.Const (Constant.Bool v)
let const_string s = Instr.Const (Constant.String s)
let const_bytes s = Instr.Const (Constant.Bytes s)
