(** Static validation of IR modules.

    Checks performed per function:
    - every mnemonic exists in the {!Isa} table, with arity and target
      presence as declared;
    - every [Local] operand is a declared parameter or local, every
      [Global] a declared module global, every [Label] an existing block,
      and every [Fname] a known function or hook;
    - blocks are terminator-correct: no instructions after a terminator,
      and every block ends in one (the lowering pass inserts the implicit
      [return.void] for void functions, so a missing final terminator is
      only an error for value-returning functions);
    - container instructions receive a container of their group's kind as
      first operand (e.g. [list.append] on a [ref<list<T>>]).

    Returns the list of error strings; empty means valid. *)

open Module_ir

let terminators =
  [ "jump"; "if.else"; "return.void"; "return.result"; "throw"; "switch" ]

let is_terminator (i : Instr.t) = List.mem i.Instr.mnemonic terminators

type env = {
  modul : t;
  func : func;
  vars : (string, Htype.t) Hashtbl.t;
  labels : (string, unit) Hashtbl.t;  (* block labels, for O(1) target checks *)
  mutable errors : string list;
}

let error env fmt =
  Printf.ksprintf
    (fun msg ->
      env.errors <- Printf.sprintf "%s.%s: %s" env.modul.mname env.func.fname msg
                    :: env.errors)
    fmt

let rec operand_type env (op : Instr.operand) : Htype.t option =
  match op with
  | Instr.Const c -> Some (Constant.typ c)
  | Instr.Local n -> Hashtbl.find_opt env.vars n
  | Instr.Global n -> find_global env.modul n
  | Instr.Label _ | Instr.Fname _ | Instr.Member _ -> None
  | Instr.Type_op _ -> None
  | Instr.Tuple_op ops ->
      let ts = List.map (operand_type env) ops in
      if List.for_all Option.is_some ts then
        Some (Htype.Tuple (List.map Option.get ts))
      else None

let check_operand_refs env (i : Instr.t) =
  (* Fully recursive: [Tuple_op] nests arbitrarily (switch cases are
     [Tuple_op [value; Label target]]), and the labels, globals and
     function names inside must be checked exactly like top-level
     operands. *)
  let rec go op =
    match op with
    | Instr.Local n ->
        (* Module globals may be referenced bare; the lowerer resolves
           them to thread-local slots. *)
        if not (Hashtbl.mem env.vars n) && find_global env.modul n = None then
          error env "%s: undeclared local '%s'" i.Instr.mnemonic n
    | Instr.Global n ->
        if find_global env.modul n = None then
          error env "%s: undeclared global '%s'" i.Instr.mnemonic n
    | Instr.Label l ->
        if not (Hashtbl.mem env.labels l) then
          error env "%s: unknown block label '%s'" i.Instr.mnemonic l
    | Instr.Fname f ->
        (* Names under the Hilti:: namespace are runtime-provided host
           functions; hook names may gain bodies only at link time; any
           other function must be declared (possibly Cc_c). *)
        let known =
          i.Instr.mnemonic = "hook.run"
          || find_func env.modul f <> None
          || List.exists (fun h -> h.fname = f) env.modul.hooks
          || String.length f > 7 && String.sub f 0 7 = "Hilti::"
          || List.mem f env.modul.imports
        in
        if not known then error env "%s: unknown function '%s'" i.Instr.mnemonic f
    | Instr.Tuple_op ops -> List.iter go ops
    | Instr.Const _ | Instr.Member _ | Instr.Type_op _ -> ()
  in
  List.iter go i.Instr.operands;
  (* switch has a fixed shape the lowerer depends on: value operand,
     default label, then (constant, label) case pairs. *)
  if i.Instr.mnemonic = "switch" then
    match i.Instr.operands with
    | _value :: _default :: cases ->
        List.iter
          (function
            | Instr.Tuple_op [ Instr.Const _; Instr.Label _ ] -> ()
            | op ->
                error env "switch: malformed case %s (expected (const, label))"
                  (Instr.operand_to_string op))
          cases
    | _ -> ()

(* First-operand kind check for container groups. *)
let container_kind_ok group (ty : Htype.t) =
  match (group, Htype.deref ty) with
  | "list", Htype.List _
  | "vector", Htype.Vector _
  | "set", Htype.Set _
  | "map", Htype.Map _
  | "channel", Htype.Channel _
  | "classifier", Htype.Classifier _
  | "struct", Htype.Struct _ ->
      true
  | ("list" | "vector" | "set" | "map" | "channel" | "classifier" | "struct"), Htype.Any
    ->
      true
  | _ -> false

let check_container env (i : Instr.t) entry =
  let container_groups = [ "list"; "vector"; "set"; "map"; "channel"; "classifier"; "struct" ] in
  if List.mem entry.Isa.group container_groups then
    match i.Instr.operands with
    | first :: _ -> (
        match operand_type env first with
        | Some ty when not (container_kind_ok entry.Isa.group ty) ->
            error env "%s: first operand has type %s, expected a %s"
              i.Instr.mnemonic (Htype.to_string ty) entry.Isa.group
        | _ -> ())
    | [] -> ()

let check_instr env (i : Instr.t) =
  match Isa.find i.Instr.mnemonic with
  | None -> error env "unknown instruction '%s'" i.Instr.mnemonic
  | Some entry ->
      let n = List.length i.Instr.operands in
      if n < entry.Isa.min_ops || n > entry.Isa.max_ops then
        error env "%s: %d operands, expected %d..%d" i.Instr.mnemonic n
          entry.Isa.min_ops entry.Isa.max_ops;
      (match (entry.Isa.target, i.Instr.target) with
      | Isa.No_target, Some _ ->
          error env "%s: does not produce a result" i.Instr.mnemonic
      | Isa.Needs_target, None ->
          error env "%s: requires a target" i.Instr.mnemonic
      | _ -> ());
      check_operand_refs env i;
      check_container env i entry

(* Blocks without a final terminator fall through to the next block in
   declaration order (and lowering emits them consecutively); only the
   final block of a value-returning function must end in one. *)
let check_block env ~is_last (b : block) =
  let rec go = function
    | [] -> ()
    | [ last ] ->
        check_instr env last;
        if is_last && (not (is_terminator last)) && env.func.result <> Htype.Void
        then error env "block '%s' does not end in a terminator" b.label
    | i :: rest ->
        check_instr env i;
        if is_terminator i then
          error env "block '%s': instructions after terminator '%s'" b.label
            i.Instr.mnemonic;
        go rest
  in
  (match b.instrs with
  | [] when is_last && env.func.result <> Htype.Void ->
      error env "final block '%s' is empty in a value-returning function" b.label
  | _ -> ());
  go b.instrs

let check_func modul (f : func) =
  let env =
    { modul; func = f; vars = Hashtbl.create 16;
      labels = Hashtbl.create (2 * List.length f.blocks); errors = [] }
  in
  List.iter (fun (b : block) -> Hashtbl.replace env.labels b.label ()) f.blocks;
  List.iter (fun (n, t) -> Hashtbl.replace env.vars n t) f.params;
  List.iter (fun (n, t) -> Hashtbl.replace env.vars n t) f.locals;
  (* Duplicate declarations. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (n, _) ->
      if Hashtbl.mem seen n then error env "duplicate variable '%s'" n
      else Hashtbl.add seen n ())
    (f.params @ f.locals);
  if f.cc <> Cc_c then begin
    (match f.blocks with
    | [] -> error env "function has no blocks"
    | _ -> ());
    let nblocks = List.length f.blocks in
    List.iteri (fun i b -> check_block env ~is_last:(i = nblocks - 1) b) f.blocks;
    (* Duplicate block labels. *)
    let labels = Hashtbl.create 8 in
    List.iter
      (fun (b : block) ->
        if Hashtbl.mem labels b.label then error env "duplicate block '%s'" b.label
        else Hashtbl.add labels b.label ())
      f.blocks
  end;
  env.errors

(** Validate a whole module; returns all errors (empty = valid). *)
let check_module (m : t) =
  let dup_funcs =
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun (f : func) ->
        if Hashtbl.mem seen f.fname then Some (m.mname ^ ": duplicate function " ^ f.fname)
        else begin
          Hashtbl.add seen f.fname ();
          None
        end)
      m.funcs
  in
  dup_funcs
  @ List.concat_map (check_func m) m.funcs
  @ List.concat_map (check_func m) m.hooks

exception Invalid of string list

(** Validate, raising {!Invalid} on any error. *)
let check_module_exn m =
  match check_module m with [] -> () | errors -> raise (Invalid errors)
