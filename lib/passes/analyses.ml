(** Concrete dataflow analyses over IR functions, built on {!Dataflow}:

    - {!definite_init} / {!use_before_init}: forward must-analysis of which
      locals are definitely assigned on {e all} paths; reads of a local not
      definitely assigned are reported (the frame's typed defaults make
      such a read well-defined at runtime, so this is a lint warning, not
      undefined behaviour).
    - {!liveness} / {!dead_stores}: backward may-analysis of which locals
      may still be read; assignments to locals that are dead afterwards
      are dead stores (the fuel for {!Deadstore}).
    - {!reaching_definitions}: forward may-analysis mapping each program
      point to the set of definition sites that may reach it.
    - {!unreachable_blocks} / {!unused_locals}: simple derived facts. *)

open Module_ir
module StrSet = Dataflow.StrSet

(* ---- Uses and definitions per instruction ------------------------------ *)

let rec operand_locals (op : Instr.operand) acc =
  match op with
  | Instr.Local n -> StrSet.add n acc
  | Instr.Tuple_op ops -> List.fold_left (fun acc o -> operand_locals o acc) acc ops
  | _ -> acc

(** Locals an instruction reads.  [try.push]'s second operand is a local in
    a {e write} role (the caught exception lands there on the exceptional
    edge), so it is a definition, not a use. *)
let instr_uses (i : Instr.t) : StrSet.t =
  match (i.Instr.mnemonic, i.Instr.operands) with
  | "try.push", [ _label; Instr.Local _ ] -> StrSet.empty
  | _ ->
      List.fold_left (fun acc o -> operand_locals o acc) StrSet.empty i.Instr.operands

(** Locals an instruction writes: its target, plus [try.push]'s exception
    local. *)
let instr_defs (i : Instr.t) : StrSet.t =
  let tgt =
    match i.Instr.target with Some t -> StrSet.singleton t | None -> StrSet.empty
  in
  match (i.Instr.mnemonic, i.Instr.operands) with
  | "try.push", [ _label; Instr.Local n ] -> StrSet.add n tgt
  | _ -> tgt

(** The function's declared value names: analyses track exactly these
    (anything else named by a [Local]/target is a module global). *)
let declared (f : func) : StrSet.t =
  List.fold_left
    (fun acc (n, _) -> StrSet.add n acc)
    StrSet.empty (f.params @ f.locals)

(* ---- Definite initialization ------------------------------------------- *)

module Init_flow = Dataflow.Make (Dataflow.Str_inter)

(** Per-block must-be-initialized sets; parameters are initialized at
    entry, locals only once assigned. *)
let definite_init (f : func) : Dataflow.Str_inter.t Dataflow.result =
  let vars = declared f in
  let boundary =
    Dataflow.Str_inter.Set
      (List.fold_left (fun acc (n, _) -> StrSet.add n acc) StrSet.empty f.params)
  in
  let transfer (b : block) state =
    List.fold_left
      (fun st (i : Instr.t) ->
        StrSet.fold Dataflow.Str_inter.add
          (StrSet.inter (instr_defs i) vars)
          st)
      state b.instrs
  in
  Init_flow.solve ~direction:Dataflow.Forward ~boundary ~transfer f

type use_before_init = {
  ubi_block : string;
  ubi_instr : Instr.t;
  ubi_var : string;
}

(** Reads of locals not definitely assigned on every path from entry, in
    reachable blocks only. *)
let use_before_init (f : func) : use_before_init list =
  let vars = declared f in
  let result = definite_init f in
  let reach = Cfg.reachable f in
  let findings = ref [] in
  List.iter
    (fun (b : block) ->
      if Hashtbl.mem reach b.label then begin
        let state = ref (result.Dataflow.in_of b.label) in
        List.iter
          (fun (i : Instr.t) ->
            StrSet.iter
              (fun v ->
                if StrSet.mem v vars && not (Dataflow.Str_inter.mem v !state) then
                  findings :=
                    { ubi_block = b.label; ubi_instr = i; ubi_var = v } :: !findings)
              (instr_uses i);
            state :=
              StrSet.fold Dataflow.Str_inter.add
                (StrSet.inter (instr_defs i) vars)
                !state)
          b.instrs
      end)
    f.blocks;
  List.rev !findings

(* ---- Liveness ---------------------------------------------------------- *)

module Live_flow = Dataflow.Make (Dataflow.Str_union)

(** Per-block live-in/live-out sets of declared locals. *)
let liveness (f : func) : StrSet.t Dataflow.result =
  let vars = declared f in
  let transfer (b : block) live_out =
    List.fold_right
      (fun (i : Instr.t) live ->
        StrSet.union
          (StrSet.inter (instr_uses i) vars)
          (StrSet.diff live (instr_defs i)))
      b.instrs live_out
  in
  Live_flow.solve ~direction:Dataflow.Backward ~boundary:StrSet.empty ~transfer f

type dead_store = { ds_block : string; ds_instr : Instr.t; ds_var : string }

(** Assignments to declared locals whose value can never be read
    afterwards.  Only side-effect-free instructions qualify ({!Purity} —
    a dead [int.div] may still raise and must stay). *)
let dead_stores (f : func) : dead_store list =
  let vars = declared f in
  let live = liveness f in
  let reach = Cfg.reachable f in
  let findings = ref [] in
  List.iter
    (fun (b : block) ->
      if Hashtbl.mem reach b.label then begin
        let after = ref (live.Dataflow.out_of b.label) in
        List.iter
          (fun (i : Instr.t) ->
            (match i.Instr.target with
            | Some t
              when StrSet.mem t vars
                   && (not (StrSet.mem t !after))
                   && Purity.is_deletable i ->
                findings := { ds_block = b.label; ds_instr = i; ds_var = t } :: !findings
            | _ -> ());
            after :=
              StrSet.union
                (StrSet.inter (instr_uses i) vars)
                (StrSet.diff !after (instr_defs i)))
          (List.rev b.instrs)
      end)
    f.blocks;
  List.rev !findings

(* ---- Reaching definitions ---------------------------------------------- *)

module Reach_flow = Dataflow.Make (Dataflow.Site_union)

type def_site = { site_id : int; site_block : string; site_instr : Instr.t }

(** Numbered definition sites plus the per-block reaching-definition sets
    (pairs of variable and site id); parameters reach from pseudo-site
    [-1 - k]. *)
let reaching_definitions (f : func) :
    def_site list * Dataflow.Site_union.t Dataflow.result =
  let vars = declared f in
  (* Sites are numbered by position: (block, instruction index) in
     declaration order, so ids are stable across solver iterations. *)
  let sites = ref [] in
  let counter = ref 0 in
  let site_at = Hashtbl.create 64 in  (* (label, index) -> site id *)
  List.iter
    (fun (b : block) ->
      List.iteri
        (fun idx (i : Instr.t) ->
          if not (StrSet.is_empty (StrSet.inter (instr_defs i) vars)) then begin
            let id = !counter in
            incr counter;
            Hashtbl.replace site_at (b.label, idx) id;
            sites := { site_id = id; site_block = b.label; site_instr = i } :: !sites
          end)
        b.instrs)
    f.blocks;
  let module S = Dataflow.Site_union.S in
  let boundary =
    List.fold_left
      (fun (acc, k) (n, _) -> (S.add (n, -1 - k) acc, k + 1))
      (S.empty, 0) f.params
    |> fst
  in
  let transfer (b : block) state =
    List.fold_left
      (fun (st, idx) (i : Instr.t) ->
        let defs = StrSet.inter (instr_defs i) vars in
        let st =
          if StrSet.is_empty defs then st
          else
            let id = Hashtbl.find site_at (b.label, idx) in
            StrSet.fold
              (fun v st ->
                S.add (v, id) (S.filter (fun (v', _) -> v' <> v) st))
              defs st
        in
        (st, idx + 1))
      (state, 0) b.instrs
    |> fst
  in
  let result =
    Reach_flow.solve ~direction:Dataflow.Forward ~boundary ~transfer f
  in
  (List.rev !sites, result)

(* ---- Derived facts ----------------------------------------------------- *)

(** Blocks no path from the entry reaches (in declaration order). *)
let unreachable_blocks (f : func) : string list =
  let reach = Cfg.reachable f in
  List.filter_map
    (fun (b : block) -> if Hashtbl.mem reach b.label then None else Some b.label)
    f.blocks

(** Declared locals that appear in no instruction at all — neither read
    nor written.  (Written-but-never-read locals surface as dead stores.) *)
let unused_locals (f : func) : string list =
  let touched = ref StrSet.empty in
  List.iter
    (fun (b : block) ->
      List.iter
        (fun (i : Instr.t) ->
          touched := StrSet.union !touched (instr_uses i);
          touched := StrSet.union !touched (instr_defs i))
        b.instrs)
    f.blocks;
  List.filter (fun (n, _) -> not (StrSet.mem n !touched)) f.locals |> List.map fst
