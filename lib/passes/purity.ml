(** Purity classification of IR instructions, shared by the optimization
    passes.  Thin facade over the audited effect table ({!Effects}) so the
    optimizer's licences and the interprocedural analyses' effect vectors
    cannot drift apart.

    "Pure" is split in two, because the passes need two different licences:

    - {b foldable}: no side effects, deterministic in its operands.  Such an
      instruction may be constant-folded or deduplicated (CSE) — if it
      raises (e.g. [int.div] by zero), identical operands raise identically,
      and control never reaches a second copy after the first raise, so
      merging is behaviour-preserving.

    - {b deletable}: foldable {e and} cannot raise.  Only these may be
      removed when their result is unused (DCE, dead-store elimination):
      deleting an unused [int.div] whose divisor might be zero would erase
      an observable [Hilti::DivisionByZero].

    Division and modulo are deletable when the divisor is a non-zero
    constant — the one case where "may raise" is statically refutable. *)

let is_foldable = Effects.is_foldable

let raising_mnemonics = Effects.raising_mnemonics

let cannot_raise = Effects.cannot_raise

let may_raise = Effects.may_raise

let is_deletable = Effects.is_deletable

(** Deprecated alias for {!is_foldable}; kept for older callers. *)
let is_pure = is_foldable
