(** Purity classification of IR instructions, shared by the optimization
    passes.

    "Pure" is split in two, because the passes need two different licences:

    - {b foldable}: no side effects, deterministic in its operands.  Such an
      instruction may be constant-folded or deduplicated (CSE) — if it
      raises (e.g. [int.div] by zero), identical operands raise identically,
      and control never reaches a second copy after the first raise, so
      merging is behaviour-preserving.

    - {b deletable}: foldable {e and} cannot raise.  Only these may be
      removed when their result is unused (DCE, dead-store elimination):
      deleting an unused [int.div] whose divisor might be zero would erase
      an observable [Hilti::DivisionByZero].

    Division and modulo are deletable when the divisor is a non-zero
    constant — the one case where "may raise" is statically refutable. *)

let pure_groups =
  [ "int"; "double"; "bool"; "addr"; "port"; "net"; "interval"; "tuple";
    "enum"; "bitset" ]

let pure_flow = [ "equal"; "select"; "assign"; "nop" ]

(* time.wall reads the clock; every other time op is pure.  String ops are
   pure.  Bytes/containers are mutable heap objects: conservatively impure. *)
let is_foldable (i : Instr.t) =
  let m = i.Instr.mnemonic in
  if List.mem m pure_flow then true
  else if m = "time.wall" then false
  else
    match String.index_opt m '.' with
    | Some d ->
        let g = String.sub m 0 d in
        List.mem g pure_groups || g = "time" || g = "string"
    | None -> false

(* Foldable mnemonics whose evaluation can raise a HILTI exception
   depending on operand VALUES (not just types): these stay observable
   even when the result is unused. *)
let raising_mnemonics =
  [ "int.div"; "int.mod";        (* Hilti::DivisionByZero *)
    "double.div";                (* Hilti::DivisionByZero *)
    "int.to_string";             (* ValueError: base must be 8, 10 or 16 *)
    "string.format";             (* ValueError: bad directive / arity *)
    "string.substr";             (* out-of-range substring *)
    "tuple.get" ]                (* IndexError on bad constant index *)

let divisor_operand (i : Instr.t) =
  match i.Instr.operands with [ _; d ] -> Some d | _ -> None

(* The raise is statically refuted when the decisive operand is a constant
   with a known-safe value: a non-zero divisor for div/mod. *)
let cannot_raise (i : Instr.t) =
  match i.Instr.mnemonic with
  | "int.div" | "int.mod" -> (
      match divisor_operand i with
      | Some (Instr.Const (Constant.Int (d, _))) -> d <> 0L
      | _ -> false)
  | "double.div" -> (
      match divisor_operand i with
      | Some (Instr.Const (Constant.Double d)) -> d <> 0.0
      | _ -> false)
  | _ -> false

let may_raise (i : Instr.t) =
  List.mem i.Instr.mnemonic raising_mnemonics && not (cannot_raise i)

let is_deletable (i : Instr.t) = is_foldable i && not (may_raise i)

(** Deprecated alias for {!is_foldable}; kept for older callers. *)
let is_pure = is_foldable
