(** The optimization pipeline: runs constant folding, CSE, block
    simplification, and DCE to a (bounded) fixpoint over a linked module.
    The ablation benchmark toggles this to measure its effect. *)

type stats = {
  mutable constfold : int;
  mutable cse : int;
  mutable simplify : int;
  mutable dce : int;
  mutable deadstore : int;
  mutable iterations : int;
}

let empty_stats () =
  { constfold = 0; cse = 0; simplify = 0; dce = 0; deadstore = 0; iterations = 0 }

let total s = s.constfold + s.cse + s.simplify + s.dce + s.deadstore

(** Optimize [m] in place; returns rewrite statistics. *)
let optimize ?(max_iterations = 8) (m : Module_ir.t) : stats =
  let s = empty_stats () in
  let rec go n =
    if n >= max_iterations then ()
    else begin
      let before = total s in
      s.constfold <- s.constfold + Constfold.run m;
      s.cse <- s.cse + Cse.run m;
      s.simplify <- s.simplify + Simplify_blocks.run m;
      s.dce <- s.dce + Dce.run m;
      s.deadstore <- s.deadstore + Deadstore.run m;
      s.iterations <- s.iterations + 1;
      if total s > before then go (n + 1)
    end
  in
  go 0;
  s

let stats_to_string s =
  Printf.sprintf "constfold=%d cse=%d simplify=%d dce=%d deadstore=%d iterations=%d"
    s.constfold s.cse s.simplify s.dce s.deadstore s.iterations
