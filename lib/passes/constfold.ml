(** Constant folding and propagation (named in §6.6 as a basic optimization
    the prototype lacks — we implement it at the HILTI level).

    Within each block: tracks locals assigned constants, substitutes them
    into later operand positions, evaluates pure instructions whose
    operands are all constants, and turns [if.else] on a constant condition
    into a [jump].  Returns the number of rewrites performed. *)

open Module_ir

let eval_int_binop op a b =
  let open Int64 in
  match op with
  | "add" -> Some (add a b)
  | "sub" -> Some (sub a b)
  | "mul" -> Some (mul a b)
  | "div" -> if b = 0L then None else Some (div a b)
  | "mod" -> if b = 0L then None else Some (rem a b)
  | "and" -> Some (logand a b)
  | "or" -> Some (logor a b)
  | "xor" -> Some (logxor a b)
  | "shl" -> Some (shift_left a (to_int b land 63))
  | "shr" -> Some (shift_right_logical a (to_int b land 63))
  | "min" -> Some (if compare a b <= 0 then a else b)
  | "max" -> Some (if compare a b >= 0 then a else b)
  | _ -> None

let eval_int_cmp op a b =
  let c = Int64.compare a b in
  match op with
  | "eq" -> Some (c = 0)
  | "lt" -> Some (c < 0)
  | "gt" -> Some (c > 0)
  | "leq" -> Some (c <= 0)
  | "geq" -> Some (c >= 0)
  | _ -> None

let rec const_equal (a : Constant.t) (b : Constant.t) =
  match (a, b) with
  | Constant.Tuple xs, Constant.Tuple ys ->
      List.length xs = List.length ys && List.for_all2 const_equal xs ys
  | _ -> a = b

(* Evaluate a pure instruction with constant operands. *)
let eval (i : Instr.t) (consts : Constant.t list) : Constant.t option =
  let m = i.Instr.mnemonic in
  match (m, consts) with
  | "equal", [ a; b ] -> Some (Constant.Bool (const_equal a b))
  | "select", [ Constant.Bool c; a; b ] -> Some (if c then a else b)
  | "bool.and", [ Constant.Bool a; Constant.Bool b ] -> Some (Constant.Bool (a && b))
  | "bool.or", [ Constant.Bool a; Constant.Bool b ] -> Some (Constant.Bool (a || b))
  | "bool.not", [ Constant.Bool a ] -> Some (Constant.Bool (not a))
  | "string.concat", [ Constant.String a; Constant.String b ] ->
      Some (Constant.String (a ^ b))
  | "string.length", [ Constant.String a ] ->
      Some (Constant.Int (Int64.of_int (String.length a), 64))
  | "string.eq", [ Constant.String a; Constant.String b ] -> Some (Constant.Bool (a = b))
  | _ -> (
      match String.index_opt m '.' with
      | Some d when String.sub m 0 d = "int" -> (
          let sub = String.sub m (d + 1) (String.length m - d - 1) in
          match consts with
          | [ Constant.Int (a, w); Constant.Int (b, _) ] -> (
              match eval_int_binop sub a b with
              | Some v -> Some (Constant.Int (v, w))
              | None -> (
                  match eval_int_cmp sub a b with
                  | Some bv -> Some (Constant.Bool bv)
                  | None -> None))
          | [ Constant.Int (a, w) ] when sub = "neg" -> Some (Constant.Int (Int64.neg a, w))
          | [ Constant.Int (a, w) ] when sub = "abs" -> Some (Constant.Int (Int64.abs a, w))
          | _ -> None)
      | _ -> None)

let fold_block ~is_local (b : block) : int =
  let changes = ref 0 in
  let known : (string, Constant.t) Hashtbl.t = Hashtbl.create 16 in
  let subst (op : Instr.operand) =
    match op with
    | Instr.Local n -> (
        match Hashtbl.find_opt known n with
        | Some c ->
            incr changes;
            Instr.Const c
        | None -> op)
    | _ -> op
  in
  let rewritten =
    List.map
      (fun (i : Instr.t) ->
        let operands = List.map subst i.Instr.operands in
        let i = { i with Instr.operands } in
        (* A local overwritten by any instruction loses its known value. *)
        (match i.Instr.target with Some t -> Hashtbl.remove known t | None -> ());
        (* Impure instructions (e.g. calls) may write globals behind our
           back: forget every non-local fact. *)
        if not (Purity.is_foldable i) then
          Hashtbl.iter
            (fun n _ -> if not (is_local n) then Hashtbl.remove known n)
            (Hashtbl.copy known);
        match i.Instr.mnemonic with
        | "assign" -> (
            match (i.Instr.target, operands) with
            | Some t, [ Instr.Const c ] when is_local t ->
                Hashtbl.replace known t c;
                i
            | _ -> i)
        | "if.else" -> (
            match operands with
            | [ Instr.Const (Constant.Bool c); Instr.Label lt; Instr.Label le ] ->
                incr changes;
                Instr.make "jump" [ Instr.Label (if c then lt else le) ]
            | _ -> i)
        | _ ->
            if Purity.is_foldable i && i.Instr.target <> None
               && is_local (Option.get i.Instr.target) then begin
              let consts =
                List.filter_map
                  (function Instr.Const c -> Some c | _ -> None)
                  operands
              in
              if List.length consts = List.length operands then
                match eval i consts with
                | Some c ->
                    incr changes;
                    Hashtbl.replace known (Option.get i.Instr.target) c;
                    Instr.make ?target:i.Instr.target "assign" [ Instr.Const c ]
                | None -> i
              else i
            end
            else i)
      b.instrs
  in
  b.instrs <- rewritten;
  !changes

(** Run over every block of every function; returns total rewrites. *)
let run (m : t) : int =
  List.fold_left
    (fun acc (f : func) ->
      let is_local n = List.mem_assoc n f.locals || List.mem_assoc n f.params in
      List.fold_left (fun acc b -> acc + fold_block ~is_local b) acc f.blocks)
    0 (m.funcs @ m.hooks)
