(** Generic worklist dataflow solver over {!Cfg} (the analysis framework's
    core, in the MFP / monotone-framework style).

    A client supplies a lattice — a carrier with a [join] and an [equal] —
    and a per-block transfer function; the solver iterates block states to
    the least fixpoint with a worklist.  Termination holds whenever the
    lattice has no infinite ascending chains and the transfer functions are
    monotone: each block state only ever moves up the lattice, and a block
    is revisited only when one of its inputs changed.  Every concrete
    analysis we ship ({!Analyses}) uses finite powerset lattices (of
    variables or definition sites), so chains are bounded by the lattice
    height times the number of blocks.

    Direction:
    - {e forward}: in(b) = join over predecessors' out; out(b) = transfer b
      in(b); the entry block additionally joins the boundary value.
    - {e backward}: out(b) = join over successors' in; in(b) = transfer b
      out(b); exit blocks (no successors) join the boundary value.

    Edges are the CFG's normal successors plus fallthrough plus the
    exceptional try.push handler edges, so "along all paths" includes
    exceptional paths. *)

open Module_ir

module type LATTICE = sig
  type t

  val bottom : t
  (** Identity of [join]: the initial state of every block. *)

  val equal : t -> t -> bool
  val join : t -> t -> t
end

type direction = Forward | Backward

(** The per-label CFG with both edge directions materialised. *)
type graph = {
  blocks : block list;  (** in declaration order *)
  block_of : (string, block) Hashtbl.t;
  succs : (string, string list) Hashtbl.t;
  preds : (string, string list) Hashtbl.t;
}

let graph_of_func (f : func) : graph =
  let block_of = Hashtbl.create 16 in
  List.iter (fun (b : block) -> Hashtbl.replace block_of b.label b) f.blocks;
  let falls = Cfg.fallthrough_map f in
  let succs = Hashtbl.create 16 and preds = Hashtbl.create 16 in
  let add tbl k v =
    let cur = Option.value ~default:[] (Hashtbl.find_opt tbl k) in
    if not (List.mem v cur) then Hashtbl.replace tbl k (v :: cur)
  in
  List.iter
    (fun (b : block) ->
      let out =
        Cfg.successors b @ Cfg.exceptional_successors b
        @ (match Hashtbl.find_opt falls b.label with Some n -> [ n ] | None -> [])
      in
      List.iter
        (fun s ->
          (* Edges to labels that don't exist (validator errors) are
             dropped rather than crashing the analysis. *)
          if Hashtbl.mem block_of s then begin
            add succs b.label s;
            add preds s b.label
          end)
        out)
    f.blocks;
  { blocks = f.blocks; block_of; succs; preds }

let edges tbl l = Option.value ~default:[] (Hashtbl.find_opt tbl l)

type 'state result = {
  in_of : string -> 'state;   (** state at block entry *)
  out_of : string -> 'state;  (** state at block exit *)
}

module Make (L : LATTICE) = struct
  (** [solve ~direction ~boundary ~transfer f] runs the analysis to a
      fixpoint and returns per-block entry/exit states.  [boundary] is the
      state at the entry block (forward) or at every exit block
      (backward); [transfer b s] pushes state [s] through block [b] in the
      analysis direction. *)
  let solve ~direction ~(boundary : L.t) ~(transfer : block -> L.t -> L.t)
      (f : func) : L.t result =
    let g = graph_of_func f in
    let n = List.length g.blocks in
    let input : (string, L.t) Hashtbl.t = Hashtbl.create n in
    let output : (string, L.t) Hashtbl.t = Hashtbl.create n in
    let get tbl l = Option.value ~default:L.bottom (Hashtbl.find_opt tbl l) in
    (* Feeding edges: whose result flows into this block's input. *)
    let feeders, fed =
      match direction with
      | Forward -> (g.preds, g.succs)
      | Backward -> (g.succs, g.preds)
    in
    let at_boundary (b : block) =
      match direction with
      | Forward -> (match g.blocks with [] -> false | e :: _ -> e.label = b.label)
      | Backward -> edges g.succs b.label = []
    in
    (* Seed the worklist with every block: unreachable blocks still get
       their (bottom-seeded) fixpoint, and clients filter by reachability
       when reporting. *)
    let queue = Queue.create () in
    let queued = Hashtbl.create n in
    let enqueue l =
      if not (Hashtbl.mem queued l) then begin
        Hashtbl.replace queued l ();
        Queue.add l queue
      end
    in
    let order =
      match direction with Forward -> g.blocks | Backward -> List.rev g.blocks
    in
    List.iter (fun (b : block) -> enqueue b.label) order;
    while not (Queue.is_empty queue) do
      let l = Queue.pop queue in
      Hashtbl.remove queued l;
      let b = Hashtbl.find g.block_of l in
      let incoming =
        List.fold_left
          (fun acc p -> L.join acc (get output p))
          (if at_boundary b then boundary else L.bottom)
          (edges feeders l)
      in
      Hashtbl.replace input l incoming;
      let out = transfer b incoming in
      if not (L.equal out (get output l)) then begin
        Hashtbl.replace output l out;
        List.iter enqueue (edges fed l)
      end
    done;
    let in_tbl, out_tbl =
      match direction with
      | Forward -> (input, output)
      | Backward -> (output, input)  (* [input]/[output] are in analysis
                                        direction; flip back to program
                                        order for the caller. *)
    in
    { in_of = get in_tbl; out_of = get out_tbl }
end

(* ---- Stock lattices ---------------------------------------------------- *)

module StrSet = Set.Make (String)

(** May-analysis powerset of strings (union join, empty bottom) —
    liveness. *)
module Str_union = struct
  type t = StrSet.t

  let bottom = StrSet.empty
  let equal = StrSet.equal
  let join = StrSet.union
end

(** Must-analysis powerset of strings: intersection join with an explicit
    top ("all variables") as the identity — definite initialization. *)
module Str_inter = struct
  type t = All | Set of StrSet.t

  let bottom = All
  let equal a b =
    match (a, b) with
    | All, All -> true
    | Set x, Set y -> StrSet.equal x y
    | _ -> false

  let join a b =
    match (a, b) with
    | All, x | x, All -> x
    | Set x, Set y -> Set (StrSet.inter x y)

  let mem n = function All -> true | Set s -> StrSet.mem n s
  let add n = function All -> All | Set s -> Set (StrSet.add n s)
end

(** May-analysis powerset of definition sites (var, site id) — reaching
    definitions. *)
module Site_union = struct
  module S = Set.Make (struct
    type t = string * int

    let compare = compare
  end)

  type t = S.t

  let bottom = S.empty
  let equal = S.equal
  let join = S.union
end
