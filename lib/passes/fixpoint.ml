(** Generic worklist fixpoint over an arbitrary finite dependency graph —
    the interprocedural generalization of {!Dataflow}, whose solver is
    specialized to one function's CFG.

    Where {!Dataflow} iterates block states along control-flow edges, this
    driver iterates {e node} values along arbitrary dependency edges: for
    call-graph summaries the nodes are functions and [deps f] are [f]'s
    callees (a bottom-up summary computation), but nothing here assumes
    calls — any monotone system over a finite graph fits.

    Same termination argument as {!Dataflow.Make}: values only move up the
    lattice, a node is revisited only when one of its dependencies
    changed, so any lattice without infinite ascending chains converges.
    Cycles (mutual recursion) need no special casing — they simply iterate
    until the cycle's values stabilize. *)

module type LATTICE = Dataflow.LATTICE

module Make (L : LATTICE) = struct
  (** [solve ~n ~deps ~transfer] computes the least fixpoint of the system

        value(i) = transfer i (fun j -> value j)

      over nodes [0..n-1], where [deps i] lists the nodes whose values
      node [i]'s transfer function reads (for summaries: [i]'s callees).
      [transfer] must be monotone in the values it reads and must read
      only nodes listed in [deps] — reads outside [deps] won't trigger
      recomputation.  Returns the solved valuation. *)
  let solve ~(n : int) ~(deps : int -> int list) ~(transfer : int -> (int -> L.t) -> L.t)
      : int -> L.t =
    let value = Array.make (max n 1) L.bottom in
    let get i = value.(i) in
    (* Reverse edges: recompute the dependents of a changed node. *)
    let rdeps = Array.make (max n 1) [] in
    for i = 0 to n - 1 do
      List.iter
        (fun j ->
          if j >= 0 && j < n && not (List.mem i rdeps.(j)) then
            rdeps.(j) <- i :: rdeps.(j))
        (deps i)
    done;
    let queue = Queue.create () in
    let queued = Array.make (max n 1) false in
    let enqueue i =
      if not queued.(i) then begin
        queued.(i) <- true;
        Queue.add i queue
      end
    in
    for i = 0 to n - 1 do enqueue i done;
    while not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      queued.(i) <- false;
      let v = transfer i get in
      if not (L.equal v value.(i)) then begin
        value.(i) <- v;
        List.iter enqueue rdeps.(i)
      end
    done;
    get

  (** Transitive reachability helper on the same graph shape: the set of
      nodes reachable from [roots] following [deps] edges (roots
      included).  Summaries use it for "reachable from a sharded entry"
      and "part of a recursive cycle" questions. *)
  let _ = ()
end

(** Reachability over an integer dependency graph: every node reachable
    from [roots] via [succs] (roots included).  Shared by the call-graph
    clients so they don't each re-implement the same DFS. *)
let reachable ~(n : int) ~(succs : int -> int list) (roots : int list) : bool array =
  let seen = Array.make (max n 1) false in
  let rec go i =
    if i >= 0 && i < n && not seen.(i) then begin
      seen.(i) <- true;
      List.iter go (succs i)
    end
  in
  List.iter go roots;
  seen
