(** Common-subexpression elimination (§6.6 calls out "subsequent lookups
    for the same map element" as the kind of redundancy to compress; we
    implement the classic local CSE for pure instructions).

    Within a block: two pure instructions with identical mnemonic and
    operands compute the same value, so the second becomes an [assign] from
    the first's target.  A write to any local invalidates expressions
    mentioning it. *)

open Module_ir

let rec operand_key (op : Instr.operand) =
  match op with
  | Instr.Const c -> "c:" ^ Constant.to_string c
  | Instr.Local n -> "l:" ^ n
  | Instr.Global n -> "g:" ^ n
  | Instr.Label l -> "L:" ^ l
  | Instr.Fname f -> "f:" ^ f
  | Instr.Member m -> "m:" ^ m
  | Instr.Type_op t -> "t:" ^ Htype.to_string t
  | Instr.Tuple_op ops -> "(" ^ String.concat "," (List.map operand_key ops) ^ ")"

let instr_key (i : Instr.t) =
  i.Instr.mnemonic ^ " " ^ String.concat " " (List.map operand_key i.Instr.operands)

let rec mentions name (op : Instr.operand) =
  match op with
  | Instr.Local n -> n = name
  | Instr.Tuple_op ops -> List.exists (mentions name) ops
  | _ -> false

let cse_block (b : block) : int =
  let changes = ref 0 in
  (* available: expression key -> local holding its value *)
  let available : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let invalidate name =
    let stale =
      Hashtbl.fold
        (fun key holder acc ->
          if holder = name || String.length key > 0 &&
             (* conservative: if the key mentions the local textually *)
             (let marker = "l:" ^ name in
              let rec find i =
                i + String.length marker <= String.length key
                && (String.sub key i (String.length marker) = marker || find (i + 1))
              in
              find 0)
          then key :: acc
          else acc)
        available []
    in
    List.iter (Hashtbl.remove available) stale
  in
  let rewritten =
    List.map
      (fun (i : Instr.t) ->
        (* Impure instructions may change globals: drop expressions whose
           key mentions one. *)
        if not (Purity.is_foldable i) then begin
          let stale =
            Hashtbl.fold
              (fun key _ acc ->
                let has_global =
                  let rec find j =
                    j + 2 <= String.length key
                    && (String.sub key j 2 = "g:" || find (j + 1))
                  in
                  find 0
                in
                if has_global then key :: acc else acc)
              available []
          in
          List.iter (Hashtbl.remove available) stale
        end;
        (* The target's previous value dies first: expressions mentioning
           it are stale. *)
        (match i.Instr.target with Some t -> invalidate t | None -> ());
        if Purity.is_foldable i && i.Instr.target <> None && i.Instr.mnemonic <> "assign"
        then begin
          let key = instr_key i in
          match Hashtbl.find_opt available key with
          | Some holder when Some holder <> i.Instr.target ->
              incr changes;
              Instr.make ?target:i.Instr.target "assign" [ Instr.Local holder ]
          | _ ->
              (* Self-referential definitions (x = x + 1) are not
                 available afterwards: the key names the old value. *)
              let tgt = Option.get i.Instr.target in
              if not (List.exists (mentions tgt) i.Instr.operands) then
                Hashtbl.replace available key tgt;
              i
        end
        else i)
      b.instrs
  in
  b.instrs <- rewritten;
  !changes

let run (m : t) : int =
  List.fold_left
    (fun acc (f : func) ->
      List.fold_left (fun acc b -> acc + cse_block b) acc f.blocks)
    0 (m.funcs @ m.hooks)
