(** The audited effect table: one classification shared by every consumer.

    Two layers of the toolchain need to know what code is allowed to do:

    - the {e IR optimization passes} ({!Purity}) ask whether an instruction
      may be folded, deduplicated or deleted;
    - the {e interprocedural analyses} ([Hilti_vm.Summary], the shard-race
      detector) ask what a call out of HILTI — a host-API ("C") function —
      can touch: globals, the event stream, the outside world.

    Both questions used to be answered from separate ad-hoc lists that
    could drift.  This module is the single source: the mnemonic
    classification that {!Purity} re-exports, plus the audited host-API
    table covering every builtin the repo's frontends and runtimes
    register.  A host function absent from the table is {e unknown} and
    every client must treat it maximally conservatively. *)

(* ---- Effect classes ---------------------------------------------------- *)

type effect_class =
  | Pure          (** deterministic in its arguments, touches nothing *)
  | Reads_global  (** reads host- or runtime-global mutable state *)
  | Writes_global (** writes host- or runtime-global mutable state *)
  | Emits_event   (** appends to an event/log stream consumed downstream *)
  | Io            (** reads or writes the outside world (terminal, files) *)

let effect_class_to_string = function
  | Pure -> "pure"
  | Reads_global -> "reads-global"
  | Writes_global -> "writes-global"
  | Emits_event -> "emits-event"
  | Io -> "io"

(* ---- Audited host-API functions ----------------------------------------- *)

type host_fn = {
  hf_name : string;
  hf_effects : effect_class list;
  hf_sink : bool;
      (** arguments may be retained past the call (queued, logged):
          anything passed in escapes the calling activation *)
  hf_reenters_vm : bool;
      (** may synchronously call back into HILTI bytecode — a frame of the
          caller could be re-entered while still live *)
}

let hf ?(sink = false) ?(reenter = false) name effects =
  { hf_name = name; hf_effects = effects; hf_sink = sink; hf_reenters_vm = reenter }

(** Every host function a shipped component registers, audited by hand.
    Test- and bench-only helpers (the Host::, Par:: and Bench:: families)
    are left out deliberately: they stay unknown and force conservative
    treatment. *)
let host_table =
  [
    (* Host_api.compile's standard library surface. *)
    hf "Hilti::print" [ Io ];
    hf "Hilti::abort" [];  (* raises Hilti::Abort; retains nothing *)
    (* Mini-Bro runtime (bro_engine.ml). *)
    hf "Bro::print" [ Io ];
    hf "Bro::fmt" [ Pure ];
    hf "Bro::cat" [ Pure ];
    hf "Bro::to_count" [ Pure ];
    hf "Bro::sha1" [ Pure ];
    hf "Bro::join" [ Pure ];
    hf "Bro::network_time" [ Reads_global ];
    hf ~sink:true "Bro::log_write" [ Emits_event; Io ];
    hf ~sink:true "Bro::queue_event" [ Emits_event ];
    (* BinPAC++ analyzer event sinks (lib/analyzers): collected into
       per-flow logs and replayed serially by the collector, so they are
       event emission, not shared-state writes. *)
    hf ~sink:true "Analyzer::http_request" [ Emits_event ];
    hf ~sink:true "Analyzer::http_reply" [ Emits_event ];
    hf ~sink:true "Analyzer::mqtt_packet" [ Emits_event ];
    hf ~sink:true "Analyzer::ftp_request" [ Emits_event ];
    hf ~sink:true "Analyzer::ftp_reply" [ Emits_event ];
    hf ~sink:true "Evt::raise" [ Emits_event ];
  ]

let host_index : (string, host_fn) Hashtbl.t =
  let t = Hashtbl.create 32 in
  List.iter (fun h -> Hashtbl.replace t h.hf_name h) host_table;
  t

(** The audited entry for a host function, or [None] when unknown. *)
let host_effects name = Hashtbl.find_opt host_index name

let host_has name cls =
  match host_effects name with
  | Some h -> List.mem cls h.hf_effects
  | None -> false

(** Unknown host functions must be assumed to do all of it. *)
let host_is_unknown name = not (Hashtbl.mem host_index name)

(* ---- IR mnemonic classification ----------------------------------------- *)

(* The purity split the optimization passes consume; see {!Purity} for the
   foldable/deletable contract.  Kept here so the optimizer's notion of
   "no effects" and the analyses' effect vectors come from one table. *)

let pure_groups =
  [ "int"; "double"; "bool"; "addr"; "port"; "net"; "interval"; "tuple";
    "enum"; "bitset" ]

let pure_flow = [ "equal"; "select"; "assign"; "nop" ]

(* time.wall reads the clock; every other time op is pure.  String ops are
   pure.  Bytes/containers are mutable heap objects: conservatively impure. *)
let is_foldable (i : Instr.t) =
  let m = i.Instr.mnemonic in
  if List.mem m pure_flow then true
  else if m = "time.wall" then false
  else
    match String.index_opt m '.' with
    | Some d ->
        let g = String.sub m 0 d in
        List.mem g pure_groups || g = "time" || g = "string"
    | None -> false

(* Foldable mnemonics whose evaluation can raise a HILTI exception
   depending on operand VALUES (not just types): these stay observable
   even when the result is unused. *)
let raising_mnemonics =
  [ "int.div"; "int.mod";        (* Hilti::DivisionByZero *)
    "double.div";                (* Hilti::DivisionByZero *)
    "int.to_string";             (* ValueError: base must be 8, 10 or 16 *)
    "string.format";             (* ValueError: bad directive / arity *)
    "string.substr";             (* out-of-range substring *)
    "tuple.get" ]                (* IndexError on bad constant index *)

let divisor_operand (i : Instr.t) =
  match i.Instr.operands with [ _; d ] -> Some d | _ -> None

(* The raise is statically refuted when the decisive operand is a constant
   with a known-safe value: a non-zero divisor for div/mod. *)
let cannot_raise (i : Instr.t) =
  match i.Instr.mnemonic with
  | "int.div" | "int.mod" -> (
      match divisor_operand i with
      | Some (Instr.Const (Constant.Int (d, _))) -> d <> 0L
      | _ -> false)
  | "double.div" -> (
      match divisor_operand i with
      | Some (Instr.Const (Constant.Double d)) -> d <> 0.0
      | _ -> false)
  | _ -> false

let may_raise (i : Instr.t) =
  List.mem i.Instr.mnemonic raising_mnemonics && not (cannot_raise i)

let is_deletable (i : Instr.t) = is_foldable i && not (may_raise i)
