(** Generic peephole pair-fusion over a flat instruction array.

    A superinstruction pass replaces an adjacent pair of instructions with
    one fused instruction when a client-supplied rule matches.  The engine
    is representation-agnostic — it works over any ['a array] — because
    the pass pipeline ({!Pipeline}) sits above the HILTI IR while the
    profitable fusion candidates (compare+branch, load-const+binop,
    incr+jump backedges, identified from Hilti_obs's per-opcode-group
    retirement counters) live in the lowered bytecode: the concrete rules
    are supplied by [Hilti_vm.Specialize], which runs this engine after
    register-bank specialization.

    Fusing shortens the code array, so the engine also rewrites every
    control-flow target through the client's [retarget] callback.  A pair
    is only considered when no jump lands on its {e second} instruction
    (the fused replacement could not reproduce entry into the middle of
    the pair).  Greedy left-to-right matching; callers iterate to a
    fixpoint for cascading fusions. *)

(** [run ~targets_of ~retarget ~try_fuse code] returns the fused array and
    the number of pairs fused.

    - [targets_of i] lists the instruction indices [i] can transfer
      control to (excluding fallthrough);
    - [retarget f i] rewrites every target [t] inside [i] to [f t];
    - [try_fuse a b] returns the fused replacement for the adjacent pair
      [a; b], or [None]. *)
let run ~(targets_of : 'a -> int list) ~(retarget : (int -> int) -> 'a -> 'a)
    ~(try_fuse : 'a -> 'a -> 'a option) (code : 'a array) : 'a array * int =
  let len = Array.length code in
  let targeted = Array.make (max len 1) false in
  Array.iter
    (fun i ->
      List.iter (fun t -> if t >= 0 && t < len then targeted.(t) <- true) (targets_of i))
    code;
  let out = ref [] in
  let map = Array.make (max len 1) 0 in
  let fused = ref 0 in
  let emit i = out := i :: !out in
  let n = ref 0 (* next new index *) in
  let i = ref 0 in
  while !i < len do
    let here = !i in
    map.(here) <- !n;
    let pair =
      if here + 1 < len && not targeted.(here + 1) then
        try_fuse code.(here) code.(here + 1)
      else None
    in
    (match pair with
    | Some f ->
        map.(here + 1) <- !n;
        emit f;
        incr fused;
        i := here + 2
    | None ->
        emit code.(here);
        i := here + 1);
    incr n
  done;
  let arr = Array.of_list (List.rev !out) in
  let remap t = if t >= 0 && t < len then map.(t) else t in
  (Array.map (retarget remap) arr, !fused)
