(** Liveness-powered dead-store elimination, strengthening {!Dce}: DCE
    removes definitions of locals that are never read {e anywhere}; this
    pass removes assignments whose value is overwritten (or the function
    exits) before any read {e along every path} — the classic global DSE.

    Only {!Purity.is_deletable} instructions are candidates: an unused
    [int.div] with a possibly-zero divisor stays, because its
    [Hilti::DivisionByZero] is observable.  The CFG behind the liveness
    solve includes exceptional try.push edges, so values a handler might
    read are live across the protected region. *)

open Module_ir
module StrSet = Dataflow.StrSet

let sweep_func (f : func) : int =
  let changes = ref 0 in
  let vars = Analyses.declared f in
  let live = Analyses.liveness f in
  List.iter
    (fun (b : block) ->
      let after = ref (live.Dataflow.out_of b.label) in
      let kept =
        List.fold_left
          (fun kept (i : Instr.t) ->
            let dead =
              match i.Instr.target with
              | Some t ->
                  StrSet.mem t vars
                  && (not (StrSet.mem t !after))
                  && Purity.is_deletable i
              | None -> false
            in
            if dead then begin
              incr changes;
              kept  (* dropped: its operand reads die with it *)
            end
            else begin
              after :=
                StrSet.union
                  (StrSet.inter (Analyses.instr_uses i) vars)
                  (StrSet.diff !after (Analyses.instr_defs i));
              i :: kept
            end)
          []
          (List.rev b.instrs)
      in
      b.instrs <- kept)
    f.blocks;
  !changes

let run (m : t) : int =
  List.fold_left (fun acc f -> acc + sweep_func f) 0 (m.funcs @ m.hooks)
