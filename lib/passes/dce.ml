(** Dead-code elimination: drops pure instructions whose results are never
    read, and whole blocks unreachable from the entry (the link-time
    code-removal opportunity §7 sketches).  Returns rewrites performed. *)

open Module_ir

let operand_uses (op : Instr.operand) acc =
  let rec go op acc =
    match op with
    | Instr.Local n | Instr.Global n -> n :: acc
    | Instr.Tuple_op ops -> List.fold_right go ops acc
    | _ -> acc
  in
  go op acc

let used_locals (f : func) : (string, unit) Hashtbl.t =
  let used = Hashtbl.create 32 in
  List.iter
    (fun (b : block) ->
      List.iter
        (fun (i : Instr.t) ->
          List.iter
            (fun op -> List.iter (fun n -> Hashtbl.replace used n ()) (operand_uses op []))
            i.Instr.operands)
        b.instrs)
    f.blocks;
  used

let sweep_func (f : func) : int =
  let changes = ref 0 in
  (* Remove unreachable blocks first. *)
  let reach = Cfg.reachable f in
  let nblocks = List.length f.blocks in
  f.blocks <- List.filter (fun (b : block) -> Hashtbl.mem reach b.label) f.blocks;
  changes := !changes + (nblocks - List.length f.blocks);
  (* Then iterate dead-instruction removal to a fixpoint: removing one use
     can make another definition dead. *)
  (* Only locals of this function may be proven dead; a target that is not
     a declared local is a module global and always observable. *)
  let is_local n =
    List.mem_assoc n f.locals || List.mem_assoc n f.params
  in
  let again = ref true in
  while !again do
    again := false;
    let used = used_locals f in
    List.iter
      (fun (b : block) ->
        let kept =
          List.filter
            (fun (i : Instr.t) ->
              match i.Instr.target with
              | Some tgt
                when Purity.is_deletable i && is_local tgt
                     && not (Hashtbl.mem used tgt) ->
                  incr changes;
                  again := true;
                  false
              | _ -> true)
            b.instrs
        in
        b.instrs <- kept)
      f.blocks
  done;
  !changes

let run (m : t) : int =
  List.fold_left (fun acc f -> acc + sweep_func f) 0 (m.funcs @ m.hooks)
