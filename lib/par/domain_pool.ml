(** A fixed pool of OCaml 5 domains with per-domain run queues and work
    stealing.

    This is the substrate of {!Engine}: each worker domain owns a run
    queue; tasks are submitted with an {e affinity} selecting the preferred
    queue, and idle workers steal from their neighbours' queues so a skewed
    virtual-thread placement cannot leave cores idle (the paper's scheduler
    maps virtual threads onto a fixed set of native threads the same way,
    §3.2/§5).

    Synchronisation is a single pool mutex plus two condition variables:
    [work] wakes sleeping workers when a task arrives, [idle] wakes
    {!drain} when the pool may have gone quiescent.  Tasks run outside the
    lock.  The first exception raised by a task is captured and re-raised
    from {!drain} on the submitting domain. *)

type task = int -> unit
(** A task receives the id of the worker domain executing it. *)

let m_tasks =
  Hilti_obs.Metrics.counter "par_tasks_run" ~help:"Tasks executed by the domain pool"

let m_steals =
  Hilti_obs.Metrics.counter "par_steals"
    ~help:"Tasks taken from another worker's run queue"

let m_queue_depth =
  Hilti_obs.Metrics.gauge "par_queue_depth"
    ~help:"Tasks queued across the pool, not yet started"

type t = {
  domains : int;
  queues : task Queue.t array;  (* one run queue per worker *)
  lock : Mutex.t;
  work : Condition.t;  (* a task was submitted *)
  idle : Condition.t;  (* a worker finished a task *)
  mutable active : int;  (* tasks currently executing *)
  mutable running : bool;
  mutable error : exn option;  (* first task failure, raised at drain *)
  mutable handles : unit Domain.t list;
}

(* Take work while holding the lock: own queue first, then a stealing scan
   over the other workers' queues starting at our right-hand neighbour. *)
let take_locked pool wid =
  match Queue.take_opt pool.queues.(wid) with
  | Some t -> Some t
  | None ->
      let n = pool.domains in
      let rec scan k =
        if k >= n - 1 then None
        else
          match Queue.take_opt pool.queues.((wid + 1 + k) mod n) with
          | Some t ->
              Hilti_obs.Metrics.incr m_steals;
              Some t
          | None -> scan (k + 1)
      in
      scan 0

let record_error pool e =
  Mutex.protect pool.lock (fun () ->
      if pool.error = None then pool.error <- Some e)

let worker pool on_start wid =
  (try on_start wid with e -> record_error pool e);
  Mutex.lock pool.lock;
  let continue = ref true in
  while !continue do
    match take_locked pool wid with
    | Some task ->
        pool.active <- pool.active + 1;
        Mutex.unlock pool.lock;
        Hilti_obs.Metrics.gauge_decr m_queue_depth;
        Hilti_obs.Metrics.incr m_tasks;
        (try task wid with e -> record_error pool e);
        Mutex.lock pool.lock;
        pool.active <- pool.active - 1;
        if pool.active = 0 then Condition.broadcast pool.idle
    | None ->
        if pool.running then Condition.wait pool.work pool.lock
        else continue := false
  done;
  Mutex.unlock pool.lock

(** Spawn [domains] worker domains.  [on_start] runs once on each worker
    before it begins taking tasks (the engine uses it to register the
    worker's VM context in domain-local storage). *)
let create ~domains ~on_start =
  if domains < 1 then invalid_arg "Domain_pool.create: domains < 1";
  let pool =
    {
      domains;
      queues = Array.init domains (fun _ -> Queue.create ());
      lock = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      active = 0;
      running = true;
      error = None;
      handles = [];
    }
  in
  pool.handles <-
    List.init domains (fun wid -> Domain.spawn (fun () -> worker pool on_start wid));
  pool

let size pool = pool.domains

(** Submit a task, preferring worker [affinity mod domains].  Any idle
    worker may steal it. *)
let submit pool ~affinity task =
  Mutex.protect pool.lock (fun () ->
      if not pool.running then invalid_arg "Domain_pool.submit: pool shut down";
      Queue.add task pool.queues.(((affinity mod pool.domains) + pool.domains) mod pool.domains);
      Hilti_obs.Metrics.gauge_incr m_queue_depth;
      Condition.signal pool.work)

(** Block until every queue is empty and no task is executing, then re-raise
    the first task failure, if any.  Tasks may submit further tasks; drain
    waits for the transitive closure. *)
let drain pool =
  Mutex.lock pool.lock;
  let quiescent () =
    pool.active = 0 && Array.for_all Queue.is_empty pool.queues
  in
  while not (quiescent ()) do
    Condition.wait pool.idle pool.lock
  done;
  let err = pool.error in
  pool.error <- None;
  Mutex.unlock pool.lock;
  match err with Some e -> raise e | None -> ()

(** Stop accepting work, let workers finish their current task, and join
    all domains.  Queued-but-unstarted tasks are discarded. *)
let shutdown pool =
  Mutex.protect pool.lock (fun () ->
      pool.running <- false;
      Array.iter Queue.clear pool.queues;
      Hilti_obs.Metrics.gauge_set m_queue_depth 0;
      Condition.broadcast pool.work);
  List.iter Domain.join pool.handles;
  pool.handles <- []
