(** The flow-sharded, batch-granular data plane (§6's concurrency recipe,
    applied end-to-end).

    The PR-1 engine migrated work per-datagram through shared queues;
    domains added synchronization instead of throughput.  This scaffold
    partitions the packet path the way the paper's runtime partitions
    virtual threads: a {e dispatcher} (the calling domain) pulls an
    {!Hilti_rt.Iosrc.t}, stamps every packet with a global sequence
    number, and fans {e batches} out to [shards] worker domains over
    {!Hilti_rt.Spsc_ring}s, choosing the shard with a symmetric flow hash
    so both directions of a connection land on the same worker.

    Each shard owns its state outright — parser instances, session
    tables, timer managers, and (through the domain-sharded
    {!Hilti_obs.Metrics} shards) its metrics — and never takes a lock on
    the fast path: the only cross-domain traffic is the batch rings.

    Workers return per-packet results tagged with the packet's sequence
    number.  The dispatcher doubles as the {e collector}: it k-way-merges
    the shards' result logs back into global sequence order and feeds a
    serial consumer, so a sharded run produces output byte-identical to a
    serial run of the same per-packet function.  Ordering holds because
    every ring preserves order, every shard receives one (possibly empty)
    sub-batch per global batch, and results within a shard are emitted in
    input order.

    Backpressure is end-to-end: input rings bound how far the dispatcher
    can run ahead of a slow shard, output rings bound how far shards run
    ahead of the collector, and the dispatcher reclaims ring slots by
    collecting the oldest in-flight batch whenever a push would block. *)

open Hilti_types

type in_msg = {
  upto_ts : Time_ns.t;  (** timestamp watermark: last packet of the global batch *)
  pkts : (int * Hilti_rt.Iosrc.packet) array;  (** (seq, packet), seq-ascending *)
}

type 'out out_msg = { outs : (int * 'out) array  (** seq-ascending *) }

type stats = {
  mutable packets : int;  (** packets merged back in sequence order *)
  mutable batches : int;  (** global batches dispatched *)
  mutable outputs : int;  (** shard results delivered to [consume] *)
}

let m_batches =
  Hilti_obs.Metrics.counter "shard_batches"
    ~help:"Global batches dispatched to the shard rings"

let m_outputs =
  Hilti_obs.Metrics.counter "shard_outputs_merged"
    ~help:"Shard results merged back into sequence order"

let m_inflight =
  Hilti_obs.Metrics.gauge "shard_inflight_batches"
    ~help:"Batches dispatched but not yet collected"

(* Merge the shards' end-of-stream flush logs by sequence key. *)
let merge_finals (finals : (int * 'out) array array) (emit : int -> 'out -> unit) =
  let k = Array.length finals in
  let idx = Array.make k 0 in
  let rec go () =
    let best = ref (-1) in
    for i = 0 to k - 1 do
      if idx.(i) < Array.length finals.(i) then
        if
          !best < 0
          || fst finals.(i).(idx.(i)) < fst finals.(!best).(idx.(!best))
        then best := i
    done;
    if !best >= 0 then begin
      let i = !best in
      let seq, out = finals.(i).(idx.(i)) in
      idx.(i) <- idx.(i) + 1;
      emit seq out;
      go ()
    end
  in
  go ()

(** Run the sharded plane over [src].

    [shard_of] picks the worker for a packet (clamped into range; use
    {!Hilti_net.Flow.shard} on a peeked flow).  [init] builds a shard's
    private state {e on the shard's domain}.  [process] handles one packet
    on its shard and returns the packet's result, if any.  [tick], if
    given, runs on the shard after each batch with the batch's timestamp
    watermark (per-shard timer advancement).  [finish] runs on the shard
    at end of stream and returns flush results keyed by an ordering
    sequence.  [before] runs on the calling domain for {e every} packet in
    global sequence order (serial per-packet bookkeeping: timers, stats);
    [consume] runs right after the [before] of the packet that produced
    the result — together they replay the exact serial schedule.
    [after_batch], if given, runs on the calling domain once per global
    batch, after every packet of the batch has been consumed, with the
    batch's packet count and timestamp watermark — the batch-granular
    epoch point (one timer advance / stats scrape per batch instead of
    per packet).  A serial loop that mirrors the same batch size and
    epoch placement produces an identical schedule.

    Exceptions raised by shard callbacks are re-raised here after the
    plane is torn down. *)
let run ~shards ?(batch = 256) ?(ring = 8) ~shard_of ~init ~process
    ?(tick = fun _ _ -> ()) ?(finish = fun _ -> [])
    ?(after_batch = fun ~n:_ ~ts:_ -> ()) ~before ~consume
    (src : Hilti_rt.Iosrc.t) : stats =
  if shards < 1 then invalid_arg "Shard_plane.run: shards must be >= 1";
  if batch < 1 then invalid_arg "Shard_plane.run: batch must be >= 1";
  if ring < 1 then invalid_arg "Shard_plane.run: ring must be >= 1";
  let stats = { packets = 0; batches = 0; outputs = 0 } in
  let in_rings =
    Array.init shards (fun _ -> Hilti_rt.Spsc_ring.create ~capacity:ring ())
  in
  let out_rings =
    Array.init shards (fun _ -> Hilti_rt.Spsc_ring.create ~capacity:ring ())
  in
  let error : (exn * Printexc.raw_backtrace) option Atomic.t = Atomic.make None in
  let worker sid =
    let in_r = in_rings.(sid) and out_r = out_rings.(sid) in
    try
      let st = init sid in
      let rec loop () =
        match Hilti_rt.Spsc_ring.pop in_r with
        | Some (msg : in_msg) ->
            let outs = ref [] in
            Array.iter
              (fun (seq, p) ->
                match process st ~seq p with
                | Some o -> outs := (seq, o) :: !outs
                | None -> ())
              msg.pkts;
            tick st msg.upto_ts;
            Hilti_rt.Spsc_ring.push out_r
              { outs = Array.of_list (List.rev !outs) };
            loop ()
        | None ->
            (* Input closed and drained: flush, then close our side. *)
            Hilti_rt.Spsc_ring.push out_r { outs = Array.of_list (finish st) };
            Hilti_rt.Spsc_ring.close out_r
      in
      loop ()
    with e ->
      ignore
        (Atomic.compare_and_set error None (Some (e, Printexc.get_raw_backtrace ())));
      (* Fail open: close our output (the collector will notice) and keep
         draining input so the dispatcher can never block on a dead shard. *)
      Hilti_rt.Spsc_ring.close out_r;
      let rec drain () =
        match Hilti_rt.Spsc_ring.pop in_r with Some _ -> drain () | None -> ()
      in
      drain ()
  in
  let domains = Array.init shards (fun sid -> Domain.spawn (fun () -> worker sid)) in
  (* One entry per dispatched-but-uncollected batch: for each packet its
     (seq, ts, shard) — everything the collector needs to replay the
     serial schedule without the packet itself. *)
  let inflight : (int * Time_ns.t * int) array Queue.t = Queue.create () in
  let raise_shard_error () =
    match Atomic.get error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> failwith "Shard_plane: shard closed its output unexpectedly"
  in
  let collect_one () =
    let meta = Queue.pop inflight in
    Hilti_obs.Metrics.gauge_set m_inflight (Queue.length inflight);
    (* Output rings deliver exactly one record per global batch, in batch
       order, so the heads across all shards belong to this batch. *)
    let msgs =
      Array.map
        (fun r ->
          match Hilti_rt.Spsc_ring.pop r with
          | Some m -> m
          | None -> raise_shard_error ())
        out_rings
    in
    let idx = Array.make shards 0 in
    Array.iter
      (fun (seq, ts, sid) ->
        before ~seq ~ts;
        let m = msgs.(sid) in
        let i = idx.(sid) in
        if i < Array.length m.outs && fst m.outs.(i) = seq then begin
          consume ~seq (snd m.outs.(i));
          idx.(sid) <- i + 1;
          stats.outputs <- stats.outputs + 1;
          Hilti_obs.Metrics.incr m_outputs
        end)
      meta;
    stats.packets <- stats.packets + Array.length meta;
    let _, last_ts, _ = meta.(Array.length meta - 1) in
    after_batch ~n:(Array.length meta) ~ts:last_ts
  in
  let teardown () =
    Array.iter Hilti_rt.Spsc_ring.close in_rings;
    Array.iter
      (fun r ->
        let rec d () =
          match Hilti_rt.Spsc_ring.pop r with Some _ -> d () | None -> ()
        in
        d ())
      out_rings;
    Array.iter Domain.join domains
  in
  try
    let max_inflight = 2 * ring in
    let seq = ref 0 in
    let eof = ref false in
    let buf = Array.make batch None in
    while not !eof do
      let n = ref 0 in
      while !n < batch && not !eof do
        match Hilti_rt.Iosrc.read src with
        | Some p ->
            buf.(!n) <- Some p;
            incr n
        | None -> eof := true
      done;
      let n = !n in
      if n > 0 then begin
        (* Partition the batch by shard, preserving order. *)
        let per = Array.make shards [] in
        let last = Option.get buf.(n - 1) in
        let meta =
          Array.init n (fun i ->
              let p = Option.get buf.(i) in
              let s = shard_of p in
              let s = if s < 0 || s >= shards then 0 else s in
              let sq = !seq + i in
              per.(s) <- (sq, p) :: per.(s);
              (sq, p.Hilti_rt.Iosrc.ts, s))
        in
        seq := !seq + n;
        Array.fill buf 0 n None;
        for sid = 0 to shards - 1 do
          let msg =
            { upto_ts = last.Hilti_rt.Iosrc.ts;
              pkts = Array.of_list (List.rev per.(sid)) }
          in
          while not (Hilti_rt.Spsc_ring.try_push in_rings.(sid) msg) do
            (* A full ring implies at least [ring] fully-dispatched batches
               in flight — reclaim a slot by collecting the oldest. *)
            collect_one ()
          done
        done;
        Queue.add meta inflight;
        stats.batches <- stats.batches + 1;
        Hilti_obs.Metrics.incr m_batches;
        Hilti_obs.Metrics.gauge_set m_inflight (Queue.length inflight);
        if Queue.length inflight >= max_inflight then collect_one ()
      end
    done;
    Array.iter Hilti_rt.Spsc_ring.close in_rings;
    while not (Queue.is_empty inflight) do
      collect_one ()
    done;
    (* Every shard's last record is its end-of-stream flush. *)
    let finals =
      Array.map
        (fun r ->
          match Hilti_rt.Spsc_ring.pop r with
          | Some m -> m.outs
          | None -> raise_shard_error ())
        out_rings
    in
    merge_finals finals (fun seq out ->
        consume ~seq out;
        stats.outputs <- stats.outputs + 1);
    Array.iter
      (fun r ->
        match Hilti_rt.Spsc_ring.pop r with
        | None -> ()
        | Some _ -> failwith "Shard_plane: output after end-of-stream flush")
      out_rings;
    Array.iter Domain.join domains;
    (match Atomic.get error with Some _ -> raise_shard_error () | None -> ());
    stats
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    teardown ();
    (match Atomic.get error with
    | Some (se, sbt) when se == e -> Printexc.raise_with_backtrace se sbt
    | _ -> ());
    Printexc.raise_with_backtrace e bt
