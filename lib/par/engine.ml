(** Hilti_par: the multicore execution engine (§3.2, §5, §6.6).

    Maps HILTI virtual threads onto OCaml 5 domains.  The paper's runtime
    schedules virtual threads across a set of native pthreads, hashing the
    64-bit thread id to pick a target so that related state (e.g. one side
    of a connection) always lands on the same thread; we reproduce that
    with a {!Domain_pool} of worker domains, per-domain run queues and work
    stealing.

    {2 Model}

    Every virtual thread is an actor: it owns an inbox of jobs, its globals
    array, and its {!Hilti_rt.Timer_mgr}.  At most one {e activation} of a
    virtual thread is in flight at any time, so its jobs run sequentially
    (FIFO) even though different virtual threads run in parallel — exactly
    the isolation contract of [thread.schedule] (arguments are deep-copied
    by the VM before they reach us, so no mutable state crosses a domain
    boundary).  An activation is submitted to the pool with the thread's
    {e home} worker as affinity ([tid mod domains], the same hash-placement
    the cooperative scheduler's [thread_for_hash] exposes); stealing may
    run it elsewhere, in which case the thread's home moves with it and its
    state (globals, timers) is installed into the executing domain's VM
    context clone before any job runs.

    Each worker domain owns a {!Vm.context} clone sharing the immutable
    program, host functions and scheduler with the root context; the clone
    is registered in domain-local storage so every VM entry point resolves
    to it ({!Vm.exec_context}).  Serialized commands (file writes) stay on
    the scheduler's mutex-guarded command queue and are drained by the
    driving domain between quiescent points.

    {2 Protocol}

    {!attach} installs the engine behind the scheduler's {!Hilti_rt.Scheduler.backend}
    interface — the VM's [thread.schedule] lowering, [Mini_bro] and the
    analyzers driver run unchanged.  {!Hilti_rt.Scheduler.run} becomes
    {!drain}: wait until every inbox is empty and the pool is quiescent,
    then execute queued commands, repeating until no work remains.
    {!detach} removes the backend and joins the worker domains. *)

module Vm = Hilti_vm.Vm
module Value = Hilti_vm.Value
module Bytecode = Hilti_vm.Bytecode

type vthread = {
  vid : int64;
  inbox : (string * (unit -> unit)) Queue.t;  (* label, job *)
  timers : Hilti_rt.Timer_mgr.t;
  mutable globals : Value.t array option;  (* created on first activation *)
  mutable home : int;  (* preferred worker; moves on steal *)
  mutable queued : bool;  (* an activation is submitted or running *)
  mutable jobs_run : int;
}

type t = {
  root : Vm.context;
  sched : Hilti_rt.Scheduler.t;
  domains : int;
  clones : Vm.context array;  (* one VM context per worker domain *)
  pool : Domain_pool.t;
  lock : Mutex.t;  (* guards vthreads and all mutable engine state *)
  vthreads : (int64, vthread) Hashtbl.t;
  mutable vthread_count : int;
  mutable total_jobs : int;
  mutable absorbed_instrs : int;  (* clone instr counts folded into root *)
}

(* Lock ordering: engine lock < pool lock.  The pool never takes the
   engine lock. *)

let m_activations =
  Hilti_obs.Metrics.counter "par_activations"
    ~help:"Virtual-thread activations run by the engine"

let m_migrations =
  Hilti_obs.Metrics.counter "par_thread_migrations"
    ~help:"Activations that moved a virtual thread to a new home worker"

let batch_limit = 64
(* Jobs run per activation before the thread goes back to the pool — bounds
   how long one virtual thread can monopolise a worker. *)

let domain_for t tid =
  let r = Int64.to_int (Int64.rem tid (Int64.of_int t.domains)) in
  (r + t.domains) mod t.domains

(* Must hold t.lock. *)
let vthread_locked t vid =
  match Hashtbl.find_opt t.vthreads vid with
  | Some vt -> vt
  | None ->
      let vt =
        {
          vid;
          inbox = Queue.create ();
          timers = Hilti_rt.Timer_mgr.create ();
          globals = None;
          home = domain_for t vid;
          queued = false;
          jobs_run = 0;
        }
      in
      Hashtbl.add t.vthreads vid vt;
      t.vthread_count <- t.vthread_count + 1;
      vt

(* One activation: install the thread's migrated state into this worker's
   context clone, run a batch of its jobs, then either resubmit (more work
   arrived) or clear the in-flight flag.  The [queued] invariant guarantees
   no other domain touches this vthread's state concurrently. *)
let rec activation t vt wid =
  let clone = t.clones.(wid) in
  let batch = Queue.create () in
  Hilti_obs.Metrics.incr m_activations;
  let globals =
    Mutex.protect t.lock (fun () ->
        (* A home change after the thread has state is a migration: its
           globals and timers follow it to the stealing worker. *)
        if vt.home <> wid && vt.globals <> None then
          Hilti_obs.Metrics.incr m_migrations;
        vt.home <- wid;
        let g =
          match vt.globals with
          | Some g -> g
          | None ->
              (* First activation anywhere: materialise this thread's
                 globals from the program defaults (deep copy — §3.2). *)
              let g =
                Array.map Value.deep_copy t.root.Vm.program.Bytecode.global_defaults
              in
              vt.globals <- Some g;
              g
        in
        while Queue.length batch < batch_limit && not (Queue.is_empty vt.inbox) do
          Queue.add (Queue.pop vt.inbox) batch
        done;
        g)
  in
  (* All clones map this vid to the SAME array object, so stale entries
     left behind after a migration are harmless. *)
  Hashtbl.replace clone.Vm.vthread_globals vt.vid globals;
  clone.Vm.cached_tid <- vt.vid;
  clone.Vm.cached_globals <- globals;
  Fun.protect
    ~finally:(fun () ->
      Mutex.protect t.lock (fun () ->
          if Queue.is_empty vt.inbox then vt.queued <- false
          else submit_activation_locked t vt))
    (fun () ->
      Queue.iter
        (fun (_label, fn) ->
          fn ();
          vt.jobs_run <- vt.jobs_run + 1)
        batch)

(* Must hold t.lock (ordering: engine < pool). *)
and submit_activation_locked t vt =
  vt.queued <- true;
  Domain_pool.submit t.pool ~affinity:vt.home (fun wid -> activation t vt wid)

(** Schedule [fn] on virtual thread [vid] — the backend for
    [Scheduler.schedule].  Callable from any domain. *)
let schedule t vid ~label fn =
  Mutex.protect t.lock (fun () ->
      let vt = vthread_locked t vid in
      Queue.add (label, fn) vt.inbox;
      t.total_jobs <- t.total_jobs + 1;
      if not vt.queued then submit_activation_locked t vt)

let jobs_pending t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun _ vt acc -> acc + Queue.length vt.inbox) t.vthreads 0)

let pending t = jobs_pending t + Hilti_rt.Scheduler.commands_pending t.sched

(** Run to quiescence: wait for the pool to go idle (all inboxes empty —
    an activation is in flight whenever an inbox is non-empty), then drain
    serialized commands on the calling domain; commands may schedule more
    jobs, so repeat until nothing remains.  Re-raises the first job
    failure.  This is the backend for [Scheduler.run]. *)
let drain t =
  let rec go () =
    Domain_pool.drain t.pool;
    Hilti_rt.Scheduler.drain_commands t.sched;
    if jobs_pending t > 0 then go ()
  in
  go ();
  (* Fold the clones' instruction counts into the root so host-side
     reporting (Host_api.cycles) keeps working in parallel mode. *)
  Mutex.protect t.lock (fun () ->
      let total =
        Array.fold_left (fun acc c -> acc + c.Vm.instr_count) 0 t.clones
      in
      t.root.Vm.instr_count <-
        t.root.Vm.instr_count + (total - t.absorbed_instrs);
      t.absorbed_instrs <- total)

(** Advance every virtual thread's timer manager to [time].  Expiration
    callbacks run as jobs on the owning thread — on its domain, under its
    context — and have all fired when this returns (matching the
    synchronous cooperative semantics). *)
let advance t time =
  let vts =
    Mutex.protect t.lock (fun () ->
        Hashtbl.fold (fun _ vt acc -> vt :: acc) t.vthreads [])
  in
  List.iter
    (fun vt ->
      schedule t vt.vid ~label:"advance_time" (fun () ->
          ignore (Hilti_rt.Timer_mgr.advance vt.timers time)))
    vts;
  drain t

let timers_for t vid =
  Mutex.protect t.lock (fun () -> (vthread_locked t vid).timers)

let stats t : Hilti_rt.Scheduler.stats =
  Mutex.protect t.lock (fun () ->
      ({ vthreads = t.vthread_count; total_jobs = t.total_jobs }
        : Hilti_rt.Scheduler.stats))

let size t = t.domains

(** Create the engine and install it as [root]'s scheduler backend.  From
    then on every [thread.schedule] (VM or host side) and every
    [Scheduler.run]/[advance_time] goes through the domain pool. *)
let attach (root : Vm.context) ~domains =
  if root.Vm.parent <> None then invalid_arg "Engine.attach: context is a clone";
  if Hilti_rt.Scheduler.backend root.Vm.scheduler <> None then
    invalid_arg "Engine.attach: scheduler already has a backend";
  (* Multicore execution requires verified bytecode: the clones all run
     the fast dispatch loop, so a program that skipped verification at
     compile time (compile ~verify:false, or hand-built bytecode) is
     checked here — Verify_error propagates to the caller. *)
  if not root.Vm.program.Bytecode.verified then
    ignore (Hilti_vm.Verify.verify_exn root.Vm.program);
  assert root.Vm.program.Bytecode.verified;
  (* Register-bank specialization is equally domain-safe: the per-function
     bank templates are immutable after [Specialize] runs, and every
     activation copies them into fresh per-frame banks exactly as frames
     copy [reg_defaults] — so clones share only immutable data. *)
  if not root.Vm.program.Bytecode.specialized then
    ignore (Hilti_vm.Specialize.specialize root.Vm.program);
  (* Frame reuse is likewise domain-safe — arena slots live in the
     per-domain context clones, never in shared state — so attach makes
     sure the licence analysis has run for programs that bypassed
     [Host_api.compile]. *)
  if Array.length root.Vm.program.Bytecode.reuse = 0 then
    ignore (Hilti_vm.Summary.license_frame_reuse root.Vm.program);
  let clones = Array.init domains (fun _ -> Vm.clone_for_domain root) in
  let pool =
    Domain_pool.create ~domains ~on_start:(fun wid ->
        Vm.set_domain_context ~root ~clone:clones.(wid))
  in
  let t =
    {
      root;
      sched = root.Vm.scheduler;
      domains;
      clones;
      pool;
      lock = Mutex.create ();
      vthreads = Hashtbl.create 64;
      vthread_count = 0;
      total_jobs = 0;
      absorbed_instrs = 0;
    }
  in
  Hilti_rt.Scheduler.set_backend t.sched
    {
      b_schedule = (fun vid ~label fn -> schedule t vid ~label fn);
      b_run = (fun () -> drain t);
      b_advance = (fun time -> advance t time);
      b_timers = (fun vid -> timers_for t vid);
      b_stats = (fun () -> stats t);
      b_pending = (fun () -> pending t);
    };
  t

(** Remove the backend (the scheduler reverts to cooperative mode) and
    join the worker domains.  Pending work should be drained first. *)
let detach t =
  Hilti_rt.Scheduler.clear_backend t.sched;
  Domain_pool.shutdown t.pool

(** Run [f] with a [domains]-wide engine attached to [root]; always drains
    and detaches, even if [f] raises. *)
let with_engine (root : Vm.context) ~domains f =
  let t = attach root ~domains in
  Fun.protect ~finally:(fun () -> detach t) (fun () -> f t)
