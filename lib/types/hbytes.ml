(** Raw byte sequences (HILTI [bytes]).

    A [bytes] object is an append-only stream of raw data with type-safe
    iterators, designed for incremental protocol parsing: producers append
    chunks as they arrive from the network, parsers walk iterators over the
    stream, and reaching the current end raises [Would_block] — the signal
    for a parsing fiber to suspend until more input arrives.  Freezing the
    object declares the stream complete, turning the end into a definite
    end-of-data.

    Consumed data can be trimmed to bound memory; iterators keep *absolute*
    stream offsets, so trimming never invalidates iterators that still point
    at retained data. *)

exception Would_block
(** Raised when dereferencing or advancing past the current end of a
    non-frozen bytes object: more data may still arrive. *)

exception Out_of_range
(** Raised when accessing trimmed data or past the end of a frozen object. *)

exception Frozen
(** Raised when appending to a frozen object. *)

type t = {
  mutable buf : Bytes.t;  (* storage holding the retained window *)
  mutable off : int;      (* index in [buf] of absolute offset [base] *)
  mutable base : int;     (* absolute offset of first retained byte *)
  mutable len : int;      (* number of retained bytes *)
  mutable frozen : bool;
  mutable cached : string option;
      (* memoized [to_string] of the current window; invalidated whenever
         the window changes (append, trim).  Token matching and equality
         call [to_string] on the same frozen payload repeatedly, so this
         turns the per-call copy into a single one. *)
}

type iter = { bytes : t; pos : int }
(** Iterators are immutable values holding an absolute stream offset. *)

let create () =
  { buf = Bytes.create 64; off = 0; base = 0; len = 0; frozen = false; cached = None }

let of_string s =
  {
    buf = Bytes.of_string s;
    off = 0;
    base = 0;
    len = String.length s;
    frozen = false;
    cached = Some s;
  }

let length t = t.len
let start_offset t = t.base
let end_offset t = t.base + t.len
let is_frozen t = t.frozen

let ensure_room t extra =
  let need = t.off + t.len + extra in
  if need > Bytes.length t.buf then begin
    (* Compact to the front first; grow only if still too small. *)
    Bytes.blit t.buf t.off t.buf 0 t.len;
    t.off <- 0;
    let need = t.len + extra in
    if need > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf * 2) in
      while !cap < need do cap := !cap * 2 done;
      let nbuf = Bytes.create !cap in
      Bytes.blit t.buf 0 nbuf 0 t.len;
      t.buf <- nbuf
    end
  end

let append t s =
  if t.frozen then raise Frozen;
  let n = String.length s in
  ensure_room t n;
  Bytes.blit_string s 0 t.buf (t.off + t.len) n;
  t.len <- t.len + n;
  if n > 0 then t.cached <- None

let append_bytes t b = append t (Bytes.to_string b)

let freeze t = t.frozen <- true

(* Observation hook for trims.  This layer sits below the metrics library,
   so instrumentation is injected from above (the analyzer driver installs
   a counter increment); the default is a no-op. *)
let on_trim : (int -> unit) ref = ref (fun _ -> ())

let set_on_trim f = on_trim := f

(** Drop all data strictly before iterator [it]; accessing it afterwards
    raises [Out_of_range]. *)
let trim t (it : iter) =
  if it.pos > t.base then begin
    let upto = Stdlib.min it.pos (t.base + t.len) in
    let drop = upto - t.base in
    t.off <- t.off + drop;
    t.base <- upto;
    t.len <- t.len - drop;
    if drop > 0 then begin
      t.cached <- None;
      !on_trim drop
    end
  end

(* Iterators --------------------------------------------------------------- *)

let begin_ t : iter = { bytes = t; pos = t.base }
let end_ t : iter = { bytes = t; pos = t.base + t.len }
let iter_at t pos : iter = { bytes = t; pos }

let offset (it : iter) = it.pos

(** True iff the iterator sits at the current end of the stream. *)
let at_end (it : iter) = it.pos >= end_offset it.bytes

(** True iff no byte can ever be read at this iterator (frozen + at end). *)
let is_eod (it : iter) = at_end it && it.bytes.frozen

let check_readable (it : iter) =
  if it.pos < it.bytes.base then raise Out_of_range;
  if it.pos >= end_offset it.bytes then
    if it.bytes.frozen then raise Out_of_range else raise Would_block

(** Byte under the iterator, as an int in 0..255. *)
let get (it : iter) =
  check_readable it;
  Char.code (Bytes.get it.bytes.buf (it.bytes.off + it.pos - it.bytes.base))

let incr (it : iter) : iter = { it with pos = it.pos + 1 }

let advance (it : iter) n : iter =
  if n < 0 then invalid_arg "Hbytes.advance";
  { it with pos = it.pos + n }

(** Signed distance in bytes from [a] to [b] (same underlying object). *)
let distance (a : iter) (b : iter) = b.pos - a.pos

let iter_equal (a : iter) (b : iter) = a.bytes == b.bytes && a.pos = b.pos
let iter_compare (a : iter) (b : iter) = Int.compare a.pos b.pos

(** All currently retained data as a string, memoized until the window
    changes.  When the object is frozen and the window spans the whole
    backing buffer, the buffer itself is exposed without copying: a frozen
    object rejects appends and trimming only narrows the window (which
    invalidates the cache), so the backing bytes can never change under
    the returned string. *)
let to_string t =
  match t.cached with
  | Some s -> s
  | None ->
      let s =
        if t.frozen && t.off = 0 && t.len = Bytes.length t.buf then
          Bytes.unsafe_to_string t.buf
        else Bytes.sub_string t.buf t.off t.len
      in
      t.cached <- Some s;
      s

(** Extract the bytes in [\[a, b)] as a string.  Both iterators must point
    into retained, available data.  A whole-window extraction reuses the
    [to_string] cache instead of copying again. *)
let sub (a : iter) (b : iter) =
  let t = a.bytes in
  if a.pos < t.base || b.pos > end_offset t || a.pos > b.pos then
    raise Out_of_range;
  if a.pos = t.base && b.pos = end_offset t then to_string t
  else Bytes.sub_string t.buf (t.off + a.pos - t.base) (b.pos - a.pos)

(** [available it] is the number of bytes readable from [it] right now. *)
let available (it : iter) = Stdlib.max 0 (end_offset it.bytes - it.pos)

(** [require it n] checks that [n] bytes can be read from [it]; raises
    [Would_block] (or [Out_of_range] when frozen) otherwise. *)
let require (it : iter) n =
  if it.pos < it.bytes.base then raise Out_of_range;
  if available it < n then
    if it.bytes.frozen then raise Out_of_range else raise Would_block

(** Read exactly [n] bytes starting at [it]; returns data and new iterator. *)
let read (it : iter) n =
  require it n;
  (sub it (advance it n), advance it n)

(* Searching --------------------------------------------------------------- *)

(** Find the first occurrence of [needle] at or after [it] within currently
    available data.  [None] means not found *so far*: on a non-frozen object
    the caller may need to wait for more data. *)
let find (it : iter) needle =
  let t = it.bytes in
  let nlen = String.length needle in
  let limit = end_offset t - nlen in
  let rec scan pos =
    if pos > limit then None
    else
      let rec matches k =
        k >= nlen
        || Bytes.get t.buf (t.off + pos - t.base + k) = needle.[k] && matches (k + 1)
      in
      if matches 0 then Some { it with pos } else scan (pos + 1)
  in
  if nlen = 0 then Some it
  else if it.pos < t.base then raise Out_of_range
  else scan (Stdlib.max it.pos t.base)

(** [match_prefix it s] checks whether the data at [it] starts with [s];
    raises [Would_block] if not enough data is available to decide. *)
let match_prefix (it : iter) s =
  let n = String.length s in
  let t = it.bytes in
  let rec check k =
    k >= n
    || Bytes.get t.buf (t.off + it.pos - t.base + k) = s.[k] && check (k + 1)
  in
  if available it >= n then check 0
  else begin
    (* Even with partial data we can answer "no" early on a mismatch. *)
    let avail = available it in
    let rec partial k =
      if k >= avail then
        if t.frozen then false else raise Would_block
      else if Bytes.get t.buf (t.off + it.pos - t.base + k) <> s.[k] then false
      else partial (k + 1)
    in
    if it.pos < t.base then raise Out_of_range else partial 0
  end

(* Unpacking binary data, the substrate of overlays ------------------------ *)

(** Byte order for multi-byte integer decoding. *)
type order = Big | Little

let read_uint (it : iter) ~width ~order =
  require it width;
  let t = it.bytes in
  let byte k = Char.code (Bytes.get t.buf (t.off + it.pos - t.base + k)) in
  let v = ref 0L in
  (match order with
  | Big -> for k = 0 to width - 1 do v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (byte k)) done
  | Little -> for k = width - 1 downto 0 do v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (byte k)) done);
  (!v, advance it width)

let read_sint (it : iter) ~width ~order =
  let v, it' = read_uint it ~width ~order in
  let bits = width * 8 in
  let v =
    if bits >= 64 then v
    else
      let sign = Int64.shift_left 1L (bits - 1) in
      if Int64.logand v sign <> 0L then Int64.sub v (Int64.shift_left 1L bits) else v
  in
  (v, it')

let equal a b = to_string a = to_string b && a.base = b.base
let hash t = Hashtbl.hash (to_string t)
let pp fmt t = Format.fprintf fmt "b\"%s\"" (String.escaped (to_string t))
