(** Raw byte sequences (HILTI [bytes]).

    A [bytes] object is an append-only stream of raw data with type-safe
    iterators, designed for incremental protocol parsing: producers append
    chunks as they arrive from the network, parsers walk iterators over the
    stream, and reaching the current end raises [Would_block] — the signal
    for a parsing fiber to suspend until more input arrives.  Freezing the
    object declares the stream complete, turning the end into a definite
    end-of-data.

    Consumed data can be trimmed to bound memory; iterators keep *absolute*
    stream offsets, so trimming never invalidates iterators that still point
    at retained data. *)

exception Would_block
(** Raised when dereferencing or advancing past the current end of a
    non-frozen bytes object: more data may still arrive. *)

exception Out_of_range
(** Raised when accessing trimmed data or past the end of a frozen object. *)

exception Frozen
(** Raised when appending to a frozen object. *)

exception Stale_view
(** Raised when reading through a {!view} after the underlying object
    mutated (append or trim): the view's generation no longer matches. *)

type t = {
  mutable buf : Bytes.t;  (* storage holding the retained window *)
  mutable off : int;      (* index in [buf] of absolute offset [base] *)
  mutable base : int;     (* absolute offset of first retained byte *)
  mutable len : int;      (* number of retained bytes *)
  mutable frozen : bool;
  mutable gen : int;
      (* memo generation: bumped on every mutation of the window (append,
         trim).  Views capture it at creation and refuse to read once it
         moved on — stale data can never leak through a slice. *)
  mutable cached : string option;
      (* memoized [to_string] of the current window; invalidated whenever
         the window changes (append, trim).  Token matching and equality
         call [to_string] on the same frozen payload repeatedly, so this
         turns the per-call copy into a single one. *)
}

type iter = { bytes : t; pos : int }
(** Iterators are immutable values holding an absolute stream offset. *)

let create () =
  { buf = Bytes.create 64; off = 0; base = 0; len = 0; frozen = false; gen = 0;
    cached = None }

let of_string s =
  {
    buf = Bytes.of_string s;
    off = 0;
    base = 0;
    len = String.length s;
    frozen = false;
    gen = 0;
    cached = Some s;
  }

(** Wrap [s] as an already-frozen bytes object {e without copying}: the
    string itself becomes the backing buffer.  Safe because a frozen
    object rejects appends, trimming only narrows the window, and
    [ensure_room]'s compaction can never run — the backing bytes are
    immutable for the object's whole lifetime.  This is the per-packet
    fast path: a datagram payload becomes parseable with one small
    allocation and zero byte copies. *)
let frozen_of_string s =
  {
    buf = Bytes.unsafe_of_string s;
    off = 0;
    base = 0;
    len = String.length s;
    frozen = true;
    gen = 0;
    cached = Some s;
  }

let length t = t.len
let start_offset t = t.base
let end_offset t = t.base + t.len
let is_frozen t = t.frozen

let ensure_room t extra =
  let need = t.off + t.len + extra in
  if need > Bytes.length t.buf then begin
    (* Compact to the front first; grow only if still too small. *)
    Bytes.blit t.buf t.off t.buf 0 t.len;
    t.off <- 0;
    let need = t.len + extra in
    if need > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf * 2) in
      while !cap < need do cap := !cap * 2 done;
      let nbuf = Bytes.create !cap in
      Bytes.blit t.buf 0 nbuf 0 t.len;
      t.buf <- nbuf
    end
  end

let append t s =
  if t.frozen then raise Frozen;
  let n = String.length s in
  ensure_room t n;
  Bytes.blit_string s 0 t.buf (t.off + t.len) n;
  t.len <- t.len + n;
  if n > 0 then begin
    t.cached <- None;
    t.gen <- t.gen + 1
  end

let append_bytes t b = append t (Bytes.to_string b)

let freeze t = t.frozen <- true

(* Observation hook for trims.  This layer sits below the metrics library,
   so instrumentation is injected from above (the analyzer driver installs
   a counter increment); the default is a no-op. *)
let on_trim : (int -> unit) ref = ref (fun _ -> ())

let set_on_trim f = on_trim := f

(** Drop all data strictly before iterator [it]; accessing it afterwards
    raises [Out_of_range]. *)
let trim t (it : iter) =
  if it.pos > t.base then begin
    let upto = Stdlib.min it.pos (t.base + t.len) in
    let drop = upto - t.base in
    t.off <- t.off + drop;
    t.base <- upto;
    t.len <- t.len - drop;
    if drop > 0 then begin
      t.cached <- None;
      t.gen <- t.gen + 1;
      !on_trim drop
    end
  end

(* Iterators --------------------------------------------------------------- *)

(** Drop the first [n] retained bytes — the window-relative trim the
    incremental stream parsers use after consuming a message. *)
let trim_front t n = if n > 0 then trim t { bytes = t; pos = t.base + n }

let begin_ t : iter = { bytes = t; pos = t.base }
let end_ t : iter = { bytes = t; pos = t.base + t.len }
let iter_at t pos : iter = { bytes = t; pos }

let offset (it : iter) = it.pos

(** True iff the iterator sits at the current end of the stream. *)
let at_end (it : iter) = it.pos >= end_offset it.bytes

(** True iff no byte can ever be read at this iterator (frozen + at end). *)
let is_eod (it : iter) = at_end it && it.bytes.frozen

let check_readable (it : iter) =
  if it.pos < it.bytes.base then raise Out_of_range;
  if it.pos >= end_offset it.bytes then
    if it.bytes.frozen then raise Out_of_range else raise Would_block

(** Byte under the iterator, as an int in 0..255. *)
let get (it : iter) =
  check_readable it;
  Char.code (Bytes.get it.bytes.buf (it.bytes.off + it.pos - it.bytes.base))

let incr (it : iter) : iter = { it with pos = it.pos + 1 }

let advance (it : iter) n : iter =
  if n < 0 then invalid_arg "Hbytes.advance";
  { it with pos = it.pos + n }

(** Signed distance in bytes from [a] to [b] (same underlying object). *)
let distance (a : iter) (b : iter) = b.pos - a.pos

let iter_equal (a : iter) (b : iter) = a.bytes == b.bytes && a.pos = b.pos
let iter_compare (a : iter) (b : iter) = Int.compare a.pos b.pos

(** All currently retained data as a string, memoized until the window
    changes.  When the object is frozen and the window spans the whole
    backing buffer, the buffer itself is exposed without copying: a frozen
    object rejects appends and trimming only narrows the window (which
    invalidates the cache), so the backing bytes can never change under
    the returned string. *)
let to_string t =
  match t.cached with
  | Some s -> s
  | None ->
      let s =
        if t.frozen && t.off = 0 && t.len = Bytes.length t.buf then
          Bytes.unsafe_to_string t.buf
        else Bytes.sub_string t.buf t.off t.len
      in
      t.cached <- Some s;
      s

(** Extract the bytes in [\[a, b)] as a string.  Both iterators must point
    into retained, available data.  A whole-window extraction reuses the
    [to_string] cache instead of copying again. *)
let sub (a : iter) (b : iter) =
  let t = a.bytes in
  if a.pos < t.base || b.pos > end_offset t || a.pos > b.pos then
    raise Out_of_range;
  if a.pos = t.base && b.pos = end_offset t then to_string t
  else Bytes.sub_string t.buf (t.off + a.pos - t.base) (b.pos - a.pos)

(** [available it] is the number of bytes readable from [it] right now. *)
let available (it : iter) = Stdlib.max 0 (end_offset it.bytes - it.pos)

(** [require it n] checks that [n] bytes can be read from [it]; raises
    [Would_block] (or [Out_of_range] when frozen) otherwise. *)
let require (it : iter) n =
  if it.pos < it.bytes.base then raise Out_of_range;
  if available it < n then
    if it.bytes.frozen then raise Out_of_range else raise Would_block

(** Read exactly [n] bytes starting at [it]; returns data and new iterator. *)
let read (it : iter) n =
  require it n;
  (sub it (advance it n), advance it n)

(* Searching --------------------------------------------------------------- *)

(** Find the first occurrence of [needle] at or after [it] within currently
    available data.  [None] means not found *so far*: on a non-frozen object
    the caller may need to wait for more data. *)
(* Closure-free needle comparison: keeping every parameter explicit stops
   the compiler from allocating a closure per scanned position, which used
   to dominate the line-oriented parsers' allocation profile. *)
let rec needle_matches buf phys needle k nlen =
  k >= nlen
  || (Bytes.get buf (phys + k) = needle.[k]
     && needle_matches buf phys needle (k + 1) nlen)

let find (it : iter) needle =
  let t = it.bytes in
  let nlen = String.length needle in
  if nlen = 0 then Some it
  else if it.pos < t.base then raise Out_of_range
  else begin
    let from = Stdlib.max it.pos t.base in
    if nlen = 1 then
      (* memchr: the dominant case (line terminators). *)
      let start = t.off + from - t.base in
      if start >= t.off + t.len then None
      else
        match Bytes.index_from_opt t.buf start needle.[0] with
        | Some p when p < t.off + t.len -> Some { it with pos = t.base + p - t.off }
        | _ -> None
    else begin
      let limit = end_offset t - nlen in
      let c0 = needle.[0] in
      let rec scan pos =
        if pos > limit then None
        else
          let phys = t.off + pos - t.base in
          if Bytes.unsafe_get t.buf phys = c0
             && needle_matches t.buf phys needle 1 nlen
          then Some { it with pos }
          else scan (pos + 1)
      in
      scan from
    end
  end

(** [match_prefix it s] checks whether the data at [it] starts with [s];
    raises [Would_block] if not enough data is available to decide. *)
let match_prefix (it : iter) s =
  let n = String.length s in
  let t = it.bytes in
  let rec check k =
    k >= n
    || Bytes.get t.buf (t.off + it.pos - t.base + k) = s.[k] && check (k + 1)
  in
  if available it >= n then check 0
  else begin
    (* Even with partial data we can answer "no" early on a mismatch. *)
    let avail = available it in
    let rec partial k =
      if k >= avail then
        if t.frozen then false else raise Would_block
      else if Bytes.get t.buf (t.off + it.pos - t.base + k) <> s.[k] then false
      else partial (k + 1)
    in
    if it.pos < t.base then raise Out_of_range else partial 0
  end

(* Unpacking binary data, the substrate of overlays ------------------------ *)

(** Byte order for multi-byte integer decoding. *)
type order = Big | Little

let read_uint (it : iter) ~width ~order =
  require it width;
  let t = it.bytes in
  let byte k = Char.code (Bytes.get t.buf (t.off + it.pos - t.base + k)) in
  let v = ref 0L in
  (match order with
  | Big -> for k = 0 to width - 1 do v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (byte k)) done
  | Little -> for k = width - 1 downto 0 do v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (byte k)) done);
  (!v, advance it width)

let read_sint (it : iter) ~width ~order =
  let v, it' = read_uint it ~width ~order in
  let bits = width * 8 in
  let v =
    if bits >= 64 then v
    else
      let sign = Int64.shift_left 1L (bits - 1) in
      if Int64.logand v sign <> 0L then Int64.sub v (Int64.shift_left 1L bits) else v
  in
  (v, it')

(* Zero-copy sub-views ----------------------------------------------------- *)

(** A [view] is an offset/length window over the backing buffer with no
    string materialization: reads go straight to the retained bytes.  The
    physical buffer index is resolved once at creation, which is sound
    because every operation that could move the retained bytes (append —
    possibly compacting or reallocating the buffer — and trim) bumps the
    object's memo generation, and every read checks the captured
    generation first: a stale view raises {!Stale_view} instead of ever
    returning bytes from the wrong place. *)
type view = {
  vt : t;        (* underlying object, for the generation check *)
  vphys : int;   (* physical index of the view's first byte in [vt.buf] *)
  vabs : int;    (* absolute stream offset of the view's first byte *)
  vlen : int;
  vgen : int;    (* [vt.gen] at creation *)
}

let check_view v = if v.vgen <> v.vt.gen then raise Stale_view

(** View over the whole currently retained window. *)
let view t : view =
  { vt = t; vphys = t.off; vabs = t.base; vlen = t.len; vgen = t.gen }

(** View over [\[a, b)]; both iterators must point into retained,
    currently available data. *)
let sub_view (a : iter) (b : iter) : view =
  let t = a.bytes in
  if a.pos < t.base || b.pos > end_offset t || a.pos > b.pos then
    raise Out_of_range;
  { vt = t;
    vphys = t.off + a.pos - t.base;
    vabs = a.pos;
    vlen = b.pos - a.pos;
    vgen = t.gen }

(** Sub-slice of a view (relative offset/length). *)
let view_sub (v : view) off len : view =
  check_view v;
  if off < 0 || len < 0 || off + len > v.vlen then raise Out_of_range;
  { v with vphys = v.vphys + off; vabs = v.vabs + off; vlen = len }

let view_length v = v.vlen
let view_offset v = v.vabs

(** Iterator at relative offset [i] of the view (for handing a slice
    position back to iterator-based code). *)
let view_iter (v : view) i : iter =
  check_view v;
  { bytes = v.vt; pos = v.vabs + i }

let get_u8 (v : view) i =
  check_view v;
  if i < 0 || i >= v.vlen then raise Out_of_range;
  Char.code (Bytes.unsafe_get v.vt.buf (v.vphys + i))

let get_u16 (v : view) i =
  check_view v;
  if i < 0 || i + 2 > v.vlen then raise Out_of_range;
  let b = v.vt.buf and p = v.vphys + i in
  (Char.code (Bytes.unsafe_get b p) lsl 8) lor Char.code (Bytes.unsafe_get b (p + 1))

let get_u32 (v : view) i =
  check_view v;
  if i < 0 || i + 4 > v.vlen then raise Out_of_range;
  let b = v.vt.buf and p = v.vphys + i in
  (Char.code (Bytes.unsafe_get b p) lsl 24)
  lor (Char.code (Bytes.unsafe_get b (p + 1)) lsl 16)
  lor (Char.code (Bytes.unsafe_get b (p + 2)) lsl 8)
  lor Char.code (Bytes.unsafe_get b (p + 3))

(** First occurrence of byte [c] at or after relative offset [from];
    the returned index is relative to the view. *)
let find_byte (v : view) ?(from = 0) (c : char) : int option =
  check_view v;
  if from < 0 then raise Out_of_range;
  if from >= v.vlen then None
  else
    match Bytes.index_from_opt v.vt.buf (v.vphys + from) c with
    | Some p when p < v.vphys + v.vlen -> Some (p - v.vphys)
    | _ -> None

(** Materialize [len] bytes at relative offset [off] as a string — the
    one place a view turns into a copy, for callers that need a real
    string (semantic field values, log columns). *)
let view_sub_string (v : view) off len : string =
  check_view v;
  if off < 0 || len < 0 || off + len > v.vlen then raise Out_of_range;
  Bytes.sub_string v.vt.buf (v.vphys + off) len

(** The whole view as a string; reuses the [to_string] memo when the view
    spans the full retained window (no copy on the frozen fast path). *)
let view_to_string (v : view) : string =
  check_view v;
  if v.vabs = v.vt.base && v.vlen = v.vt.len then to_string v.vt
  else Bytes.sub_string v.vt.buf v.vphys v.vlen

(** Append [len] bytes at relative offset [off] into [buf] without an
    intermediate string (label/token accumulation on the parse path). *)
let view_add_to_buffer (v : view) off len (buf : Buffer.t) =
  check_view v;
  if off < 0 || len < 0 || off + len > v.vlen then raise Out_of_range;
  Buffer.add_subbytes buf v.vt.buf (v.vphys + off) len

(** A frozen bytes object sharing the view's window — zero-copy when the
    underlying object is frozen (the backing buffer can never move), a
    copy otherwise.  This is how a packet-payload slice enters the
    BinPAC++ runtime without materializing a string. *)
let of_view (v : view) : t =
  check_view v;
  if v.vt.frozen then
    { buf = v.vt.buf; off = v.vphys; base = 0; len = v.vlen; frozen = true;
      gen = 0; cached = None }
  else of_string (view_sub_string v 0 v.vlen)

(** Zero-copy view over [len] bytes of [s] starting at [off]: wraps [s]
    in a frozen object (no byte copy) and slices it.  The packet-payload
    entry point of the analyzer fast path. *)
let view_of_string ?(off = 0) ?len s : view =
  let t = frozen_of_string s in
  let len = match len with Some l -> l | None -> String.length s - off in
  if off < 0 || len < 0 || off + len > t.len then raise Out_of_range;
  { vt = t; vphys = off; vabs = off; vlen = len; vgen = 0 }

let equal a b = to_string a = to_string b && a.base = b.base
let hash t = Hashtbl.hash (to_string t)
let pp fmt t = Format.fprintf fmt "b\"%s\"" (String.escaped (to_string t))
