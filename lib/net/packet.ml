(** Fully decoded packets: the layered view analyzers consume. *)

open Hilti_types

type transport =
  | TCP of Tcp.t * string   (** header, payload *)
  | UDP of Udp.t * string
  | Other of int * string   (** protocol number, raw payload *)

type ip = V4 of Ipv4.t | V6 of Ipv6.t

type t = {
  ts : Time_ns.t;
  eth : Ethernet.t;
  ip : ip;
  transport : transport;
}

exception Unsupported of string

let src t = match t.ip with V4 h -> h.Ipv4.src | V6 h -> h.Ipv6.src
let dst t = match t.ip with V4 h -> h.Ipv4.dst | V6 h -> h.Ipv6.dst

let ports t =
  match t.transport with
  | TCP (h, _) -> Some (Port.tcp h.Tcp.src_port, Port.tcp h.Tcp.dst_port)
  | UDP (h, _) -> Some (Port.udp h.Udp.src_port, Port.udp h.Udp.dst_port)
  | Other _ -> None

let flow t =
  match ports t with
  | Some (sp, dp) ->
      Some (Flow.make ~src:(src t) ~dst:(dst t) ~src_port:sp ~dst_port:dp)
  | None -> None

let payload t =
  match t.transport with TCP (_, p) | UDP (_, p) | Other (_, p) -> p

let decode_transport protocol data =
  if protocol = Ipv4.proto_tcp then
    let h = Tcp.decode data in
    TCP (h, Tcp.payload h data)
  else if protocol = Ipv4.proto_udp then
    let h = Udp.decode data in
    UDP (h, Udp.payload h data)
  else Other (protocol, data)

(** Decode an Ethernet frame into a packet.  Raises {!Wire.Truncated},
    {!Ipv4.Bad_header} etc. on malformed input, and {!Unsupported} for
    non-IP ethertypes — analyzers treat those as "crud" to skip. *)
let decode ~ts frame =
  let eth = Ethernet.decode frame in
  let body = Ethernet.payload frame in
  if eth.Ethernet.ethertype = Ethernet.ethertype_ipv4 then
    let ih = Ipv4.decode body in
    let transport = decode_transport ih.Ipv4.protocol (Ipv4.payload ih body) in
    { ts; eth; ip = V4 ih; transport }
  else if eth.Ethernet.ethertype = Ethernet.ethertype_ipv6 then
    let ih = Ipv6.decode body in
    let transport = decode_transport ih.Ipv6.next_header (Ipv6.payload ih body) in
    { ts; eth; ip = V6 ih; transport }
  else raise (Unsupported (Printf.sprintf "ethertype 0x%04x" eth.Ethernet.ethertype))

let decode_opt ~ts frame =
  match decode ~ts frame with
  | p -> Some p
  | exception (Wire.Truncated _ | Ipv4.Bad_header _ | Ipv6.Bad_header _
              | Tcp.Bad_header _ | Udp.Bad_header _ | Unsupported _) ->
      None

(* Header peeks (the sharded dispatcher's fast path) ------------------------ *)

(* The dispatcher of the flow-sharded data plane must pick a shard for
   every frame, but full decoding belongs on the shard (it materializes
   payload strings).  These peeks read only the handful of header bytes
   that determine the shard key, allocation-free except for the Addr
   values, with a full-decode fallback for anything but plain IPv4. *)

let ipv4_addr_at frame off =
  Hilti_types.Addr.of_ipv4_octets
    (Char.code frame.[off]) (Char.code frame.[off + 1])
    (Char.code frame.[off + 2]) (Char.code frame.[off + 3])

let peek_ipv4 frame =
  (* 14-byte Ethernet header, then version/IHL, protocol at +9, addresses
     at +12/+16 of the IP header. *)
  if String.length frame < 34 then None
  else if Wire.get_u16 frame 12 <> Ethernet.ethertype_ipv4 then None
  else
    let vihl = Char.code frame.[14] in
    if vihl lsr 4 <> 4 then None
    else
      let ihl = (vihl land 0xf) * 4 in
      if ihl < 20 || String.length frame < 14 + ihl then None
      else
        Some (Char.code frame.[23], ihl, ipv4_addr_at frame 26, ipv4_addr_at frame 30)

(** [peek_addrs frame] is the IP source/destination pair of [frame]
    without materializing any payload; [None] for non-IP frames. *)
let peek_addrs frame =
  match peek_ipv4 frame with
  | Some (_, _, src, dst) -> Some (src, dst)
  | None -> (
      (* Non-IPv4 (e.g. IPv6): rare enough to take the full decoder. *)
      match decode_opt ~ts:Hilti_types.Time_ns.epoch frame with
      | Some pkt -> Some (src pkt, dst pkt)
      | None -> None)

(** [peek_flow frame] is the frame's 5-tuple read straight out of the
    headers, or [None] for non-IP frames and transports without ports.
    Agrees with [flow (decode frame)] whenever both succeed. *)
let peek_flow frame =
  match peek_ipv4 frame with
  | Some (proto, ihl, src, dst)
    when proto = Ipv4.proto_tcp || proto = Ipv4.proto_udp ->
      let toff = 14 + ihl in
      if String.length frame < toff + 4 then None
      else
        let sp = Wire.get_u16 frame toff and dp = Wire.get_u16 frame (toff + 2) in
        let mk = if proto = Ipv4.proto_tcp then Port.tcp else Port.udp in
        Some (Flow.make ~src ~dst ~src_port:(mk sp) ~dst_port:(mk dp))
  | Some _ -> None
  | None -> (
      match decode_opt ~ts:Hilti_types.Time_ns.epoch frame with
      | Some pkt -> flow pkt
      | None -> None)

(** [peek_udp frame] is the flow plus the UDP payload's (offset, length)
    within [frame], read straight out of the headers for plain IPv4/UDP
    frames — the zero-copy fast path of the DNS driver.  Agrees with
    [decode]'s payload bounds ([total_length]- and frame-truncated).
    [None] means "not a well-formed IPv4/UDP frame this peek handles";
    callers fall back to {!decode_opt}. *)
let peek_udp frame =
  match peek_ipv4 frame with
  | Some (proto, ihl, src, dst) when proto = Ipv4.proto_udp ->
      let flen = String.length frame in
      let tl = Wire.get_u16 frame 16 in
      let ip_len = min (tl - ihl) (flen - 14 - ihl) in
      if ip_len < Udp.header_len then None
      else
        let toff = 14 + ihl in
        let ulen = Wire.get_u16 frame (toff + 4) in
        if ulen < Udp.header_len then None
        else
          let plen = min (ulen - Udp.header_len) (ip_len - Udp.header_len) in
          let sp = Wire.get_u16 frame toff and dp = Wire.get_u16 frame (toff + 2) in
          let fl =
            Flow.make ~src ~dst ~src_port:(Port.udp sp) ~dst_port:(Port.udp dp)
          in
          Some (fl, toff + Udp.header_len, plen)
  | _ -> None

(* Encoding helpers used by the trace generator ---------------------------- *)

let encode_tcp ~src ~dst ~src_port ~dst_port ~seq ~ack ~flags payload =
  let tcp = Tcp.encode ~src_port ~dst_port ~seq ~ack ~flags ~src ~dst payload in
  let ip = Ipv4.encode ~protocol:Ipv4.proto_tcp ~src ~dst tcp in
  Ethernet.encode ~ethertype:Ethernet.ethertype_ipv4 ip

let encode_udp ~src ~dst ~src_port ~dst_port payload =
  let udp = Udp.encode ~src_port ~dst_port ~src ~dst payload in
  let ip = Ipv4.encode ~protocol:Ipv4.proto_udp ~src ~dst udp in
  Ethernet.encode ~ethertype:Ethernet.ethertype_ipv4 ip
