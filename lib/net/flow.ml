(** Connection 5-tuples with canonical orientation and hashing.

    The hash is the basis for the ID-based load balancing of §3.2: hashing a
    flow's 5-tuple to a virtual-thread id serializes all computation for
    that flow on one thread. *)

open Hilti_types

type t = {
  src : Addr.t;
  dst : Addr.t;
  src_port : Port.t;
  dst_port : Port.t;
}

let make ~src ~dst ~src_port ~dst_port = { src; dst; src_port; dst_port }

(** The flow as seen from the opposite direction. *)
let reverse t =
  { src = t.dst; dst = t.src; src_port = t.dst_port; dst_port = t.src_port }

(** Canonical orientation: the endpoint with the smaller (addr, port) pair
    becomes the "originator" side of the key, so both directions of a
    connection map to the same key.  Returns the canonical flow and whether
    the input was already in canonical order. *)
let canonical t =
  let c = Addr.compare t.src t.dst in
  let forward = if c <> 0 then c < 0 else Port.compare t.src_port t.dst_port <= 0 in
  if forward then (t, true) else (reverse t, false)

(** [fst (canonical t)] without the tuple: the per-packet key computation
    of session tables, so forward flows return [t] itself with no
    allocation. *)
let canon t =
  let c = Addr.compare t.src t.dst in
  if if c <> 0 then c < 0 else Port.compare t.src_port t.dst_port <= 0 then t
  else reverse t

(* ---- Packed session-table key ---------------------------------------------- *)

let proto_byte = function Port.TCP -> 0 | Port.UDP -> 1 | Port.ICMP -> 2

let family_byte = function Addr.IPv4 -> 0 | Addr.IPv6 -> 1

(** The canonical flow as a flat 40-byte string: both endpoints in
    canonical order — addresses, ports, protocols, families.  Session
    tables key on this instead of the flow record itself, so generic
    hashing and equality run over one unboxed string (the runtime's C
    fast path) rather than traversing four boxed-int64 records per
    probe.  Two flows map to the same key iff they are the same
    unordered connection 5-tuple. *)
let packed_key t =
  let c = canon t in
  let b = Bytes.create 40 in
  Bytes.set_int64_be b 0 c.src.Addr.hi;
  Bytes.set_int64_be b 8 c.src.Addr.lo;
  Bytes.set_int64_be b 16 c.dst.Addr.hi;
  Bytes.set_int64_be b 24 c.dst.Addr.lo;
  Bytes.set_uint16_be b 32 c.src_port.Port.number;
  Bytes.set_uint16_be b 34 c.dst_port.Port.number;
  Bytes.unsafe_set b 36 (Char.unsafe_chr (proto_byte c.src_port.Port.proto));
  Bytes.unsafe_set b 37 (Char.unsafe_chr (proto_byte c.dst_port.Port.proto));
  Bytes.unsafe_set b 38 (Char.unsafe_chr (family_byte c.src.Addr.family));
  Bytes.unsafe_set b 39 (Char.unsafe_chr (family_byte c.dst.Addr.family));
  Bytes.unsafe_to_string b

let equal a b =
  Addr.equal a.src b.src && Addr.equal a.dst b.dst
  && Port.equal a.src_port b.src_port
  && Port.equal a.dst_port b.dst_port

let compare a b =
  let c = Addr.compare a.src b.src in
  if c <> 0 then c
  else
    let c = Addr.compare a.dst b.dst in
    if c <> 0 then c
    else
      let c = Port.compare a.src_port b.src_port in
      if c <> 0 then c else Port.compare a.dst_port b.dst_port

(** Direction-insensitive hash (both directions agree), suitable for
    thread scheduling. *)
let hash t =
  let c = canon t in
  Hashtbl.hash
    (Addr.hash c.src, Addr.hash c.dst, Port.hash c.src_port, Port.hash c.dst_port)

(* ---- Shard selection (the flow-sharded data plane) ------------------------- *)

(** Reduce an arbitrary hash to a shard index in [\[0, shards)]. *)
let shard_of_hash ~shards h =
  if shards <= 1 then 0 else (h land max_int) mod shards

(** The shard owning this flow.  Symmetric: both directions of a 5-tuple
    map to the same shard (the hash canonicalizes first), so all state for
    a connection stays shard-local — §6's hash-scheduling invariant. *)
let shard ~shards t = shard_of_hash ~shards (hash t)

(** Symmetric hash of the unordered address pair, ignoring ports — the
    shard key for analyses whose state is keyed by host pair rather than
    by connection (e.g. the firewall's dynamic rule set, which installs
    both directions of an address pair). *)
let host_pair_hash a b =
  let ha = Addr.hash a and hb = Addr.hash b in
  if ha <= hb then Hashtbl.hash (ha, hb) else Hashtbl.hash (hb, ha)

let to_string t =
  Printf.sprintf "%s:%d > %s:%d/%s" (Addr.to_string t.src)
    (Port.number t.src_port) (Addr.to_string t.dst) (Port.number t.dst_port)
    (Port.proto_to_string (Port.proto t.src_port))

let pp fmt t = Format.pp_print_string fmt (to_string t)
