(** Connection 5-tuples with canonical orientation and hashing.

    The hash is the basis for the ID-based load balancing of §3.2: hashing a
    flow's 5-tuple to a virtual-thread id serializes all computation for
    that flow on one thread. *)

open Hilti_types

type t = {
  src : Addr.t;
  dst : Addr.t;
  src_port : Port.t;
  dst_port : Port.t;
}

let make ~src ~dst ~src_port ~dst_port = { src; dst; src_port; dst_port }

(** The flow as seen from the opposite direction. *)
let reverse t =
  { src = t.dst; dst = t.src; src_port = t.dst_port; dst_port = t.src_port }

(** Canonical orientation: the endpoint with the smaller (addr, port) pair
    becomes the "originator" side of the key, so both directions of a
    connection map to the same key.  Returns the canonical flow and whether
    the input was already in canonical order. *)
let canonical t =
  let c = Addr.compare t.src t.dst in
  let forward = if c <> 0 then c < 0 else Port.compare t.src_port t.dst_port <= 0 in
  if forward then (t, true) else (reverse t, false)

let equal a b =
  Addr.equal a.src b.src && Addr.equal a.dst b.dst
  && Port.equal a.src_port b.src_port
  && Port.equal a.dst_port b.dst_port

let compare a b =
  let c = Addr.compare a.src b.src in
  if c <> 0 then c
  else
    let c = Addr.compare a.dst b.dst in
    if c <> 0 then c
    else
      let c = Port.compare a.src_port b.src_port in
      if c <> 0 then c else Port.compare a.dst_port b.dst_port

(** Direction-insensitive hash (both directions agree), suitable for
    thread scheduling. *)
let hash t =
  let canon, _ = canonical t in
  Hashtbl.hash
    (Addr.hash canon.src, Addr.hash canon.dst, Port.hash canon.src_port,
     Port.hash canon.dst_port)

(* ---- Shard selection (the flow-sharded data plane) ------------------------- *)

(** Reduce an arbitrary hash to a shard index in [\[0, shards)]. *)
let shard_of_hash ~shards h =
  if shards <= 1 then 0 else (h land max_int) mod shards

(** The shard owning this flow.  Symmetric: both directions of a 5-tuple
    map to the same shard (the hash canonicalizes first), so all state for
    a connection stays shard-local — §6's hash-scheduling invariant. *)
let shard ~shards t = shard_of_hash ~shards (hash t)

(** Symmetric hash of the unordered address pair, ignoring ports — the
    shard key for analyses whose state is keyed by host pair rather than
    by connection (e.g. the firewall's dynamic rule set, which installs
    both directions of an address pair). *)
let host_pair_hash a b =
  let ha = Addr.hash a and hb = Addr.hash b in
  if ha <= hb then Hashtbl.hash (ha, hb) else Hashtbl.hash (hb, ha)

let to_string t =
  Printf.sprintf "%s:%d > %s:%d/%s" (Addr.to_string t.src)
    (Port.number t.src_port) (Addr.to_string t.dst) (Port.number t.dst_port)
    (Port.proto_to_string (Port.proto t.src_port))

let pp fmt t = Format.pp_print_string fmt (to_string t)
