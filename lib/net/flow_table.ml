(** Session tables: per-connection state keyed by canonical flow, with
    idle-expiration through the runtime's expiring map — the "session tables
    with built-in state management" component the paper's intro promises. *)

open Hilti_types

type dir = Orig | Resp
(** Direction of a packet relative to the connection originator (the
    endpoint that sent the first packet we saw). *)

type 'a conn = {
  flow : Flow.t;  (* as first seen: src = originator *)
  mutable state : 'a;
  started : Time_ns.t;
  mutable last : Time_ns.t;
  mutable orig_packets : int;
  mutable resp_packets : int;
}

type 'a t = {
  table : (string, 'a conn) Hilti_rt.Exp_map.t;
      (* keyed by {!Flow.packed_key}: flat strings hash and compare on the
         runtime's C fast path, a measurable win on the per-packet path *)
  fresh : Flow.t -> Time_ns.t -> 'a;
  mutable created : int;
  mutable removed_cb : ('a conn -> unit) option;
}

let m_created =
  Hilti_obs.Metrics.counter "flow_connections_created"
    ~help:"Connections instantiated by session tables"

let m_live =
  Hilti_obs.Metrics.gauge "flow_connections_live"
    ~help:"Connections currently held in session tables"

let m_evicted =
  Hilti_obs.Metrics.counter "connections_evicted"
    ~help:"Connections dropped by idle timeout"

let create ?timeout ?timer_mgr fresh =
  (* Session tables routinely hold thousands of live connections; start
     the bucket table big enough that steady growth does not rehash the
     whole key set several times over. *)
  let table = Hilti_rt.Exp_map.create ~size:4096 () in
  (match (timeout, timer_mgr) with
  | Some ival, Some mgr ->
      Hilti_rt.Exp_map.set_timeout table (Hilti_rt.Expire.Access ival) mgr
  | _ -> ());
  let t = { table; fresh; created = 0; removed_cb = None } in
  (* Idle eviction flushes connection state through the same callback as a
     manual removal, so analyzers see a uniform teardown path. *)
  Hilti_rt.Exp_map.set_on_expire table (fun _canon conn ->
      Hilti_obs.Metrics.incr m_evicted;
      Hilti_obs.Metrics.gauge_decr m_live;
      match t.removed_cb with Some cb -> cb conn | None -> ());
  t

let on_remove t cb = t.removed_cb <- Some cb

(** Connections dropped by idle timeout so far. *)
let expired t = Hilti_rt.Exp_map.expired_total t.table

let size t = Hilti_rt.Exp_map.size t.table

let created t = t.created

(** Find or create the connection for [flow] (packet orientation); returns
    the connection and the packet's direction within it. *)
let lookup t ~ts flow =
  let key = Flow.packed_key flow in
  match Hilti_rt.Exp_map.find_opt t.table key with
  | Some conn ->
      conn.last <- ts;
      let dir = if Flow.equal conn.flow flow then Orig else Resp in
      (match dir with
      | Orig -> conn.orig_packets <- conn.orig_packets + 1
      | Resp -> conn.resp_packets <- conn.resp_packets + 1);
      (conn, dir)
  | None ->
      let conn =
        {
          flow;
          state = t.fresh flow ts;
          started = ts;
          last = ts;
          orig_packets = 1;
          resp_packets = 0;
        }
      in
      t.created <- t.created + 1;
      Hilti_obs.Metrics.incr m_created;
      Hilti_obs.Metrics.gauge_incr m_live;
      (* The probe above just missed, so skip [insert]'s presence check. *)
      Hilti_rt.Exp_map.add_fresh t.table key conn;
      (conn, Orig)

let remove t flow =
  let key = Flow.packed_key flow in
  (match (t.removed_cb, Hilti_rt.Exp_map.find_opt t.table key) with
  | Some cb, Some conn -> cb conn
  | _ -> ());
  if Hilti_rt.Exp_map.mem t.table key then
    Hilti_obs.Metrics.gauge_decr m_live;
  Hilti_rt.Exp_map.remove t.table key

let iter f t = Hilti_rt.Exp_map.iter (fun _ conn -> f conn) t.table

let fold f t init = Hilti_rt.Exp_map.fold (fun _ conn acc -> f conn acc) t.table init
