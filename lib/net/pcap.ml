(** The libpcap trace-file format (classic pcap, microsecond resolution,
    little-endian, LINKTYPE_ETHERNET).

    Reading is incremental: a {!reader} pulls records one at a time from a
    refill function (a file, channel, or in-memory string served in chunks)
    through a bounded internal buffer, so memory stays O(snaplen) rather than
    O(trace size).  [parse_string]/[read_file] remain as thin compat shims
    that collect a reader into a list.  Writing mirrors this with a
    {!writer} that emits records as they are produced. *)

open Hilti_types

let magic = 0xa1b2c3d4
let linktype_ethernet = 1

(* Upper bound on a plausible capture length; larger values mean a corrupt
   or hostile header and must not drive allocation. *)
let max_caplen = 256 * 1024

type record = { ts : Time_ns.t; orig_len : int; data : string }

exception Bad_format of string

(** Hook for non-fatal diagnostics (truncated tail in lax mode).  Tests
    capture it; the default mirrors tcpdump's warning on stderr. *)
let warn = ref (fun msg -> Printf.eprintf "pcap: warning: %s\n%!" msg)

let m_records = Hilti_obs.Metrics.counter "pcap_records_read" ~help:"Pcap records decoded"

let m_bytes =
  Hilti_obs.Metrics.counter "pcap_bytes_read" ~help:"Captured payload bytes decoded from pcap"

let m_truncations =
  Hilti_obs.Metrics.counter "pcap_truncation_warnings"
    ~help:"Truncated-tail warnings from lax pcap readers"

(* ---- Writing -------------------------------------------------------------- *)

let encode_global_header ?(snaplen = 65535) () =
  let b = Bytes.create 24 in
  Wire.set_u32l b 0 magic;
  (* version 2.4, as little-endian u16 pairs *)
  Bytes.set b 4 '\x02';
  Bytes.set b 5 '\x00';
  Bytes.set b 6 '\x04';
  Bytes.set b 7 '\x00';
  Wire.set_u32l b 8 0;   (* thiszone *)
  Wire.set_u32l b 12 0;  (* sigfigs *)
  Wire.set_u32l b 16 snaplen;
  Wire.set_u32l b 20 linktype_ethernet;
  Bytes.to_string b

let encode_record r =
  let ns = Time_ns.to_ns r.ts in
  let sec = Int64.to_int (Int64.div ns 1_000_000_000L) in
  let usec = Int64.to_int (Int64.div (Int64.rem ns 1_000_000_000L) 1000L) in
  let b = Bytes.create (16 + String.length r.data) in
  Wire.set_u32l b 0 sec;
  Wire.set_u32l b 4 usec;
  Wire.set_u32l b 8 (String.length r.data);
  Wire.set_u32l b 12 r.orig_len;
  Bytes.blit_string r.data 0 b 16 (String.length r.data);
  Bytes.to_string b

(** Streaming writer: the global header is emitted on creation, records as
    they are written.  [emit] receives encoded byte runs in order. *)
type writer = {
  emit : string -> unit;
  w_close : unit -> unit;
  w_snaplen : int;
  mutable written : int;
}

let writer_of_sink ?(snaplen = 65535) ?(close = fun () -> ()) emit =
  emit (encode_global_header ~snaplen ());
  { emit; w_close = close; w_snaplen = snaplen; written = 0 }

let writer_of_channel ?snaplen oc =
  writer_of_sink ?snaplen (fun s -> output_string oc s)

let open_writer ?snaplen path =
  let oc = open_out_bin path in
  writer_of_sink ?snaplen ~close:(fun () -> close_out oc) (fun s ->
      output_string oc s)

let write_record w r =
  if String.length r.data > w.w_snaplen then
    raise (Bad_format "record longer than snaplen");
  w.emit (encode_record r);
  w.written <- w.written + 1

let close_writer w = w.w_close ()

(** Serialize a full trace to a string (the contents of a .pcap file). *)
let to_string records =
  let buf = Buffer.create 4096 in
  let w = writer_of_sink (Buffer.add_string buf) in
  List.iter (write_record w) records;
  close_writer w;
  Buffer.contents buf

let write_file path records =
  let w = open_writer path in
  Fun.protect
    ~finally:(fun () -> close_writer w)
    (fun () -> List.iter (write_record w) records)

(* ---- Incremental reading -------------------------------------------------- *)

(** A pull-based pcap reader.  [refill buf pos len] reads at most [len]
    bytes into [buf] at [pos] and returns how many were read (0 = EOF);
    the internal buffer holds at most one in-flight record plus header,
    i.e. O(snaplen), independent of trace length. *)
type reader = {
  refill : Bytes.t -> int -> int -> int;
  r_close : unit -> unit;
  strict : bool;
  mutable buf : Bytes.t;
  mutable pos : int;  (* consumed prefix of [buf] *)
  mutable len : int;  (* valid bytes in [buf] *)
  mutable snaplen : int;
  mutable header_seen : bool;
  mutable at_eof : bool;
}

let reader_of_refill ?(strict = false) ?(close = fun () -> ()) refill =
  {
    refill;
    r_close = close;
    strict;
    buf = Bytes.create 65536;
    pos = 0;
    len = 0;
    snaplen = 0;
    header_seen = false;
    at_eof = false;
  }

let reader_of_channel ?strict ?(close_channel = false) ic =
  reader_of_refill ?strict
    ~close:(fun () -> if close_channel then close_in ic)
    (fun b pos len -> input ic b pos len)

let open_file_reader ?strict path =
  reader_of_channel ?strict ~close_channel:true (open_in_bin path)

(** In-memory reader serving at most [chunk] bytes per refill call, so tests
    can force chunk boundaries to land mid-header and mid-record. *)
let reader_of_string ?strict ?(chunk = max_int) s =
  if chunk < 1 then invalid_arg "Pcap.reader_of_string: chunk must be >= 1";
  let off = ref 0 in
  reader_of_refill ?strict (fun b pos len ->
      let n = min (min len chunk) (String.length s - !off) in
      Bytes.blit_string s !off b pos n;
      off := !off + n;
      n)

let close_reader r = r.r_close ()

let available r = r.len - r.pos

(* Try to make [n] contiguous unconsumed bytes available, compacting the
   consumed prefix away first so the buffer never grows past one record. *)
let fill r n =
  if available r < n then begin
    if r.pos > 0 then begin
      Bytes.blit r.buf r.pos r.buf 0 (r.len - r.pos);
      r.len <- r.len - r.pos;
      r.pos <- 0
    end;
    if n > Bytes.length r.buf then begin
      let nb = Bytes.create n in
      Bytes.blit r.buf 0 nb 0 r.len;
      r.buf <- nb
    end;
    let continue = ref (not r.at_eof) in
    while r.len < n && !continue do
      let got = r.refill r.buf r.len (Bytes.length r.buf - r.len) in
      if got = 0 then begin
        r.at_eof <- true;
        continue := false
      end
      else r.len <- r.len + got
    done
  end;
  available r >= n

let get_u32l_bytes b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let read_global_header r =
  if not (fill r 24) then raise (Bad_format "short global header");
  if get_u32l_bytes r.buf r.pos <> magic then raise (Bad_format "bad magic");
  let snaplen = get_u32l_bytes r.buf (r.pos + 16) in
  if snaplen < 0 || snaplen > max_caplen then
    raise (Bad_format "implausible snaplen");
  r.snaplen <- snaplen;
  r.pos <- r.pos + 24;
  r.header_seen <- true

(* A truncated tail (trace cut off mid-record, e.g. a killed tcpdump) is a
   graceful EOF in lax mode; only [strict] readers abort on it. *)
let truncated r what =
  if r.strict then raise (Bad_format what)
  else begin
    Hilti_obs.Metrics.incr m_truncations;
    !warn (Printf.sprintf "truncated trace: %s at end of input" what);
    None
  end

(** Pull the next record, or [None] at end of input. *)
let read_record r =
  if not r.header_seen then read_global_header r;
  if available r = 0 && not (fill r 1) then None
  else if not (fill r 16) then truncated r "short record header"
  else begin
    let sec = get_u32l_bytes r.buf r.pos in
    let usec = get_u32l_bytes r.buf (r.pos + 4) in
    let caplen = get_u32l_bytes r.buf (r.pos + 8) in
    let orig_len = get_u32l_bytes r.buf (r.pos + 12) in
    (* Nonsensical header values mean corruption, not truncation: always
       reject rather than allocate an attacker-controlled size. *)
    if caplen < 0 || caplen > max_caplen then
      raise (Bad_format "implausible caplen");
    if r.snaplen > 0 && caplen > r.snaplen then
      raise (Bad_format "caplen exceeds snaplen");
    if not (fill r (16 + caplen)) then truncated r "short record"
    else begin
      let data = Bytes.sub_string r.buf (r.pos + 16) caplen in
      r.pos <- r.pos + 16 + caplen;
      Hilti_obs.Metrics.incr m_records;
      Hilti_obs.Metrics.add m_bytes caplen;
      let ts =
        Time_ns.of_ns
          (Int64.add
             (Int64.mul (Int64.of_int sec) 1_000_000_000L)
             (Int64.mul (Int64.of_int usec) 1000L))
      in
      Some { ts; orig_len; data }
    end
  end

let fold_records f acc r =
  let rec go acc =
    match read_record r with None -> acc | Some rec_ -> go (f acc rec_)
  in
  go acc

(* ---- Compat shims over the streaming reader ------------------------------- *)

let records_of_reader r =
  Fun.protect
    ~finally:(fun () -> close_reader r)
    (fun () -> List.rev (fold_records (fun acc x -> x :: acc) [] r))

let parse_string ?(strict = true) s =
  records_of_reader (reader_of_string ~strict s)

let read_file ?(strict = true) path =
  records_of_reader (open_file_reader ~strict path)

(* ---- As an input source ---------------------------------------------------- *)

(** Expose a record list as an [iosrc] (HILTI's packet-input type). *)
let iosrc_of_records records =
  Hilti_rt.Iosrc.of_list ~kind:"pcap"
    (List.map (fun r -> { Hilti_rt.Iosrc.ts = r.ts; data = r.data }) records)

(** Stream records straight out of a reader without materializing a list. *)
let iosrc_of_reader r =
  Hilti_rt.Iosrc.create ~kind:"pcap" (fun () ->
      match read_record r with
      | Some rec_ -> Some { Hilti_rt.Iosrc.ts = rec_.ts; data = rec_.data }
      | None ->
          close_reader r;
          None)

let iosrc_of_file ?strict path = iosrc_of_reader (open_file_reader ?strict path)
