(** The analysis scripts bundled with Mini-Bro — the equivalents of Bro's
    default HTTP and DNS scripts the evaluation runs (§6.1/§6.5): session
    logging with request/reply correlation and file-body hashing, plus the
    Fig. 8 connection tracker, the §7 scan detector, and the Fibonacci
    micro-benchmark script. *)

(* Record types shared by every script (Bro's init-bare equivalents). *)
let prelude = {|
type conn_id: record {
    orig_h: addr;
    orig_p: port;
    resp_h: addr;
    resp_p: port;
};

type connection: record {
    id: conn_id;
    uid: string;
    start_time: time;
};
|}

(* Fig. 8(a), verbatim. *)
let track = prelude ^ {|
global hosts: set[addr];

event connection_established(c: connection) {
    add hosts[c$id$resp_h];   # Record responder IP.
}

event bro_done() {
    for (i in hosts)          # Print all recorded IPs.
        print i;
}
|}

(* The HTTP analysis: correlate requests with replies FIFO per connection
   (as Bro's http.log does), log every transaction, and log file bodies
   with their SHA1 (files.log). *)
let http = prelude ^ {|
type HttpReq: record {
    method: string;
    uri: string;
    host: string;
    version: string;
    ts: time;
};

global pending: table[string] of vector of HttpReq;

event http_request(c: connection, method: string, uri: string,
                   version: string, host: string) {
    if (c$uid !in pending)
        pending[c$uid] = vector();
    push(pending[c$uid],
         [$method=method, $uri=uri, $host=host, $version=version,
          $ts=network_time()]);
}

event http_reply(c: connection, version: string, code: count, reason: string,
                 mime: string, body_len: count, body_sha1: string) {
    local method = "";
    local uri = "";
    local host = "";
    if (c$uid in pending && |pending[c$uid]| > 0) {
        local r = shift(pending[c$uid]);
        method = r$method;
        uri = r$uri;
        host = r$host;
    }
    Log::write("http",
        [$ts=network_time(), $uid=c$uid,
         $orig_h=c$id$orig_h, $orig_p=c$id$orig_p,
         $resp_h=c$id$resp_h, $resp_p=c$id$resp_p,
         $method=method, $host=host, $uri=uri, $version=version,
         $status_code=code, $reason=reason,
         $mime_type=mime, $body_len=body_len]);
    if (body_len > 0)
        Log::write("files",
            [$ts=network_time(), $uid=c$uid,
             $tx_host=c$id$resp_h, $rx_host=c$id$orig_h,
             $mime_type=mime, $total_bytes=body_len, $sha1=body_sha1]);
}

event connection_state_remove(c: connection) {
    if (c$uid in pending)
        delete pending[c$uid];
}
|}

(* The DNS analysis: correlate queries with responses by (uid, id). *)
let dns = prelude ^ {|
type DnsReq: record {
    query: string;
    qtype: count;
    ts: time;
};

global dns_pending: table[string] of DnsReq;
global qtype_names: table[count] of string &default="OTHER";

event bro_init() {
    qtype_names[1] = "A";
    qtype_names[2] = "NS";
    qtype_names[5] = "CNAME";
    qtype_names[6] = "SOA";
    qtype_names[12] = "PTR";
    qtype_names[15] = "MX";
    qtype_names[16] = "TXT";
    qtype_names[28] = "AAAA";
}

event dns_request(c: connection, id: count, query: string, qtype: count) {
    dns_pending[fmt("%s-%d", c$uid, id)] =
        [$query=query, $qtype=qtype, $ts=network_time()];
}

event dns_reply(c: connection, id: count, rcode: count,
                answers: vector of string, ttls: vector of count) {
    local key = fmt("%s-%d", c$uid, id);
    local query = "";
    local qtype = 0;
    if (key in dns_pending) {
        local r = dns_pending[key];
        query = r$query;
        qtype = r$qtype;
        delete dns_pending[key];
    }
    Log::write("dns",
        [$ts=network_time(), $uid=c$uid,
         $orig_h=c$id$orig_h, $orig_p=c$id$orig_p,
         $resp_h=c$id$resp_h, $resp_p=c$id$resp_p,
         $query=query, $qtype_name=qtype_names[qtype], $rcode=rcode,
         $answers=join(answers, ","), $ttls=join(ttls, ",")]);
}
|}

(* The MQTT analysis: per-connection session state (the CONNECT client id
   annotates every later action on the connection) plus SUBSCRIBE/SUBACK
   correlation by (uid, msgid) — the same pending-table pattern dns.log
   uses. *)
let mqtt = prelude ^ {|
global mqtt_clients: table[string] of string &default="";
global mqtt_subs: table[string] of string;

event mqtt_connect(c: connection, client_id: string, proto: string,
                   version: count, keepalive: count) {
    mqtt_clients[c$uid] = client_id;
    Log::write("mqtt",
        [$ts=network_time(), $uid=c$uid,
         $orig_h=c$id$orig_h, $orig_p=c$id$orig_p,
         $resp_h=c$id$resp_h, $resp_p=c$id$resp_p,
         $client=client_id, $action="connect", $topic=proto,
         $qos=version, $len=keepalive]);
}

event mqtt_connack(c: connection, retcode: count) {
    Log::write("mqtt",
        [$ts=network_time(), $uid=c$uid,
         $orig_h=c$id$orig_h, $orig_p=c$id$orig_p,
         $resp_h=c$id$resp_h, $resp_p=c$id$resp_p,
         $client=mqtt_clients[c$uid], $action="connack", $topic="",
         $qos=0, $len=retcode]);
}

event mqtt_publish(c: connection, topic: string, qos: count, len: count) {
    Log::write("mqtt",
        [$ts=network_time(), $uid=c$uid,
         $orig_h=c$id$orig_h, $orig_p=c$id$orig_p,
         $resp_h=c$id$resp_h, $resp_p=c$id$resp_p,
         $client=mqtt_clients[c$uid], $action="publish", $topic=topic,
         $qos=qos, $len=len]);
}

event mqtt_subscribe(c: connection, msgid: count, topics: vector of string) {
    mqtt_subs[fmt("%s-%d", c$uid, msgid)] = join(topics, ",");
    Log::write("mqtt",
        [$ts=network_time(), $uid=c$uid,
         $orig_h=c$id$orig_h, $orig_p=c$id$orig_p,
         $resp_h=c$id$resp_h, $resp_p=c$id$resp_p,
         $client=mqtt_clients[c$uid], $action="subscribe",
         $topic=join(topics, ","), $qos=0, $len=|topics|]);
}

event mqtt_suback(c: connection, msgid: count) {
    local key = fmt("%s-%d", c$uid, msgid);
    local topics = "";
    if (key in mqtt_subs) {
        topics = mqtt_subs[key];
        delete mqtt_subs[key];
    }
    Log::write("mqtt",
        [$ts=network_time(), $uid=c$uid,
         $orig_h=c$id$orig_h, $orig_p=c$id$orig_p,
         $resp_h=c$id$resp_h, $resp_p=c$id$resp_p,
         $client=mqtt_clients[c$uid], $action="suback", $topic=topics,
         $qos=0, $len=msgid]);
}

event mqtt_disconnect(c: connection) {
    Log::write("mqtt",
        [$ts=network_time(), $uid=c$uid,
         $orig_h=c$id$orig_h, $orig_p=c$id$orig_p,
         $resp_h=c$id$resp_h, $resp_p=c$id$resp_p,
         $client=mqtt_clients[c$uid], $action="disconnect", $topic="",
         $qos=0, $len=0]);
}

event connection_state_remove(c: connection) {
    if (c$uid in mqtt_clients)
        delete mqtt_clients[c$uid];
}
|}

(* The FTP analysis: commands correlate with replies FIFO per control
   connection (like http.log's request/reply pairing); ftp_data marks an
   announced PORT/PASV data channel. *)
let ftp = prelude ^ {|
type FtpCmd: record {
    cmd: string;
    arg: string;
    ts: time;
};

global ftp_pending: table[string] of vector of FtpCmd;

event ftp_request(c: connection, cmd: string, arg: string) {
    if (c$uid !in ftp_pending)
        ftp_pending[c$uid] = vector();
    push(ftp_pending[c$uid], [$cmd=cmd, $arg=arg, $ts=network_time()]);
}

event ftp_reply(c: connection, code: count, msg: string) {
    local cmd = "";
    local arg = "";
    if (c$uid in ftp_pending && |ftp_pending[c$uid]| > 0) {
        local r = shift(ftp_pending[c$uid]);
        cmd = r$cmd;
        arg = r$arg;
    }
    Log::write("ftp",
        [$ts=network_time(), $uid=c$uid,
         $orig_h=c$id$orig_h, $orig_p=c$id$orig_p,
         $resp_h=c$id$resp_h, $resp_p=c$id$resp_p,
         $cmd=cmd, $arg=arg, $code=code, $msg=msg]);
}

event ftp_data(c: connection, host: addr, p: port) {
    Log::write("ftp",
        [$ts=network_time(), $uid=c$uid,
         $orig_h=c$id$orig_h, $orig_p=c$id$orig_p,
         $resp_h=c$id$resp_h, $resp_p=c$id$resp_p,
         $cmd="DATA", $arg=fmt("%s:%s", host, p), $code=0, $msg=""]);
}

event connection_state_remove(c: connection) {
    if (c$uid in ftp_pending)
        delete ftp_pending[c$uid];
}
|}

(* The scan detector sketched in §7: per-source connection counting, a
   natural fit for scoped scheduling. *)
let scan = prelude ^ {|
global attempts: table[addr] of count &default=0;
global scanners: set[addr];

event connection_established(c: connection) {
    attempts[c$id$orig_h] = attempts[c$id$orig_h] + 1;
    if (attempts[c$id$orig_h] == 20)
        add scanners[c$id$orig_h];
}

event bro_done() {
    for (s in scanners)
        print fmt("scanner: %s", s);
}
|}

(* The §6.5 baseline benchmark. *)
let fib = {|
function fib(n: count): count {
    if (n < 2)
        return n;
    return fib(n - 1) + fib(n - 2);
}
|}

(* ---- Log stream definitions -------------------------------------------------- *)

let http_columns =
  [ "ts"; "uid"; "orig_h"; "orig_p"; "resp_h"; "resp_p"; "method"; "host";
    "uri"; "version"; "status_code"; "reason"; "mime_type"; "body_len" ]

let files_columns =
  [ "ts"; "uid"; "tx_host"; "rx_host"; "mime_type"; "total_bytes"; "sha1" ]

let dns_columns =
  [ "ts"; "uid"; "orig_h"; "orig_p"; "resp_h"; "resp_p"; "query"; "qtype_name";
    "rcode"; "answers"; "ttls" ]

let mqtt_columns =
  [ "ts"; "uid"; "orig_h"; "orig_p"; "resp_h"; "resp_p"; "client"; "action";
    "topic"; "qos"; "len" ]

let ftp_columns =
  [ "ts"; "uid"; "orig_h"; "orig_p"; "resp_h"; "resp_p"; "cmd"; "arg"; "code";
    "msg" ]

(** Create the standard log streams on a logger. *)
let setup_logs logger =
  Bro_log.create_stream logger "http" http_columns;
  Bro_log.create_stream logger "files" files_columns;
  Bro_log.create_stream logger "dns" dns_columns;
  Bro_log.create_stream logger "mqtt" mqtt_columns;
  Bro_log.create_stream logger "ftp" ftp_columns

let parse_track () = Bro_parse.parse track
let parse_http () = Bro_parse.parse http
let parse_dns () = Bro_parse.parse dns
let parse_mqtt () = Bro_parse.parse mqtt
let parse_ftp () = Bro_parse.parse ftp
let parse_scan () = Bro_parse.parse scan
let parse_fib () = Bro_parse.parse fib

(** The combined default-script set used in the evaluation runs. *)
let parse_all () = Bro_parse.parse (http ^ dns ^ mqtt ^ ftp ^ scan)
