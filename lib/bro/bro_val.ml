(** Runtime values of the Mini-Bro interpreter — the Val hierarchy of §5
    "Bro Interface" — plus the bidirectional conversion to HILTI values
    that the compiled-script engine needs.  Those conversions are exactly
    the "HILTI-to-Bro glue code" whose cost Figures 9/10 report, so they
    run under a dedicated profiler. *)

open Hilti_types

type t =
  | Vbool of bool
  | Vcount of int64
  | Vint of int64
  | Vdouble of float
  | Vstring of string
  | Vaddr of Addr.t
  | Vport of Port.t
  | Vsubnet of Network.t
  | Vtime of Time_ns.t
  | Vinterval of Interval_ns.t
  | Vpattern of string * Hilti_rt.Regexp.t
  | Vset of (string, t) Hashtbl.t          (** canonical key -> key value *)
  | Vtable of table
  | Vvector of t Hilti_vm.Deque.t
  | Vrecord of record
  | Vvoid

and table = {
  entries : (string, t * t) Hashtbl.t;  (** canonical key -> (key, value) *)
  mutable default : t option;
}

and record = { rtype : string; mutable rfields : (string * t ref) array }
(** Record fields live in a flat insertion-ordered array: scripts declare a
    handful of fields per record, so a linear scan beats a hash table and —
    more importantly on the per-connection fast path — construction is one
    small array instead of a bucket table.  All renderings sort by field
    name, so the order never leaks. *)

exception Bro_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Bro_error s)) fmt

(** The slot holding field [name], if present. *)
let record_find r name =
  let fields = r.rfields in
  let n = Array.length fields in
  let rec go i =
    if i >= n then None
    else
      let k, v = Array.unsafe_get fields i in
      if String.equal k name then Some v else go (i + 1)
  in
  go 0

(* ---- Canonical keys ----------------------------------------------------------- *)

let rec key_string = function
  | Vbool b -> if b then "T" else "F"
  | Vcount c -> "c" ^ Int64.to_string c
  | Vint i -> "i" ^ Int64.to_string i
  | Vdouble d -> "d" ^ string_of_float d
  | Vstring s -> "s" ^ s
  | Vaddr a -> "a" ^ Addr.to_string a
  | Vport p -> "p" ^ Port.to_string p
  | Vsubnet n -> "n" ^ Network.to_string n
  | Vtime t -> "t" ^ Int64.to_string (Time_ns.to_ns t)
  | Vinterval i -> "v" ^ Int64.to_string (Interval_ns.to_ns i)
  | Vrecord r ->
      (* records as keys: field-sorted canonical form *)
      let fields =
        Array.fold_left (fun acc (k, v) -> (k, key_string !v) :: acc) [] r.rfields
      in
      let fields = List.sort compare fields in
      "r{" ^ String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) fields) ^ "}"
  | v -> error "value not usable as key: %s" (to_debug v)

and to_debug = function
  | Vbool _ -> "bool"
  | Vcount _ -> "count"
  | Vint _ -> "int"
  | Vdouble _ -> "double"
  | Vstring _ -> "string"
  | Vaddr _ -> "addr"
  | Vport _ -> "port"
  | Vsubnet _ -> "subnet"
  | Vtime _ -> "time"
  | Vinterval _ -> "interval"
  | Vpattern _ -> "pattern"
  | Vset _ -> "set"
  | Vtable _ -> "table"
  | Vvector _ -> "vector"
  | Vrecord r -> "record " ^ r.rtype
  | Vvoid -> "void"

(* Composite keys (table[a, b]) are rendered as tuples. *)
let keys_string vs = String.concat "\x00" (List.map key_string vs)

(* ---- Rendering (print and log output, Bro formatting) -------------------------- *)

let rec to_string = function
  | Vbool b -> if b then "T" else "F"
  | Vcount c -> Int64.to_string c
  | Vint i -> Int64.to_string i
  | Vdouble d -> Printf.sprintf "%g" d
  | Vstring s -> s
  | Vaddr a -> Addr.to_string a
  | Vport p -> Port.to_string p
  | Vsubnet n -> Network.to_string n
  | Vtime t -> Time_ns.to_string t
  | Vinterval i -> Interval_ns.to_string i
  | Vpattern (src, _) -> "/" ^ src ^ "/"
  | Vset s ->
      let elems = Hashtbl.fold (fun _ v acc -> to_string v :: acc) s [] in
      "{" ^ String.concat "," (List.sort compare elems) ^ "}"
  | Vtable t ->
      let elems =
        Hashtbl.fold (fun _ (k, v) acc -> (to_string k ^ "->" ^ to_string v) :: acc)
          t.entries []
      in
      "{" ^ String.concat "," (List.sort compare elems) ^ "}"
  | Vvector v ->
      "[" ^ String.concat "," (List.map to_string (Hilti_vm.Deque.to_list v)) ^ "]"
  | Vrecord r ->
      let fields =
        Array.fold_left
          (fun acc (k, v) -> (k ^ "=" ^ to_string !v) :: acc)
          [] r.rfields
      in
      "[" ^ String.concat "," (List.sort compare fields) ^ "]"
  | Vvoid -> "<void>"

let rec equal a b =
  match (a, b) with
  | Vbool x, Vbool y -> x = y
  | Vcount x, Vcount y | Vint x, Vint y -> Int64.equal x y
  | (Vcount x | Vint x), (Vcount y | Vint y) -> Int64.equal x y
  | Vdouble x, Vdouble y -> x = y
  | Vstring x, Vstring y -> String.equal x y
  | Vaddr x, Vaddr y -> Addr.equal x y
  | Vport x, Vport y -> Port.equal x y
  | Vsubnet x, Vsubnet y -> Network.equal x y
  | Vtime x, Vtime y -> Time_ns.equal x y
  | Vinterval x, Vinterval y -> Interval_ns.equal x y
  | Vrecord x, Vrecord y ->
      x.rtype = y.rtype
      && Array.length x.rfields = Array.length y.rfields
      && Array.for_all
           (fun (k, v) ->
             match record_find y k with
             | Some v' -> equal !v !v'
             | None -> false)
           x.rfields
  | _ -> false

let rec deep_copy = function
  | Vset s ->
      let s' = Hashtbl.copy s in
      Vset s'
  | Vtable t ->
      Vtable { entries = Hashtbl.copy t.entries; default = t.default }
  | Vvector v -> Vvector (Hilti_vm.Deque.of_list (List.map deep_copy (Hilti_vm.Deque.to_list v)))
  | Vrecord r ->
      Vrecord
        { r with
          rfields = Array.map (fun (k, v) -> (k, ref (deep_copy !v))) r.rfields
        }
  | v -> v

(* ---- Record helpers --------------------------------------------------------------- *)

(* Field names are expected distinct (they come from record declarations
   and literal constructors). *)
let new_record rtype fields =
  Vrecord
    { rtype; rfields = Array.of_list (List.map (fun (n, v) -> (n, ref v)) fields) }

let record_field r name =
  match record_find r name with
  | Some v -> v
  | None ->
      let slot = ref Vvoid in
      r.rfields <- Array.append r.rfields [| (name, slot) |];
      slot

(* ---- HILTI conversion: the Bro<->HILTI glue (§5, §6.4) ----------------------------- *)

let glue_profiler = "bro/glue"

(** Convert a Bro value to its HILTI representation.  Bro strings become
    HILTI bytes (as in the real plugin, where script strings carry raw
    payload data). *)
let rec to_hilti (v : t) : Hilti_vm.Value.t =
  Hilti_rt.Profiler.time_exclusive glue_profiler (fun () -> to_hilti_raw v)

and to_hilti_raw (v : t) : Hilti_vm.Value.t =
  let module V = Hilti_vm.Value in
  match v with
  | Vbool b -> V.Bool b
  | Vcount c | Vint c -> V.Int c
  | Vdouble d -> V.Double d
  | Vstring s ->
      let b = Hbytes.of_string s in
      Hbytes.freeze b;
      V.Bytes b
  | Vaddr a -> V.Addr a
  | Vport p -> V.Port p
  | Vsubnet n -> V.Net n
  | Vtime t -> V.Time t
  | Vinterval i -> V.Interval i
  | Vpattern (_, re) -> V.Regexp re
  | Vset s ->
      let out = Hilti_rt.Exp_map.create () in
      Hashtbl.iter
        (fun _ elem ->
          let h = to_hilti_raw elem in
          Hilti_rt.Exp_map.insert out (V.key_string h) h)
        s;
      V.Set out
  | Vtable t ->
      let out = Hilti_rt.Exp_map.create () in
      Hashtbl.iter
        (fun _ (k, value) ->
          let hk = to_hilti_raw k in
          Hilti_rt.Exp_map.insert out (V.key_string hk) (hk, to_hilti_raw value))
        t.entries;
      (match t.default with
      | Some d ->
          let hd = to_hilti_raw d in
          Hilti_rt.Exp_map.set_default out (fun _ ->
              (V.Null, Hilti_vm.Value.deep_copy hd))
      | None -> ());
      V.Map out
  | Vvector dv ->
      let d = Hilti_vm.Deque.create () in
      List.iter (fun x -> Hilti_vm.Deque.push_back d (to_hilti_raw x))
        (Hilti_vm.Deque.to_list dv);
      V.List d
  | Vrecord r ->
      let names = Array.fold_left (fun acc (k, _) -> k :: acc) [] r.rfields in
      let names = List.sort compare names in
      let s = V.new_struct r.rtype names in
      List.iter
        (fun n ->
          match record_find r n with
          | Some { contents = Vvoid } | None -> ()
          | Some v -> V.struct_field s n := Some (to_hilti_raw !v))
        names;
      V.Struct s
  | Vvoid -> V.Null

(** Convert a HILTI value back to a Bro value (for event arguments coming
    out of BinPAC++ parsers and for reading compiled-script state). *)
let rec of_hilti (v : Hilti_vm.Value.t) : t =
  Hilti_rt.Profiler.time_exclusive glue_profiler (fun () -> of_hilti_raw v)

and of_hilti_raw (v : Hilti_vm.Value.t) : t =
  let module V = Hilti_vm.Value in
  match v with
  | V.Bool b -> Vbool b
  | V.Int i -> Vcount i
  | V.Double d -> Vdouble d
  | V.String s -> Vstring s
  | V.Bytes b -> Vstring (Hbytes.to_string b)
  | V.Addr a -> Vaddr a
  | V.Port p -> Vport p
  | V.Net n -> Vsubnet n
  | V.Time t -> Vtime t
  | V.Interval i -> Vinterval i
  | V.Regexp re ->
      Vpattern (String.concat "|" (Hilti_rt.Regexp.patterns re), re)
  | V.Set s ->
      let out = Hashtbl.create 16 in
      Hilti_rt.Exp_map.iter
        (fun _ elem ->
          let b = of_hilti_raw elem in
          Hashtbl.replace out (key_string b) b)
        s;
      Vset out
  | V.Map m ->
      let out = Hashtbl.create 16 in
      Hilti_rt.Exp_map.iter
        (fun _ (k, value) ->
          let bk = of_hilti_raw k in
          Hashtbl.replace out (key_string bk) (bk, of_hilti_raw value))
        m;
      Vtable { entries = out; default = None }
  | V.List d -> Vvector (Hilti_vm.Deque.of_list (List.map of_hilti_raw (Hilti_vm.Deque.to_list d)))
  | V.Tuple vs ->
      Vvector (Hilti_vm.Deque.of_list (List.map of_hilti_raw (Array.to_list vs)))
  | V.Struct s ->
      let fields = ref [] in
      Array.iter
        (fun (n, slot) ->
          match !slot with
          | Some v -> fields := (n, ref (of_hilti_raw v)) :: !fields
          | None -> ())
        s.V.sfields;
      Vrecord { rtype = s.V.sname; rfields = Array.of_list (List.rev !fields) }
  | V.Null -> Vvoid
  | other -> error "cannot convert HILTI value %s" (V.to_string other)
