(** The standard Mini-Bro script interpreter — the baseline engine that
    §6.5 compares the compiled-to-HILTI scripts against.  A classic
    tree-walking evaluator over {!Bro_val} values with Bro's built-in
    functions and the logging framework attached. *)

open Bro_ast
open Bro_val

type handler = (string * btype) list * stmt list

type t = {
  script : script;
  globals : (string, Bro_val.t ref) Hashtbl.t;
  functions : (string, handler) Hashtbl.t;
  handlers : (string, handler list) Hashtbl.t;
  records : (string, (string * btype) list) Hashtbl.t;
  logger : Bro_log.t;
  mutable print_sink : string -> unit;
  queue : (string * Bro_val.t list) Queue.t;
  mutable network_time : Hilti_types.Time_ns.t;
}

exception Return_exc of Bro_val.t

(* ---- Defaults ------------------------------------------------------------------ *)

let rec default_of_type t (ty : btype) : Bro_val.t =
  match ty with
  | T_bool -> Vbool false
  | T_count | T_int -> Vcount 0L
  | T_double -> Vdouble 0.0
  | T_string -> Vstring ""
  | T_addr -> Vaddr (Hilti_types.Addr.of_ipv4_octets 0 0 0 0)
  | T_port -> Vport (Hilti_types.Port.tcp 0)
  | T_subnet -> Vsubnet (Hilti_types.Network.make (Hilti_types.Addr.of_ipv4_octets 0 0 0 0) 0)
  | T_time -> Vtime Hilti_types.Time_ns.epoch
  | T_interval -> Vinterval Hilti_types.Interval_ns.zero
  | T_pattern -> Vpattern ("", Hilti_rt.Regexp.compile_one "")
  | T_set _ -> Vset (Hashtbl.create 16)
  | T_table _ -> Vtable { entries = Hashtbl.create 16; default = None }
  | T_vector _ -> Vvector (Hilti_vm.Deque.create ())
  | T_record name ->
      let fields =
        match Hashtbl.find_opt t.records name with
        | Some fs -> fs
        | None -> error "unknown record type %s" name
      in
      new_record name (List.map (fun (n, ft) -> (n, default_of_type t ft)) fields)
  | T_void | T_any -> Vvoid

(* ---- Loading ---------------------------------------------------------------------- *)

let load ?(logger = Bro_log.create ()) (script : script) : t =
  let t =
    {
      script;
      globals = Hashtbl.create 32;
      functions = Hashtbl.create 16;
      handlers = Hashtbl.create 16;
      records = Hashtbl.create 16;
      logger;
      print_sink = print_endline;
      queue = Queue.create ();
      network_time = Hilti_types.Time_ns.epoch;
    }
  in
  (* Records first so globals can default-construct them. *)
  List.iter
    (function D_record (n, fs) -> Hashtbl.replace t.records n fs | _ -> ())
    script;
  List.iter
    (function
      | D_function (n, params, _, body) -> Hashtbl.replace t.functions n (params, body)
      | D_event (n, params, body) ->
          let existing = Option.value ~default:[] (Hashtbl.find_opt t.handlers n) in
          Hashtbl.replace t.handlers n (existing @ [ (params, body) ])
      | _ -> ())
    script;
  t

(* ---- Expression evaluation ---------------------------------------------------------- *)

type env = (string, Bro_val.t ref) Hashtbl.t list  (* innermost first *)

let rec lookup t (env : env) name =
  match env with
  | scope :: rest -> (
      match Hashtbl.find_opt scope name with
      | Some slot -> slot
      | None -> lookup t rest name)
  | [] -> (
      match Hashtbl.find_opt t.globals name with
      | Some slot -> slot
      | None -> error "unknown identifier %s" name)

let as_num = function
  | Vcount c | Vint c -> `I c
  | Vdouble d -> `D d
  | Vtime ts -> `I (Hilti_types.Time_ns.to_ns ts)
  | Vinterval i -> `I (Hilti_types.Interval_ns.to_ns i)
  | v -> error "expected numeric value, got %s" (to_debug v)

let numeric_binop op a b =
  match (as_num a, as_num b) with
  | `I x, `I y -> (
      let wrap v =
        (* preserve time/interval kinds through arithmetic *)
        match (a, b) with
        | Vtime _, Vinterval _ | Vinterval _, Vtime _ -> Vtime (Hilti_types.Time_ns.of_ns v)
        | Vtime _, Vtime _ -> Vinterval (Hilti_types.Interval_ns.of_ns v)
        | Vinterval _, Vinterval _ -> Vinterval (Hilti_types.Interval_ns.of_ns v)
        | _ -> Vcount v
      in
      match op with
      | "+" -> wrap (Int64.add x y)
      | "-" -> wrap (Int64.sub x y)
      | "*" -> Vcount (Int64.mul x y)
      | "/" -> if y = 0L then error "division by zero" else Vcount (Int64.div x y)
      | "%" -> if y = 0L then error "modulo by zero" else Vcount (Int64.rem x y)
      | _ -> error "bad numeric op %s" op)
  | x, y -> (
      let fx = match x with `I v -> Int64.to_float v | `D d -> d in
      let fy = match y with `I v -> Int64.to_float v | `D d -> d in
      match op with
      | "+" -> Vdouble (fx +. fy)
      | "-" -> Vdouble (fx -. fy)
      | "*" -> Vdouble (fx *. fy)
      | "/" -> if fy = 0.0 then error "division by zero" else Vdouble (fx /. fy)
      | _ -> error "bad numeric op %s" op)

let compare_vals a b =
  match (a, b) with
  | Vstring x, Vstring y -> String.compare x y
  | Vtime x, Vtime y -> Hilti_types.Time_ns.compare x y
  | Vinterval x, Vinterval y -> Hilti_types.Interval_ns.compare x y
  | _ -> (
      match (as_num a, as_num b) with
      | `I x, `I y -> Int64.compare x y
      | x, y ->
          let fx = match x with `I v -> Int64.to_float v | `D d -> d in
          let fy = match y with `I v -> Int64.to_float v | `D d -> d in
          Float.compare fx fy)

(* fmt(): the %-directives Bro scripts lean on *)
let fmt_impl fmtstr args =
  let buf = Buffer.create (String.length fmtstr + 16) in
  let args = ref args in
  let nextv () =
    match !args with
    | [] -> error "fmt: not enough arguments"
    | a :: rest ->
        args := rest;
        a
  in
  let n = String.length fmtstr in
  let i = ref 0 in
  while !i < n do
    if fmtstr.[!i] = '%' && !i + 1 < n then begin
      (match fmtstr.[!i + 1] with
      | 's' -> Buffer.add_string buf (to_string (nextv ()))
      | 'd' -> (
          match as_num (nextv ()) with
          | `I v -> Buffer.add_string buf (Int64.to_string v)
          | `D d -> Buffer.add_string buf (string_of_int (int_of_float d)))
      | 'f' -> (
          match as_num (nextv ()) with
          | `I v -> Buffer.add_string buf (Printf.sprintf "%f" (Int64.to_float v))
          | `D d -> Buffer.add_string buf (Printf.sprintf "%f" d))
      | 'x' -> (
          match as_num (nextv ()) with
          | `I v -> Buffer.add_string buf (Printf.sprintf "%Lx" v)
          | `D _ -> error "fmt: %%x on double")
      | '%' -> Buffer.add_char buf '%'
      | c -> error "fmt: unsupported %%%c" c);
      i := !i + 2
    end
    else begin
      Buffer.add_char buf fmtstr.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let rec eval t (env : env) (e : expr) : Bro_val.t =
  match e with
  | E_bool b -> Vbool b
  | E_count c -> Vcount c
  | E_double d -> Vdouble d
  | E_string s -> Vstring s
  | E_pattern src -> Vpattern (src, Hilti_rt.Regexp.compile_one src)
  | E_addr a -> Vaddr (Hilti_types.Addr.of_string a)
  | E_subnet (a, l) -> Vsubnet (Hilti_types.Network.make (Hilti_types.Addr.of_string a) l)
  | E_port (n, proto) ->
      Vport (Hilti_types.Port.make n (Hilti_types.Port.proto_of_string proto))
  | E_interval secs -> Vinterval (Hilti_types.Interval_ns.of_float secs)
  | E_id name -> !(lookup t env name)
  | E_field (e, f) -> (
      match eval t env e with
      | Vrecord r -> (
          match record_find r f with
          | Some v when !v <> Vvoid -> !v
          | _ -> error "field %s not set" f)
      | v -> error "$%s on non-record %s" f (to_debug v))
  | E_index (e, keys) -> (
      let kv = List.map (eval t env) keys in
      match eval t env e with
      | Vtable tbl -> (
          let key = keys_string kv in
          match Hashtbl.find_opt tbl.entries key with
          | Some (_, v) -> v
          | None -> (
              match tbl.default with
              | Some d ->
                  let v = deep_copy d in
                  let kval =
                    match kv with [ k ] -> k | ks -> Vvector (Hilti_vm.Deque.of_list ks)
                  in
                  Hashtbl.replace tbl.entries key (kval, v);
                  v
              | None -> error "no such index"))
      | Vvector vec -> (
          match kv with
          | [ k ] -> (
              let i = match as_num k with `I v -> Int64.to_int v | `D d -> int_of_float d in
              match List.nth_opt (Hilti_vm.Deque.to_list vec) i with
              | Some v -> v
              | None -> error "vector index out of range")
          | _ -> error "vector index arity")
      | v -> error "indexing non-container %s" (to_debug v))
  | E_in (k, c) -> (
      let kv = eval t env k in
      match eval t env c with
      | Vset s -> Vbool (Hashtbl.mem s (key_string kv))
      | Vtable tbl -> Vbool (Hashtbl.mem tbl.entries (key_string kv))
      | Vstring hay -> (
          match kv with
          | Vstring needle ->
              let nl = String.length needle and hl = String.length hay in
              let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
              Vbool (nl = 0 || go 0)
          | v -> error "'in' on string with %s" (to_debug v))
      | v -> error "'in' on %s" (to_debug v))
  | E_not_in (k, c) -> (
      match eval t env (E_in (k, c)) with
      | Vbool b -> Vbool (not b)
      | _ -> assert false)
  | E_match (pat, s) -> (
      match (eval t env pat, eval t env s) with
      | Vpattern (_, re), Vstring str -> Vbool (Hilti_rt.Regexp.contains re str)
      | _ -> error "bad pattern match")
  | E_binop ("==", a, b) -> Vbool (Bro_val.equal (eval t env a) (eval t env b))
  | E_binop ("!=", a, b) -> Vbool (not (Bro_val.equal (eval t env a) (eval t env b)))
  | E_binop ("&&", a, b) -> (
      match eval t env a with
      | Vbool false -> Vbool false
      | Vbool true -> eval t env b
      | v -> error "&& on %s" (to_debug v))
  | E_binop ("||", a, b) -> (
      match eval t env a with
      | Vbool true -> Vbool true
      | Vbool false -> eval t env b
      | v -> error "|| on %s" (to_debug v))
  | E_binop (("<" | "<=" | ">" | ">=") as op, a, b) ->
      let c = compare_vals (eval t env a) (eval t env b) in
      Vbool
        (match op with
        | "<" -> c < 0
        | "<=" -> c <= 0
        | ">" -> c > 0
        | _ -> c >= 0)
  | E_binop ("+", a, b) -> (
      match (eval t env a, eval t env b) with
      | Vstring x, Vstring y -> Vstring (x ^ y)
      | x, y -> numeric_binop "+" x y)
  | E_binop (op, a, b) -> numeric_binop op (eval t env a) (eval t env b)
  | E_not e -> (
      match eval t env e with
      | Vbool b -> Vbool (not b)
      | v -> error "! on %s" (to_debug v))
  | E_neg e -> (
      match eval t env e with
      | Vcount c -> Vint (Int64.neg c)
      | Vint c -> Vint (Int64.neg c)
      | Vdouble d -> Vdouble (-.d)
      | v -> error "unary - on %s" (to_debug v))
  | E_size e -> (
      match eval t env e with
      | Vstring s -> Vcount (Int64.of_int (String.length s))
      | Vset s -> Vcount (Int64.of_int (Hashtbl.length s))
      | Vtable tbl -> Vcount (Int64.of_int (Hashtbl.length tbl.entries))
      | Vvector v -> Vcount (Int64.of_int (Hilti_vm.Deque.size v))
      | v -> error "|..| on %s" (to_debug v))
  | E_record_ctor fields ->
      new_record "<anon>" (List.map (fun (n, e) -> (n, eval t env e)) fields)
  | E_vector_ctor es ->
      Vvector (Hilti_vm.Deque.of_list (List.map (eval t env) es))
  | E_call (fn, args) -> call t env fn args

and call t env fn args : Bro_val.t =
  match fn with
  | "fmt" -> (
      match List.map (eval t env) args with
      | Vstring f :: rest -> Vstring (fmt_impl f rest)
      | _ -> error "fmt: first argument must be a string")
  | "cat" ->
      Vstring (String.concat "" (List.map (fun a -> to_string (eval t env a)) args))
  | "to_lower" | "lower" -> (
      match List.map (eval t env) args with
      | [ Vstring s ] -> Vstring (String.lowercase_ascii s)
      | _ -> error "to_lower: bad arguments")
  | "to_upper" -> (
      match List.map (eval t env) args with
      | [ Vstring s ] -> Vstring (String.uppercase_ascii s)
      | _ -> error "to_upper: bad arguments")
  | "to_count" -> (
      match List.map (eval t env) args with
      | [ Vstring s ] -> (
          match Int64.of_string_opt (String.trim s) with
          | Some v -> Vcount v
          | None -> Vcount 0L)
      | _ -> error "to_count: bad arguments")
  | "sha1" -> (
      match List.map (eval t env) args with
      | [ Vstring s ] -> Vstring (Sha1.digest s)
      | _ -> error "sha1: bad arguments")
  | "push" -> (
      match List.map (eval t env) args with
      | [ Vvector v; x ] ->
          Hilti_vm.Deque.push_back v x;
          Vvoid
      | _ -> error "push: bad arguments")
  | "shift" -> (
      match List.map (eval t env) args with
      | [ Vvector v ] -> (
          match Hilti_vm.Deque.pop_front v with
          | Some x -> x
          | None -> error "shift: empty vector")
      | _ -> error "shift: bad arguments")
  | "join" -> (
      match List.map (eval t env) args with
      | [ Vvector v; Vstring sep ] ->
          Vstring
            (String.concat sep (List.map to_string (Hilti_vm.Deque.to_list v)))
      | _ -> error "join: bad arguments")
  | "network_time" -> Vtime t.network_time
  | "Log::write" -> (
      match args with
      | [ stream_e; rec_e ] -> (
          let stream = match eval t env stream_e with
            | Vstring s -> s
            | v -> error "Log::write stream: %s" (to_debug v)
          in
          match eval t env rec_e with
          | Vrecord r ->
              let fields =
                Array.fold_left
                  (fun acc (n, v) ->
                    if !v = Vvoid then acc else (n, to_string !v) :: acc)
                  [] r.rfields
              in
              Bro_log.write t.logger stream fields;
              Vvoid
          | v -> error "Log::write record: %s" (to_debug v))
      | _ -> error "Log::write arity")
  | _ -> (
      match Hashtbl.find_opt t.functions fn with
      | Some (params, body) ->
          let vals = List.map (eval t env) args in
          let scope = Hashtbl.create 8 in
          List.iter2 (fun (n, _) v -> Hashtbl.replace scope n (ref v)) params vals;
          (try
             exec_stmts t [ scope ] body;
             Vvoid
           with Return_exc v -> v)
      | None -> error "unknown function %s" fn)

(* ---- Statement execution --------------------------------------------------------- *)

and exec_stmts t env stmts = List.iter (exec_stmt t env) stmts

and exec_stmt t (env : env) (s : stmt) =
  match s with
  | S_expr e -> ignore (eval t env e)
  | S_local (name, ty, init) ->
      let v =
        match (init, ty) with
        | Some e, _ -> eval t env e
        | None, Some ty -> default_of_type t ty
        | None, None -> error "local %s needs a type or initializer" name
      in
      (match env with
      | scope :: _ -> Hashtbl.replace scope name (ref v)
      | [] -> error "no local scope")
  | S_assign (lhs, rhs) -> (
      let v = eval t env rhs in
      match lhs with
      | E_id name -> lookup t env name := v
      | E_field (e, f) -> (
          match eval t env e with
          | Vrecord r -> record_field r f := v
          | x -> error "$%s on %s" f (to_debug x))
      | E_index (e, keys) -> (
          let kv = List.map (eval t env) keys in
          match eval t env e with
          | Vtable tbl ->
              let kval =
                match kv with [ k ] -> k | ks -> Vvector (Hilti_vm.Deque.of_list ks)
              in
              Hashtbl.replace tbl.entries (keys_string kv) (kval, v)
          | x -> error "index-assign on %s" (to_debug x))
      | _ -> error "bad assignment target")
  | S_add e -> (
      match e with
      | E_index (se, keys) -> (
          let kv = List.map (eval t env) keys in
          match eval t env se with
          | Vset s ->
              let kval =
                match kv with [ k ] -> k | ks -> Vvector (Hilti_vm.Deque.of_list ks)
              in
              Hashtbl.replace s (keys_string kv) kval
          | x -> error "add on %s" (to_debug x))
      | _ -> error "add expects s[k]")
  | S_delete e -> (
      match e with
      | E_index (se, keys) -> (
          let kv = List.map (eval t env) keys in
          match eval t env se with
          | Vset s -> Hashtbl.remove s (keys_string kv)
          | Vtable tbl -> Hashtbl.remove tbl.entries (keys_string kv)
          | x -> error "delete on %s" (to_debug x))
      | _ -> error "delete expects t[k]")
  | S_print args ->
      let rendered = String.concat ", " (List.map (fun e -> to_string (eval t env e)) args) in
      t.print_sink rendered
  | S_if (c, thens, elses) -> (
      match eval t env c with
      | Vbool true -> exec_stmts t (Hashtbl.create 8 :: env) thens
      | Vbool false -> exec_stmts t (Hashtbl.create 8 :: env) elses
      | v -> error "if on %s" (to_debug v))
  | S_for (var, e, body) ->
      let items =
        match eval t env e with
        | Vset s -> Hashtbl.fold (fun _ v acc -> v :: acc) s []
        | Vtable tbl -> Hashtbl.fold (fun _ (k, _) acc -> k :: acc) tbl.entries []
        | Vvector v -> Hilti_vm.Deque.to_list v
        | v -> error "for over %s" (to_debug v)
      in
      (* Deterministic iteration order for reproducible output. *)
      let items = List.sort (fun a b -> compare (key_string a) (key_string b)) items in
      List.iter
        (fun item ->
          let scope = Hashtbl.create 4 in
          Hashtbl.replace scope var (ref item);
          exec_stmts t (scope :: env) body)
        items
  | S_return None -> raise (Return_exc Vvoid)
  | S_return (Some e) -> raise (Return_exc (eval t env e))
  | S_event (name, args) ->
      let vals = List.map (eval t env) args in
      Queue.add (name, vals) t.queue

(* ---- Engine interface --------------------------------------------------------------- *)

(** Initialize globals (after records are known); runs initializers and
    attaches &default. *)
let init t =
  List.iter
    (function
      | D_global (name, ty, init, attrs) ->
          let v =
            match init with
            | Some e -> eval t [] e
            | None -> default_of_type t ty
          in
          (match (v, attrs) with
          | Vtable tbl, _ ->
              List.iter
                (function
                  | A_default d -> tbl.default <- Some (eval t [] d)
                  | A_create_expire _ | A_read_expire _ -> ())
                attrs
          | _ -> ());
          Hashtbl.replace t.globals name (ref v)
      | _ -> ())
    t.script

(** Run all handlers for [name], then drain any events they queued. *)
let rec dispatch t name (args : Bro_val.t list) =
  (match Hashtbl.find_opt t.handlers name with
  | Some handlers ->
      List.iter
        (fun (params, body) ->
          let scope = Hashtbl.create 8 in
          (try List.iter2 (fun (n, _) v -> Hashtbl.replace scope n (ref v)) params args
           with Invalid_argument _ -> error "event %s: arity mismatch" name);
          try exec_stmts t [ scope ] body with Return_exc _ -> ())
        handlers
  | None -> ());
  drain t

and drain t =
  while not (Queue.is_empty t.queue) do
    let name, args = Queue.take t.queue in
    dispatch t name args
  done

let set_network_time t ts = t.network_time <- ts

(** Call a script function with values (used by benchmarks, e.g. fib). *)
let call_value t name (args : Bro_val.t list) : Bro_val.t =
  match Hashtbl.find_opt t.functions name with
  | Some (params, body) ->
      let scope = Hashtbl.create 8 in
      List.iter2 (fun (n, _) v -> Hashtbl.replace scope n (ref v)) params args;
      (try
         exec_stmts t [ scope ] body;
         Vvoid
       with Return_exc v -> v)
  | None -> error "unknown function %s" name
