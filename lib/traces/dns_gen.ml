(** Synthetic DNS traffic (the stand-in for the paper's campus DNS trace,
    §6.1): UDP port-53 request/response transactions with a realistic
    query-type mix, multi-record answers, CNAME chains, TXT records with
    multiple character-strings (the Table 2 disagreement case), name
    compression pointers, NXDOMAIN errors, and occasional non-DNS traffic
    on port 53 (which Bro's parser aborts on more eagerly than BinPAC++'s,
    per §6.4). *)

open Hilti_types
open Hilti_net

type config = {
  transactions : int;
  seed : int;
  start_ts : Time_ns.t;
  clients : int;
  resolvers : int;
  crud_prob : float;  (** probability of a non-DNS datagram on port 53 *)
}

let default =
  {
    transactions = 2000;
    seed = 0xd45;
    start_ts = Time_ns.of_secs 1_400_050_000;
    clients = 100;
    resolvers = 4;
    crud_prob = 0.005;
  }

(* ---- DNS wire encoding ------------------------------------------------------ *)

let qtype_a = 1
let qtype_ns = 2
let qtype_cname = 5
let qtype_ptr = 12
let qtype_mx = 15
let qtype_txt = 16
let qtype_aaaa = 28

let qtype_name = function
  | 1 -> "A"
  | 2 -> "NS"
  | 5 -> "CNAME"
  | 6 -> "SOA"
  | 12 -> "PTR"
  | 15 -> "MX"
  | 16 -> "TXT"
  | 28 -> "AAAA"
  | t -> Printf.sprintf "TYPE%d" t

(** Encode a domain name, optionally compressing against already-emitted
    names: [offsets] maps a name suffix to its position in the message. *)
let encode_name buf offsets name =
  let labels = String.split_on_char '.' name in
  let rec go labels =
    match labels with
    | [] -> Buffer.add_char buf '\x00'
    | _ :: rest as all ->
        let suffix = String.concat "." all in
        (match Hashtbl.find_opt offsets suffix with
        | Some off when off < 0x4000 ->
            (* Compression pointer: 0b11 prefix + offset. *)
            Buffer.add_char buf (Char.chr (0xc0 lor (off lsr 8)));
            Buffer.add_char buf (Char.chr (off land 0xff))
        | _ ->
            Hashtbl.replace offsets suffix (Buffer.length buf);
            let label = List.hd all in
            Buffer.add_char buf (Char.chr (String.length label));
            Buffer.add_string buf label;
            go rest)
  in
  go labels

type rr = { rname : string; rtype : int; ttl : int; rdata : [ `A of int * int * int * int | `Name of string | `Txt of string list | `Mx of int * string ] }

let encode_rr buf offsets rr =
  encode_name buf offsets rr.rname;
  let add_u16 v =
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
    Buffer.add_char buf (Char.chr (v land 0xff))
  in
  let add_u32 v =
    add_u16 ((v lsr 16) land 0xffff);
    add_u16 (v land 0xffff)
  in
  add_u16 rr.rtype;
  add_u16 1 (* class IN *);
  add_u32 rr.ttl;
  (* rdata with a placeholder length patched afterwards *)
  let len_pos = Buffer.length buf in
  add_u16 0;
  let start = Buffer.length buf in
  (match rr.rdata with
  | `A (a, b, c, d) ->
      Buffer.add_char buf (Char.chr a);
      Buffer.add_char buf (Char.chr b);
      Buffer.add_char buf (Char.chr c);
      Buffer.add_char buf (Char.chr d)
  | `Name n -> encode_name buf offsets n
  | `Txt strings ->
      List.iter
        (fun s ->
          Buffer.add_char buf (Char.chr (min 255 (String.length s)));
          Buffer.add_string buf (String.sub s 0 (min 255 (String.length s))))
        strings
  | `Mx (pref, n) ->
      add_u16 pref;
      encode_name buf offsets n);
  let rdlen = Buffer.length buf - start in
  (* Patch the length field in place. *)
  let s = Buffer.to_bytes buf in
  Bytes.set s len_pos (Char.chr ((rdlen lsr 8) land 0xff));
  Bytes.set s (len_pos + 1) (Char.chr (rdlen land 0xff));
  Buffer.clear buf;
  Buffer.add_bytes buf s

type message = {
  id : int;
  response : bool;
  opcode : int;
  rcode : int;
  rd : bool;
  ra : bool;
  qname : string;
  qtype : int;
  answers : rr list;
  authority : rr list;
}

let encode_message m =
  let buf = Buffer.create 256 in
  let offsets = Hashtbl.create 8 in
  let add_u16 v =
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
    Buffer.add_char buf (Char.chr (v land 0xff))
  in
  add_u16 m.id;
  let flags =
    (if m.response then 0x8000 else 0)
    lor (m.opcode lsl 11)
    lor (if m.rd then 0x0100 else 0)
    lor (if m.ra then 0x0080 else 0)
    lor (m.rcode land 0xf)
  in
  add_u16 flags;
  add_u16 1;  (* qdcount *)
  add_u16 (List.length m.answers);
  add_u16 (List.length m.authority);
  add_u16 0;  (* arcount *)
  encode_name buf offsets m.qname;
  add_u16 m.qtype;
  add_u16 1;  (* class IN *)
  List.iter (fun rr -> encode_rr buf offsets rr) m.answers;
  List.iter (fun rr -> encode_rr buf offsets rr) m.authority;
  Buffer.contents buf

(* ---- Transaction generation -------------------------------------------------- *)

let tlds = [| "com"; "net"; "org"; "edu"; "io" |]
let sld_pool = [| "example"; "campus"; "cdn"; "mail"; "web"; "files"; "api"; "img" |]

let gen_name rng =
  let sld =
    if Rng.chance rng 0.6 then Rng.choose rng sld_pool else Rng.label rng ~lo:4 ~hi:12
  in
  let host =
    if Rng.chance rng 0.5 then "www"
    else if Rng.chance rng 0.3 then Rng.label rng ~lo:2 ~hi:8
    else "host" ^ string_of_int (Rng.int rng 50)
  in
  Printf.sprintf "%s.%s.%s" host sld (Rng.choose rng tlds)

let qtype_mix =
  [ (55, qtype_a); (20, qtype_aaaa); (8, qtype_cname); (6, qtype_txt);
    (5, qtype_mx); (4, qtype_ptr); (2, qtype_ns) ]

type transaction = {
  query : message;
  reply : message;
  client : Addr.t;
  resolver : Addr.t;
  cport : int;
  ts_query : Time_ns.t;
  ts_reply : Time_ns.t;
}

let gen_answers rng qname qtype =
  let ip () = `A (93, 184, Rng.int rng 250, 1 + Rng.int rng 250) in
  match qtype with
  | t when t = qtype_a ->
      let n = 1 + Rng.int rng 3 in
      if Rng.chance rng 0.25 then
        (* CNAME chain then addresses. *)
        let target = gen_name rng in
        { rname = qname; rtype = qtype_cname; ttl = 300; rdata = `Name target }
        :: List.init n (fun _ ->
               { rname = target; rtype = qtype_a; ttl = 300; rdata = ip () })
      else
        List.init n (fun _ -> { rname = qname; rtype = qtype_a; ttl = 3600; rdata = ip () })
  | t when t = qtype_aaaa ->
      (* Keep it simple: answer with a CNAME (many AAAA lookups resolve so). *)
      [ { rname = qname; rtype = qtype_cname; ttl = 600; rdata = `Name (gen_name rng) } ]
  | t when t = qtype_cname ->
      [ { rname = qname; rtype = qtype_cname; ttl = 600; rdata = `Name (gen_name rng) } ]
  | t when t = qtype_txt ->
      (* Multi-string TXT records are rare but present: they are the
         known parser-disagreement case of Table 2 (§6.4). *)
      let n = if Rng.chance rng 0.08 then 2 else 1 in
      [ { rname = qname; rtype = qtype_txt; ttl = 300;
          rdata = `Txt (List.init n (fun i -> Printf.sprintf "v=spf%d include:%s" (i + 1) (gen_name rng))) } ]
  | t when t = qtype_mx ->
      List.init (1 + Rng.int rng 2) (fun i ->
          { rname = qname; rtype = qtype_mx; ttl = 3600;
            rdata = `Mx ((i + 1) * 10, "mx" ^ string_of_int i ^ "." ^ qname) })
  | t when t = qtype_ns ->
      List.init 2 (fun i ->
          { rname = qname; rtype = qtype_ns; ttl = 86400;
            rdata = `Name ("ns" ^ string_of_int i ^ "." ^ qname) })
  | t when t = qtype_ptr ->
      [ { rname = qname; rtype = qtype_ptr; ttl = 3600; rdata = `Name (gen_name rng) } ]
  | _ -> []

let gen_transaction rng cfg ~ts =
  let qname = gen_name rng in
  let qtype = Rng.weighted rng qtype_mix in
  let id = Rng.int rng 0x10000 in
  let nxdomain = Rng.chance rng 0.06 in
  let query =
    { id; response = false; opcode = 0; rcode = 0; rd = true; ra = false;
      qname; qtype; answers = []; authority = [] }
  in
  let reply =
    if nxdomain then
      { query with
        response = true;
        rcode = 3;
        ra = true;
        authority =
          [ { rname = "example.com"; rtype = 6 (* SOA-ish as name *); ttl = 300;
              rdata = `Name "ns1.example.com" } ] }
    else
      { query with response = true; ra = true; answers = gen_answers rng qname qtype }
  in
  let client = Addr.of_ipv4_octets 10 2 (Rng.int rng (cfg.clients / 250 + 1)) (1 + Rng.int rng 250) in
  let resolver = Addr.of_ipv4_octets 192 168 200 (1 + Rng.int rng cfg.resolvers) in
  let cport = 10000 + Rng.int rng 50000 in
  let latency = 200_000 + Rng.int rng 30_000_000 in
  {
    query;
    reply;
    client;
    resolver;
    cport;
    ts_query = ts;
    ts_reply = Time_ns.add ts (Int64.of_int latency);
  }

type trace = {
  records : Pcap.record list;
  transactions : transaction list;  (** ground truth *)
}

let datagram ~ts ~src ~dst ~src_port ~dst_port payload =
  let frame = Packet.encode_udp ~src ~dst ~src_port ~dst_port payload in
  { Pcap.ts; orig_len = String.length frame; data = frame }

(* Mean spacing between transaction starts; replies lag their query by up
   to ~30 ms, so the reorder window must span a few hundred packets. *)
let mean_gap_ns = 300_000

(** Transaction-by-transaction producer shared by [generate] and [iosrc]:
    each call yields one transaction's datagrams (query then reply, or a
    single crud datagram, with [None] ground truth). *)
let transaction_stream (cfg : config) :
    unit -> (Pcap.record list * transaction option) option =
  let rng = Rng.create cfg.seed in
  let arrival = ref cfg.start_ts in
  let i = ref 0 in
  fun () ->
    if !i >= cfg.transactions then None
    else begin
      incr i;
      arrival := Time_ns.add !arrival (Int64.of_int (Rng.int rng (2 * mean_gap_ns)));
      let ts = !arrival in
      if Rng.chance rng cfg.crud_prob then begin
        (* Junk on port 53 that is not DNS. *)
        let src = Addr.of_ipv4_octets 10 9 9 (1 + Rng.int rng 250) in
        let dst = Addr.of_ipv4_octets 192 168 200 1 in
        let junk = Rng.label rng ~lo:3 ~hi:11 in
        Some
          ( [ datagram ~ts ~src ~dst ~src_port:(20000 + Rng.int rng 1000)
                ~dst_port:53 junk ],
            None )
      end
      else
        let tx = gen_transaction rng cfg ~ts in
        Some
          ( [ datagram ~ts:tx.ts_query ~src:tx.client ~dst:tx.resolver
                ~src_port:tx.cport ~dst_port:53 (encode_message tx.query);
              datagram ~ts:tx.ts_reply ~src:tx.resolver ~dst:tx.client
                ~src_port:53 ~dst_port:tx.cport (encode_message tx.reply) ],
            Some tx )
    end

(** Synthesize datagrams on demand as an [Iosrc.t] with bounded memory. *)
let iosrc ?(window = 1024) (cfg : config) : Hilti_rt.Iosrc.t =
  let next = transaction_stream cfg in
  Gen_stream.iosrc ~kind:"synthetic-dns" ~window (fun () ->
      Option.map fst (next ()))

let generate (cfg : config) : trace =
  let next = transaction_stream cfg in
  let records = ref [] and txs = ref [] in
  let rec go () =
    match next () with
    | None -> ()
    | Some (recs, tx) ->
        records := List.rev_append recs !records;
        (match tx with Some t -> txs := t :: !txs | None -> ());
        go ()
  in
  go ();
  let by_ts (a : Pcap.record) (b : Pcap.record) = Time_ns.compare a.Pcap.ts b.Pcap.ts in
  { records = List.stable_sort by_ts (List.rev !records);
    transactions = List.rev !txs }
