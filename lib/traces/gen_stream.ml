(** Streaming assembly of generated traces.

    The list-based generators interleave concurrent sessions by collecting
    every packet and stable-sorting by timestamp — O(trace) memory.  The
    streaming constructors instead pull whole sessions ("bursts") on demand
    and merge them through a bounded reorder buffer: a min-heap keyed by
    (timestamp, insertion order) holding at most [window] packets.  With a
    window no smaller than the trace this reproduces the sorted list
    exactly; with a bounded window the output is sorted whenever no session
    spans more than [window] in-flight packets, and per-session packet
    order is always preserved (insertion order breaks timestamp ties the
    same way the stable sort does). *)

open Hilti_types
open Hilti_net

type entry = { e_ts : Time_ns.t; e_seq : int; e_rec : Pcap.record }

let before a b =
  let c = Time_ns.compare a.e_ts b.e_ts in
  if c <> 0 then c < 0 else a.e_seq < b.e_seq

(* A plain array-backed binary min-heap; grows to the window size. *)
type heap = { mutable items : entry array; mutable size : int }

let heap_create () = { items = [||]; size = 0 }

let heap_push h e =
  if h.size = Array.length h.items then begin
    let cap = max 16 (2 * Array.length h.items) in
    let items = Array.make cap e in
    Array.blit h.items 0 items 0 h.size;
    h.items <- items
  end;
  h.items.(h.size) <- e;
  h.size <- h.size + 1;
  let i = ref (h.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    if before h.items.(!i) h.items.(parent) then begin
      let tmp = h.items.(parent) in
      h.items.(parent) <- h.items.(!i);
      h.items.(!i) <- tmp;
      i := parent;
      true
    end
    else false
  do
    ()
  done

let heap_pop h =
  let top = h.items.(0) in
  h.size <- h.size - 1;
  h.items.(0) <- h.items.(h.size);
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < h.size && before h.items.(l) h.items.(!smallest) then smallest := l;
    if r < h.size && before h.items.(r) h.items.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = h.items.(!smallest) in
      h.items.(!smallest) <- h.items.(!i);
      h.items.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done;
  top

(** Build an [Iosrc.t] from a burst producer.  [next_burst ()] returns the
    next session's packets (in their own order) or [None] when the
    generator is exhausted.  At most [window] packets are buffered. *)
let iosrc ?(kind = "synthetic") ~window (next_burst : unit -> Pcap.record list option)
    : Hilti_rt.Iosrc.t =
  if window < 1 then invalid_arg "Gen_stream.iosrc: window must be >= 1";
  let heap = heap_create () in
  let seq = ref 0 in
  let exhausted = ref false in
  let push_burst recs =
    List.iter
      (fun (r : Pcap.record) ->
        heap_push heap { e_ts = r.Pcap.ts; e_seq = !seq; e_rec = r };
        incr seq)
      recs
  in
  Hilti_rt.Iosrc.create ~kind (fun () ->
      while (not !exhausted) && heap.size < window do
        match next_burst () with
        | Some recs -> push_burst recs
        | None -> exhausted := true
      done;
      if heap.size = 0 then None
      else
        let e = heap_pop heap in
        Some { Hilti_rt.Iosrc.ts = e.e_rec.Pcap.ts; data = e.e_rec.Pcap.data })

(** Merge already-sorted sources into one sorted stream, holding one
    look-ahead packet per source.  Timestamp ties go to the earlier source
    in the list — the same order a stable sort gives the concatenation. *)
let merge ?(kind = "synthetic-mix") (srcs : Hilti_rt.Iosrc.t list) : Hilti_rt.Iosrc.t =
  let srcs = Array.of_list srcs in
  let heads = Array.map Hilti_rt.Iosrc.read srcs in
  Hilti_rt.Iosrc.create ~kind (fun () ->
      let best = ref (-1) in
      Array.iteri
        (fun i head ->
          match (head, !best) with
          | None, _ -> ()
          | Some _, -1 -> best := i
          | Some p, b -> (
              match heads.(b) with
              | Some q ->
                  if Time_ns.compare p.Hilti_rt.Iosrc.ts q.Hilti_rt.Iosrc.ts < 0
                  then best := i
              | None -> assert false))
        heads;
      if !best < 0 then None
      else begin
        let p = heads.(!best) in
        heads.(!best) <- Hilti_rt.Iosrc.read srcs.(!best);
        p
      end)

(** Collect a whole streaming source back into a record list (testing). *)
let to_records (src : Hilti_rt.Iosrc.t) : Pcap.record list =
  List.rev
    (Hilti_rt.Iosrc.fold
       (fun acc (p : Hilti_rt.Iosrc.packet) ->
         { Pcap.ts = p.Hilti_rt.Iosrc.ts;
           orig_len = String.length p.Hilti_rt.Iosrc.data;
           data = p.Hilti_rt.Iosrc.data }
         :: acc)
       src [])
