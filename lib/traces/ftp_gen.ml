(** Synthetic FTP traffic: control sessions on port 21 (greeting, login,
    a few operations, QUIT) whose PASV replies and PORT commands announce
    separate data connections — which the generator then emits as their
    own TCP flows, giving the driver real cross-flow state to couple
    (§6.4).  Also the FTP fuzzing seed corpus. *)

open Hilti_types

type config = {
  sessions : int;
  seed : int;
  start_ts : Time_ns.t;
  clients : int;
  servers : int;
  max_ops : int;  (** transfers/operations per session after login *)
  mss : int;
  reorder_prob : float;
  crud_prob : float;
}

let default =
  {
    sessions = 80;
    seed = 0x5f7b;
    start_ts = Time_ns.of_secs 1_600_000_000;
    clients = 25;
    servers = 6;
    max_ops = 4;
    mss = 1400;
    reorder_prob = 0.03;
    crud_prob = 0.01;
  }

let files = [| "readme.txt"; "data.bin"; "logs.tar.gz"; "report.pdf"; "image.jpg" |]
let dirs = [| "/pub"; "/incoming"; "/home/user"; "/uploads" |]

let gen_file_body rng =
  let size = Rng.size rng ~lo:100 ~hi:6000 in
  String.init size (fun i ->
      if i mod 72 = 71 then '\n' else Char.chr (32 + ((i * 7) mod 95)))

(** Ground truth for one control session. *)
type op = {
  o_cmd : string;
  o_arg : string;
  o_code : int;  (** final (non-preliminary) reply code *)
  o_data_len : int;  (** bytes on an associated data connection, else 0 *)
}

type session_truth = {
  ep : Tcp_session.endpoints;
  ops : op list;
  data_conns : int;
}

type trace = {
  records : Hilti_net.Pcap.record list;
  sessions : session_truth list;
}

(* The addr,port sextet of PORT arguments and 227 replies. *)
let sextet addr port =
  let a = Addr.to_ipv4_int addr in
  Printf.sprintf "%d,%d,%d,%d,%d,%d" ((a lsr 24) land 0xff) ((a lsr 16) land 0xff)
    ((a lsr 8) land 0xff) (a land 0xff) ((port lsr 8) land 0xff) (port land 0xff)

(* One data connection carrying [body]; [active] = server connects out
   (PORT), passive = client connects in (PASV). *)
let gen_data_conn rng cfg ~ts_ref ~ctrl_ep ~active ~data_port body =
  let ep =
    if active then
      (* Server connects from port 20 to the client's announced port; on
         the wire the server is this flow's originator. *)
      {
        Tcp_session.client = ctrl_ep.Tcp_session.server;
        server = ctrl_ep.Tcp_session.client;
        cport = 20;
        sport = data_port;
      }
    else
      {
        Tcp_session.client = ctrl_ep.Tcp_session.client;
        server = ctrl_ep.Tcp_session.server;
        cport = 40000 + Rng.int rng 20000;
        sport = data_port;
      }
  in
  let s = Tcp_session.create rng ~mss:cfg.mss ~reorder_prob:cfg.reorder_prob ~ts_ref ~ep in
  Tcp_session.handshake s;
  (* File payload flows from the server end of the transfer: the flow
     originator under PORT (active), the responder under PASV. *)
  Tcp_session.send s ~from_client:active body;
  Tcp_session.teardown s;
  Tcp_session.packets s

let gen_session rng cfg ~ts_ref ~ep :
    Hilti_net.Pcap.record list * session_truth =
  let s = Tcp_session.create rng ~mss:cfg.mss ~reorder_prob:cfg.reorder_prob ~ts_ref ~ep in
  let extra = ref [] in
  let ops = ref [] in
  let data_conns = ref 0 in
  let cmd c a = Tcp_session.send s ~from_client:true (c ^ (if a = "" then "" else " " ^ a) ^ "\r\n") in
  let reply code text = Tcp_session.send s ~from_client:false (Printf.sprintf "%d %s\r\n" code text) in
  let op o_cmd o_arg o_code o_data_len = ops := { o_cmd; o_arg; o_code; o_data_len } :: !ops in
  Tcp_session.handshake s;
  (* Greeting is a multi-line reply now and then. *)
  if Rng.chance rng 0.3 then
    Tcp_session.send s ~from_client:false "220-Welcome to ftpd\r\n220-Unauthorized access prohibited\r\n220 Ready\r\n"
  else reply 220 "Service ready";
  let user = "u" ^ Rng.label rng ~lo:3 ~hi:8 in
  cmd "USER" user;
  reply 331 "Password required";
  op "USER" user 331 0;
  cmd "PASS" "secret";
  reply 230 "Login successful";
  op "PASS" "secret" 230 0;
  let nops = 1 + Rng.int rng cfg.max_ops in
  for _ = 1 to nops do
    match Rng.int rng 5 with
    | 0 ->
        let d = Rng.choose rng dirs in
        cmd "CWD" d;
        reply 250 "Directory changed";
        op "CWD" d 250 0
    | 1 ->
        cmd "TYPE" "I";
        reply 200 "Switching to binary mode";
        op "TYPE" "I" 200 0
    | 2 ->
        cmd "PWD" "";
        reply 257 "\"/pub\" is the current directory";
        op "PWD" "" 257 0
    | 3 ->
        (* Passive transfer: PASV -> 227 (addr,port) -> client data conn. *)
        let data_port = 1024 + Rng.int rng 50000 in
        let file = Rng.choose rng files in
        let body = gen_file_body rng in
        cmd "PASV" "";
        reply 227
          (Printf.sprintf "Entering Passive Mode (%s)"
             (sextet ep.Tcp_session.server data_port));
        op "PASV" "" 227 0;
        cmd "RETR" file;
        reply 150 "Opening data connection";
        extra :=
          gen_data_conn rng cfg ~ts_ref ~ctrl_ep:ep ~active:false ~data_port body
          :: !extra;
        incr data_conns;
        reply 226 "Transfer complete";
        op "RETR" file 226 (String.length body)
    | _ ->
        (* Active transfer: PORT h,p -> server connects from port 20. *)
        let data_port = 1024 + Rng.int rng 50000 in
        let file = Rng.choose rng files in
        let body = gen_file_body rng in
        let arg = sextet ep.Tcp_session.client data_port in
        cmd "PORT" arg;
        reply 200 "PORT command successful";
        op "PORT" arg 200 0;
        cmd "RETR" file;
        reply 150 "Opening data connection";
        extra :=
          gen_data_conn rng cfg ~ts_ref ~ctrl_ep:ep ~active:true ~data_port body
          :: !extra;
        incr data_conns;
        reply 226 "Transfer complete";
        op "RETR" file 226 (String.length body)
  done;
  cmd "QUIT" "";
  reply 221 "Goodbye";
  op "QUIT" "" 221 0;
  Tcp_session.teardown s;
  let packets =
    List.concat (Tcp_session.packets s :: List.rev !extra)
  in
  (* Data-connection packets interleave with the control channel's by
     capture timestamp; the shared ts_ref keeps both monotone. *)
  let by_ts (a : Hilti_net.Pcap.record) (b : Hilti_net.Pcap.record) =
    Time_ns.compare a.Hilti_net.Pcap.ts b.Hilti_net.Pcap.ts
  in
  let packets = List.stable_sort by_ts packets in
  (packets, { ep; ops = List.rev !ops; data_conns = !data_conns })

let gen_crud_session rng cfg ~ts_ref ~ep : Hilti_net.Pcap.record list =
  let s = Tcp_session.create rng ~mss:cfg.mss ~reorder_prob:cfg.reorder_prob ~ts_ref ~ep in
  Tcp_session.handshake s;
  Tcp_session.send s ~from_client:true ("\x16\x03\x01" ^ Rng.label rng ~lo:15 ~hi:80);
  Tcp_session.teardown s;
  Tcp_session.packets s

let client_addr i = Addr.of_ipv4_octets 10 3 (i / 250) (1 + (i mod 250))
let server_addr i = Addr.of_ipv4_octets 192 168 200 (1 + (i mod 250))

let mean_gap_ns = 2_000_000

let session_stream (cfg : config) :
    unit -> (Hilti_net.Pcap.record list * session_truth option) option =
  let rng = Rng.create cfg.seed in
  let arrival = ref cfg.start_ts in
  let i = ref 0 in
  fun () ->
    if !i >= cfg.sessions then None
    else begin
      let idx = !i in
      incr i;
      let ep =
        {
          Tcp_session.client = client_addr (Rng.int rng cfg.clients);
          server = server_addr (Rng.int rng cfg.servers);
          cport = 28000 + ((idx * 19) mod 30000);
          sport = 21;
        }
      in
      arrival := Time_ns.add !arrival (Int64.of_int (Rng.int rng (2 * mean_gap_ns)));
      let ts_ref = ref !arrival in
      if Rng.chance rng cfg.crud_prob then
        Some (gen_crud_session rng cfg ~ts_ref ~ep, None)
      else
        let pkts, truth = gen_session rng cfg ~ts_ref ~ep in
        Some (pkts, Some truth)
    end

let iosrc ?(window = 1024) (cfg : config) : Hilti_rt.Iosrc.t =
  let next = session_stream cfg in
  Gen_stream.iosrc ~kind:"synthetic-ftp" ~window (fun () ->
      Option.map fst (next ()))

let generate (cfg : config) : trace =
  let next = session_stream cfg in
  let records = ref [] and truths = ref [] in
  let rec go () =
    match next () with
    | None -> ()
    | Some (pkts, truth) ->
        records := List.rev_append pkts !records;
        (match truth with Some t -> truths := t :: !truths | None -> ());
        go ()
  in
  go ();
  let by_ts (a : Hilti_net.Pcap.record) (b : Hilti_net.Pcap.record) =
    Time_ns.compare a.Hilti_net.Pcap.ts b.Hilti_net.Pcap.ts
  in
  {
    records = List.stable_sort by_ts (List.rev !records);
    sessions = List.rev !truths;
  }
