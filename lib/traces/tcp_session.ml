(** Shared TCP-connection assembly for the synthetic protocol generators:
    handshake, MSS-chopped data flights with optional reordering, teardown.
    {!Http_gen} predates this module and keeps its own (behaviorally
    identical) copy so its seeded traces stay byte-stable; the MQTT and FTP
    generators build on this one. *)

open Hilti_types
open Hilti_net

type endpoints = {
  client : Addr.t;
  server : Addr.t;
  cport : int;
  sport : int;
}

(** One in-progress connection: tracks both directions' sequence numbers
    and accumulates packets in wire order. *)
type t = {
  rng : Rng.t;
  mss : int;
  reorder_prob : float;
  ep : endpoints;
  ts_ref : Time_ns.t ref;
  mutable cseq : int32;
  mutable sseq : int32;
  mutable packets : Pcap.record list;  (* reversed *)
}

let create rng ~mss ~reorder_prob ~ts_ref ~ep =
  let cseq = Int32.of_int (1000 + Rng.int rng 1_000_000) in
  let sseq = Int32.of_int (5000 + Rng.int rng 1_000_000) in
  { rng; mss; reorder_prob; ep; ts_ref; cseq; sseq; packets = [] }

let step t ival = t.ts_ref := Time_ns.add !(t.ts_ref) (Int64.of_int ival)

let bare t ~from_client ~seq ~ack ~flags =
  let ep = t.ep in
  let src, dst, sp, dp =
    if from_client then (ep.client, ep.server, ep.cport, ep.sport)
    else (ep.server, ep.client, ep.sport, ep.cport)
  in
  let frame =
    Packet.encode_tcp ~src ~dst ~src_port:sp ~dst_port:dp ~seq ~ack ~flags ""
  in
  t.packets <-
    { Pcap.ts = !(t.ts_ref); orig_len = String.length frame; data = frame }
    :: t.packets

let handshake t =
  step t 100_000;
  bare t ~from_client:true ~seq:t.cseq ~ack:0l ~flags:Tcp.flag_syn;
  step t 80_000;
  bare t ~from_client:false ~seq:t.sseq ~ack:(Int32.add t.cseq 1l)
    ~flags:(Tcp.flag_syn lor Tcp.flag_ack);
  step t 60_000;
  bare t ~from_client:true ~seq:(Int32.add t.cseq 1l)
    ~ack:(Int32.add t.sseq 1l) ~flags:Tcp.flag_ack;
  t.cseq <- Int32.add t.cseq 1l;
  t.sseq <- Int32.add t.sseq 1l

(** Send [data] in one direction, chopped at MSS; a flight is occasionally
    reordered (contents swapped, capture timestamps kept ascending) to
    exercise reassembly. *)
let send t ~from_client data =
  if data <> "" then begin
    let ep = t.ep in
    let src, dst, sp, dp =
      if from_client then (ep.client, ep.server, ep.cport, ep.sport)
      else (ep.server, ep.client, ep.sport, ep.cport)
    in
    let seq = if from_client then t.cseq else t.sseq in
    let ack = if from_client then t.sseq else t.cseq in
    let n = String.length data in
    let segs = ref [] in
    let off = ref 0 in
    while !off < n do
      let len = min t.mss (n - !off) in
      let frame =
        Packet.encode_tcp ~src ~dst ~src_port:sp ~dst_port:dp
          ~seq:(Int32.add seq (Int32.of_int !off))
          ~ack
          ~flags:(Tcp.flag_ack lor Tcp.flag_psh)
          (String.sub data !off len)
      in
      step t (50_000 + Rng.int t.rng 400_000);
      segs :=
        { Pcap.ts = !(t.ts_ref); orig_len = String.length frame; data = frame }
        :: !segs;
      off := !off + len
    done;
    let segs = List.rev !segs in
    let segs =
      if List.length segs > 1 && Rng.chance t.rng t.reorder_prob then
        match segs with
        | a :: b :: rest ->
            { b with Pcap.ts = a.Pcap.ts } :: { a with Pcap.ts = b.Pcap.ts } :: rest
        | _ -> segs
      else segs
    in
    t.packets <- List.rev_append segs t.packets;
    if from_client then t.cseq <- Int32.add t.cseq (Int32.of_int n)
    else t.sseq <- Int32.add t.sseq (Int32.of_int n)
  end

let teardown t =
  step t 120_000;
  bare t ~from_client:true ~seq:t.cseq ~ack:t.sseq
    ~flags:(Tcp.flag_fin lor Tcp.flag_ack);
  step t 60_000;
  bare t ~from_client:false ~seq:t.sseq ~ack:(Int32.add t.cseq 1l)
    ~flags:(Tcp.flag_fin lor Tcp.flag_ack);
  step t 40_000;
  bare t ~from_client:true ~seq:(Int32.add t.cseq 1l)
    ~ack:(Int32.add t.sseq 1l) ~flags:Tcp.flag_ack

(** The accumulated packets, in wire order. *)
let packets t = List.rev t.packets
