(** Mixed-protocol traces: interleave HTTP, DNS, and SSH sessions into a
    single timestamp-ordered capture, for drivers that must demultiplex by
    port (like real border traffic). *)

open Hilti_net

type config = {
  http : Http_gen.config option;
  dns : Dns_gen.config option;
  ssh : Ssh_gen.config option;
}

let default =
  {
    http = Some { Http_gen.default with Http_gen.sessions = 50 };
    dns = Some { Dns_gen.default with Dns_gen.transactions = 200 };
    ssh = Some { Ssh_gen.default with Ssh_gen.sessions = 10 };
  }

let generate (cfg : config) : Pcap.record list =
  let http =
    match cfg.http with
    | Some c -> (Http_gen.generate c).Http_gen.records
    | None -> []
  in
  let dns =
    match cfg.dns with
    | Some c -> (Dns_gen.generate c).Dns_gen.records
    | None -> []
  in
  let ssh =
    match cfg.ssh with
    | Some c -> (Ssh_gen.generate c).Ssh_gen.records
    | None -> []
  in
  List.stable_sort
    (fun (a : Pcap.record) b -> Hilti_types.Time_ns.compare a.Pcap.ts b.Pcap.ts)
    (http @ dns @ ssh)

(** Stream the same mix without materialising it: each protocol generator
    runs as its own bounded [Iosrc.t] and the three sorted streams merge
    on the fly.  Tie-break order (http, dns, ssh) matches [generate]. *)
let iosrc ?window (cfg : config) : Hilti_rt.Iosrc.t =
  let srcs =
    List.filter_map Fun.id
      [
        Option.map (fun c -> Http_gen.iosrc ?window c) cfg.http;
        Option.map (fun c -> Dns_gen.iosrc ?window c) cfg.dns;
        Option.map (fun c -> Ssh_gen.iosrc ?window c) cfg.ssh;
      ]
  in
  Gen_stream.merge ~kind:"synthetic-mix" srcs
