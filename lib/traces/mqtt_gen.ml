(** Synthetic MQTT 3.1.1 traffic: complete broker sessions — CONNECT /
    CONNACK, SUBSCRIBE / SUBACK, PUBLISH in both directions (QoS 0 and 1),
    PING, DISCONNECT — with multi-byte remaining-length headers exercised
    by large payloads, plus optional non-MQTT crud on the broker port.
    The packet stream doubles as the fuzzer's seed corpus. *)

open Hilti_types

type config = {
  sessions : int;
  seed : int;
  start_ts : Time_ns.t;
  clients : int;
  brokers : int;
  max_actions : int;  (** SUBSCRIBE/PUBLISH/PING rounds per session *)
  mss : int;
  reorder_prob : float;
  crud_prob : float;  (** probability a connection is not MQTT at all *)
}

let default =
  {
    sessions = 120;
    seed = 0x3a17;
    start_ts = Time_ns.of_secs 1_500_000_000;
    clients = 30;
    brokers = 4;
    max_actions = 6;
    mss = 1400;
    reorder_prob = 0.03;
    crud_prob = 0.01;
  }

(* ---- Wire encoding ---------------------------------------------------------- *)

(* Base-128 remaining length, minimal encoding (MQTT 2.2.3). *)
let varint n =
  let buf = Buffer.create 4 in
  let rec go n =
    let b = n land 0x7f in
    let n = n lsr 7 in
    if n = 0 then Buffer.add_char buf (Char.chr b)
    else begin
      Buffer.add_char buf (Char.chr (b lor 0x80));
      go n
    end
  in
  go n;
  Buffer.contents buf

let u16 n = Printf.sprintf "%c%c" (Char.chr ((n lsr 8) land 0xff)) (Char.chr (n land 0xff))

(* Length-prefixed string. *)
let mstr s = u16 (String.length s) ^ s

(** One control packet: fixed header (type/flags + remaining length) and
    variable header + payload. *)
let packet ~ptype ~flags body =
  Printf.sprintf "%c%s%s"
    (Char.chr (((ptype land 0xf) lsl 4) lor (flags land 0xf)))
    (varint (String.length body))
    body

let connect ~client_id ~keepalive =
  packet ~ptype:1 ~flags:0
    (mstr "MQTT" ^ "\x04\x02" ^ u16 keepalive ^ mstr client_id)

let connack ~retcode = packet ~ptype:2 ~flags:0 (Printf.sprintf "\x00%c" (Char.chr retcode))

let publish ~topic ~qos ~msgid payload =
  let body = mstr topic ^ (if qos > 0 then u16 msgid else "") ^ payload in
  packet ~ptype:3 ~flags:(qos lsl 1) body

let puback ~msgid = packet ~ptype:4 ~flags:0 (u16 msgid)

let subscribe ~msgid topics =
  let body =
    u16 msgid
    ^ String.concat ""
        (List.map (fun (t, q) -> mstr t ^ String.make 1 (Char.chr q)) topics)
  in
  packet ~ptype:8 ~flags:2 body

let suback ~msgid codes =
  packet ~ptype:9 ~flags:0
    (u16 msgid ^ String.concat "" (List.map (fun c -> String.make 1 (Char.chr c)) codes))

let pingreq = packet ~ptype:12 ~flags:0 ""
let pingresp = packet ~ptype:13 ~flags:0 ""
let disconnect = packet ~ptype:14 ~flags:0 ""

(* ---- Session material ------------------------------------------------------- *)

let topic_roots = [| "sensors"; "home"; "factory"; "telemetry"; "devices" |]
let topic_leaves = [| "temp"; "humidity"; "power"; "status"; "events"; "alerts" |]

let gen_topic rng =
  Printf.sprintf "%s/%s/%s"
    (Rng.choose rng topic_roots)
    (Rng.label rng ~lo:3 ~hi:8)
    (Rng.choose rng topic_leaves)

let gen_payload rng =
  (* Mostly small JSON-ish readings; occasionally big enough to need a
     multi-byte remaining-length varint. *)
  let size =
    if Rng.chance rng 0.15 then Rng.size rng ~lo:200 ~hi:4000
    else Rng.size rng ~lo:5 ~hi:90
  in
  String.init size (fun i -> Char.chr (32 + ((17 * i) mod 95)))

(** Ground truth for one session, as the analyzer should report it. *)
type action =
  | A_connect of { client_id : string; keepalive : int }
  | A_publish of { topic : string; qos : int; len : int; from_client : bool }
  | A_subscribe of { msgid : int; topics : (string * int) list }
  | A_ping
  | A_disconnect

type session_truth = {
  ep : Tcp_session.endpoints;
  actions : action list;
}

type trace = {
  records : Hilti_net.Pcap.record list;
  sessions : session_truth list;  (** ground truth, crud excluded *)
}

let gen_session rng cfg ~ts_ref ~ep : Hilti_net.Pcap.record list * session_truth =
  let s = Tcp_session.create rng ~mss:cfg.mss ~reorder_prob:cfg.reorder_prob ~ts_ref ~ep in
  Tcp_session.handshake s;
  let actions = ref [] in
  let act a = actions := a :: !actions in
  let client_id = "cli-" ^ Rng.label rng ~lo:4 ~hi:10 in
  let keepalive = 30 + Rng.int rng 270 in
  Tcp_session.send s ~from_client:true (connect ~client_id ~keepalive);
  act (A_connect { client_id; keepalive });
  Tcp_session.send s ~from_client:false (connack ~retcode:0);
  let msgid = ref (1 + Rng.int rng 1000) in
  let rounds = 1 + Rng.int rng cfg.max_actions in
  for _ = 1 to rounds do
    match Rng.int rng 4 with
    | 0 ->
        (* SUBSCRIBE / SUBACK *)
        let n = 1 + Rng.int rng 3 in
        let topics = List.init n (fun _ -> (gen_topic rng, Rng.int rng 2)) in
        incr msgid;
        Tcp_session.send s ~from_client:true (subscribe ~msgid:!msgid topics);
        act (A_subscribe { msgid = !msgid; topics });
        Tcp_session.send s ~from_client:false
          (suback ~msgid:!msgid (List.map snd topics))
    | 1 | 2 ->
        (* PUBLISH, client -> broker or broker -> subscriber *)
        let from_client = Rng.chance rng 0.7 in
        let topic = gen_topic rng in
        let qos = if Rng.chance rng 0.4 then 1 else 0 in
        let payload = gen_payload rng in
        incr msgid;
        Tcp_session.send s ~from_client (publish ~topic ~qos ~msgid:!msgid payload);
        act (A_publish { topic; qos; len = String.length payload; from_client });
        if qos > 0 then
          Tcp_session.send s ~from_client:(not from_client) (puback ~msgid:!msgid)
    | _ ->
        Tcp_session.send s ~from_client:true pingreq;
        act A_ping;
        Tcp_session.send s ~from_client:false pingresp
  done;
  Tcp_session.send s ~from_client:true disconnect;
  act A_disconnect;
  Tcp_session.teardown s;
  (Tcp_session.packets s, { ep; actions = List.rev !actions })

(* A connection on the broker port that is not MQTT. *)
let gen_crud_session rng cfg ~ts_ref ~ep : Hilti_net.Pcap.record list =
  let s = Tcp_session.create rng ~mss:cfg.mss ~reorder_prob:cfg.reorder_prob ~ts_ref ~ep in
  Tcp_session.handshake s;
  Tcp_session.send s ~from_client:true
    ("GET / HTTP/1.0\r\n\r\n" ^ Rng.label rng ~lo:10 ~hi:60);
  Tcp_session.teardown s;
  Tcp_session.packets s

let client_addr i = Addr.of_ipv4_octets 10 2 (i / 250) (1 + (i mod 250))
let broker_addr i = Addr.of_ipv4_octets 192 168 100 (1 + (i mod 250))

let mean_gap_ns = 1_500_000

let session_stream (cfg : config) :
    unit -> (Hilti_net.Pcap.record list * session_truth option) option =
  let rng = Rng.create cfg.seed in
  let arrival = ref cfg.start_ts in
  let i = ref 0 in
  fun () ->
    if !i >= cfg.sessions then None
    else begin
      let idx = !i in
      incr i;
      let ep =
        {
          Tcp_session.client = client_addr (Rng.int rng cfg.clients);
          server = broker_addr (Rng.int rng cfg.brokers);
          cport = 31000 + ((idx * 17) mod 30000);
          sport = 1883;
        }
      in
      arrival := Time_ns.add !arrival (Int64.of_int (Rng.int rng (2 * mean_gap_ns)));
      let ts_ref = ref !arrival in
      if Rng.chance rng cfg.crud_prob then
        Some (gen_crud_session rng cfg ~ts_ref ~ep, None)
      else
        let pkts, truth = gen_session rng cfg ~ts_ref ~ep in
        Some (pkts, Some truth)
    end

let iosrc ?(window = 512) (cfg : config) : Hilti_rt.Iosrc.t =
  let next = session_stream cfg in
  Gen_stream.iosrc ~kind:"synthetic-mqtt" ~window (fun () ->
      Option.map fst (next ()))

let generate (cfg : config) : trace =
  let next = session_stream cfg in
  let records = ref [] and truths = ref [] in
  let rec go () =
    match next () with
    | None -> ()
    | Some (pkts, truth) ->
        records := List.rev_append pkts !records;
        (match truth with Some t -> truths := t :: !truths | None -> ());
        go ()
  in
  go ();
  let by_ts (a : Hilti_net.Pcap.record) (b : Hilti_net.Pcap.record) =
    Time_ns.compare a.Hilti_net.Pcap.ts b.Hilti_net.Pcap.ts
  in
  {
    records = List.stable_sort by_ts (List.rev !records);
    sessions = List.rev !truths;
  }
