(** Synthetic SSH sessions (for the Fig. 7 workflow): TCP connections on
    port 22 exchanging version banners, optionally followed by opaque
    binary protocol data. *)

open Hilti_types
open Hilti_net

type config = {
  sessions : int;
  seed : int;
  start_ts : Time_ns.t;
}

let default = { sessions = 20; seed = 0x55b; start_ts = Time_ns.of_secs 1_400_100_000 }

let software =
  [| "OpenSSH_3.9p1"; "OpenSSH_3.8.1p1"; "OpenSSH_6.1"; "dropbear_2012.55" |]

let versions = [| "1.99"; "2.0" |]

type session = { client_banner : string; server_banner : string }

type trace = { records : Pcap.record list; sessions_meta : session list }

(** Session-by-session producer shared by [generate] and [iosrc].  The
    sessions share one monotone clock, so each burst starts after the
    previous one ended and the stream is sorted as generated. *)
let session_stream (cfg : config) : unit -> (Pcap.record list * session) option =
  let rng = Rng.create cfg.seed in
  let ts = ref cfg.start_ts in
  let step n = ts := Time_ns.add !ts (Int64.of_int n) in
  let i = ref 0 in
  fun () ->
    if !i >= cfg.sessions then None
    else begin
      let idx = !i in
      incr i;
      let client = Addr.of_ipv4_octets 10 4 0 (1 + (idx mod 250)) in
      let server = Addr.of_ipv4_octets 192 168 7 (1 + (idx mod 100)) in
      let cport = 40000 + idx in
      let banner who =
        Printf.sprintf "SSH-%s-%s\r\n" (Rng.choose rng versions)
          (Rng.choose rng software)
        |> fun b -> (b, who)
      in
      let cb, _ = banner `C and sb, _ = banner `S in
      let records = ref [] in
      let seg ~from_client ~seq ~flags data =
        let src, dst, sp, dp =
          if from_client then (client, server, cport, 22)
          else (server, client, 22, cport)
        in
        step (50_000 + Rng.int rng 200_000);
        let frame =
          Packet.encode_tcp ~src ~dst ~src_port:sp ~dst_port:dp ~seq ~ack:0l
            ~flags data
        in
        records :=
          { Pcap.ts = !ts; orig_len = String.length frame; data = frame }
          :: !records
      in
      seg ~from_client:true ~seq:100l ~flags:Tcp.flag_syn "";
      seg ~from_client:false ~seq:500l ~flags:(Tcp.flag_syn lor Tcp.flag_ack) "";
      seg ~from_client:true ~seq:101l ~flags:Tcp.flag_ack "";
      (* Server speaks first in SSH. *)
      seg ~from_client:false ~seq:501l ~flags:Tcp.flag_ack sb;
      seg ~from_client:true ~seq:101l ~flags:Tcp.flag_ack cb;
      seg ~from_client:true
        ~seq:(Int32.add 101l (Int32.of_int (String.length cb)))
        ~flags:(Tcp.flag_fin lor Tcp.flag_ack) "";
      seg ~from_client:false
        ~seq:(Int32.add 501l (Int32.of_int (String.length sb)))
        ~flags:(Tcp.flag_fin lor Tcp.flag_ack) "";
      Some
        ( List.rev !records,
          { client_banner = String.trim cb; server_banner = String.trim sb } )
    end

(** Synthesize sessions on demand as an [Iosrc.t] with bounded memory. *)
let iosrc ?(window = 16) (cfg : config) : Hilti_rt.Iosrc.t =
  let next = session_stream cfg in
  Gen_stream.iosrc ~kind:"synthetic-ssh" ~window (fun () ->
      Option.map fst (next ()))

let generate (cfg : config) : trace =
  let next = session_stream cfg in
  let records = ref [] and meta = ref [] in
  let rec go () =
    match next () with
    | None -> ()
    | Some (recs, m) ->
        records := List.rev_append recs !records;
        meta := m :: !meta;
        go ()
  in
  go ();
  { records = List.rev !records; sessions_meta = List.rev !meta }
