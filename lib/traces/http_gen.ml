(** Synthetic full-payload HTTP traffic (the stand-in for the paper's 30 GB
    UC Berkeley port-80 trace, §6.1).

    Generates complete TCP connections — handshake, one or more
    request/reply transactions, teardown — with realistic message variety:
    a method/status mix, identity and chunked bodies, several MIME types,
    "206 Partial Content" responses (the known source of parser
    disagreement in Table 2), keep-alive and close connections, and
    optional wire-level "crud": segment reordering and junk connections
    that are not HTTP at all. *)

open Hilti_types
open Hilti_net

type config = {
  sessions : int;            (** number of TCP connections *)
  seed : int;
  start_ts : Time_ns.t;
  clients : int;             (** distinct client addresses *)
  servers : int;             (** distinct server addresses *)
  max_requests : int;        (** per connection *)
  mss : int;
  reorder_prob : float;      (** probability a flight of segments is shuffled *)
  crud_prob : float;         (** probability a connection carries non-HTTP junk *)
}

let default =
  {
    sessions = 200;
    seed = 0xbe11;
    start_ts = Time_ns.of_secs 1_400_000_000;
    clients = 40;
    servers = 12;
    max_requests = 4;
    mss = 1400;
    reorder_prob = 0.03;
    crud_prob = 0.01;
  }

(* ---- Message material ------------------------------------------------------ *)

let methods = [ (70, "GET"); (20, "POST"); (7, "HEAD"); (3, "PUT") ]

(* "Partial Content" is kept rare: 206 sessions are the main source of
   Table 2's parser disagreements (§6.4). *)
let statuses =
  [ (71, (200, "OK"));
    (10, (404, "Not Found"));
    (8, (304, "Not Modified"));
    (6, (302, "Found"));
    (2, (206, "Partial Content"));
    (3, (500, "Internal Server Error")) ]

let mime_types =
  [| "text/html"; "text/plain"; "image/png"; "image/jpeg";
     "application/json"; "application/javascript"; "text/css";
     "application/octet-stream" |]

let user_agents =
  [| "Mozilla/5.0 (X11; Linux x86_64)"; "curl/7.30.0"; "Wget/1.14";
     "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_9)" |]

let path_segments = [| "index"; "img"; "api"; "static"; "data"; "download"; "page" |]

let extensions = [| ".html"; ".png"; ".js"; ".css"; ".json"; "" |]

let gen_uri rng =
  let depth = 1 + Rng.int rng 3 in
  let parts =
    List.init depth (fun _ ->
        if Rng.bool rng then Rng.choose rng path_segments else Rng.label rng ~lo:3 ~hi:8)
  in
  let ext = Rng.choose rng extensions in
  let query = if Rng.chance rng 0.2 then "?id=" ^ string_of_int (Rng.int rng 10000) else "" in
  "/" ^ String.concat "/" parts ^ ext ^ query

let gen_body rng size =
  String.init size (fun i ->
      if i mod 64 = 63 then '\n'
      else Char.chr (32 + ((Rng.int rng 95 + i) mod 95)))

(* ---- One HTTP transaction -------------------------------------------------- *)

type transaction = {
  meth : string;
  uri : string;
  host : string;
  status : int;
  reason : string;
  mime : string option;
  request_body : string;
  response_body : string;
  chunked : bool;
  range_of : int option;  (** total size when the reply is a 206 slice *)
}

let gen_transaction rng ~host =
  let meth = Rng.weighted rng methods in
  let status, reason = Rng.weighted rng statuses in
  let request_body =
    if meth = "POST" || meth = "PUT" then gen_body rng (Rng.size rng ~lo:10 ~hi:600)
    else ""
  in
  let has_body = status <> 304 && status <> 302 && meth <> "HEAD" in
  let mime = if has_body then Some (Rng.choose rng mime_types) else None in
  let body_size =
    if not has_body then 0
    else if status = 206 then Rng.size rng ~lo:100 ~hi:2000
    else Rng.size rng ~lo:20 ~hi:8000
  in
  let response_body = if has_body then gen_body rng body_size else "" in
  let chunked = has_body && status = 200 && Rng.chance rng 0.25 in
  let range_of = if status = 206 then Some (body_size * 3) else None in
  { meth; uri = gen_uri rng; host; status; reason; mime; request_body;
    response_body; chunked; range_of }

let render_request t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s %s HTTP/1.1\r\n" t.meth t.uri);
  Buffer.add_string buf (Printf.sprintf "Host: %s\r\n" t.host);
  Buffer.add_string buf (Printf.sprintf "User-Agent: %s\r\n" "Mozilla/5.0 (X11; Linux x86_64)");
  Buffer.add_string buf "Accept: */*\r\n";
  if String.length t.request_body > 0 then begin
    Buffer.add_string buf
      (Printf.sprintf "Content-Length: %d\r\n" (String.length t.request_body));
    Buffer.add_string buf "Content-Type: application/x-www-form-urlencoded\r\n"
  end;
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf t.request_body;
  Buffer.contents buf

let render_response t ~keep_alive =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "HTTP/1.1 %d %s\r\n" t.status t.reason);
  Buffer.add_string buf "Server: nginx/1.4.7\r\n";
  (match t.mime with
  | Some m -> Buffer.add_string buf (Printf.sprintf "Content-Type: %s\r\n" m)
  | None -> ());
  (match t.range_of with
  | Some total ->
      Buffer.add_string buf
        (Printf.sprintf "Content-Range: bytes 0-%d/%d"
           (String.length t.response_body - 1) total);
      Buffer.add_string buf "\r\n"
  | None -> ());
  if not keep_alive then Buffer.add_string buf "Connection: close\r\n";
  if t.chunked then begin
    Buffer.add_string buf "Transfer-Encoding: chunked\r\n\r\n";
    (* Split the body into a few chunks. *)
    let body = t.response_body in
    let n = String.length body in
    let rec chunks off =
      if off >= n then Buffer.add_string buf "0\r\n\r\n"
      else begin
        let len = min (max 1 (n / 3)) (n - off) in
        Buffer.add_string buf (Printf.sprintf "%x\r\n" len);
        Buffer.add_string buf (String.sub body off len);
        Buffer.add_string buf "\r\n";
        chunks (off + len)
      end
    in
    chunks 0
  end
  else begin
    Buffer.add_string buf
      (Printf.sprintf "Content-Length: %d\r\n\r\n" (String.length t.response_body));
    Buffer.add_string buf t.response_body
  end;
  Buffer.contents buf

(* ---- TCP session assembly --------------------------------------------------- *)

type endpoints = {
  client : Addr.t;
  server : Addr.t;
  cport : int;
  sport : int;
}

type session_packets = Pcap.record list

(* Build data segments for one direction, chopping [data] at MSS. *)
let data_segments rng cfg ~ts_ref ~ep ~from_client ~seq ~ack data =
  let src, dst, sp, dp =
    if from_client then (ep.client, ep.server, ep.cport, ep.sport)
    else (ep.server, ep.client, ep.sport, ep.cport)
  in
  let n = String.length data in
  let segs = ref [] in
  let off = ref 0 in
  while !off < n do
    let len = min cfg.mss (n - !off) in
    let frame =
      Packet.encode_tcp ~src ~dst ~src_port:sp ~dst_port:dp
        ~seq:(Int32.add seq (Int32.of_int !off))
        ~ack
        ~flags:(Tcp.flag_ack lor Tcp.flag_psh)
        (String.sub data !off len)
    in
    ts_ref := Time_ns.add !ts_ref (Int64.of_int (50_000 + Rng.int rng 400_000));
    segs := { Pcap.ts = !ts_ref; orig_len = String.length frame; data = frame } :: !segs;
    off := !off + len
  done;
  let segs = List.rev !segs in
  (* Optionally reorder a flight to exercise reassembly: the two leading
     segments swap contents but keep ascending capture timestamps, so the
     later-sequenced data genuinely arrives first on the wire. *)
  if List.length segs > 1 && Rng.chance rng cfg.reorder_prob then
    match segs with
    | a :: b :: rest ->
        { b with Pcap.ts = a.Pcap.ts } :: { a with Pcap.ts = b.Pcap.ts } :: rest
    | _ -> segs
  else segs

let bare_segment ~ts ~ep ~from_client ~seq ~ack ~flags =
  let src, dst, sp, dp =
    if from_client then (ep.client, ep.server, ep.cport, ep.sport)
    else (ep.server, ep.client, ep.sport, ep.cport)
  in
  let frame =
    Packet.encode_tcp ~src ~dst ~src_port:sp ~dst_port:dp ~seq ~ack ~flags ""
  in
  { Pcap.ts; orig_len = String.length frame; data = frame }

(** Generate one complete HTTP connection; returns packets and the
    transactions it carried (ground truth for validation). *)
let gen_session rng cfg ~ts_ref ~ep : session_packets * transaction list =
  let step ival = ts_ref := Time_ns.add !ts_ref (Int64.of_int ival) in
  let host = Printf.sprintf "%s.example.com" (Rng.label rng ~lo:3 ~hi:10) in
  let nreq = 1 + Rng.int rng cfg.max_requests in
  let txs = List.init nreq (fun _ -> gen_transaction rng ~host) in
  let cseq0 = Int32.of_int (1000 + Rng.int rng 1_000_000) in
  let sseq0 = Int32.of_int (5000 + Rng.int rng 1_000_000) in
  let packets = ref [] in
  let emit p = packets := p :: !packets in
  (* Handshake. *)
  step 100_000;
  emit (bare_segment ~ts:!ts_ref ~ep ~from_client:true ~seq:cseq0 ~ack:0l ~flags:Tcp.flag_syn);
  step 80_000;
  emit
    (bare_segment ~ts:!ts_ref ~ep ~from_client:false ~seq:sseq0
       ~ack:(Int32.add cseq0 1l)
       ~flags:(Tcp.flag_syn lor Tcp.flag_ack));
  step 60_000;
  emit
    (bare_segment ~ts:!ts_ref ~ep ~from_client:true ~seq:(Int32.add cseq0 1l)
       ~ack:(Int32.add sseq0 1l) ~flags:Tcp.flag_ack);
  let cseq = ref (Int32.add cseq0 1l) and sseq = ref (Int32.add sseq0 1l) in
  List.iteri
    (fun i tx ->
      let keep_alive = i < nreq - 1 in
      let req = render_request tx in
      List.iter emit
        (data_segments rng cfg ~ts_ref ~ep ~from_client:true ~seq:!cseq ~ack:!sseq req);
      cseq := Int32.add !cseq (Int32.of_int (String.length req));
      let resp = render_response tx ~keep_alive in
      List.iter emit
        (data_segments rng cfg ~ts_ref ~ep ~from_client:false ~seq:!sseq ~ack:!cseq resp);
      sseq := Int32.add !sseq (Int32.of_int (String.length resp)))
    txs;
  (* Teardown. *)
  step 120_000;
  emit (bare_segment ~ts:!ts_ref ~ep ~from_client:true ~seq:!cseq ~ack:!sseq
          ~flags:(Tcp.flag_fin lor Tcp.flag_ack));
  step 60_000;
  emit (bare_segment ~ts:!ts_ref ~ep ~from_client:false ~seq:!sseq
          ~ack:(Int32.add !cseq 1l)
          ~flags:(Tcp.flag_fin lor Tcp.flag_ack));
  step 40_000;
  emit (bare_segment ~ts:!ts_ref ~ep ~from_client:true ~seq:(Int32.add !cseq 1l)
          ~ack:(Int32.add !sseq 1l) ~flags:Tcp.flag_ack);
  (List.rev !packets, txs)

(* A connection on port 80 that is not HTTP ("crud", §2). *)
let gen_crud_session rng cfg ~ts_ref ~ep : session_packets =
  let junk = Rng.label rng ~lo:20 ~hi:200 ^ "\x00\x01\x02\xff" in
  let cseq0 = Int32.of_int (1000 + Rng.int rng 1_000_000) in
  let pkts, _ =
    ( [ bare_segment ~ts:!ts_ref ~ep ~from_client:true ~seq:cseq0 ~ack:0l
          ~flags:Tcp.flag_syn ],
      () )
  in
  let data =
    data_segments rng cfg ~ts_ref ~ep ~from_client:true
      ~seq:(Int32.add cseq0 1l) ~ack:1l junk
  in
  pkts @ data

type trace = {
  records : Pcap.record list;
  transactions : (endpoints * transaction list) list;  (** ground truth *)
}

let client_addr i = Addr.of_ipv4_octets 10 1 (i / 250) (1 + (i mod 250))
let server_addr i = Addr.of_ipv4_octets 192 168 (i / 250) (1 + (i mod 250))

(* Mean spacing between session starts: sessions overlap like live traffic
   (several in flight at once) while arrivals stay monotone, so a bounded
   reorder window suffices to interleave them in timestamp order. *)
let mean_gap_ns = 1_500_000

(** The session-by-session producer both [generate] and [iosrc] consume:
    every call yields one connection's packets (and its ground-truth
    transactions, [None] for crud), drawing from a single sequential RNG so
    list and streaming traces are identical. *)
let session_stream (cfg : config) :
    unit -> (session_packets * (endpoints * transaction list) option) option =
  let rng = Rng.create cfg.seed in
  let arrival = ref cfg.start_ts in
  let i = ref 0 in
  fun () ->
    if !i >= cfg.sessions then None
    else begin
      let idx = !i in
      incr i;
      let ep =
        {
          client = client_addr (Rng.int rng cfg.clients);
          server = server_addr (Rng.int rng cfg.servers);
          cport = 29000 + ((idx * 13) mod 30000);
          sport = 80;
        }
      in
      arrival := Time_ns.add !arrival (Int64.of_int (Rng.int rng (2 * mean_gap_ns)));
      let ts_ref = ref !arrival in
      if Rng.chance rng cfg.crud_prob then
        Some (gen_crud_session rng cfg ~ts_ref ~ep, None)
      else
        let pkts, session_txs = gen_session rng cfg ~ts_ref ~ep in
        Some (pkts, Some (ep, session_txs))
    end

(** Synthesize packets on demand as an [Iosrc.t]: memory stays bounded by
    the reorder [window] instead of the trace length.  The default window
    spans ~55ms of arrivals — several times the longest session — so the
    merged stream matches the sorted list exactly. *)
let iosrc ?(window = 512) (cfg : config) : Hilti_rt.Iosrc.t =
  let next = session_stream cfg in
  Gen_stream.iosrc ~kind:"synthetic-http" ~window (fun () ->
      Option.map fst (next ()))

(** Generate a full trace per [config].  Sessions start at staggered
    offsets and their packets are merged in timestamp order, so many
    connections are in flight simultaneously — exercising concurrent
    per-session state exactly like live traffic. *)
let generate (cfg : config) : trace =
  let next = session_stream cfg in
  let records = ref [] and txs = ref [] in
  let rec go () =
    match next () with
    | None -> ()
    | Some (pkts, session_txs) ->
        records := List.rev_append pkts !records;
        (match session_txs with Some t -> txs := t :: !txs | None -> ());
        go ()
  in
  go ();
  let by_ts (a : Pcap.record) (b : Pcap.record) = Time_ns.compare a.Pcap.ts b.Pcap.ts in
  { records = List.stable_sort by_ts (List.rev !records);
    transactions = List.rev !txs }
