(** The analysis driver: the Bro-core equivalent that feeds trace packets
    through flow tracking, TCP reassembly, and a protocol parser (standard
    or BinPAC++), raising events into a Mini-Bro engine (§6.1's pipeline).

    All entry points fold over a {!Hilti_rt.Iosrc.t} — the canonical packet
    interface — so the pipeline's state is bounded by the live connections,
    not by the trace length: packets are pulled one at a time, consumed
    parser input is trimmed, and idle connections can be evicted through
    {!Flow_table} timeouts ([?idle_timeout]).  The [record list] entry
    points remain as thin wrappers and behave exactly as before.

    Component costs are recorded under the profilers
    ["analyzer/parse"] (protocol parsing), ["analyzer/script"] (event
    dispatch = script execution), and ["bro/glue"] (value conversion,
    charged inside {!Mini_bro.Bro_val}) — the Figure 9/10 breakdown. *)

open Hilti_net
open Mini_bro

type http_kind = Http_std | Http_pac of Http_pac.t
type dns_kind = Dns_std | Dns_pac of Dns_pac.t
type mqtt_kind = Mqtt_std | Mqtt_pac of Mqtt_pac.t
type ftp_kind = Ftp_std | Ftp_pac of Ftp_pac.t

type stats = {
  mutable packets : int;
  mutable connections : int;
  mutable events : int;
  mutable evicted : int;  (** connections torn down by idle timeout *)
}

let parse_profiler = "analyzer/parse"
let script_profiler = "analyzer/script"

let m_events =
  Hilti_obs.Metrics.counter "events_raised"
    ~help:"Events dispatched into the script engine"

let m_parse_errors =
  Hilti_obs.Metrics.counter "parse_errors"
    ~help:"Datagrams rejected by a protocol parser"

let m_bytes_trimmed =
  Hilti_obs.Metrics.counter "bytes_trimmed"
    ~help:"Consumed parser input released by Hbytes.trim"

(* The bytes layer sits below the metrics library, so it exposes a hook
   instead of counting trims itself; the driver wires it up once. *)
let () =
  Hilti_types.Hbytes.set_on_trim (fun n -> Hilti_obs.Metrics.add m_bytes_trimmed n)

(* Wrap a sink so every event dispatch is timed as "script execution";
   exclusive timing pauses the parse profiler when events fire from inside
   a parse, keeping the components additive. *)
let profiled_sink (sink : Events.sink) (stats : stats) : Events.sink =
  {
    Events.raise_event =
      (fun name args ->
        stats.events <- stats.events + 1;
        Hilti_obs.Metrics.incr m_events;
        Hilti_rt.Profiler.time_exclusive script_profiler (fun () ->
            sink.Events.raise_event name args));
    set_time = sink.Events.set_time;
  }

(* Accounting-only sink for the batched loops: events are still counted,
   but the script profiler runs once per batch (see [in_events]) instead
   of opening an exclusive span around every dispatch — the per-event
   clock reads are exactly the kind of per-packet obs cost batching is
   meant to amortize.  The events-raised metric is likewise deferred:
   dispatches bump a plain counter and the returned flush publishes the
   delta, which the runners call once per batch epoch (and once at end
   of stream).  Event content is unaffected. *)
let counted_sink (sink : Events.sink) (stats : stats) :
    Events.sink * (unit -> unit) =
  let pending = ref 0 in
  ( {
      Events.raise_event =
        (fun name args ->
          stats.events <- stats.events + 1;
          incr pending;
          sink.Events.raise_event name args);
      set_time = sink.Events.set_time;
    },
    fun () ->
      if !pending > 0 then begin
        Hilti_obs.Metrics.add m_events !pending;
        pending := 0
      end )

let in_parse f =
  Hilti_obs.Trace.with_span ~cat:"analyzer" "parse" (fun () ->
      Hilti_rt.Profiler.time parse_profiler f)

(* One script-execution span per batch, bracketing the whole serial event
   stage; pairs with [counted_sink].  Parse and event stages never nest in
   the batched loops, so plain (non-exclusive) timing keeps the breakdown
   additive. *)
let in_events f = Hilti_rt.Profiler.time script_profiler f

(* ---- Periodic stats export ---------------------------------------------------------- *)

(* A stats request is (interval of trace time, scrape callback); the driver
   arms a rearming timer on the run's timer manager, so exports line up
   with the trace clock exactly like HILTI's periodic profiler dumps. *)
type stats_export = Hilti_types.Interval_ns.t * (unit -> unit)

let arm_stats timer_mgr (stats : stats_export option) =
  match stats with
  | None -> ()
  | Some (ival, cb) ->
      let rec arm () =
        ignore
          (Hilti_rt.Timer_mgr.schedule_in timer_mgr
             (fun () ->
               cb ();
               arm ())
             ival)
      in
      arm ()

let fresh_stats () = { packets = 0; connections = 0; events = 0; evicted = 0 }

(* ---- Session scaffold -------------------------------------------------------------- *)

(* Every protocol runner used to hand-wire the same trio — a timer manager,
   an optional stats-export timer, and a flow table with optional idle
   eviction.  One scaffold now serves the serial paths and the collector
   side of the sharded data plane, so the two cannot drift. *)
type 'st session = {
  ss_table : 'st Flow_table.t;
  ss_tick : Hilti_types.Time_ns.t -> unit;
      (** advance trace time (timers, exports); cheap no-op when neither
          idle eviction nor stats export is configured *)
}

let make_session ?idle_timeout ?(stats_export : stats_export option) ?on_evict
    (fresh : Flow.t -> Hilti_types.Time_ns.t -> 'st) : 'st session =
  let timer_mgr = Hilti_rt.Timer_mgr.create () in
  arm_stats timer_mgr stats_export;
  let table =
    match idle_timeout with
    | Some ival -> Flow_table.create ~timeout:ival ~timer_mgr fresh
    | None -> Flow_table.create fresh
  in
  (match on_evict with Some f -> Flow_table.on_remove table f | None -> ());
  let tick =
    if idle_timeout <> None || stats_export <> None then fun ts ->
      ignore (Hilti_rt.Timer_mgr.advance timer_mgr ts)
    else fun _ -> ()
  in
  { ss_table = table; ss_tick = tick }

(* ---- Parse-error accounting -------------------------------------------------------- *)

(* [m_parse_errors] counts once per failed parse attempt, uniformly across
   every runner and recovery path: a rejected datagram (DNS), or a stream
   direction whose parser went dead (HTTP/MQTT/FTP, std or pac).  Stream
   parsers report failure on every feed once dead, so each direction
   carries a latch. *)
type side_acct = { mutable err_counted : bool }

let fresh_acct () = { err_counted = false }

let note_parse_error acct failed_now =
  if failed_now && not acct.err_counted then begin
    acct.err_counted <- true;
    Hilti_obs.Metrics.incr m_parse_errors
  end

let pac_session_failed (s : Binpacxx.Runtime.session) =
  match Binpacxx.Runtime.status s with
  | Binpacxx.Runtime.Failed _ -> true
  | _ -> false

(* ---- HTTP ------------------------------------------------------------------------ *)

type http_side =
  | Hs_std of Http_std.t
  | Hs_pac of Http_pac.session

type http_conn = {
  conn_val : Bro_val.t;
  req_side : http_side;
  rep_side : http_side;
  req_rs : Reassembly.t;
  rep_rs : Reassembly.t;
  req_acct : side_acct;
  rep_acct : side_acct;
  seq : int;  (** creation order, for the deterministic end-of-trace flush *)
  mutable established : bool;
}

let feed_side side data =
  match side with
  | Hs_std p -> Http_std.feed p data
  | Hs_pac s -> Http_pac.feed s data

let eof_side side =
  match side with Hs_std p -> Http_std.eof p | Hs_pac s -> Http_pac.eof s

let http_side_failed side =
  match side with
  | Hs_std p -> Http_std.failed p
  | Hs_pac s -> pac_session_failed s.Http_pac.s

(** Stream an HTTP source through the pipeline.  With [?idle_timeout],
    connections idle for that long (in trace time) are flushed and evicted
    as the clock advances, keeping the session table bounded by the live
    flows; without it the table drains only at end of trace, matching the
    list-based path event for event. *)
let run_http_src ~(kind : http_kind) ~(sink : Events.sink) ?idle_timeout
    ?(stats_export : stats_export option) (src : Hilti_rt.Iosrc.t) : stats =
  let stats = fresh_stats () in
  let sink = profiled_sink sink stats in
  (match kind with
  | Http_pac t -> t.Http_pac.sink <- sink
  | Http_std -> ());
  sink.Events.raise_event "bro_init" [];
  let uid_counter = ref 0 in
  let fresh flow ts =
    incr uid_counter;
    stats.connections <- stats.connections + 1;
    let uid = "C" ^ string_of_int !uid_counter in
    let conn_val = Events.connection_val ~uid ~flow ~start_time:ts in
    let mk_side ~is_request =
      match kind with
      | Http_std ->
          Hs_std
            (Http_std.create ~is_request
               ~on_request:(fun r -> Events.raise_http_request sink conn_val r)
               ~on_reply:(fun r -> Events.raise_http_reply sink conn_val r))
      | Http_pac t -> Hs_pac (Http_pac.session t ~conn:conn_val ~is_request)
    in
    let req_side = mk_side ~is_request:true in
    let rep_side = mk_side ~is_request:false in
    {
      conn_val;
      req_side;
      rep_side;
      req_rs =
        Reassembly.create (fun data -> in_parse (fun () -> feed_side req_side data));
      rep_rs =
        Reassembly.create (fun data -> in_parse (fun () -> feed_side rep_side data));
      req_acct = fresh_acct ();
      rep_acct = fresh_acct ();
      seq = !uid_counter;
      established = false;
    }
  in
  let note_sides (c : http_conn) =
    note_parse_error c.req_acct (http_side_failed c.req_side);
    note_parse_error c.rep_acct (http_side_failed c.rep_side)
  in
  let finish (c : http_conn) =
    Reassembly.finish c.req_rs;
    Reassembly.finish c.rep_rs;
    in_parse (fun () -> eof_side c.req_side);
    in_parse (fun () -> eof_side c.rep_side);
    note_sides c;
    Events.raise_connection_state_remove sink c.conn_val
  in
  let session =
    make_session ?idle_timeout ?stats_export
      ~on_evict:(fun conn ->
        stats.evicted <- stats.evicted + 1;
        finish conn.Flow_table.state)
      fresh
  in
  Hilti_rt.Iosrc.iter
    (fun (p : Hilti_rt.Iosrc.packet) ->
      stats.packets <- stats.packets + 1;
      let ts = p.Hilti_rt.Iosrc.ts in
      if idle_timeout <> None then sink.Events.set_time ts;
      session.ss_tick ts;
      match Packet.decode_opt ~ts p.Hilti_rt.Iosrc.data with
      | Some pkt -> (
          match (pkt.Packet.transport, Packet.flow pkt) with
          | Packet.TCP (tcp, payload), Some flow ->
              sink.Events.set_time ts;
              let conn, _ = Flow_table.lookup session.ss_table ~ts flow in
              let c = conn.Flow_table.state in
              let from_orig = Flow.equal flow conn.Flow_table.flow in
              (* connection_established on the responder's SYN+ACK. *)
              if
                (not c.established)
                && (not from_orig)
                && Tcp.has_flag tcp Tcp.flag_syn
                && Tcp.has_flag tcp Tcp.flag_ack
              then begin
                c.established <- true;
                Events.raise_connection_established sink c.conn_val
              end;
              let rs = if from_orig then c.req_rs else c.rep_rs in
              Reassembly.segment rs ~seq:tcp.Tcp.seq
                ~syn:(Tcp.has_flag tcp Tcp.flag_syn)
                ~fin:(Tcp.has_flag tcp Tcp.flag_fin)
                payload;
              note_sides c
          | _ -> ())
      | None -> ())
    src;
  (* Trace over: flush the still-live connections in creation order. *)
  let live =
    Flow_table.fold (fun conn acc -> conn.Flow_table.state :: acc) session.ss_table []
  in
  List.iter finish (List.sort (fun a b -> compare a.seq b.seq) live);
  sink.Events.raise_event "bro_done" [];
  stats

(** Run an HTTP trace through the pipeline (list compat wrapper). *)
let run_http ~(kind : http_kind) ~(sink : Events.sink) (records : Pcap.record list) :
    stats =
  run_http_src ~kind ~sink (Pcap.iosrc_of_records records)

(* ---- MQTT ------------------------------------------------------------------------ *)

type mqtt_side = Ms_std of Mqtt_std.t | Ms_pac of Mqtt_pac.session

type mqtt_conn = {
  m_conn_val : Bro_val.t;
  m_orig : mqtt_side;
  m_resp : mqtt_side;
  m_orig_rs : Reassembly.t;
  m_resp_rs : Reassembly.t;
  m_orig_acct : side_acct;
  m_resp_acct : side_acct;
  m_seq : int;
  mutable m_established : bool;
}

let mqtt_feed side data =
  match side with
  | Ms_std p -> Mqtt_std.feed p data
  | Ms_pac s -> ignore (Mqtt_pac.feed s data)

let mqtt_eof side =
  match side with
  | Ms_std p -> Mqtt_std.eof p
  | Ms_pac s -> ignore (Mqtt_pac.eof s)

let mqtt_failed side =
  match side with
  | Ms_std p -> Mqtt_std.failed p <> None
  | Ms_pac s -> pac_session_failed s.Mqtt_pac.s

(** Stream an MQTT source through the pipeline: TCP reassembly per
    direction, control packets parsed by the selected implementation,
    packet events raised on the owning connection.  Structure and eviction
    semantics mirror {!run_http_src}. *)
let run_mqtt_src ~(kind : mqtt_kind) ~(sink : Events.sink) ?idle_timeout
    ?(stats_export : stats_export option) (src : Hilti_rt.Iosrc.t) : stats =
  let stats = fresh_stats () in
  let sink = profiled_sink sink stats in
  sink.Events.raise_event "bro_init" [];
  let uid_counter = ref 0 in
  let fresh flow ts =
    incr uid_counter;
    stats.connections <- stats.connections + 1;
    let uid = "C" ^ string_of_int !uid_counter in
    let conn_val = Events.connection_val ~uid ~flow ~start_time:ts in
    let on_packet ev = Events.raise_mqtt sink conn_val ev in
    let mk_side () =
      match kind with
      | Mqtt_std -> Ms_std (Mqtt_std.create ~on_packet)
      | Mqtt_pac t -> Ms_pac (Mqtt_pac.session t ~on_packet)
    in
    let m_orig = mk_side () in
    let m_resp = mk_side () in
    {
      m_conn_val = conn_val;
      m_orig;
      m_resp;
      m_orig_rs =
        Reassembly.create (fun data -> in_parse (fun () -> mqtt_feed m_orig data));
      m_resp_rs =
        Reassembly.create (fun data -> in_parse (fun () -> mqtt_feed m_resp data));
      m_orig_acct = fresh_acct ();
      m_resp_acct = fresh_acct ();
      m_seq = !uid_counter;
      m_established = false;
    }
  in
  let note_sides c =
    note_parse_error c.m_orig_acct (mqtt_failed c.m_orig);
    note_parse_error c.m_resp_acct (mqtt_failed c.m_resp)
  in
  let finish (c : mqtt_conn) =
    Reassembly.finish c.m_orig_rs;
    Reassembly.finish c.m_resp_rs;
    in_parse (fun () -> mqtt_eof c.m_orig);
    in_parse (fun () -> mqtt_eof c.m_resp);
    note_sides c;
    Events.raise_connection_state_remove sink c.m_conn_val
  in
  let session =
    make_session ?idle_timeout ?stats_export
      ~on_evict:(fun conn ->
        stats.evicted <- stats.evicted + 1;
        finish conn.Flow_table.state)
      fresh
  in
  Hilti_rt.Iosrc.iter
    (fun (p : Hilti_rt.Iosrc.packet) ->
      stats.packets <- stats.packets + 1;
      let ts = p.Hilti_rt.Iosrc.ts in
      if idle_timeout <> None then sink.Events.set_time ts;
      session.ss_tick ts;
      match Packet.decode_opt ~ts p.Hilti_rt.Iosrc.data with
      | Some pkt -> (
          match (pkt.Packet.transport, Packet.flow pkt) with
          | Packet.TCP (tcp, payload), Some flow ->
              sink.Events.set_time ts;
              let conn, _ = Flow_table.lookup session.ss_table ~ts flow in
              let c = conn.Flow_table.state in
              let from_orig = Flow.equal flow conn.Flow_table.flow in
              if
                (not c.m_established)
                && (not from_orig)
                && Tcp.has_flag tcp Tcp.flag_syn
                && Tcp.has_flag tcp Tcp.flag_ack
              then begin
                c.m_established <- true;
                Events.raise_connection_established sink c.m_conn_val
              end;
              let rs = if from_orig then c.m_orig_rs else c.m_resp_rs in
              Reassembly.segment rs ~seq:tcp.Tcp.seq
                ~syn:(Tcp.has_flag tcp Tcp.flag_syn)
                ~fin:(Tcp.has_flag tcp Tcp.flag_fin)
                payload;
              note_sides c
          | _ -> ())
      | None -> ())
    src;
  let live =
    Flow_table.fold (fun conn acc -> conn.Flow_table.state :: acc) session.ss_table []
  in
  List.iter finish (List.sort (fun a b -> compare a.m_seq b.m_seq) live);
  sink.Events.raise_event "bro_done" [];
  stats

let run_mqtt ~(kind : mqtt_kind) ~(sink : Events.sink) (records : Pcap.record list) :
    stats =
  run_mqtt_src ~kind ~sink (Pcap.iosrc_of_records records)

(* ---- FTP ------------------------------------------------------------------------- *)

type ftp_side = Fs_std of Ftp_std.t | Fs_pac of Ftp_pac.session

type ftp_parse = {
  f_orig : ftp_side;  (** client->server: commands *)
  f_resp : ftp_side;  (** server->client: replies *)
  f_orig_rs : Reassembly.t;
  f_resp_rs : Reassembly.t;
  f_orig_acct : side_acct;
  f_resp_acct : side_acct;
}

type ftp_conn = {
  f_conn_val : Bro_val.t;
  f_parse : ftp_parse option;
      (** [Some] on control connections; [None] on announced data
          connections (and unrelated flows), which carry no parser *)
  f_seq : int;
  mutable f_established : bool;
}

let ftp_feed side data =
  match side with
  | Fs_std p -> Ftp_std.feed p data
  | Fs_pac s -> ignore (Ftp_pac.feed s data)

let ftp_eof side =
  match side with
  | Fs_std p -> Ftp_std.eof p
  | Fs_pac s -> ignore (Ftp_pac.eof s)

let ftp_failed side =
  match side with
  | Fs_std p -> Ftp_std.failed p <> None
  | Fs_pac s -> pac_session_failed s.Ftp_pac.s

(* "h1,h2,h3,h4,p1,p2" (RFC 959 PORT argument / 227 payload). *)
let parse_host_port (s : string) : (Hilti_types.Addr.t * int) option =
  match List.map int_of_string_opt (String.split_on_char ',' (String.trim s)) with
  | [ Some a; Some b; Some c; Some d; Some p1; Some p2 ]
    when List.for_all (fun x -> x >= 0 && x <= 255) [ a; b; c; d; p1; p2 ] ->
      Some (Hilti_types.Addr.of_ipv4_octets a b c d, (p1 lsl 8) lor p2)
  | _ | (exception _) -> None

(* The host,port sextet inside a 227 reply's parentheses. *)
let parse_pasv (text : string) : (Hilti_types.Addr.t * int) option =
  match (String.index_opt text '(', String.rindex_opt text ')') with
  | Some l, Some r when r > l ->
      parse_host_port (String.sub text (l + 1) (r - l - 1))
  | _ -> None

(** Stream an FTP source through the pipeline.  Control connections (port
    21) get command/reply parsers; PORT commands and 227 passive replies
    raise [ftp_data] and register the announced endpoint, so the later
    data connection is recognized and coupled to its control session —
    the cross-flow state sharing of §6.4. *)
let run_ftp_src ~(kind : ftp_kind) ~(sink : Events.sink) ?idle_timeout
    ?(stats_export : stats_export option) (src : Hilti_rt.Iosrc.t) : stats =
  let stats = fresh_stats () in
  let sink = profiled_sink sink stats in
  sink.Events.raise_event "bro_init" [];
  let uid_counter = ref 0 in
  (* Announced data endpoints: "addr:port" the next connection will target. *)
  let expected : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let endpoint_key addr port =
    Hilti_types.Addr.to_string addr ^ ":" ^ string_of_int port
  in
  let expect conn_val host port =
    Hashtbl.replace expected (endpoint_key host port) ();
    Events.raise_ftp_data sink conn_val ~host ~port:(Hilti_types.Port.tcp port)
  in
  let on_control_event conn_val (ev : Events.ftp_event) =
    (match ev with
    | Events.F_request { Events.cmd; arg }
      when String.uppercase_ascii cmd = "PORT" -> (
        match parse_host_port arg with
        | Some (host, port) -> expect conn_val host port
        | None -> ())
    | Events.F_reply { Events.code = 227; msg } -> (
        match parse_pasv msg with
        | Some (host, port) -> expect conn_val host port
        | None -> ())
    | _ -> ());
    Events.raise_ftp sink conn_val ev
  in
  let fresh flow ts =
    incr uid_counter;
    stats.connections <- stats.connections + 1;
    let uid = "C" ^ string_of_int !uid_counter in
    let conn_val = Events.connection_val ~uid ~flow ~start_time:ts in
    let is_control =
      Hilti_types.Port.number flow.Flow.dst_port = 21
      || Hilti_types.Port.number flow.Flow.src_port = 21
    in
    let parse =
      if is_control then begin
        let on_event = on_control_event conn_val in
        let mk_side ~is_command =
          match kind with
          | Ftp_std -> Fs_std (Ftp_std.create ~is_command ~on_event)
          | Ftp_pac t -> Fs_pac (Ftp_pac.session t ~is_command ~on_event)
        in
        let f_orig = mk_side ~is_command:true in
        let f_resp = mk_side ~is_command:false in
        Some
          {
            f_orig;
            f_resp;
            f_orig_rs =
              Reassembly.create (fun data ->
                  in_parse (fun () -> ftp_feed f_orig data));
            f_resp_rs =
              Reassembly.create (fun data ->
                  in_parse (fun () -> ftp_feed f_resp data));
            f_orig_acct = fresh_acct ();
            f_resp_acct = fresh_acct ();
          }
      end
      else begin
        (* A flow hitting an announced endpoint is that session's data
           connection; it is tracked but not parsed. *)
        let key =
          endpoint_key flow.Flow.dst (Hilti_types.Port.number flow.Flow.dst_port)
        in
        if Hashtbl.mem expected key then Hashtbl.remove expected key;
        None
      end
    in
    { f_conn_val = conn_val; f_parse = parse; f_seq = !uid_counter; f_established = false }
  in
  let note_sides c =
    match c.f_parse with
    | Some p ->
        note_parse_error p.f_orig_acct (ftp_failed p.f_orig);
        note_parse_error p.f_resp_acct (ftp_failed p.f_resp)
    | None -> ()
  in
  let finish (c : ftp_conn) =
    (match c.f_parse with
    | Some p ->
        Reassembly.finish p.f_orig_rs;
        Reassembly.finish p.f_resp_rs;
        in_parse (fun () -> ftp_eof p.f_orig);
        in_parse (fun () -> ftp_eof p.f_resp)
    | None -> ());
    note_sides c;
    Events.raise_connection_state_remove sink c.f_conn_val
  in
  let session =
    make_session ?idle_timeout ?stats_export
      ~on_evict:(fun conn ->
        stats.evicted <- stats.evicted + 1;
        finish conn.Flow_table.state)
      fresh
  in
  Hilti_rt.Iosrc.iter
    (fun (p : Hilti_rt.Iosrc.packet) ->
      stats.packets <- stats.packets + 1;
      let ts = p.Hilti_rt.Iosrc.ts in
      if idle_timeout <> None then sink.Events.set_time ts;
      session.ss_tick ts;
      match Packet.decode_opt ~ts p.Hilti_rt.Iosrc.data with
      | Some pkt -> (
          match (pkt.Packet.transport, Packet.flow pkt) with
          | Packet.TCP (tcp, payload), Some flow ->
              sink.Events.set_time ts;
              let conn, _ = Flow_table.lookup session.ss_table ~ts flow in
              let c = conn.Flow_table.state in
              let from_orig = Flow.equal flow conn.Flow_table.flow in
              if
                (not c.f_established)
                && (not from_orig)
                && Tcp.has_flag tcp Tcp.flag_syn
                && Tcp.has_flag tcp Tcp.flag_ack
              then begin
                c.f_established <- true;
                Events.raise_connection_established sink c.f_conn_val
              end;
              (match c.f_parse with
              | Some pr ->
                  let rs = if from_orig then pr.f_orig_rs else pr.f_resp_rs in
                  Reassembly.segment rs ~seq:tcp.Tcp.seq
                    ~syn:(Tcp.has_flag tcp Tcp.flag_syn)
                    ~fin:(Tcp.has_flag tcp Tcp.flag_fin)
                    payload
              | None -> ());
              note_sides c
          | _ -> ())
      | None -> ())
    src;
  let live =
    Flow_table.fold (fun conn acc -> conn.Flow_table.state :: acc) session.ss_table []
  in
  List.iter finish (List.sort (fun a b -> compare a.f_seq b.f_seq) live);
  sink.Events.raise_event "bro_done" [];
  stats

let run_ftp ~(kind : ftp_kind) ~(sink : Events.sink) (records : Pcap.record list) :
    stats =
  run_ftp_src ~kind ~sink (Pcap.iosrc_of_records records)

(* ---- DNS ------------------------------------------------------------------------- *)

type dns_outcome =
  | D_req of Events.dns_request
  | D_rep of Events.dns_reply
  | D_none  (* port-53 crud: still creates the connection, like run_dns *)

(* Extract the DNS-relevant view of a datagram: the connection oriented
   client -> resolver plus the UDP payload.  Pure per-packet work — it runs
   on a shard domain in the sharded plane. *)
let dns_datagram (p : Hilti_rt.Iosrc.packet) : (Flow.t * string) option =
  let ts = p.Hilti_rt.Iosrc.ts in
  match Packet.decode_opt ~ts p.Hilti_rt.Iosrc.data with
  | Some pkt -> (
      match (pkt.Packet.transport, Packet.flow pkt) with
      | Packet.UDP (udp, payload), Some flow ->
          let from_client = udp.Udp.dst_port = 53 in
          Some ((if from_client then flow else Flow.reverse flow), payload)
      | _ -> None)
  | None -> None

(* The zero-copy variant of [dns_datagram]: the payload stays a slice of
   the captured frame.  Plain IPv4/UDP frames go through the header peek
   (no decode, no payload substring); anything else falls back to the
   full decoder and wraps the materialized payload in a frozen view. *)
let dns_slice (p : Hilti_rt.Iosrc.packet) :
    (Flow.t * Hilti_types.Hbytes.view) option =
  let data = p.Hilti_rt.Iosrc.data in
  match Packet.peek_udp data with
  | Some (flow, off, len) ->
      let from_client = Hilti_types.Port.number flow.Flow.dst_port = 53 in
      let oriented = if from_client then flow else Flow.reverse flow in
      Some (oriented, Hilti_types.Hbytes.view_of_string ~off ~len data)
  | None -> (
      match dns_datagram p with
      | Some (oriented, payload) ->
          Some (oriented, Hilti_types.Hbytes.view_of_string payload)
      | None -> None)

(* Parse one datagram with the given parser kind.  Also pure per-packet
   work (parser state is per-kind instance, owned by whoever holds it).
   This string entry is the pre-batching path, kept for the legacy runner
   and as the bench baseline; the fast path is [dns_parse_view]. *)
let dns_parse (kind : dns_kind) payload : dns_outcome =
  match kind with
  | Dns_std -> (
      match in_parse (fun () -> Dns_std.parse payload) with
      | msg ->
          if msg.Dns_std.is_response then D_rep (Dns_std.to_reply msg)
          else D_req (Dns_std.to_request msg)
      | exception Dns_std.Bad_dns _ ->
          Hilti_obs.Metrics.incr m_parse_errors;
          D_none)
  | Dns_pac t -> (
      match in_parse (fun () -> Dns_pac.parse t payload) with
      | Dns_pac.Request rq -> D_req rq
      | Dns_pac.Reply rp -> D_rep rp
      | Dns_pac.Not_dns ->
          Hilti_obs.Metrics.incr m_parse_errors;
          D_none)

(* Parse one payload slice in place.  No per-packet profiler span — the
   batched runners open one span per batch; [scratch] is the caller-owned
   (per session / per shard) label buffer of the standard parser. *)
let dns_parse_view ?scratch (kind : dns_kind) (v : Hilti_types.Hbytes.view) :
    dns_outcome =
  match kind with
  | Dns_std -> (
      match Dns_std.parse_view ?scratch v with
      | msg ->
          if msg.Dns_std.is_response then D_rep (Dns_std.to_reply msg)
          else D_req (Dns_std.to_request msg)
      | exception Dns_std.Bad_dns _ ->
          Hilti_obs.Metrics.incr m_parse_errors;
          D_none)
  | Dns_pac t -> (
      match Dns_pac.parse_view t v with
      | Dns_pac.Request rq -> D_req rq
      | Dns_pac.Reply rp -> D_rep rp
      | Dns_pac.Not_dns ->
          Hilti_obs.Metrics.incr m_parse_errors;
          D_none)

(* The serial event stage: connection tracking, uid assignment, trace-time
   timers, and event dispatch, driven strictly in packet order.  The serial
   and sharded DNS paths share this code verbatim — it is why their logs
   are byte-identical.  Time is batch-granular on both: [ds_event] runs
   per packet in global order, then one [ds_count]/[ds_epoch] pair closes
   the batch (packet accounting + a single timer advance to the batch's
   last timestamp).  Identical batch sizes on the two paths therefore
   yield identical eviction points and uid sequences. *)
type dns_stage = {
  ds_count : int -> unit;  (* per batch: packet accounting *)
  ds_event : ts:Hilti_types.Time_ns.t -> Flow.t -> dns_outcome -> unit;
  ds_epoch : Hilti_types.Time_ns.t -> unit;
      (* per batch: advance the trace clock (timers, exports) once *)
}

let dns_stage ~(sink : Events.sink) ~(stats : stats) ?idle_timeout
    ?(stats_export : stats_export option) () : dns_stage =
  let uid_counter = ref 0 in
  let fresh flow ts =
    incr uid_counter;
    stats.connections <- stats.connections + 1;
    let uid = "C" ^ string_of_int !uid_counter in
    let conn_val = Events.connection_val ~uid ~flow ~start_time:ts in
    Events.raise_connection_established sink conn_val;
    conn_val
  in
  let session =
    make_session ?idle_timeout ?stats_export
      ~on_evict:(fun _ -> stats.evicted <- stats.evicted + 1)
      fresh
  in
  {
    ds_count = (fun n -> stats.packets <- stats.packets + n);
    ds_event =
      (fun ~ts oriented outcome ->
        sink.Events.set_time ts;
        let conn, _ = Flow_table.lookup session.ss_table ~ts oriented in
        let conn_val = conn.Flow_table.state in
        match outcome with
        | D_req rq -> Events.raise_dns_request sink conn_val rq
        | D_rep rp -> Events.raise_dns_reply sink conn_val rp
        | D_none -> ());
    ds_epoch = session.ss_tick;
  }

(** The driver's batch size.  Must equal {!Hilti_par.Shard_plane.run}'s
    default batch: the serial and sharded DNS paths advance their trace
    clocks at the same batch boundaries only when the sizes agree, and
    that alignment is what keeps their logs byte-identical under
    [?idle_timeout]. *)
let dns_batch = 256

(* Per-session parse-result arena: one mutable slot per batch position,
   written by the parse stage and consumed (then cleared) by the serial
   event stage.  The slots are allocated once per run and reused every
   batch — staging a packet's result allocates nothing. *)
type dns_slot = {
  mutable sl_ts : Hilti_types.Time_ns.t;
  mutable sl_flow : Flow.t;
  mutable sl_outcome : dns_outcome;
  mutable sl_full : bool;
}

let null_packet = { Hilti_rt.Iosrc.ts = Hilti_types.Time_ns.epoch; data = "" }

let null_flow =
  lazy
    (let a = Hilti_types.Addr.of_ipv4_octets 0 0 0 0 in
     let p = Hilti_types.Port.udp 0 in
     Flow.make ~src:a ~dst:a ~src_port:p ~dst_port:p)

let make_dns_arena batch =
  Array.init batch (fun _ ->
      { sl_ts = Hilti_types.Time_ns.epoch; sl_flow = Lazy.force null_flow;
        sl_outcome = D_none; sl_full = false })

(** Stream a DNS source through the pipeline.  [?idle_timeout] bounds the
    per-flow connection-value table the same way as for HTTP (DNS has no
    teardown events, so eviction only releases state).

    The loop is batch-granular: up to [?batch] packets are pulled, parsed
    zero-copy off the raw frames into the reusable arena under a single
    profiler span, then consumed by the serial event stage in packet
    order, and finally the trace clock advances once to the batch's last
    timestamp.  [?batch] defaults to {!dns_batch} and must match the
    sharded path's batch for byte-identical logs. *)
let run_dns_src ~(kind : dns_kind) ~(sink : Events.sink) ?idle_timeout
    ?(stats_export : stats_export option) ?(batch = dns_batch)
    (src : Hilti_rt.Iosrc.t) : stats =
  if batch < 1 then invalid_arg "Driver.run_dns_src: batch must be >= 1";
  let stats = fresh_stats () in
  let sink, flush_obs = counted_sink sink stats in
  sink.Events.raise_event "bro_init" [];
  let stage = dns_stage ~sink ~stats ?idle_timeout ?stats_export () in
  let scratch = Dns_std.make_scratch () in
  let pkts = Array.make batch null_packet in
  let arena = make_dns_arena batch in
  let eof = ref false in
  while not !eof do
    (* Input stage: one batched read, one input-counter update. *)
    let n = Hilti_rt.Iosrc.read_batch src pkts batch in
    if n < batch then eof := true;
    if n > 0 then begin
      (* Parse stage: whole batch, one span, results into the arena. *)
      in_parse (fun () ->
          for i = 0 to n - 1 do
            let p = pkts.(i) in
            let s = arena.(i) in
            s.sl_ts <- p.Hilti_rt.Iosrc.ts;
            match dns_slice p with
            | Some (oriented, v) ->
                s.sl_flow <- oriented;
                s.sl_outcome <- dns_parse_view ~scratch kind v;
                s.sl_full <- true
            | None -> s.sl_full <- false
          done);
      (* Serial event stage, in packet order, under one script span; each
         slot resets as it is consumed so the arena holds no stale
         references across batches. *)
      in_events (fun () ->
          for i = 0 to n - 1 do
            let s = arena.(i) in
            if s.sl_full then stage.ds_event ~ts:s.sl_ts s.sl_flow s.sl_outcome;
            s.sl_full <- false;
            s.sl_outcome <- D_none
          done);
      (* Batch epoch: accounting, one obs flush, one timer advance to the
         watermark. *)
      stage.ds_count n;
      flush_obs ();
      stage.ds_epoch pkts.(n - 1).Hilti_rt.Iosrc.ts;
      Array.fill pkts 0 n null_packet
    end
  done;
  sink.Events.raise_event "bro_done" [];
  flush_obs ();
  stats

(** The pre-batching serial loop — one payload string materialized per
    datagram, per-packet tick and timer advance.  Kept as the measured
    baseline ([bench stream] runs both loops to quantify the zero-copy +
    batched fast path) and as a differential oracle in tests. *)
let run_dns_src_unbatched ~(kind : dns_kind) ~(sink : Events.sink)
    ?idle_timeout ?(stats_export : stats_export option)
    (src : Hilti_rt.Iosrc.t) : stats =
  let stats = fresh_stats () in
  let sink = profiled_sink sink stats in
  sink.Events.raise_event "bro_init" [];
  let stage = dns_stage ~sink ~stats ?idle_timeout ?stats_export () in
  Hilti_rt.Iosrc.iter
    (fun (p : Hilti_rt.Iosrc.packet) ->
      let ts = p.Hilti_rt.Iosrc.ts in
      stage.ds_count 1;
      stage.ds_epoch ts;
      match dns_datagram p with
      | Some (oriented, payload) ->
          stage.ds_event ~ts oriented (dns_parse kind payload)
      | None -> ())
    src;
  sink.Events.raise_event "bro_done" [];
  stats

(* ---- Sharded DNS (the flow-sharded data plane) -------------------------------------- *)

(** [run_dns_src] with decode and parse fanned out over [shards] OCaml
    domains through {!Hilti_par.Shard_plane}: the dispatcher hashes each
    datagram's 5-tuple symmetrically ({!Flow.shard}) so both directions of
    a connection land on the same shard, each shard owns a private parser
    built by [mk_kind] (no cross-domain locks on the fast path), and the
    collector replays connection tracking and event dispatch in global
    packet order — the produced events, and therefore the logs, are
    byte-identical to {!run_dns_src}'s.  [shards = 1] is the degenerate
    case: one worker, same output, pipeline parallelism only. *)
let run_dns_sharded_src ?batch ?ring ~shards ~(mk_kind : int -> dns_kind)
    ?idle_timeout ?(stats_export : stats_export option) ~(sink : Events.sink)
    (src : Hilti_rt.Iosrc.t) : stats =
  let stats = fresh_stats () in
  (* Same per-batch obs policy as the serial batched loop: events are
     counted, not individually span-timed — the collector's dispatch rate
     is the plane's serial bottleneck. *)
  let sink, flush_obs = counted_sink sink stats in
  sink.Events.raise_event "bro_init" [];
  let stage = dns_stage ~sink ~stats ?idle_timeout ?stats_export () in
  let shard_of (p : Hilti_rt.Iosrc.packet) =
    match Packet.peek_flow p.Hilti_rt.Iosrc.data with
    | Some flow -> Flow.shard ~shards flow
    | None -> 0
  in
  (* Workers parse zero-copy slices with a shard-private parser and label
     scratch; the collector replays the serial event stage per packet and
     closes each batch with the same count/epoch pair as the serial loop
     (same default batch size), so the logs stay byte-identical. *)
  ignore
    (Hilti_par.Shard_plane.run ~shards ?batch ?ring ~shard_of
       ~init:(fun sid -> (mk_kind sid, Dns_std.make_scratch ()))
       ~process:(fun (kind, scratch) ~seq:_ p ->
         match dns_slice p with
         | Some (oriented, v) ->
             Some (p.Hilti_rt.Iosrc.ts, oriented, dns_parse_view ~scratch kind v)
         | None -> None)
       ~after_batch:(fun ~n ~ts ->
         stage.ds_count n;
         flush_obs ();
         stage.ds_epoch ts)
       ~before:(fun ~seq:_ ~ts:_ -> ())
       ~consume:(fun ~seq:_ (ts, oriented, outcome) ->
         stage.ds_event ~ts oriented outcome)
       src);
  sink.Events.raise_event "bro_done" [];
  flush_obs ();
  stats

(** Run a DNS trace through the pipeline (list compat wrapper). *)
let run_dns ~(kind : dns_kind) ~(sink : Events.sink) (records : Pcap.record list) :
    stats =
  run_dns_src ~kind ~sink (Pcap.iosrc_of_records records)

(* ---- Parallel DNS (legacy Hilti_par.Engine path) ------------------------------------ *)

(* Kept as the differential oracle for the sharded plane: same outcome, very
   different machinery (virtual threads over a shared run queue vs. private
   shards over SPSC batch rings). *)

(* Scheduling substrate for parser kinds that carry no VM of their own. *)
let trivial_sched_module () =
  let m = Module_ir.create "ParDrv" in
  let b = Builder.func m "ParDrv::noop" ~exported:true ~params:[] ~result:Htype.Void in
  Builder.return_ b;
  m

(** [run_dns_src] with the datagram parse stage fanned out over [jobs]
    OCaml domains via {!Hilti_par.Engine}, sharded by flow hash (§3.2's
    hash-scheduling).  The source is consumed in bounded batches of
    [?batch] packets: each batch is scheduled, drained ([run_scheduler] is
    the backpressure point), then dispatched serially in packet order — so
    at most one batch is in flight and the produced events, and therefore
    the logs, are identical to the sequential pipeline's while memory stays
    O(batch + live flows) instead of O(trace). *)
let run_dns_par_src ?(batch = 1024) ~jobs ~(kind : dns_kind)
    ?(stats_export : stats_export option) ~(sink : Events.sink)
    (src : Hilti_rt.Iosrc.t) : stats =
  if batch < 1 then invalid_arg "Driver.run_dns_par_src: batch must be >= 1";
  let stats = fresh_stats () in
  let sink = profiled_sink sink stats in
  (* Exports are driven from the serial dispatch stage, so scrapes see a
     consistent picture between batches. *)
  let stats_mgr = Hilti_rt.Timer_mgr.create () in
  arm_stats stats_mgr stats_export;
  let api =
    match kind with
    | Dns_pac t -> t.Dns_pac.parser.Binpacxx.Runtime.api
    | Dns_std -> Hilti_vm.Host_api.compile [ trivial_sched_module () ]
  in
  (* Parallel execution is only entered on verified bytecode (attach
     re-verifies a program that skipped compile-time verification), and
     attach also stamps the frame-reuse licence so per-packet activations
     of analysis-proven functions recycle their worker's arena frames. *)
  let engine = Hilti_par.Engine.attach api.Hilti_vm.Host_api.ctx ~domains:jobs in
  assert api.Hilti_vm.Host_api.ctx.Hilti_vm.Vm.program.Hilti_vm.Bytecode.verified;
  assert
    (Array.length api.Hilti_vm.Host_api.ctx.Hilti_vm.Vm.program.Hilti_vm.Bytecode.reuse
    > 0);
  Fun.protect ~finally:(fun () -> Hilti_par.Engine.detach engine) @@ fun () ->
  (* Every virtual thread owns its own parser state (§3.2): compile its
     regexps before any datagram lands on it (FIFO per thread). *)
  (match kind with
  | Dns_pac t ->
      let gname = t.Dns_pac.parser.Binpacxx.Runtime.grammar.Binpacxx.Ast.gname in
      for tid = 0 to jobs - 1 do
        Hilti_vm.Host_api.schedule api (Int64.of_int tid) (gname ^ "::init") []
      done
  | Dns_std -> ());
  sink.Events.raise_event "bro_init" [];
  let conns : (string, Bro_val.t) Hashtbl.t = Hashtbl.create 1024 in
  let uid_counter = ref 0 in
  let get_conn flow ts =
    let canon, _ = Flow.canonical flow in
    let key = Flow.to_string canon in
    match Hashtbl.find_opt conns key with
    | Some c -> c
    | None ->
        incr uid_counter;
        stats.connections <- stats.connections + 1;
        let uid = "C" ^ string_of_int !uid_counter in
        let conn_val = Events.connection_val ~uid ~flow ~start_time:ts in
        Hashtbl.add conns key conn_val;
        Events.raise_connection_established sink conn_val;
        conn_val
  in
  let recs = Array.make batch None in
  let rec batch_loop () =
    let n = ref 0 in
    let eof = ref false in
    while (not !eof) && !n < batch do
      match Hilti_rt.Iosrc.read src with
      | Some p ->
          recs.(!n) <- Some p;
          incr n
      | None -> eof := true
    done;
    let n = !n in
    if n > 0 then begin
      (* Stage 1 — parallel: decode and parse each datagram of the batch on
         the virtual thread owning its flow; results land in per-slot
         cells. *)
      let slots : (Flow.t * dns_outcome) option array = Array.make n None in
      for i = 0 to n - 1 do
        let p = Option.get recs.(i) in
        let ts = p.Hilti_rt.Iosrc.ts in
        match Packet.decode_opt ~ts p.Hilti_rt.Iosrc.data with
        | Some pkt -> (
            match (pkt.Packet.transport, Packet.flow pkt) with
            | Packet.UDP (udp, payload), Some flow ->
                let from_client = udp.Udp.dst_port = 53 in
                let oriented = if from_client then flow else Flow.reverse flow in
                let canon, _ = Flow.canonical oriented in
                let tid =
                  Hilti_rt.Scheduler.thread_for_hash ~threads:jobs (Flow.hash canon)
                in
                Hilti_vm.Host_api.schedule_host api tid ~label:"dns-parse"
                  (fun _ctx -> slots.(i) <- Some (oriented, dns_parse kind payload))
            | _ -> ())
        | None -> ()
      done;
      Hilti_vm.Host_api.run_scheduler api;
      (* Stage 2 — serial, in packet order: connection tracking and event
         dispatch, exactly as the sequential pipeline does it. *)
      for i = 0 to n - 1 do
        let p = Option.get recs.(i) in
        stats.packets <- stats.packets + 1;
        if stats_export <> None then
          ignore (Hilti_rt.Timer_mgr.advance stats_mgr p.Hilti_rt.Iosrc.ts);
        match slots.(i) with
        | None -> ()
        | Some (oriented, outcome) -> (
            sink.Events.set_time p.Hilti_rt.Iosrc.ts;
            let conn_val = get_conn oriented p.Hilti_rt.Iosrc.ts in
            match outcome with
            | D_req rq -> Events.raise_dns_request sink conn_val rq
            | D_rep rp -> Events.raise_dns_reply sink conn_val rp
            | D_none -> ())
      done;
      Array.fill recs 0 n None;
      if not !eof then batch_loop ()
    end
  in
  batch_loop ();
  sink.Events.raise_event "bro_done" [];
  stats

(** [run_dns] with the parse stage on [jobs] domains (list compat wrapper). *)
let run_dns_par ~jobs ~(kind : dns_kind) ~(sink : Events.sink)
    (records : Pcap.record list) : stats =
  run_dns_par_src ~jobs ~kind ~sink (Pcap.iosrc_of_records records)

(* ---- Firewall -------------------------------------------------------------------- *)

(* The firewall example (§4.1) gets the same serial/sharded pair as DNS.
   Its dynamic state (the VM-side rule set and its expiry timers) is keyed
   by host pair, so the shard key is the symmetric address-pair hash: every
   packet between two hosts — either direction, any port — lands on the
   shard owning that pair's state, and per-shard trace clocks advance
   independently without changing any decision. *)

let fw_line ~ts ~src ~dst allowed =
  Printf.sprintf "%Ld %s > %s %s"
    (Hilti_types.Time_ns.to_ns ts)
    (Hilti_types.Addr.to_string src)
    (Hilti_types.Addr.to_string dst)
    (if allowed then "allow" else "deny")

(** Run every frame of [src] through a compiled firewall, emitting one
    decision line per IP packet via [emit] (in trace order).  The loop is
    batch-granular like the DNS path: packets are pulled [?batch] at a
    time and accounting is amortized per batch; decisions themselves are
    per packet (each carries its own timestamp) and do not depend on the
    batch size. *)
let run_firewall_src ~(fw : Hilti_firewall.Fw_hilti.t) ?(emit = fun _ -> ())
    ?(batch = dns_batch) (src : Hilti_rt.Iosrc.t) : stats =
  if batch < 1 then invalid_arg "Driver.run_firewall_src: batch must be >= 1";
  let stats = fresh_stats () in
  let pkts = Array.make batch null_packet in
  let eof = ref false in
  while not !eof do
    let n = Hilti_rt.Iosrc.read_batch src pkts batch in
    if n < batch then eof := true;
    if n > 0 then begin
      let decided = ref 0 in
      for i = 0 to n - 1 do
        let p = pkts.(i) in
        let ts = p.Hilti_rt.Iosrc.ts in
        match Packet.peek_addrs p.Hilti_rt.Iosrc.data with
        | Some (src_a, dst_a) ->
            let allowed =
              Hilti_firewall.Fw_hilti.match_packet fw ~ts ~src:src_a ~dst:dst_a
            in
            incr decided;
            emit (fw_line ~ts ~src:src_a ~dst:dst_a allowed)
        | None -> ()
      done;
      stats.packets <- stats.packets + n;
      stats.events <- stats.events + !decided;
      Array.fill pkts 0 n null_packet
    end
  done;
  stats

(** [run_firewall_src] over the sharded data plane: [mk_fw] builds each
    shard's private firewall instance (its own VM, rule set, timers) on the
    shard's domain; decision lines are merged back into trace order, so the
    emitted log is byte-identical to the serial run's. *)
let run_firewall_sharded_src ?batch ?ring ~shards
    ~(mk_fw : int -> Hilti_firewall.Fw_hilti.t) ?(emit = fun _ -> ())
    (src : Hilti_rt.Iosrc.t) : stats =
  let stats = fresh_stats () in
  let shard_of (p : Hilti_rt.Iosrc.packet) =
    match Packet.peek_addrs p.Hilti_rt.Iosrc.data with
    | Some (a, b) -> Flow.shard_of_hash ~shards (Flow.host_pair_hash a b)
    | None -> 0
  in
  ignore
    (Hilti_par.Shard_plane.run ~shards ?batch ?ring ~shard_of ~init:mk_fw
       ~process:(fun fw ~seq:_ p ->
         let ts = p.Hilti_rt.Iosrc.ts in
         match Packet.peek_addrs p.Hilti_rt.Iosrc.data with
         | Some (src_a, dst_a) ->
             let allowed =
               Hilti_firewall.Fw_hilti.match_packet fw ~ts ~src:src_a ~dst:dst_a
             in
             Some (fw_line ~ts ~src:src_a ~dst:dst_a allowed)
         | None -> None)
       ~after_batch:(fun ~n ~ts:_ -> stats.packets <- stats.packets + n)
       ~before:(fun ~seq:_ ~ts:_ -> ())
       ~consume:(fun ~seq:_ line ->
         stats.events <- stats.events + 1;
         emit line)
       src);
  stats

(* ---- Convenience: full evaluation runs (§6.4/§6.5) ---------------------------------- *)

type run_result = {
  logger : Bro_log.t;
  stats : stats;
  parse_ns : int64;
  script_ns : int64;
  glue_ns : int64;
  total_ns : int64;
}

let timed f =
  let t0 = Hilti_rt.Profiler.monotonic_ns () in
  let r = f () in
  (r, Int64.sub (Hilti_rt.Profiler.monotonic_ns ()) t0)

let profiler_ns name = Hilti_rt.Profiler.wall_ns (Hilti_rt.Profiler.find_or_create name)

(** Run an HTTP or DNS source end-to-end with a given parser kind and
    script engine; returns logs and the component time breakdown.

    @param jobs shard DNS decode+parse over this many OCaml domains via the
    flow-sharded data plane ({!run_dns_sharded_src}); each shard gets its
    own freshly-built parser.  HTTP runs serially regardless (its parse
    state is per-connection and incremental).
    @param idle_timeout evict connections idle for this long (trace time);
    honored identically by the serial and sharded DNS paths.
    @param stats_export scrape callback fired at this interval of trace
    time (the mini-bro [-stats-interval] plumbing). *)
let evaluate_src
    ~(proto :
       [ `Http of http_kind
       | `Dns of dns_kind
       | `Mqtt of mqtt_kind
       | `Ftp of ftp_kind ]) ~(engine_mode : Bro_engine.mode)
    ~(scripts : Bro_ast.script) ?(logging = true) ?jobs ?idle_timeout
    ?(stats_export : stats_export option) (src : Hilti_rt.Iosrc.t) : run_result =
  Hilti_rt.Profiler.reset_all ();
  let logger = Bro_log.create () in
  Bro_scripts.setup_logs logger;
  Bro_log.set_enabled logger logging;
  let engine = Bro_engine.load ~logger engine_mode scripts in
  Bro_engine.set_print_sink engine (fun _ -> ());
  let sink = Events.engine_sink engine in
  let stats, total_ns =
    timed (fun () ->
        match (proto, jobs) with
        | `Http kind, _ -> run_http_src ~kind ~sink ?idle_timeout ?stats_export src
        | `Dns kind, Some j when j > 0 ->
            let mk_kind _shard =
              match kind with
              | Dns_std -> Dns_std
              | Dns_pac _ -> Dns_pac (Dns_pac.load ())
            in
            run_dns_sharded_src ~shards:j ~mk_kind ?idle_timeout ?stats_export
              ~sink src
        | `Dns kind, _ -> run_dns_src ~kind ~sink ?idle_timeout ?stats_export src
        | `Mqtt kind, _ -> run_mqtt_src ~kind ~sink ?idle_timeout ?stats_export src
        | `Ftp kind, _ -> run_ftp_src ~kind ~sink ?idle_timeout ?stats_export src)
  in
  {
    logger;
    stats;
    parse_ns = profiler_ns parse_profiler;
    script_ns = profiler_ns script_profiler;
    glue_ns = profiler_ns Bro_val.glue_profiler;
    total_ns;
  }

(** [evaluate_src] over an in-memory record list (compat wrapper). *)
let evaluate
    ~(proto :
       [ `Http of http_kind
       | `Dns of dns_kind
       | `Mqtt of mqtt_kind
       | `Ftp of ftp_kind ]) ~(engine_mode : Bro_engine.mode)
    ~(scripts : Bro_ast.script) ?(logging = true) ?jobs
    (records : Pcap.record list) : run_result =
  evaluate_src ~proto ~engine_mode ~scripts ~logging ?jobs
    (Pcap.iosrc_of_records records)

(* ---- Event-configuration-driven analysis (Fig. 7) --------------------------------- *)

(** Stream a TCP source through an .evt-configured BinPAC++ analyzer: flows
    on the configured port are reassembled and each direction handed to the
    parser, whose unit hooks raise the configured events into [sink]. *)
let run_evt_src ~(loaded : Evt.loaded) ~(sink : Events.sink)
    (src : Hilti_rt.Iosrc.t) : stats =
  let stats = fresh_stats () in
  loaded.Evt.sink <- profiled_sink sink stats;
  let want_port = Hilti_types.Port.number loaded.Evt.config.Evt.port in
  let conns :
      (string, (Reassembly.t * Buffer.t) * (Reassembly.t * Buffer.t) * Flow.t)
      Hashtbl.t =
    Hashtbl.create 64
  in
  let order = ref [] in
  let mk_rs () =
    let buf = Buffer.create 256 in
    (Reassembly.create (Buffer.add_string buf), buf)
  in
  Hilti_rt.Iosrc.iter
    (fun (p : Hilti_rt.Iosrc.packet) ->
      stats.packets <- stats.packets + 1;
      match Packet.decode_opt ~ts:p.Hilti_rt.Iosrc.ts p.Hilti_rt.Iosrc.data with
      | Some ({ Packet.transport = Packet.TCP (tcp, payload); _ } as pkt) -> (
          match Packet.flow pkt with
          | Some flow
            when tcp.Tcp.src_port = want_port || tcp.Tcp.dst_port = want_port ->
              let canon, _ = Flow.canonical flow in
              let key = Flow.to_string canon in
              let orig_side, resp_side, first_flow =
                match Hashtbl.find_opt conns key with
                | Some c -> c
                | None ->
                    stats.connections <- stats.connections + 1;
                    let c = (mk_rs (), mk_rs (), flow) in
                    Hashtbl.replace conns key c;
                    order := key :: !order;
                    c
              in
              let rs, _ = if Flow.equal flow first_flow then orig_side else resp_side in
              Reassembly.segment rs ~seq:tcp.Tcp.seq
                ~syn:(Tcp.has_flag tcp Tcp.flag_syn)
                ~fin:(Tcp.has_flag tcp Tcp.flag_fin)
                payload
          | _ -> ())
      | _ -> ())
    src;
  (* Parse each direction of each connection, server side first (in SSH
     the server speaks first). *)
  List.iter
    (fun key ->
      let (_, orig_buf), (_, resp_buf), _ = Hashtbl.find conns key in
      List.iter
        (fun buf ->
          let data = Buffer.contents buf in
          if data <> "" then
            ignore (in_parse (fun () -> Evt.parse_input loaded data)))
        [ resp_buf; orig_buf ])
    (List.rev !order);
  stats

(** [run_evt_src] over an in-memory record list (compat wrapper). *)
let run_evt ~(loaded : Evt.loaded) ~(sink : Events.sink) (records : Pcap.record list)
    : stats =
  run_evt_src ~loaded ~sink (Pcap.iosrc_of_records records)
