(** The "standard" HTTP protocol parser: hand-written, maintaining explicit
    per-session state machines that record where parsing stopped — the
    traditional implementation style the paper contrasts with HILTI's
    transparent fiber-based incremental parsers (§3.2, §6.4).  Plays the
    role of Bro's manually written C++ HTTP analyzer as the comparison
    baseline for the BinPAC++ parser.

    Known (intended) semantic difference, mirroring §6.4: for
    "206 Partial Content" responses this parser does not extract body
    metadata (MIME type, length, hash), while the BinPAC++ version does —
    the paper's main source of http.log/files.log disagreement. *)

type headers = (string * string) list

type body_mode =
  | No_body
  | Fixed of int
  | Chunk_size
  | Chunk_data of int
  | Chunk_sep of int   (** CRLF after a chunk; remaining = next state's info *)
  | Trailer
  | Until_close

type phase =
  | Start_line
  | In_headers
  | In_body of body_mode
  | Failed

type t = {
  is_request : bool;
  on_request : Events.http_request -> unit;
  on_reply : Events.http_reply -> unit;
  buf : Hilti_types.Hbytes.t;  (** stream data; consumed prefix trimmed away *)
  mutable pos : int;           (** absolute offset of first unconsumed byte *)
  mutable phase : phase;
  (* current-message scratch *)
  mutable line1 : string list; (** split start line *)
  mutable headers : headers;
  mutable body : Buffer.t;
  mutable messages : int;
}

let create ~is_request ~on_request ~on_reply =
  {
    is_request;
    on_request;
    on_reply;
    buf = Hilti_types.Hbytes.create ();
    pos = 0;
    phase = Start_line;
    line1 = [];
    headers = [];
    body = Buffer.create 256;
    messages = 0;
  }

(** Stream bytes currently held — stays bounded by one in-flight message
    because consumed input is trimmed after every drain. *)
let retained t = Hilti_types.Hbytes.length t.buf

let header t name =
  let name = String.lowercase_ascii name in
  List.assoc_opt name t.headers

let reset_message t =
  t.line1 <- [];
  t.headers <- [];
  t.body <- Buffer.create 256;
  t.phase <- Start_line

let cursor t = Hilti_types.Hbytes.iter_at t.buf t.pos

(* Consume up to the next CRLF (or LF); None if no full line buffered.
   The CR strip happens on the view, so the line text is copied exactly
   once. *)
let take_line t =
  let it = cursor t in
  match Hilti_types.Hbytes.find it "\n" with
  | None -> None
  | Some nl ->
      let v = Hilti_types.Hbytes.sub_view it nl in
      let n = Hilti_types.Hbytes.view_length v in
      let n =
        if n > 0 && Hilti_types.Hbytes.get_u8 v (n - 1) = Char.code '\r' then
          n - 1
        else n
      in
      let line = Hilti_types.Hbytes.view_sub_string v 0 n in
      t.pos <- Hilti_types.Hbytes.offset nl + 1;
      Some line

(* Copy [n] buffered bytes straight into [buf] (no intermediate string);
   false if not enough data yet. *)
let take_into t n buf =
  let it = cursor t in
  if Hilti_types.Hbytes.available it < n then false
  else begin
    let v = Hilti_types.Hbytes.sub_view it (Hilti_types.Hbytes.advance it n) in
    Hilti_types.Hbytes.view_add_to_buffer v 0 n buf;
    t.pos <- t.pos + n;
    true
  end

(* Move everything still buffered into the body accumulator (Until_close). *)
let take_all_into t buf =
  let it = cursor t in
  let v = Hilti_types.Hbytes.sub_view it (Hilti_types.Hbytes.end_ t.buf) in
  Hilti_types.Hbytes.view_add_to_buffer v 0
    (Hilti_types.Hbytes.view_length v) buf;
  t.pos <- Hilti_types.Hbytes.end_offset t.buf

let split_ws s =
  String.split_on_char ' ' s |> List.filter (fun x -> x <> "")

let parse_version v =
  (* "HTTP/1.1" -> "1.1" *)
  match String.index_opt v '/' with
  | Some i -> String.sub v (i + 1) (String.length v - i - 1)
  | None -> v

let finish_request t =
  t.messages <- t.messages + 1;
  (match t.line1 with
  | meth :: uri :: version :: _ ->
      t.on_request
        {
          Events.method_ = meth;
          uri;
          version = parse_version version;
          host = Option.value ~default:"" (header t "host");
        }
  | _ -> ());
  reset_message t

let finish_reply t =
  t.messages <- t.messages + 1;
  (match t.line1 with
  | version :: code :: rest ->
      let code = int_of_string_opt code |> Option.value ~default:0 in
      let body = Buffer.contents t.body in
      let reply =
        if code = 206 then
          (* The standard parser skips body metadata on Partial Content. *)
          {
            Events.r_version = parse_version version;
            code;
            reason = String.concat " " rest;
            mime = "-";
            body_len = 0;
            body_sha1 = "";
          }
        else
          {
            Events.r_version = parse_version version;
            code;
            reason = String.concat " " rest;
            mime = Option.value ~default:"-" (header t "content-type");
            body_len = String.length body;
            body_sha1 = (if body = "" then "" else Mini_bro.Sha1.digest body);
          }
      in
      t.on_reply reply
  | _ -> ());
  reset_message t

let finish_message t = if t.is_request then finish_request t else finish_reply t

(* Decide how the body arrives once headers are complete. *)
let body_mode_of t =
  match header t "transfer-encoding" with
  | Some te when String.lowercase_ascii (String.trim te) = "chunked" -> Chunk_size
  | _ -> (
      match header t "content-length" with
      | Some cl -> (
          match int_of_string_opt (String.trim cl) with
          | Some 0 | None -> No_body
          | Some n -> Fixed n)
      | None ->
          if t.is_request then No_body
          else
            (* A reply with neither length nor chunking: body runs until
               close if the server said so, else there is no body. *)
            let close =
              match header t "connection" with
              | Some c -> String.lowercase_ascii (String.trim c) = "close"
              | None -> false
            in
            if close then Until_close else No_body)

(* One step of the state machine; false = need more data. *)
let rec step t : bool =
  match t.phase with
  | Failed -> false
  | Start_line -> (
      match take_line t with
      | Some "" -> true  (* tolerate stray blank lines between messages *)
      | Some line ->
          let parts = split_ws line in
          let plausible =
            match (t.is_request, parts) with
            | true, _ :: _ :: v :: _ -> String.length v >= 5 && String.sub v 0 5 = "HTTP/"
            | false, v :: _ :: _ -> String.length v >= 5 && String.sub v 0 5 = "HTTP/"
            | _ -> false
          in
          if plausible then begin
            t.line1 <- parts;
            t.phase <- In_headers;
            true
          end
          else begin
            (* Not HTTP: this direction carries crud; stop parsing. *)
            t.phase <- Failed;
            false
          end
      | None -> false)
  | In_headers -> (
      match take_line t with
      | Some "" ->
          (match body_mode_of t with
          | No_body -> finish_message t
          | mode -> t.phase <- In_body mode);
          true
      | Some line -> (
          match String.index_opt line ':' with
          | Some i ->
              let name = String.lowercase_ascii (String.sub line 0 i) in
              let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
              t.headers <- t.headers @ [ (name, value) ];
              true
          | None -> true (* ignore malformed header line, as Bro does *))
      | None -> false)
  | In_body No_body ->
      finish_message t;
      true
  | In_body (Fixed n) ->
      if take_into t n t.body then begin
        finish_message t;
        true
      end
      else false
  | In_body Chunk_size -> (
      match take_line t with
      | Some line -> (
          let hex = List.hd (String.split_on_char ';' line) in
          match int_of_string_opt ("0x" ^ String.trim hex) with
          | Some 0 -> t.phase <- In_body Trailer; true
          | Some n -> t.phase <- In_body (Chunk_data n); true
          | None -> t.phase <- Failed; false)
      | None -> false)
  | In_body (Chunk_data n) ->
      if take_into t n t.body then begin
        t.phase <- In_body (Chunk_sep 0);
        true
      end
      else false
  | In_body (Chunk_sep _) -> (
      match take_line t with
      | Some _ -> t.phase <- In_body Chunk_size; true
      | None -> false)
  | In_body Trailer -> (
      (* Consume trailer lines up to the final empty line. *)
      match take_line t with
      | Some "" -> finish_message t; true
      | Some _ -> true
      | None -> false)
  | In_body Until_close -> false  (* everything buffers until EOF *)

and drain t = if step t then drain t

(* Drop consumed input so retention is bounded by the message in flight. *)
let trim t = Hilti_types.Hbytes.trim t.buf (cursor t)

(** Feed reassembled stream data. *)
let feed t data =
  if t.phase <> Failed then begin
    Hilti_types.Hbytes.append t.buf data;
    (match t.phase with
    | In_body Until_close -> take_all_into t t.body
    | _ -> ());
    drain t;
    trim t
  end

(** The stream is over (FIN/RST/trace end). *)
let eof t =
  (match t.phase with
  | In_body Until_close ->
      take_all_into t t.body;
      finish_message t
  | _ -> drain t);
  trim t

let messages t = t.messages

(** The direction hit non-HTTP bytes and parsing stopped. *)
let failed t = t.phase = Failed
