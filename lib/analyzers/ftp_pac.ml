(** The BinPAC++-based FTP control-channel analyzer.  Hooks on the
    Command and Reply units fire per parsed line; the glue converts each
    into the shared {!Events.ftp_event} view.  Continuation lines of
    multi-line replies (separator "-") raise nothing, matching
    {!Ftp_std}. *)

open Binpacxx
module V = Hilti_vm.Value

let sbytes st name =
  match st with
  | V.Struct s -> (
      match !(V.struct_field s name) with
      | Some (V.Bytes b) -> Hilti_types.Hbytes.to_string b
      | _ -> ""
      | exception _ -> "")
  | _ -> ""

type t = {
  parser : Runtime.t;
  mutable on_event : Events.ftp_event -> unit;
}

let load ?(optimize = true) ?(verify = true) ?(specialize = true) () : t =
  let t_ref = ref None in
  let prepare (m : Module_ir.t) =
    List.iter
      (fun name ->
        Module_ir.add_func m
          {
            Module_ir.fname = name;
            params = [ ("self", Htype.Any) ];
            result = Htype.Void;
            locals = [];
            blocks = [];
            cc = Module_ir.Cc_c;
            hook_priority = 0;
            exported = true;
          })
      [ "Analyzer::ftp_request"; "Analyzer::ftp_reply" ];
    let hook_body hook_name callback =
      let b =
        Builder.func m ~cc:Module_ir.Cc_hook hook_name
          ~params:[ ("self", Htype.Any) ]
          ~result:Htype.Void
      in
      Builder.call b callback [ Instr.Local "self" ];
      Builder.return_ b
    in
    hook_body "FTP::Command" "Analyzer::ftp_request";
    hook_body "FTP::Reply" "Analyzer::ftp_reply"
  in
  let parser =
    Runtime.load ~optimize ~verify ~specialize ~prepare (Grammars.parse_ftp ())
  in
  let t = { parser; on_event = ignore } in
  t_ref := Some t;
  let glue f =
    Hilti_rt.Profiler.time_exclusive Mini_bro.Bro_val.glue_profiler f
  in
  Hilti_vm.Host_api.register parser.Runtime.api "Analyzer::ftp_request"
    (fun args ->
      (match (args, !t_ref) with
      | [ st ], Some t ->
          let r =
            glue (fun () ->
                { Events.cmd = sbytes st "cmd"; arg = sbytes st "arg" })
          in
          t.on_event (Events.F_request r)
      | _ -> ());
      V.Null);
  Hilti_vm.Host_api.register parser.Runtime.api "Analyzer::ftp_reply"
    (fun args ->
      (match (args, !t_ref) with
      | [ st ], Some t ->
          if sbytes st "sep" <> "-" then begin
            let r =
              glue (fun () ->
                  {
                    Events.code =
                      int_of_string_opt (sbytes st "code")
                      |> Option.value ~default:0;
                    msg = sbytes st "text";
                  })
            in
            t.on_event (Events.F_reply r)
          end
      | _ -> ());
      V.Null);
  t

(* ---- Per-connection-direction sessions ------------------------------------------ *)

type session = { t : t; cb : Events.ftp_event -> unit; s : Runtime.session }

(** [is_command]: the client->server direction carries commands. *)
let session t ~is_command ~on_event =
  let unit_name = if is_command then "Commands" else "Replies" in
  { t; cb = on_event; s = Runtime.session t.parser ~unit_name }

let with_cb (ss : session) f =
  let saved = ss.t.on_event in
  ss.t.on_event <- ss.cb;
  Fun.protect ~finally:(fun () -> ss.t.on_event <- saved) f

let feed (ss : session) data : Runtime.status =
  with_cb ss (fun () -> Runtime.feed ss.s data)

let eof (ss : session) : Runtime.status =
  with_cb ss (fun () -> Runtime.finish ss.s)
