(** The BinPAC++-based MQTT analyzer: drives the HILTI-compiled MQTT
    grammar over reassembled streams.  A single hook on the Packet unit
    fires once per completed control packet; the host glue converts the
    unit struct into the shared {!Events.mqtt_event} view — the same
    currency {!Mqtt_std} produces, which is what makes the two directly
    comparable under the differential fuzzer. *)

open Binpacxx
module V = Hilti_vm.Value

let sfield st name =
  match st with
  | V.Struct s -> (
      match !(V.struct_field s name) with v -> v | exception _ -> None)
  | _ -> None

let sbytes st name =
  match sfield st name with
  | Some (V.Bytes b) -> Hilti_types.Hbytes.to_string b
  | _ -> ""

let sint st name =
  match sfield st name with Some (V.Int i) -> Int64.to_int i | _ -> 0

let slist st name =
  match sfield st name with
  | Some (V.List d) -> Hilti_vm.Deque.to_list d
  | _ -> []

(* A Str sub-unit's payload. *)
let sstr st name =
  match sfield st name with Some s -> sbytes s "data" | None -> ""

let event_of_unit st : Events.mqtt_event =
  match sint st "ptype" with
  | 1 ->
      Events.M_connect
        {
          Events.client_id = sstr st "client_id";
          proto = sstr st "proto";
          version = sint st "connver";
          keepalive = sint st "keepalive";
        }
  | 2 -> Events.M_connack (sint st "retcode")
  | 3 ->
      Events.M_publish
        {
          Events.topic = sstr st "topic";
          qos = sint st "qos";
          payload_len = String.length (sbytes st "payload");
        }
  | 8 ->
      Events.M_subscribe
        {
          Events.s_msgid = sint st "msgid";
          topics =
            List.map (fun s -> (sstr s "topic", sint s "sqos")) (slist st "topics");
        }
  | 9 -> Events.M_suback (sint st "msgid")
  | 14 -> Events.M_disconnect
  | p -> Events.M_other p

(* ---- The loaded parser, shared across connections ---------------------------- *)

type t = {
  parser : Runtime.t;
  (* The driver points this at the session being fed before resuming its
     fiber, so the hook callback knows where to deliver the packet. *)
  mutable on_packet : Events.mqtt_event -> unit;
}

(** Load the MQTT grammar with the packet hook attached.  [verify] /
    [specialize] pick the VM dispatch loop — the fuzzer runs the same
    grammar on different loops as a differential pair. *)
let load ?(optimize = true) ?(verify = true) ?(specialize = true) () : t =
  let t_ref = ref None in
  let prepare (m : Module_ir.t) =
    Module_ir.add_func m
      {
        Module_ir.fname = "Analyzer::mqtt_packet";
        params = [ ("self", Htype.Any) ];
        result = Htype.Void;
        locals = [];
        blocks = [];
        cc = Module_ir.Cc_c;
        hook_priority = 0;
        exported = true;
      };
    let b =
      Builder.func m ~cc:Module_ir.Cc_hook "MQTT::Packet"
        ~params:[ ("self", Htype.Any) ]
        ~result:Htype.Void
    in
    Builder.call b "Analyzer::mqtt_packet" [ Instr.Local "self" ];
    Builder.return_ b
  in
  let parser =
    Runtime.load ~optimize ~verify ~specialize ~prepare (Grammars.parse_mqtt ())
  in
  let t = { parser; on_packet = ignore } in
  t_ref := Some t;
  Hilti_vm.Host_api.register parser.Runtime.api "Analyzer::mqtt_packet"
    (fun args ->
      (match (args, !t_ref) with
      | [ st ], Some t ->
          let ev =
            Hilti_rt.Profiler.time_exclusive Mini_bro.Bro_val.glue_profiler
              (fun () -> event_of_unit st)
          in
          t.on_packet ev
      | _ -> ());
      V.Null);
  t

(* ---- Per-connection-direction sessions ------------------------------------------ *)

type session = { t : t; cb : Events.mqtt_event -> unit; s : Runtime.session }

let session t ~on_packet = { t; cb = on_packet; s = Runtime.session t.parser ~unit_name:"Packets" }

let with_cb (ss : session) f =
  let saved = ss.t.on_packet in
  ss.t.on_packet <- ss.cb;
  Fun.protect ~finally:(fun () -> ss.t.on_packet <- saved) f

(** Feed reassembled stream data; packet events fire from inside the
    parse.  Returns the parse status so callers can track failures. *)
let feed (ss : session) data : Runtime.status =
  with_cb ss (fun () -> Runtime.feed ss.s data)

let eof (ss : session) : Runtime.status =
  with_cb ss (fun () -> Runtime.finish ss.s)
