(** The "standard" MQTT protocol parser: a hand-written incremental decoder
    for the MQTT 3.1.1 control-packet subset, playing the manually coded
    baseline role against the BinPAC++ grammar (§6.4).

    It deliberately transcribes the grammar's semantics byte for byte —
    including its quirks: the fixed-header width is derived from the
    remaining-length {e value} (assuming minimal varint encoding), packet
    fields are read from the stream rather than clamped to the declared
    remaining length (a lying length surfaces as a negative trailer, not a
    short read), and SUBSCRIBE topic lists check their stop condition only
    {e after} each element.  The differential fuzzer holds the two
    implementations to exactly this common behavior.

    The unconsumed stream lives in an {!Hilti_types.Hbytes.t}: feeding
    appends in place, consuming a packet is an O(1) trim, and the decoder
    reads through a view — no per-chunk concatenation or per-packet
    leftover copy. *)

open Hilti_types

exception Bad of string
exception Need_more

type t = {
  on_packet : Events.mqtt_event -> unit;
  data : Hbytes.t;  (** unconsumed stream bytes *)
  mutable failed : string option;
  mutable at_eof : bool;
  mutable messages : int;
}

let create ~on_packet =
  { on_packet; data = Hbytes.create (); failed = None; at_eof = false;
    messages = 0 }

let failed t = t.failed

(* Cursor primitives: past end-of-buffer means "wait for more input" while
   the stream is live and "truncated" once it is over — the same split the
   fiber-based parser gets from a frozen bytes object. *)

let u8 t v pos =
  if !pos >= Hbytes.view_length v then
    if t.at_eof then raise (Bad "truncated") else raise Need_more
  else begin
    let b = Hbytes.get_u8 v !pos in
    incr pos;
    b
  end

let u16 t v pos =
  let hi = u8 t v pos in
  let lo = u8 t v pos in
  (hi lsl 8) lor lo

(* Bounds-check and advance without materializing the bytes — payload and
   trailer consumption only needs the length. *)
let skip t v pos n =
  if n < 0 then raise (Bad "negative length");
  if !pos + n > Hbytes.view_length v then
    if t.at_eof then raise (Bad "truncated") else raise Need_more
  else pos := !pos + n

let take t v pos n =
  if n < 0 then raise (Bad "negative length");
  if !pos + n > Hbytes.view_length v then
    if t.at_eof then raise (Bad "truncated") else raise Need_more
  else begin
    let s = Hbytes.view_sub_string v !pos n in
    pos := !pos + n;
    s
  end

(* Length-prefixed string (MQTT 1.5.3). *)
let str t v pos =
  let len = u16 t v pos in
  take t v pos len

(* Base-128 remaining length: 7 data bits per byte, little groups first,
   bit 7 = continuation, at most 4 bytes — as the grammar's [varint]. *)
let varint t v pos =
  let n = ref 0 and shift = ref 0 and cont = ref true in
  while !cont do
    if !shift >= 28 then raise (Bad "varint longer than 4 bytes");
    let b = u8 t v pos in
    n := !n lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    cont := b land 0x80 <> 0
  done;
  !n

(* Decode one control packet starting at [!pos]; advances [pos] past it and
   returns the event view.  Mirrors the MQTT grammar field for field. *)
let decode_packet t v pos : Events.mqtt_event =
  let pstart = !pos in
  let offset () = !pos - pstart in
  let tf = u8 t v pos in
  let ptype = tf lsr 4 in
  let qos = (tf lsr 1) land 3 in
  let remlen = varint t v pos in
  (* Header width from the value, as the grammar computes it. *)
  let hdr =
    if remlen >= 2097152 then 5
    else if remlen >= 16384 then 4
    else if remlen >= 128 then 3
    else 2
  in
  let trailer () = skip t v pos (remlen + hdr - offset ()) in
  match ptype with
  | 1 ->
      let proto = str t v pos in
      let version = u8 t v pos in
      let _flags = u8 t v pos in
      let keepalive = u16 t v pos in
      let client_id = str t v pos in
      trailer ();
      Events.M_connect { Events.client_id; proto; version; keepalive }
  | 2 ->
      let _ackflags = u8 t v pos in
      let retcode = u8 t v pos in
      trailer ();
      Events.M_connack retcode
  | 3 ->
      let topic = str t v pos in
      let _msgid = if qos > 0 then u16 t v pos else 0 in
      let payload_len = remlen + hdr - offset () in
      skip t v pos payload_len;
      Events.M_publish { Events.topic; qos; payload_len }
  | 8 ->
      let msgid = u16 t v pos in
      (* Stop condition checked after each element, as &until_elem does. *)
      let topics = ref [] in
      let stop = ref false in
      while not !stop do
        let topic = str t v pos in
        let sqos = u8 t v pos in
        topics := (topic, sqos) :: !topics;
        if offset () - hdr >= remlen then stop := true
      done;
      Events.M_subscribe { Events.s_msgid = msgid; topics = List.rev !topics }
  | 9 ->
      let _msgid = u16 t v pos in
      skip t v pos (remlen + hdr - offset ());
      Events.M_suback _msgid
  | 4 | 10 ->
      let _msgid = u16 t v pos in
      trailer ();
      Events.M_other ptype
  | 14 ->
      trailer ();
      Events.M_disconnect
  | _ ->
      trailer ();
      Events.M_other ptype

let drain t =
  try
    let continue_ = ref true in
    while !continue_ && Hbytes.length t.data > 0 do
      let v = Hbytes.view t.data in
      let pos = ref 0 in
      match decode_packet t v pos with
      | ev ->
          Hbytes.trim_front t.data !pos;
          t.messages <- t.messages + 1;
          t.on_packet ev
      | exception Need_more -> continue_ := false
    done
  with Bad msg -> t.failed <- Some msg

(** Feed reassembled stream data. *)
let feed t chunk =
  if t.failed = None then begin
    Hbytes.append t.data chunk;
    drain t
  end

(** The stream is over; a packet still in flight is a truncation error. *)
let eof t =
  if t.failed = None then begin
    t.at_eof <- true;
    drain t
  end

let messages t = t.messages
