(** Event definitions shared by the standard and BinPAC++-based analyzers:
    both must raise byte-identical event streams (modulo the documented
    semantic differences of §6.4) into the Mini-Bro engine. *)

open Hilti_types
open Mini_bro

(** The Bro [connection] record value for a flow. *)
let connection_val ~uid ~(flow : Hilti_net.Flow.t) ~start_time : Bro_val.t =
  Bro_val.new_record "connection"
    [ ("uid", Bro_val.Vstring uid);
      ("start_time", Bro_val.Vtime start_time);
      ( "id",
        Bro_val.new_record "conn_id"
          [ ("orig_h", Bro_val.Vaddr flow.Hilti_net.Flow.src);
            ("orig_p", Bro_val.Vport flow.Hilti_net.Flow.src_port);
            ("resp_h", Bro_val.Vaddr flow.Hilti_net.Flow.dst);
            ("resp_p", Bro_val.Vport flow.Hilti_net.Flow.dst_port) ] ) ]

type http_request = {
  method_ : string;
  uri : string;
  version : string;
  host : string;
}

type http_reply = {
  r_version : string;
  code : int;
  reason : string;
  mime : string;
  body_len : int;
  body_sha1 : string;
}

type mqtt_connect = {
  client_id : string;
  proto : string;
  version : int;
  keepalive : int;
}

type mqtt_publish = { topic : string; qos : int; payload_len : int }

type mqtt_subscribe = { s_msgid : int; topics : (string * int) list }

(** One decoded MQTT control packet, as both the hand-written and the
    BinPAC++ analyzer report it — the common currency the differential
    fuzzer compares. *)
type mqtt_event =
  | M_connect of mqtt_connect
  | M_connack of int  (** return code *)
  | M_publish of mqtt_publish
  | M_subscribe of mqtt_subscribe
  | M_suback of int  (** msgid *)
  | M_disconnect
  | M_other of int  (** any other packet type, skipped by length *)

type ftp_request = { cmd : string; arg : string }

type ftp_reply = { code : int; msg : string }

type ftp_event = F_request of ftp_request | F_reply of ftp_reply

type dns_request = { q_id : int; query : string; qtype : int }

type dns_reply = {
  r_id : int;
  rcode : int;
  answers : string list;
  ttls : int list;
}

(** A sink for analyzer events; the driver wires it to a Bro engine. *)
type sink = {
  raise_event : string -> Bro_val.t list -> unit;
  set_time : Time_ns.t -> unit;
}

let engine_sink (engine : Bro_engine.t) : sink =
  {
    raise_event = (fun name args -> Bro_engine.dispatch engine name args);
    set_time = (fun ts -> Bro_engine.set_network_time engine ts);
  }

let null_sink : sink = { raise_event = (fun _ _ -> ()); set_time = (fun _ -> ()) }

(* ---- Raising the concrete events -------------------------------------------- *)

let vstr s = Bro_val.Vstring s

(* Interned [Vcount] values for the 16-bit range: DNS ids, qtypes, rcodes,
   HTTP status codes, ports — almost every count an analyzer raises.
   [Vcount] carries an immutable boxed int64, so sharing is safe, and the
   two allocations per count (box + variant) on the per-event path become
   an array read.  ~2 MB, built on first event. *)
let small_counts =
  lazy (Array.init 65536 (fun i -> Bro_val.Vcount (Int64.of_int i)))

let vcount i =
  if i >= 0 && i < 65536 then (Lazy.force small_counts).(i)
  else Bro_val.Vcount (Int64.of_int i)

(* Build a Bro vector straight off the list — one traversal, no
   intermediate [List.map] list; this sits on the per-reply fast path. *)
let vec_map f l =
  let d = Hilti_vm.Deque.create () in
  List.iter (fun x -> Hilti_vm.Deque.push_back d (f x)) l;
  Bro_val.Vvector d

let raise_connection_established sink conn =
  sink.raise_event "connection_established" [ conn ]

let raise_connection_state_remove sink conn =
  sink.raise_event "connection_state_remove" [ conn ]

let raise_http_request sink conn (r : http_request) =
  sink.raise_event "http_request"
    [ conn; vstr r.method_; vstr r.uri; vstr r.version; vstr r.host ]

let raise_http_reply sink conn (r : http_reply) =
  sink.raise_event "http_reply"
    [ conn; vstr r.r_version; vcount r.code; vstr r.reason; vstr r.mime;
      vcount r.body_len; vstr r.body_sha1 ]

let raise_mqtt_connect sink conn (r : mqtt_connect) =
  sink.raise_event "mqtt_connect"
    [ conn; vstr r.client_id; vstr r.proto; vcount r.version;
      vcount r.keepalive ]

let raise_mqtt_connack sink conn ~retcode =
  sink.raise_event "mqtt_connack" [ conn; vcount retcode ]

let raise_mqtt_publish sink conn (r : mqtt_publish) =
  sink.raise_event "mqtt_publish"
    [ conn; vstr r.topic; vcount r.qos; vcount r.payload_len ]

let raise_mqtt_subscribe sink conn (r : mqtt_subscribe) =
  sink.raise_event "mqtt_subscribe"
    [ conn; vcount r.s_msgid; vec_map (fun (t, _) -> vstr t) r.topics ]

let raise_mqtt_suback sink conn ~msgid =
  sink.raise_event "mqtt_suback" [ conn; vcount msgid ]

let raise_mqtt_disconnect sink conn =
  sink.raise_event "mqtt_disconnect" [ conn ]

(** Dispatch a decoded MQTT packet to its concrete event.  [M_other]
    raises nothing: unknown control packets are skipped by length. *)
let raise_mqtt sink conn = function
  | M_connect r -> raise_mqtt_connect sink conn r
  | M_connack retcode -> raise_mqtt_connack sink conn ~retcode
  | M_publish r -> raise_mqtt_publish sink conn r
  | M_subscribe r -> raise_mqtt_subscribe sink conn r
  | M_suback msgid -> raise_mqtt_suback sink conn ~msgid
  | M_disconnect -> raise_mqtt_disconnect sink conn
  | M_other _ -> ()

let raise_ftp_request sink conn (r : ftp_request) =
  sink.raise_event "ftp_request" [ conn; vstr r.cmd; vstr r.arg ]

let raise_ftp_reply sink conn (r : ftp_reply) =
  sink.raise_event "ftp_reply" [ conn; vcount r.code; vstr r.msg ]

let raise_ftp sink conn = function
  | F_request r -> raise_ftp_request sink conn r
  | F_reply r -> raise_ftp_reply sink conn r

(** A PORT command or 227 passive reply announced a coming data connection
    to [host]:[port]; raised on the control connection (§6.4 cross-flow). *)
let raise_ftp_data sink conn ~host ~port =
  sink.raise_event "ftp_data" [ conn; Bro_val.Vaddr host; Bro_val.Vport port ]

let raise_dns_request sink conn (r : dns_request) =
  sink.raise_event "dns_request" [ conn; vcount r.q_id; vstr r.query; vcount r.qtype ]

let raise_dns_reply sink conn (r : dns_reply) =
  sink.raise_event "dns_reply"
    [ conn; vcount r.r_id; vcount r.rcode;
      vec_map vstr r.answers; vec_map vcount r.ttls ]
