(** The "standard" DNS protocol parser: hand-written wire-format decoding
    with RFC 1035 name compression, standing in for Bro's C++ DNS analyzer
    (§6.4).  Decoding runs directly over an {!Hilti_types.Hbytes.view} of
    the packet payload — no per-packet string materialization; only the
    semantic field values (names, rendered rdata) become strings.

    Known (intended) semantic differences, mirroring the paper's findings:
    - TXT records: this parser extracts {e only the first} character
      string, the BinPAC++ version extracts all of them;
    - non-DNS traffic on port 53: this parser aborts more eagerly. *)

open Hilti_types

exception Bad_dns of string

let fail msg = raise (Bad_dns msg)

type rr = { rname : string; rtype : int; ttl : int; rdata : string }

type message = {
  id : int;
  is_response : bool;
  rcode : int;
  qname : string;
  qtype : int;
  answers : rr list;
}

(** Reusable per-session scratch: the label-accumulation buffer lives
    across packets instead of being allocated per name. *)
type scratch = { nbuf : Buffer.t }

let make_scratch () = { nbuf = Buffer.create 64 }

let u8 v off =
  if off >= Hbytes.view_length v then fail "truncated" else Hbytes.get_u8 v off

let u16 v off =
  try Hbytes.get_u16 v off with Hbytes.Out_of_range -> fail "truncated"

let u32 v off =
  try Hbytes.get_u32 v off with Hbytes.Out_of_range -> fail "truncated"

(* Dotted-quad rendering without the [Printf] machinery: A-record rdata is
   the most common answer payload, so its formatting is on the per-packet
   path. *)
let dotted_quad a b c d =
  let buf = Bytes.create 15 in
  let pos = ref 0 in
  let put n =
    if n >= 100 then begin
      Bytes.unsafe_set buf !pos (Char.unsafe_chr (48 + (n / 100)));
      incr pos
    end;
    if n >= 10 then begin
      Bytes.unsafe_set buf !pos (Char.unsafe_chr (48 + (n / 10 mod 10)));
      incr pos
    end;
    Bytes.unsafe_set buf !pos (Char.unsafe_chr (48 + (n mod 10)));
    incr pos
  in
  put a;
  Bytes.unsafe_set buf !pos '.';
  incr pos;
  put b;
  Bytes.unsafe_set buf !pos '.';
  incr pos;
  put c;
  Bytes.unsafe_set buf !pos '.';
  incr pos;
  put d;
  Bytes.sub_string buf 0 !pos

(* Decode a possibly-compressed name; returns (name, next offset). *)
let parse_name sc v off =
  let buf = sc.nbuf in
  Buffer.clear buf;
  let rec go off jumped ret steps =
    if steps > 255 then fail "compression loop";
    let len = u8 v off in
    if len = 0 then if jumped then ret else off + 1
    else if len land 0xc0 = 0xc0 then begin
      let ptr = ((len land 0x3f) lsl 8) lor u8 v (off + 1) in
      let ret = if jumped then ret else off + 2 in
      go ptr true ret (steps + 1)
    end
    else begin
      if off + 1 + len > Hbytes.view_length v then fail "truncated label";
      if Buffer.length buf > 0 then Buffer.add_char buf '.';
      Hbytes.view_add_to_buffer v (off + 1) len buf;
      go (off + 1 + len) jumped ret (steps + 1)
    end
  in
  let next = go off false 0 0 in
  (Buffer.contents buf, next)

(* Walk a possibly-compressed name without materializing it: same
   traversal and failure modes as [parse_name], no buffer writes. *)
let skip_name v off =
  let rec go off jumped ret steps =
    if steps > 255 then fail "compression loop";
    let len = u8 v off in
    if len = 0 then if jumped then ret else off + 1
    else if len land 0xc0 = 0xc0 then begin
      let ptr = ((len land 0x3f) lsl 8) lor u8 v (off + 1) in
      let ret = if jumped then ret else off + 2 in
      go ptr true ret (steps + 1)
    end
    else begin
      if off + 1 + len > Hbytes.view_length v then fail "truncated label";
      go (off + 1 + len) jumped ret (steps + 1)
    end
  in
  go off false 0 0

(* Validate a resource record without rendering it — the
   authority/additional sections are checked for well-formedness (same
   failure modes as [parse_rr], including name-compression loops inside
   rdata) but produce no strings, since dns.log only carries answers. *)
let skip_rr v off =
  let off = skip_name v off in
  let rtype = u16 v off in
  let rdlength = u16 v (off + 8) in
  let rd_off = off + 10 in
  if rd_off + rdlength > Hbytes.view_length v then fail "truncated rdata";
  (match rtype with
  | 2 | 5 | 12 -> ignore (skip_name v rd_off)
  | 15 -> ignore (skip_name v (rd_off + 2))
  | _ -> ());
  rd_off + rdlength

let parse_rr sc v off =
  let rname, off = parse_name sc v off in
  let rtype = u16 v off in
  let ttl = u32 v (off + 4) in
  let rdlength = u16 v (off + 8) in
  let rd_off = off + 10 in
  if rd_off + rdlength > Hbytes.view_length v then fail "truncated rdata";
  (* Render rdata by type, as dns.log's answers column expects. *)
  let rdata =
    match rtype with
    | 1 when rdlength = 4 ->
        dotted_quad (u8 v rd_off) (u8 v (rd_off + 1)) (u8 v (rd_off + 2))
          (u8 v (rd_off + 3))
    | 2 | 5 | 12 ->
        let name, _ = parse_name sc v rd_off in
        name
    | 15 ->
        let pref = u16 v rd_off in
        let name, _ = parse_name sc v (rd_off + 2) in
        string_of_int pref ^ " " ^ name
    | 16 ->
        (* TXT: the standard parser takes only the first string (§6.4). *)
        if rdlength = 0 then ""
        else begin
          let slen = u8 v rd_off in
          let slen = min slen (rdlength - 1) in
          Hbytes.view_sub_string v (rd_off + 1) slen
        end
    | _ -> Printf.sprintf "<rd:%d bytes>" rdlength
  in
  ({ rname; rtype; ttl; rdata }, rd_off + rdlength)

let parse_view_exn sc (v : Hbytes.view) : message =
  if Hbytes.view_length v < 12 then fail "short header";
  let id = u16 v 0 in
  let flags = u16 v 2 in
  let qdcount = u16 v 4 in
  let ancount = u16 v 6 in
  let nscount = u16 v 8 in
  let arcount = u16 v 10 in
  (* Eager sanity checks: absurd counts mean not-DNS. *)
  if qdcount > 8 || ancount > 64 || nscount > 64 || arcount > 64 then
    fail "implausible section counts";
  let opcode = (flags lsr 11) land 0xf in
  if opcode > 5 then fail "bad opcode";
  let off = ref 12 in
  let qname = ref "" and qtype = ref 0 in
  for q = 0 to qdcount - 1 do
    let name, next = parse_name sc v !off in
    if q = 0 then begin
      qname := name;
      qtype := u16 v next
    end;
    off := next + 4
  done;
  let answers = ref [] in
  for _ = 1 to ancount do
    let rr, next = parse_rr sc v !off in
    answers := rr :: !answers;
    off := next
  done;
  (* Authority/additional records are validated but not reported, as
     dns.log only carries answers — no strings are materialized. *)
  for _ = 1 to nscount + arcount do
    off := skip_rr v !off
  done;
  {
    id;
    is_response = flags land 0x8000 <> 0;
    rcode = flags land 0xf;
    qname = !qname;
    qtype = !qtype;
    answers = List.rev !answers;
  }

(** Parse a DNS datagram straight out of a payload view.  Raises
    {!Bad_dns} on anything that does not look like DNS — this parser
    gives up quickly on port-53 crud.  All decode failures, including any
    residual out-of-bounds access on truncated input, surface as
    [Bad_dns]: the exception contract the fuzzer enforces on the
    hand-written baseline. *)
let parse_view ?scratch (v : Hbytes.view) : message =
  let sc = match scratch with Some sc -> sc | None -> make_scratch () in
  try parse_view_exn sc v with
  | Invalid_argument m | Failure m -> fail ("bounds: " ^ m)
  | Hbytes.Out_of_range -> fail "bounds: out of range"

(** String entry point (fuzzer oracle, tests): wraps the string in a
    zero-copy frozen view. *)
let parse (s : string) : message = parse_view (Hbytes.view_of_string s)

let to_request (m : message) : Events.dns_request =
  { Events.q_id = m.id; query = m.qname; qtype = m.qtype }

let to_reply (m : message) : Events.dns_reply =
  {
    Events.r_id = m.id;
    rcode = m.rcode;
    answers = List.map (fun rr -> rr.rdata) m.answers;
    ttls = List.map (fun rr -> rr.ttl) m.answers;
  }
