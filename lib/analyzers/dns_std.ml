(** The "standard" DNS protocol parser: hand-written wire-format decoding
    with RFC 1035 name compression, standing in for Bro's C++ DNS analyzer
    (§6.4).

    Known (intended) semantic differences, mirroring the paper's findings:
    - TXT records: this parser extracts {e only the first} character
      string, the BinPAC++ version extracts all of them;
    - non-DNS traffic on port 53: this parser aborts more eagerly. *)

exception Bad_dns of string

let fail msg = raise (Bad_dns msg)

type rr = { rname : string; rtype : int; ttl : int; rdata : string }

type message = {
  id : int;
  is_response : bool;
  rcode : int;
  qname : string;
  qtype : int;
  answers : rr list;
}

let u8 s off = if off >= String.length s then fail "truncated" else Char.code s.[off]

let u16 s off = (u8 s off lsl 8) lor u8 s (off + 1)

let u32 s off = (u16 s off lsl 16) lor u16 s (off + 2)

(* Decode a possibly-compressed name; returns (name, next offset). *)
let parse_name s off =
  let buf = Buffer.create 32 in
  let rec go off jumped ret steps =
    if steps > 255 then fail "compression loop";
    let len = u8 s off in
    if len = 0 then if jumped then ret else off + 1
    else if len land 0xc0 = 0xc0 then begin
      let ptr = ((len land 0x3f) lsl 8) lor u8 s (off + 1) in
      let ret = if jumped then ret else off + 2 in
      go ptr true ret (steps + 1)
    end
    else begin
      if off + 1 + len > String.length s then fail "truncated label";
      if Buffer.length buf > 0 then Buffer.add_char buf '.';
      Buffer.add_string buf (String.sub s (off + 1) len);
      go (off + 1 + len) jumped ret (steps + 1)
    end
  in
  let next = go off false 0 0 in
  (Buffer.contents buf, next)

let parse_rr s off =
  let rname, off = parse_name s off in
  let rtype = u16 s off in
  let ttl = u32 s (off + 4) in
  let rdlength = u16 s (off + 8) in
  let rd_off = off + 10 in
  if rd_off + rdlength > String.length s then fail "truncated rdata";
  (* Render rdata by type, as dns.log's answers column expects. *)
  let rdata =
    match rtype with
    | 1 when rdlength = 4 ->
        Printf.sprintf "%d.%d.%d.%d" (u8 s rd_off) (u8 s (rd_off + 1))
          (u8 s (rd_off + 2)) (u8 s (rd_off + 3))
    | 2 | 5 | 12 ->
        let name, _ = parse_name s rd_off in
        name
    | 15 ->
        let pref = u16 s rd_off in
        let name, _ = parse_name s (rd_off + 2) in
        Printf.sprintf "%d %s" pref name
    | 16 ->
        (* TXT: the standard parser takes only the first string (§6.4). *)
        if rdlength = 0 then ""
        else begin
          let slen = u8 s rd_off in
          let slen = min slen (rdlength - 1) in
          String.sub s (rd_off + 1) slen
        end
    | _ -> Printf.sprintf "<rd:%d bytes>" rdlength
  in
  ({ rname; rtype; ttl; rdata }, rd_off + rdlength)

let parse_exn (s : string) : message =
  if String.length s < 12 then fail "short header";
  let id = u16 s 0 in
  let flags = u16 s 2 in
  let qdcount = u16 s 4 in
  let ancount = u16 s 6 in
  let nscount = u16 s 8 in
  let arcount = u16 s 10 in
  (* Eager sanity checks: absurd counts mean not-DNS. *)
  if qdcount > 8 || ancount > 64 || nscount > 64 || arcount > 64 then
    fail "implausible section counts";
  let opcode = (flags lsr 11) land 0xf in
  if opcode > 5 then fail "bad opcode";
  let off = ref 12 in
  let qname = ref "" and qtype = ref 0 in
  for q = 0 to qdcount - 1 do
    let name, next = parse_name s !off in
    if q = 0 then begin
      qname := name;
      qtype := u16 s next
    end;
    off := next + 4
  done;
  let answers = ref [] in
  for _ = 1 to ancount do
    let rr, next = parse_rr s !off in
    answers := rr :: !answers;
    off := next
  done;
  (* Authority/additional records are parsed (validating the format) but
     not reported, as dns.log only carries answers. *)
  for _ = 1 to nscount + arcount do
    let _, next = parse_rr s !off in
    off := next
  done;
  {
    id;
    is_response = flags land 0x8000 <> 0;
    rcode = flags land 0xf;
    qname = !qname;
    qtype = !qtype;
    answers = List.rev !answers;
  }

(** Parse a DNS datagram.  Raises {!Bad_dns} on anything that does not
    look like DNS — this parser gives up quickly on port-53 crud.  All
    decode failures, including any residual out-of-bounds access on
    truncated input, surface as [Bad_dns]: the exception contract the
    fuzzer enforces on the hand-written baseline. *)
let parse (s : string) : message =
  try parse_exn s with Invalid_argument m | Failure m -> fail ("bounds: " ^ m)

let to_request (m : message) : Events.dns_request =
  { Events.q_id = m.id; query = m.qname; qtype = m.qtype }

let to_reply (m : message) : Events.dns_reply =
  {
    Events.r_id = m.id;
    rcode = m.rcode;
    answers = List.map (fun rr -> rr.rdata) m.answers;
    ttls = List.map (fun rr -> rr.ttl) m.answers;
  }
