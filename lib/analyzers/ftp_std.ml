(** The "standard" FTP control-channel parser: hand-written line splitting
    and command/reply decoding, the manual baseline against the BinPAC++
    FTP grammar.  Like {!Mqtt_std} it transcribes the grammar's semantics
    exactly: command verbs are the maximal [A-Za-z][A-Za-z0-9]* prefix,
    only spaces separate verb and argument, reply codes are exactly three
    digits, and a "-" separator marks a continuation line of a multi-line
    reply (no event is raised for those). *)

open Hilti_types

type t = {
  is_command : bool;  (** client->server direction carries commands *)
  on_event : Events.ftp_event -> unit;
  buf : Hbytes.t;
  mutable failed : string option;
  mutable messages : int;
}

let create ~is_command ~on_event =
  { is_command; on_event; buf = Hbytes.create (); failed = None; messages = 0 }

let failed t = t.failed

let is_alpha c = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z')
let is_alnum c = is_alpha c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* One complete line, CR/LF stripped.  Grammar equivalence notes: the
   command verb must start alphabetic; anything else is a token mismatch
   that kills the direction, exactly as the grammar's ParseError does. *)
let handle_line t line =
  if t.is_command then begin
    let n = String.length line in
    if n = 0 || not (is_alpha line.[0]) then t.failed <- Some "bad command verb"
    else begin
      let i = ref 1 in
      while !i < n && is_alnum line.[!i] do incr i done;
      let cmd = String.sub line 0 !i in
      while !i < n && line.[!i] = ' ' do incr i done;
      let arg = String.sub line !i (n - !i) in
      t.messages <- t.messages + 1;
      t.on_event (Events.F_request { Events.cmd; arg })
    end
  end
  else begin
    let n = String.length line in
    if n < 3 || not (is_digit line.[0] && is_digit line.[1] && is_digit line.[2])
    then t.failed <- Some "bad reply code"
    else begin
      let code = int_of_string (String.sub line 0 3) in
      let sep, text =
        if n = 3 then ("", "")
        else
          match line.[3] with
          | '-' -> ("-", String.sub line 4 (n - 4))
          | ' ' -> (" ", String.sub line 4 (n - 4))
          | _ -> ("", String.sub line 3 (n - 3))
      in
      t.messages <- t.messages + 1;
      (* Continuation lines of a multi-line reply raise nothing. *)
      if sep <> "-" then t.on_event (Events.F_reply { Events.code; msg = text })
    end
  end

(* Line terminator transcribed from the grammar: text stops at the first
   CR or LF, then /\r?\n/ must follow — a bare CR not followed by LF is a
   parse error, and a CR at the end of the buffer waits for more data.
   The buffered stream is an Hbytes object: scanning goes through a view
   and consuming a line is an O(1) trim — only the line text itself is
   materialized. *)
let drain t =
  let rec go () =
    if t.failed = None then begin
      let v = Hbytes.view t.buf in
      let n = Hbytes.view_length v in
      let i =
        match (Hbytes.find_byte v '\r', Hbytes.find_byte v '\n') with
        | Some a, Some b -> min a b
        | Some a, None | None, Some a -> a
        | None, None -> n
      in
      if i < n then begin
        let line = Hbytes.view_sub_string v 0 i in
        let consume upto =
          Hbytes.trim_front t.buf upto;
          handle_line t line;
          go ()
        in
        if Hbytes.get_u8 v i = Char.code '\n' then consume (i + 1)
        else if i + 1 < n then
          if Hbytes.get_u8 v (i + 1) = Char.code '\n' then consume (i + 2)
          else t.failed <- Some "bad line terminator"
        (* else: CR is the last byte — wait for the LF *)
      end
    end
  in
  go ()

(** Feed reassembled stream data. *)
let feed t chunk =
  if t.failed = None then begin
    Hbytes.append t.buf chunk;
    drain t
  end

(** The stream is over; a partial line still buffered is a truncation. *)
let eof t =
  if t.failed = None then begin
    drain t;
    if t.failed = None && Hbytes.length t.buf > 0 then
      t.failed <- Some "truncated line"
  end

let messages t = t.messages
