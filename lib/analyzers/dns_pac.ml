(** The BinPAC++-based DNS analyzer: parses each datagram with the
    HILTI-compiled DNS parser and renders the same event arguments as the
    standard analyzer — except for the documented §6.4 differences (all
    TXT strings instead of just the first; less eager rejection of port-53
    crud). *)

open Binpacxx
module V = Hilti_vm.Value

type t = { parser : Runtime.t }

let load ?(optimize = true) ?(specialize = true) () : t =
  { parser = Runtime.load ~optimize ~specialize (Grammars.parse_dns ()) }

let sint st name =
  match Http_pac.sfield st name with
  | Some (V.Int i) -> Int64.to_int i
  | _ -> 0

let sbytes = Http_pac.sbytes

(* Decode all character-strings of a raw TXT rdata. *)
let txt_strings raw =
  let rec go off acc =
    if off >= String.length raw then List.rev acc
    else
      let len = Char.code raw.[off] in
      let len = min len (String.length raw - off - 1) in
      go (off + 1 + len) (String.sub raw (off + 1) len :: acc)
  in
  go 0 []

let render_rr st =
  let rtype = sint st "rtype" in
  match rtype with
  | 1 -> (
      match Http_pac.sfield st "rdata_a" with
      | Some (V.Int a) ->
          let a = Int64.to_int a in
          Printf.sprintf "%d.%d.%d.%d" ((a lsr 24) land 0xff) ((a lsr 16) land 0xff)
            ((a lsr 8) land 0xff) (a land 0xff)
      | _ -> Printf.sprintf "<rd:%d bytes>" (sint st "rdlength"))
  | 2 | 5 | 12 -> sbytes st "rdata_name"
  | 15 -> Printf.sprintf "%d %s" (sint st "rdata_mx_pref") (sbytes st "rdata_mx_name")
  | 16 ->
      (* All strings, space-joined — more than the standard parser. *)
      String.concat " " (txt_strings (sbytes st "rdata_txt"))
  | _ -> Printf.sprintf "<rd:%d bytes>" (sint st "rdlength")

type parsed =
  | Request of Events.dns_request
  | Reply of Events.dns_reply
  | Not_dns

(** Parse one UDP payload slice in place (zero-copy for frozen views). *)
let rec parse_view (t : t) (v : Hilti_types.Hbytes.view) : parsed =
  match Runtime.parse_view t.parser ~unit_name:"Message" v with
  | st ->
      (* Struct-to-event-argument conversion is HILTI-to-Bro glue. *)
      Hilti_rt.Profiler.time_exclusive Mini_bro.Bro_val.glue_profiler (fun () ->
          convert st)
  | exception Runtime.Parse_failed _ -> Not_dns

and convert st =
      let id = sint st "id" in
      let flags = sint st "flags" in
      let is_response = flags land 0x8000 <> 0 in
      if is_response then
        let answers = Http_pac.slist st "answers" in
        Reply
          {
            Events.r_id = id;
            rcode = flags land 0xf;
            answers = List.map render_rr answers;
            ttls = List.map (fun rr -> sint rr "ttl") answers;
          }
      else
        let q =
          match Http_pac.slist st "questions" with q :: _ -> Some q | [] -> None
        in
        Request
          {
            Events.q_id = id;
            query = (match q with Some q -> sbytes q "qname" | None -> "");
            qtype = (match q with Some q -> sint q "qtype" | None -> 0);
          }

(** Parse one UDP payload given as a string (fuzzer oracle, tests). *)
let parse (t : t) (payload : string) : parsed =
  parse_view t (Hilti_types.Hbytes.view_of_string payload)
