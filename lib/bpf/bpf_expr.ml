(** Parser for the pcap/BPF filter expression language (§4 "Berkeley Packet
    Filter"), e.g. ["host 192.168.1.1 or src net 10.0.5.0/24"].

    Supported primitives: [host], [src host], [dst host], [net], [src net],
    [dst net], [port], [src port], [dst port], [portrange lo-hi] (with
    [src]/[dst] variants), [tcp], [udp], [icmp], [ip], combined with
    [and], [or], [not], and parentheses.

    Malformed input raises {!Parse_error} — including trailing garbage
    after a complete expression, empty parenthesized groups, and ports
    outside 0..65535. *)

open Hilti_types

type dir = Any_dir | Src | Dst

type expr =
  | Host of dir * Addr.t
  | Net of dir * Network.t
  | Port of dir * int
  | Portrange of dir * int * int  (** inclusive port range *)
  | Proto of int           (** IP protocol number *)
  | Ip                     (** any IPv4 packet *)
  | And of expr * expr
  | Or of expr * expr
  | Not of expr

exception Parse_error of string

type p = { mutable toks : string list }

let tokenize s =
  let buf = Buffer.create 8 in
  let toks = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      toks := Buffer.contents buf :: !toks;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\n' -> flush ()
      | '(' | ')' ->
          flush ();
          toks := String.make 1 c :: !toks
      | c -> Buffer.add_char buf c)
    s;
  flush ();
  List.rev !toks

let peek p = match p.toks with t :: _ -> Some t | [] -> None

let next p =
  match p.toks with
  | t :: rest ->
      p.toks <- rest;
      t
  | [] -> raise (Parse_error "unexpected end of filter")

let parse_addr_or_net p dir =
  let tok = next p in
  if String.contains tok '/' then Net (dir, Network.of_string tok)
  else Host (dir, Addr.of_string tok)

(* A port is a decimal number in 0..65535; anything else (including the
   silent out-of-range values old versions accepted) is a parse error. *)
let parse_port p =
  let tok = next p in
  match int_of_string_opt tok with
  | Some n when n >= 0 && n <= 65535 -> n
  | Some n -> raise (Parse_error (Printf.sprintf "port %d out of range 0..65535" n))
  | None -> raise (Parse_error ("bad port " ^ tok))

(* "portrange 100-200" (inclusive, lo <= hi, both in 0..65535). *)
let parse_portrange p =
  let tok = next p in
  let bad () = raise (Parse_error ("bad portrange " ^ tok)) in
  match String.split_on_char '-' tok with
  | [ lo; hi ] -> (
      match (int_of_string_opt lo, int_of_string_opt hi) with
      | Some lo, Some hi
        when 0 <= lo && lo <= hi && hi <= 65535 ->
          (lo, hi)
      | Some _, Some _ ->
          raise (Parse_error ("portrange out of range or inverted: " ^ tok))
      | _ -> bad ())
  | _ -> bad ()

let parse_primitive p =
  match next p with
  | "host" -> parse_addr_or_net p Any_dir
  | "net" -> (
      let tok = next p in
      (* "net 10.0.5.0/24" or bare prefix like "net 10.0.5" (classic pcap
         shorthand: missing octets imply the mask). *)
      if String.contains tok '/' then Net (Any_dir, Network.of_string tok)
      else
        let dots = List.length (String.split_on_char '.' tok) in
        let padded, len =
          match dots with
          | 4 -> (tok, 32)
          | 3 -> (tok ^ ".0", 24)
          | 2 -> (tok ^ ".0.0", 16)
          | 1 -> (tok ^ ".0.0.0", 8)
          | _ -> raise (Parse_error ("bad net " ^ tok))
        in
        Net (Any_dir, Network.make (Addr.of_string padded) len))
  | "port" -> Port (Any_dir, parse_port p)
  | "portrange" ->
      let lo, hi = parse_portrange p in
      Portrange (Any_dir, lo, hi)
  | "src" -> (
      match next p with
      | "host" -> parse_addr_or_net p Src
      | "net" -> parse_addr_or_net p Src
      | "port" -> Port (Src, parse_port p)
      | "portrange" ->
          let lo, hi = parse_portrange p in
          Portrange (Src, lo, hi)
      | t -> raise (Parse_error ("src " ^ t)))
  | "dst" -> (
      match next p with
      | "host" -> parse_addr_or_net p Dst
      | "net" -> parse_addr_or_net p Dst
      | "port" -> Port (Dst, parse_port p)
      | "portrange" ->
          let lo, hi = parse_portrange p in
          Portrange (Dst, lo, hi)
      | t -> raise (Parse_error ("dst " ^ t)))
  | "tcp" -> Proto 6
  | "udp" -> Proto 17
  | "icmp" -> Proto 1
  | "ip" -> Ip
  | tok ->
      (* A bare address or network is a host/net condition. *)
      if String.contains tok '/' then Net (Any_dir, Network.of_string tok)
      else if String.contains tok '.' then Host (Any_dir, Addr.of_string tok)
      else raise (Parse_error ("unknown primitive " ^ tok))

let rec parse_or p =
  let left = parse_and p in
  match peek p with
  | Some "or" ->
      ignore (next p);
      Or (left, parse_or p)
  | _ -> left

and parse_and p =
  let left = parse_not p in
  match peek p with
  | Some "and" ->
      ignore (next p);
      And (left, parse_and p)
  | _ -> left

and parse_not p =
  match peek p with
  | Some "not" ->
      ignore (next p);
      Not (parse_not p)
  | Some "(" ->
      ignore (next p);
      if peek p = Some ")" then raise (Parse_error "empty parenthesized group ()");
      let e = parse_or p in
      (match next p with
      | ")" -> ()
      | t -> raise (Parse_error ("expected ), got " ^ t)));
      e
  | _ -> parse_primitive p

(** Parse a filter expression.  The whole input must be consumed: tokens
    left over after a complete expression are rejected, never silently
    dropped. *)
let parse s =
  let p = { toks = tokenize s } in
  let e = parse_or p in
  (match peek p with
  | Some t ->
      raise (Parse_error ("trailing garbage after complete expression: " ^ t))
  | None -> ());
  e

let rec to_string = function
  | Host (Any_dir, a) -> "host " ^ Addr.to_string a
  | Host (Src, a) -> "src host " ^ Addr.to_string a
  | Host (Dst, a) -> "dst host " ^ Addr.to_string a
  | Net (Any_dir, n) -> "net " ^ Network.to_string n
  | Net (Src, n) -> "src net " ^ Network.to_string n
  | Net (Dst, n) -> "dst net " ^ Network.to_string n
  | Port (Any_dir, n) -> Printf.sprintf "port %d" n
  | Port (Src, n) -> Printf.sprintf "src port %d" n
  | Port (Dst, n) -> Printf.sprintf "dst port %d" n
  | Portrange (Any_dir, lo, hi) -> Printf.sprintf "portrange %d-%d" lo hi
  | Portrange (Src, lo, hi) -> Printf.sprintf "src portrange %d-%d" lo hi
  | Portrange (Dst, lo, hi) -> Printf.sprintf "dst portrange %d-%d" lo hi
  | Proto 6 -> "tcp"
  | Proto 17 -> "udp"
  | Proto 1 -> "icmp"
  | Proto n -> Printf.sprintf "proto %d" n
  | Ip -> "ip"
  | And (a, b) -> Printf.sprintf "(%s and %s)" (to_string a) (to_string b)
  | Or (a, b) -> Printf.sprintf "(%s or %s)" (to_string a) (to_string b)
  | Not a -> Printf.sprintf "not %s" (to_string a)
