(** The classic BSD Packet Filter virtual machine [McCanne & Jacobson 93]:
    the baseline that §6.2 compares the HILTI-compiled filter against.

    Includes a code generator from {!Bpf_expr} expressions to BPF programs
    (the same shape `tcpdump -d` emits) and the stack-machine interpreter
    that classic BPF uses at runtime.  Programs operate on raw Ethernet
    frames with the standard fixed offsets (ethertype at 12, IP header at
    14). *)

type instr =
  | Ld_abs_w of int   (** A <- u32 pkt[k] *)
  | Ld_abs_h of int   (** A <- u16 pkt[k] *)
  | Ld_abs_b of int   (** A <- u8 pkt[k] *)
  | Ldx_msh of int    (** X <- 4 * (pkt[k] & 0x0f): IP header length idiom *)
  | Ld_ind_h of int   (** A <- u16 pkt[X + k] *)
  | And_k of int      (** A <- A & k *)
  | Jeq of int * int * int  (** A = k ? +jt : +jf (relative offsets) *)
  | Jgt of int * int * int  (** A > k ? +jt : +jf *)
  | Jge of int * int * int  (** A >= k ? +jt : +jf *)
  | Jset of int * int * int (** A & k ? +jt : +jf *)
  | Ja of int         (** unconditional relative jump *)
  | Ret of int        (** accept this many bytes; 0 rejects *)

type program = instr array

(* ---- Interpreter ------------------------------------------------------------ *)

type stats = { mutable instructions : int64; mutable packets : int64 }

let stats = { instructions = 0L; packets = 0L }

let reset_stats () =
  stats.instructions <- 0L;
  stats.packets <- 0L

exception Bad_program of string

(** Run a BPF program on a packet; returns the accept length (0 = reject). *)
let run (prog : program) (pkt : string) : int =
  let n = String.length pkt in
  let a = ref 0 and x = ref 0 in
  let result = ref None in
  let pc = ref 0 in
  stats.packets <- Int64.add stats.packets 1L;
  let u8 k = Char.code pkt.[k] in
  while !result = None do
    if !pc >= Array.length prog then raise (Bad_program "fell off the end");
    stats.instructions <- Int64.add stats.instructions 1L;
    let jump jt jf cond = pc := !pc + 1 + (if cond then jt else jf) in
    (match prog.(!pc) with
    | Ld_abs_w k ->
        if k + 4 > n then result := Some 0
        else begin
          a := (u8 k lsl 24) lor (u8 (k + 1) lsl 16) lor (u8 (k + 2) lsl 8) lor u8 (k + 3);
          incr pc
        end
    | Ld_abs_h k ->
        if k + 2 > n then result := Some 0
        else begin
          a := (u8 k lsl 8) lor u8 (k + 1);
          incr pc
        end
    | Ld_abs_b k ->
        if k + 1 > n then result := Some 0
        else begin
          a := u8 k;
          incr pc
        end
    | Ldx_msh k ->
        if k + 1 > n then result := Some 0
        else begin
          x := 4 * (u8 k land 0x0f);
          incr pc
        end
    | Ld_ind_h k ->
        let off = !x + k in
        if off + 2 > n then result := Some 0
        else begin
          a := (u8 off lsl 8) lor u8 (off + 1);
          incr pc
        end
    | And_k k ->
        a := !a land k;
        incr pc
    | Jeq (k, jt, jf) -> jump jt jf (!a = k)
    | Jgt (k, jt, jf) -> jump jt jf (!a > k)
    | Jge (k, jt, jf) -> jump jt jf (!a >= k)
    | Jset (k, jt, jf) -> jump jt jf (!a land k <> 0)
    | Ja off -> pc := !pc + 1 + off
    | Ret k -> result := Some k)
  done;
  Option.get !result

let matches prog pkt = run prog pkt > 0

(* ---- Code generation -------------------------------------------------------- *)

(* Symbolic form with labels, resolved to relative offsets afterwards. *)
type sym =
  | S of instr
  | S_jeq of int * string * string
  | S_jgt of int * string * string
  | S_jge of int * string * string
  | S_jset of int * string * string
  | S_ja of string
  | S_label of string

let eth_proto_off = 12
let ip_base = 14
let ipv4_ethertype = 0x0800

let counter = ref 0

let fresh_label prefix =
  incr counter;
  Printf.sprintf "%s%d" prefix !counter

open Bpf_expr

(* Compile [e]; control flows to label [t] on match, [f] on mismatch. *)
let rec compile_expr e ~t ~f : sym list =
  match e with
  | Ip -> [ S (Ld_abs_h eth_proto_off); S_jeq (ipv4_ethertype, t, f) ]
  | Proto p ->
      let ipok = fresh_label "L" in
      [ S (Ld_abs_h eth_proto_off); S_jeq (ipv4_ethertype, ipok, f); S_label ipok;
        S (Ld_abs_b (ip_base + 9)); S_jeq (p, t, f) ]
  | Host (dir, a) ->
      let addr32 = Hilti_types.Addr.to_ipv4_int a in
      let check_src = fresh_label "L" and check_dst = fresh_label "L" in
      let ipok = fresh_label "L" in
      [ S (Ld_abs_h eth_proto_off); S_jeq (ipv4_ethertype, ipok, f); S_label ipok ]
      @ (match dir with
        | Src -> [ S (Ld_abs_w (ip_base + 12)); S_jeq (addr32, t, f) ]
        | Dst -> [ S (Ld_abs_w (ip_base + 16)); S_jeq (addr32, t, f) ]
        | Any_dir ->
            [ S_label check_src; S (Ld_abs_w (ip_base + 12));
              S_jeq (addr32, t, check_dst); S_label check_dst;
              S (Ld_abs_w (ip_base + 16)); S_jeq (addr32, t, f) ])
  | Net (dir, n) ->
      let len = Hilti_types.Network.length n in
      let mask = if len = 0 then 0 else 0xffffffff lsl (32 - len) land 0xffffffff in
      let prefix32 = Hilti_types.Addr.to_ipv4_int (Hilti_types.Network.prefix n) in
      let ipok = fresh_label "L" and check_dst = fresh_label "L" in
      [ S (Ld_abs_h eth_proto_off); S_jeq (ipv4_ethertype, ipok, f); S_label ipok ]
      @ (match dir with
        | Src ->
            [ S (Ld_abs_w (ip_base + 12)); S (And_k mask); S_jeq (prefix32, t, f) ]
        | Dst ->
            [ S (Ld_abs_w (ip_base + 16)); S (And_k mask); S_jeq (prefix32, t, f) ]
        | Any_dir ->
            [ S (Ld_abs_w (ip_base + 12)); S (And_k mask);
              S_jeq (prefix32, t, check_dst); S_label check_dst;
              S (Ld_abs_w (ip_base + 16)); S (And_k mask); S_jeq (prefix32, t, f) ])
  | Portrange (dir, lo, hi) ->
      (* Same header-walk as Port, then a jge/jgt window check. *)
      let ipok = fresh_label "L" and nofrag = fresh_label "L" in
      let check_dst = fresh_label "L" in
      let in_range ~t ~f =
        let above_lo = fresh_label "L" in
        [ S_jge (lo, above_lo, f); S_label above_lo; S_jgt (hi, f, t) ]
      in
      [ S (Ld_abs_h eth_proto_off); S_jeq (ipv4_ethertype, ipok, f); S_label ipok;
        S (Ld_abs_h (ip_base + 6)); S_jset (0x1fff, f, nofrag); S_label nofrag;
        S (Ldx_msh ip_base) ]
      @ (match dir with
        | Src -> [ S (Ld_ind_h ip_base) ] @ in_range ~t ~f
        | Dst -> [ S (Ld_ind_h (ip_base + 2)) ] @ in_range ~t ~f
        | Any_dir ->
            [ S (Ld_ind_h ip_base) ]
            @ in_range ~t ~f:check_dst
            @ [ S_label check_dst; S (Ld_ind_h (ip_base + 2)) ]
            @ in_range ~t ~f)
  | Port (dir, port) ->
      (* IPv4, not a fragment, then load ports at the dynamic IP header
         length — the classic tcpdump sequence. *)
      let ipok = fresh_label "L" and nofrag = fresh_label "L" in
      let check_dst = fresh_label "L" in
      [ S (Ld_abs_h eth_proto_off); S_jeq (ipv4_ethertype, ipok, f); S_label ipok;
        S (Ld_abs_h (ip_base + 6)); S_jset (0x1fff, f, nofrag); S_label nofrag;
        S (Ldx_msh ip_base) ]
      @ (match dir with
        | Src -> [ S (Ld_ind_h ip_base); S_jeq (port, t, f) ]
        | Dst -> [ S (Ld_ind_h (ip_base + 2)); S_jeq (port, t, f) ]
        | Any_dir ->
            [ S (Ld_ind_h ip_base); S_jeq (port, t, check_dst); S_label check_dst;
              S (Ld_ind_h (ip_base + 2)); S_jeq (port, t, f) ])
  | And (a, b) ->
      let mid = fresh_label "L" in
      compile_expr a ~t:mid ~f @ [ S_label mid ] @ compile_expr b ~t ~f
  | Or (a, b) ->
      let mid = fresh_label "L" in
      compile_expr a ~t ~f:mid @ [ S_label mid ] @ compile_expr b ~t ~f
  | Not a -> compile_expr a ~t:f ~f:t

(* Resolve labels to relative jump offsets. *)
let assemble (syms : sym list) : program =
  (* First pass: compute addresses (labels occupy no slot). *)
  let addr = Hashtbl.create 16 in
  let pc = ref 0 in
  List.iter
    (fun s ->
      match s with
      | S_label l -> Hashtbl.replace addr l !pc
      | _ -> incr pc)
    syms;
  let resolve here l =
    match Hashtbl.find_opt addr l with
    | Some a -> a - here - 1
    | None -> raise (Bad_program ("unresolved label " ^ l))
  in
  let out = ref [] in
  let pc = ref 0 in
  List.iter
    (fun s ->
      (match s with
      | S_label _ -> ()
      | S i ->
          out := i :: !out;
          incr pc
      | S_jeq (k, t, f) ->
          out := Jeq (k, resolve !pc t, resolve !pc f) :: !out;
          incr pc
      | S_jgt (k, t, f) ->
          out := Jgt (k, resolve !pc t, resolve !pc f) :: !out;
          incr pc
      | S_jge (k, t, f) ->
          out := Jge (k, resolve !pc t, resolve !pc f) :: !out;
          incr pc
      | S_jset (k, t, f) ->
          out := Jset (k, resolve !pc t, resolve !pc f) :: !out;
          incr pc
      | S_ja l ->
          out := Ja (resolve !pc l) :: !out;
          incr pc))
    syms;
  Array.of_list (List.rev !out)

(** Compile a filter expression into an executable BPF program. *)
let compile (e : expr) : program =
  let accept = fresh_label "ACCEPT" and reject = fresh_label "REJECT" in
  let body = compile_expr e ~t:accept ~f:reject in
  assemble
    (body
    @ [ S_label accept; S (Ret 65535); S_label reject; S (Ret 0) ])

let instr_to_string = function
  | Ld_abs_w k -> Printf.sprintf "ld  [%d]" k
  | Ld_abs_h k -> Printf.sprintf "ldh [%d]" k
  | Ld_abs_b k -> Printf.sprintf "ldb [%d]" k
  | Ldx_msh k -> Printf.sprintf "ldxb 4*([%d]&0xf)" k
  | Ld_ind_h k -> Printf.sprintf "ldh [x + %d]" k
  | And_k k -> Printf.sprintf "and #0x%x" k
  | Jeq (k, jt, jf) -> Printf.sprintf "jeq #0x%x jt %d jf %d" k jt jf
  | Jgt (k, jt, jf) -> Printf.sprintf "jgt #0x%x jt %d jf %d" k jt jf
  | Jge (k, jt, jf) -> Printf.sprintf "jge #0x%x jt %d jf %d" k jt jf
  | Jset (k, jt, jf) -> Printf.sprintf "jset #0x%x jt %d jf %d" k jt jf
  | Ja off -> Printf.sprintf "ja %d" off
  | Ret k -> Printf.sprintf "ret #%d" k

let disassemble prog =
  String.concat "\n"
    (Array.to_list (Array.mapi (fun i ins -> Printf.sprintf "(%03d) %s" i (instr_to_string ins)) prog))
