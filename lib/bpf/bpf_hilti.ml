(** The BPF-to-HILTI compiler (§4 "Berkeley Packet Filter", Fig. 4).

    Translates a filter expression into a HILTI module whose [filter]
    function takes the raw Ethernet frame as a [ref<bytes>] and returns a
    bool.  Address and network conditions go through the IP::Header
    {e overlay} type exactly as Fig. 4 shows; port conditions compute the
    variable header length and unpack the transport ports with bytes
    instructions — going beyond the paper's proof-of-concept, as it notes
    would be straightforward. *)

open Bpf_expr

let eth_base = 14

(* The overlay from Fig. 4, shifted by the Ethernet header since our
   filters see full frames. *)
let overlay_decl : Module_ir.type_decl =
  Module_ir.Overlay_decl
    [
      { of_name = "ethertype"; of_type = Htype.Int 16; of_offset = 12;
        of_fmt = Module_ir.U_uint (2, Hilti_types.Hbytes.Big); of_bits = None };
      { of_name = "version"; of_type = Htype.Int 8; of_offset = eth_base + 0;
        of_fmt = Module_ir.U_uint (1, Hilti_types.Hbytes.Big); of_bits = Some (4, 7) };
      { of_name = "hdr_len"; of_type = Htype.Int 8; of_offset = eth_base + 0;
        of_fmt = Module_ir.U_uint (1, Hilti_types.Hbytes.Big); of_bits = Some (0, 3) };
      { of_name = "frag"; of_type = Htype.Int 16; of_offset = eth_base + 6;
        of_fmt = Module_ir.U_uint (2, Hilti_types.Hbytes.Big); of_bits = Some (0, 12) };
      { of_name = "proto"; of_type = Htype.Int 8; of_offset = eth_base + 9;
        of_fmt = Module_ir.U_uint (1, Hilti_types.Hbytes.Big); of_bits = None };
      { of_name = "src"; of_type = Htype.Addr; of_offset = eth_base + 12;
        of_fmt = Module_ir.U_ipv4; of_bits = None };
      { of_name = "dst"; of_type = Htype.Addr; of_offset = eth_base + 16;
        of_fmt = Module_ir.U_ipv4; of_bits = None };
    ]

type ctx = { b : Builder.t; mutable label_counter : int }

let fresh ctx prefix =
  ctx.label_counter <- ctx.label_counter + 1;
  Printf.sprintf "%s%d" prefix ctx.label_counter

let packet = Instr.Local "packet"

let get_field ctx field ty =
  Builder.emit ctx.b ty "overlay.get"
    [ Instr.Member "IP::Header"; Instr.Member field; packet ]

(* Require an IPv4 frame, branching to [f] otherwise. *)
let require_ipv4 ctx ~f =
  let et = get_field ctx "ethertype" (Htype.Int 16) in
  let is_ip =
    Builder.emit ctx.b Htype.Bool "int.eq" [ et; Builder.const_int 0x0800 ]
  in
  let cont = fresh ctx "ip_ok" in
  Builder.if_else ctx.b is_ip ~then_:cont ~else_:f;
  Builder.set_block ctx.b cont

(* Load a transport port (src = offset 0, dst = offset 2) using the
   dynamic IP header length. *)
let load_port ctx ~dst_side =
  let hl = get_field ctx "hdr_len" (Htype.Int 8) in
  let hl_bytes = Builder.emit ctx.b (Htype.Int 64) "int.mul" [ hl; Builder.const_int 4 ] in
  let base = Builder.emit ctx.b (Htype.Int 64) "int.add" [ hl_bytes; Builder.const_int (eth_base + (if dst_side then 2 else 0)) ] in
  let it = Builder.emit ctx.b (Htype.Iter Htype.Bytes) "bytes.offset" [ packet; base ] in
  let pair =
    Builder.emit ctx.b
      (Htype.Tuple [ Htype.Int 64; Htype.Iter Htype.Bytes ])
      "bytes.unpack_uint"
      [ it; Builder.const_int 2; Builder.const_bool true ]
  in
  Builder.emit ctx.b (Htype.Int 64) "tuple.get" [ pair; Builder.const_int 0 ]

(* Compile [e]: control transfers to label [t] on match, [f] otherwise. *)
let rec compile_expr ctx e ~t ~f =
  match e with
  | Ip ->
      let et = get_field ctx "ethertype" (Htype.Int 16) in
      let is_ip = Builder.emit ctx.b Htype.Bool "int.eq" [ et; Builder.const_int 0x0800 ] in
      Builder.if_else ctx.b is_ip ~then_:t ~else_:f
  | Proto p ->
      require_ipv4 ctx ~f;
      let proto = get_field ctx "proto" (Htype.Int 8) in
      let c = Builder.emit ctx.b Htype.Bool "int.eq" [ proto; Builder.const_int p ] in
      Builder.if_else ctx.b c ~then_:t ~else_:f
  | Host (dir, a) ->
      require_ipv4 ctx ~f;
      let test field next_f =
        let v = get_field ctx field Htype.Addr in
        let c =
          Builder.emit ctx.b Htype.Bool "equal" [ v; Instr.Const (Constant.Addr a) ]
        in
        Builder.if_else ctx.b c ~then_:t ~else_:next_f
      in
      (match dir with
      | Src -> test "src" f
      | Dst -> test "dst" f
      | Any_dir ->
          let try_dst = fresh ctx "try_dst" in
          test "src" try_dst;
          Builder.set_block ctx.b try_dst;
          test "dst" f)
  | Net (dir, n) ->
      require_ipv4 ctx ~f;
      let test field next_f =
        let v = get_field ctx field Htype.Addr in
        let c =
          Builder.emit ctx.b Htype.Bool "net.contains"
            [ Instr.Const (Constant.Net n); v ]
        in
        Builder.if_else ctx.b c ~then_:t ~else_:next_f
      in
      (match dir with
      | Src -> test "src" f
      | Dst -> test "dst" f
      | Any_dir ->
          let try_dst = fresh ctx "net_dst" in
          test "src" try_dst;
          Builder.set_block ctx.b try_dst;
          test "dst" f)
  | Port (dir, port) ->
      require_ipv4 ctx ~f;
      (* Reject fragments with nonzero offset, as BPF does. *)
      let frag = get_field ctx "frag" (Htype.Int 16) in
      let fragged = Builder.emit ctx.b Htype.Bool "int.eq" [ frag; Builder.const_int 0 ] in
      let cont = fresh ctx "nofrag" in
      Builder.if_else ctx.b fragged ~then_:cont ~else_:f;
      Builder.set_block ctx.b cont;
      let test ~dst_side next_f =
        let v = load_port ctx ~dst_side in
        let c = Builder.emit ctx.b Htype.Bool "int.eq" [ v; Builder.const_int port ] in
        Builder.if_else ctx.b c ~then_:t ~else_:next_f
      in
      (match dir with
      | Src -> test ~dst_side:false f
      | Dst -> test ~dst_side:true f
      | Any_dir ->
          let try_dst = fresh ctx "port_dst" in
          test ~dst_side:false try_dst;
          Builder.set_block ctx.b try_dst;
          test ~dst_side:true f)
  | Portrange (dir, lo, hi) ->
      require_ipv4 ctx ~f;
      let frag = get_field ctx "frag" (Htype.Int 16) in
      let fragged = Builder.emit ctx.b Htype.Bool "int.eq" [ frag; Builder.const_int 0 ] in
      let cont = fresh ctx "nofrag" in
      Builder.if_else ctx.b fragged ~then_:cont ~else_:f;
      Builder.set_block ctx.b cont;
      let test ~dst_side next_f =
        let v = load_port ctx ~dst_side in
        let ge = Builder.emit ctx.b Htype.Bool "int.geq" [ v; Builder.const_int lo ] in
        let hi_chk = fresh ctx "range_hi" in
        Builder.if_else ctx.b ge ~then_:hi_chk ~else_:next_f;
        Builder.set_block ctx.b hi_chk;
        let le = Builder.emit ctx.b Htype.Bool "int.leq" [ v; Builder.const_int hi ] in
        Builder.if_else ctx.b le ~then_:t ~else_:next_f
      in
      (match dir with
      | Src -> test ~dst_side:false f
      | Dst -> test ~dst_side:true f
      | Any_dir ->
          let try_dst = fresh ctx "range_dst" in
          test ~dst_side:false try_dst;
          Builder.set_block ctx.b try_dst;
          test ~dst_side:true f)
  | And (a, b) ->
      let mid = fresh ctx "and" in
      compile_expr ctx a ~t:mid ~f;
      Builder.set_block ctx.b mid;
      compile_expr ctx b ~t ~f
  | Or (a, b) ->
      let mid = fresh ctx "or" in
      compile_expr ctx a ~t ~f:mid;
      Builder.set_block ctx.b mid;
      compile_expr ctx b ~t ~f
  | Not a -> compile_expr ctx a ~t:f ~f:t

(** Compile a filter expression into a HILTI module exporting
    [Bpf::filter(ref<bytes>) -> bool].  Malformed/truncated packets make
    the filter return false (fail-safe), implemented with a function-level
    exception handler. *)
let compile_module (e : expr) : Module_ir.t =
  let m = Module_ir.create "Bpf" in
  Module_ir.add_type m "IP::Header" overlay_decl;
  let b =
    Builder.func m "Bpf::filter" ~exported:true
      ~params:[ ("packet", Htype.Ref Htype.Bytes) ]
      ~result:Htype.Bool
  in
  let ctx = { b; label_counter = 0 } in
  let exc = Builder.local b "__exc" Htype.Exception in
  Builder.instr b "try.push" [ Instr.Label "bad_packet"; Instr.Local exc ];
  compile_expr ctx e ~t:"accept" ~f:"reject";
  Builder.set_block b "accept";
  Builder.return_result b (Builder.const_bool true);
  Builder.set_block b "reject";
  Builder.return_result b (Builder.const_bool false);
  Builder.set_block b "bad_packet";
  Builder.return_result b (Builder.const_bool false);
  m

(** Convenience: parse, compile, and load a filter; returns a closure over
    the generated native code ("the C stub"). *)
let load ?(optimize = true) (filter : string) :
    Hilti_vm.Host_api.t * (string -> bool) =
  let e = parse filter in
  let m = compile_module e in
  let api = Hilti_vm.Host_api.compile ~optimize [ m ] in
  let run pkt =
    let b = Hilti_types.Hbytes.of_string pkt in
    Hilti_types.Hbytes.freeze b;
    Hilti_vm.Value.as_bool
      (Hilti_vm.Host_api.call api "Bpf::filter" [ Hilti_vm.Value.Bytes b ])
  in
  (api, run)
