(** The firewall's rules-to-HILTI compiler (§4 "Stateful Firewall").

    Emits exactly the module of Fig. 5: a [classifier<Rule, bool>] holding
    the compiled rule set, a [set<tuple<addr, addr>>] of dynamic rules with
    a 5-minute inactivity timeout, and a [match_packet(time, addr, addr)]
    function that advances HILTI's global time (expiring idle state),
    consults the dynamic set, and falls back to classifier lookup with a
    default-deny on [Hilti::IndexError]. *)

let ir_rule_tuple (r : Fw_rules.rule) =
  let net = function
    | None -> Constant.Unset
    | Some n -> Constant.Net n
  in
  Constant.Tuple [ net r.Fw_rules.src; net r.Fw_rules.dst ]

(** Build the firewall module for a rule list. *)
let compile_module ?(idle_timeout_secs = 300) (rules : Fw_rules.rule list) :
    Module_ir.t =
  let m = Module_ir.create "Firewall" in
  Module_ir.add_type m "Rule"
    (Module_ir.Struct_decl [ ("src", Htype.Net); ("dst", Htype.Net) ]);
  let classifier_ty = Htype.Classifier (Htype.Struct "Rule", Htype.Bool) in
  Module_ir.add_global m "rules" (Htype.Ref classifier_ty);
  Module_ir.add_global m "dyn"
    (Htype.Ref (Htype.Set (Htype.Tuple [ Htype.Addr; Htype.Addr ])));

  (* init_rules: one classifier.add per configured rule (Fig. 5 top). *)
  let b = Builder.func m "Firewall::init_rules" ~params:[] ~result:Htype.Void in
  List.iter
    (fun r ->
      Builder.instr b "classifier.add"
        [ Instr.Global "rules";
          Instr.Const (ir_rule_tuple r);
          Builder.const_bool (r.Fw_rules.action = Fw_rules.Allow) ])
    rules;
  Builder.return_ b;

  (* init_classifier: allocate, populate, compile, set up dynamic state. *)
  let b = Builder.func m "Firewall::init_classifier" ~params:[] ~result:Htype.Void ~exported:true in
  let c = Builder.emit b (Htype.Ref classifier_ty) "new" [ Instr.Type_op classifier_ty ] in
  Builder.instr b ~target:"rules" "assign" [ c ];
  Builder.call b "Firewall::init_rules" [];
  Builder.instr b "classifier.compile" [ Instr.Global "rules" ];
  let set_ty = Htype.Set (Htype.Tuple [ Htype.Addr; Htype.Addr ]) in
  let s = Builder.emit b (Htype.Ref set_ty) "new" [ Instr.Type_op set_ty ] in
  Builder.instr b ~target:"dyn" "assign" [ s ];
  Builder.instr b "set.timeout"
    [ Instr.Global "dyn";
      Instr.Const (Constant.Enum_label ("Hilti::ExpireStrategy", "Access"));
      Instr.Const (Constant.Interval (Hilti_types.Interval_ns.of_secs idle_timeout_secs)) ];
  Builder.return_ b;

  (* match_packet(t, src, dst) -> bool (Fig. 5 bottom). *)
  let b =
    Builder.func m "Firewall::match_packet" ~exported:true
      ~params:[ ("t", Htype.Time); ("src", Htype.Addr); ("dst", Htype.Addr) ]
      ~result:Htype.Bool
  in
  let bool_local = Builder.local b "b" Htype.Bool in
  (* Advance HILTI's global time; this expires inactive dynamic entries. *)
  Builder.instr b "timer_mgr.advance_global" [ Instr.Local "t" ];
  Builder.instr b ~target:bool_local "set.exists"
    [ Instr.Global "dyn"; Instr.Tuple_op [ Instr.Local "src"; Instr.Local "dst" ] ];
  Builder.if_else b (Instr.Local bool_local) ~then_:"return_action" ~else_:"lookup";
  Builder.set_block b "lookup";
  let exc = Builder.local b "e" Htype.Exception in
  Builder.instr b "try.push" [ Instr.Label "no_match"; Instr.Local exc ];
  Builder.instr b ~target:bool_local "classifier.get"
    [ Instr.Global "rules"; Instr.Tuple_op [ Instr.Local "src"; Instr.Local "dst" ] ];
  Builder.instr b "try.pop" [];
  Builder.if_else b (Instr.Local bool_local) ~then_:"add_state" ~else_:"return_action";
  Builder.set_block b "no_match";
  (* No rule matched: default deny. *)
  Builder.return_result b (Builder.const_bool false);
  Builder.set_block b "add_state";
  Builder.instr b "set.insert"
    [ Instr.Global "dyn"; Instr.Tuple_op [ Instr.Local "src"; Instr.Local "dst" ] ];
  Builder.instr b "set.insert"
    [ Instr.Global "dyn"; Instr.Tuple_op [ Instr.Local "dst"; Instr.Local "src" ] ];
  Builder.set_block b "return_action";
  Builder.return_result b (Instr.Local bool_local);
  m

type t = {
  api : Hilti_vm.Host_api.t;
  mutable matches : int;
  mutable denials : int;
}

(** Compile and load a firewall; returns a handle whose [match_packet]
    mirrors the reference matcher's interface. *)
let load ?(optimize = true) ?(specialize = true) ?idle_timeout_secs rules : t =
  let m = compile_module ?idle_timeout_secs rules in
  let api = Hilti_vm.Host_api.compile ~optimize ~specialize [ m ] in
  ignore (Hilti_vm.Host_api.call api "Firewall::init_classifier" []);
  { api; matches = 0; denials = 0 }

let match_packet t ~ts ~src ~dst =
  let open Hilti_vm in
  let r =
    Host_api.call t.api "Firewall::match_packet"
      [ Value.Time ts; Value.Addr src; Value.Addr dst ]
  in
  let allowed = Value.as_bool r in
  if allowed then t.matches <- t.matches + 1 else t.denials <- t.denials + 1;
  allowed
