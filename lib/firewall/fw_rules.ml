(** The firewall's rule language and an independent reference matcher
    (§4/§6.3: the paper validates the HILTI firewall against a simple
    Python script implementing the same semantics; this module is that
    reference implementation).

    Rules are [(src-net, dst-net) -> allow|deny], applied in order of
    specification, {e first match wins}, default deny.  A matching allow
    additionally installs a dynamic rule permitting the reverse direction
    until 5 minutes of inactivity have passed.

    {2 First-match semantics, precisely}

    For a packet [(src, dst)] the static verdict is the [action] of the
    {e earliest} rule in the list whose [src] and [dst] constraints both
    cover the packet ([None] covers everything); if no rule matches, the
    verdict is [Deny].  Consequently a rule whose match key [(src, dst)]
    is {e identical} to an earlier rule's can never fire — it is
    {e shadowed}, whatever its action.  {!normalize} drops such rules.
    Every matcher built from a rule list — the linear reference here,
    the HILTI classifier of {!Fw_hilti}, and the decision-diagram
    backend in [Hilti_classifier] — implements exactly this contract,
    so they may be compared verdict-for-verdict on normalized or
    unnormalized input alike (normalization never changes verdicts; it
    only removes dead rules). *)

open Hilti_types

type action = Allow | Deny

type rule = {
  src : Network.t option;  (** [None] is a wildcard *)
  dst : Network.t option;
  action : action;
}

exception Parse_error of string

(* "10.3.2.1/32 10.1.0.0/16 allow" | "* 10.1.7.0/24 deny" *)
let parse_rule line =
  match String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "") with
  | [ src; dst; action ] ->
      let net = function "*" -> None | s -> Some (Network.of_string s) in
      let action =
        match String.lowercase_ascii action with
        | "allow" -> Allow
        | "deny" -> Deny
        | a -> raise (Parse_error ("bad action " ^ a))
      in
      { src = net src; dst = net dst; action }
  | _ -> raise (Parse_error ("bad rule: " ^ line))

let parse_rules text =
  String.split_on_char '\n' text
  |> List.map String.trim
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  |> List.map parse_rule

let rule_to_string r =
  let net = function None -> "*" | Some n -> Network.to_string n in
  Printf.sprintf "%s %s %s" (net r.src) (net r.dst)
    (match r.action with Allow -> "allow" | Deny -> "deny")

(* ---- Normalization ----------------------------------------------------------- *)

let m_shadowed =
  Hilti_obs.Metrics.counter
    ~help:"rules dropped by Fw_rules.normalize as shadowed by an earlier identical match key"
    "fw_rules_shadowed_total"

(** Drop rules shadowed by an earlier rule with an {e identical}
    [(src, dst)] match key (first match wins, so they can never fire —
    even when their action differs).  Order of the surviving rules is
    preserved and verdicts are unchanged for every packet.  Each dropped
    rule bumps the [fw_rules_shadowed_total] counter. *)
let normalize rules =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun r ->
      let key = (r.src, r.dst) in
      if Hashtbl.mem seen key then begin
        Hilti_obs.Metrics.incr m_shadowed;
        false
      end
      else begin
        Hashtbl.add seen key ();
        true
      end)
    rules

(* ---- Reference matcher -------------------------------------------------------- *)

type reference = {
  rules : rule list;
  dyn : (string, Time_ns.t) Hashtbl.t;  (* "src>dst" -> last activity *)
  idle_timeout : Interval_ns.t;
  mutable matches : int;
  mutable denials : int;
}

let reference ?(idle_timeout = Interval_ns.of_secs 300) rules =
  { rules; dyn = Hashtbl.create 256; idle_timeout; matches = 0; denials = 0 }

let key a b = Addr.to_string a ^ ">" ^ Addr.to_string b

let static_action t src dst =
  let matches net a = match net with None -> true | Some n -> Network.contains n a in
  let rec go = function
    | [] -> Deny
    | r :: rest ->
        if matches r.src src && matches r.dst dst then r.action else go rest
  in
  go t.rules

(** Decide one packet; [true] = allowed.  Mirrors Fig. 5's logic: dynamic
    state is consulted first and refreshed on use; a static allow installs
    dynamic rules for both directions. *)
let match_packet t ~ts ~src ~dst =
  let k = key src dst in
  let allowed =
    match Hashtbl.find_opt t.dyn k with
    | Some last
      when Interval_ns.compare (Interval_ns.of_ns (Time_ns.diff ts last)) t.idle_timeout
           <= 0 ->
        Hashtbl.replace t.dyn k ts;
        true
    | _ -> (
        if Hashtbl.mem t.dyn k then Hashtbl.remove t.dyn k;
        match static_action t src dst with
        | Allow ->
            Hashtbl.replace t.dyn (key src dst) ts;
            Hashtbl.replace t.dyn (key dst src) ts;
            true
        | Deny -> false)
  in
  if allowed then t.matches <- t.matches + 1 else t.denials <- t.denials + 1;
  allowed

let dynamic_entries t = Hashtbl.length t.dyn
