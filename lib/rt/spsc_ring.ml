(** Bounded single-producer/single-consumer rings for the sharded data
    plane.

    A ring connects exactly two domains: one producer, one consumer.  The
    fast path is lock-free — a fixed slot array indexed by two monotonic
    atomic cursors; no mutex is touched to transfer an element.  The
    intended payload is a {e batch} of packets (or of per-packet results),
    so all cross-domain synchronization happens at batch granularity:
    pushing a 256-packet batch costs the same two atomic stores as pushing
    one packet would.

    Backpressure is the ring bound itself: {!push} blocks when the
    consumer has fallen [capacity] batches behind, which propagates stall
    back to the dispatcher instead of letting queues grow without limit.
    Blocking sides spin briefly (only when more than one core is
    available), then park on a condition variable; wakeups are only
    signalled when the peer is known to be parked, so the uncontended path
    stays syscall-free.

    Shutdown follows a drain-and-close protocol: the producer calls
    {!close} after its last {!push}; the consumer keeps receiving every
    pushed element and then gets [None] from {!pop}.  Pushing after close
    is a programming error and raises {!Closed}. *)

exception Closed

type 'a t = {
  slots : 'a option array;
  capacity : int;
  head : int Atomic.t;  (** next position to pop; only the consumer advances it *)
  tail : int Atomic.t;  (** next position to push; only the producer advances it *)
  closed : bool Atomic.t;
  waiters : int Atomic.t;  (** parties parked (or about to park) on [cond] *)
  lock : Mutex.t;
  cond : Condition.t;
  spin : int;  (** spin budget before parking; 0 on single-core hosts *)
}

let m_pushes =
  Hilti_obs.Metrics.counter "spsc_batches_pushed"
    ~help:"Batches transferred through SPSC rings"

let m_parks =
  Hilti_obs.Metrics.counter "spsc_parks"
    ~help:"Times a ring endpoint parked on the slow path (full or empty ring)"

let create ?(capacity = 8) () =
  if capacity < 1 then invalid_arg "Spsc_ring.create: capacity must be >= 1";
  {
    slots = Array.make capacity None;
    capacity;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    closed = Atomic.make false;
    waiters = Atomic.make 0;
    lock = Mutex.create ();
    cond = Condition.create ();
    spin = (if Domain.recommended_domain_count () > 1 then 512 else 0);
  }

let capacity t = t.capacity
let length t = Atomic.get t.tail - Atomic.get t.head
let is_closed t = Atomic.get t.closed

(* Wake the peer iff it is parked (or committed to parking: it increments
   [waiters] before re-checking under the lock, so a positive count here
   can never miss a sleeper — see the ordering argument in push/pop). *)
let wake t =
  if Atomic.get t.waiters > 0 then begin
    Mutex.lock t.lock;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock
  end

(* Park until [ready] holds.  The waiter advertises itself in [waiters]
   BEFORE re-checking [ready] under the lock; the peer performs its state
   change BEFORE reading [waiters].  Both sides use sequentially consistent
   atomics, so either the peer sees the waiter (and broadcasts, serialized
   against the wait by [lock]) or the waiter's re-check sees the state
   change — a lost wakeup is impossible. *)
let park t ready =
  Atomic.incr t.waiters;
  Mutex.lock t.lock;
  while not (ready ()) do
    Condition.wait t.cond t.lock
  done;
  Mutex.unlock t.lock;
  Atomic.decr t.waiters

(** Producer side: enqueue [v] if the ring has room; [false] when full.
    Raises {!Closed} after {!close}. *)
let try_push t v =
  if Atomic.get t.closed then raise Closed;
  let tail = Atomic.get t.tail in
  if tail - Atomic.get t.head >= t.capacity then false
  else begin
    t.slots.(tail mod t.capacity) <- Some v;
    (* Publish: the slot write above happens-before any consumer load that
       observes the new tail. *)
    Atomic.set t.tail (tail + 1);
    Hilti_obs.Metrics.incr m_pushes;
    wake t;
    true
  end

(** Consumer side: dequeue the oldest element; [None] when the ring is
    empty ({e not} necessarily closed — use {!pop} for blocking and
    end-of-stream detection). *)
let try_pop t =
  let head = Atomic.get t.head in
  if head >= Atomic.get t.tail then None
  else begin
    let slot = head mod t.capacity in
    let v = t.slots.(slot) in
    t.slots.(slot) <- None;  (* release the element to the GC *)
    Atomic.set t.head (head + 1);
    wake t;
    v
  end

(** Producer side: enqueue [v], blocking while the ring is full (the
    backpressure point).  Raises {!Closed} after {!close}. *)
let push t v =
  let rec go budget =
    if not (try_push t v) then
      if budget > 0 then begin
        Domain.cpu_relax ();
        go (budget - 1)
      end
      else begin
        Hilti_obs.Metrics.incr m_parks;
        park t (fun () ->
            Atomic.get t.closed
            || Atomic.get t.tail - Atomic.get t.head < t.capacity);
        go t.spin
      end
  in
  go t.spin

(** Consumer side: dequeue the oldest element, blocking while the ring is
    empty.  [None] only once the ring is closed {e and} fully drained. *)
let pop t =
  let rec go budget =
    match try_pop t with
    | Some _ as r -> r
    | None ->
        if Atomic.get t.closed && length t = 0 then None
        else if budget > 0 then begin
          Domain.cpu_relax ();
          go (budget - 1)
        end
        else begin
          Hilti_obs.Metrics.incr m_parks;
          park t (fun () ->
              Atomic.get t.closed || Atomic.get t.tail - Atomic.get t.head > 0);
          go t.spin
        end
  in
  go t.spin

(** Close the ring (producer side; idempotent).  Elements already pushed
    remain poppable; once drained, {!pop} returns [None]. *)
let close t =
  Atomic.set t.closed true;
  Mutex.lock t.lock;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock
