(** Hash maps with built-in state expiration (HILTI [map], §3.2).

    The map optionally attaches to a {!Timer_mgr}; each entry then owns a
    logical expiration deadline enforced by a per-entry timer, exactly as
    HILTI's runtime schedules container cleanups.  Touching an entry under a
    refresh-on-access/write policy bumps a per-entry generation counter so
    that stale timers fizzle when they fire. *)

type ('k, 'v) entry = {
  key : 'k;
  mutable value : 'v;
  mutable gen : int;  (* bumped on refresh; stale timers compare this *)
}

type ('k, 'v) t = {
  buckets : ('k, ('k, 'v) entry) Hashtbl.t;
  mutable strategy : Expire.strategy;
  mutable mgr : Timer_mgr.t option;
  mutable default : ('k -> 'v) option;
  mutable expired_total : int;
  mutable on_expire : ('k -> 'v -> unit) option;
  mutable memo : ('k, 'v) entry option;
      (* last entry hit: session tables see long same-key runs (a DNS
         query/response pair, a TCP burst), so one structural key compare
         routinely replaces the hash + bucket walk.  Every path that drops
         an entry invalidates it; refresh semantics are unchanged on a
         memo hit. *)
}

let m_timers_scheduled =
  Hilti_obs.Metrics.counter "exp_map_timers_scheduled"
    ~help:"Expiration timers armed by state containers"

let m_expired =
  Hilti_obs.Metrics.counter "exp_map_expired"
    ~help:"Container entries dropped by timer expiry"

(* Keys are hashed structurally; HILTI map keys are value types, so
   structural equality is the right notion. *)
let create ?(size = 64) () =
  {
    buckets = Hashtbl.create size;
    strategy = Expire.Never;
    mgr = None;
    default = None;
    expired_total = 0;
    on_expire = None;
    memo = None;
  }

(** Set a default constructor: lookups of missing keys return (and insert)
    the constructed value instead of raising [Not_found]. *)
let set_default t f = t.default <- Some f

(** Attach an expiration policy, enforced against [mgr]'s clock. *)
let set_timeout t strategy mgr =
  t.strategy <- strategy;
  t.mgr <- Some mgr

(** Called with (key, value) after an entry is dropped by timer expiry —
    the hook session tables use to flush evicted connection state.  Manual
    [remove] does not fire it. *)
let set_on_expire t cb = t.on_expire <- Some cb

let size t = Hashtbl.length t.buckets
let expired_total t = t.expired_total

let schedule_expiry t (entry : ('k, 'v) entry) =
  match (Expire.interval t.strategy, t.mgr) with
  | Some ival, Some mgr ->
      let gen = entry.gen in
      let fire () =
        if entry.gen = gen && Hashtbl.mem t.buckets entry.key then begin
          (match t.memo with
          | Some e when e == entry -> t.memo <- None
          | _ -> ());
          Hashtbl.remove t.buckets entry.key;
          t.expired_total <- t.expired_total + 1;
          Hilti_obs.Metrics.incr m_expired;
          match t.on_expire with
          | Some cb -> cb entry.key entry.value
          | None -> ()
        end
      in
      Hilti_obs.Metrics.incr m_timers_scheduled;
      ignore (Timer_mgr.schedule_in mgr fire ival)
  | _ -> ()

let refresh_on_write t entry =
  if Expire.refreshed_by_write t.strategy then begin
    entry.gen <- entry.gen + 1;
    schedule_expiry t entry
  end

let refresh_on_read t entry =
  if Expire.refreshed_by_read t.strategy then begin
    entry.gen <- entry.gen + 1;
    schedule_expiry t entry
  end

let insert t key value =
  match Hashtbl.find_opt t.buckets key with
  | Some entry ->
      entry.value <- value;
      refresh_on_write t entry
  | None ->
      let entry = { key; value; gen = 0 } in
      Hashtbl.replace t.buckets key entry;
      t.memo <- Some entry;
      schedule_expiry t entry

(** Insert a key the caller knows is absent (e.g. right after a failed
    lookup): skips [insert]'s presence probe, so the create path of a
    session table costs one bucket write instead of a find + replace. *)
let add_fresh t key value =
  let entry = { key; value; gen = 0 } in
  Hashtbl.replace t.buckets key entry;
  t.memo <- Some entry;
  schedule_expiry t entry

let find_opt t key =
  match t.memo with
  | Some entry when entry.key = key ->
      refresh_on_read t entry;
      Some entry.value
  | _ -> (
      match Hashtbl.find_opt t.buckets key with
      | Some entry ->
          t.memo <- Some entry;
          refresh_on_read t entry;
          Some entry.value
      | None -> (
          match t.default with
          | Some f ->
              let v = f key in
              insert t key v;
              Some v
          | None -> None))

exception Index_error

let find t key =
  match find_opt t key with Some v -> v | None -> raise Index_error

(** Membership test; does not refresh access-expiry and does not
    materialize defaults. *)
let mem t key = Hashtbl.mem t.buckets key

(** Membership test that counts as a read access (refreshing
    access-based expiry) but never materializes defaults — the semantics
    of [map.exists]/[set.exists]. *)
let mem_touch t key =
  match Hashtbl.find_opt t.buckets key with
  | Some entry ->
      refresh_on_read t entry;
      true
  | None -> false

let remove t key =
  (match t.memo with
  | Some entry when entry.key = key -> t.memo <- None
  | _ -> ());
  Hashtbl.remove t.buckets key

let clear t =
  t.memo <- None;
  Hashtbl.reset t.buckets

let iter f t = Hashtbl.iter (fun k e -> f k e.value) t.buckets

let fold f t init = Hashtbl.fold (fun k e acc -> f k e.value acc) t.buckets init

let keys t = fold (fun k _ acc -> k :: acc) t []

let to_list t = fold (fun k v acc -> (k, v) :: acc) t []
