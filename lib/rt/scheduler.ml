(** Virtual threads and the cooperative scheduler (§3.2, §5).

    HILTI supplies applications with a large number of lightweight virtual
    threads identified by 64-bit integers; a runtime scheduler maps them to
    hardware threads via cooperative multitasking.  Virtual threads cannot
    share state: work is moved between them by scheduling jobs
    ([thread.schedule]), with arguments deep-copied by the caller (the VM
    layer performs the copy).

    This scheduler executes jobs first-come first-served per virtual
    thread, with round-robin service across threads holding pending work —
    deterministic, which the tests rely on.  Each virtual thread owns a
    context: its job queue, its own {!Timer_mgr}, and a scratch table of
    thread-local variables managed by the VM.

    A {!backend} can replace the cooperative loop with a different
    execution strategy behind the same interface; [Hilti_par] uses this to
    run virtual threads on a pool of OCaml 5 domains (the paper's native
    hardware threads). *)

type job = { fn : unit -> unit; label : string }

type vthread = {
  id : int64;
  queue : job Queue.t;
  timers : Timer_mgr.t;
  locals : (string, Obj.t) Hashtbl.t;  (* thread-local slots, managed by VM *)
  mutable jobs_run : int;
}

type stats = { vthreads : int; total_jobs : int }

(** A pluggable execution backend.  When installed, the public scheduling
    operations delegate to it instead of the built-in cooperative loop —
    this is how {b Hilti_par} maps virtual threads onto OCaml domains while
    the VM, [Mini_bro] and the analyzers keep calling the same [Scheduler]
    interface.  The command queue stays local: serialized operations (file
    writes, ...) always run on whichever domain drains them, under the
    scheduler's own lock. *)
type backend = {
  b_schedule : int64 -> label:string -> (unit -> unit) -> unit;
  b_run : unit -> unit;
  b_advance : Hilti_types.Time_ns.t -> unit;
  b_timers : int64 -> Timer_mgr.t;
  b_stats : unit -> stats;
  b_pending : unit -> int;
}

type t = {
  threads : (int64, vthread) Hashtbl.t;
  mutable vthread_count : int;  (* stable stat *)
  mutable total_jobs : int;
  mutable running : bool;
  command_queue : job Queue.t;
      (** serialized operations executed between job steps, standing in for
          HILTI's dedicated manager thread (§5 "Runtime Library") *)
  cmd_lock : Mutex.t;
      (** commands may be submitted from any domain in parallel mode *)
  mutable backend : backend option;
}

let create () =
  {
    threads = Hashtbl.create 64;
    vthread_count = 0;
    total_jobs = 0;
    running = false;
    command_queue = Queue.create ();
    cmd_lock = Mutex.create ();
    backend = None;
  }

let set_backend t b = t.backend <- Some b
let clear_backend t = t.backend <- None
let backend t = t.backend

let vthread t id =
  match Hashtbl.find_opt t.threads id with
  | Some vt -> vt
  | None ->
      let vt =
        {
          id;
          queue = Queue.create ();
          timers = Timer_mgr.create ();
          locals = Hashtbl.create 8;
          jobs_run = 0;
        }
      in
      Hashtbl.add t.threads id vt;
      t.vthread_count <- t.vthread_count + 1;
      vt

(** Schedule [fn] for asynchronous execution on virtual thread [id]
    ([thread.schedule]).  FIFO within a thread. *)
let schedule t id ?(label = "") fn =
  match t.backend with
  | Some b -> b.b_schedule id ~label fn
  | None ->
      let vt = vthread t id in
      Queue.add { fn; label } vt.queue;
      t.total_jobs <- t.total_jobs + 1

(** The timer manager of virtual thread [id] (per-domain in parallel
    mode — timers always fire on the domain owning the thread). *)
let timers_for t id =
  match t.backend with
  | Some b -> b.b_timers id
  | None -> (vthread t id).timers

(** Submit a serialized command (e.g. a file write) to the manager queue.
    Safe to call from any domain. *)
let command t ?(label = "cmd") fn =
  Mutex.protect t.cmd_lock (fun () -> Queue.add { fn; label } t.command_queue)

(** Number of queued serialized commands (any domain). *)
let commands_pending t =
  Mutex.protect t.cmd_lock (fun () -> Queue.length t.command_queue)

let pending t =
  match t.backend with
  | Some b -> b.b_pending ()
  | None ->
      Hashtbl.fold (fun _ vt acc -> acc + Queue.length vt.queue) t.threads 0
      + Mutex.protect t.cmd_lock (fun () -> Queue.length t.command_queue)

(** Pop-and-run every queued command.  Commands run outside the lock (they
    may submit further commands). *)
let drain_commands t =
  let rec go () =
    match Mutex.protect t.cmd_lock (fun () -> Queue.take_opt t.command_queue) with
    | Some job ->
        job.fn ();
        go ()
    | None -> ()
  in
  go ()

(** Run until all queues are empty.  Jobs may schedule further jobs.  Every
    job runs with its virtual thread's context current (see {!current}). *)
let current_vthread : vthread option ref = ref None

let current () = !current_vthread

let m_jobs_run =
  Hilti_obs.Metrics.counter "sched_jobs_run"
    ~help:"Jobs executed by the cooperative scheduler"

let run_one_job vt =
  match Queue.take_opt vt.queue with
  | None -> false
  | Some job ->
      let saved = !current_vthread in
      current_vthread := Some vt;
      Fun.protect
        ~finally:(fun () -> current_vthread := saved)
        (fun () -> job.fn ());
      vt.jobs_run <- vt.jobs_run + 1;
      Hilti_obs.Metrics.incr m_jobs_run;
      true

let rec run t =
  match t.backend with
  | Some b -> b.b_run ()
  | None -> run_cooperative t

and run_cooperative t =
  if t.running then invalid_arg "Scheduler.run: reentrant";
  t.running <- true;
  Fun.protect
    ~finally:(fun () -> t.running <- false)
    (fun () ->
      let progressed = ref true in
      while !progressed do
        progressed := false;
        drain_commands t;
        (* Deterministic round-robin: visit threads in id order. *)
        let ids =
          List.sort Int64.compare
            (Hashtbl.fold (fun id _ acc -> id :: acc) t.threads [])
        in
        List.iter
          (fun id ->
            let vt = Hashtbl.find t.threads id in
            if run_one_job vt then progressed := true)
          ids
      done;
      drain_commands t)

(** Advance every virtual thread's timer manager to [time] (global time
    advance broadcast). *)
let advance_time t time =
  match t.backend with
  | Some b -> b.b_advance time
  | None ->
      Hashtbl.iter
        (fun _ vt -> ignore (Timer_mgr.advance vt.timers time))
        t.threads

let stats t =
  match t.backend with
  | Some b -> b.b_stats ()
  | None -> { vthreads = t.vthread_count; total_jobs = t.total_jobs }

(** The hash-based load-balancing helper the paper describes: map a flow
    key to a virtual thread id in [0, n). *)
let thread_for_hash ~threads hash =
  if threads <= 0 then invalid_arg "Scheduler.thread_for_hash";
  Int64.of_int (abs hash mod threads)
