(** Profilers: measurement of arbitrary blocks of code (§3.3).

    A profiler tracks elapsed wall time, an abstract cycle counter (the VM
    charges instruction costs to it, standing in for PAPI cycle counts), and
    invocation counts for a named block.  Profilers nest and snapshots can
    be recorded at intervals, mirroring HILTI's periodic dumps to disk. *)

type t = {
  name : string;
  mutable invocations : int;
  mutable wall_ns : int64;          (* accumulated *)
  mutable cycles : int64;           (* accumulated abstract cost *)
  mutable started_at : int64 option;  (* monotonic ns when running *)
  mutable cycles_at_start : int64;
  mutable snapshots : (int64 * int64) list;  (* newest first, capped *)
  mutable snap_count : int;
}

(** Snapshot history bound: only the newest [max_snapshots] per profiler
    are retained, so periodic snapshotting on a streaming workload uses
    constant memory. *)
let max_snapshots = 256

(* The abstract cycle counter the VM increments.  With the parallel engine
   (Hilti_par) VM instructions execute on several domains at once, so a
   single plain [int ref] would drop increments under contention.  Instead
   every charging site owns its own counter (one per VM execution context —
   one per domain in parallel runs) registered in a shared list; the global
   total is the sum over all registered counters, taken at snapshot time.
   Each individual counter is only ever written by one domain, keeping the
   per-instruction cost at a deref + store. *)
let counters_lock = Mutex.create ()
let counters : int ref list ref = ref []

(** Allocate a cycle counter charged into the global total.  The caller
    must ensure each returned counter is only written from one domain. *)
let new_counter () =
  let r = ref 0 in
  Mutex.protect counters_lock (fun () -> counters := r :: !counters);
  r

(* Counter for code charging outside a VM context (one per domain). *)
let dls_counter : int ref Domain.DLS.key = Domain.DLS.new_key new_counter

let charge_cycles n =
  let r = Domain.DLS.get dls_counter in
  r := !r + n

let global_cycles () =
  Mutex.protect counters_lock (fun () ->
      List.fold_left (fun acc r -> Int64.add acc (Int64.of_int !r)) 0L !counters)

let monotonic_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

(* Profiler records themselves are not guarded: a profiler name should be
   driven from one domain at a time (concurrent use only fuzzes the
   measurements, it cannot corrupt analysis results).  The registry that
   holds them is shared across domains and is guarded. *)
let registry_lock = Mutex.create ()
let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let find_or_create name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some p -> p
      | None ->
          let p =
            {
              name;
              invocations = 0;
              wall_ns = 0L;
              cycles = 0L;
              started_at = None;
              cycles_at_start = 0L;
              snapshots = [];
              snap_count = 0;
            }
          in
          Hashtbl.add registry name p;
          p)

let name t = t.name
let invocations t = t.invocations
let wall_ns t = t.wall_ns
let cycles t = t.cycles

(* Stack of currently-running profilers, for exclusive accounting.  The
   stack is per-domain: exclusive windows on one domain must not pause
   profilers running on another. *)
let running_key : t list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let running () = Domain.DLS.get running_key

let start_raw t =
  t.started_at <- Some (monotonic_ns ());
  t.cycles_at_start <- global_cycles ()

let stop_raw t =
  match t.started_at with
  | None -> ()
  | Some at ->
      t.wall_ns <- Int64.add t.wall_ns (Int64.sub (monotonic_ns ()) at);
      t.cycles <- Int64.add t.cycles (Int64.sub (global_cycles ()) t.cycles_at_start);
      t.started_at <- None

let start t =
  t.invocations <- t.invocations + 1;
  let running = running () in
  running := t :: !running;
  start_raw t

let stop t =
  stop_raw t;
  let running = running () in
  running := List.filter (fun p -> p != t) !running

(** Record the current totals as a snapshot (HILTI writes these to disk at
    regular intervals; we retain the newest {!max_snapshots} in memory and
    render on demand). *)
let snapshot t =
  t.snapshots <- (t.wall_ns, t.cycles) :: t.snapshots;
  if t.snap_count >= max_snapshots then
    t.snapshots <- List.filteri (fun i _ -> i < max_snapshots) t.snapshots
  else t.snap_count <- t.snap_count + 1

(** Retained snapshots, oldest first. *)
let snapshots t = List.rev t.snapshots

(** Time a function under profiler [name]. *)
let time name f =
  let p = find_or_create name in
  start p;
  Fun.protect ~finally:(fun () -> stop p) f

(** Time a function under [name] while {e pausing} every profiler that is
    currently running: components measured this way are mutually
    exclusive, so they can be summed into a breakdown (the Figure 9/10
    accounting). *)
let time_exclusive name f =
  let running = running () in
  let saved = !running in
  List.iter stop_raw saved;
  let p = find_or_create name in
  p.invocations <- p.invocations + 1;
  running := [ p ];
  start_raw p;
  Fun.protect
    ~finally:(fun () ->
      stop_raw p;
      running := saved;
      List.iter start_raw saved)
    f

let reset_all () =
  Mutex.protect registry_lock (fun () -> Hashtbl.reset registry);
  (running ()) := [];
  Mutex.protect counters_lock (fun () -> List.iter (fun r -> r := 0) !counters)

let report () =
  let entries =
    Mutex.protect registry_lock (fun () ->
        Hashtbl.fold (fun _ p acc -> p :: acc) registry [])
  in
  let entries = List.sort (fun a b -> compare a.name b.name) entries in
  List.map
    (fun p ->
      Printf.sprintf "%-30s calls=%-8d wall=%.3fms cycles=%Ld" p.name
        p.invocations
        (Int64.to_float p.wall_ns /. 1e6)
        p.cycles)
    entries

(** Write all profiler totals and their recorded snapshots to [path] —
    HILTI's periodic measurement dumps (§3.3).  The write is atomic
    (temp + rename), so a crash mid-dump can't leave a torn report. *)
let write_report path =
  let b = Buffer.create 1024 in
  Buffer.add_string b "#profiler\tcalls\twall_ms\tcycles\n";
  List.iter (fun line -> Buffer.add_string b (line ^ "\n")) (report ());
  let entries =
    Mutex.protect registry_lock (fun () ->
        Hashtbl.fold (fun _ p acc -> p :: acc) registry [])
  in
  List.iter
    (fun p ->
      List.iteri
        (fun i (wall, cyc) ->
          Buffer.add_string b
            (Printf.sprintf "#snapshot\t%s\t%d\t%.3f\t%Ld\n" p.name i
               (Int64.to_float wall /. 1e6)
               cyc))
        (snapshots p))
    entries;
  Hilti_obs.Export.write_file_atomic path (Buffer.contents b)

(* Expose profiler totals through the metrics scrape, so the periodic
   exporter subsumes the profiler's own dump format. *)
let () =
  Hilti_obs.Metrics.register_collector (fun () ->
      let entries =
        Mutex.protect registry_lock (fun () ->
            Hashtbl.fold (fun _ p acc -> p :: acc) registry [])
      in
      List.concat_map
        (fun p ->
          let label = Some ("name", p.name) in
          [
            Hilti_obs.Metrics.
              {
                s_name = "profiler_calls";
                s_help = "Invocations per profiler block";
                s_label = label;
                s_value = V_counter p.invocations;
              };
            Hilti_obs.Metrics.
              {
                s_name = "profiler_wall_ns";
                s_help = "Accumulated wall time per profiler block";
                s_label = label;
                s_value = V_counter (Int64.to_int p.wall_ns);
              };
            Hilti_obs.Metrics.
              {
                s_name = "profiler_cycles";
                s_help = "Accumulated abstract cycles per profiler block";
                s_label = label;
                s_value = V_counter (Int64.to_int p.cycles);
              };
          ])
        entries)
