(** Input sources for packet data (HILTI [iosrc]).

    An [iosrc] abstracts where packets come from — a pcap trace file, a
    synthetic generator, a live interface.  Consumers pull timestamped raw
    frames one at a time, which keeps the analysis loop identical across
    sources.  Concrete constructors live in the network substrate
    ({!Hilti_net.Pcap}) and the trace generator. *)

open Hilti_types

type packet = { ts : Time_ns.t; data : string }

type t = {
  kind : string;              (** e.g. "pcap", "synthetic" *)
  next : unit -> packet option;  (** pull the next packet; [None] at EOF *)
  mutable delivered : int;
}

let m_packets_read =
  Hilti_obs.Metrics.counter "packets_read"
    ~help:"Packets delivered by all input sources"

let m_bytes_read =
  Hilti_obs.Metrics.counter "bytes_read"
    ~help:"Payload bytes delivered by all input sources"

let create ~kind next = { kind; next; delivered = 0 }

let kind t = t.kind
let delivered t = t.delivered

(** Pull the next packet, [None] once exhausted. *)
let read t =
  match t.next () with
  | Some p ->
      t.delivered <- t.delivered + 1;
      Hilti_obs.Metrics.incr m_packets_read;
      Hilti_obs.Metrics.add m_bytes_read (String.length p.data);
      Some p
  | None -> None

(** Fill [buf.(0 .. n-1)] with the next packets; returns how many were
    delivered.  A short count means the source is exhausted (the same
    EOF contract as [read] returning [None]).  Input accounting is
    batch-granular: one counter update for the whole batch instead of
    two per packet — the input half of the driver's batched loop. *)
let read_batch t buf n =
  let filled = ref 0 and bytes = ref 0 in
  (try
     while !filled < n do
       match t.next () with
       | Some p ->
           buf.(!filled) <- p;
           incr filled;
           bytes := !bytes + String.length p.data
       | None -> raise Exit
     done
   with Exit -> ());
  let filled = !filled in
  if filled > 0 then begin
    t.delivered <- t.delivered + filled;
    Hilti_obs.Metrics.add m_packets_read filled;
    Hilti_obs.Metrics.add m_bytes_read !bytes
  end;
  filled

(** Iterate all remaining packets. *)
let iter f t =
  let rec go () =
    match read t with
    | Some p ->
        f p;
        go ()
    | None -> ()
  in
  go ()

let fold f t init =
  let acc = ref init in
  iter (fun p -> acc := f !acc p) t;
  !acc

(** Collect all remaining packets into a list (testing / compat shims). *)
let to_list t = List.rev (fold (fun acc p -> p :: acc) t [])

(** Build a source from an in-memory list (testing). *)
let of_list ?(kind = "list") packets =
  let remaining = ref packets in
  create ~kind (fun () ->
      match !remaining with
      | [] -> None
      | p :: rest ->
          remaining := rest;
          Some p)
