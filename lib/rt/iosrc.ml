(** Input sources for packet data (HILTI [iosrc]).

    An [iosrc] abstracts where packets come from — a pcap trace file, a
    synthetic generator, a live interface.  Consumers pull timestamped raw
    frames one at a time, which keeps the analysis loop identical across
    sources.  Concrete constructors live in the network substrate
    ({!Hilti_net.Pcap}) and the trace generator. *)

open Hilti_types

type packet = { ts : Time_ns.t; data : string }

type t = {
  kind : string;              (** e.g. "pcap", "synthetic" *)
  next : unit -> packet option;  (** pull the next packet; [None] at EOF *)
  mutable delivered : int;
}

let m_packets_read =
  Hilti_obs.Metrics.counter "packets_read"
    ~help:"Packets delivered by all input sources"

let m_bytes_read =
  Hilti_obs.Metrics.counter "bytes_read"
    ~help:"Payload bytes delivered by all input sources"

let create ~kind next = { kind; next; delivered = 0 }

let kind t = t.kind
let delivered t = t.delivered

(** Pull the next packet, [None] once exhausted. *)
let read t =
  match t.next () with
  | Some p ->
      t.delivered <- t.delivered + 1;
      Hilti_obs.Metrics.incr m_packets_read;
      Hilti_obs.Metrics.add m_bytes_read (String.length p.data);
      Some p
  | None -> None

(** Iterate all remaining packets. *)
let iter f t =
  let rec go () =
    match read t with
    | Some p ->
        f p;
        go ()
    | None -> ()
  in
  go ()

let fold f t init =
  let acc = ref init in
  iter (fun p -> acc := f !acc p) t;
  !acc

(** Collect all remaining packets into a list (testing / compat shims). *)
let to_list t = List.rev (fold (fun acc p -> p :: acc) t [])

(** Build a source from an in-memory list (testing). *)
let of_list ?(kind = "list") packets =
  let remaining = ref packets in
  create ~kind (fun () ->
      match !remaining with
      | [] -> None
      | p :: rest ->
          remaining := rest;
          Some p)
