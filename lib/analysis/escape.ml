(** Re-export of the flow-of-values escape analysis so analysis clients
    depend on [Hilti_analysis] alone. *)

include Hilti_vm.Escape
