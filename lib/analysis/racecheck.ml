(** Static shard-race detector.

    The sharded data plane (PR 7) promises byte-identical output to serial
    execution, which holds only if nothing a packet-path activation does
    can be observed by an activation on another shard.  This pass turns
    that promise from convention into a checked property: given the
    program's {e sharded entry points} (the functions the dispatcher calls
    once per packet, e.g. a grammar's exported [parse_*] or a firewall's
    [match_packet]), it walks their synchronous call-graph closure — the
    {e packet path} — using the interprocedural summaries
    ([Hilti_vm.Summary]) and flags every operation whose effect can cross
    a shard boundary:

    - [race/global-write]: a direct global store on the packet path, or a
      mutation of a global-reachable container that is not {e flow-keyed}
      (every key/value operand derived from the enclosing function's
      parameters — shard dispatch hashes the flow key, so flow-keyed
      entries are only ever touched by one shard).  Globals written only
      during setup (functions not reachable from any sharded entry) are
      fine.
    - [race/timer-cross-shard]: the packet path binds or schedules a
      callable whose target (transitively) writes globals — when the
      timer fires or the job runs, it may execute on a different domain
      than the one that created it.
    - [race/hostapi-shared]: the packet path calls a host-API function
      audited as writing host-global state, or one missing from the audit
      table entirely.  Event emission and I/O are fine: the collector
      replays per-flow event logs serially.

    Reads are never flagged — read-only-after-setup globals (compiled
    regexps, classifier rule tables) are exactly the sharing the paper's
    model permits. *)

module Bytecode = Hilti_vm.Bytecode
module Summary = Hilti_vm.Summary
module Effects = Hilti_passes.Effects

type race = {
  r_rule : string;   (** [race/global-write] etc. *)
  r_func : string;   (** packet-path function containing the operation *)
  r_pc : int;        (** bytecode pc of the flagged instruction *)
  r_msg : string;
}

(* ---- Flow-key taint -------------------------------------------------------- *)

(* Registers of [f] whose value is derived only from [f]'s parameters and
   constants — the operands a shard-symmetric flow key can be built from.
   Fixpoint over the instruction array (flow-insensitive, which
   over-approximates reachability of definitions and therefore
   under-approximates taint only when a register is reused for both a
   param-derived and a global-derived value — in that case it correctly
   drops out of the taint set). *)
let param_derived (f : Bytecode.func) : bool array =
  let n = Array.length f.reg_defaults in
  let derived = Array.make n false in
  let poisoned = Array.make n false in
  (* Seed: parameters, plus every register initialized at entry — those
     hold constants (the lowering's constant pool and typed local
     defaults); a later write from a non-derived source poisons them. *)
  for i = 0 to n - 1 do
    if i < f.Bytecode.nparams || (i < Array.length f.Bytecode.entry_init && f.Bytecode.entry_init.(i))
    then derived.(i) <- true
  done;
  let changed = ref true in
  let ok r = r < 0 || (r < n && derived.(r) && not (poisoned.(r))) in
  let set d v =
    if d >= 0 && d < n then begin
      if v then begin
        if (not poisoned.(d)) && not derived.(d) then begin
          derived.(d) <- true;
          changed := true
        end
      end
      else if not poisoned.(d) then begin
        poisoned.(d) <- true;
        if derived.(d) then derived.(d) <- false;
        changed := true
      end
    end
  in
  (* Specialized code moves scalars through the unboxed int/float banks;
     track them with the same seed (bank templates hold constants) and
     poison semantics so derivedness survives an unbox/box round trip. *)
  let ni, nf =
    match f.Bytecode.spec with
    | Some sp -> (sp.Bytecode.n_int, sp.Bytecode.n_float)
    | None -> (0, 0)
  in
  let mk_bank k = (Array.make (max k 1) true, Array.make (max k 1) false) in
  let ib, ibp = mk_bank ni and fb, fbp = mk_bank nf in
  let bok (b, bp) i = i >= 0 && i < Array.length b && b.(i) && not bp.(i) in
  let bset (b, bp) d v =
    if d >= 0 && d < Array.length b then begin
      if v then begin
        if (not bp.(d)) && not b.(d) then begin
          b.(d) <- true;
          changed := true
        end
      end
      else if not bp.(d) then begin
        bp.(d) <- true;
        if b.(d) then b.(d) <- false;
        changed := true
      end
    end
  in
  let iok = bok (ib, ibp) and iset = bset (ib, ibp) in
  let fok = bok (fb, fbp) and fset = bset (fb, fbp) in
  while !changed do
    changed := false;
    Array.iter
      (fun instr ->
        match instr with
        | Bytecode.Const (d, _) -> set d true
        | Bytecode.Mov (d, s) -> set d (ok s)
        | Bytecode.LoadGlobal (d, _) -> set d false
        | Bytecode.Call (_, _, d) | Bytecode.CallC (_, _, d) -> set d false
        | Bytecode.Bind (_, _, d) -> set d false
        | Bytecode.Prim (p, args, d) -> (
            match p with
            | Bytecode.P_new _ -> set d false
            | _ -> set d (Array.for_all ok args))
        | Bytecode.IConst_u (d, _) -> iset d true
        | Bytecode.IMov_u (d, s) -> iset d (iok s)
        | Bytecode.UnboxI (d, s) -> iset d (ok s)
        | Bytecode.BoxI (d, s) -> set d (iok s)
        | Bytecode.IArith_u (_, _, d, a, b) -> iset d (iok a && iok b)
        | Bytecode.IArithK_u (_, _, d, a, _) -> iset d (iok a)
        | Bytecode.ICmp_u (_, d, a, b) -> set d (iok a && iok b)
        | Bytecode.ICmpK_u (_, d, a, _) -> set d (iok a)
        | Bytecode.FConst_u (d, _) -> fset d true
        | Bytecode.FMov_u (d, s) -> fset d (fok s)
        | Bytecode.UnboxF (d, s) -> fset d (ok s)
        | Bytecode.BoxF (d, s) -> set d (fok s)
        | Bytecode.FArith_u (_, d, a, b) -> fset d (fok a && fok b)
        | Bytecode.FCmp_u (_, d, a, b) -> set d (fok a && fok b)
        | _ -> ())
      f.Bytecode.code
  done;
  derived

(* Mutating container primitives: the packet path may apply them to a
   global-reachable container only flow-keyed. *)
let mutates_container (p : Bytecode.prim) =
  match p with
  | Bytecode.P_list
      (Bytecode.L_append | Bytecode.L_push_front | Bytecode.L_pop_front
      | Bytecode.L_clear) ->
      true
  | Bytecode.P_vector
      (Bytecode.V_push_back | Bytecode.V_set | Bytecode.V_clear
      | Bytecode.V_pop_back) ->
      true
  | Bytecode.P_set
      (Bytecode.SE_insert | Bytecode.SE_remove | Bytecode.SE_clear) ->
      true
  | Bytecode.P_map
      (Bytecode.M_insert | Bytecode.M_remove | Bytecode.M_clear) ->
      true
  | Bytecode.P_struct (Bytecode.ST_set _ | Bytecode.ST_unset _) -> true
  | Bytecode.P_classifier (Bytecode.CL_add | Bytecode.CL_compile) -> true
  | _ -> false

(* Registers that may hold a global-reachable value: loaded from a global
   slot, or read out of such a value.  Flow-insensitive union — a false
   positive here only demands that a mutation be flow-keyed. *)
let global_derived (f : Bytecode.func) : bool array =
  let n = Array.length f.reg_defaults in
  let g = Array.make n false in
  let changed = ref true in
  let mark d v = if d >= 0 && d < n && v && not g.(d) then begin g.(d) <- true; changed := true end in
  let is r = r >= 0 && r < n && g.(r) in
  while !changed do
    changed := false;
    Array.iter
      (fun instr ->
        match instr with
        | Bytecode.LoadGlobal (d, _) -> mark d true
        | Bytecode.Mov (d, s) -> mark d (is s)
        | Bytecode.Prim (p, args, d) -> (
            match p with
            | Bytecode.P_list (Bytecode.L_front | Bytecode.L_back)
            | Bytecode.P_vector Bytecode.V_get
            | Bytecode.P_map (Bytecode.M_get | Bytecode.M_get_default)
            | Bytecode.P_struct
                (Bytecode.ST_get _ | Bytecode.ST_get_default _)
            | Bytecode.P_classifier Bytecode.CL_get
            | Bytecode.P_select | Bytecode.P_make_tuple
            | Bytecode.P_tuple_get _ ->
                mark d (Array.exists is args)
            | _ -> ())
        | _ -> ())
      f.Bytecode.code
  done;
  g

(* ---- The detector ----------------------------------------------------------- *)

(** Run the detector.  [shard_entries] names the functions the sharded
    dispatcher invokes per packet; unknown names are ignored (a unit
    without the entry simply has no packet path).  Results are sorted
    (rule, func, pc). *)
let check (p : Bytecode.program) ~(shard_entries : string list) : race list =
  let entries =
    List.filter_map (fun n -> Bytecode.find_func p n) shard_entries
  in
  if entries = [] then []
  else begin
    let s = Summary.compute p in
    let on_path = Summary.reachable_from s entries in
    let races = ref [] in
    let flag rule fi pc msg =
      races :=
        { r_rule = rule; r_func = p.Bytecode.funcs.(fi).Bytecode.name; r_pc = pc; r_msg = msg }
        :: !races
    in
    Array.iteri
      (fun fi (f : Bytecode.func) ->
        if on_path.(fi) then begin
          let derived = lazy (param_derived f) in
          let globalish = lazy (global_derived f) in
          Array.iteri
            (fun pc instr ->
              match instr with
              | Bytecode.StoreGlobal (slot, _) ->
                  flag "race/global-write" fi pc
                    (Printf.sprintf
                       "global '%s' is written on the sharded packet path"
                       p.Bytecode.globals.(slot))
              | Bytecode.Prim (prim, args, _)
                when mutates_container prim
                     && Array.length args > 0
                     && (Lazy.force globalish).(args.(0)) ->
                  let keys = Array.sub args 1 (Array.length args - 1) in
                  let flow_keyed =
                    Array.for_all
                      (fun r ->
                        r < Array.length (Lazy.force derived)
                        && (Lazy.force derived).(r))
                      keys
                  in
                  if not flow_keyed then
                    flag "race/global-write" fi pc
                      "global container mutated with a key not derived from \
                       the flow parameters"
              | Bytecode.Bind (callee, _, _) | Bytecode.Schedule (callee, _, _)
                ->
                  let ct = s.Summary.total.(callee) in
                  if
                    (not (Summary.IntSet.is_empty ct.Summary.writes_globals))
                    || ct.Summary.writes_host_state
                  then
                    flag "race/timer-cross-shard" fi pc
                      (Printf.sprintf
                         "deferred call to '%s' writes globals; it may fire \
                          on a different shard"
                         p.Bytecode.funcs.(callee).Bytecode.name)
              | Bytecode.CallC (name, _, _) -> (
                  match Effects.host_effects name with
                  | None ->
                      flag "race/hostapi-shared" fi pc
                        (Printf.sprintf
                           "host function '%s' is not in the audited effect \
                            table"
                           name)
                  | Some h ->
                      if List.mem Effects.Writes_global h.Effects.hf_effects
                      then
                        flag "race/hostapi-shared" fi pc
                          (Printf.sprintf
                             "host function '%s' writes shared host state"
                             name))
              | _ -> ())
            f.Bytecode.code
        end)
      p.Bytecode.funcs;
    List.sort compare !races
  end
