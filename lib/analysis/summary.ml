(** Re-export of the interprocedural call-graph/effect-summary analysis so
    analysis clients depend on [Hilti_analysis] alone. *)

include Hilti_vm.Summary
