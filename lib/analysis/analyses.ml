(** Re-export of the stock IR analyses (definite initialization, liveness,
    reaching definitions, reachability) built on {!Dataflow}. *)

include Hilti_passes.Analyses
