(** Re-export of the flat-bytecode verifier so lint clients get the whole
    static-analysis surface from one library. *)

include Hilti_vm.Verify
