(** Re-export of the generic worklist dataflow solver so analysis clients
    depend on [Hilti_analysis] alone. *)

include Hilti_passes.Dataflow
