(** The [hiltic -analyze] lint engine: run the whole static-analysis
    surface over a set of IR modules and report findings.

    A lint run mirrors the compile pipeline — link, validate, per-function
    dataflow analyses, lower, bytecode verify — but never executes
    anything and never stops at the first problem: every stage contributes
    {!finding}s and later stages are skipped only when an earlier stage
    left the IR in a state they cannot consume (e.g. lowering after
    validation errors).

    Output is machine-readable and stable: one tab-separated line per
    finding ({!to_line}), sorted by {!compare} so reruns diff cleanly. *)

open Module_ir

type severity = Error | Warning

(* Ordered so that sorting puts errors first. *)
let severity_rank = function Error -> 0 | Warning -> 1
let severity_to_string = function Error -> "error" | Warning -> "warning"

type finding = {
  severity : severity;
  rule : string;
      (** stable rule id: [validate], [lower], [verify], [link],
          [unused-local], [unreachable-block], [use-before-init],
          [dead-store] *)
  func : string;  (** enclosing function, or ["-"] for module-level *)
  where : string;  (** block label (or [block@idx]), or ["-"] *)
  message : string;
}

let compare_finding a b =
  let c = compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.rule b.rule in
    if c <> 0 then c
    else
      let c = String.compare a.func b.func in
      if c <> 0 then c
      else
        let c = String.compare a.where b.where in
        if c <> 0 then c else String.compare a.message b.message

(** One tab-separated line: [severity<TAB>rule<TAB>func<TAB>where<TAB>message].
    Tabs/newlines in messages are replaced so the format stays parseable. *)
let to_line f =
  let clean s =
    String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s
  in
  Printf.sprintf "%s\t%s\t%s\t%s\t%s"
    (severity_to_string f.severity)
    f.rule f.func f.where (clean f.message)

let errors findings = List.filter (fun f -> f.severity = Error) findings

(* ---- Per-function warning analyses ------------------------------------ *)

let analyze_func (f : func) : finding list =
  let w rule where message =
    { severity = Warning; rule; func = f.fname; where; message }
  in
  let unreachable =
    List.map
      (fun l -> w "unreachable-block" l "block is unreachable from entry")
      (Analyses.unreachable_blocks f)
  in
  let unused =
    List.map
      (fun v -> w "unused-local" "-" (Printf.sprintf "local '%s' is never used" v))
      (Analyses.unused_locals f)
  in
  let ubi =
    List.map
      (fun (u : Analyses.use_before_init) ->
        w "use-before-init" u.ubi_block
          (Printf.sprintf "local '%s' may be read before initialization (at '%s')"
             u.ubi_var
             (Instr.to_string u.ubi_instr)))
      (Analyses.use_before_init f)
  in
  let ds =
    List.map
      (fun (d : Analyses.dead_store) ->
        w "dead-store" d.ds_block
          (Printf.sprintf "value stored to '%s' is never read (at '%s')"
             d.ds_var
             (Instr.to_string d.ds_instr)))
      (Analyses.dead_stores f)
  in
  unreachable @ unused @ ubi @ ds

(* ---- Whole-program lint ----------------------------------------------- *)

(** Lint a set of modules as one linked unit.  [optimize] runs the
    standard pipeline before lowering (defaults to off so findings refer
    to the program as written).  Never raises: every failure mode becomes
    an [Error] finding.  Result is sorted by {!compare_finding}. *)
let analyze ?(optimize = false) (modules : Module_ir.t list) : finding list =
  let err rule message = { severity = Error; rule; func = "-"; where = "-"; message } in
  let findings =
    match Hilti_passes.Linker.link modules with
    | exception Hilti_passes.Linker.Link_error msg -> [ err "link" msg ]
    | linked -> (
        let validate_errors = Validate.check_module linked in
        let warnings =
          List.concat_map analyze_func (linked.funcs @ linked.hooks)
        in
        let structural = List.map (err "validate") validate_errors in
        if validate_errors <> [] then structural @ warnings
        else begin
          if optimize then ignore (Hilti_passes.Pipeline.optimize linked);
          match Hilti_vm.Lower.lower_module linked with
          | exception Hilti_vm.Lower.Error msg ->
              err "lower" msg :: warnings
          | program ->
              let report = Hilti_vm.Verify.verify program in
              List.map (err "verify") report.Hilti_vm.Verify.errors @ warnings
        end)
  in
  List.sort compare_finding findings

(** Render a full report: one {!to_line} per finding plus a trailing
    summary line [# errors=N warnings=M]. *)
let report_to_string findings =
  let buf = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string buf (to_line f);
      Buffer.add_char buf '\n')
    findings;
  let nerr = List.length (errors findings) in
  Buffer.add_string buf
    (Printf.sprintf "# errors=%d warnings=%d\n" nerr
       (List.length findings - nerr));
  Buffer.contents buf
