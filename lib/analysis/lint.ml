(** The [hiltic -analyze] lint engine: run the whole static-analysis
    surface over a set of IR modules and report findings.

    A lint run mirrors the compile pipeline — link, validate, per-function
    dataflow analyses, lower, bytecode verify — but never executes
    anything and never stops at the first problem: every stage contributes
    {!finding}s and later stages are skipped only when an earlier stage
    left the IR in a state they cannot consume (e.g. lowering after
    validation errors).

    Output is machine-readable and stable: one tab-separated line per
    finding ({!to_line}), sorted by {!compare} so reruns diff cleanly. *)

open Module_ir

type severity = Error | Warning

(* Ordered so that sorting puts errors first. *)
let severity_rank = function Error -> 0 | Warning -> 1
let severity_to_string = function Error -> "error" | Warning -> "warning"

type finding = {
  severity : severity;
  rule : string;
      (** stable rule id: [validate], [lower], [verify], [link],
          [unused-local], [unreachable-block], [use-before-init],
          [dead-store], [race/global-write], [race/timer-cross-shard],
          [race/hostapi-shared] *)
  func : string;  (** enclosing function, or ["-"] for module-level *)
  where : string;  (** block label (or [block@idx]), or ["-"] *)
  location : string;
      (** finer position inside the block/function: the source location
          recorded on the instruction, or [pc@N] for bytecode-level
          findings, or ["-"].  Also the deterministic tiebreak for
          findings sharing a (severity, rule, func) triple. *)
  message : string;
}

let compare_finding a b =
  let c = compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.rule b.rule in
    if c <> 0 then c
    else
      let c = String.compare a.func b.func in
      if c <> 0 then c
      else
        let c = String.compare a.where b.where in
        if c <> 0 then c
        else
          let c = String.compare a.location b.location in
          if c <> 0 then c else String.compare a.message b.message

let clean_field s =
  String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s

(** One tab-separated line:
    [severity<TAB>rule<TAB>func<TAB>where<TAB>location<TAB>message].
    Tabs/newlines in fields are replaced so the format stays parseable. *)
let to_line f =
  Printf.sprintf "%s\t%s\t%s\t%s\t%s\t%s"
    (severity_to_string f.severity)
    f.rule f.func f.where (clean_field f.location) (clean_field f.message)

let errors findings = List.filter (fun f -> f.severity = Error) findings

(* ---- Per-function warning analyses ------------------------------------ *)

let analyze_func (f : func) : finding list =
  let w ?(location = "-") rule where message =
    { severity = Warning; rule; func = f.fname; where; location; message }
  in
  let unreachable =
    List.map
      (fun l -> w "unreachable-block" l "block is unreachable from entry")
      (Analyses.unreachable_blocks f)
  in
  let unused =
    List.map
      (fun v -> w "unused-local" "-" (Printf.sprintf "local '%s' is never used" v))
      (Analyses.unused_locals f)
  in
  let ubi =
    List.map
      (fun (u : Analyses.use_before_init) ->
        w ~location:u.ubi_instr.Instr.location "use-before-init" u.ubi_block
          (Printf.sprintf "local '%s' may be read before initialization (at '%s')"
             u.ubi_var
             (Instr.to_string u.ubi_instr)))
      (Analyses.use_before_init f)
  in
  let ds =
    List.map
      (fun (d : Analyses.dead_store) ->
        w ~location:d.ds_instr.Instr.location "dead-store" d.ds_block
          (Printf.sprintf "value stored to '%s' is never read (at '%s')"
             d.ds_var
             (Instr.to_string d.ds_instr)))
      (Analyses.dead_stores f)
  in
  unreachable @ unused @ ubi @ ds

(* ---- Whole-program lint ----------------------------------------------- *)

(** Lint a set of modules as one linked unit.  [optimize] runs the
    standard pipeline before lowering (defaults to off so findings refer
    to the program as written).  [shard_entries] names the sharded
    dispatch entry points; when non-empty the static shard-race detector
    ({!Racecheck}) runs over the lowered program and races surface as
    [Error] findings.  Never raises: every failure mode becomes an
    [Error] finding.  Result is sorted by {!compare_finding}. *)
let analyze ?(optimize = false) ?(shard_entries = []) (modules : Module_ir.t list)
    : finding list =
  let err rule message =
    { severity = Error; rule; func = "-"; where = "-"; location = "-"; message }
  in
  let findings =
    match Hilti_passes.Linker.link modules with
    | exception Hilti_passes.Linker.Link_error msg -> [ err "link" msg ]
    | linked -> (
        let validate_errors = Validate.check_module linked in
        let warnings =
          List.concat_map analyze_func (linked.funcs @ linked.hooks)
        in
        let structural = List.map (err "validate") validate_errors in
        if validate_errors <> [] then structural @ warnings
        else begin
          if optimize then ignore (Hilti_passes.Pipeline.optimize linked);
          match Hilti_vm.Lower.lower_module linked with
          | exception Hilti_vm.Lower.Error msg ->
              err "lower" msg :: warnings
          | program ->
              let verify_errors =
                let report = Hilti_vm.Verify.verify program in
                List.map (err "verify") report.Hilti_vm.Verify.errors
              in
              let races =
                if shard_entries = [] then []
                else
                  List.map
                    (fun (r : Racecheck.race) ->
                      {
                        severity = Error;
                        rule = r.Racecheck.r_rule;
                        func = r.Racecheck.r_func;
                        where = "-";
                        location = Printf.sprintf "pc@%d" r.Racecheck.r_pc;
                        message = r.Racecheck.r_msg;
                      })
                    (Racecheck.check program ~shard_entries)
              in
              verify_errors @ races @ warnings
        end)
  in
  List.sort compare_finding findings

(** Render a full report: one {!to_line} per finding plus a trailing
    summary line [# errors=N warnings=M]. *)
let report_to_string findings =
  let buf = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string buf (to_line f);
      Buffer.add_char buf '\n')
    findings;
  let nerr = List.length (errors findings) in
  Buffer.add_string buf
    (Printf.sprintf "# errors=%d warnings=%d\n" nerr
       (List.length findings - nerr));
  Buffer.contents buf

(* ---- JSON rendering ----------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** Render a report as JSON with a stable key order — the field order of
    {!finding}, findings sorted by {!compare_finding} — so reruns diff
    cleanly and downstream tooling can hash the output. *)
let report_to_json findings =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"severity\":\"%s\",\"rule\":\"%s\",\"func\":\"%s\",\"where\":\"%s\",\"location\":\"%s\",\"message\":\"%s\"}"
           (severity_to_string f.severity)
           (json_escape f.rule) (json_escape f.func) (json_escape f.where)
           (json_escape f.location) (json_escape f.message)))
    findings;
  let nerr = List.length (errors findings) in
  Buffer.add_string buf
    (Printf.sprintf "],\"errors\":%d,\"warnings\":%d}\n" nerr
       (List.length findings - nerr));
  Buffer.contents buf
