(** The BinPAC++ runtime interface for host applications (Fig. 6(b)):
    loading compiled parsers and driving them — either on complete input
    or incrementally, feeding chunks as they arrive from the network and
    resuming the suspended parse fiber (§3.2's fiber workflow). *)

open Hilti_vm

type t = {
  api : Host_api.t;
  grammar : Ast.grammar;
}

(** Compile and load a grammar.  [prepare] can add further IR to the
    module before compilation — e.g. the Bro event bridge's hook bodies.
    [verify]/[specialize] select the VM dispatch loop the parser runs on
    (checked / verified / specialized) — the fuzzer drives the same
    grammar through all three as a differential oracle. *)
let load ?(optimize = true) ?(verify = true) ?(specialize = true) ?prepare
    (g : Ast.grammar) : t =
  let m = Codegen.compile g in
  (match prepare with Some f -> f m | None -> ());
  let api = Host_api.compile ~optimize ~verify ~specialize [ m ] in
  ignore (Host_api.call api (g.Ast.gname ^ "::init") []);
  { api; grammar = g }

let parse_fn t unit_name = t.grammar.Ast.gname ^ "::parse_" ^ unit_name

exception Parse_failed of string

(* The exception contract: parse-time failures surface as [Parse_failed],
   never as raw OCaml exceptions.  Besides HILTI exceptions this maps the
   raw [Failure]/[Invalid_argument]/[Not_found] that byte extraction can
   raise on truncated or hostile input.  Anything else (notably
   [Vm.Step_budget_exceeded]) passes through untouched. *)
let protect what f =
  try f () with
  | Value.Hilti_error e ->
      raise (Parse_failed (e.Value.ename ^ ": " ^ Value.to_string e.Value.earg))
  | Failure m | Invalid_argument m -> raise (Parse_failed (what ^ ": " ^ m))
  | Not_found -> raise (Parse_failed (what ^ ": not found"))

let unwrap_result = function
  | Value.Tuple [| st; _ |] -> st
  | v -> raise (Parse_failed ("unexpected parser result " ^ Value.to_string v))

(** Parse a complete, already-frozen bytes object; returns the unit
    struct.  The zero-copy entry: no byte is moved on the way in. *)
let parse_bytes t ~unit_name (b : Hilti_types.Hbytes.t) : Value.t =
  let it = Value.Iter (Value.Ibytes (Hilti_types.Hbytes.begin_ b)) in
  protect "parse"
    (fun () -> unwrap_result (Host_api.call t.api (parse_fn t unit_name) [ it; it ]))

(** Parse complete input; returns the unit struct.  Wraps the string in a
    frozen bytes object without copying it. *)
let parse_string t ~unit_name (input : string) : Value.t =
  parse_bytes t ~unit_name (Hilti_types.Hbytes.frozen_of_string input)

(** Parse a payload slice in place — zero-copy when the view's backing
    object is frozen (packet payloads are). *)
let parse_view t ~unit_name (v : Hilti_types.Hbytes.view) : Value.t =
  parse_bytes t ~unit_name (Hilti_types.Hbytes.of_view v)

(* ---- Incremental sessions ------------------------------------------------------ *)

type session = {
  parser : t;
  data : Hilti_types.Hbytes.t;
  run : Host_api.parse_run;
}

type status =
  | Done of Value.t         (** parse finished with the unit struct *)
  | Blocked                 (** waiting for more input *)
  | Failed of string        (** parse error *)

let status_of_run run : status =
  match Host_api.outcome run with
  | Some (Hilti_rt.Fiber.Done v) -> Done (unwrap_result v)
  | Some Hilti_rt.Fiber.Suspended -> Blocked
  | Some (Hilti_rt.Fiber.Failed (Value.Hilti_error e)) ->
      Failed (e.Value.ename ^ ": " ^ Value.to_string e.Value.earg)
  | Some (Hilti_rt.Fiber.Failed e) ->
      (* A fiber that died with a raw OCaml exception violated the
         exception contract; keep the marker so the fuzzer's oracle can
         tell it apart from a clean grammar-level reject. *)
      Failed ("uncaught: " ^ Printexc.to_string e)
  | None -> Blocked

(** Start an incremental parse; input arrives later via {!feed}. *)
let session t ~unit_name : session =
  let data = Hilti_types.Hbytes.create () in
  let it = Value.Iter (Value.Ibytes (Hilti_types.Hbytes.begin_ data)) in
  let run = Host_api.call_fiber t.api (parse_fn t unit_name) [ it; it ] in
  { parser = t; data; run }

let status s = status_of_run s.run

(** Append network data and resume the suspended parser. *)
let feed s chunk : status =
  Hilti_types.Hbytes.append s.data chunk;
  ignore (Host_api.resume s.run);
  status s

(** Declare end-of-input and resume; the parser must now finish or fail. *)
let finish s : status =
  Hilti_types.Hbytes.freeze s.data;
  ignore (Host_api.resume s.run);
  match status s with
  | Blocked -> Failed "parser suspended past end of input"
  | other -> other

let cancel s = Host_api.cancel s.run

(** Bytes the session still buffers: the unconsumed parse window.  Grammars
    that trim (e.g. HTTP's stream units) keep this bounded by one message
    regardless of how much has been fed. *)
let retained s = Hilti_types.Hbytes.length s.data

(* ---- Struct access helpers (the "C API" of Fig. 6(b)) ---------------------------- *)

let field (st : Value.t) name : Value.t option =
  let s = Value.as_struct st in
  match !(Value.struct_field s name) with v -> v | exception _ -> None

let field_exn st name =
  match field st name with
  | Some v -> v
  | None -> raise (Parse_failed ("unset field " ^ name))

let field_bytes st name =
  protect ("field " ^ name)
    (fun () -> Hilti_types.Hbytes.to_string (Value.as_bytes (field_exn st name)))

let field_int st name =
  protect ("field " ^ name) (fun () -> Value.as_int (field_exn st name))

let field_list st name =
  protect ("field " ^ name)
    (fun () -> Deque.to_list (Value.as_list (field_exn st name)))
