(** BinPAC++ grammar AST (§4 "A Yacc for Network Protocols", Fig. 6/7).

    A grammar module declares named token constants (regular expressions)
    and [unit] types composed of fields parsed in sequence.  Beyond pure
    syntax, units carry variables and hooks with imperative statements —
    the "semantic constructs for annotating, controlling, and interfacing
    to the parsing process" that BinPAC++ adds over classic BinPAC. *)

(* ---- Expressions (attribute arguments, conditions, hook statements) ------- *)

type expr =
  | E_int of int64
  | E_bool of bool
  | E_bytes of string           (** string literals are byte literals *)
  | E_field of string           (** [self.name] *)
  | E_elem_field of string      (** [$$.name], the just-parsed list element *)
  | E_binop of string * expr * expr  (** == != < > <= >= + - * && || *)
  | E_not of expr
  | E_call of string * expr list
      (** builtins: to_int, to_int16, len, lower, has, offset, band, shr *)

type stmt =
  | S_assign of string * expr   (** self.<name> = expr *)
  | S_if of expr * stmt list * stmt list

(* ---- Field parse specifications ------------------------------------------- *)

type endian = Big | Little

type list_stop =
  | Stop_count of expr            (** &count=expr *)
  | Stop_until_literal of string  (** &until_literal="..": consumed, then stop *)
  | Stop_until_elem of expr       (** &until_elem=(..$$..): stop after elem *)
  | Stop_eod                      (** stop at definite end of data *)

type parse_spec =
  | P_regexp of string            (** token; value is the matched bytes *)
  | P_literal of string           (** exact byte string; value is the bytes *)
  | P_uint of int * endian        (** width in bytes; value is int *)
  | P_varint                      (** MQTT-style base-128 varint, 1-4 bytes,
                                      7 data bits per byte, little groups
                                      first, bit 7 = continuation *)
  | P_bytes_length of expr        (** &length=expr raw bytes *)
  | P_bytes_until of string       (** bytes up to (and consuming) a literal *)
  | P_bytes_eod                   (** everything until definite end of data *)
  | P_unit of string              (** sub-unit by name *)
  | P_dnsname                     (** DNS name with compression pointers *)
  | P_list of parse_spec * list_stop * bool
      (** elem spec, stop condition, &trim: discard consumed input after
          each element so a stream-level unit holds O(1) buffered bytes.
          Only safe when no other field re-reads earlier input (e.g. DNS
          compression pointers must not set it). *)

type var_type = V_int | V_bool | V_bytes

type field = {
  fname : string option;          (** anonymous fields match but do not store *)
  parse : parse_spec;
  cond : expr option;             (** parse only when true *)
}

type unit_item =
  | Field of field
  | Var of string * var_type * expr option   (** name, type, initializer *)
  | Hook of string * stmt list    (** field name or "%done" / "%init" *)

type unit_decl = { uname : string; items : unit_item list }

type decl =
  | Const of string * string      (** token name, regex *)
  | Unit of unit_decl

type grammar = { gname : string; decls : decl list }

(* ---- Helpers ----------------------------------------------------------------- *)

let find_unit g name =
  List.find_map
    (function Unit u when u.uname = name -> Some u | _ -> None)
    g.decls

let find_const g name =
  List.find_map
    (function Const (n, re) when n = name -> Some re | _ -> None)
    g.decls

let unit_fields u =
  List.filter_map (function Field f -> Some f | _ -> None) u.items

let unit_vars u =
  List.filter_map (function Var (n, t, i) -> Some (n, t, i) | _ -> None) u.items

let unit_hooks u name =
  List.concat_map
    (function Hook (n, stmts) when n = name -> stmts | _ -> [])
    u.items

(** Struct fields a unit compiles to: named parse fields then vars. *)
let storage_fields u =
  List.filter_map (fun f -> f.fname) (unit_fields u)
  @ List.map (fun (n, _, _) -> n) (unit_vars u)
