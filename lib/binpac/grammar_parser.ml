(** Parser for BinPAC++ grammar files (.pac2), covering the syntax of
    Fig. 6(a)/7(a) plus the semantic extensions: variables, hooks,
    attributes ([&length], [&count], [&until_literal], [&until_elem],
    [&eod], [&little]), field conditions, and list fields. *)

open Ast

exception Parse_error of string * int

type tok =
  | ID of string
  | INT of int64
  | STR of string
  | REGEX of string
  | PUNCT of string  (* ; : = { } ( ) [ ] & . , % | plus multi-char ops *)
  | TEOF

type p = { mutable toks : (tok * int) list }

let fail p fmt =
  let line = match p.toks with (_, l) :: _ -> l | [] -> 0 in
  Printf.ksprintf (fun m -> raise (Parse_error (m, line))) fmt

(* ---- Tokenizer ----------------------------------------------------------- *)

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push t = toks := (t, !line) :: !toks in
  let is_id c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_'
  in
  (* A '/' starts a regex when the previous meaningful token cannot end an
     expression (so "a / b" division is not supported — grammars don't
     need it). *)
  let regex_ok () =
    match !toks with
    | (PUNCT (";" | ":" | "=" | "{" | "(" | "," | "|"), _) :: _ -> true
    | [] -> true
    | (ID "on", _) :: _ -> true
    | _ -> false
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then while !i < n && src.[!i] <> '\n' do incr i done
    else if c = '/' && regex_ok () then begin
      (* /regex/ with \/ escapes *)
      incr i;
      let buf = Buffer.create 16 in
      let fin = ref false in
      while not !fin do
        if !i >= n then raise (Parse_error ("unterminated regex", !line));
        (match src.[!i] with
        | '/' -> fin := true
        | '\\' when !i + 1 < n && src.[!i + 1] = '/' ->
            Buffer.add_char buf '/';
            incr i
        | ch -> Buffer.add_char buf ch);
        incr i
      done;
      push (REGEX (Buffer.contents buf))
    end
    else if c = '"' then begin
      incr i;
      let buf = Buffer.create 16 in
      let fin = ref false in
      while not !fin do
        if !i >= n then raise (Parse_error ("unterminated string", !line));
        (match src.[!i] with
        | '"' -> fin := true
        | '\\' when !i + 1 < n ->
            incr i;
            (match src.[!i] with
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | '0' -> Buffer.add_char buf '\000'
            | ch -> Buffer.add_char buf ch)
        | ch -> Buffer.add_char buf ch);
        incr i
      done;
      push (STR (Buffer.contents buf))
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do incr i done;
      push (INT (Int64.of_string (String.sub src start (!i - start))))
    end
    else if is_id c then begin
      let start = !i in
      while
        !i < n
        && (is_id src.[!i]
           || (src.[!i] = ':' && !i + 1 < n && src.[!i + 1] = ':'
               && ((!i + 2 < n && is_id src.[!i + 2]) || false)))
      do
        if src.[!i] = ':' then i := !i + 2 else incr i
      done;
      push (ID (String.sub src start (!i - start)))
    end
    else begin
      (* multi-char operators first *)
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "==" | "!=" | "<=" | ">=" | "&&" | "||" | "$$" ->
          push (PUNCT two);
          i := !i + 2
      | _ ->
          push (PUNCT (String.make 1 c));
          incr i
    end
  done;
  List.rev ((TEOF, !line) :: !toks)

(* ---- Token stream helpers ------------------------------------------------- *)

let peek p = match p.toks with (t, _) :: _ -> t | [] -> TEOF

let next p =
  match p.toks with
  | (t, _) :: rest ->
      p.toks <- rest;
      t
  | [] -> TEOF

let expect_punct p s =
  match next p with
  | PUNCT x when x = s -> ()
  | t ->
      fail p "expected '%s', got %s" s
        (match t with
        | ID x -> x
        | PUNCT x -> x
        | INT x -> Int64.to_string x
        | STR _ -> "string"
        | REGEX _ -> "regex"
        | TEOF -> "eof")

let ident p =
  match next p with ID s -> s | _ -> fail p "expected identifier"

(* ---- Expressions: precedence-climbing ------------------------------------- *)

let rec parse_expr p = parse_or p

and parse_or p =
  let l = parse_and p in
  if peek p = PUNCT "||" then begin
    ignore (next p);
    E_binop ("||", l, parse_or p)
  end
  else l

and parse_and p =
  let l = parse_cmp p in
  if peek p = PUNCT "&&" then begin
    ignore (next p);
    E_binop ("&&", l, parse_and p)
  end
  else l

and parse_cmp p =
  let l = parse_add p in
  match peek p with
  | PUNCT (("==" | "!=" | "<" | ">" | "<=" | ">=") as op) ->
      ignore (next p);
      E_binop (op, l, parse_add p)
  | _ -> l

and parse_add p =
  let rec go l =
    match peek p with
    | PUNCT (("+" | "-") as op) ->
        ignore (next p);
        go (E_binop (op, l, parse_mul p))
    | _ -> l
  in
  go (parse_mul p)

and parse_mul p =
  let rec go l =
    match peek p with
    | PUNCT "*" ->
        ignore (next p);
        go (E_binop ("*", l, parse_atom p))
    | _ -> l
  in
  go (parse_atom p)

and parse_atom p =
  match next p with
  | INT i -> E_int i
  | STR s -> E_bytes s
  | ID "true" -> E_bool true
  | ID "false" -> E_bool false
  | ID "self" ->
      expect_punct p ".";
      E_field (ident p)
  | PUNCT "$$" ->
      expect_punct p ".";
      E_elem_field (ident p)
  | PUNCT "!" -> E_not (parse_atom p)
  | PUNCT "(" ->
      let e = parse_expr p in
      expect_punct p ")";
      e
  | ID fn when peek p = PUNCT "(" ->
      ignore (next p);
      let args = ref [] in
      if peek p <> PUNCT ")" then begin
        args := [ parse_expr p ];
        while peek p = PUNCT "," do
          ignore (next p);
          args := parse_expr p :: !args
        done
      end;
      expect_punct p ")";
      E_call (fn, List.rev !args)
  | t ->
      fail p "expected expression, got %s"
        (match t with ID x -> x | PUNCT x -> x | _ -> "?")

(* ---- Statements ------------------------------------------------------------ *)

let rec parse_stmt p : stmt =
  match peek p with
  | ID "if" ->
      ignore (next p);
      expect_punct p "(";
      let c = parse_expr p in
      expect_punct p ")";
      let thens = parse_block p in
      let elses =
        if peek p = ID "else" then begin
          ignore (next p);
          parse_block p
        end
        else []
      in
      S_if (c, thens, elses)
  | ID "self" ->
      ignore (next p);
      expect_punct p ".";
      let f = ident p in
      expect_punct p "=";
      let e = parse_expr p in
      expect_punct p ";";
      S_assign (f, e)
  | _ -> fail p "expected statement"

and parse_block p : stmt list =
  expect_punct p "{";
  let stmts = ref [] in
  while peek p <> PUNCT "}" do
    stmts := parse_stmt p :: !stmts
  done;
  expect_punct p "}";
  List.rev !stmts

(* ---- Fields ---------------------------------------------------------------- *)

type attrs = {
  mutable a_length : expr option;
  mutable a_count : expr option;
  mutable a_until_literal : string option;
  mutable a_until_elem : expr option;
  mutable a_eod : bool;
  mutable a_little : bool;
  mutable a_trim : bool;
}

let parse_attrs p =
  let a =
    { a_length = None; a_count = None; a_until_literal = None;
      a_until_elem = None; a_eod = false; a_little = false; a_trim = false }
  in
  while peek p = PUNCT "&" do
    ignore (next p);
    match ident p with
    | "length" ->
        expect_punct p "=";
        a.a_length <- Some (parse_expr p)
    | "count" ->
        expect_punct p "=";
        a.a_count <- Some (parse_expr p)
    | "until_literal" -> (
        expect_punct p "=";
        match next p with
        | STR s -> a.a_until_literal <- Some s
        | _ -> fail p "&until_literal wants a string")
    | "until_elem" ->
        expect_punct p "=";
        a.a_until_elem <- Some (parse_expr p)
    | "eod" -> a.a_eod <- true
    | "little" -> a.a_little <- true
    | "trim" -> a.a_trim <- true
    | x -> fail p "unknown attribute &%s" x
  done;
  a

(* The core parse-spec: what one field matches. *)
let parse_base_spec p grammar_consts : parse_spec =
  match next p with
  | REGEX re -> P_regexp re
  | STR s -> P_literal s
  | ID "uint8" -> P_uint (1, Big)
  | ID "uint16" -> P_uint (2, Big)
  | ID "uint32" -> P_uint (4, Big)
  | ID "uint64" -> P_uint (8, Big)
  | ID "varint" -> P_varint
  | ID "bytes" -> P_bytes_eod  (* refined by attributes *)
  | ID "dnsname" -> P_dnsname
  | ID name -> (
      match List.assoc_opt name grammar_consts with
      | Some re -> P_regexp re
      | None -> P_unit name)
  | t ->
      fail p "expected parse spec, got %s"
        (match t with PUNCT x -> x | _ -> "?")

let refine_spec p spec (a : attrs) ~is_list =
  let base =
    match spec with
    | P_bytes_eod when a.a_length <> None -> P_bytes_length (Option.get a.a_length)
    | P_bytes_eod when a.a_until_literal <> None ->
        P_bytes_until (Option.get a.a_until_literal)
    | P_uint (w, _) when a.a_little -> P_uint (w, Little)
    | s -> s
  in
  if is_list then begin
    let stop =
      if a.a_count <> None then Stop_count (Option.get a.a_count)
      else if a.a_until_literal <> None && base <> P_bytes_until (Option.value ~default:"" a.a_until_literal)
      then Stop_until_literal (Option.get a.a_until_literal)
      else if a.a_until_elem <> None then Stop_until_elem (Option.get a.a_until_elem)
      else if a.a_eod then Stop_eod
      else fail p "list field needs &count, &until_literal, &until_elem or &eod"
    in
    P_list (base, stop, a.a_trim)
  end
  else begin
    if a.a_trim then fail p "&trim only applies to list fields";
    base
  end

let parse_field p grammar_consts ~fname : field =
  let spec = parse_base_spec p grammar_consts in
  let is_list =
    if peek p = PUNCT "[" then begin
      ignore (next p);
      expect_punct p "]";
      true
    end
    else false
  in
  let a = parse_attrs p in
  let cond =
    if peek p = ID "if" then begin
      ignore (next p);
      expect_punct p "(";
      let e = parse_expr p in
      expect_punct p ")";
      Some e
    end
    else None
  in
  expect_punct p ";";
  { fname; parse = refine_spec p spec a ~is_list; cond }

let parse_unit_item p grammar_consts : unit_item =
  match peek p with
  | ID "var" ->
      ignore (next p);
      let name = ident p in
      expect_punct p ":";
      let ty =
        match ident p with
        | "int" -> V_int
        | "bool" -> V_bool
        | "bytes" -> V_bytes
        | t -> fail p "unknown var type %s" t
      in
      let init =
        if peek p = PUNCT "=" then begin
          ignore (next p);
          Some (parse_expr p)
        end
        else None
      in
      expect_punct p ";";
      Var (name, ty, init)
  | ID "on" ->
      ignore (next p);
      let target =
        match next p with
        | ID n -> n
        | PUNCT "%" -> "%" ^ ident p
        | _ -> fail p "hook target"
      in
      let stmts = parse_block p in
      Hook (target, stmts)
  | PUNCT ":" ->
      (* anonymous field *)
      ignore (next p);
      Field (parse_field p grammar_consts ~fname:None)
  | ID name ->
      ignore (next p);
      expect_punct p ":";
      Field (parse_field p grammar_consts ~fname:(Some name))
  | t -> fail p "unexpected %s in unit" (match t with PUNCT x -> x | _ -> "?")

(* ---- Top level -------------------------------------------------------------- *)

(** Parse a grammar module from source text. *)
let parse (src : string) : grammar =
  let p = { toks = tokenize src } in
  (match next p with
  | ID "module" -> ()
  | _ -> fail p "expected 'module'");
  let gname = ident p in
  expect_punct p ";";
  let consts = ref [] in
  let decls = ref [] in
  let rec loop () =
    match peek p with
    | TEOF -> ()
    | ID "const" ->
        ignore (next p);
        let name = ident p in
        expect_punct p "=";
        (match next p with
        | REGEX re ->
            consts := (name, re) :: !consts;
            decls := Const (name, re) :: !decls
        | _ -> fail p "const wants a regex");
        expect_punct p ";";
        loop ()
    | ID "export" ->
        (* "export type X = unit {...}" -- export is implicit here *)
        ignore (next p);
        loop ()
    | ID "type" ->
        ignore (next p);
        let uname = ident p in
        expect_punct p "=";
        (match next p with
        | ID "unit" -> ()
        | _ -> fail p "expected 'unit'");
        expect_punct p "{";
        let items = ref [] in
        while peek p <> PUNCT "}" do
          items := parse_unit_item p !consts :: !items
        done;
        expect_punct p "}";
        expect_punct p ";";
        decls := Unit { uname; items = List.rev !items } :: !decls;
        loop ()
    | _ -> fail p "unexpected top-level token"
  in
  loop ();
  { gname; decls = List.rev !decls }
