(** BinPAC++ code generation: grammar -> HILTI module (§4).

    Every unit type compiles to a struct declaration plus a parse function

      [<G>::parse_<Unit>(cur: iterator<bytes>, msg: iterator<bytes>)
         -> tuple<ref<Unit>, iterator<bytes>>]

    where [msg] is the start of the enclosing message (needed by DNS name
    compression).  The generated code is {e fully incremental}: all input
    access goes through blocking bytes instructions, so when input runs
    out the parse function's fiber suspends transparently and resumes when
    the host appends more data — the key structural advantage §4 claims
    over classic BinPAC's manual buffering.

    Grammar hooks compile to HILTI hook bodies named
    [<G>::<Unit>::<field>] and [<G>::<Unit>] (for [%done]); host
    applications (e.g. the Bro event bridge) attach further bodies to the
    same hooks. *)

open Ast

exception Codegen_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Codegen_error s)) fmt

type ctx = {
  g : grammar;
  m : Module_ir.t;
  mutable regexes : (string * string) list;  (* pattern -> global name *)
  mutable label_counter : int;
  mutable need_dnsname : bool;
  mutable need_find_header : bool;
}

let fresh ctx prefix =
  ctx.label_counter <- ctx.label_counter + 1;
  Printf.sprintf "__%s%d" prefix ctx.label_counter

let qualified ctx name = ctx.g.gname ^ "::" ^ name

(* Register a regex pattern; returns the module global holding it. *)
let regex_global ctx pattern =
  match List.assoc_opt pattern ctx.regexes with
  | Some g -> g
  | None ->
      let g = Printf.sprintf "__re%d" (List.length ctx.regexes) in
      ctx.regexes <- ctx.regexes @ [ (pattern, g) ];
      Module_ir.add_global ctx.m g Htype.Regexp;
      g

(* ---- Types ------------------------------------------------------------------ *)

let rec field_htype ctx (spec : parse_spec) : Htype.t =
  match spec with
  | P_regexp _ | P_literal _ | P_bytes_length _ | P_bytes_until _ | P_bytes_eod
  | P_dnsname ->
      Htype.Bytes
  | P_uint _ | P_varint -> Htype.Int 64
  | P_unit n -> Htype.Ref (Htype.Struct (qualified ctx n))
  | P_list (s, _, _) -> Htype.Ref (Htype.List (field_htype ctx s))

let var_htype = function
  | V_int -> Htype.Int 64
  | V_bool -> Htype.Bool
  | V_bytes -> Htype.Bytes

let struct_decl ctx (u : unit_decl) : Module_ir.type_decl =
  let parse_fields =
    List.filter_map
      (fun f ->
        match f.fname with
        | Some n -> Some (n, field_htype ctx f.parse)
        | None -> None)
      (unit_fields u)
  in
  let var_fields =
    List.map (fun (n, t, _) -> (n, var_htype t)) (unit_vars u)
  in
  Module_ir.Struct_decl (parse_fields @ var_fields)

(* ---- Expressions -------------------------------------------------------------- *)

(* Compile an expression to an operand.  [self] is the unit struct under
   construction; [elem] (when in a &until_elem context) is the
   just-parsed list element. *)
let rec compile_expr ctx b ?elem (e : expr) : Instr.operand =
  let recur e = compile_expr ctx b ?elem e in
  match e with
  | E_int i -> Instr.Const (Constant.Int (i, 64))
  | E_bool v -> Instr.Const (Constant.Bool v)
  | E_bytes s -> Instr.Const (Constant.Bytes s)
  | E_field f ->
      Builder.emit b Htype.Any "struct.get" [ Instr.Local "self"; Instr.Member f ]
  | E_elem_field f -> (
      match elem with
      | Some elem_op ->
          Builder.emit b Htype.Any "struct.get" [ elem_op; Instr.Member f ]
      | None -> fail "$$ used outside &until_elem")
  | E_not e -> Builder.emit b Htype.Bool "bool.not" [ recur e ]
  | E_binop (op, l, r) -> (
      let lo = recur l and ro = recur r in
      match op with
      | "==" -> Builder.emit b Htype.Bool "equal" [ lo; ro ]
      | "!=" ->
          let eq = Builder.emit b Htype.Bool "equal" [ lo; ro ] in
          Builder.emit b Htype.Bool "bool.not" [ eq ]
      | "<" -> Builder.emit b Htype.Bool "int.lt" [ lo; ro ]
      | ">" -> Builder.emit b Htype.Bool "int.gt" [ lo; ro ]
      | "<=" -> Builder.emit b Htype.Bool "int.leq" [ lo; ro ]
      | ">=" -> Builder.emit b Htype.Bool "int.geq" [ lo; ro ]
      | "+" -> Builder.emit b (Htype.Int 64) "int.add" [ lo; ro ]
      | "-" -> Builder.emit b (Htype.Int 64) "int.sub" [ lo; ro ]
      | "*" -> Builder.emit b (Htype.Int 64) "int.mul" [ lo; ro ]
      | "&&" -> Builder.emit b Htype.Bool "bool.and" [ lo; ro ]
      | "||" -> Builder.emit b Htype.Bool "bool.or" [ lo; ro ]
      | op -> fail "unknown operator %s" op)
  | E_call ("to_int", [ a ]) ->
      Builder.emit b (Htype.Int 64) "bytes.to_int" [ recur a ]
  | E_call ("to_int16", [ a ]) ->
      Builder.emit b (Htype.Int 64) "bytes.to_int" [ recur a; Builder.const_int 16 ]
  | E_call ("len", [ a ]) -> Builder.emit b (Htype.Int 64) "bytes.length" [ recur a ]
  | E_call ("lower", [ a ]) -> Builder.emit b Htype.Bytes "bytes.to_lower" [ recur a ]
  | E_call ("has", [ E_field f ]) ->
      Builder.emit b Htype.Bool "struct.is_set" [ Instr.Local "self"; Instr.Member f ]
  | E_call ("find_header", [ l; n ]) ->
      (* First header whose lowercased name equals the (lowercase) needle;
         empty bytes if absent.  Compiles to a shared helper function. *)
      ctx.need_find_header <- true;
      Builder.emit b Htype.Bytes "call"
        [ Instr.Fname (qualified ctx "find_header");
          Instr.Tuple_op [ recur l; recur n ] ]
  | E_call ("offset", []) ->
      (* Bytes consumed so far in the current unit's parse function: the
         distance from its start iterator [cur0] to the cursor [cur].
         Only meaningful inside field expressions (conditions, &length,
         &until_elem); hooks do not have the iterators in scope. *)
      Builder.emit b (Htype.Int 64) "iter.distance"
        [ Instr.Local "cur0"; Instr.Local "cur" ]
  | E_call ("band", [ x; y ]) ->
      Builder.emit b (Htype.Int 64) "int.and" [ recur x; recur y ]
  | E_call ("shr", [ x; y ]) ->
      Builder.emit b (Htype.Int 64) "int.shr" [ recur x; recur y ]
  | E_call (fn, _) -> fail "unknown builtin %s" fn

(* ---- Statements ------------------------------------------------------------------ *)

let rec compile_stmt ctx b (s : stmt) =
  match s with
  | S_assign (f, e) ->
      let v = compile_expr ctx b e in
      Builder.instr b "struct.set" [ Instr.Local "self"; Instr.Member f; v ]
  | S_if (c, thens, elses) ->
      let cond = compile_expr ctx b c in
      let lt = fresh ctx "then" and le = fresh ctx "else" and la = fresh ctx "fi" in
      Builder.if_else b cond ~then_:lt ~else_:le;
      Builder.set_block b lt;
      List.iter (compile_stmt ctx b) thens;
      Builder.jump b la;
      Builder.set_block b le;
      List.iter (compile_stmt ctx b) elses;
      Builder.jump b la;
      Builder.set_block b la

(* ---- Hooks ------------------------------------------------------------------------- *)

let hook_name ctx (u : unit_decl) target =
  match target with
  | "%done" -> qualified ctx u.uname
  | "%init" -> qualified ctx u.uname ^ "::%init"
  | f -> qualified ctx u.uname ^ "::" ^ f

let compile_hook_body ctx (u : unit_decl) target stmts =
  let b =
    Builder.func ctx.m ~cc:Module_ir.Cc_hook (hook_name ctx u target)
      ~params:[ ("self", Htype.Ref (Htype.Struct (qualified ctx u.uname))) ]
      ~result:Htype.Void
  in
  List.iter (compile_stmt ctx b) stmts;
  Builder.return_ b

(* ---- Parse-error helper --------------------------------------------------------------- *)

let throw_parse_error _ctx b msg =
  let e =
    Builder.emit b Htype.Exception "exception.new"
      [ Builder.const_string "BinPAC::ParseError"; Builder.const_string msg ]
  in
  Builder.instr b "throw" [ e ]

(* Wait for more input: if the stream is frozen the data will never come,
   so fail the parse; otherwise suspend. *)
let emit_wait_or_fail ctx b ~cur ~retry_label ~what =
  let frozen = Builder.emit b Htype.Bool "iter.is_frozen" [ Instr.Local cur ] in
  let fail_l = fresh ctx "nodata" and wait_l = fresh ctx "wait" in
  Builder.if_else b frozen ~then_:fail_l ~else_:wait_l;
  Builder.set_block b fail_l;
  throw_parse_error ctx b ("out of input in " ^ what);
  Builder.set_block b wait_l;
  Builder.instr b "yield" [];
  Builder.jump b retry_label

(* ---- Field parsing --------------------------------------------------------------------- *)

(* Emit code parsing [spec]; [cur] is the iterator local (updated in
   place); returns an operand holding the parsed value. *)
let rec emit_parse ctx b (u : unit_decl) ~cur (spec : parse_spec) : Instr.operand =
  match spec with
  | P_regexp pattern ->
      let re = regex_global ctx pattern in
      let t =
        Builder.emit b
          (Htype.Tuple [ Htype.Int 64; Htype.Iter Htype.Bytes ])
          "regexp.match_token"
          [ Instr.Global re; Instr.Local cur ]
      in
      let id = Builder.emit b (Htype.Int 64) "tuple.get" [ t; Builder.const_int 0 ] in
      let ok = Builder.emit b Htype.Bool "int.geq" [ id; Builder.const_int 0 ] in
      let ok_l = fresh ctx "tok" and err_l = fresh ctx "tokerr" in
      Builder.if_else b ok ~then_:ok_l ~else_:err_l;
      Builder.set_block b err_l;
      throw_parse_error ctx b (Printf.sprintf "token /%s/ mismatch in %s" pattern u.uname);
      Builder.set_block b ok_l;
      let after =
        Builder.emit b (Htype.Iter Htype.Bytes) "tuple.get" [ t; Builder.const_int 1 ]
      in
      let v = Builder.emit b Htype.Bytes "bytes.sub" [ Instr.Local cur; after ] in
      Builder.instr b ~target:cur "assign" [ after ];
      v
  | P_literal lit ->
      let ok =
        Builder.emit b Htype.Bool "bytes.match_prefix"
          [ Instr.Local cur; Builder.const_bytes lit ]
      in
      let ok_l = fresh ctx "lit" and err_l = fresh ctx "literr" in
      Builder.if_else b ok ~then_:ok_l ~else_:err_l;
      Builder.set_block b err_l;
      throw_parse_error ctx b (Printf.sprintf "expected %S in %s" lit u.uname);
      Builder.set_block b ok_l;
      let after =
        Builder.emit b (Htype.Iter Htype.Bytes) "iter.advance"
          [ Instr.Local cur; Builder.const_int (String.length lit) ]
      in
      Builder.instr b ~target:cur "assign" [ after ];
      Builder.const_bytes lit
  | P_uint (w, endian) ->
      let t =
        Builder.emit b
          (Htype.Tuple [ Htype.Int 64; Htype.Iter Htype.Bytes ])
          "bytes.unpack_uint"
          [ Instr.Local cur; Builder.const_int w; Builder.const_bool (endian = Big) ]
      in
      let v = Builder.emit b (Htype.Int 64) "tuple.get" [ t; Builder.const_int 0 ] in
      let after =
        Builder.emit b (Htype.Iter Htype.Bytes) "tuple.get" [ t; Builder.const_int 1 ]
      in
      Builder.instr b ~target:cur "assign" [ after ];
      v
  | P_varint ->
      (* Base-128 variable-length integer (MQTT remaining-length style):
         little groups first, 7 data bits per byte, bit 7 = continue,
         at most 4 bytes. *)
      let v = Builder.tmp b (Htype.Int 64) in
      Builder.instr b ~target:v "assign" [ Builder.const_int 0 ];
      let shift = Builder.tmp b (Htype.Int 64) in
      Builder.instr b ~target:shift "assign" [ Builder.const_int 0 ];
      let head = fresh ctx "vint" in
      let body_l = fresh ctx "vintbody" in
      let bad_l = fresh ctx "vintbad" in
      let done_l = fresh ctx "vintdone" in
      Builder.jump b head;
      Builder.set_block b head;
      (* A 5th continuation group would shift by 28: malformed. *)
      let too_long =
        Builder.emit b Htype.Bool "int.geq" [ Instr.Local shift; Builder.const_int 28 ]
      in
      Builder.if_else b too_long ~then_:bad_l ~else_:body_l;
      Builder.set_block b bad_l;
      throw_parse_error ctx b (Printf.sprintf "varint longer than 4 bytes in %s" u.uname);
      Builder.set_block b body_l;
      let t =
        Builder.emit b
          (Htype.Tuple [ Htype.Int 64; Htype.Iter Htype.Bytes ])
          "bytes.unpack_uint"
          [ Instr.Local cur; Builder.const_int 1; Builder.const_bool true ]
      in
      let byte = Builder.emit b (Htype.Int 64) "tuple.get" [ t; Builder.const_int 0 ] in
      let byte_local = Builder.tmp b (Htype.Int 64) in
      Builder.instr b ~target:byte_local "assign" [ byte ];
      let after =
        Builder.emit b (Htype.Iter Htype.Bytes) "tuple.get" [ t; Builder.const_int 1 ]
      in
      Builder.instr b ~target:cur "assign" [ after ];
      let low =
        Builder.emit b (Htype.Int 64) "int.and"
          [ Instr.Local byte_local; Builder.const_int 0x7f ]
      in
      let shifted = Builder.emit b (Htype.Int 64) "int.shl" [ low; Instr.Local shift ] in
      let v' = Builder.emit b (Htype.Int 64) "int.or" [ Instr.Local v; shifted ] in
      Builder.instr b ~target:v "assign" [ v' ];
      let s' =
        Builder.emit b (Htype.Int 64) "int.add" [ Instr.Local shift; Builder.const_int 7 ]
      in
      Builder.instr b ~target:shift "assign" [ s' ];
      let cont =
        Builder.emit b Htype.Bool "int.geq"
          [ Instr.Local byte_local; Builder.const_int 0x80 ]
      in
      Builder.if_else b cont ~then_:head ~else_:done_l;
      Builder.set_block b done_l;
      Instr.Local v
  | P_bytes_length e ->
      let n = compile_expr ctx b e in
      let t =
        Builder.emit b
          (Htype.Tuple [ Htype.Bytes; Htype.Iter Htype.Bytes ])
          "bytes.read" [ Instr.Local cur; n ]
      in
      let v = Builder.emit b Htype.Bytes "tuple.get" [ t; Builder.const_int 0 ] in
      let after =
        Builder.emit b (Htype.Iter Htype.Bytes) "tuple.get" [ t; Builder.const_int 1 ]
      in
      Builder.instr b ~target:cur "assign" [ after ];
      v
  | P_bytes_until lit ->
      let head = fresh ctx "find" in
      let found_l = fresh ctx "found" in
      Builder.jump b head;
      Builder.set_block b head;
      let t =
        Builder.emit b
          (Htype.Tuple [ Htype.Bool; Htype.Iter Htype.Bytes ])
          "bytes.find"
          [ Instr.Local cur; Builder.const_bytes lit ]
      in
      let found = Builder.emit b Htype.Bool "tuple.get" [ t; Builder.const_int 0 ] in
      let wait_check = fresh ctx "findwait" in
      Builder.if_else b found ~then_:found_l ~else_:wait_check;
      Builder.set_block b wait_check;
      emit_wait_or_fail ctx b ~cur ~retry_label:head
        ~what:(Printf.sprintf "&until %S in %s" lit u.uname);
      Builder.set_block b found_l;
      let at = Builder.emit b (Htype.Iter Htype.Bytes) "tuple.get" [ t; Builder.const_int 1 ] in
      let v = Builder.emit b Htype.Bytes "bytes.sub" [ Instr.Local cur; at ] in
      let after =
        Builder.emit b (Htype.Iter Htype.Bytes) "iter.advance"
          [ at; Builder.const_int (String.length lit) ]
      in
      Builder.instr b ~target:cur "assign" [ after ];
      v
  | P_bytes_eod ->
      (* Everything until the definite end: wait for freeze, then take the
         rest. *)
      let head = fresh ctx "eod" in
      let done_l = fresh ctx "eoddone" in
      Builder.jump b head;
      Builder.set_block b head;
      let frozen = Builder.emit b Htype.Bool "iter.is_frozen" [ Instr.Local cur ] in
      let wait_l = fresh ctx "eodwait" in
      Builder.if_else b frozen ~then_:done_l ~else_:wait_l;
      Builder.set_block b wait_l;
      Builder.instr b "yield" [];
      Builder.jump b head;
      Builder.set_block b done_l;
      let e = Builder.emit b (Htype.Iter Htype.Bytes) "iter.end" [ Instr.Local cur ] in
      let v = Builder.emit b Htype.Bytes "bytes.sub" [ Instr.Local cur; e ] in
      Builder.instr b ~target:cur "assign" [ e ];
      v
  | P_unit uname ->
      let t =
        Builder.emit b
          (Htype.Tuple
             [ Htype.Ref (Htype.Struct (qualified ctx uname)); Htype.Iter Htype.Bytes ])
          "call"
          [ Instr.Fname (qualified ctx ("parse_" ^ uname));
            Instr.Tuple_op [ Instr.Local cur; Instr.Local "msg" ] ]
      in
      let v =
        Builder.emit b (Htype.Ref (Htype.Struct (qualified ctx uname))) "tuple.get"
          [ t; Builder.const_int 0 ]
      in
      let after =
        Builder.emit b (Htype.Iter Htype.Bytes) "tuple.get" [ t; Builder.const_int 1 ]
      in
      Builder.instr b ~target:cur "assign" [ after ];
      v
  | P_dnsname ->
      ctx.need_dnsname <- true;
      let t =
        Builder.emit b
          (Htype.Tuple [ Htype.Bytes; Htype.Iter Htype.Bytes ])
          "call"
          [ Instr.Fname (qualified ctx "parse_dnsname");
            Instr.Tuple_op [ Instr.Local cur; Instr.Local "msg" ] ]
      in
      let v = Builder.emit b Htype.Bytes "tuple.get" [ t; Builder.const_int 0 ] in
      let after =
        Builder.emit b (Htype.Iter Htype.Bytes) "tuple.get" [ t; Builder.const_int 1 ]
      in
      Builder.instr b ~target:cur "assign" [ after ];
      v
  | P_list (elem_spec, stop, trim) ->
      let elem_ty = field_htype ctx elem_spec in
      let lst =
        Builder.emit b
          (Htype.Ref (Htype.List elem_ty))
          "new"
          [ Instr.Type_op (Htype.List elem_ty) ]
      in
      let lst_local = Builder.tmp b (Htype.Ref (Htype.List elem_ty)) in
      Builder.instr b ~target:lst_local "assign" [ lst ];
      let head = fresh ctx "list" in
      let body_l = fresh ctx "listbody" in
      let done_l = fresh ctx "listdone" in
      (* Count-based iteration keeps an explicit counter. *)
      let counter = Builder.tmp b (Htype.Int 64) in
      Builder.instr b ~target:counter "assign" [ Builder.const_int 0 ];
      let bound =
        match stop with
        | Stop_count e ->
            let n = compile_expr ctx b e in
            let bl = Builder.tmp b (Htype.Int 64) in
            Builder.instr b ~target:bl "assign" [ n ];
            Some bl
        | _ -> None
      in
      Builder.jump b head;
      Builder.set_block b head;
      (match stop with
      | Stop_count _ ->
          let c =
            Builder.emit b Htype.Bool "int.geq"
              [ Instr.Local counter; Instr.Local (Option.get bound) ]
          in
          Builder.if_else b c ~then_:done_l ~else_:body_l
      | Stop_until_literal lit ->
          let ok =
            Builder.emit b Htype.Bool "bytes.match_prefix"
              [ Instr.Local cur; Builder.const_bytes lit ]
          in
          let consume = fresh ctx "consume" in
          Builder.if_else b ok ~then_:consume ~else_:body_l;
          Builder.set_block b consume;
          let after =
            Builder.emit b (Htype.Iter Htype.Bytes) "iter.advance"
              [ Instr.Local cur; Builder.const_int (String.length lit) ]
          in
          Builder.instr b ~target:cur "assign" [ after ];
          Builder.jump b done_l
      | Stop_until_elem _ -> Builder.jump b body_l
      | Stop_eod ->
          let at_end = Builder.emit b Htype.Bool "iter.at_end" [ Instr.Local cur ] in
          let maybe = fresh ctx "maybeeod" and wait_l = fresh ctx "eodwait" in
          Builder.if_else b at_end ~then_:maybe ~else_:body_l;
          Builder.set_block b maybe;
          let eod = Builder.emit b Htype.Bool "iter.is_eod" [ Instr.Local cur ] in
          Builder.if_else b eod ~then_:done_l ~else_:wait_l;
          Builder.set_block b wait_l;
          Builder.instr b "yield" [];
          Builder.jump b head);
      Builder.set_block b body_l;
      let ev = emit_parse ctx b u ~cur elem_spec in
      let ev_local = Builder.tmp b elem_ty in
      Builder.instr b ~target:ev_local "assign" [ ev ];
      Builder.instr b "list.append" [ Instr.Local lst_local; Instr.Local ev_local ];
      (* &trim: the element is fully parsed and stored (element values are
         fresh copies, never views into the input), so everything before
         [cur] can be dropped from the stream buffer. *)
      if trim then
        Builder.instr b "bytes.trim" [ Instr.Local cur; Instr.Local cur ];
      let one = Builder.emit b (Htype.Int 64) "int.add" [ Instr.Local counter; Builder.const_int 1 ] in
      Builder.instr b ~target:counter "assign" [ one ];
      (match stop with
      | Stop_until_elem e ->
          let c = compile_expr ctx b ~elem:(Instr.Local ev_local) e in
          Builder.if_else b c ~then_:done_l ~else_:head
      | _ -> Builder.jump b head);
      Builder.set_block b done_l;
      Instr.Local lst_local

(* ---- Unit parse functions -------------------------------------------------------------- *)

let compile_unit ctx (u : unit_decl) =
  let sname = qualified ctx u.uname in
  let b =
    Builder.func ctx.m
      (qualified ctx ("parse_" ^ u.uname))
      ~exported:true
      ~params:
        [ ("cur0", Htype.Iter Htype.Bytes); ("msg", Htype.Iter Htype.Bytes) ]
      ~result:
        (Htype.Tuple [ Htype.Ref (Htype.Struct sname); Htype.Iter Htype.Bytes ])
  in
  let cur = Builder.local b "cur" (Htype.Iter Htype.Bytes) in
  Builder.instr b ~target:cur "assign" [ Instr.Local "cur0" ];
  let self = Builder.local b "self" (Htype.Ref (Htype.Struct sname)) in
  let s = Builder.emit b (Htype.Ref (Htype.Struct sname)) "new" [ Instr.Type_op (Htype.Struct sname) ] in
  Builder.instr b ~target:self "assign" [ s ];
  (* Variable initialization. *)
  List.iter
    (fun (n, ty, init) ->
      let v =
        match init with
        | Some e -> compile_expr ctx b e
        | None -> (
            match ty with
            | V_int -> Builder.const_int 0
            | V_bool -> Builder.const_bool false
            | V_bytes -> Builder.const_bytes "")
      in
      Builder.instr b "struct.set" [ Instr.Local self; Instr.Member n; v ])
    (unit_vars u);
  Builder.instr b "hook.run"
    [ Instr.Fname (hook_name ctx u "%init"); Instr.Tuple_op [ Instr.Local self ] ];
  (* Fields, in order. *)
  List.iter
    (fun (f : field) ->
      let parse_one () =
        let v = emit_parse ctx b u ~cur f.parse in
        (match f.fname with
        | Some n ->
            Builder.instr b "struct.set" [ Instr.Local self; Instr.Member n; v ];
            Builder.instr b "hook.run"
              [ Instr.Fname (hook_name ctx u n); Instr.Tuple_op [ Instr.Local self ] ]
        | None -> ())
      in
      match f.cond with
      | None -> parse_one ()
      | Some c ->
          let cond = compile_expr ctx b c in
          let yes = fresh ctx "cond" and no = fresh ctx "condskip" in
          Builder.if_else b cond ~then_:yes ~else_:no;
          Builder.set_block b yes;
          parse_one ();
          Builder.jump b no;
          Builder.set_block b no)
    (unit_fields u);
  Builder.instr b "hook.run"
    [ Instr.Fname (hook_name ctx u "%done"); Instr.Tuple_op [ Instr.Local self ] ];
  Builder.return_result b (Instr.Tuple_op [ Instr.Local self; Instr.Local cur ]);
  (* Hook bodies declared inside the grammar. *)
  List.iter
    (function
      | Hook (target, stmts) -> compile_hook_body ctx u target stmts
      | _ -> ())
    u.items

(* ---- DNS-name helper --------------------------------------------------------------------- *)

(* parse_dnsname(cur, msg) -> (bytes, iter): length-prefixed labels joined
   with '.', following RFC 1035 compression pointers relative to [msg]. *)
let compile_dnsname_helper ctx =
  let b =
    Builder.func ctx.m
      (qualified ctx "parse_dnsname")
      ~params:[ ("cur0", Htype.Iter Htype.Bytes); ("msg", Htype.Iter Htype.Bytes) ]
      ~result:(Htype.Tuple [ Htype.Bytes; Htype.Iter Htype.Bytes ])
  in
  let cur = Builder.local b "cur" (Htype.Iter Htype.Bytes) in
  Builder.instr b ~target:cur "assign" [ Instr.Local "cur0" ];
  let out = Builder.local b "out" (Htype.Ref Htype.Bytes) in
  let o = Builder.emit b (Htype.Ref Htype.Bytes) "new" [ Instr.Type_op Htype.Bytes ] in
  Builder.instr b ~target:out "assign" [ o ];
  let ret = Builder.local b "ret" (Htype.Iter Htype.Bytes) in
  Builder.instr b ~target:ret "assign" [ Instr.Local cur ];
  let jumped = Builder.local b "jumped" Htype.Bool in
  Builder.instr b ~target:jumped "assign" [ Builder.const_bool false ];
  let guard = Builder.local b "guard" (Htype.Int 64) in
  Builder.instr b ~target:guard "assign" [ Builder.const_int 0 ];
  Builder.jump b "loop";
  Builder.set_block b "loop";
  (* Pointer-chase guard against malicious loops. *)
  let g1 = Builder.emit b (Htype.Int 64) "int.add" [ Instr.Local guard; Builder.const_int 1 ] in
  Builder.instr b ~target:guard "assign" [ g1 ];
  let too_many = Builder.emit b Htype.Bool "int.gt" [ Instr.Local guard; Builder.const_int 255 ] in
  Builder.if_else b too_many ~then_:"bad" ~else_:"read_len";
  Builder.set_block b "bad";
  throw_parse_error ctx b "DNS name: looping compression pointers";
  Builder.set_block b "read_len";
  let t =
    Builder.emit b
      (Htype.Tuple [ Htype.Int 64; Htype.Iter Htype.Bytes ])
      "bytes.unpack_uint"
      [ Instr.Local cur; Builder.const_int 1; Builder.const_bool true ]
  in
  let len = Builder.emit b (Htype.Int 64) "tuple.get" [ t; Builder.const_int 0 ] in
  let len_local = Builder.local b "len" (Htype.Int 64) in
  Builder.instr b ~target:len_local "assign" [ len ];
  let after_len = Builder.emit b (Htype.Iter Htype.Bytes) "tuple.get" [ t; Builder.const_int 1 ] in
  Builder.instr b ~target:cur "assign" [ after_len ];
  let is_zero = Builder.emit b Htype.Bool "int.eq" [ Instr.Local len_local; Builder.const_int 0 ] in
  Builder.if_else b is_zero ~then_:"finish" ~else_:"check_ptr";
  Builder.set_block b "check_ptr";
  let is_ptr = Builder.emit b Htype.Bool "int.geq" [ Instr.Local len_local; Builder.const_int 0xc0 ] in
  Builder.if_else b is_ptr ~then_:"pointer" ~else_:"label";
  (* Compression pointer: 14-bit offset from message start. *)
  Builder.set_block b "pointer";
  let t2 =
    Builder.emit b
      (Htype.Tuple [ Htype.Int 64; Htype.Iter Htype.Bytes ])
      "bytes.unpack_uint"
      [ Instr.Local cur; Builder.const_int 1; Builder.const_bool true ]
  in
  let b2 = Builder.emit b (Htype.Int 64) "tuple.get" [ t2; Builder.const_int 0 ] in
  let after2 = Builder.emit b (Htype.Iter Htype.Bytes) "tuple.get" [ t2; Builder.const_int 1 ] in
  let hi = Builder.emit b (Htype.Int 64) "int.and" [ Instr.Local len_local; Builder.const_int 0x3f ] in
  let hi8 = Builder.emit b (Htype.Int 64) "int.shl" [ hi; Builder.const_int 8 ] in
  let off = Builder.emit b (Htype.Int 64) "int.or" [ hi8; b2 ] in
  (* First pointer decides where parsing continues afterwards. *)
  let fixup = fresh ctx "fixret" and follow = fresh ctx "follow" in
  Builder.if_else b (Instr.Local jumped) ~then_:follow ~else_:fixup;
  Builder.set_block b fixup;
  Builder.instr b ~target:ret "assign" [ after2 ];
  Builder.instr b ~target:jumped "assign" [ Builder.const_bool true ];
  Builder.jump b follow;
  Builder.set_block b follow;
  let target_it = Builder.emit b (Htype.Iter Htype.Bytes) "iter.advance" [ Instr.Local "msg"; off ] in
  Builder.instr b ~target:cur "assign" [ target_it ];
  Builder.jump b "loop";
  (* Ordinary label of [len] bytes. *)
  Builder.set_block b "label";
  let t3 =
    Builder.emit b
      (Htype.Tuple [ Htype.Bytes; Htype.Iter Htype.Bytes ])
      "bytes.read" [ Instr.Local cur; Instr.Local len_local ]
  in
  let label = Builder.emit b Htype.Bytes "tuple.get" [ t3; Builder.const_int 0 ] in
  let after3 = Builder.emit b (Htype.Iter Htype.Bytes) "tuple.get" [ t3; Builder.const_int 1 ] in
  Builder.instr b ~target:cur "assign" [ after3 ];
  let outlen = Builder.emit b (Htype.Int 64) "bytes.length" [ Instr.Local out ] in
  let nonempty = Builder.emit b Htype.Bool "int.gt" [ outlen; Builder.const_int 0 ] in
  let dot = fresh ctx "dot" and nodot = fresh ctx "nodot" in
  Builder.if_else b nonempty ~then_:dot ~else_:nodot;
  Builder.set_block b dot;
  Builder.instr b "bytes.append" [ Instr.Local out; Builder.const_bytes "." ];
  Builder.jump b nodot;
  Builder.set_block b nodot;
  Builder.instr b "bytes.append" [ Instr.Local out; label ];
  Builder.jump b "loop";
  (* Zero length: the name is complete. *)
  Builder.set_block b "finish";
  let final = fresh ctx "ptrret" and plain = fresh ctx "plainret" in
  Builder.if_else b (Instr.Local jumped) ~then_:final ~else_:plain;
  Builder.set_block b plain;
  Builder.instr b ~target:ret "assign" [ Instr.Local cur ];
  Builder.jump b final;
  Builder.set_block b final;
  Builder.return_result b (Instr.Tuple_op [ Instr.Local out; Instr.Local ret ])

(* find_header(headers: ref<list<ref<Header>>>, name: bytes) -> bytes
   Shared lookup over header-shaped units (fields "name"/"value"). *)
let compile_find_header_helper ctx =
  let b =
    Builder.func ctx.m
      (qualified ctx "find_header")
      ~params:[ ("headers", Htype.Ref (Htype.List Htype.Any)); ("needle", Htype.Bytes) ]
      ~result:Htype.Bytes
  in
  let it = Builder.local b "it" (Htype.Iter (Htype.List Htype.Any)) in
  let i0 = Builder.emit b (Htype.Iter (Htype.List Htype.Any)) "iter.begin" [ Instr.Local "headers" ] in
  Builder.instr b ~target:it "assign" [ i0 ];
  Builder.jump b "loop";
  Builder.set_block b "loop";
  let at_end = Builder.emit b Htype.Bool "iter.at_end" [ Instr.Local it ] in
  Builder.if_else b at_end ~then_:"missing" ~else_:"check";
  Builder.set_block b "check";
  let h = Builder.emit b Htype.Any "iter.deref" [ Instr.Local it ] in
  let hl = Builder.local b "h" Htype.Any in
  Builder.instr b ~target:hl "assign" [ h ];
  let hn = Builder.emit b Htype.Bytes "struct.get" [ Instr.Local hl; Instr.Member "name" ] in
  let hn_low = Builder.emit b Htype.Bytes "bytes.to_lower" [ hn ] in
  let eq = Builder.emit b Htype.Bool "equal" [ hn_low; Instr.Local "needle" ] in
  Builder.if_else b eq ~then_:"found" ~else_:"next";
  Builder.set_block b "next";
  let it2 = Builder.emit b (Htype.Iter (Htype.List Htype.Any)) "iter.incr" [ Instr.Local it ] in
  Builder.instr b ~target:it "assign" [ it2 ];
  Builder.jump b "loop";
  Builder.set_block b "found";
  let v = Builder.emit b Htype.Bytes "struct.get" [ Instr.Local hl; Instr.Member "value" ] in
  Builder.return_result b v;
  Builder.set_block b "missing";
  Builder.return_result b (Builder.const_bytes "")

(* ---- Module assembly ------------------------------------------------------------------------- *)

(** Compile a grammar into a HILTI module.  The module exports one
    [parse_<Unit>] per unit plus [<G>::init], which must run once to
    compile the token regexps. *)
let compile (g : grammar) : Module_ir.t =
  let m = Module_ir.create g.gname in
  let ctx =
    { g; m; regexes = []; label_counter = 0; need_dnsname = false;
      need_find_header = false }
  in
  (* Struct declarations first so all unit references resolve. *)
  List.iter
    (function
      | Unit u -> Module_ir.add_type m (qualified ctx u.uname) (struct_decl ctx u)
      | Const _ -> ())
    g.decls;
  List.iter (function Unit u -> compile_unit ctx u | Const _ -> ()) g.decls;
  if ctx.need_dnsname then compile_dnsname_helper ctx;
  if ctx.need_find_header then compile_find_header_helper ctx;
  (* init: compile every token regexp into its global. *)
  let b = Builder.func m (qualified ctx "init") ~exported:true ~params:[] ~result:Htype.Void in
  List.iter
    (fun (pattern, gname) ->
      let re =
        Builder.emit b Htype.Regexp "regexp.compile" [ Builder.const_string pattern ]
      in
      Builder.instr b ~target:gname "assign" [ re ])
    ctx.regexes;
  Builder.return_ b;
  m
