(** The protocol grammars shipped with BinPAC++ (§4): HTTP and DNS — the
    evaluation's case studies — plus the SSH banner grammar of Fig. 7(a). *)

(* Fig. 7(a), verbatim modulo the anonymous-dash field getting a name so
   the Bro event can reference version and software. *)
let ssh = {|
module SSH;

export type Banner = unit {
    magic   : /SSH-/;
    version : /[^-]*/;
    dash    : /-/;
    software: /[^\r\n]*/;
};
|}

let http = {|
module HTTP;

const Token      = /[^ \t\r\n]+/;
const NewLine    = /\r?\n/;
const WhiteSpace = /[ \t]+/;

type Version = unit {
    : /HTTP\//;                  # fixed string as regexp (Fig. 6a)
    number: /[0-9]+\.[0-9]+/;
};

type Header = unit {
    name: /[^:\r\n]+/;
    : /:[ \t]*/;
    value: /[^\r\n]*/;
    : NewLine;
};

type RequestLine = unit {
    method: Token;
    : WhiteSpace;
    uri: Token;
    : WhiteSpace;
    version: Version;
    : NewLine;
};

type ReplyLine = unit {
    version: Version;
    : WhiteSpace;
    status: /[0-9]+/;
    : /[ \t]*/;
    reason: /[^\r\n]*/;
    : NewLine;
};

type Chunk = unit {
    len_hex: /[0-9a-fA-F]+/;
    : /[^\r\n]*\r?\n/;           # chunk extensions + CRLF
    data: bytes &length=to_int16(self.len_hex) if (to_int16(self.len_hex) > 0);
    : NewLine if (to_int16(self.len_hex) > 0);
};

type Request = unit {
    request: RequestLine;
    headers: Header[] &until_literal="\r\n";
    var clen: bytes;
    var te: bytes;
    on headers {
        self.clen = find_header(self.headers, "content-length");
        self.te = lower(find_header(self.headers, "transfer-encoding"));
    }
    body: bytes &length=to_int(self.clen)
        if (len(self.clen) > 0 && self.te != "chunked");
    chunks: Chunk[] &until_elem=(to_int16($$.len_hex) == 0)
        if (self.te == "chunked");
    : NewLine if (self.te == "chunked");
};

type Reply = unit {
    reply: ReplyLine;
    headers: Header[] &until_literal="\r\n";
    var clen: bytes;
    var te: bytes;
    var conn: bytes;
    on headers {
        self.clen = find_header(self.headers, "content-length");
        self.te = lower(find_header(self.headers, "transfer-encoding"));
        self.conn = lower(find_header(self.headers, "connection"));
    }
    body: bytes &length=to_int(self.clen)
        if (len(self.clen) > 0 && self.te != "chunked");
    chunks: Chunk[] &until_elem=(to_int16($$.len_hex) == 0)
        if (self.te == "chunked");
    : NewLine if (self.te == "chunked");
    body_close: bytes &eod
        if (len(self.clen) == 0 && self.te != "chunked" && self.conn == "close");
};

# Stream-level units: one per connection direction.  &trim drops consumed
# input after every parsed message, so a long-lived connection buffers only
# the transaction in flight (HTTP never re-reads earlier stream bytes).
type Requests = unit {
    requests: Request[] &eod &trim;
};

type Replies = unit {
    replies: Reply[] &eod &trim;
};
|}

let dns = {|
module DNS;

type Question = unit {
    qname: dnsname;
    qtype: uint16;
    qclass: uint16;
};

type RR = unit {
    rname: dnsname;
    rtype: uint16;
    rclass: uint16;
    ttl: uint32;
    rdlength: uint16;
    # Typed rdata for the record types the analysis scripts use;
    # everything else is kept raw.
    rdata_a: uint32
        if (self.rtype == 1 && self.rdlength == 4);
    rdata_name: dnsname
        if (self.rtype == 2 || self.rtype == 5 || self.rtype == 12);
    rdata_mx_pref: uint16 if (self.rtype == 15);
    rdata_mx_name: dnsname if (self.rtype == 15);
    rdata_txt: bytes &length=self.rdlength if (self.rtype == 16);
    rdata_other: bytes &length=self.rdlength
        if (self.rtype != 2 && self.rtype != 5 && self.rtype != 12
            && self.rtype != 15 && self.rtype != 16
            && (self.rtype != 1 || self.rdlength != 4));
};

type Message = unit {
    id: uint16;
    flags: uint16;
    qdcount: uint16;
    ancount: uint16;
    nscount: uint16;
    arcount: uint16;
    questions: Question[] &count=self.qdcount;
    answers: RR[] &count=self.ancount;
    authority: RR[] &count=self.nscount;
    additional: RR[] &count=self.arcount;
};
|}

(* MQTT 3.1.1, the control-packet subset the evaluation drives: CONNECT/
   CONNACK session setup, SUBSCRIBE/SUBACK, PUBLISH (QoS 0/1) + PUBACK,
   PING and DISCONNECT.  The stateful bits BinPAC++ is meant to shine on:
   the base-128 [varint] remaining-length header, conditional layout keyed
   on the packet type extracted by a hook, and [offset()] arithmetic that
   checks the declared length against bytes actually consumed.  Unknown
   packet types are skipped by length, keeping the stream in sync. *)
let mqtt = {|
module MQTT;

# Length-prefixed UTF-8 string (MQTT 1.5.3).
type Str = unit {
    len: uint16;
    data: bytes &length=self.len;
};

# One SUBSCRIBE entry: topic filter plus requested QoS.
type Sub = unit {
    topic: Str;
    sqos: uint8;
};

type Packet = unit {
    typeflags: uint8;
    var ptype: int;
    var qos: int;
    var hdr: int;          # fixed-header width: 1 type byte + varint width
    on typeflags {
        self.ptype = shr(self.typeflags, 4);
        self.qos = band(shr(self.typeflags, 1), 3);
    }
    remlen: varint;
    on remlen {
        self.hdr = 2;
        if (self.remlen >= 128) { self.hdr = 3; }
        if (self.remlen >= 16384) { self.hdr = 4; }
        if (self.remlen >= 2097152) { self.hdr = 5; }
    }

    # CONNECT (1): protocol name/level, flags, keepalive, client id.
    proto: Str if (self.ptype == 1);
    connver: uint8 if (self.ptype == 1);
    connflags: uint8 if (self.ptype == 1);
    keepalive: uint16 if (self.ptype == 1);
    client_id: Str if (self.ptype == 1);

    # CONNACK (2).
    ackflags: uint8 if (self.ptype == 2);
    retcode: uint8 if (self.ptype == 2);

    # PUBLISH (3): topic, packet id when QoS > 0, then payload filling the
    # rest of the declared remaining length.
    topic: Str if (self.ptype == 3);
    pubmsgid: uint16 if (self.ptype == 3 && self.qos > 0);
    payload: bytes &length=self.remlen + self.hdr - offset()
        if (self.ptype == 3);

    # PUBACK (4) / SUBSCRIBE (8) / SUBACK (9) / UNSUBSCRIBE (10): packet id.
    msgid: uint16 if (self.ptype == 4 || self.ptype == 8 || self.ptype == 9
                      || self.ptype == 10);

    # SUBSCRIBE payload: topic filters until the declared length is used up.
    topics: Sub[] &until_elem=(offset() - self.hdr >= self.remlen)
        if (self.ptype == 8);

    # SUBACK return codes, one byte per granted subscription.
    codes: bytes &length=self.remlen + self.hdr - offset()
        if (self.ptype == 9);

    # Everything else (and any unconsumed remainder): skip by length so the
    # next packet starts aligned.
    trailer: bytes &length=self.remlen + self.hdr - offset()
        if (self.ptype != 3 && self.ptype != 8 && self.ptype != 9);
};

# Stream-level unit: one per connection direction.
type Packets = unit {
    packets: Packet[] &eod &trim;
};
|}

(* FTP control channel (RFC 959): newline-delimited commands and replies.
   The interesting state is cross-flow — PORT commands and 227 (passive)
   replies announce a separate data connection, which the driver couples to
   this control session (§6.4's cross-flow discussion). *)
let ftp = {|
module FTP;

type Command = unit {
    cmd: /[A-Za-z][A-Za-z0-9]*/;
    : /[ ]*/;
    arg: /[^\r\n]*/;
    : /\r?\n/;
};

# One reply line; a "-" separator marks a continuation line of a
# multi-line reply (the host glue skips those when raising events).
type Reply = unit {
    code: /[0-9][0-9][0-9]/;
    sep: /[- ]?/;
    text: /[^\r\n]*/;
    : /\r?\n/;
};

type Commands = unit {
    commands: Command[] &eod &trim;
};

type Replies = unit {
    replies: Reply[] &eod &trim;
};
|}

let parse_ssh () = Grammar_parser.parse ssh
let parse_http () = Grammar_parser.parse http
let parse_dns () = Grammar_parser.parse dns
let parse_mqtt () = Grammar_parser.parse mqtt
let parse_ftp () = Grammar_parser.parse ftp
