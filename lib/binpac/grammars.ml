(** The protocol grammars shipped with BinPAC++ (§4): HTTP and DNS — the
    evaluation's case studies — plus the SSH banner grammar of Fig. 7(a). *)

(* Fig. 7(a), verbatim modulo the anonymous-dash field getting a name so
   the Bro event can reference version and software. *)
let ssh = {|
module SSH;

export type Banner = unit {
    magic   : /SSH-/;
    version : /[^-]*/;
    dash    : /-/;
    software: /[^\r\n]*/;
};
|}

let http = {|
module HTTP;

const Token      = /[^ \t\r\n]+/;
const NewLine    = /\r?\n/;
const WhiteSpace = /[ \t]+/;

type Version = unit {
    : /HTTP\//;                  # fixed string as regexp (Fig. 6a)
    number: /[0-9]+\.[0-9]+/;
};

type Header = unit {
    name: /[^:\r\n]+/;
    : /:[ \t]*/;
    value: /[^\r\n]*/;
    : NewLine;
};

type RequestLine = unit {
    method: Token;
    : WhiteSpace;
    uri: Token;
    : WhiteSpace;
    version: Version;
    : NewLine;
};

type ReplyLine = unit {
    version: Version;
    : WhiteSpace;
    status: /[0-9]+/;
    : /[ \t]*/;
    reason: /[^\r\n]*/;
    : NewLine;
};

type Chunk = unit {
    len_hex: /[0-9a-fA-F]+/;
    : /[^\r\n]*\r?\n/;           # chunk extensions + CRLF
    data: bytes &length=to_int16(self.len_hex) if (to_int16(self.len_hex) > 0);
    : NewLine if (to_int16(self.len_hex) > 0);
};

type Request = unit {
    request: RequestLine;
    headers: Header[] &until_literal="\r\n";
    var clen: bytes;
    var te: bytes;
    on headers {
        self.clen = find_header(self.headers, "content-length");
        self.te = lower(find_header(self.headers, "transfer-encoding"));
    }
    body: bytes &length=to_int(self.clen)
        if (len(self.clen) > 0 && self.te != "chunked");
    chunks: Chunk[] &until_elem=(to_int16($$.len_hex) == 0)
        if (self.te == "chunked");
    : NewLine if (self.te == "chunked");
};

type Reply = unit {
    reply: ReplyLine;
    headers: Header[] &until_literal="\r\n";
    var clen: bytes;
    var te: bytes;
    var conn: bytes;
    on headers {
        self.clen = find_header(self.headers, "content-length");
        self.te = lower(find_header(self.headers, "transfer-encoding"));
        self.conn = lower(find_header(self.headers, "connection"));
    }
    body: bytes &length=to_int(self.clen)
        if (len(self.clen) > 0 && self.te != "chunked");
    chunks: Chunk[] &until_elem=(to_int16($$.len_hex) == 0)
        if (self.te == "chunked");
    : NewLine if (self.te == "chunked");
    body_close: bytes &eod
        if (len(self.clen) == 0 && self.te != "chunked" && self.conn == "close");
};

# Stream-level units: one per connection direction.  &trim drops consumed
# input after every parsed message, so a long-lived connection buffers only
# the transaction in flight (HTTP never re-reads earlier stream bytes).
type Requests = unit {
    requests: Request[] &eod &trim;
};

type Replies = unit {
    replies: Reply[] &eod &trim;
};
|}

let dns = {|
module DNS;

type Question = unit {
    qname: dnsname;
    qtype: uint16;
    qclass: uint16;
};

type RR = unit {
    rname: dnsname;
    rtype: uint16;
    rclass: uint16;
    ttl: uint32;
    rdlength: uint16;
    # Typed rdata for the record types the analysis scripts use;
    # everything else is kept raw.
    rdata_a: uint32
        if (self.rtype == 1 && self.rdlength == 4);
    rdata_name: dnsname
        if (self.rtype == 2 || self.rtype == 5 || self.rtype == 12);
    rdata_mx_pref: uint16 if (self.rtype == 15);
    rdata_mx_name: dnsname if (self.rtype == 15);
    rdata_txt: bytes &length=self.rdlength if (self.rtype == 16);
    rdata_other: bytes &length=self.rdlength
        if (self.rtype != 2 && self.rtype != 5 && self.rtype != 12
            && self.rtype != 15 && self.rtype != 16
            && (self.rtype != 1 || self.rdlength != 4));
};

type Message = unit {
    id: uint16;
    flags: uint16;
    qdcount: uint16;
    ancount: uint16;
    nscount: uint16;
    arcount: uint16;
    questions: Question[] &count=self.qdcount;
    answers: RR[] &count=self.ancount;
    authority: RR[] &count=self.nscount;
    additional: RR[] &count=self.arcount;
};
|}

let parse_ssh () = Grammar_parser.parse ssh
let parse_http () = Grammar_parser.parse http
let parse_dns () = Grammar_parser.parse dns
