(** Compiling rule sets and filter expressions into decision diagrams.

    Two front ends share the predicate constructors:

    - {!pred_of_expr} turns a {!Hilti_bpf.Bpf_expr} filter into a 0/1
      predicate diagram (boolean structure maps directly onto
      {!Fdd.and_}/{!Fdd.or_}/{!Fdd.not_});
    - {!of_rules} turns a first-match {!Acl} rule list into an action
      diagram: each rule becomes [pred ? action : fallthrough] and the
      list is folded with {!Fdd.seq} in a balanced shape, so incremental
      recompiles of a nearly-identical list hit the manager's seq memo
      on every untouched subtree.

    Both operate on the IPv4 key space; the surrounding drivers route
    non-IPv4 traffic to the default action before the diagram is ever
    consulted (mirroring the ethertype guard the BPF backends emit). *)

open Hilti_types

let net_pred mgr ~base n =
  Fdd.prefix mgr ~base ~width:32
    ~value:(Addr.to_ipv4_int (Network.prefix n))
    ~len:(Network.length n)

let port_pred mgr ~base (lo, hi) =
  if lo = hi then Fdd.field_eq mgr ~base ~width:16 lo
  else if lo <= 0 && hi >= 65535 then Fdd.leaf_true
  else
    Fdd.and_ mgr
      (Fdd.ge_bits mgr ~base ~width:16 0 lo)
      (Fdd.le_bits mgr ~base ~width:16 0 hi)

(* ---- ACL rules ---------------------------------------------------------------- *)

let pred_of_rule mgr (r : Acl.rule) =
  let conj acc = function None -> acc | Some p -> Fdd.and_ mgr acc p in
  let acc = Fdd.leaf_true in
  let acc =
    conj acc (Option.map (Fdd.field_eq mgr ~base:Fdd.proto_base ~width:8) r.Acl.proto)
  in
  let acc = conj acc (Option.map (net_pred mgr ~base:Fdd.src_base) r.Acl.src) in
  let acc = conj acc (Option.map (net_pred mgr ~base:Fdd.dst_base) r.Acl.dst) in
  let acc = conj acc (Option.map (port_pred mgr ~base:Fdd.sport_base) r.Acl.sport) in
  conj acc (Option.map (port_pred mgr ~base:Fdd.dport_base) r.Acl.dport)

(** [pred ? action : fallthrough] for one rule. *)
let rule_fdd mgr (r : Acl.rule) =
  let action = if r.Acl.action then 1 else 0 in
  Fdd.map_leaves mgr
    (fun v -> if v = 1 then action else Fdd.fallthrough)
    (pred_of_rule mgr r)

(* Balanced seq-reduction: associativity of seq makes the shape free, and
   a balanced tree maximizes memo hits when a prefix/suffix of the rule
   list is unchanged between recompiles. *)
let rec reduce mgr = function
  | [] -> Fdd.leaf_fallthrough
  | [ f ] -> f
  | fdds ->
      let rec halve n acc = function
        | rest when n = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: rest -> halve (n - 1) (x :: acc) rest
      in
      let left, right = halve (List.length fdds / 2) [] fdds in
      Fdd.seq mgr (reduce mgr left) (reduce mgr right)

(** Fold prebuilt per-rule diagrams (priority order) and resolve the
    remaining fallthrough leaves to [default].  {!Table} keeps the
    per-rule diagrams cached across deltas, so a recompile here is seq
    folding plus memo lookups only. *)
let of_rule_fdds mgr ?(default = false) (fdds : Fdd.t list) : Fdd.t =
  let folded = reduce mgr fdds in
  let d = if default then 1 else 0 in
  Fdd.map_leaves mgr (fun v -> if v = Fdd.fallthrough then d else v) folded

(** Compile a first-match rule list; remaining fallthrough leaves resolve
    to [default]. *)
let of_rules mgr ?(default = false) (rules : Acl.rule list) : Fdd.t =
  List.iter (fun r -> ignore (Acl.validate r)) rules;
  of_rule_fdds mgr ~default (List.map (rule_fdd mgr) rules)

(** Compile a firewall rule list (first match wins, default deny). *)
let of_fw mgr (rules : Hilti_firewall.Fw_rules.rule list) : Fdd.t =
  of_rules mgr ~default:false (Acl.of_fw_rules rules)

(* ---- BPF filter expressions ---------------------------------------------------- *)

open Hilti_bpf.Bpf_expr

let host_pred mgr dir a =
  let p base = Fdd.field_eq mgr ~base ~width:32 (Addr.to_ipv4_int a) in
  match dir with
  | Src -> p Fdd.src_base
  | Dst -> p Fdd.dst_base
  | Any_dir -> Fdd.or_ mgr (p Fdd.src_base) (p Fdd.dst_base)

let netdir_pred mgr dir n =
  match dir with
  | Src -> net_pred mgr ~base:Fdd.src_base n
  | Dst -> net_pred mgr ~base:Fdd.dst_base n
  | Any_dir ->
      Fdd.or_ mgr (net_pred mgr ~base:Fdd.src_base n)
        (net_pred mgr ~base:Fdd.dst_base n)

let portdir_pred mgr dir range =
  match dir with
  | Src -> port_pred mgr ~base:Fdd.sport_base range
  | Dst -> port_pred mgr ~base:Fdd.dport_base range
  | Any_dir ->
      Fdd.or_ mgr
        (port_pred mgr ~base:Fdd.sport_base range)
        (port_pred mgr ~base:Fdd.dport_base range)

(** A 0/1 predicate diagram for a filter expression over IPv4 keys.
    [Ip] is trivially true in this key space — the drivers guard the
    ethertype outside the diagram. *)
let rec pred_of_expr mgr (e : expr) : Fdd.t =
  match e with
  | Ip -> Fdd.leaf_true
  | Proto p -> Fdd.field_eq mgr ~base:Fdd.proto_base ~width:8 p
  | Host (dir, a) ->
      if not (Addr.is_ipv4 a) then raise (Acl.Unsupported (Addr.to_string a));
      host_pred mgr dir a
  | Net (dir, n) ->
      Acl.check_net (Some n);
      netdir_pred mgr dir n
  | Port (dir, p) -> portdir_pred mgr dir (p, p)
  | Portrange (dir, lo, hi) -> portdir_pred mgr dir (lo, hi)
  | And (a, b) -> Fdd.and_ mgr (pred_of_expr mgr a) (pred_of_expr mgr b)
  | Or (a, b) -> Fdd.or_ mgr (pred_of_expr mgr a) (pred_of_expr mgr b)
  | Not a -> Fdd.not_ mgr (pred_of_expr mgr a)

(** Parse and compile a BPF filter string. *)
let of_bpf mgr (filter : string) : Fdd.t = pred_of_expr mgr (parse filter)
