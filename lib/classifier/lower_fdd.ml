(** Lowering a decision diagram to HILTI bytecode.

    Emits the diagram as a branch DAG: one basic block per hash-consed
    node (shared subtrees are emitted once and jumped to from every
    parent), over header fields read through an IP overlay exactly like
    the Fig. 4 BPF compiler.  The five field words are loaded into locals
    once at entry; each node block is then [int.and] + [int.eq] +
    [if.else], so a match executes O(depth) bytecode instructions and
    the function runs under the verified + specialized dispatch loops
    like every other workload.

    Malformed or truncated frames fail safe to [false] through a
    function-level exception handler; non-IPv4 frames return the
    configured default action. *)

let eth_base = 14

(* The Fig. 4 overlay, with the address words exposed as 32-bit integers
   (the diagram tests address bits, so it wants words, not [addr]s). *)
let overlay_decl : Module_ir.type_decl =
  Module_ir.Overlay_decl
    [
      { of_name = "ethertype"; of_type = Htype.Int 16; of_offset = 12;
        of_fmt = Module_ir.U_uint (2, Hilti_types.Hbytes.Big); of_bits = None };
      { of_name = "hdr_len"; of_type = Htype.Int 8; of_offset = eth_base + 0;
        of_fmt = Module_ir.U_uint (1, Hilti_types.Hbytes.Big); of_bits = Some (0, 3) };
      { of_name = "proto"; of_type = Htype.Int 8; of_offset = eth_base + 9;
        of_fmt = Module_ir.U_uint (1, Hilti_types.Hbytes.Big); of_bits = None };
      { of_name = "src32"; of_type = Htype.Int 64; of_offset = eth_base + 12;
        of_fmt = Module_ir.U_uint (4, Hilti_types.Hbytes.Big); of_bits = None };
      { of_name = "dst32"; of_type = Htype.Int 64; of_offset = eth_base + 16;
        of_fmt = Module_ir.U_uint (4, Hilti_types.Hbytes.Big); of_bits = None };
    ]

let packet = Instr.Local "packet"

(* The local holding the field word a variable tests, and the bit mask
   selecting that variable within it. *)
let field_of_var v =
  if v < Fdd.src_base then ("f_proto", 1 lsl (7 - v))
  else if v < Fdd.dst_base then ("f_src", 1 lsl (Fdd.src_base + 31 - v))
  else if v < Fdd.sport_base then ("f_dst", 1 lsl (Fdd.dst_base + 31 - v))
  else if v < Fdd.dport_base then ("f_sport", 1 lsl (Fdd.sport_base + 15 - v))
  else ("f_dport", 1 lsl (Fdd.dport_base + 15 - v))

let uses_ports fdd =
  List.exists
    (fun n -> Fdd.var n >= Fdd.sport_base)
    (Fdd.postorder fdd)

let label_of fdd =
  match fdd with
  | Fdd.Leaf v -> if v = 1 then "ret_true" else "ret_false"
  | Fdd.Node _ -> Printf.sprintf "n%d" (Fdd.id fdd)

let get_field b field ty =
  Builder.emit b ty "overlay.get"
    [ Instr.Member "Classifier::IP"; Instr.Member field; packet ]

(* Transport port at dynamic IP header length (the Fig. 4 idiom). *)
let load_port b ~dst_side =
  let hl = get_field b "hdr_len" (Htype.Int 8) in
  let hl_bytes = Builder.emit b (Htype.Int 64) "int.mul" [ hl; Builder.const_int 4 ] in
  let base =
    Builder.emit b (Htype.Int 64) "int.add"
      [ hl_bytes; Builder.const_int (eth_base + if dst_side then 2 else 0) ]
  in
  let it = Builder.emit b (Htype.Iter Htype.Bytes) "bytes.offset" [ packet; base ] in
  let pair =
    Builder.emit b
      (Htype.Tuple [ Htype.Int 64; Htype.Iter Htype.Bytes ])
      "bytes.unpack_uint"
      [ it; Builder.const_int 2; Builder.const_bool true ]
  in
  Builder.emit b (Htype.Int 64) "tuple.get" [ pair; Builder.const_int 0 ]

(** Build a module exporting [<name>::match(ref<bytes>) -> bool] that
    evaluates [fdd].  Leaf action 1 is [true], everything else [false];
    non-IPv4 frames yield [default]. *)
let compile_module ?(default = false) ?(name = "Classifier") (fdd : Fdd.t) :
    Module_ir.t =
  let m = Module_ir.create name in
  Module_ir.add_type m "Classifier::IP" overlay_decl;
  let b =
    Builder.func m (name ^ "::match") ~exported:true
      ~params:[ ("packet", Htype.Ref Htype.Bytes) ]
      ~result:Htype.Bool
  in
  let exc = Builder.local b "__exc" Htype.Exception in
  Builder.instr b "try.push" [ Instr.Label "bad_packet"; Instr.Local exc ];
  (* Ethertype guard: the diagram's key space is IPv4. *)
  let et = get_field b "ethertype" (Htype.Int 16) in
  let is_ip = Builder.emit b Htype.Bool "int.eq" [ et; Builder.const_int 0x0800 ] in
  Builder.if_else b is_ip ~then_:"load_fields" ~else_:"ret_default";
  Builder.set_block b "load_fields";
  (* The field words, loaded once; node blocks only do register work. *)
  let fp = Builder.local b "f_proto" (Htype.Int 64) in
  let fs = Builder.local b "f_src" (Htype.Int 64) in
  let fd = Builder.local b "f_dst" (Htype.Int 64) in
  let fsp = Builder.local b "f_sport" (Htype.Int 64) in
  let fdp = Builder.local b "f_dport" (Htype.Int 64) in
  Builder.assign b ~target:fp (get_field b "proto" (Htype.Int 8));
  Builder.assign b ~target:fs (get_field b "src32" (Htype.Int 64));
  Builder.assign b ~target:fd (get_field b "dst32" (Htype.Int 64));
  if uses_ports fdd then begin
    Builder.assign b ~target:fsp (load_port b ~dst_side:false);
    Builder.assign b ~target:fdp (load_port b ~dst_side:true)
  end
  else begin
    Builder.assign b ~target:fsp (Builder.const_int 0);
    Builder.assign b ~target:fdp (Builder.const_int 0)
  end;
  Builder.jump b (label_of fdd);
  (* One block per hash-consed node; shared children emitted once.  The
     blocks are declared in bulk first — per-block creation is quadratic
     in the block count, which at 10k+ rules is the difference between
     milliseconds and minutes. *)
  let nodes = Fdd.postorder fdd in
  Builder.declare_blocks b
    (List.map label_of nodes @ [ "ret_true"; "ret_false"; "ret_default"; "bad_packet" ]);
  let t_and = Builder.local b "t_and" (Htype.Int 64) in
  let t_z = Builder.local b "t_z" Htype.Bool in
  List.iter
    (fun node ->
      match node with
      | Fdd.Leaf _ -> ()
      | Fdd.Node { var; hi; lo; _ } ->
          Builder.set_block b (label_of node);
          let field, mask = field_of_var var in
          Builder.instr b ~target:t_and "int.and"
            [ Instr.Local field; Builder.const_int mask ];
          Builder.instr b ~target:t_z "int.eq"
            [ Instr.Local t_and; Builder.const_int 0 ];
          Builder.if_else b (Instr.Local t_z) ~then_:(label_of lo)
            ~else_:(label_of hi))
    nodes;
  Builder.set_block b "ret_true";
  Builder.return_result b (Builder.const_bool true);
  Builder.set_block b "ret_false";
  Builder.return_result b (Builder.const_bool false);
  Builder.set_block b "ret_default";
  Builder.return_result b (Builder.const_bool default);
  Builder.set_block b "bad_packet";
  Builder.return_result b (Builder.const_bool false);
  m

(** Compile and load; returns the api handle and a [frame -> bool]
    closure.  The HILTI-level optimization pipeline is off by default:
    node blocks are already minimal and pipeline cost grows with the
    diagram, while verification + specialization stay on so the function
    runs under the specialized dispatch loop. *)
let load ?default ?(optimize = false) ?(verify = true) ?(specialize = true)
    (fdd : Fdd.t) : Hilti_vm.Host_api.t * (string -> bool) =
  let m = compile_module ?default fdd in
  let api = Hilti_vm.Host_api.compile ~optimize ~verify ~specialize [ m ] in
  let run pkt =
    let bts = Hilti_types.Hbytes.of_string pkt in
    Hilti_types.Hbytes.freeze bts;
    Hilti_vm.Value.as_bool
      (Hilti_vm.Host_api.call api "Classifier::match" [ Hilti_vm.Value.Bytes bts ])
  in
  (api, run)
