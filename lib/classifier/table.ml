(** Live classifier tables: incremental insert/remove under traffic.

    A table owns a rule list (priority order), a persistent {!Fdd.mgr}
    and the compiled diagram.  Deltas recompile the diagram from the rule
    list — but because the manager's hash-cons table and seq memo
    survive recompiles, every subtree the delta did not touch is a cache
    hit, so a recompile after a single insert/remove costs a thin slice
    of the initial compile (measured by [bench classifier]).

    Instrumented with {!Hilti_obs.Metrics}:
    - [classifier_fdd_nodes] (gauge): nodes reachable from the live root;
    - [classifier_hashcons_hits_total] / [classifier_hashcons_misses_total]:
      manager cache behaviour across all (re)compiles;
    - [classifier_recompiles_total]: delta-triggered recompiles;
    - [classifier_match_depth] (histogram): decisions per lookup. *)

module Metrics = Hilti_obs.Metrics

let m_nodes =
  Metrics.gauge ~help:"live FDD nodes reachable from the classifier root"
    "classifier_fdd_nodes"

let m_hits =
  Metrics.counter ~help:"FDD hash-cons cache hits" "classifier_hashcons_hits_total"

let m_misses =
  Metrics.counter ~help:"FDD hash-cons cache misses (fresh nodes)"
    "classifier_hashcons_misses_total"

let m_recompiles =
  Metrics.counter ~help:"classifier recompiles triggered by rule deltas"
    "classifier_recompiles_total"

let m_depth =
  Metrics.histogram ~help:"FDD decisions walked per classifier lookup"
    "classifier_match_depth"

type t = {
  mgr : Fdd.mgr;
  default : bool;
  mutable rules : (int * Acl.rule) list;  (** (stable id, rule), priority order *)
  mutable next_id : int;
  mutable root : Fdd.t;
  (* per-rule diagrams keyed by stable id: a delta recompile only builds
     the diagram of the rule that changed, then re-folds *)
  rule_fdds : (int, Fdd.t) Hashtbl.t;
  (* cache-accounting watermarks: exported counters are deltas over the
     manager's monotone totals *)
  mutable hits_seen : int;
  mutable misses_seen : int;
}

let recompile t =
  let fdds =
    List.map
      (fun (id, r) ->
        match Hashtbl.find_opt t.rule_fdds id with
        | Some f -> f
        | None ->
            let f = Compile.rule_fdd t.mgr r in
            Hashtbl.add t.rule_fdds id f;
            f)
      t.rules
  in
  t.root <- Compile.of_rule_fdds t.mgr ~default:t.default fdds;
  let h = Fdd.cache_hits t.mgr and m = Fdd.cache_misses t.mgr in
  Metrics.add m_hits (h - t.hits_seen);
  Metrics.add m_misses (m - t.misses_seen);
  t.hits_seen <- h;
  t.misses_seen <- m;
  Metrics.incr m_recompiles;
  Metrics.gauge_set m_nodes (Fdd.size t.root)

let create ?(default = false) (rules : Acl.rule list) : t =
  let t =
    {
      mgr = Fdd.create_mgr ();
      default;
      rules = List.mapi (fun i r -> (i, Acl.validate r)) rules;
      next_id = List.length rules;
      root = Fdd.leaf_false;
      rule_fdds = Hashtbl.create 256;
      hits_seen = 0;
      misses_seen = 0;
    }
  in
  recompile t;
  t

let root t = t.root
let rule_count t = List.length t.rules
let node_count t = Fdd.size t.root

(** Append [rule] at priority position [pos] (default: end of the list,
    i.e. lowest priority).  Returns the rule's stable id. *)
let insert ?pos t rule =
  let id = t.next_id in
  t.next_id <- id + 1;
  let entry = (id, Acl.validate rule) in
  let rec at n = function
    | rest when n = 0 -> entry :: rest
    | [] -> [ entry ]
    | r :: rest -> r :: at (n - 1) rest
  in
  t.rules <- (match pos with None -> t.rules @ [ entry ] | Some p -> at p t.rules);
  recompile t;
  id

(** Remove the rule with stable id [id]; [false] if absent (no
    recompile). *)
let remove t id =
  let n = List.length t.rules in
  t.rules <- List.filter (fun (i, _) -> i <> id) t.rules;
  if List.length t.rules <> n then begin
    Hashtbl.remove t.rule_fdds id;
    recompile t;
    true
  end
  else false

(** Classify a key against the live diagram. *)
let match_key t k =
  let v, d = Fdd.eval_depth t.root k in
  Metrics.observe m_depth d;
  v = 1

(** Classify a decoded packet; non-IPv4 packets take the default. *)
let match_packet t pkt =
  match Acl.key_of_packet pkt with
  | None -> t.default
  | Some k -> match_key t k
