(** The classifier's rule model: 5-tuple ACL entries.

    A rule constrains any subset of {proto, src net, dst net, src port
    range, dst port range}; [None] is a wildcard.  Rule lists use
    {e first-match} semantics with an explicit default — exactly the
    contract of {!Hilti_firewall.Fw_rules}, widened with the transport
    dimensions the paper's BPF workload filters on.

    IPv4 only: the decision-diagram backend classifies on the 32-bit
    address words (see {!Fdd}); IPv6 traffic never reaches it. *)

open Hilti_types

type rule = {
  proto : int option;           (** IP protocol number *)
  src : Network.t option;
  dst : Network.t option;
  sport : (int * int) option;   (** inclusive port range *)
  dport : (int * int) option;
  action : bool;                (** [true] = allow *)
}

let any =
  { proto = None; src = None; dst = None; sport = None; dport = None; action = false }

exception Unsupported of string

(** Check a network constraint is expressible (IPv4). *)
let check_net = function
  | Some n when not (Addr.is_ipv4 (Network.prefix n)) ->
      raise (Unsupported (Printf.sprintf "IPv6 network %s" (Network.to_string n)))
  | _ -> ()

let check_range what = function
  | Some (lo, hi) when not (0 <= lo && lo <= hi && hi <= 65535) ->
      raise (Unsupported (Printf.sprintf "bad %s range %d-%d" what lo hi))
  | _ -> ()

let validate r =
  check_net r.src;
  check_net r.dst;
  check_range "sport" r.sport;
  check_range "dport" r.dport;
  (match r.proto with
  | Some p when p < 0 || p > 255 ->
      raise (Unsupported (Printf.sprintf "bad protocol %d" p))
  | _ -> ());
  r

(** Widen a firewall rule (src/dst nets only). *)
let of_fw_rule (r : Hilti_firewall.Fw_rules.rule) =
  validate
    { any with
      src = r.Hilti_firewall.Fw_rules.src;
      dst = r.Hilti_firewall.Fw_rules.dst;
      action = r.Hilti_firewall.Fw_rules.action = Hilti_firewall.Fw_rules.Allow }

let of_fw_rules rules = List.map of_fw_rule rules

let to_string r =
  let net = function None -> "*" | Some n -> Network.to_string n in
  let range = function None -> "*" | Some (lo, hi) -> Printf.sprintf "%d-%d" lo hi in
  let proto = function None -> "*" | Some p -> string_of_int p in
  Printf.sprintf "%s %s %s %s %s %s" (proto r.proto) (net r.src) (net r.dst)
    (range r.sport) (range r.dport)
    (if r.action then "allow" else "deny")

(* ---- Linear reference matcher ------------------------------------------------ *)

(** Does [rule] match the key?  The independent semantics the diagram
    backend is differentially tested against. *)
let rule_matches r (k : Fdd.key) =
  let net_ok field = function
    | None -> true
    | Some n ->
        Network.contains n (Addr.of_ipv4_int32 (Int32.of_int field))
  in
  let range_ok field = function
    | None -> true
    | Some (lo, hi) -> lo <= field && field <= hi
  in
  (match r.proto with None -> true | Some p -> p = k.Fdd.proto)
  && net_ok k.Fdd.src r.src
  && net_ok k.Fdd.dst r.dst
  && range_ok k.Fdd.sport r.sport
  && range_ok k.Fdd.dport r.dport

(** First match wins; [default] if nothing matches. *)
let linear_match ?(default = false) rules k =
  let rec go = function
    | [] -> default
    | r :: rest -> if rule_matches r k then r.action else go rest
  in
  go rules

(* ---- Packet keys ------------------------------------------------------------- *)

(** The classification key of a decoded IPv4 packet ([None] for IPv6).
    Transport protocols without ports classify with sport = dport = 0. *)
let key_of_packet (pkt : Hilti_net.Packet.t) : Fdd.key option =
  match pkt.Hilti_net.Packet.ip with
  | Hilti_net.Packet.V6 _ -> None
  | Hilti_net.Packet.V4 ih ->
      let sport, dport =
        match pkt.Hilti_net.Packet.transport with
        | Hilti_net.Packet.TCP (h, _) -> (h.Hilti_net.Tcp.src_port, h.Hilti_net.Tcp.dst_port)
        | Hilti_net.Packet.UDP (h, _) -> (h.Hilti_net.Udp.src_port, h.Hilti_net.Udp.dst_port)
        | Hilti_net.Packet.Other _ -> (0, 0)
      in
      Some
        {
          Fdd.proto = ih.Hilti_net.Ipv4.protocol;
          src = Addr.to_ipv4_int ih.Hilti_net.Ipv4.src;
          dst = Addr.to_ipv4_int ih.Hilti_net.Ipv4.dst;
          sport;
          dport;
        }

let key ~proto ~src ~dst ~sport ~dport =
  {
    Fdd.proto;
    src = Addr.to_ipv4_int src;
    dst = Addr.to_ipv4_int dst;
    sport;
    dport;
  }
