(** Hash-consed forwarding decision diagrams over packet header fields.

    Following "A Fast Compiler for NetKAT" (Smolka et al.), rule sets are
    compiled into a decision diagram so that match cost depends only on
    the header layout, never on the number of rules.  The diagram is
    field-ordered and bit-granular: every decision variable is one bit of
    one header field, and fields appear in a fixed order

      proto (8 bits) < src addr (32) < dst addr (32) < sport (16) < dport (16)

    with bits within a field ordered most-significant first.  A CIDR
    prefix test is then exactly a path of [len] bit decisions, two
    prefixes on the same field share their common path by construction,
    and a full match walks at most {!nvars} = 104 decisions regardless of
    rule count.

    {2 Invariants}

    - {e Ordered}: along every path variables strictly increase, so no
      field bit is ever tested twice and contradictory or subsumed CIDR
      tests cannot appear on one path (test elimination).
    - {e Reduced}: {!mk} collapses nodes whose branches are physically
      equal (child merging), so irrelevant tests vanish.
    - {e Shared}: nodes are hash-consed in a {!mgr}; two structurally
      equal diagrams built against the same manager are physically equal
      ([==]), which also makes equality tests and memoization O(1).

    Leaves carry small integer actions; {!fallthrough} is the
    distinguished "no rule decided yet" leaf that first-match
    sequencing ({!seq}) resolves. *)

(* ---- Variable layout -------------------------------------------------------- *)

let proto_base = 0
let src_base = 8
let dst_base = 40
let sport_base = 72
let dport_base = 88
let nvars = 104

(** The header-field values a packet is classified on.  IPv4 only: the
    address fields are the 32-bit host-order address words. *)
type key = { proto : int; src : int; dst : int; sport : int; dport : int }

(** Bit [var] of [key], per the variable layout above. *)
let key_bit k var =
  if var < src_base then (k.proto lsr (7 - var)) land 1
  else if var < dst_base then (k.src lsr (src_base + 31 - var)) land 1
  else if var < sport_base then (k.dst lsr (dst_base + 31 - var)) land 1
  else if var < dport_base then (k.sport lsr (sport_base + 15 - var)) land 1
  else (k.dport lsr (dport_base + 15 - var)) land 1

(* ---- Nodes ------------------------------------------------------------------ *)

type t =
  | Leaf of int
  | Node of { var : int; hi : t; lo : t; id : int }

(** The "no rule matched yet" action resolved by {!seq}. *)
let fallthrough = -1

(* Leaves are canonicalized too — [mk]'s child-merging and the physical
   equality guarantee rely on one allocation per action value.  The small
   action range every client uses is preallocated; the tail is guarded
   for safety under domains. *)
let leaf_small = Array.init 10 (fun i -> Leaf (i - 2))
let leaf_tail : (int, t) Hashtbl.t = Hashtbl.create 16
let leaf_lock = Mutex.create ()

let leaf v =
  if v >= -2 && v < 8 then leaf_small.(v + 2)
  else
    Mutex.protect leaf_lock (fun () ->
        match Hashtbl.find_opt leaf_tail v with
        | Some l -> l
        | None ->
            let l = Leaf v in
            Hashtbl.add leaf_tail v l;
            l)

let leaf_true = leaf 1
let leaf_false = leaf 0
let leaf_fallthrough = leaf fallthrough

(** Unique id; leaves map to negative ids, nodes to their counter. *)
let id = function Leaf v -> -2 - v | Node n -> n.id

(** Root variable, [max_int] for leaves (leaves sort after any test). *)
let var = function Leaf _ -> max_int | Node n -> n.var

(* ---- The manager: hash-consing + operation memos ---------------------------- *)

type mgr = {
  unique : (int * int * int, t) Hashtbl.t;  (* (var, id hi, id lo) -> node *)
  mutable next_id : int;
  mutable hits : int;    (* hash-cons cache hits *)
  mutable misses : int;  (* fresh node constructions *)
  not_memo : (int, t) Hashtbl.t;
  and_memo : (int * int, t) Hashtbl.t;
  or_memo : (int * int, t) Hashtbl.t;
  seq_memo : (int * int, t) Hashtbl.t;
}

let create_mgr () =
  {
    unique = Hashtbl.create 4096;
    next_id = 0;
    hits = 0;
    misses = 0;
    not_memo = Hashtbl.create 256;
    and_memo = Hashtbl.create 1024;
    or_memo = Hashtbl.create 1024;
    seq_memo = Hashtbl.create 1024;
  }

(** Smart constructor: child merging + hash-consing.  The only way nodes
    are ever built, so the invariants hold globally. *)
let mk mgr v ~hi ~lo =
  if hi == lo then hi
  else begin
    let key = (v, id hi, id lo) in
    match Hashtbl.find_opt mgr.unique key with
    | Some n ->
        mgr.hits <- mgr.hits + 1;
        n
    | None ->
        mgr.misses <- mgr.misses + 1;
        let n = Node { var = v; hi; lo; id = mgr.next_id } in
        mgr.next_id <- mgr.next_id + 1;
        Hashtbl.add mgr.unique key n;
        n
  end

let live_nodes mgr = Hashtbl.length mgr.unique
let cache_hits mgr = mgr.hits
let cache_misses mgr = mgr.misses

(* ---- Predicate constructors -------------------------------------------------- *)

(* A prefix test is a single path: the first [len] bits of [value] (MSB
   first within the field) must match; any mismatch falls to Leaf 0. *)
let prefix mgr ~base ~width ~value ~len =
  if len < 0 || len > width then invalid_arg "Fdd.prefix";
  let acc = ref leaf_true in
  for i = len - 1 downto 0 do
    let bit = (value lsr (width - 1 - i)) land 1 in
    let v = base + i in
    acc :=
      if bit = 1 then mk mgr v ~hi:!acc ~lo:leaf_false
      else mk mgr v ~hi:leaf_false ~lo:!acc
  done;
  !acc

let field_eq mgr ~base ~width value = prefix mgr ~base ~width ~value ~len:width

(* x >= bound over the [width]-bit field at [base]: standard recursive
   threshold construction, O(width) nodes. *)
let rec ge_bits mgr ~base ~width i bound =
  if i >= width then leaf_true
  else
    let bit = (bound lsr (width - 1 - i)) land 1 in
    let rest = ge_bits mgr ~base ~width (i + 1) bound in
    if bit = 1 then mk mgr (base + i) ~hi:rest ~lo:leaf_false
    else mk mgr (base + i) ~hi:leaf_true ~lo:rest

let rec le_bits mgr ~base ~width i bound =
  if i >= width then leaf_true
  else
    let bit = (bound lsr (width - 1 - i)) land 1 in
    let rest = le_bits mgr ~base ~width (i + 1) bound in
    if bit = 0 then mk mgr (base + i) ~hi:leaf_false ~lo:rest
    else mk mgr (base + i) ~hi:rest ~lo:leaf_true

(* ---- Boolean operations on predicates (leaves 0/1) --------------------------- *)

let rec not_ mgr a =
  match a with
  | Leaf v -> if v = 0 then leaf_true else leaf_false
  | Node n -> (
      match Hashtbl.find_opt mgr.not_memo n.id with
      | Some r -> r
      | None ->
          let r = mk mgr n.var ~hi:(not_ mgr n.hi) ~lo:(not_ mgr n.lo) in
          Hashtbl.add mgr.not_memo n.id r;
          r)

(* Shannon co-factor helpers: descend whichever operands test the topmost
   variable; an operand whose root variable is larger is constant in it. *)
let cofactors v a =
  match a with
  | Node n when n.var = v -> (n.hi, n.lo)
  | _ -> (a, a)

let rec and_ mgr a b =
  if a == b then a
  else
    match (a, b) with
    | Leaf 0, _ | _, Leaf 0 -> leaf_false
    | Leaf 1, x | x, Leaf 1 -> x
    | _ ->
        let key = if id a <= id b then (id a, id b) else (id b, id a) in
        (match Hashtbl.find_opt mgr.and_memo key with
        | Some r -> r
        | None ->
            let v = min (var a) (var b) in
            let ah, al = cofactors v a and bh, bl = cofactors v b in
            let r = mk mgr v ~hi:(and_ mgr ah bh) ~lo:(and_ mgr al bl) in
            Hashtbl.add mgr.and_memo key r;
            r)

let rec or_ mgr a b =
  if a == b then a
  else
    match (a, b) with
    | Leaf 1, _ | _, Leaf 1 -> leaf_true
    | Leaf 0, x | x, Leaf 0 -> x
    | _ ->
        let key = if id a <= id b then (id a, id b) else (id b, id a) in
        (match Hashtbl.find_opt mgr.or_memo key with
        | Some r -> r
        | None ->
            let v = min (var a) (var b) in
            let ah, al = cofactors v a and bh, bl = cofactors v b in
            let r = mk mgr v ~hi:(or_ mgr ah bh) ~lo:(or_ mgr al bl) in
            Hashtbl.add mgr.or_memo key r;
            r)

(* ---- First-match sequencing --------------------------------------------------- *)

(** [seq a b]: wherever [a] decides an action, that action stands;
    wherever [a] falls through, [b] decides.  Associative, so rule lists
    can be folded in any shape — the compiler uses a balanced reduction
    for memo reuse across incremental recompiles. *)
let rec seq mgr a b =
  match a with
  | Leaf v when v <> fallthrough -> a
  | Leaf _ -> b
  | Node _ -> (
      match b with
      | Leaf v when v = fallthrough -> a
      | _ ->
          let key = (id a, id b) in
          (match Hashtbl.find_opt mgr.seq_memo key with
          | Some r -> r
          | None ->
              let v = min (var a) (var b) in
              let ah, al = cofactors v a and bh, bl = cofactors v b in
              let r = mk mgr v ~hi:(seq mgr ah bh) ~lo:(seq mgr al bl) in
              Hashtbl.add mgr.seq_memo key r;
              r))

(** Rewrite leaf actions.  Memoized per call; used to turn a 0/1
    predicate into an (action | fallthrough) rule diagram and to resolve
    remaining fallthrough leaves into the default action. *)
let map_leaves mgr f fdd =
  let memo = Hashtbl.create 64 in
  let rec go fdd =
    match fdd with
    | Leaf v -> leaf (f v)
    | Node n -> (
        match Hashtbl.find_opt memo n.id with
        | Some r -> r
        | None ->
            let r = mk mgr n.var ~hi:(go n.hi) ~lo:(go n.lo) in
            Hashtbl.add memo n.id r;
            r)
  in
  go fdd

(* ---- Evaluation --------------------------------------------------------------- *)

(** Classify [key]: walk at most {!nvars} decisions. *)
let rec eval fdd k =
  match fdd with
  | Leaf v -> v
  | Node n -> eval (if key_bit k n.var = 1 then n.hi else n.lo) k

(** Like {!eval} but also reports the number of decisions taken (the
    match-depth histogram feed). *)
let eval_depth fdd k =
  let rec go fdd d =
    match fdd with
    | Leaf v -> (v, d)
    | Node n -> go (if key_bit k n.var = 1 then n.hi else n.lo) (d + 1)
  in
  go fdd 0

(* ---- Structure reports --------------------------------------------------------- *)

(** Distinct nodes reachable from [fdd] (leaves excluded). *)
let size fdd =
  let seen = Hashtbl.create 256 in
  let rec go = function
    | Leaf _ -> ()
    | Node n ->
        if not (Hashtbl.mem seen n.id) then begin
          Hashtbl.add seen n.id ();
          go n.hi;
          go n.lo
        end
  in
  go fdd;
  Hashtbl.length seen

(** Longest root-to-leaf decision chain ([<= nvars] by ordering). *)
let depth fdd =
  let memo = Hashtbl.create 256 in
  let rec go = function
    | Leaf _ -> 0
    | Node n -> (
        match Hashtbl.find_opt memo n.id with
        | Some d -> d
        | None ->
            let d = 1 + max (go n.hi) (go n.lo) in
            Hashtbl.add memo n.id d;
            d)
  in
  go fdd

(** Reachable nodes in a reverse-topological order (children before
    parents) — the emission order the bytecode lowering wants. *)
let postorder fdd =
  let seen = Hashtbl.create 256 in
  let acc = ref [] in
  let rec go fdd =
    match fdd with
    | Leaf _ -> ()
    | Node n ->
        if not (Hashtbl.mem seen n.id) then begin
          Hashtbl.add seen n.id ();
          go n.hi;
          go n.lo;
          acc := fdd :: !acc
        end
  in
  go fdd;
  List.rev !acc
