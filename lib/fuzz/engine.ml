(** The fuzzing engine: a deterministic, seeded mutation loop over the
    generator-derived corpus.

    For every oracle pair it first executes the unmutated corpus (the
    shipped parsers must agree on it — a baseline disagreement is itself
    a finding), then [execs] mutated cases.  Findings are deduplicated
    by a stable fingerprint, shrunk by greedy chunk reduction that must
    preserve the fingerprint, and reported as JSONL records carrying the
    [(seed, corpus index, mutation trace)] needed to replay them
    byte-for-byte. *)

module Rng = Hilti_traces.Rng

let m_execs =
  Hilti_obs.Metrics.counter "fuzz_execs"
    ~help:"Differential fuzz case executions (both oracle sides)"

let m_divergences =
  Hilti_obs.Metrics.counter "fuzz_divergences"
    ~help:"Distinct differential findings (post dedup)"

let m_min_bytes =
  Hilti_obs.Metrics.counter "fuzz_minimized_bytes"
    ~help:"Case bytes shaved off findings by minimization"

(* Local mirror of fuzz_execs, so reports work with metrics disabled. *)
let exec_count = ref 0

type finding = {
  f_pair : string;
  f_class : string;  (** "divergence" | "crash" | "hang" *)
  f_fingerprint : string;
  f_seed : int;
  f_corpus : int;  (** corpus index the mutation trace starts from *)
  f_ops : Mutate.op list;
  f_detail : string;
  f_case_bytes : int;  (** minimized case size *)
  f_saved_bytes : int;
}

type config = {
  seed : int;
  execs : int;  (** mutated executions per oracle pair *)
  max_ops : int;  (** mutation ops per case, 1..max_ops *)
  minimize_budget : int;  (** extra executions spent shrinking a finding *)
  step_budget : int;  (** VM steps per case before calling it a hang *)
}

let default =
  { seed = 1; execs = 150; max_ops = 3; minimize_budget = 48;
    step_budget = Oracle.default_step_budget }

type report = { r_execs : int; r_corpus : int; r_findings : finding list }

(* ---- Execution and classification -------------------------------------------- *)

(** Run both sides once; [Some (class, detail)] on any disagreement. *)
let execute (p : Oracle.pair) (case : Mutate.case) : (string * string) option =
  incr exec_count;
  Hilti_obs.Metrics.incr m_execs;
  let a = p.Oracle.left.Oracle.run case in
  let b = p.Oracle.right.Oracle.run case in
  match (a.Oracle.crash, b.Oracle.crash) with
  | Some m, _ -> Some ("crash", p.Oracle.left.Oracle.iname ^ ": " ^ m)
  | None, Some m -> Some ("crash", p.Oracle.right.Oracle.iname ^ ": " ^ m)
  | None, None ->
      if a.Oracle.hang then Some ("hang", p.Oracle.left.Oracle.iname)
      else if b.Oracle.hang then Some ("hang", p.Oracle.right.Oracle.iname)
      else (
        match p.Oracle.agree a b with
        | Some d -> Some ("divergence", d)
        | None -> None)

(* The fingerprint must survive minimization, which shifts line indices
   and shrinks payloads — so it hashes the detail with digits stripped
   (coarse, which also makes dedup stronger). *)
let fingerprint pair_name cls detail =
  let b = Buffer.create (String.length detail) in
  String.iter (fun c -> if not (c >= '0' && c <= '9') then Buffer.add_char b c) detail;
  String.sub
    (Digest.to_hex (Digest.string (pair_name ^ "\x00" ^ cls ^ "\x00" ^ Buffer.contents b)))
    0 12

(* ---- Minimization ------------------------------------------------------------ *)

(* Greedy chunk reduction: drop whole flows, then binary-chop each
   flow's tail, then discard eviction points and extra chunking — every
   step must keep reproducing the same fingerprint. *)
let minimize (p : Oracle.pair) (case : Mutate.case) fp ~budget : Mutate.case =
  let spent = ref 0 in
  let reproduces c =
    !spent < budget
    && begin
         incr spent;
         match execute p c with
         | Some (cls, detail) -> String.equal (fingerprint p.Oracle.pname cls detail) fp
         | None -> false
       end
  in
  let cur = ref case in
  let try_keep c = if reproduces c then cur := c in
  let nf = Array.length case.Mutate.streams in
  for f = 0 to nf - 1 do
    if String.length !cur.Mutate.streams.(f) > 0 then
      try_keep (Mutate.apply !cur (Mutate.Truncate { flow = f; at = 0 }))
  done;
  for f = 0 to nf - 1 do
    let shrinking = ref true in
    while !shrinking && String.length !cur.Mutate.streams.(f) > 0 do
      let l = String.length !cur.Mutate.streams.(f) in
      let cand = Mutate.apply !cur (Mutate.Truncate { flow = f; at = l / 2 }) in
      if reproduces cand then cur := cand else shrinking := false
    done
  done;
  if !cur.Mutate.evicts <> [] then try_keep { !cur with Mutate.evicts = [] };
  if Array.exists (fun c -> c <> []) !cur.Mutate.cuts then
    try_keep { !cur with Mutate.cuts = Array.map (fun _ -> []) !cur.Mutate.cuts };
  !cur

(* ---- The main loop ----------------------------------------------------------- *)

let run ?pairs (cfg : config) : report =
  let pairs =
    match pairs with
    | Some p -> p
    | None -> Oracle.pairs ~step_budget:cfg.step_budget ()
  in
  let start = !exec_count in
  let findings = ref [] in
  let seen = Hashtbl.create 32 in
  let corpus_total = ref 0 in
  List.iter
    (fun (p : Oracle.pair) ->
      let corpus = Array.of_list (Corpus.for_proto p.Oracle.proto) in
      corpus_total := !corpus_total + Array.length corpus;
      let rng = Rng.create (cfg.seed lxor Hashtbl.hash p.Oracle.pname) in
      let record cls detail corpus_idx ops case =
        let fp = fingerprint p.Oracle.pname cls detail in
        if not (Hashtbl.mem seen fp) then begin
          Hashtbl.add seen fp ();
          Hilti_obs.Metrics.incr m_divergences;
          let min_case =
            if cfg.minimize_budget > 0 then
              minimize p case fp ~budget:cfg.minimize_budget
            else case
          in
          let saved = Mutate.case_bytes case - Mutate.case_bytes min_case in
          Hilti_obs.Metrics.add m_min_bytes saved;
          findings :=
            { f_pair = p.Oracle.pname; f_class = cls; f_fingerprint = fp;
              f_seed = cfg.seed; f_corpus = corpus_idx; f_ops = ops;
              f_detail = detail; f_case_bytes = Mutate.case_bytes min_case;
              f_saved_bytes = saved }
            :: !findings
        end
      in
      Array.iteri
        (fun i c ->
          match execute p c with
          | Some (cls, detail) -> record cls detail i [] c
          | None -> ())
        corpus;
      if Array.length corpus > 0 && cfg.execs > 0 && cfg.max_ops > 0 then
        for _ = 1 to cfg.execs do
          let ci = Rng.int rng (Array.length corpus) in
          let case, ops =
            Mutate.mutate rng ~proto:p.Oracle.proto corpus.(ci) ~max_ops:cfg.max_ops
          in
          match execute p case with
          | Some (cls, detail) -> record cls detail ci ops case
          | None -> ()
        done)
    pairs;
  {
    r_execs = !exec_count - start;
    r_corpus = !corpus_total;
    r_findings = List.rev !findings;
  }

(** Replay a recorded finding deterministically: rebuild the corpus
    case, re-apply the mutation trace, run the pair once.  Returns
    [(class, detail, fingerprint)] if the disagreement reproduces. *)
let replay (p : Oracle.pair) ~corpus:ci ~(ops : Mutate.op list) :
    (string * string * string) option =
  let corpus = Array.of_list (Corpus.for_proto p.Oracle.proto) in
  if ci < 0 || ci >= Array.length corpus then None
  else
    let case = List.fold_left Mutate.apply corpus.(ci) ops in
    match execute p case with
    | Some (cls, detail) -> Some (cls, detail, fingerprint p.Oracle.pname cls detail)
    | None -> None

(* ---- Reporting --------------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 || Char.code c >= 0x7f ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let finding_to_json (f : finding) =
  Printf.sprintf
    "{\"pair\":\"%s\",\"class\":\"%s\",\"fingerprint\":\"%s\",\"seed\":%d,\"corpus\":%d,\"ops\":[%s],\"detail\":\"%s\",\"case_bytes\":%d,\"saved_bytes\":%d}"
    (json_escape f.f_pair) (json_escape f.f_class) f.f_fingerprint f.f_seed
    f.f_corpus
    (String.concat ","
       (List.map (fun op -> "\"" ^ json_escape (Mutate.op_to_string op) ^ "\"") f.f_ops))
    (json_escape f.f_detail) f.f_case_bytes f.f_saved_bytes

(** One JSONL line per finding. *)
let report_to_jsonl (r : report) =
  String.concat "" (List.map (fun f -> finding_to_json f ^ "\n") r.r_findings)

let summary (r : report) =
  Printf.sprintf "fuzz: %d execs over %d corpus cases, %d distinct findings"
    r.r_execs r.r_corpus (List.length r.r_findings)
