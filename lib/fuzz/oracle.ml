(** Differential oracles: run one fuzz case through two independent
    implementations and compare what they observed.

    Implementations come in two families:
    - hand-written baseline vs BinPAC++ parser (mqtt, ftp, dns) — the
      §6.4 cross-parser differential;
    - the same BinPAC++ grammar on two VM dispatch loops (checked vs
      specialized) — a compiler/VM differential.

    Each run yields an {!outcome}: the serialized event stream (the
    common currency both analyzer families emit), per-flow fates
    ("ok"/"reject" per parser incarnation), plus crash and hang flags.
    A crash is any failure escaping the Parse_failed/Hilti_error
    contract; a hang is a parse exceeding the VM step budget. *)

module E = Hilti_analyzers.Events
module R = Binpacxx.Runtime

type outcome = {
  events : string list;  (** serialized events, in feed order *)
  fates : string list;  (** per flow incarnation: "fN.I ok" / "fN.I reject" *)
  crash : string option;
  hang : bool;
}

type impl = { iname : string; run : Mutate.case -> outcome }

(** [agree] returns a human-readable description of the first
    disagreement, or None.  Crashes and hangs are handled by the engine
    before [agree] is consulted. *)
type pair = {
  pname : string;
  proto : Shape.proto;
  left : impl;
  right : impl;
  agree : outcome -> outcome -> string option;
}

exception Crashed of string
exception Hung

(* ---- Event serialization ----------------------------------------------------- *)

let mqtt_ev = function
  | E.M_connect c ->
      Printf.sprintf "connect id=%S proto=%S ver=%d ka=%d" c.E.client_id c.E.proto
        c.E.version c.E.keepalive
  | E.M_connack rc -> Printf.sprintf "connack %d" rc
  | E.M_publish p ->
      Printf.sprintf "publish topic=%S qos=%d len=%d" p.E.topic p.E.qos p.E.payload_len
  | E.M_subscribe s ->
      Printf.sprintf "subscribe id=%d [%s]" s.E.s_msgid
        (String.concat ";"
           (List.map (fun (t, q) -> Printf.sprintf "%S/%d" t q) s.E.topics))
  | E.M_suback id -> Printf.sprintf "suback %d" id
  | E.M_disconnect -> "disconnect"
  | E.M_other p -> Printf.sprintf "other %d" p

let ftp_ev = function
  | E.F_request r -> Printf.sprintf "req %S %S" r.E.cmd r.E.arg
  | E.F_reply r -> Printf.sprintf "rep %d %S" r.E.code r.E.msg

let dns_req (r : E.dns_request) =
  Printf.sprintf "req id=%d q=%S qt=%d" r.E.q_id r.E.query r.E.qtype

let dns_rep (r : E.dns_reply) =
  Printf.sprintf "rep id=%d rc=%d ans=[%s] ttls=[%s]" r.E.r_id r.E.rcode
    (String.concat ";" (List.map (fun a -> Printf.sprintf "%S" a) r.E.answers))
    (String.concat ";" (List.map string_of_int r.E.ttls))

(* ---- The streaming harness --------------------------------------------------- *)

(* One parser incarnation for one flow. [p_feed] returns (Some fate) as
   soon as the parser terminates — cleanly or with a grammar-level
   reject — after which the harness stops feeding that incarnation. *)
type stream_parser = {
  p_feed : string -> string option;
  p_eof : unit -> string;
}

(** Drive a case through per-flow incremental parsers: chunks interleave
    round-robin across flows; eviction points end the flow's parser and
    start a fresh incarnation (the driver's idle-timeout behavior). *)
let run_streams ~(mk : flow:int -> label:string -> push:(string -> unit) -> stream_parser)
    (case : Mutate.case) : outcome =
  let events = ref [] and fates = ref [] in
  let push line = events := line :: !events in
  let nf = Array.length case.Mutate.streams in
  let chunks = Array.init nf (fun f -> Array.of_list (Mutate.chunks case f)) in
  let inc = Array.make nf 0 in
  let label f = Printf.sprintf "f%d.%d" f inc.(f) in
  let fate f st = fates := (label f ^ " " ^ st) :: !fates in
  let parsers = Array.init nf (fun f -> Some (mk ~flow:f ~label:(label f) ~push)) in
  let finish () =
    {
      events = List.rev !events;
      fates = List.rev !fates;
      crash = None;
      hang = false;
    }
  in
  try
    let max_chunks = Array.fold_left (fun a c -> max a (Array.length c)) 0 chunks in
    for k = 0 to max_chunks - 1 do
      for f = 0 to nf - 1 do
        if k < Array.length chunks.(f) then begin
          (match parsers.(f) with
          | Some p -> (
              match p.p_feed chunks.(f).(k) with
              | Some st ->
                  fate f st;
                  parsers.(f) <- None
              | None -> ())
          | None -> ());
          if List.mem (f, k) case.Mutate.evicts && k < Array.length chunks.(f) - 1
          then begin
            (* Idle-timeout eviction: flush the current session, then a
               fresh one picks up the remaining bytes. *)
            (match parsers.(f) with
            | Some p -> fate f (p.p_eof ())
            | None -> ());
            inc.(f) <- inc.(f) + 1;
            parsers.(f) <- Some (mk ~flow:f ~label:(label f) ~push)
          end
        end
      done
    done;
    for f = 0 to nf - 1 do
      match parsers.(f) with
      | Some p -> fate f (p.p_eof ())
      | None -> ()
    done;
    finish ()
  with
  | Crashed m -> { (finish ()) with crash = Some m }
  | Hung -> { (finish ()) with hang = true }
  | e -> { (finish ()) with crash = Some (Printexc.to_string e) }

(* ---- BinPAC++ status classification ------------------------------------------ *)

let contains ~needle hay =
  let n = String.length needle and l = String.length hay in
  let rec go i = i + n <= l && (String.sub hay i n = needle || go (i + 1)) in
  n > 0 && go 0

let is_uncaught msg = String.length msg >= 9 && String.sub msg 0 9 = "uncaught:"

(* Blocked -> keep feeding; grammar-level failure -> clean reject; a raw
   exception that escaped the contract -> crash (or hang, when it is the
   VM step-budget kill). *)
let classify_status = function
  | R.Blocked -> None
  | R.Done _ -> Some "ok"
  | R.Failed msg when is_uncaught msg ->
      if contains ~needle:"Step_budget_exceeded" msg then raise Hung
      else raise (Crashed msg)
  | R.Failed _ -> Some "reject"

let eof_fate status =
  match classify_status status with Some st -> st | None -> "reject"

let dispatch_tag ~verify ~specialize =
  if not verify then "checked" else if specialize then "spec" else "verified"

(* ---- MQTT implementations ---------------------------------------------------- *)

module Mstd = Hilti_analyzers.Mqtt_std
module Mpac = Hilti_analyzers.Mqtt_pac

let mqtt_std () : impl =
  {
    iname = "mqtt-std";
    run =
      run_streams ~mk:(fun ~flow:_ ~label ~push ->
          let t = Mstd.create ~on_packet:(fun ev -> push (label ^ " " ^ mqtt_ev ev)) in
          let fate_opt () =
            match Mstd.failed t with Some _ -> Some "reject" | None -> None
          in
          {
            p_feed =
              (fun b ->
                Mstd.feed t b;
                fate_opt ());
            p_eof =
              (fun () ->
                Mstd.eof t;
                match Mstd.failed t with Some _ -> "reject" | None -> "ok");
          });
  }

let mqtt_pac ~verify ~specialize ~step_budget () : impl =
  let t = Mpac.load ~verify ~specialize () in
  let api = t.Mpac.parser.R.api in
  {
    iname = "mqtt-pac-" ^ dispatch_tag ~verify ~specialize;
    run =
      (fun case ->
        Hilti_vm.Host_api.set_step_budget api step_budget;
        Fun.protect
          ~finally:(fun () -> Hilti_vm.Host_api.clear_step_budget api)
          (fun () ->
            run_streams case ~mk:(fun ~flow:_ ~label ~push ->
                let ss =
                  Mpac.session t ~on_packet:(fun ev ->
                      push (label ^ " " ^ mqtt_ev ev))
                in
                {
                  p_feed = (fun b -> classify_status (Mpac.feed ss b));
                  p_eof = (fun () -> eof_fate (Mpac.eof ss));
                })));
  }

(* ---- FTP implementations ----------------------------------------------------- *)

module Fstd = Hilti_analyzers.Ftp_std
module Fpac = Hilti_analyzers.Ftp_pac

(* Flow role: even flow indices carry commands, odd ones replies. *)
let ftp_is_command flow = flow mod 2 = 0

let ftp_std () : impl =
  {
    iname = "ftp-std";
    run =
      run_streams ~mk:(fun ~flow ~label ~push ->
          let t =
            Fstd.create ~is_command:(ftp_is_command flow)
              ~on_event:(fun ev -> push (label ^ " " ^ ftp_ev ev))
          in
          let fate_opt () =
            match Fstd.failed t with Some _ -> Some "reject" | None -> None
          in
          {
            p_feed =
              (fun b ->
                Fstd.feed t b;
                fate_opt ());
            p_eof =
              (fun () ->
                Fstd.eof t;
                match Fstd.failed t with Some _ -> "reject" | None -> "ok");
          });
  }

let ftp_pac ~verify ~specialize ~step_budget () : impl =
  let t = Fpac.load ~verify ~specialize () in
  let api = t.Fpac.parser.R.api in
  {
    iname = "ftp-pac-" ^ dispatch_tag ~verify ~specialize;
    run =
      (fun case ->
        Hilti_vm.Host_api.set_step_budget api step_budget;
        Fun.protect
          ~finally:(fun () -> Hilti_vm.Host_api.clear_step_budget api)
          (fun () ->
            run_streams case ~mk:(fun ~flow ~label ~push ->
                let ss =
                  Fpac.session t ~is_command:(ftp_is_command flow)
                    ~on_event:(fun ev -> push (label ^ " " ^ ftp_ev ev))
                in
                {
                  p_feed = (fun b -> classify_status (Fpac.feed ss b));
                  p_eof = (fun () -> eof_fate (Fpac.eof ss));
                })));
  }

(* ---- DNS implementations ----------------------------------------------------- *)

module Dstd = Hilti_analyzers.Dns_std
module Dpac = Hilti_analyzers.Dns_pac

(* DNS is datagram-oriented: every feed chunk is parsed as one
   standalone datagram, so a Chunk mutation splits a datagram in two. *)
let run_datagrams ~(parse : string -> string) (case : Mutate.case) : outcome =
  let events = ref [] in
  let finish () =
    { events = List.rev !events; fates = []; crash = None; hang = false }
  in
  try
    Array.iteri
      (fun f _ ->
        List.iteri
          (fun i d -> events := Printf.sprintf "f%d.%d %s" f i (parse d) :: !events)
          (Mutate.chunks case f))
      case.Mutate.streams;
    finish ()
  with
  | Crashed m -> { (finish ()) with crash = Some m }
  | Hung -> { (finish ()) with hang = true }
  | e -> { (finish ()) with crash = Some (Printexc.to_string e) }

let dns_std () : impl =
  {
    iname = "dns-std";
    run =
      run_datagrams ~parse:(fun d ->
          match Dstd.parse d with
          | msg ->
              if msg.Dstd.is_response then dns_rep (Dstd.to_reply msg)
              else dns_req (Dstd.to_request msg)
          | exception Dstd.Bad_dns _ -> "reject"
          | exception e -> raise (Crashed (Printexc.to_string e)));
  }

let dns_pac ~specialize ~step_budget () : impl =
  let t = Dpac.load ~specialize () in
  let api = t.Dpac.parser.R.api in
  {
    iname = "dns-pac-" ^ dispatch_tag ~verify:true ~specialize;
    run =
      (fun case ->
        Hilti_vm.Host_api.set_step_budget api step_budget;
        Fun.protect
          ~finally:(fun () -> Hilti_vm.Host_api.clear_step_budget api)
          (fun () ->
            run_datagrams case ~parse:(fun d ->
                match Dpac.parse t d with
                | Dpac.Request rq -> dns_req rq
                | Dpac.Reply rp -> dns_rep rp
                | Dpac.Not_dns -> "reject"
                | exception Hilti_vm.Vm.Step_budget_exceeded -> raise Hung
                | exception e -> raise (Crashed (Printexc.to_string e)))));
  }

(* ---- Comparison -------------------------------------------------------------- *)

let first_diff tag la lb =
  let rec go i la lb =
    match (la, lb) with
    | [], [] -> None
    | [], y :: _ -> Some (Printf.sprintf "%s %d: <none> <> %s" tag i y)
    | x :: _, [] -> Some (Printf.sprintf "%s %d: %s <> <none>" tag i x)
    | x :: xs, y :: ys ->
        if String.equal x y then go (i + 1) xs ys
        else Some (Printf.sprintf "%s %d: %s <> %s" tag i x y)
  in
  go 0 la lb

(* Fates are compared as a set (sorted by their unique labels): the two
   sides must agree on each incarnation's fate, but WHEN a parser gave
   up — mid-stream vs at eof — may differ by a chunk without being a
   semantic divergence. *)
let exact a b =
  match first_diff "event" a.events b.events with
  | Some d -> Some d
  | None ->
      first_diff "fate" (List.sort compare a.fates) (List.sort compare b.fates)

(* The §6.4-normalized DNS comparison: the standard and BinPAC++ parsers
   are documented to differ on answer rendering (TXT strings) and on how
   eagerly they reject crud, so replies compare on (id, rcode) only and
   a reject on either side is tolerated.  Requests still compare in
   full. *)
let dns_relax line =
  let rec find i =
    if i + 5 > String.length line then None
    else if String.sub line i 5 = " ans=" then Some i
    else find (i + 1)
  in
  match find 0 with Some i -> String.sub line 0 i | None -> line

let is_reject line =
  let n = String.length line in
  n >= 6 && String.sub line (n - 6) 6 = "reject"

let dns_relaxed a b =
  let rec go i la lb =
    match (la, lb) with
    | [], [] -> None
    | [], y :: _ -> Some (Printf.sprintf "datagram %d: <none> <> %s" i y)
    | x :: _, [] -> Some (Printf.sprintf "datagram %d: %s <> <none>" i x)
    | x :: xs, y :: ys ->
        if is_reject x || is_reject y then go (i + 1) xs ys
        else if String.equal (dns_relax x) (dns_relax y) then go (i + 1) xs ys
        else Some (Printf.sprintf "datagram %d: %s <> %s" i (dns_relax x) (dns_relax y))
  in
  go 0 a.events b.events

(* ---- The shipped pair set ---------------------------------------------------- *)

let default_step_budget = 2_000_000

(* Grammar compilation is the expensive part of pair construction, so
   the shipped pair set is described first and only the selected pairs
   are built. *)
let pair_specs : (string * Shape.proto * (int -> pair)) list =
  [
    ( "mqtt/std-pac", Shape.Mqtt,
      fun step_budget ->
        { pname = "mqtt/std-pac"; proto = Shape.Mqtt; left = mqtt_std ();
          right = mqtt_pac ~verify:false ~specialize:false ~step_budget ();
          agree = exact } );
    ( "mqtt/dispatch", Shape.Mqtt,
      fun step_budget ->
        { pname = "mqtt/dispatch"; proto = Shape.Mqtt;
          left = mqtt_pac ~verify:false ~specialize:false ~step_budget ();
          right = mqtt_pac ~verify:true ~specialize:true ~step_budget ();
          agree = exact } );
    ( "ftp/std-pac", Shape.Ftp,
      fun step_budget ->
        { pname = "ftp/std-pac"; proto = Shape.Ftp; left = ftp_std ();
          right = ftp_pac ~verify:false ~specialize:false ~step_budget ();
          agree = exact } );
    ( "ftp/dispatch", Shape.Ftp,
      fun step_budget ->
        { pname = "ftp/dispatch"; proto = Shape.Ftp;
          left = ftp_pac ~verify:false ~specialize:false ~step_budget ();
          right = ftp_pac ~verify:true ~specialize:true ~step_budget ();
          agree = exact } );
    ( "dns/std-pac", Shape.Dns,
      fun step_budget ->
        { pname = "dns/std-pac"; proto = Shape.Dns; left = dns_std ();
          right = dns_pac ~specialize:true ~step_budget (); agree = dns_relaxed } );
    ( "dns/dispatch", Shape.Dns,
      fun step_budget ->
        { pname = "dns/dispatch"; proto = Shape.Dns;
          left = dns_pac ~specialize:false ~step_budget ();
          right = dns_pac ~specialize:true ~step_budget (); agree = exact } );
  ]

(** The full shipped pair set: cross-parser differentials for MQTT, FTP
    and DNS, plus checked-vs-specialized VM dispatch differentials for
    each grammar. *)
let pairs ?(step_budget = default_step_budget) () : pair list =
  List.map (fun (_, _, mk) -> mk step_budget) pair_specs

(** The pairs touching one protocol (both its cross-parser and its
    dispatch differential). *)
let pairs_for ?(step_budget = default_step_budget) (p : Shape.proto) : pair list =
  List.filter_map
    (fun (_, proto, mk) -> if proto = p then Some (mk step_budget) else None)
    pair_specs
