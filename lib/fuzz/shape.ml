(** Wire-shape scanners: the "grammar-aware" half of the fuzzer.  Each
    scanner walks a raw byte stream with a lightweight approximation of
    the protocol's framing and reports (a) the structural regions —
    whole messages / TLVs / lines — whose boundaries make good
    truncation, duplication and reordering points, and (b) the length
    fields whose values the mutator can lie about.  The scanners are
    deliberately forgiving: on malformed input they emit what they
    recognized plus one tail region, so mutated streams can be scanned
    again for further mutation rounds. *)

type proto = Mqtt | Ftp | Dns | Generic

let proto_to_string = function
  | Mqtt -> "mqtt"
  | Ftp -> "ftp"
  | Dns -> "dns"
  | Generic -> "generic"

let proto_of_string = function
  | "mqtt" -> Some Mqtt
  | "ftp" -> Some Ftp
  | "dns" -> Some Dns
  | "generic" -> Some Generic
  | _ -> None

(** A structural unit of the stream: an MQTT control packet, an FTP
    line, a DNS question or resource record. *)
type region = { r_off : int; r_len : int }

type lenkind = K_u16 | K_varint

(** A length-ish field: [l_val] is its current (honest) value. *)
type lenfield = { l_off : int; l_len : int; l_val : int; l_kind : lenkind }

let u16 s off = (Char.code s.[off] lsl 8) lor Char.code s.[off + 1]

(* ---- MQTT ------------------------------------------------------------------ *)

(* Base-128 remaining length at [off]: (value, encoded length), or None
   if truncated / longer than the 4 bytes the grammar accepts. *)
let mqtt_varint s off =
  let len = String.length s in
  let rec go o shift v n =
    if o >= len || n >= 4 then None
    else
      let b = Char.code s.[o] in
      let v = v lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then Some (v, n + 1) else go (o + 1) (shift + 7) v (n + 1)
  in
  go off 0 0 0

(** Minimal base-128 encoding, for splicing lied remaining lengths. *)
let encode_varint n =
  let buf = Buffer.create 4 in
  let rec go n =
    let b = n land 0x7f and n = n lsr 7 in
    if n = 0 then Buffer.add_char buf (Char.chr b)
    else begin
      Buffer.add_char buf (Char.chr (b lor 0x80));
      go n
    end
  in
  go (max 0 n);
  Buffer.contents buf

(* Regions = control packets (fixed header + remaining length's worth of
   body, clamped to the stream).  Length fields: every remaining-length
   varint, plus the leading u16 string length of CONNECT/PUBLISH bodies
   and the first topic length of SUBSCRIBE. *)
let mqtt_scan s =
  let len = String.length s in
  let rec go off regions lens =
    if off + 2 > len then (List.rev regions, List.rev lens)
    else
      match mqtt_varint s (off + 1) with
      | None ->
          (List.rev ({ r_off = off; r_len = len - off } :: regions), List.rev lens)
      | Some (remlen, vlen) ->
          let hdr = 1 + vlen in
          let total = min (hdr + remlen) (len - off) in
          let regions = { r_off = off; r_len = total } :: regions in
          let lens =
            { l_off = off + 1; l_len = vlen; l_val = remlen; l_kind = K_varint }
            :: lens
          in
          let ptype = Char.code s.[off] lsr 4 in
          let lens =
            if (ptype = 1 || ptype = 3) && off + hdr + 2 <= len then
              { l_off = off + hdr; l_len = 2; l_val = u16 s (off + hdr); l_kind = K_u16 }
              :: lens
            else if ptype = 8 && off + hdr + 4 <= len then
              { l_off = off + hdr + 2; l_len = 2; l_val = u16 s (off + hdr + 2);
                l_kind = K_u16 }
              :: lens
            else lens
          in
          if total < hdr + remlen then (List.rev regions, List.rev lens)
          else go (off + total) regions lens
  in
  go 0 [] []

(* ---- FTP ------------------------------------------------------------------- *)

(* Regions = lines, terminator included; the line-oriented grammar has
   no length fields. *)
let ftp_scan s =
  let len = String.length s in
  let rec go off acc =
    if off >= len then List.rev acc
    else
      match String.index_from_opt s off '\n' with
      | Some nl -> go (nl + 1) ({ r_off = off; r_len = nl + 1 - off } :: acc)
      | None -> List.rev ({ r_off = off; r_len = len - off } :: acc)
  in
  (go 0 [], [])

(* ---- DNS ------------------------------------------------------------------- *)

(* Regions = header, questions, resource records; length fields = the
   four header counts and every rdlength. *)
let dns_scan s =
  let len = String.length s in
  if len < 12 then ([ { r_off = 0; r_len = len } ], [])
  else begin
    let lens = ref [] in
    List.iter
      (fun o ->
        lens := { l_off = o; l_len = 2; l_val = u16 s o; l_kind = K_u16 } :: !lens)
      [ 4; 6; 8; 10 ];
    let regions = ref [ { r_off = 0; r_len = 12 } ] in
    (* Structure-only name walk: stops at a root label or a compression
       pointer, bails on truncation. *)
    let skip_name off =
      let rec walk off guard =
        if off >= len || guard > 64 then None
        else
          let b = Char.code s.[off] in
          if b = 0 then Some (off + 1)
          else if b >= 0xc0 then Some (off + 2)
          else walk (off + 1 + b) (guard + 1)
      in
      walk off 0
    in
    let qd = min (u16 s 4) 8 in
    let rrs = min (u16 s 6) 16 + min (u16 s 8) 16 + min (u16 s 10) 16 in
    let exception Stop of int in
    let off = ref 12 in
    (try
       for _ = 1 to qd do
         let start = !off in
         match skip_name !off with
         | Some e when e + 4 <= len ->
             regions := { r_off = start; r_len = e + 4 - start } :: !regions;
             off := e + 4
         | _ -> raise (Stop start)
       done;
       for _ = 1 to rrs do
         let start = !off in
         match skip_name !off with
         | Some e when e + 10 <= len ->
             let rdlen = u16 s (e + 8) in
             lens :=
               { l_off = e + 8; l_len = 2; l_val = rdlen; l_kind = K_u16 } :: !lens;
             let stop = min (e + 10 + rdlen) len in
             regions := { r_off = start; r_len = stop - start } :: !regions;
             off := stop;
             if stop >= len then raise (Stop len)
         | _ -> raise (Stop start)
       done
     with Stop at ->
       if at < len then regions := { r_off = at; r_len = len - at } :: !regions);
    (List.rev !regions, List.rev !lens)
  end

let scan proto s =
  if s = "" then ([], [])
  else
    match proto with
    | Mqtt -> mqtt_scan s
    | Ftp -> ftp_scan s
    | Dns -> dns_scan s
    | Generic -> ([ { r_off = 0; r_len = String.length s } ], [])
