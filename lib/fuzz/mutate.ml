(** Fuzz cases and structure-aware mutations.

    A case is a small set of per-flow byte streams plus a feed schedule:
    chunk boundaries (where the harness splits each stream into separate
    feeds, interleaved round-robin across flows) and eviction points
    (where the harness ends the flow's parser session mid-stream and
    starts a fresh one, modelling the driver's idle-timeout eviction).

    Mutations are generated grammar-aware — {!Shape} supplies message
    boundaries and length fields — but are recorded as plain byte-level
    edits, so a finding's [(corpus index, op list)] replays byte-for-byte
    with no RNG involved. *)

module Rng = Hilti_traces.Rng

type case = {
  streams : string array;  (** per flow, the full reassembled bytes *)
  cuts : int list array;  (** interior chunk boundaries per flow, ascending *)
  evicts : (int * int) list;  (** (flow, chunk idx): evict after that chunk *)
}

let of_streams streams =
  { streams; cuts = Array.map (fun _ -> []) streams; evicts = [] }

let case_bytes c = Array.fold_left (fun a s -> a + String.length s) 0 c.streams

(** The feed chunks of one flow, in order. *)
let chunks c flow =
  let s = c.streams.(flow) in
  let len = String.length s in
  if len = 0 then []
  else
    let cuts =
      List.filter (fun x -> x > 0 && x < len) (List.sort_uniq compare c.cuts.(flow))
    in
    let rec go start = function
      | [] -> [ String.sub s start (len - start) ]
      | cut :: rest -> String.sub s start (cut - start) :: go cut rest
    in
    go 0 cuts

(* ---- Mutation operations --------------------------------------------------- *)

type op =
  | Truncate of { flow : int; at : int }
  | Splice of { flow : int; off : int; len : int; ins : string }
      (** replace [len] bytes at [off] with [ins] — length lies, byte flips *)
  | Dup of { flow : int; off : int; len : int }  (** duplicate a TLV in place *)
  | Swap of { flow : int; a : int; alen : int; b : int; blen : int }
      (** reorder two disjoint TLVs (a before b) *)
  | Chunk of { flow : int; at : int }  (** split the feed at a byte offset *)
  | Evict of { flow : int; chunk : int }  (** mid-stream session eviction *)

let clamp lo hi v = max lo (min hi v)

(* Keep cut positions meaningful across a length-changing edit. *)
let shift_cuts cuts ~off ~removed ~inserted =
  List.filter_map
    (fun c ->
      if c <= off then Some c
      else if c >= off + removed then Some (c - removed + inserted)
      else None)
    cuts

(** Apply one op.  All coordinates are clamped into range, so any op
    applies to any case — replay never fails, it just degenerates. *)
let apply (c : case) (op : op) : case =
  let nf = Array.length c.streams in
  if nf = 0 then c
  else begin
    let streams = Array.copy c.streams in
    let cuts = Array.copy c.cuts in
    let evicts = ref c.evicts in
    let fix f = ((f mod nf) + nf) mod nf in
    (match op with
    | Truncate { flow; at } ->
        let f = fix flow in
        let s = streams.(f) in
        let at = clamp 0 (String.length s) at in
        streams.(f) <- String.sub s 0 at;
        cuts.(f) <- List.filter (fun x -> x > 0 && x < at) cuts.(f)
    | Splice { flow; off; len; ins } ->
        let f = fix flow in
        let s = streams.(f) in
        let sl = String.length s in
        let off = clamp 0 sl off in
        let len = clamp 0 (sl - off) len in
        streams.(f) <-
          String.sub s 0 off ^ ins ^ String.sub s (off + len) (sl - off - len);
        cuts.(f) <- shift_cuts cuts.(f) ~off ~removed:len ~inserted:(String.length ins)
    | Dup { flow; off; len } ->
        let f = fix flow in
        let s = streams.(f) in
        let sl = String.length s in
        let off = clamp 0 sl off in
        let len = clamp 0 (sl - off) len in
        let piece = String.sub s off len in
        streams.(f) <-
          String.sub s 0 (off + len) ^ piece ^ String.sub s (off + len) (sl - off - len);
        cuts.(f) <- shift_cuts cuts.(f) ~off:(off + len) ~removed:0 ~inserted:len
    | Swap { flow; a; alen; b; blen } ->
        let f = fix flow in
        let s = streams.(f) in
        let sl = String.length s in
        let a = clamp 0 sl a in
        let alen = clamp 0 (sl - a) alen in
        let b = clamp (a + alen) sl b in
        let blen = clamp 0 (sl - b) blen in
        let ra = String.sub s a alen and rb = String.sub s b blen in
        streams.(f) <-
          String.sub s 0 a ^ rb
          ^ String.sub s (a + alen) (b - a - alen)
          ^ ra
          ^ String.sub s (b + blen) (sl - b - blen);
        cuts.(f) <- List.filter (fun x -> x > 0 && x < sl) cuts.(f)
    | Chunk { flow; at } ->
        let f = fix flow in
        let sl = String.length streams.(f) in
        if sl > 1 then begin
          let at = clamp 1 (sl - 1) at in
          cuts.(f) <- List.sort_uniq compare (at :: cuts.(f))
        end
    | Evict { flow; chunk } ->
        let f = fix flow in
        let chunk = max 0 chunk in
        if not (List.mem (f, chunk) !evicts) then evicts := (f, chunk) :: !evicts);
    { streams; cuts; evicts = !evicts }
  end

(* ---- Serialization (for JSONL findings and replay) -------------------------- *)

let hex s =
  String.concat ""
    (List.init (String.length s) (fun i -> Printf.sprintf "%02x" (Char.code s.[i])))

let unhex h =
  if String.length h mod 2 <> 0 then invalid_arg ("unhex: " ^ h);
  String.init (String.length h / 2) (fun i ->
      match int_of_string_opt ("0x" ^ String.sub h (2 * i) 2) with
      | Some n -> Char.chr n
      | None -> invalid_arg ("unhex: " ^ h))

let op_to_string = function
  | Truncate { flow; at } -> Printf.sprintf "trunc(%d,%d)" flow at
  | Splice { flow; off; len; ins } ->
      Printf.sprintf "splice(%d,%d,%d,%s)" flow off len (hex ins)
  | Dup { flow; off; len } -> Printf.sprintf "dup(%d,%d,%d)" flow off len
  | Swap { flow; a; alen; b; blen } ->
      Printf.sprintf "swap(%d,%d,%d,%d,%d)" flow a alen b blen
  | Chunk { flow; at } -> Printf.sprintf "chunk(%d,%d)" flow at
  | Evict { flow; chunk } -> Printf.sprintf "evict(%d,%d)" flow chunk

(** Inverse of {!op_to_string}; raises [Invalid_argument] on junk. *)
let op_of_string str =
  let fail () = invalid_arg ("op_of_string: " ^ str) in
  match String.index_opt str '(' with
  | None -> fail ()
  | Some p when String.length str < p + 2 || str.[String.length str - 1] <> ')' ->
      fail ()
  | Some p -> (
      let name = String.sub str 0 p in
      let body = String.sub str (p + 1) (String.length str - p - 2) in
      let parts = String.split_on_char ',' body in
      let num l = match int_of_string_opt l with Some n -> n | None -> fail () in
      match (name, parts) with
      | "trunc", [ f; a ] -> Truncate { flow = num f; at = num a }
      | "splice", [ f; o; l; h ] ->
          Splice { flow = num f; off = num o; len = num l; ins = unhex h }
      | "dup", [ f; o; l ] -> Dup { flow = num f; off = num o; len = num l }
      | "swap", [ f; a; al; b; bl ] ->
          Swap { flow = num f; a = num a; alen = num al; b = num b; blen = num bl }
      | "chunk", [ f; a ] -> Chunk { flow = num f; at = num a }
      | "evict", [ f; ch ] -> Evict { flow = num f; chunk = num ch }
      | _ -> fail ())

(* ---- Grammar-aware op generation -------------------------------------------- *)

(* Values a length field gets replaced with: zero, off-by-one in both
   directions, double, a forced multi-byte encoding, and far past the
   end of any real stream. *)
let lie_value rng old =
  match Rng.int rng 6 with
  | 0 -> 0
  | 1 -> old + 1
  | 2 -> max 0 (old - 1)
  | 3 -> (old * 2) + 1
  | 4 -> 0x3fff
  | _ -> 200_000

let gen_op rng ~(proto : Shape.proto) (c : case) : op =
  let nf = Array.length c.streams in
  let flow = if nf = 0 then 0 else Rng.int rng nf in
  let s = if nf = 0 then "" else c.streams.(flow) in
  let sl = String.length s in
  if sl = 0 then Chunk { flow; at = 0 }
  else begin
    let regions, lens = Shape.scan proto s in
    let regions = Array.of_list regions in
    let lens = Array.of_list lens in
    let pick_region () =
      if Array.length regions = 0 then { Shape.r_off = 0; r_len = sl }
      else Rng.choose rng regions
    in
    let roll = Rng.int rng 100 in
    if roll < 18 then begin
      (* Truncation at (or just inside) a structural boundary. *)
      let r = pick_region () in
      let at =
        match Rng.int rng 3 with
        | 0 -> r.Shape.r_off
        | 1 -> r.Shape.r_off + (r.Shape.r_len / 2)
        | _ -> r.Shape.r_off + max 0 (r.Shape.r_len - 1)
      in
      Truncate { flow; at }
    end
    else if roll < 38 && Array.length lens > 0 then begin
      (* Length-field lie: splice in a re-encoded wrong value. *)
      let l = Rng.choose rng lens in
      let v = lie_value rng l.Shape.l_val in
      let ins =
        match l.Shape.l_kind with
        | Shape.K_varint -> Shape.encode_varint v
        | Shape.K_u16 ->
            let v = v land 0xffff in
            Printf.sprintf "%c%c" (Char.chr (v lsr 8)) (Char.chr (v land 0xff))
      in
      Splice { flow; off = l.Shape.l_off; len = l.Shape.l_len; ins }
    end
    else if roll < 52 then
      let r = pick_region () in
      Dup { flow; off = r.Shape.r_off; len = r.Shape.r_len }
    else if roll < 66 && Array.length regions >= 2 then begin
      (* Reorder two messages. *)
      let i = Rng.int rng (Array.length regions - 1) in
      let j = i + 1 + Rng.int rng (Array.length regions - i - 1) in
      let a = regions.(i) and b = regions.(j) in
      Swap
        { flow; a = a.Shape.r_off; alen = a.Shape.r_len; b = b.Shape.r_off;
          blen = b.Shape.r_len }
    end
    else if roll < 84 then begin
      (* Split the feed mid-message or at a boundary. *)
      let at =
        if Rng.bool rng then 1 + Rng.int rng (max 1 (sl - 1))
        else
          let r = pick_region () in
          max 1 (r.Shape.r_off + Rng.int rng (max 1 r.Shape.r_len))
      in
      Chunk { flow; at }
    end
    else if roll < 92 && proto <> Shape.Dns then
      Evict { flow; chunk = Rng.int rng 4 }
    else begin
      let off = Rng.int rng sl in
      Splice { flow; off; len = 1; ins = String.make 1 (Char.chr (Rng.int rng 256)) }
    end
  end

(** Mutate [base] with 1..max_ops ops, each generated against the
    already-mutated stream so offsets stay grammar-aware. *)
let mutate rng ~proto (base : case) ~max_ops : case * op list =
  let n = 1 + Rng.int rng max_ops in
  let rec go case acc k =
    if k = 0 then (case, List.rev acc)
    else
      let op = gen_op rng ~proto case in
      go (apply case op) (op :: acc) (k - 1)
  in
  go base [] n
