(** Seed corpora, derived from the {!Hilti_traces} generators.

    TCP protocols go through the real wire path: generated pcap records
    are decoded and reassembled per connection direction, and the
    segment boundaries the generator produced become the case's initial
    feed-chunk boundaries.  DNS cases are the raw query/reply datagrams
    of generated transactions.

    Corpora are built from fixed generator seeds (independent of the
    fuzzer's own seed), so a finding's corpus index replays across
    runs. *)

open Hilti_net
module T = Hilti_traces

type conn = {
  buf : Buffer.t array;  (* 0 = client->server, 1 = server->client *)
  cuts : int list ref array;
  rsm : Reassembly.t array;
}

(** Reassemble per-connection byte streams for flows touching
    [server_port]; one case per connection, flow 0 = client->server. *)
let tcp_cases ~server_port (records : Pcap.record list) : Mutate.case list =
  let conns = Hashtbl.create 64 in
  let order = ref [] in
  let get_conn key =
    match Hashtbl.find_opt conns key with
    | Some c -> c
    | None ->
        let buf = [| Buffer.create 256; Buffer.create 256 |] in
        let cuts = [| ref []; ref [] |] in
        let mk i =
          Reassembly.create (fun data ->
              let b = buf.(i) in
              if Buffer.length b > 0 then cuts.(i) := Buffer.length b :: !(cuts.(i));
              Buffer.add_string b data)
        in
        let c = { buf; cuts; rsm = [| mk 0; mk 1 |] } in
        Hashtbl.add conns key c;
        order := c :: !order;
        c
  in
  List.iter
    (fun (r : Pcap.record) ->
      match Packet.decode_opt ~ts:r.Pcap.ts r.Pcap.data with
      | Some pkt -> (
          match pkt.Packet.transport with
          | Packet.TCP (h, payload) ->
              let sp = h.Tcp.src_port and dp = h.Tcp.dst_port in
              if sp = server_port || dp = server_port then begin
                let src = Packet.src pkt and dst = Packet.dst pkt in
                let c2s = dp = server_port in
                let key =
                  if c2s then (src, sp, dst, dp) else (dst, dp, src, sp)
                in
                let dir = if c2s then 0 else 1 in
                let conn = get_conn key in
                Reassembly.segment conn.rsm.(dir) ~seq:h.Tcp.seq
                  ~syn:(h.Tcp.flags land Tcp.flag_syn <> 0)
                  ~fin:(h.Tcp.flags land Tcp.flag_fin <> 0)
                  payload
              end
          | _ -> ())
      | None -> ())
    records;
  List.rev_map
    (fun c ->
      {
        Mutate.streams = [| Buffer.contents c.buf.(0); Buffer.contents c.buf.(1) |];
        cuts = [| List.rev !(c.cuts.(0)); List.rev !(c.cuts.(1)) |];
        evicts = [];
      })
    !order

(* Small MSS so multi-segment messages (and thus mid-message chunk
   boundaries) appear even in the small fuzzing corpus. *)
let mqtt_corpus sessions =
  let cfg =
    { T.Mqtt_gen.default with sessions; seed = 0x60d1; mss = 700;
      reorder_prob = 0.05; crud_prob = 0.05 }
  in
  tcp_cases ~server_port:1883 (T.Mqtt_gen.generate cfg).T.Mqtt_gen.records

let ftp_corpus sessions =
  let cfg =
    { T.Ftp_gen.default with sessions; seed = 0x77e3; mss = 700;
      reorder_prob = 0.05; crud_prob = 0.05 }
  in
  tcp_cases ~server_port:21 (T.Ftp_gen.generate cfg).T.Ftp_gen.records

(* One case per transaction: flow 0 = query datagram, flow 1 = reply. *)
let dns_corpus transactions =
  let rng = T.Rng.create 0x11d5 in
  let ts = Hilti_types.Time_ns.of_secs 1_700_000_000 in
  List.init transactions (fun _ ->
      let tx = T.Dns_gen.gen_transaction rng T.Dns_gen.default ~ts in
      Mutate.of_streams
        [| T.Dns_gen.encode_message tx.T.Dns_gen.query;
           T.Dns_gen.encode_message tx.T.Dns_gen.reply |])

let mqtt_lazy = lazy (mqtt_corpus 10)
let ftp_lazy = lazy (ftp_corpus 8)
let dns_lazy = lazy (dns_corpus 48)

(** The (memoized) corpus for a protocol.  Sizes are fixed so corpus
    indices recorded in findings stay valid across runs. *)
let for_proto (p : Shape.proto) : Mutate.case list =
  match p with
  | Shape.Mqtt -> Lazy.force mqtt_lazy
  | Shape.Ftp -> Lazy.force ftp_lazy
  | Shape.Dns -> Lazy.force dns_lazy
  | Shape.Generic -> []
