(** mini-bro — the Bro-like host application (§4, Fig. 8(c)).

    Reads a pcap trace (or generates a synthetic one), runs the bundled
    HTTP/DNS/scan analysis scripts over it with either the standard or the
    BinPAC++ protocol parsers, with the scripts either interpreted or
    compiled to HILTI ([compile_scripts=T]), and writes Bro-style logs. *)

let usage =
  {|mini-bro — Bro-like traffic analysis over HILTI

usage: mini-bro [options]

input (one required):
  -r FILE          read packets from a pcap trace
  -g http[:N]      generate a synthetic HTTP trace (N sessions, default 200)
  -g dns[:N]       generate a synthetic DNS trace (N transactions, default 2000)
  -g mqtt[:N]      generate a synthetic MQTT trace (N sessions, default 120)
  -g ftp[:N]       generate a synthetic FTP trace (N sessions, default 80)

analysis:
  -proto http|dns|mqtt|ftp
                   which analyzer to run (default: guessed from -g, else http)
  -parsers std|pac standard hand-written or BinPAC++/HILTI parsers (default std)
  -compile-scripts run scripts compiled to HILTI instead of interpreted
  -w DIR           write http.log/files.log/dns.log into DIR (default .)
  -j N             shard DNS decode+parse over N OCaml domains (flow-sharded
                   data plane; both directions of a connection stay on one
                   shard); logs are byte-identical to the serial pipeline's
  -timeout MS      evict connections idle for MS milliseconds of trace time,
                   bounding the session table by the live flows
  -quiet           do not write logs, just report counts
  -profile FILE    dump profiler measurements to FILE (§3.3)

observability:
  -metrics PATH       enable metrics and write PATH.metrics.jsonl (one
                      snapshot per line) plus PATH.prom (Prometheus text);
                      a final snapshot is always taken at end of run
  -stats-interval MS  also snapshot every MS milliseconds of trace time
  -trace-spans        record trace spans; written to PATH.trace.json
                      (Chrome trace-event format; requires -metrics)

differential fuzzing (no input required):
  -fuzz dns|mqtt|ftp|all
                   run the grammar-aware differential fuzzer: mutated
                   generator streams through hand-written vs BinPAC++
                   parsers and checked vs specialized VM dispatch; writes
                   DIR/fuzz.jsonl and exits nonzero on any finding
  -seed N          fuzzer RNG seed (default 1); replays are deterministic
  -budget N        mutated executions per oracle pair (default 150)

Input is streamed: packets are pulled from the trace (or synthesized) one
at a time, so memory is bounded by the live connections, not trace size.

Fig. 7(d) mode — positional files instead of -proto:
  mini-bro -r ssh.trace ssh.evt ssh.bro
  mini-bro -g ssh:20 examples/data/ssh.evt examples/data/ssh.bro
An .evt file configures a BinPAC++ analyzer (its grammar is loaded
relative to the .evt); .bro files supply the event handlers.
|}

let read_file f =
  let ic = open_in_bin f in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  let input = ref None in
  let proto = ref None in
  let parsers = ref "std" in
  let compiled = ref false in
  let outdir = ref "." in
  let quiet = ref false in
  let profile = ref None in
  let jobs = ref None in
  let idle_timeout = ref None in
  let metrics = ref None in
  let stats_interval = ref None in
  let trace_spans = ref false in
  let evt_files = ref [] in
  let bro_files = ref [] in
  let fuzz = ref None in
  let fuzz_seed = ref 1 in
  let fuzz_budget = ref Hilti_fuzz.Engine.default.Hilti_fuzz.Engine.execs in
  let rec parse_args = function
    | [] -> ()
    | "-r" :: f :: rest -> input := Some (`Pcap f); parse_args rest
    | "-fuzz" :: p :: rest -> fuzz := Some p; parse_args rest
    | "-seed" :: n :: rest ->
        (match int_of_string_opt n with
        | Some s -> fuzz_seed := s
        | None ->
            Printf.eprintf "-seed expects an integer, got %s\n" n;
            exit 1);
        parse_args rest
    | "-budget" :: n :: rest ->
        (match int_of_string_opt n with
        | Some b when b >= 0 -> fuzz_budget := b
        | _ ->
            Printf.eprintf "-budget expects a non-negative count, got %s\n" n;
            exit 1);
        parse_args rest
    | "-g" :: spec :: rest -> input := Some (`Gen spec); parse_args rest
    | "-proto" :: p :: rest -> proto := Some p; parse_args rest
    | "-parsers" :: p :: rest -> parsers := p; parse_args rest
    | "-compile-scripts" :: rest -> compiled := true; parse_args rest
    | "-w" :: d :: rest -> outdir := d; parse_args rest
    | "-quiet" :: rest -> quiet := true; parse_args rest
    | "-profile" :: f :: rest -> profile := Some f; parse_args rest
    | "-metrics" :: p :: rest -> metrics := Some p; parse_args rest
    | "-trace-spans" :: rest -> trace_spans := true; parse_args rest
    | "-stats-interval" :: ms :: rest ->
        (match int_of_string_opt ms with
        | Some m when m >= 1 ->
            stats_interval := Some (Hilti_types.Interval_ns.of_msecs m)
        | _ ->
            Printf.eprintf
              "-stats-interval expects a positive millisecond count, got %s\n" ms;
            exit 1);
        parse_args rest
    | "-j" :: n :: rest ->
        (match int_of_string_opt n with
        | Some j when j >= 1 -> jobs := Some j
        | _ ->
            Printf.eprintf "-j expects a positive domain count, got %s\n" n;
            exit 1);
        parse_args rest
    | "-timeout" :: ms :: rest ->
        (match int_of_string_opt ms with
        | Some m when m >= 1 ->
            idle_timeout := Some (Hilti_types.Interval_ns.of_msecs m)
        | _ ->
            Printf.eprintf "-timeout expects a positive millisecond count, got %s\n" ms;
            exit 1);
        parse_args rest
    | ("-h" | "--help") :: _ -> print_string usage; exit 0
    | f :: rest when Filename.check_suffix f ".evt" ->
        evt_files := f :: !evt_files;
        parse_args rest
    | f :: rest when Filename.check_suffix f ".bro" ->
        bro_files := f :: !bro_files;
        parse_args rest
    | a :: _ ->
        Printf.eprintf "unknown argument %s\n%s" a usage;
        exit 1
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  (* Observability: -metrics enables recording and owns the export files;
     -stats-interval adds periodic trace-time snapshots on top. *)
  let exporter =
    match !metrics with
    | Some prefix ->
        Hilti_obs.Metrics.set_enabled true;
        if !trace_spans then Hilti_obs.Trace.set_enabled true;
        Some (Hilti_obs.Export.create ~prefix)
    | None ->
        if !stats_interval <> None || !trace_spans then
          Printf.eprintf "note: -stats-interval/-trace-spans require -metrics\n";
        None
  in
  let stats_export =
    match (exporter, !stats_interval) with
    | Some ex, Some ival -> Some (ival, fun () -> Hilti_obs.Export.scrape ex)
    | _ -> None
  in
  let finish_metrics () =
    match (exporter, !metrics) with
    | Some ex, Some prefix ->
        Hilti_obs.Export.close ex;
        Printf.printf "wrote metrics to %s.metrics.jsonl / %s.prom\n" prefix prefix
    | _ -> ()
  in
  (* Differential fuzz mode: no packet input — the fuzzer builds its own
     corpus from the generators. *)
  (match !fuzz with
  | Some which ->
      let protos =
        match which with
        | "all" -> [ Hilti_fuzz.Shape.Mqtt; Hilti_fuzz.Shape.Ftp; Hilti_fuzz.Shape.Dns ]
        | p -> (
            match Hilti_fuzz.Shape.proto_of_string p with
            | Some pr when pr <> Hilti_fuzz.Shape.Generic -> [ pr ]
            | _ ->
                Printf.eprintf "bad -fuzz spec %s (dns|mqtt|ftp|all)\n" p;
                exit 1)
      in
      let cfg =
        { Hilti_fuzz.Engine.default with
          Hilti_fuzz.Engine.seed = !fuzz_seed;
          execs = !fuzz_budget }
      in
      let pairs =
        List.concat_map
          (Hilti_fuzz.Oracle.pairs_for ~step_budget:cfg.Hilti_fuzz.Engine.step_budget)
          protos
      in
      let t0 = Unix.gettimeofday () in
      let report = Hilti_fuzz.Engine.run ~pairs cfg in
      let dt = Unix.gettimeofday () -. t0 in
      Printf.printf "%s in %.1f s (%.0f execs/s, seed %d)\n"
        (Hilti_fuzz.Engine.summary report)
        dt
        (float_of_int report.Hilti_fuzz.Engine.r_execs /. max 1e-9 dt)
        !fuzz_seed;
      List.iter
        (fun f ->
          Printf.printf "  [%s] %s %s: %s\n" f.Hilti_fuzz.Engine.f_class
            f.Hilti_fuzz.Engine.f_pair f.Hilti_fuzz.Engine.f_fingerprint
            f.Hilti_fuzz.Engine.f_detail)
        report.Hilti_fuzz.Engine.r_findings;
      if not !quiet then begin
        let path = Filename.concat !outdir "fuzz.jsonl" in
        let oc = open_out path in
        output_string oc (Hilti_fuzz.Engine.report_to_jsonl report);
        close_out oc;
        Printf.printf "wrote %s (%d findings)\n" path
          (List.length report.Hilti_fuzz.Engine.r_findings)
      end;
      finish_metrics ();
      exit (if report.Hilti_fuzz.Engine.r_findings = [] then 0 else 1)
  | None -> ());
  (* A re-creatable streaming source: packets are pulled on demand (from
     the trace file or synthesized), never materialised as a list.  The
     thunk lets the Fig. 7(d) mode replay the input once per .evt file. *)
  let make_src, default_proto =
    match !input with
    | Some (`Pcap f) ->
        ((fun () -> Hilti_net.Pcap.iosrc_of_file f), "http")
    | Some (`Gen spec) -> (
        match String.split_on_char ':' spec with
        | "http" :: rest ->
            let sessions =
              match rest with [ n ] -> int_of_string n | _ -> 200
            in
            ( (fun () ->
                Hilti_traces.Http_gen.iosrc
                  { Hilti_traces.Http_gen.default with sessions }),
              "http" )
        | "dns" :: rest ->
            let transactions =
              match rest with [ n ] -> int_of_string n | _ -> 2000
            in
            ( (fun () ->
                Hilti_traces.Dns_gen.iosrc
                  { Hilti_traces.Dns_gen.default with transactions }),
              "dns" )
        | "mqtt" :: rest ->
            let sessions =
              match rest with [ n ] -> int_of_string n | _ -> 120
            in
            ( (fun () ->
                Hilti_traces.Mqtt_gen.iosrc
                  { Hilti_traces.Mqtt_gen.default with sessions }),
              "mqtt" )
        | "ftp" :: rest ->
            let sessions = match rest with [ n ] -> int_of_string n | _ -> 80 in
            ( (fun () ->
                Hilti_traces.Ftp_gen.iosrc
                  { Hilti_traces.Ftp_gen.default with sessions }),
              "ftp" )
        | "ssh" :: rest ->
            let sessions = match rest with [ n ] -> int_of_string n | _ -> 20 in
            ( (fun () ->
                Hilti_traces.Ssh_gen.iosrc
                  { Hilti_traces.Ssh_gen.default with sessions }),
              "evt" )
        | _ ->
            Printf.eprintf "bad -g spec %s\n" spec;
            exit 1)
    | None ->
        print_string usage;
        exit 1
  in
  (* Fig. 7(d) mode: .evt + .bro files drive a BinPAC++ analyzer. *)
  if !evt_files <> [] then begin
    let script =
      Mini_bro.Bro_parse.parse
        (String.concat "\n" (List.map read_file (List.rev !bro_files)))
    in
    let engine_mode =
      if !compiled then Mini_bro.Bro_engine.Compiled
      else Mini_bro.Bro_engine.Interpreted
    in
    let engine = Mini_bro.Bro_engine.load engine_mode script in
    let sink = Hilti_analyzers.Events.engine_sink engine in
    List.iter
      (fun evt_file ->
        let cfg = Hilti_analyzers.Evt.parse (read_file evt_file) in
        let grammar_path =
          Filename.concat (Filename.dirname evt_file) cfg.Hilti_analyzers.Evt.grammar_file
        in
        let grammar = Binpacxx.Grammar_parser.parse (read_file grammar_path) in
        let loaded = Hilti_analyzers.Evt.load cfg grammar in
        let stats = Hilti_analyzers.Driver.run_evt_src ~loaded ~sink (make_src ()) in
        Printf.eprintf "%s: %d packets, %d connections, %d events\n" evt_file
          stats.Hilti_analyzers.Driver.packets
          stats.Hilti_analyzers.Driver.connections
          stats.Hilti_analyzers.Driver.events)
      (List.rev !evt_files);
    finish_metrics ();
    exit 0
  end;
  let proto = Option.value ~default:default_proto !proto in
  let scripts = Mini_bro.Bro_scripts.parse_all () in
  let engine_mode =
    if !compiled then Mini_bro.Bro_engine.Compiled
    else Mini_bro.Bro_engine.Interpreted
  in
  let open Hilti_analyzers in
  let proto_kind =
    match (proto, !parsers) with
    | "http", "std" -> `Http Driver.Http_std
    | "http", "pac" -> `Http (Driver.Http_pac (Http_pac.load ()))
    | "dns", "std" -> `Dns Driver.Dns_std
    | "dns", "pac" -> `Dns (Driver.Dns_pac (Dns_pac.load ()))
    | "mqtt", "std" -> `Mqtt Driver.Mqtt_std
    | "mqtt", "pac" -> `Mqtt (Driver.Mqtt_pac (Mqtt_pac.load ()))
    | "ftp", "std" -> `Ftp Driver.Ftp_std
    | "ftp", "pac" -> `Ftp (Driver.Ftp_pac (Ftp_pac.load ()))
    | p, k ->
        Printf.eprintf "bad -proto %s / -parsers %s\n" p k;
        exit 1
  in
  (match (!jobs, proto) with
  | Some _, "http" ->
      Printf.eprintf "note: -j applies to the DNS parse stage; http runs serially\n"
  | _ -> ());
  let result =
    Driver.evaluate_src ~proto:proto_kind ~engine_mode ~scripts
      ~logging:(not !quiet) ?jobs:!jobs ?idle_timeout:!idle_timeout ?stats_export
      (make_src ())
  in
  finish_metrics ();
  Printf.printf
    "processed %d packets, %d connections, %d events (parsers=%s scripts=%s%s)\n"
    result.Driver.stats.Driver.packets result.Driver.stats.Driver.connections
    result.Driver.stats.Driver.events !parsers
    (if !compiled then "compiled-to-HILTI" else "interpreted")
    (match !jobs with
    | Some j when proto = "dns" -> Printf.sprintf " shards=%d" j
    | _ -> "");
  (match !idle_timeout with
  | Some _ ->
      Printf.printf "evicted %d idle connections\n"
        result.Driver.stats.Driver.evicted
  | None -> ());
  Printf.printf "time: total %.1f ms (parse %.1f, script %.1f, glue %.1f)\n"
    (Int64.to_float result.Driver.total_ns /. 1e6)
    (Int64.to_float result.Driver.parse_ns /. 1e6)
    (Int64.to_float result.Driver.script_ns /. 1e6)
    (Int64.to_float result.Driver.glue_ns /. 1e6);
  (match !profile with
  | Some path ->
      Hilti_rt.Profiler.write_report path;
      Printf.printf "wrote profiler report to %s\n" path
  | None -> ());
  if not !quiet then begin
    let streams =
      match proto with
      | "http" -> [ "http"; "files" ]
      | "mqtt" -> [ "mqtt" ]
      | "ftp" -> [ "ftp" ]
      | _ -> [ "dns" ]
    in
    List.iter
      (fun s ->
        let path = Filename.concat !outdir (s ^ ".log") in
        Mini_bro.Bro_log.write_file result.Driver.logger s path;
        Printf.printf "wrote %s (%d lines)\n" path
          (Mini_bro.Bro_log.row_count result.Driver.logger s))
      streams
  end
