(** hiltic — the HILTI compiler driver (§3.1, Fig. 3).

    Compiles textual HILTI (.hlt) modules and, like the prototype's
    [hiltic -j], can JIT-execute the result directly by calling the
    module's [run] entry point. *)

let usage =
  {|hiltic — HILTI compiler (JIT mode)

usage: hiltic [options] <file.hlt> [more.hlt ...]

options:
  -p         print the parsed IR and exit
  -d         print the lowered bytecode (disassembly) and exit
  -c         validate and compile only (no execution)
  -e NAME    entry point to call (default: <module>::run)
  -O0        disable the HILTI-level optimization pipeline
  -v         print compilation statistics
  -analyze   lint the modules instead of executing: run validation, the
             dataflow analyses, the bytecode verifier and (with
             -shard-entry) the static shard-race detector; print one
             tab-separated finding per line (severity rule func where
             location message) and exit 1 if any finding has error
             severity
  -analyze-bundled
             like -analyze, but over the compiled IR of the bundled
             BinPAC++ grammars (ssh/http/dns) and Bro scripts
             (track/http/dns/scan/fib); takes no input files.  Grammar
             units designate their exported parse_* functions as sharded
             entry points, so the race detector runs over them
  -shard-entry NAME
             (with -analyze) declare NAME a sharded dispatch entry point
             and run the race rules (race/global-write,
             race/timer-cross-shard, race/hostapi-shared) over its
             call-graph closure; repeatable
  -format FMT
             lint output format: tsv (default) or json (stable key order)
  -classifier FILE
             compile the firewall rules in FILE (one "src dst action" per
             line) into a hash-consed decision diagram and print its
             statistics; combine with -d to disassemble the HILTI
             bytecode the diagram lowers to
|}

(* ---- Lint mode (-analyze / -analyze-bundled) --------------------------- *)

(* Lint one named unit (a list of modules compiled together) and print its
   findings.  Returns the number of error-severity findings. *)
let lint_unit ~warnings ~format ?(shard_entries = []) name modules =
  let findings = Hilti_analysis.Lint.analyze ~shard_entries modules in
  let findings =
    if warnings then findings else Hilti_analysis.Lint.errors findings
  in
  (match format with
  | `Tsv ->
      List.iter
        (fun f ->
          Printf.printf "%s\t%s\n" name (Hilti_analysis.Lint.to_line f))
        findings
  | `Json ->
      (* One JSON object per unit, unit name first, stable key order. *)
      Printf.printf "{\"unit\":\"%s\",\"report\":%s}\n"
        (Hilti_analysis.Lint.json_escape name)
        (String.trim (Hilti_analysis.Lint.report_to_json findings)));
  List.length (Hilti_analysis.Lint.errors findings)

(* Grammar units run under the sharded data plane with one dispatcher call
   per packet into their exported parse functions — exactly the entry
   points the race detector needs designated. *)
let parse_entries modules =
  List.concat_map
    (fun (m : Module_ir.t) ->
      List.filter_map
        (fun (f : Module_ir.func) ->
          let name = f.Module_ir.fname in
          let is_parse =
            match String.index_opt name ':' with
            | Some i ->
                i + 2 <= String.length name
                && String.length name - (i + 2) >= 6
                && String.sub name (i + 2) 6 = "parse_"
            | None -> false
          in
          if f.Module_ir.exported && is_parse then Some name else None)
        m.Module_ir.funcs)
    modules

(* The units behind -analyze-bundled: every bundled BinPAC++ grammar and
   every bundled Bro script, each compiled to IR exactly as the runtime
   would and linted as its own unit.  [`Parse_entries] marks units whose
   exported parse_* functions are sharded dispatch entry points. *)
let bundled_units () =
  let grammar name parse =
    ( "binpac:" ^ name,
      `Parse_entries,
      fun () -> [ Binpacxx.Codegen.compile (parse ()) ] )
  in
  let bro name src =
    ( "bro:" ^ name,
      `No_entries,
      fun () -> [ Mini_bro.Bro_compile.compile (Mini_bro.Bro_parse.parse src) ] )
  in
  [
    grammar "ssh" Binpacxx.Grammars.parse_ssh;
    grammar "http" Binpacxx.Grammars.parse_http;
    grammar "dns" Binpacxx.Grammars.parse_dns;
    bro "track" Mini_bro.Bro_scripts.track;
    bro "http" Mini_bro.Bro_scripts.http;
    bro "dns" Mini_bro.Bro_scripts.dns;
    bro "scan" Mini_bro.Bro_scripts.scan;
    bro "fib" Mini_bro.Bro_scripts.fib;
  ]

let () =
  let files = ref [] in
  let print_ir = ref false in
  let disasm = ref false in
  let compile_only = ref false in
  let optimize = ref true in
  let verbose = ref false in
  let entry = ref None in
  let analyze = ref false in
  let analyze_bundled = ref false in
  let classifier = ref None in
  let no_warnings = ref false in
  let format = ref `Tsv in
  let shard_entries = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "-p" :: rest -> print_ir := true; parse_args rest
    | "-d" :: rest -> disasm := true; parse_args rest
    | "-c" :: rest -> compile_only := true; parse_args rest
    | "-O0" :: rest -> optimize := false; parse_args rest
    | "-v" :: rest -> verbose := true; parse_args rest
    | "-e" :: name :: rest -> entry := Some name; parse_args rest
    | "-analyze" :: rest -> analyze := true; parse_args rest
    | "-analyze-bundled" :: rest -> analyze_bundled := true; parse_args rest
    | "-classifier" :: file :: rest -> classifier := Some file; parse_args rest
    | "-no-warnings" :: rest -> no_warnings := true; parse_args rest
    | "-format" :: "json" :: rest -> format := `Json; parse_args rest
    | "-format" :: "tsv" :: rest -> format := `Tsv; parse_args rest
    | "-format" :: other :: _ ->
        Printf.eprintf "unknown -format '%s' (expected tsv or json)\n" other;
        exit 1
    | "-shard-entry" :: name :: rest ->
        shard_entries := name :: !shard_entries;
        parse_args rest
    | ("-h" | "--help") :: _ -> print_string usage; exit 0
    | f :: rest -> files := f :: !files; parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let files = List.rev !files in
  if !analyze_bundled then begin
    let nerrors =
      List.fold_left
        (fun acc (name, entries, build) ->
          match build () with
          | modules ->
              let shard_entries =
                match entries with
                | `Parse_entries -> parse_entries modules
                | `No_entries -> []
              in
              acc
              + lint_unit ~warnings:(not !no_warnings) ~format:!format
                  ~shard_entries name modules
          | exception exn ->
              Printf.printf "%s\terror\tbuild\t-\t-\t-\t%s\n" name
                (Printexc.to_string exn);
              acc + 1)
        0 (bundled_units ())
    in
    exit (if nerrors > 0 then 1 else 0)
  end;
  let read_file f =
    let ic = open_in_bin f in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (match !classifier with
  | Some f -> (
      try
        let rules = Hilti_firewall.Fw_rules.parse_rules (read_file f) in
        let kept = Hilti_firewall.Fw_rules.normalize rules in
        let shadowed = List.length rules - List.length kept in
        let mgr = Hilti_classifier.Fdd.create_mgr () in
        let fdd = Hilti_classifier.Compile.of_fw mgr kept in
        Printf.printf "rules:      %d (%d shadowed, dropped)\n"
          (List.length rules) shadowed;
        Printf.printf "fdd nodes:  %d (depth %d of %d, %d allocated in manager)\n"
          (Hilti_classifier.Fdd.size fdd)
          (Hilti_classifier.Fdd.depth fdd)
          Hilti_classifier.Fdd.nvars
          (Hilti_classifier.Fdd.live_nodes mgr);
        Printf.printf "hash-cons:  %d hits / %d misses\n"
          (Hilti_classifier.Fdd.cache_hits mgr)
          (Hilti_classifier.Fdd.cache_misses mgr);
        if !disasm then begin
          let m = Hilti_classifier.Lower_fdd.compile_module fdd in
          let api = Hilti_vm.Host_api.compile ~optimize:false [ m ] in
          print_string
            (Hilti_vm.Bytecode.disassemble api.Hilti_vm.Host_api.ctx.Hilti_vm.Vm.program)
        end;
        exit 0
      with
      | Hilti_firewall.Fw_rules.Parse_error msg ->
          Printf.eprintf "rule parse error: %s\n" msg;
          exit 1
      | Hilti_classifier.Acl.Unsupported msg ->
          Printf.eprintf "unsupported rule: %s\n" msg;
          exit 1)
  | None -> ());
  if files = [] then begin
    print_string usage;
    exit 1
  end;
  try
    let modules =
      List.map (fun f -> Hilti_lang.Parser.parse_module (read_file f)) files
    in
    if !print_ir then begin
      List.iter (fun m -> print_string (Pretty.module_to_string m)) modules;
      exit 0
    end;
    if !analyze then begin
      let name = String.concat "," files in
      let nerrors =
        lint_unit ~warnings:(not !no_warnings) ~format:!format
          ~shard_entries:(List.rev !shard_entries) name modules
      in
      exit (if nerrors > 0 then 1 else 0)
    end;
    let api = Hilti_vm.Host_api.compile ~optimize:!optimize modules in
    if !verbose then begin
      Printf.eprintf "compiled %d module(s), %d bytecode instructions\n"
        (List.length modules)
        (Hilti_vm.Host_api.code_size api);
      match api.Hilti_vm.Host_api.opt_stats with
      | Some stats ->
          Printf.eprintf "optimizations: %s\n" (Hilti_passes.Pipeline.stats_to_string stats)
      | None -> ()
    end;
    if !disasm then begin
      print_string (Hilti_vm.Bytecode.disassemble api.Hilti_vm.Host_api.ctx.Hilti_vm.Vm.program);
      exit 0
    end;
    if not !compile_only then begin
      let entry =
        match !entry with
        | Some e -> e
        | None -> (
            match modules with
            | m :: _ -> m.Module_ir.mname ^ "::run"
            | [] -> assert false)
      in
      ignore (Hilti_vm.Host_api.call api entry [])
    end
  with
  | Hilti_lang.Parser.Parse_error (msg, line) ->
      Printf.eprintf "parse error: %s (line %d)\n" msg line;
      exit 1
  | Hilti_lang.Lexer.Lex_error (msg, line) ->
      Printf.eprintf "lex error: %s (line %d)\n" msg line;
      exit 1
  | Hilti_vm.Host_api.Compile_error errors ->
      List.iter (Printf.eprintf "error: %s\n") errors;
      exit 1
  | Hilti_vm.Value.Hilti_error e ->
      Printf.eprintf "uncaught HILTI exception: %s(%s)\n" e.Hilti_vm.Value.ename
        (Hilti_vm.Value.to_string e.Hilti_vm.Value.earg);
      exit 1
