event ssh_banner(version: string, software: string) {
    print software, version;
}
