(** hilti-build — link HILTI modules into a self-contained program image
    (§3.1).  Where the prototype emits a native executable through LLVM,
    this writes the linked, optimized bytecode image (.hbc) that the VM
    executes; the image can be run directly with [hilti-build -x]. *)

let usage =
  {|hilti-build — link HILTI modules into a program image

usage: hilti-build [options] <file.hlt ...> -o <out.hbc>
       hilti-build -x <image.hbc> [-e ENTRY]

options:
  -o FILE    write the linked program image
  -x FILE    execute a previously built image
  -e NAME    entry point (default <module>::run)
  -O0        disable optimization
|}

let magic = "HILTI-IMAGE-1"

let () =
  let files = ref [] in
  let out = ref None in
  let exec = ref None in
  let entry = ref None in
  let optimize = ref true in
  let rec parse_args = function
    | [] -> ()
    | "-o" :: f :: rest -> out := Some f; parse_args rest
    | "-x" :: f :: rest -> exec := Some f; parse_args rest
    | "-e" :: e :: rest -> entry := Some e; parse_args rest
    | "-O0" :: rest -> optimize := false; parse_args rest
    | ("-h" | "--help") :: _ -> print_string usage; exit 0
    | f :: rest -> files := f :: !files; parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  match !exec with
  | Some image ->
      let ic = open_in_bin image in
      let m = really_input_string ic (String.length magic) in
      if m <> magic then begin
        Printf.eprintf "%s: not a HILTI program image\n" image;
        exit 1
      end;
      let program : Hilti_vm.Bytecode.program = Marshal.from_channel ic in
      close_in ic;
      let ctx = Hilti_vm.Vm.create program in
      Hilti_vm.Vm.register_host ctx "Hilti::print" (fun c args ->
          c.Hilti_vm.Vm.debug_sink
            (String.concat ", " (List.map Hilti_vm.Value.to_string args));
          Hilti_vm.Value.Null);
      let entry =
        match !entry with
        | Some e -> e
        | None -> (
            (* First exported function ending in ::run. *)
            let found = ref None in
            Array.iter
              (fun (f : Hilti_vm.Bytecode.func) ->
                if !found = None && Filename.check_suffix f.Hilti_vm.Bytecode.name "::run" then
                  found := Some f.Hilti_vm.Bytecode.name)
              program.Hilti_vm.Bytecode.funcs;
            match !found with
            | Some e -> e
            | None ->
                Printf.eprintf "no ::run entry point in image\n";
                exit 1)
      in
      (try ignore (Hilti_vm.Vm.call ctx entry [])
       with Hilti_vm.Value.Hilti_error e ->
         Printf.eprintf "uncaught HILTI exception: %s\n" e.Hilti_vm.Value.ename;
         exit 1)
  | None -> (
      let files = List.rev !files in
      if files = [] then begin
        print_string usage;
        exit 1
      end;
      let read_file f =
        let ic = open_in_bin f in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      try
        let modules =
          List.map (fun f -> Hilti_lang.Parser.parse_module (read_file f)) files
        in
        let api = Hilti_vm.Host_api.compile ~optimize:!optimize modules in
        match !out with
        | Some path ->
            let oc = open_out_bin path in
            output_string oc magic;
            Marshal.to_channel oc api.Hilti_vm.Host_api.ctx.Hilti_vm.Vm.program [];
            close_out oc;
            Printf.printf "wrote %s (%d bytecode instructions, %d functions)\n" path
              (Hilti_vm.Host_api.code_size api)
              (Array.length api.Hilti_vm.Host_api.ctx.Hilti_vm.Vm.program.Hilti_vm.Bytecode.funcs)
        | None ->
            Printf.eprintf "missing -o (or -x to execute)\n";
            exit 1
      with
      | Hilti_lang.Parser.Parse_error (msg, line) ->
          Printf.eprintf "parse error: %s (line %d)\n" msg line;
          exit 1
      | Hilti_vm.Host_api.Compile_error errors ->
          List.iter (Printf.eprintf "error: %s\n") errors;
          exit 1)
