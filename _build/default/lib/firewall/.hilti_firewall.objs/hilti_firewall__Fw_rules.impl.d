lib/firewall/fw_rules.ml: Addr Hashtbl Hilti_types Interval_ns List Network Printf String Time_ns
