lib/firewall/fw_hilti.ml: Builder Constant Fw_rules Hilti_types Hilti_vm Host_api Htype Instr List Module_ir Value
