lib/binpac/runtime.ml: Ast Codegen Deque Hilti_rt Hilti_types Hilti_vm Host_api Printexc Value
