lib/binpac/codegen.ml: Ast Builder Constant Htype Instr List Module_ir Option Printf String
