lib/binpac/ast.ml: List
