lib/binpac/grammar_parser.ml: Ast Buffer Int64 List Option Printf String
