lib/binpac/grammars.ml: Grammar_parser
