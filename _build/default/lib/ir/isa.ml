(** The HILTI instruction set (§3.2, Table 1).

    Each entry declares a mnemonic, its group, its operand arity range, and
    whether it produces a result.  The paper counts "about 200 instructions
    (counting instructions overloaded by their argument types only once)";
    this table is the authoritative inventory — the validator checks
    programs against it, the lowering pass consumes exactly this set, and a
    test asserts the per-group coverage of Table 1. *)

type target_spec = No_target | Needs_target | Optional_target

type entry = {
  mnemonic : string;
  group : string;
  min_ops : int;
  max_ops : int;
  target : target_spec;
  doc : string;
}

let e ?(tgt = No_target) mnemonic min_ops max_ops doc =
  { mnemonic; group = Instr.group_of_mnemonic mnemonic; min_ops; max_ops; target = tgt; doc }

let r mnemonic min_ops max_ops doc = e ~tgt:Needs_target mnemonic min_ops max_ops doc

let entries : entry list =
  [
    (* ---- Flow control (no joint prefix, Table 1) ------------------------- *)
    e "jump" 1 1 "unconditional branch to a block label";
    e "if.else" 3 3 "branch to op2 if op1 is true, else to op3";
    e ~tgt:Optional_target "call" 1 2 "call a function with a tuple of arguments";
    e "return.void" 0 0 "return from a void function";
    e "return.result" 1 1 "return a value from a function";
    e "yield" 0 0 "suspend the current fiber until resumed";
    e "throw" 1 1 "raise an exception value";
    e "try.push" 2 2 "install handler block op1 with exception target local op2";
    e "try.pop" 0 0 "uninstall the innermost handler";
    r "select" 3 3 "op1 ? op2 : op3";
    r "equal" 2 2 "generic equality on any comparable type";
    r "assign" 1 1 "copy a value into the target";
    r "new" 1 3 "allocate a heap instance of the given type";
    e "nop" 0 0 "no operation";
    e "switch" 3 99 "multiway branch: value, default label, (const, label)...";

    (* ---- Booleans -------------------------------------------------------- *)
    r "bool.and" 2 2 "logical and";
    r "bool.or" 2 2 "logical or";
    r "bool.not" 1 1 "logical negation";

    (* ---- Integers (int<N>) ----------------------------------------------- *)
    r "int.add" 2 2 "wrapping addition";
    r "int.sub" 2 2 "wrapping subtraction";
    r "int.mul" 2 2 "wrapping multiplication";
    r "int.div" 2 2 "division; throws Hilti::DivisionByZero";
    r "int.mod" 2 2 "remainder; throws Hilti::DivisionByZero";
    r "int.eq" 2 2 "equality";
    r "int.lt" 2 2 "signed less-than";
    r "int.gt" 2 2 "signed greater-than";
    r "int.leq" 2 2 "signed less-or-equal";
    r "int.geq" 2 2 "signed greater-or-equal";
    r "int.shl" 2 2 "shift left";
    r "int.shr" 2 2 "logical shift right";
    r "int.and" 2 2 "bitwise and";
    r "int.or" 2 2 "bitwise or";
    r "int.xor" 2 2 "bitwise xor";
    r "int.neg" 1 1 "negation";
    r "int.abs" 1 1 "absolute value";
    r "int.min" 2 2 "minimum";
    r "int.max" 2 2 "maximum";
    r "int.to_double" 1 1 "conversion to double";
    r "int.to_time" 1 1 "seconds to absolute time";
    r "int.to_interval" 1 1 "seconds to interval";
    r "int.to_string" 1 2 "decimal (or given base) rendering";

    (* ---- Doubles ---------------------------------------------------------- *)
    r "double.add" 2 2 "addition";
    r "double.sub" 2 2 "subtraction";
    r "double.mul" 2 2 "multiplication";
    r "double.div" 2 2 "division; throws Hilti::DivisionByZero";
    r "double.eq" 2 2 "equality";
    r "double.lt" 2 2 "less-than";
    r "double.gt" 2 2 "greater-than";
    r "double.leq" 2 2 "less-or-equal";
    r "double.geq" 2 2 "greater-or-equal";
    r "double.neg" 1 1 "negation";
    r "double.abs" 1 1 "absolute value";
    r "double.to_int" 1 1 "truncation to int";

    (* ---- Strings (Unicode text) ------------------------------------------- *)
    r "string.concat" 2 2 "concatenation";
    r "string.length" 1 1 "length in characters";
    r "string.eq" 2 2 "equality";
    r "string.lt" 2 2 "lexicographic less-than";
    r "string.find" 2 2 "index of first occurrence or -1";
    r "string.substr" 3 3 "substring (start, length)";
    r "string.to_bytes" 1 1 "encode to raw bytes";
    r "string.to_upper" 1 1 "uppercase";
    r "string.to_lower" 1 1 "lowercase";
    r "string.starts_with" 2 2 "prefix test";
    r "string.contains" 2 2 "substring test";
    r "string.split1" 2 2 "split at first separator into a 2-tuple";
    r "string.format" 1 9 "printf-style formatting with %s %d %f ...";

    (* ---- Raw bytes ---------------------------------------------------------- *)
    r "bytes.new" 0 0 "fresh empty bytes object";
    r "bytes.length" 1 1 "number of retained bytes";
    e "bytes.append" 2 2 "append raw data (bytes or string)";
    e "bytes.freeze" 1 1 "declare the stream complete";
    r "bytes.is_frozen" 1 1 "has the stream been frozen?";
    e "bytes.trim" 2 2 "drop data before the given iterator";
    r "bytes.sub" 2 2 "copy the range between two iterators";
    r "bytes.find" 2 3 "iterator to first occurrence of a needle (tuple: found?, iter)";
    r "bytes.match_prefix" 2 2 "does data at iterator start with the given literal?";
    r "bytes.can_read" 2 2 "are N bytes available at the iterator right now?";
    r "bytes.read" 2 2 "read exactly N bytes, blocking; returns (data, iter')";
    r "bytes.to_string" 1 1 "decode as text (latin-1)";
    r "bytes.to_int" 1 2 "parse ASCII digits (optional base); throws ValueError";
    r "bytes.eq" 2 2 "content equality";
    r "bytes.starts_with" 2 2 "prefix test against a literal";
    r "bytes.contains" 2 2 "substring test";
    r "bytes.offset" 2 2 "iterator at the given absolute offset";
    r "bytes.unpack_uint" 3 3 "(iter, width, big_endian?) -> (int, iter')";
    r "bytes.unpack_sint" 3 3 "(iter, width, big_endian?) -> (int, iter')";
    r "bytes.to_upper" 1 1 "ASCII uppercase copy";
    r "bytes.to_lower" 1 1 "ASCII lowercase copy";

    (* ---- Iterators (bytes and containers) ----------------------------------- *)
    r "iter.begin" 1 1 "iterator at the start";
    r "iter.end" 1 1 "iterator at the current end";
    r "iter.incr" 1 1 "advance by one element";
    r "iter.advance" 2 2 "advance by N elements";
    r "iter.deref" 1 1 "element under the iterator; blocks on unfrozen bytes";
    r "iter.eq" 2 2 "same position?";
    r "iter.distance" 2 2 "signed element distance between two iterators";
    r "iter.at_end" 1 1 "sits at the current end?";
    r "iter.is_eod" 1 1 "definite end-of-data (frozen bytes only)?";
    r "iter.is_frozen" 1 1 "has the underlying bytes object been frozen?";

    (* ---- IP addresses --------------------------------------------------------- *)
    r "addr.family" 1 1 "AddrFamily::IPv4 or ::IPv6";
    r "addr.eq" 2 2 "equality";
    r "addr.mask" 2 2 "mask to a prefix length, yielding a net";
    r "addr.to_string" 1 1 "dotted-quad / RFC 5952 rendering";

    (* ---- Ports ------------------------------------------------------------------ *)
    r "port.protocol" 1 1 "Port protocol enum (tcp/udp/icmp)";
    r "port.number" 1 1 "numeric port";
    r "port.eq" 2 2 "equality";

    (* ---- CIDR masks ---------------------------------------------------------------- *)
    r "net.contains" 2 2 "does the network contain the address?";
    r "net.prefix" 1 1 "network address";
    r "net.length" 1 1 "prefix length";
    r "net.eq" 2 2 "equality";

    (* ---- Times ------------------------------------------------------------------------ *)
    r "time.add" 2 2 "time + interval";
    r "time.sub" 2 2 "time - time = interval";
    r "time.eq" 2 2 "equality";
    r "time.lt" 2 2 "before?";
    r "time.gt" 2 2 "after?";
    r "time.leq" 2 2 "before-or-equal?";
    r "time.geq" 2 2 "after-or-equal?";
    r "time.wall" 0 0 "wall clock now";
    r "time.to_double" 1 1 "seconds since epoch as double";
    r "time.nsecs" 1 1 "nanoseconds since epoch";

    (* ---- Time intervals ------------------------------------------------------------------ *)
    r "interval.add" 2 2 "sum of intervals";
    r "interval.sub" 2 2 "difference of intervals";
    r "interval.mul" 2 2 "interval scaled by an int";
    r "interval.eq" 2 2 "equality";
    r "interval.lt" 2 2 "less-than";
    r "interval.to_double" 1 1 "seconds as double";
    r "interval.nsecs" 1 1 "nanoseconds";

    (* ---- Tuples ------------------------------------------------------------------------------ *)
    r "tuple.get" 2 2 "N-th element (constant index)";
    r "tuple.length" 1 1 "arity";
    r "tuple.eq" 2 2 "element-wise equality";

    (* ---- Structs ------------------------------------------------------------------------------- *)
    r "struct.get" 2 2 "field value; throws Hilti::UnsetField when unset";
    r "struct.get_default" 3 3 "field value or the given default";
    e "struct.set" 3 3 "set a field";
    e "struct.unset" 2 2 "clear a field";
    r "struct.is_set" 2 2 "has the field been assigned?";

    (* ---- Enumerations ----------------------------------------------------------------------------- *)
    r "enum.from_int" 2 2 "enum member for an integer (Undef if unknown)";
    r "enum.value" 1 1 "integer value of a member";
    r "enum.eq" 2 2 "equality";

    (* ---- Bitsets ---------------------------------------------------------------------------------- *)
    r "bitset.set" 2 2 "union with the given labels";
    r "bitset.clear" 2 2 "remove the given labels";
    r "bitset.has" 2 2 "are all given labels present?";
    r "bitset.eq" 2 2 "equality";

    (* ---- Lists ------------------------------------------------------------------------------------- *)
    e "list.append" 2 2 "append at the back";
    e "list.push_front" 2 2 "insert at the front";
    r "list.pop_front" 1 1 "remove and return the front; throws Underflow";
    r "list.front" 1 1 "peek at the front; throws Underflow";
    r "list.back" 1 1 "peek at the back; throws Underflow";
    r "list.size" 1 1 "number of elements";
    e "list.clear" 1 1 "remove all elements";
    e "list.timeout" 3 3 "set expiration (strategy, interval)";

    (* ---- Vectors ------------------------------------------------------------------------------------ *)
    e "vector.push_back" 2 2 "append";
    r "vector.get" 2 2 "element at index; throws Hilti::IndexError";
    e "vector.set" 3 3 "replace element at index; throws Hilti::IndexError";
    r "vector.size" 1 1 "number of elements";
    e "vector.reserve" 2 2 "pre-allocate capacity";
    e "vector.clear" 1 1 "remove all elements";
    r "vector.pop_back" 1 1 "remove and return the last element";

    (* ---- Hashsets ------------------------------------------------------------------------------------- *)
    e "set.insert" 2 2 "add an element";
    r "set.exists" 2 2 "membership (refreshes access-based expiration)";
    e "set.remove" 2 2 "remove if present";
    r "set.size" 1 1 "number of elements";
    e "set.clear" 1 1 "remove all elements";
    e "set.timeout" 3 3 "set expiration (strategy, interval) against the thread's timer manager";

    (* ---- Hashmaps --------------------------------------------------------------------------------------- *)
    e "map.insert" 3 3 "insert or update a key";
    r "map.get" 2 2 "value for key; throws Hilti::IndexError when absent";
    r "map.get_default" 3 3 "value for key or the given default";
    r "map.exists" 2 2 "key present?";
    e "map.remove" 2 2 "remove a key if present";
    r "map.size" 1 1 "number of entries";
    e "map.clear" 1 1 "remove all entries";
    e "map.default" 2 2 "value returned (and inserted) for missing keys";
    e "map.timeout" 3 3 "set expiration (strategy, interval)";

    (* ---- Channels ----------------------------------------------------------------------------------------- *)
    e "channel.write" 2 2 "blocking write (suspends the fiber while full)";
    r "channel.read" 1 1 "blocking read (suspends the fiber while empty)";
    r "channel.try_read" 1 1 "(ok?, value) without blocking";
    r "channel.size" 1 1 "queued elements";

    (* ---- Packet classification -------------------------------------------------------------------------------- *)
    e "classifier.add" 3 4 "add a rule (field tuple, value, optional priority)";
    e "classifier.compile" 1 1 "freeze the rule set and build the matcher";
    r "classifier.get" 2 2 "match a key tuple; throws Hilti::IndexError on miss";
    r "classifier.matches" 2 2 "does any rule match?";

    (* ---- Regular expressions ------------------------------------------------------------------------------------ *)
    r "regexp.compile" 1 1 "compile a pattern (or list of patterns)";
    r "regexp.find" 2 3 "(match id or -1) searching from an iterator";
    r "regexp.match_token" 2 2 "longest anchored match: (id or -1, iter after); incremental";
    r "regexp.span" 3 3 "(id, begin, end) of first match in a range";
    r "regexp.groups" 1 1 "number of alternative patterns compiled in";

    (* ---- Packet dissection ---------------------------------------------------------------------------------------- *)
    r "overlay.get" 3 3 "(overlay type, field, bytes): unpack one header field";
    r "overlay.size" 1 1 "static byte size of an overlay type";

    (* ---- Timers ---------------------------------------------------------------------------------------------------- *)
    r "timer.new" 1 1 "timer firing the given callable";
    e "timer.cancel" 1 1 "cancel a pending timer";

    (* ---- Timer management -------------------------------------------------------------------------------------------- *)
    r "timer_mgr.new" 0 0 "independent timer manager";
    e "timer_mgr.schedule" 3 3 "(mgr, time, timer|callable): schedule";
    e "timer_mgr.advance" 2 2 "move a manager's clock, firing due timers";
    e "timer_mgr.advance_global" 1 1 "advance the thread's global notion of time";
    r "timer_mgr.current" 1 1 "a manager's current time";
    e "timer_mgr.expire_all" 1 1 "fire everything pending";

    (* ---- Virtual threads ------------------------------------------------------------------------------------------------ *)
    e "thread.schedule" 2 3 "(function, args tuple, thread id): async invoke; args are deep-copied";
    r "thread.id" 0 0 "id of the executing virtual thread";

    (* ---- Callbacks (hooks) ------------------------------------------------------------------------------------------------- *)
    e "hook.run" 2 2 "(hook name, args tuple): run all bodies by priority";
    e "hook.stop" 0 0 "stop running further bodies of the current hook";

    (* ---- Closures ----------------------------------------------------------------------------------------------------------- *)
    r "callable.bind" 2 2 "(function, args tuple): capture a call for later";
    e ~tgt:Optional_target "callable.call" 1 1 "invoke a callable now";

    (* ---- Exceptions --------------------------------------------------------------------------------------------------------- *)
    r "exception.new" 1 2 "(name, optional argument): construct an exception value";
    r "exception.data" 1 1 "argument carried by an exception";
    r "exception.name" 1 1 "exception type name";

    (* ---- File i/o ------------------------------------------------------------------------------------------------------------ *)
    r "file.open" 1 2 "open a file for writing (path, optional mode)";
    e "file.write" 2 2 "write a string or bytes";
    e "file.close" 1 1 "close";

    (* ---- Packet i/o ----------------------------------------------------------------------------------------------------------- *)
    r "iosrc.read" 1 1 "(time, bytes) of the next packet; throws Hilti::Exhausted at EOF";
    e "iosrc.close" 1 1 "release the source";

    (* ---- Profiling ------------------------------------------------------------------------------------------------------------- *)
    e "profiler.start" 1 1 "begin measuring the named block";
    e "profiler.stop" 1 1 "stop measuring and accumulate";
    e "profiler.snapshot" 1 1 "record current totals for the named block";

    (* ---- Debug support --------------------------------------------------------------------------------------------------------- *)
    e "debug.msg" 1 2 "emit a debug-stream message";
    e "debug.assert" 1 2 "abort with diagnostics if the condition is false";
    e "debug.internal_error" 1 1 "signal an internal invariant violation";
  ]

let by_mnemonic : (string, entry) Hashtbl.t =
  let t = Hashtbl.create 256 in
  List.iter
    (fun entry ->
      if Hashtbl.mem t entry.mnemonic then
        invalid_arg ("Isa: duplicate mnemonic " ^ entry.mnemonic);
      Hashtbl.add t entry.mnemonic entry)
    entries;
  t

let find mnemonic = Hashtbl.find_opt by_mnemonic mnemonic

let count = List.length entries

let groups () =
  List.sort_uniq compare (List.map (fun entry -> entry.group) entries)

(** Table 1's functionality/mnemonic pairs, asserted by the test suite. *)
let table1 =
  [ ("Bitsets", "bitset"); ("Booleans", "bool"); ("CIDR masks", "net");
    ("Callbacks", "hook"); ("Closures", "callable"); ("Channels", "channel");
    ("Debug support", "debug"); ("Doubles", "double"); ("Enumerations", "enum");
    ("Exceptions", "exception"); ("File i/o", "file"); ("Flow control", "flow");
    ("Hashmaps", "map"); ("Hashsets", "set"); ("IP addresses", "addr");
    ("Integers", "int"); ("Lists", "list"); ("Packet i/o", "iosrc");
    ("Packet classification", "classifier"); ("Packet dissection", "overlay");
    ("Ports", "port"); ("Profiling", "profiler"); ("Raw data", "bytes");
    ("Regular expressions", "regexp"); ("Strings", "string");
    ("Structs", "struct"); ("Time intervals", "interval");
    ("Timer management", "timer_mgr"); ("Timers", "timer"); ("Times", "time");
    ("Tuples", "tuple"); ("Vectors/arrays", "vector");
    ("Virtual threads", "thread") ]
