(** The HILTI type algebra (§3.2 "Rich Data Types").

    Types are structural except for the named kinds (structs, enums,
    bitsets, overlays, exceptions), which reference declarations held by the
    enclosing module and are resolved by name at validation/lowering time.
    [Any] appears only in instruction signatures, standing for operands that
    are polymorphic in the instruction table. *)

type t =
  | Void
  | Any                     (** signature wildcard, not a value type *)
  | Bool
  | Int of int              (** [int<N>], 1 <= N <= 64 *)
  | Double
  | String                  (** Unicode text *)
  | Bytes                   (** raw bytes *)
  | Addr
  | Port
  | Net
  | Time
  | Interval
  | Tuple of t list
  | Bitset of string        (** named bitset declaration *)
  | Enum of string          (** named enum declaration *)
  | Struct of string        (** named struct declaration *)
  | Overlay of string       (** named overlay declaration *)
  | Exception
  | Ref of t                (** reference to a heap-allocated instance *)
  | List of t
  | Vector of t
  | Set of t
  | Map of t * t
  | Iter of t               (** iterator over bytes or a container *)
  | Channel of t
  | Classifier of t * t     (** rule struct type, result type *)
  | Regexp
  | Match_state             (** incremental regexp matching state *)
  | Timer
  | Timer_mgr
  | File
  | Iosrc
  | Callable of t list * t  (** bound function: argument types, result *)
  | Caddr                   (** address of a host (C-level) function *)

let rec to_string = function
  | Void -> "void"
  | Any -> "any"
  | Bool -> "bool"
  | Int n -> Printf.sprintf "int<%d>" n
  | Double -> "double"
  | String -> "string"
  | Bytes -> "bytes"
  | Addr -> "addr"
  | Port -> "port"
  | Net -> "net"
  | Time -> "time"
  | Interval -> "interval"
  | Tuple ts -> "tuple<" ^ String.concat ", " (List.map to_string ts) ^ ">"
  | Bitset n -> n
  | Enum n -> n
  | Struct n -> n
  | Overlay n -> n
  | Exception -> "exception"
  | Ref t -> "ref<" ^ to_string t ^ ">"
  | List t -> "list<" ^ to_string t ^ ">"
  | Vector t -> "vector<" ^ to_string t ^ ">"
  | Set t -> "set<" ^ to_string t ^ ">"
  | Map (k, v) -> "map<" ^ to_string k ^ ", " ^ to_string v ^ ">"
  | Iter t -> "iterator<" ^ to_string t ^ ">"
  | Channel t -> "channel<" ^ to_string t ^ ">"
  | Classifier (r, v) -> "classifier<" ^ to_string r ^ ", " ^ to_string v ^ ">"
  | Regexp -> "regexp"
  | Match_state -> "match_state"
  | Timer -> "timer"
  | Timer_mgr -> "timer_mgr"
  | File -> "file"
  | Iosrc -> "iosrc"
  | Callable (args, r) ->
      "callable<" ^ String.concat ", " (List.map to_string (r :: args)) ^ ">"
  | Caddr -> "caddr"

(** Strip one level of reference: many instructions accept either a
    container or a reference to one. *)
let deref = function Ref t -> t | t -> t

let is_ref = function Ref _ -> true | _ -> false

(** Structural equality with [Any] acting as a wildcard on either side
    (used when checking operands against instruction signatures). *)
let rec compatible a b =
  match (a, b) with
  | Any, _ | _, Any -> true
  | Ref x, Ref y -> compatible x y
  | Tuple xs, Tuple ys ->
      List.length xs = List.length ys && List.for_all2 compatible xs ys
  | List x, List y | Vector x, Vector y | Set x, Set y | Iter x, Iter y
  | Channel x, Channel y ->
      compatible x y
  | Map (k1, v1), Map (k2, v2) -> compatible k1 k2 && compatible v1 v2
  | Classifier (r1, v1), Classifier (r2, v2) -> compatible r1 r2 && compatible v1 v2
  | Callable (a1, r1), Callable (a2, r2) ->
      List.length a1 = List.length a2
      && List.for_all2 compatible a1 a2 && compatible r1 r2
  | Int _, Int _ -> true  (* widths coerce; ops mask to the target width *)
  | x, y -> x = y

let equal (a : t) (b : t) = a = b

(** Is this a value type (copied on assignment) as opposed to a heap
    type always manipulated through references? *)
let rec is_value_type = function
  | Void | Any -> false
  | Bool | Int _ | Double | String | Addr | Port | Net | Time | Interval
  | Bitset _ | Enum _ | Caddr ->
      true
  | Tuple ts -> List.for_all is_value_type ts
  | Iter _ -> true
  | Bytes | Struct _ | Overlay _ | Exception | Ref _ | List _ | Vector _
  | Set _ | Map _ | Channel _ | Classifier _ | Regexp | Match_state | Timer
  | Timer_mgr | File | Iosrc | Callable _ ->
      false

(** Valid key type for sets/maps/classifier fields: hashable values. *)
let rec is_hashable = function
  | Bool | Int _ | Double | String | Bytes | Addr | Port | Net | Time
  | Interval | Bitset _ | Enum _ ->
      true
  | Tuple ts -> List.for_all is_hashable ts
  | _ -> false
