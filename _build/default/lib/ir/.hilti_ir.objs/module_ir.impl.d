lib/ir/module_ir.ml: Hilti_types Htype Instr List
