lib/ir/instr.ml: Constant Htype List Printf String
