lib/ir/isa.ml: Hashtbl Instr List
