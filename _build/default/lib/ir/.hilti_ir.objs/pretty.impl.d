lib/ir/pretty.ml: Buffer Hilti_types Htype Instr List Module_ir Printf String
