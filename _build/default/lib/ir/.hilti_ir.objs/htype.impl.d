lib/ir/htype.ml: List Printf String
