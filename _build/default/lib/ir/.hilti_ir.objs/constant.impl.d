lib/ir/constant.ml: Addr Hilti_types Htype Int64 Interval_ns List Network Port Printf String Time_ns
