lib/ir/validate.ml: Constant Hashtbl Htype Instr Isa List Module_ir Option Printf String
