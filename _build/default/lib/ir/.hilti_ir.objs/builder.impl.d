lib/ir/builder.ml: Constant Instr Int64 List Module_ir Printf
