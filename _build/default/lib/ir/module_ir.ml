(** HILTI modules: the compilation unit (§3.1).

    A module carries named type declarations, thread-local globals,
    functions (with bodies as basic blocks), hook implementations, and
    declarations of external functions provided by other units or by the
    host application ("C functions"). *)

type unpack_fmt =
  | U_uint of int * Hilti_types.Hbytes.order  (** width in bytes *)
  | U_sint of int * Hilti_types.Hbytes.order
  | U_ipv4  (** 4 bytes, network order, to addr *)
  | U_bytes of int  (** fixed-length raw bytes *)

type overlay_field = {
  of_name : string;
  of_type : Htype.t;
  of_offset : int;       (** byte offset within the overlay *)
  of_fmt : unpack_fmt;
  of_bits : (int * int) option;  (** optional bit range within the unpacked int *)
}

type type_decl =
  | Struct_decl of (string * Htype.t) list
  | Enum_decl of (string * int) list
  | Bitset_decl of (string * int) list
  | Overlay_decl of overlay_field list
  | Exception_decl of Htype.t  (** argument type *)

type block = { label : string; mutable instrs : Instr.t list }

type calling_convention =
  | Cc_hilti   (** ordinary HILTI function *)
  | Cc_c       (** external, provided by the host application *)
  | Cc_hook    (** hook body; multiple bodies per name may exist *)

type func = {
  fname : string;
  params : (string * Htype.t) list;
  result : Htype.t;
  mutable locals : (string * Htype.t) list;
  mutable blocks : block list;  (** first block is the entry *)
  cc : calling_convention;
  hook_priority : int;
  exported : bool;
}

type t = {
  mname : string;
  mutable imports : string list;
  mutable types : (string * type_decl) list;
  mutable globals : (string * Htype.t) list;  (** thread-local globals *)
  mutable funcs : func list;
  mutable hooks : func list;  (** hook bodies; grouped by fname at link *)
}

let create mname = { mname; imports = []; types = []; globals = []; funcs = []; hooks = [] }

let add_import m i = if not (List.mem i m.imports) then m.imports <- m.imports @ [ i ]
let add_type m name decl = m.types <- m.types @ [ (name, decl) ]
let add_global m name ty = m.globals <- m.globals @ [ (name, ty) ]
let add_func m f = m.funcs <- m.funcs @ [ f ]
let add_hook m f = m.hooks <- m.hooks @ [ f ]

let find_type m name = List.assoc_opt name m.types

let find_func m name = List.find_opt (fun f -> f.fname = name) m.funcs

let find_global m name = List.assoc_opt name m.globals

(** All instructions of a function in block order. *)
let func_instrs f = List.concat_map (fun b -> b.instrs) f.blocks

let find_block f label = List.find_opt (fun b -> b.label = label) f.blocks
