(** IR-level constants, as they appear as instruction operands. *)

open Hilti_types

type t =
  | Bool of bool
  | Int of int64 * int          (** value, width *)
  | Double of float
  | String of string
  | Bytes of string
  | Addr of Addr.t
  | Port of Port.t
  | Net of Network.t
  | Time of Time_ns.t
  | Interval of Interval_ns.t
  | Enum_label of string * string   (** enum type name, label *)
  | Bitset_labels of string * string list  (** bitset type name, labels *)
  | Tuple of t list
  | Null                       (** the null reference *)
  | Unset                      (** placeholder in tuple constants, '*' *)

let rec typ : t -> Htype.t = function
  | Bool _ -> Htype.Bool
  | Int (_, w) -> Htype.Int w
  | Double _ -> Htype.Double
  | String _ -> Htype.String
  | Bytes _ -> Htype.Bytes
  | Addr _ -> Htype.Addr
  | Port _ -> Htype.Port
  | Net _ -> Htype.Net
  | Time _ -> Htype.Time
  | Interval _ -> Htype.Interval
  | Enum_label (n, _) -> Htype.Enum n
  | Bitset_labels (n, _) -> Htype.Bitset n
  | Tuple cs -> Htype.Tuple (List.map typ cs)
  | Null -> Htype.Ref Htype.Any
  | Unset -> Htype.Any

let rec to_string = function
  | Bool b -> if b then "True" else "False"
  | Int (v, _) -> Int64.to_string v
  | Double d -> Printf.sprintf "%g" d
  | String s -> Printf.sprintf "%S" s
  | Bytes s -> Printf.sprintf "b%S" s
  | Addr a -> Addr.to_string a
  | Port p -> Port.to_string p
  | Net n -> Network.to_string n
  | Time t -> "time(" ^ Time_ns.to_string t ^ ")"
  | Interval i -> "interval(" ^ Interval_ns.to_string i ^ ")"
  | Enum_label (t, l) -> t ^ "::" ^ l
  | Bitset_labels (t, ls) -> t ^ "::" ^ String.concat "|" ls
  | Tuple cs -> "(" ^ String.concat ", " (List.map to_string cs) ^ ")"
  | Null -> "Null"
  | Unset -> "*"
