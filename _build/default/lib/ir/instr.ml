(** IR instructions: [<target> = <mnemonic> <op1> <op2> <op3>] (§3.2).

    Operands reference constants, local variables (including parameters),
    module globals (thread-local by HILTI semantics), block labels,
    functions, struct/overlay/enum member names, or inline tuples. *)

type operand =
  | Const of Constant.t
  | Local of string
  | Global of string
  | Label of string            (** a block label, for control flow *)
  | Fname of string            (** a function, for call/schedule/closures *)
  | Member of string           (** struct field / overlay field / map key name *)
  | Type_op of Htype.t         (** a type operand, e.g. for [new] *)
  | Tuple_op of operand list   (** inline tuple construction *)

type t = {
  target : string option;      (** local receiving the result *)
  mnemonic : string;           (** e.g. ["list.append"] *)
  operands : operand list;
  location : string;           (** source location or provenance, for errors *)
}

let make ?target ?(location = "<builtin>") mnemonic operands =
  { target; mnemonic; operands; location }

let rec operand_to_string = function
  | Const c -> Constant.to_string c
  | Local n -> n
  | Global n -> "@" ^ n
  | Label l -> "@" ^ l
  | Fname f -> f
  | Member m -> "$" ^ m
  | Type_op t -> Htype.to_string t
  | Tuple_op ops -> "(" ^ String.concat ", " (List.map operand_to_string ops) ^ ")"

let to_string i =
  let ops = String.concat " " (List.map operand_to_string i.operands) in
  match i.target with
  | Some t -> Printf.sprintf "%s = %s %s" t i.mnemonic ops
  | None -> Printf.sprintf "%s %s" i.mnemonic ops

(** Flow-control mnemonics that contain a dot but do not name a type
    group. *)
let flow_mnemonics =
  [ "if.else"; "return.void"; "return.result"; "try.push"; "try.pop" ]

(** The mnemonic's group prefix ("list" for "list.append"); flow-control
    instructions belong to the "flow" group. *)
let group_of_mnemonic m =
  if List.mem m flow_mnemonics then "flow"
  else
    match String.index_opt m '.' with
    | Some dot -> String.sub m 0 dot
    | None -> "flow"

let group i = group_of_mnemonic i.mnemonic
