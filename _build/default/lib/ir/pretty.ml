(** Round-trippable textual rendering of IR modules — the `.hlt` form that
    [hiltic] accepts back as input. *)

open Module_ir

let unpack_fmt_to_string = function
  | U_uint (w, Hilti_types.Hbytes.Big) -> Printf.sprintf "UInt%dBig" (8 * w)
  | U_uint (w, Hilti_types.Hbytes.Little) -> Printf.sprintf "UInt%dLittle" (8 * w)
  | U_sint (w, Hilti_types.Hbytes.Big) -> Printf.sprintf "Int%dBig" (8 * w)
  | U_sint (w, Hilti_types.Hbytes.Little) -> Printf.sprintf "Int%dLittle" (8 * w)
  | U_ipv4 -> "IPv4InNetworkOrder"
  | U_bytes n -> Printf.sprintf "Bytes%d" n

let overlay_field_to_string f =
  let bits =
    match f.of_bits with
    | Some (lo, hi) -> Printf.sprintf " (%d, %d)" lo hi
    | None -> ""
  in
  Printf.sprintf "    %s: %s at %d unpack %s%s" f.of_name
    (Htype.to_string f.of_type) f.of_offset (unpack_fmt_to_string f.of_fmt) bits

let type_decl_to_string name = function
  | Struct_decl fields ->
      Printf.sprintf "type %s = struct {\n%s\n}" name
        (String.concat ",\n"
           (List.map
              (fun (fn, ft) -> Printf.sprintf "    %s %s" (Htype.to_string ft) fn)
              fields))
  | Enum_decl labels ->
      Printf.sprintf "type %s = enum { %s }" name
        (String.concat ", "
           (List.map (fun (l, v) -> Printf.sprintf "%s = %d" l v) labels))
  | Bitset_decl labels ->
      Printf.sprintf "type %s = bitset { %s }" name
        (String.concat ", "
           (List.map (fun (l, v) -> Printf.sprintf "%s = %d" l v) labels))
  | Overlay_decl fields ->
      Printf.sprintf "type %s = overlay {\n%s\n}" name
        (String.concat ",\n" (List.map overlay_field_to_string fields))
  | Exception_decl ty ->
      Printf.sprintf "type %s = exception<%s>" name (Htype.to_string ty)

let params_to_string params =
  String.concat ", "
    (List.map (fun (n, t) -> Printf.sprintf "%s %s" (Htype.to_string t) n) params)

let func_to_string (f : func) =
  let buf = Buffer.create 256 in
  let keyword =
    match f.cc with Cc_hook -> "hook " | Cc_c -> "declare " | Cc_hilti -> ""
  in
  Buffer.add_string buf
    (Printf.sprintf "%s%s %s(%s)" keyword
       (Htype.to_string f.result) f.fname (params_to_string f.params));
  if f.cc = Cc_c then Buffer.add_string buf "  # provided by host\n"
  else begin
    Buffer.add_string buf " {\n";
    List.iter
      (fun (n, t) ->
        Buffer.add_string buf (Printf.sprintf "    local %s %s\n" (Htype.to_string t) n))
      f.locals;
    List.iter
      (fun (b : block) ->
        if b.label <> "entry" then
          Buffer.add_string buf (Printf.sprintf "%s:\n" b.label);
        List.iter
          (fun i -> Buffer.add_string buf ("    " ^ Instr.to_string i ^ "\n"))
          b.instrs)
      f.blocks;
    Buffer.add_string buf "}\n"
  end;
  Buffer.contents buf

let module_to_string (m : t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "module %s\n\n" m.mname);
  List.iter (fun i -> Buffer.add_string buf (Printf.sprintf "import %s\n" i)) m.imports;
  List.iter
    (fun (n, d) -> Buffer.add_string buf (type_decl_to_string n d ^ "\n\n"))
    m.types;
  List.iter
    (fun (n, ty) ->
      Buffer.add_string buf
        (Printf.sprintf "global %s %s\n" (Htype.to_string ty) n))
    m.globals;
  Buffer.add_char buf '\n';
  List.iter (fun f -> Buffer.add_string buf (func_to_string f ^ "\n")) m.funcs;
  List.iter (fun f -> Buffer.add_string buf (func_to_string f ^ "\n")) m.hooks;
  Buffer.contents buf
