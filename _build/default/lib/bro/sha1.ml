(** SHA-1 (RFC 3174), used by the file-analysis script for files.log body
    hashes, matching Bro's files.log [sha1] column. *)

let rotl32 x n = Int32.logor (Int32.shift_left x n) (Int32.shift_right_logical x (32 - n))

let digest (msg : string) : string =
  let h0 = ref 0x67452301l
  and h1 = ref 0xEFCDAB89l
  and h2 = ref 0x98BADCFEl
  and h3 = ref 0x10325476l
  and h4 = ref 0xC3D2E1F0l in
  let len = String.length msg in
  (* Padding: 0x80, zeros, 64-bit big-endian bit length. *)
  let total = ((len + 8) / 64 + 1) * 64 in
  let buf = Bytes.make total '\000' in
  Bytes.blit_string msg 0 buf 0 len;
  Bytes.set buf len '\x80';
  let bitlen = Int64.of_int (len * 8) in
  for i = 0 to 7 do
    Bytes.set buf (total - 1 - i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bitlen (8 * i)) 0xffL)))
  done;
  let w = Array.make 80 0l in
  let nblocks = total / 64 in
  for block = 0 to nblocks - 1 do
    let base = block * 64 in
    for t = 0 to 15 do
      let b i = Int32.of_int (Char.code (Bytes.get buf (base + (4 * t) + i))) in
      w.(t) <-
        Int32.logor
          (Int32.shift_left (b 0) 24)
          (Int32.logor
             (Int32.shift_left (b 1) 16)
             (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))
    done;
    for t = 16 to 79 do
      w.(t) <-
        rotl32 (Int32.logxor (Int32.logxor w.(t - 3) w.(t - 8)) (Int32.logxor w.(t - 14) w.(t - 16))) 1
    done;
    let a = ref !h0 and b = ref !h1 and c = ref !h2 and d = ref !h3 and e = ref !h4 in
    for t = 0 to 79 do
      let f, k =
        if t < 20 then
          (Int32.logor (Int32.logand !b !c) (Int32.logand (Int32.lognot !b) !d), 0x5A827999l)
        else if t < 40 then (Int32.logxor !b (Int32.logxor !c !d), 0x6ED9EBA1l)
        else if t < 60 then
          ( Int32.logor
              (Int32.logand !b !c)
              (Int32.logor (Int32.logand !b !d) (Int32.logand !c !d)),
            0x8F1BBCDCl )
        else (Int32.logxor !b (Int32.logxor !c !d), 0xCA62C1D6l)
      in
      let temp =
        Int32.add (Int32.add (Int32.add (Int32.add (rotl32 !a 5) f) !e) k) w.(t)
      in
      e := !d;
      d := !c;
      c := rotl32 !b 30;
      b := !a;
      a := temp
    done;
    h0 := Int32.add !h0 !a;
    h1 := Int32.add !h1 !b;
    h2 := Int32.add !h2 !c;
    h3 := Int32.add !h3 !d;
    h4 := Int32.add !h4 !e
  done;
  Printf.sprintf "%08lx%08lx%08lx%08lx%08lx" !h0 !h1 !h2 !h3 !h4
