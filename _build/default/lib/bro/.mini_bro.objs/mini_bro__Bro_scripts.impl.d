lib/bro/bro_scripts.ml: Bro_log Bro_parse
