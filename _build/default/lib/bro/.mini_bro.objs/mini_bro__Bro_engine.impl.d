lib/bro/bro_engine.ml: Array Bro_ast Bro_compile Bro_interp Bro_log Bro_val Buffer Hilti_rt Hilti_types Hilti_vm Int64 List Option Printf Queue Sha1 String
