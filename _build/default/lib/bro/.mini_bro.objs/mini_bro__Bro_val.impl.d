lib/bro/bro_val.ml: Addr Array Hashtbl Hbytes Hilti_rt Hilti_types Hilti_vm Int64 Interval_ns List Network Port Printf String Time_ns
