lib/bro/bro_parse.ml: Bro_ast Buffer Int64 List Printf String
