lib/bro/bro_ast.ml: List String
