lib/bro/bro_compile.ml: Bro_ast Builder Constant Hashtbl Hilti_types Htype Instr List Module_ir Option Printf String Validate
