lib/bro/sha1.ml: Array Bytes Char Int32 Int64 Printf String
