lib/bro/bro_log.ml: Fun Hashtbl List String
