lib/bro/bro_interp.ml: Bro_ast Bro_log Bro_val Buffer Float Hashtbl Hilti_rt Hilti_types Hilti_vm Int64 List Option Printf Queue Sha1 String
