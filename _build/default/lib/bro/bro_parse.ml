(** Lexer and parser for the Mini-Bro scripting language. *)

open Bro_ast

exception Parse_error of string * int

(* ---- Lexer -------------------------------------------------------------- *)

type tok =
  | ID of string        (* possibly namespaced, e.g. Log::write *)
  | COUNT of int64
  | DOUBLE of float
  | STR of string
  | PATTERN of string
  | IPV4 of string
  | PUNCT of string
  | TEOF

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push t = toks := (t, !line) :: !toks in
  let is_idc c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  in
  let pattern_ok () =
    (* '/' begins a pattern after '=', '(', ',', '==', '!=', 'in'. *)
    match !toks with
    | (PUNCT ("=" | "(" | "," | "==" | "!="), _) :: _ -> true
    | (ID "in", _) :: _ -> true
    | [] -> true
    | _ -> false
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin incr line; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then while !i < n && src.[!i] <> '\n' do incr i done
    else if c = '"' then begin
      incr i;
      let buf = Buffer.create 16 in
      let fin = ref false in
      while not !fin do
        if !i >= n then raise (Parse_error ("unterminated string", !line));
        (match src.[!i] with
        | '"' -> fin := true
        | '\\' when !i + 1 < n ->
            incr i;
            (match src.[!i] with
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | ch -> Buffer.add_char buf ch)
        | ch -> Buffer.add_char buf ch);
        incr i
      done;
      push (STR (Buffer.contents buf))
    end
    else if c = '/' && pattern_ok () then begin
      incr i;
      let buf = Buffer.create 16 in
      let fin = ref false in
      while not !fin do
        if !i >= n then raise (Parse_error ("unterminated pattern", !line));
        (match src.[!i] with
        | '/' -> fin := true
        | '\\' when !i + 1 < n && src.[!i + 1] = '/' ->
            Buffer.add_char buf '/';
            incr i
        | ch -> Buffer.add_char buf ch);
        incr i
      done;
      push (PATTERN (Buffer.contents buf))
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do incr i done;
      let dots = ref 0 in
      let rec more () =
        if !i + 1 < n && src.[!i] = '.' && src.[!i + 1] >= '0' && src.[!i + 1] <= '9'
        then begin
          incr dots;
          incr i;
          while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do incr i done;
          more ()
        end
      in
      more ();
      let text = String.sub src start (!i - start) in
      (match !dots with
      | 0 -> push (COUNT (Int64.of_string text))
      | 1 -> push (DOUBLE (float_of_string text))
      | 3 -> push (IPV4 text)
      | _ -> raise (Parse_error ("bad number " ^ text, !line)))
    end
    else if is_idc c && not (c >= '0' && c <= '9') then begin
      let start = !i in
      while
        !i < n
        && (is_idc src.[!i]
           || (src.[!i] = ':' && !i + 1 < n && src.[!i + 1] = ':'))
      do
        if src.[!i] = ':' then i := !i + 2 else incr i
      done;
      push (ID (String.sub src start (!i - start)))
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "==" | "!=" | "<=" | ">=" | "&&" | "||" ->
          push (PUNCT two);
          i := !i + 2
      | _ ->
          push (PUNCT (String.make 1 c));
          incr i
    end
  done;
  List.rev ((TEOF, !line) :: !toks)

(* ---- Parser --------------------------------------------------------------- *)

type p = { mutable toks : (tok * int) list }

let fail p fmt =
  let line = match p.toks with (_, l) :: _ -> l | [] -> 0 in
  Printf.ksprintf (fun m -> raise (Parse_error (m, line))) fmt

let peek p = match p.toks with (t, _) :: _ -> t | [] -> TEOF
let peek2 p = match p.toks with _ :: (t, _) :: _ -> t | _ -> TEOF

let next p =
  match p.toks with
  | (t, _) :: rest ->
      p.toks <- rest;
      t
  | [] -> TEOF

let tok_str = function
  | ID s -> s
  | PUNCT s -> s
  | COUNT c -> Int64.to_string c
  | DOUBLE d -> string_of_float d
  | STR _ -> "<string>"
  | PATTERN _ -> "<pattern>"
  | IPV4 s -> s
  | TEOF -> "<eof>"

let expect p s =
  let t = next p in
  if t <> PUNCT s then fail p "expected '%s', got %s" s (tok_str t)

let ident p = match next p with ID s -> s | t -> fail p "expected identifier, got %s" (tok_str t)

(* Types *)
let rec parse_type p : btype =
  match next p with
  | ID "bool" -> T_bool
  | ID "count" -> T_count
  | ID "int" -> T_int
  | ID "double" -> T_double
  | ID "string" -> T_string
  | ID "addr" -> T_addr
  | ID "port" -> T_port
  | ID "subnet" -> T_subnet
  | ID "time" -> T_time
  | ID "interval" -> T_interval
  | ID "pattern" -> T_pattern
  | ID "any" -> T_any
  | ID "set" ->
      expect p "[";
      let ks = ref [ parse_type p ] in
      while peek p = PUNCT "," do
        ignore (next p);
        ks := parse_type p :: !ks
      done;
      expect p "]";
      T_set (List.rev !ks)
  | ID "table" ->
      expect p "[";
      let ks = ref [ parse_type p ] in
      while peek p = PUNCT "," do
        ignore (next p);
        ks := parse_type p :: !ks
      done;
      expect p "]";
      (match next p with
      | ID "of" -> ()
      | t -> fail p "expected 'of', got %s" (tok_str t));
      T_table (List.rev !ks, parse_type p)
  | ID "vector" -> (
      match next p with
      | ID "of" -> T_vector (parse_type p)
      | t -> fail p "expected 'of', got %s" (tok_str t))
  | ID name -> T_record name
  | t -> fail p "expected type, got %s" (tok_str t)

let time_units =
  [ ("usec", 1e-6); ("usecs", 1e-6); ("msec", 1e-3); ("msecs", 1e-3);
    ("sec", 1.0); ("secs", 1.0); ("min", 60.0); ("mins", 60.0);
    ("hr", 3600.0); ("hrs", 3600.0); ("day", 86400.0); ("days", 86400.0) ]

(* Expressions *)
let rec parse_expr p = parse_or p

and parse_or p =
  let l = parse_and p in
  if peek p = PUNCT "||" then begin
    ignore (next p);
    E_binop ("||", l, parse_or p)
  end
  else l

and parse_and p =
  let l = parse_in p in
  if peek p = PUNCT "&&" then begin
    ignore (next p);
    E_binop ("&&", l, parse_and p)
  end
  else l

and parse_in p =
  let l = parse_cmp p in
  match (peek p, peek2 p) with
  | ID "in", _ ->
      ignore (next p);
      let r = parse_cmp p in
      (match l with E_pattern _ -> E_match (l, r) | _ -> E_in (l, r))
  | PUNCT "!", ID "in" ->
      ignore (next p);
      ignore (next p);
      E_not_in (l, parse_cmp p)
  | _ -> l

and parse_cmp p =
  let l = parse_add p in
  match peek p with
  | PUNCT (("==" | "!=" | "<" | "<=" | ">" | ">=") as op) ->
      ignore (next p);
      E_binop (op, l, parse_add p)
  | _ -> l

and parse_add p =
  let rec go l =
    match peek p with
    | PUNCT (("+" | "-") as op) ->
        ignore (next p);
        go (E_binop (op, l, parse_mul p))
    | _ -> l
  in
  go (parse_mul p)

and parse_mul p =
  let rec go l =
    match peek p with
    | PUNCT (("*" | "/" | "%") as op) ->
        ignore (next p);
        go (E_binop (op, l, parse_postfix p))
    | _ -> l
  in
  go (parse_postfix p)

and parse_postfix p =
  let rec go e =
    match peek p with
    | PUNCT "$" ->
        ignore (next p);
        go (E_field (e, ident p))
    | PUNCT "[" ->
        ignore (next p);
        let keys = ref [ parse_expr p ] in
        while peek p = PUNCT "," do
          ignore (next p);
          keys := parse_expr p :: !keys
        done;
        expect p "]";
        go (E_index (e, List.rev !keys))
    | _ -> e
  in
  go (parse_atom p)

and parse_atom p =
  match next p with
  | COUNT c -> (
      (* interval literal: 300 sec *)
      match peek p with
      | ID u when List.mem_assoc u time_units ->
          ignore (next p);
          E_interval (Int64.to_float c *. List.assoc u time_units)
      | PUNCT "/" -> (
          match peek2 p with
          | ID (("tcp" | "udp" | "icmp") as proto) ->
              ignore (next p);
              ignore (next p);
              E_port (Int64.to_int c, proto)
          | _ -> E_count c)
      | _ -> E_count c)
  | DOUBLE d -> (
      match peek p with
      | ID u when List.mem_assoc u time_units ->
          ignore (next p);
          E_interval (d *. List.assoc u time_units)
      | _ -> E_double d)
  | STR s -> E_string s
  | PATTERN s -> E_pattern s
  | IPV4 a -> (
      if peek p = PUNCT "/" then begin
        ignore (next p);
        match next p with
        | COUNT len -> E_subnet (a, Int64.to_int len)
        | t -> fail p "bad subnet length %s" (tok_str t)
      end
      else E_addr a)
  | ID "T" -> E_bool true
  | ID "F" -> E_bool false
  | ID "vector" when peek p = PUNCT "(" ->
      ignore (next p);
      let args = ref [] in
      if peek p <> PUNCT ")" then begin
        args := [ parse_expr p ];
        while peek p = PUNCT "," do
          ignore (next p);
          args := parse_expr p :: !args
        done
      end;
      expect p ")";
      E_vector_ctor (List.rev !args)
  | ID f when peek p = PUNCT "(" ->
      ignore (next p);
      let args = ref [] in
      if peek p <> PUNCT ")" then begin
        args := [ parse_expr p ];
        while peek p = PUNCT "," do
          ignore (next p);
          args := parse_expr p :: !args
        done
      end;
      expect p ")";
      E_call (f, List.rev !args)
  | ID x -> E_id x
  | PUNCT "!" -> E_not (parse_atom_postfix p)
  | PUNCT "-" -> E_neg (parse_atom_postfix p)
  | PUNCT "|" ->
      let e = parse_expr p in
      expect p "|";
      E_size e
  | PUNCT "(" ->
      let e = parse_expr p in
      expect p ")";
      e
  | PUNCT "[" ->
      (* record constructor [$f = e, ...] *)
      let fields = ref [] in
      let one () =
        expect p "$";
        let f = ident p in
        expect p "=";
        fields := (f, parse_expr p) :: !fields
      in
      if peek p <> PUNCT "]" then begin
        one ();
        while peek p = PUNCT "," do
          ignore (next p);
          one ()
        done
      end;
      expect p "]";
      E_record_ctor (List.rev !fields)
  | t -> fail p "expected expression, got %s" (tok_str t)

and parse_atom_postfix p =
  (* unary operand including postfix chains *)
  let rec go e =
    match peek p with
    | PUNCT "$" ->
        ignore (next p);
        go (E_field (e, ident p))
    | PUNCT "[" ->
        ignore (next p);
        let keys = ref [ parse_expr p ] in
        while peek p = PUNCT "," do
          ignore (next p);
          keys := parse_expr p :: !keys
        done;
        expect p "]";
        go (E_index (e, List.rev !keys))
    | _ -> e
  in
  go (parse_atom p)

(* Statements *)
let rec parse_stmt p : stmt =
  match peek p with
  | PUNCT "{" ->
      ignore (next p);
      let stmts = parse_stmts p in
      expect p "}";
      S_if (E_bool true, stmts, [])  (* a bare block: wrap as trivial if *)
  | ID "local" ->
      ignore (next p);
      let name = ident p in
      let ty =
        if peek p = PUNCT ":" then begin
          ignore (next p);
          Some (parse_type p)
        end
        else None
      in
      let init =
        if peek p = PUNCT "=" then begin
          ignore (next p);
          Some (parse_expr p)
        end
        else None
      in
      expect p ";";
      S_local (name, ty, init)
  | ID "add" ->
      ignore (next p);
      let e = parse_expr p in
      expect p ";";
      S_add e
  | ID "delete" ->
      ignore (next p);
      let e = parse_expr p in
      expect p ";";
      S_delete e
  | ID "print" ->
      ignore (next p);
      let args = ref [ parse_expr p ] in
      while peek p = PUNCT "," do
        ignore (next p);
        args := parse_expr p :: !args
      done;
      expect p ";";
      S_print (List.rev !args)
  | ID "if" ->
      ignore (next p);
      expect p "(";
      let c = parse_expr p in
      expect p ")";
      let thens = parse_block_or_stmt p in
      let elses =
        if peek p = ID "else" then begin
          ignore (next p);
          parse_block_or_stmt p
        end
        else []
      in
      S_if (c, thens, elses)
  | ID "for" ->
      ignore (next p);
      expect p "(";
      let v = ident p in
      (match next p with
      | ID "in" -> ()
      | t -> fail p "expected 'in', got %s" (tok_str t));
      let e = parse_expr p in
      expect p ")";
      S_for (v, e, parse_block_or_stmt p)
  | ID "return" ->
      ignore (next p);
      if peek p = PUNCT ";" then begin
        ignore (next p);
        S_return None
      end
      else begin
        let e = parse_expr p in
        expect p ";";
        S_return (Some e)
      end
  | ID "event" ->
      ignore (next p);
      let name = ident p in
      expect p "(";
      let args = ref [] in
      if peek p <> PUNCT ")" then begin
        args := [ parse_expr p ];
        while peek p = PUNCT "," do
          ignore (next p);
          args := parse_expr p :: !args
        done
      end;
      expect p ")";
      expect p ";";
      S_event (name, List.rev !args)
  | _ ->
      let e = parse_expr p in
      if peek p = PUNCT "=" then begin
        ignore (next p);
        let rhs = parse_expr p in
        expect p ";";
        S_assign (e, rhs)
      end
      else begin
        expect p ";";
        S_expr e
      end

and parse_block_or_stmt p : stmt list =
  if peek p = PUNCT "{" then begin
    ignore (next p);
    let stmts = parse_stmts p in
    expect p "}";
    stmts
  end
  else [ parse_stmt p ]

and parse_stmts p : stmt list =
  let stmts = ref [] in
  while peek p <> PUNCT "}" && peek p <> TEOF do
    stmts := parse_stmt p :: !stmts
  done;
  List.rev !stmts

(* Attributes *)
let parse_attrs p =
  let attrs = ref [] in
  while peek p = PUNCT "&" do
    ignore (next p);
    (match ident p with
    | "default" ->
        expect p "=";
        attrs := A_default (parse_expr p) :: !attrs
    | "create_expire" ->
        expect p "=";
        attrs := A_create_expire (parse_expr p) :: !attrs
    | "read_expire" ->
        expect p "=";
        attrs := A_read_expire (parse_expr p) :: !attrs
    | "redef" | "optional" | "log" -> ()  (* accepted, no-op here *)
    | a -> fail p "unknown attribute &%s" a)
  done;
  List.rev !attrs

let parse_params p =
  expect p "(";
  let params = ref [] in
  if peek p <> PUNCT ")" then begin
    let one () =
      let n = ident p in
      expect p ":";
      params := (n, parse_type p) :: !params
    in
    one ();
    while peek p = PUNCT "," do
      ignore (next p);
      one ()
    done
  end;
  expect p ")";
  List.rev !params

(* Declarations *)
let parse_decl p : decl =
  match next p with
  | ID ("global" | "const") ->
      let name = ident p in
      expect p ":";
      let ty = parse_type p in
      let init =
        if peek p = PUNCT "=" then begin
          ignore (next p);
          Some (parse_expr p)
        end
        else None
      in
      let attrs = parse_attrs p in
      expect p ";";
      D_global (name, ty, init, attrs)
  | ID "type" ->
      let name = ident p in
      expect p ":";
      (match next p with
      | ID "record" -> ()
      | t -> fail p "expected 'record', got %s" (tok_str t));
      expect p "{";
      let fields = ref [] in
      while peek p <> PUNCT "}" do
        let fn = ident p in
        expect p ":";
        let ft = parse_type p in
        let _ = parse_attrs p in
        expect p ";";
        fields := (fn, ft) :: !fields
      done;
      expect p "}";
      expect p ";";
      D_record (name, List.rev !fields)
  | ID "function" ->
      let name = ident p in
      let params = parse_params p in
      let result =
        if peek p = PUNCT ":" then begin
          ignore (next p);
          parse_type p
        end
        else T_void
      in
      expect p "{";
      let body = parse_stmts p in
      expect p "}";
      D_function (name, params, result, body)
  | ID "event" ->
      let name = ident p in
      let params = parse_params p in
      expect p "{";
      let body = parse_stmts p in
      expect p "}";
      D_event (name, params, body)
  | t -> fail p "unexpected %s at top level" (tok_str t)

(** Parse a Mini-Bro script. *)
let parse (src : string) : script =
  let p = { toks = tokenize src } in
  let decls = ref [] in
  while peek p <> TEOF do
    decls := parse_decl p :: !decls
  done;
  List.rev !decls
