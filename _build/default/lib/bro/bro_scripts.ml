(** The analysis scripts bundled with Mini-Bro — the equivalents of Bro's
    default HTTP and DNS scripts the evaluation runs (§6.1/§6.5): session
    logging with request/reply correlation and file-body hashing, plus the
    Fig. 8 connection tracker, the §7 scan detector, and the Fibonacci
    micro-benchmark script. *)

(* Record types shared by every script (Bro's init-bare equivalents). *)
let prelude = {|
type conn_id: record {
    orig_h: addr;
    orig_p: port;
    resp_h: addr;
    resp_p: port;
};

type connection: record {
    id: conn_id;
    uid: string;
    start_time: time;
};
|}

(* Fig. 8(a), verbatim. *)
let track = prelude ^ {|
global hosts: set[addr];

event connection_established(c: connection) {
    add hosts[c$id$resp_h];   # Record responder IP.
}

event bro_done() {
    for (i in hosts)          # Print all recorded IPs.
        print i;
}
|}

(* The HTTP analysis: correlate requests with replies FIFO per connection
   (as Bro's http.log does), log every transaction, and log file bodies
   with their SHA1 (files.log). *)
let http = prelude ^ {|
type HttpReq: record {
    method: string;
    uri: string;
    host: string;
    version: string;
    ts: time;
};

global pending: table[string] of vector of HttpReq;

event http_request(c: connection, method: string, uri: string,
                   version: string, host: string) {
    if (c$uid !in pending)
        pending[c$uid] = vector();
    push(pending[c$uid],
         [$method=method, $uri=uri, $host=host, $version=version,
          $ts=network_time()]);
}

event http_reply(c: connection, version: string, code: count, reason: string,
                 mime: string, body_len: count, body_sha1: string) {
    local method = "";
    local uri = "";
    local host = "";
    if (c$uid in pending && |pending[c$uid]| > 0) {
        local r = shift(pending[c$uid]);
        method = r$method;
        uri = r$uri;
        host = r$host;
    }
    Log::write("http",
        [$ts=network_time(), $uid=c$uid,
         $orig_h=c$id$orig_h, $orig_p=c$id$orig_p,
         $resp_h=c$id$resp_h, $resp_p=c$id$resp_p,
         $method=method, $host=host, $uri=uri, $version=version,
         $status_code=code, $reason=reason,
         $mime_type=mime, $body_len=body_len]);
    if (body_len > 0)
        Log::write("files",
            [$ts=network_time(), $uid=c$uid,
             $tx_host=c$id$resp_h, $rx_host=c$id$orig_h,
             $mime_type=mime, $total_bytes=body_len, $sha1=body_sha1]);
}

event connection_state_remove(c: connection) {
    if (c$uid in pending)
        delete pending[c$uid];
}
|}

(* The DNS analysis: correlate queries with responses by (uid, id). *)
let dns = prelude ^ {|
type DnsReq: record {
    query: string;
    qtype: count;
    ts: time;
};

global dns_pending: table[string] of DnsReq;
global qtype_names: table[count] of string &default="OTHER";

event bro_init() {
    qtype_names[1] = "A";
    qtype_names[2] = "NS";
    qtype_names[5] = "CNAME";
    qtype_names[6] = "SOA";
    qtype_names[12] = "PTR";
    qtype_names[15] = "MX";
    qtype_names[16] = "TXT";
    qtype_names[28] = "AAAA";
}

event dns_request(c: connection, id: count, query: string, qtype: count) {
    dns_pending[fmt("%s-%d", c$uid, id)] =
        [$query=query, $qtype=qtype, $ts=network_time()];
}

event dns_reply(c: connection, id: count, rcode: count,
                answers: vector of string, ttls: vector of count) {
    local key = fmt("%s-%d", c$uid, id);
    local query = "";
    local qtype = 0;
    if (key in dns_pending) {
        local r = dns_pending[key];
        query = r$query;
        qtype = r$qtype;
        delete dns_pending[key];
    }
    Log::write("dns",
        [$ts=network_time(), $uid=c$uid,
         $orig_h=c$id$orig_h, $orig_p=c$id$orig_p,
         $resp_h=c$id$resp_h, $resp_p=c$id$resp_p,
         $query=query, $qtype_name=qtype_names[qtype], $rcode=rcode,
         $answers=join(answers, ","), $ttls=join(ttls, ",")]);
}
|}

(* The scan detector sketched in §7: per-source connection counting, a
   natural fit for scoped scheduling. *)
let scan = prelude ^ {|
global attempts: table[addr] of count &default=0;
global scanners: set[addr];

event connection_established(c: connection) {
    attempts[c$id$orig_h] = attempts[c$id$orig_h] + 1;
    if (attempts[c$id$orig_h] == 20)
        add scanners[c$id$orig_h];
}

event bro_done() {
    for (s in scanners)
        print fmt("scanner: %s", s);
}
|}

(* The §6.5 baseline benchmark. *)
let fib = {|
function fib(n: count): count {
    if (n < 2)
        return n;
    return fib(n - 1) + fib(n - 2);
}
|}

(* ---- Log stream definitions -------------------------------------------------- *)

let http_columns =
  [ "ts"; "uid"; "orig_h"; "orig_p"; "resp_h"; "resp_p"; "method"; "host";
    "uri"; "version"; "status_code"; "reason"; "mime_type"; "body_len" ]

let files_columns =
  [ "ts"; "uid"; "tx_host"; "rx_host"; "mime_type"; "total_bytes"; "sha1" ]

let dns_columns =
  [ "ts"; "uid"; "orig_h"; "orig_p"; "resp_h"; "resp_p"; "query"; "qtype_name";
    "rcode"; "answers"; "ttls" ]

(** Create the standard log streams on a logger. *)
let setup_logs logger =
  Bro_log.create_stream logger "http" http_columns;
  Bro_log.create_stream logger "files" files_columns;
  Bro_log.create_stream logger "dns" dns_columns

let parse_track () = Bro_parse.parse track
let parse_http () = Bro_parse.parse http
let parse_dns () = Bro_parse.parse dns
let parse_scan () = Bro_parse.parse scan
let parse_fib () = Bro_parse.parse fib

(** The combined default-script set used in the evaluation runs. *)
let parse_all () = Bro_parse.parse (http ^ dns ^ scan)
