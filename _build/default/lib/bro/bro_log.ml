(** Mini-Bro's logging framework: typed streams with fixed column order
    writing Bro-style TSV lines (http.log, files.log, dns.log).  Streams
    buffer in memory so the evaluation can diff outputs; they can also
    mirror to disk.  A global [enabled] switch lets benchmarks skip the
    final write while still doing all the computation, mirroring §6.1's
    measurement methodology. *)

type stream = {
  name : string;
  columns : string list;
  mutable rows : string list;  (** rendered lines, newest first *)
  mutable count : int;
}

type t = {
  streams : (string, stream) Hashtbl.t;
  mutable enabled : bool;
}

let create () = { streams = Hashtbl.create 8; enabled = true }

let set_enabled t flag = t.enabled <- flag

let create_stream t name columns =
  Hashtbl.replace t.streams name { name; columns; rows = []; count = 0 }

let stream t name =
  match Hashtbl.find_opt t.streams name with
  | Some s -> s
  | None ->
      let s = { name; columns = []; rows = []; count = 0 } in
      Hashtbl.add t.streams name s;
      s

let render_field = function
  | "" -> "-"
  | s ->
      (* TSV-escape embedded separators as Bro does *)
      String.map (fun c -> if c = '\t' || c = '\n' then ' ' else c) s

(** Write one row: values are rendered strings keyed by column name;
    missing columns log "-". *)
let write t name (fields : (string * string) list) =
  let s = stream t name in
  s.count <- s.count + 1;
  if t.enabled then begin
    let row =
      String.concat "\t"
        (List.map
           (fun col ->
             match List.assoc_opt col fields with
             | Some v -> render_field v
             | None -> "-")
           s.columns)
    in
    s.rows <- row :: s.rows
  end

let rows t name = List.rev (stream t name).rows
let row_count t name = (stream t name).count

let header s = "#fields\t" ^ String.concat "\t" s.columns

let to_string t name =
  let s = stream t name in
  String.concat "\n" (header s :: List.rev s.rows)

let write_file t name path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t name);
      output_char oc '\n')

(* ---- Normalized comparison (§6.4's log-diff methodology) ------------------- *)

(** Normalize rows for comparison: sort and de-duplicate, as the paper's
    normalization does to absorb ordering differences. *)
let normalized t name = List.sort_uniq compare (rows t name)

type agreement = {
  total_a : int;
  total_b : int;
  normalized_a : int;
  normalized_b : int;
  identical : int;
  fraction : float;  (** identical / max(normalized_a, normalized_b) *)
}

(** Compare a stream across two logger instances. *)
let compare_streams (a : t) (b : t) name : agreement =
  let na = normalized a name and nb = normalized b name in
  let sa = Hashtbl.create 256 in
  List.iter (fun r -> Hashtbl.replace sa r ()) na;
  let identical = List.length (List.filter (Hashtbl.mem sa) nb) in
  let denom = max (List.length na) (List.length nb) in
  {
    total_a = row_count a name;
    total_b = row_count b name;
    normalized_a = List.length na;
    normalized_b = List.length nb;
    identical;
    fraction = (if denom = 0 then 1.0 else float_of_int identical /. float_of_int denom);
  }
