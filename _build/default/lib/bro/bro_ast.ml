(** The Mini-Bro scripting language AST (§4 "Bro Script Compiler").

    Covers the language features the paper's case-study scripts exercise:
    typed globals (including tables/sets with [&default] and
    [&create_expire] attributes), record types, functions, event handlers,
    stateful statements ([add]/[delete]/indexed assignment), [for]-loops
    over containers, and the expression forms of Fig. 8. *)

type btype =
  | T_bool
  | T_count          (** unsigned 64-bit, Bro's workhorse integer *)
  | T_int
  | T_double
  | T_string
  | T_addr
  | T_port
  | T_subnet
  | T_time
  | T_interval
  | T_pattern
  | T_void
  | T_any
  | T_set of btype list          (** set[K1, K2, ...] *)
  | T_table of btype list * btype
  | T_vector of btype
  | T_record of string           (** named record type *)

type expr =
  | E_bool of bool
  | E_count of int64
  | E_double of float
  | E_string of string
  | E_pattern of string
  | E_addr of string
  | E_subnet of string * int
  | E_port of int * string
  | E_interval of float          (** seconds *)
  | E_id of string
  | E_field of expr * string     (** e$f *)
  | E_index of expr * expr list  (** t[k] / t[k1,k2] *)
  | E_in of expr * expr          (** k in t *)
  | E_not_in of expr * expr
  | E_binop of string * expr * expr   (** + - * / % == != < <= > >= && || *)
  | E_not of expr
  | E_neg of expr
  | E_size of expr               (** |e| *)
  | E_call of string * expr list
  | E_record_ctor of (string * expr) list  (** [$f = e, ...] *)
  | E_vector_ctor of expr list   (** vector(e1, e2, ...) *)
  | E_match of expr * expr       (** pattern in string: p in s *)

type stmt =
  | S_expr of expr               (** call for effect *)
  | S_local of string * btype option * expr option
  | S_assign of expr * expr      (** lhs = rhs; lhs: id, field, or index *)
  | S_add of expr                (** add s[k]; *)
  | S_delete of expr             (** delete t[k]; *)
  | S_print of expr list
  | S_if of expr * stmt list * stmt list
  | S_for of string * expr * stmt list   (** for (x in container) *)
  | S_return of expr option
  | S_event of string * expr list        (** event name(args); queued *)

type attr = A_default of expr | A_create_expire of expr | A_read_expire of expr

type decl =
  | D_global of string * btype * expr option * attr list
  | D_record of string * (string * btype) list
  | D_function of string * (string * btype) list * btype * stmt list
  | D_event of string * (string * btype) list * stmt list

type script = decl list

(* ---- Helpers ------------------------------------------------------------------ *)

let rec btype_to_string = function
  | T_bool -> "bool"
  | T_count -> "count"
  | T_int -> "int"
  | T_double -> "double"
  | T_string -> "string"
  | T_addr -> "addr"
  | T_port -> "port"
  | T_subnet -> "subnet"
  | T_time -> "time"
  | T_interval -> "interval"
  | T_pattern -> "pattern"
  | T_void -> "void"
  | T_any -> "any"
  | T_set ks -> "set[" ^ String.concat "," (List.map btype_to_string ks) ^ "]"
  | T_table (ks, v) ->
      "table[" ^ String.concat "," (List.map btype_to_string ks) ^ "] of "
      ^ btype_to_string v
  | T_vector t -> "vector of " ^ btype_to_string t
  | T_record n -> n

let find_record (script : script) name =
  List.find_map
    (function D_record (n, fields) when n = name -> Some fields | _ -> None)
    script

let event_handlers (script : script) name =
  List.filter_map
    (function
      | D_event (n, params, body) when n = name -> Some (params, body)
      | _ -> None)
    script
