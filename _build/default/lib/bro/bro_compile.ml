(** The Bro script compiler: Mini-Bro scripts -> HILTI IR (§4 "Bro Script
    Compiler", Fig. 8).

    Mapping, as the paper describes: Bro event handlers become HILTI hooks
    (functions with multiple bodies), Bro data types map to HILTI
    equivalents (tables to maps, sets to sets, vectors to lists, records
    to structs, strings to bytes), and interactions with the host Bro —
    printing, fmt, logging, event queuing — go through C-level calls into
    the engine (the glue layer of §5/§6). *)

open Bro_ast

exception Compile_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Compile_error s)) fmt

let record_type name = "bro::" ^ name
let event_hook name = "bro::event::" ^ name
let func_name name = "bro::fn::" ^ name

let rec htype_of (t : btype) : Htype.t =
  match t with
  | T_bool -> Htype.Bool
  | T_count | T_int -> Htype.Int 64
  | T_double -> Htype.Double
  | T_string -> Htype.Bytes
  | T_addr -> Htype.Addr
  | T_port -> Htype.Port
  | T_subnet -> Htype.Net
  | T_time -> Htype.Time
  | T_interval -> Htype.Interval
  | T_pattern -> Htype.Regexp
  | T_void -> Htype.Void
  | T_any -> Htype.Any
  | T_set ks -> (
      match ks with
      | [ k ] -> Htype.Ref (Htype.Set (htype_of k))
      | ks -> Htype.Ref (Htype.Set (Htype.Tuple (List.map htype_of ks))))
  | T_table (ks, v) -> (
      match ks with
      | [ k ] -> Htype.Ref (Htype.Map (htype_of k, htype_of v))
      | ks -> Htype.Ref (Htype.Map (Htype.Tuple (List.map htype_of ks), htype_of v)))
  | T_vector t -> Htype.Ref (Htype.List (htype_of t))
  | T_record n -> Htype.Ref (Htype.Struct (record_type n))

type ctx = {
  script : script;
  m : Module_ir.t;
  mutable label_counter : int;
  mutable anon_counter : int;
  (* static types for globals/params/locals where declared *)
  global_types : (string, btype) Hashtbl.t;
  func_results : (string, btype) Hashtbl.t;
}

let fresh ctx prefix =
  ctx.label_counter <- ctx.label_counter + 1;
  Printf.sprintf "__%s%d" prefix ctx.label_counter

(* Does the builder's current block already end in a terminator (e.g. a
   [return] inside an if-branch)?  Then no fall-through jump is needed. *)
let terminated b =
  match List.rev b.Builder.current.Module_ir.instrs with
  | last :: _ -> List.mem last.Instr.mnemonic Validate.terminators
  | [] -> false

(* ---- Static typing (best effort, for operation selection) -------------------- *)

type tenv = (string * btype) list

let record_fields ctx name =
  match find_record ctx.script name with
  | Some fs -> fs
  | None -> fail "unknown record type %s" name

let rec type_of ctx (tenv : tenv) (e : expr) : btype option =
  match e with
  | E_bool _ -> Some T_bool
  | E_count _ -> Some T_count
  | E_double _ -> Some T_double
  | E_string _ -> Some T_string
  | E_pattern _ -> Some T_pattern
  | E_addr _ -> Some T_addr
  | E_subnet _ -> Some T_subnet
  | E_port _ -> Some T_port
  | E_interval _ -> Some T_interval
  | E_id n -> (
      match List.assoc_opt n tenv with
      | Some t -> Some t
      | None -> Hashtbl.find_opt ctx.global_types n)
  | E_field (e, f) -> (
      match type_of ctx tenv e with
      | Some (T_record rn) -> List.assoc_opt f (record_fields ctx rn)
      | _ -> None)
  | E_index (e, _) -> (
      match type_of ctx tenv e with
      | Some (T_table (_, v)) -> Some v
      | Some (T_vector t) -> Some t
      | _ -> None)
  | E_in _ | E_not_in _ | E_match _ | E_not _ -> Some T_bool
  | E_binop (("==" | "!=" | "<" | "<=" | ">" | ">=" | "&&" | "||"), _, _) -> Some T_bool
  | E_binop (_, a, b) -> (
      match type_of ctx tenv a with Some t -> Some t | None -> type_of ctx tenv b)
  | E_neg e -> type_of ctx tenv e
  | E_size _ -> Some T_count
  | E_record_ctor _ -> None
  | E_vector_ctor es -> (
      match es with
      | e :: _ -> Option.map (fun t -> T_vector t) (type_of ctx tenv e)
      | [] -> None)
  | E_call ("fmt", _) | E_call ("cat", _) | E_call ("lower", _)
  | E_call ("to_lower", _) | E_call ("to_upper", _) | E_call ("sha1", _)
  | E_call ("join", _) ->
      Some T_string
  | E_call ("to_count", _) -> Some T_count
  | E_call ("network_time", _) -> Some T_time
  | E_call ("shift", [ v ]) -> (
      match type_of ctx tenv v with Some (T_vector t) -> Some t | _ -> None)
  | E_call (fn, _) -> Hashtbl.find_opt ctx.func_results fn

(* ---- Expression compilation ----------------------------------------------------- *)

(* Host-call helper ("C stubs" into the engine). *)
let host_call b ?result name args =
  match result with
  | Some ty -> Builder.emit b ty "call" [ Instr.Fname name; Instr.Tuple_op args ]
  | None ->
      Builder.instr b "call" [ Instr.Fname name; Instr.Tuple_op args ];
      Instr.Const (Constant.Bool true)

let rec compile_expr ctx b (tenv : tenv) (e : expr) : Instr.operand =
  let recur e = compile_expr ctx b tenv e in
  match e with
  | E_bool v -> Builder.const_bool v
  | E_count c -> Instr.Const (Constant.Int (c, 64))
  | E_double d -> Instr.Const (Constant.Double d)
  | E_string s -> Builder.const_bytes s
  | E_pattern src ->
      Builder.emit b Htype.Regexp "regexp.compile" [ Builder.const_string src ]
  | E_addr a -> Instr.Const (Constant.Addr (Hilti_types.Addr.of_string a))
  | E_subnet (a, l) ->
      Instr.Const (Constant.Net (Hilti_types.Network.make (Hilti_types.Addr.of_string a) l))
  | E_port (n, proto) ->
      Instr.Const
        (Constant.Port (Hilti_types.Port.make n (Hilti_types.Port.proto_of_string proto)))
  | E_interval secs -> Instr.Const (Constant.Interval (Hilti_types.Interval_ns.of_float secs))
  | E_id n ->
      if List.mem_assoc n tenv then Instr.Local n
      else if Hashtbl.mem ctx.global_types n then Instr.Global n
      else fail "unknown identifier %s" n
  | E_field (e, f) ->
      Builder.emit b Htype.Any "struct.get" [ recur e; Instr.Member f ]
  | E_index (e, keys) -> (
      let container = recur e in
      let key = compile_key ctx b tenv keys in
      match type_of ctx tenv e with
      | Some (T_table _) | None ->
          Builder.emit b Htype.Any "map.get" [ container; key ]
      | Some (T_vector _) -> fail "vector indexing is not supported in compiled scripts"
      | Some t -> fail "indexing %s" (btype_to_string t))
  | E_in (k, c) -> compile_membership ctx b tenv k c
  | E_not_in (k, c) ->
      let m = compile_membership ctx b tenv k c in
      Builder.emit b Htype.Bool "bool.not" [ m ]
  | E_match (pat, s) ->
      let re = recur pat in
      let str = recur s in
      let id = Builder.emit b (Htype.Int 64) "regexp.find" [ re; str ] in
      Builder.emit b Htype.Bool "int.geq" [ id; Builder.const_int 0 ]
  | E_binop ("==", a, c) -> Builder.emit b Htype.Bool "equal" [ recur a; recur c ]
  | E_binop ("!=", a, c) ->
      let eq = Builder.emit b Htype.Bool "equal" [ recur a; recur c ] in
      Builder.emit b Htype.Bool "bool.not" [ eq ]
  | E_binop ("&&", a, c) ->
      (* Short-circuit, as Bro requires: guards like
         [k in t && |t[k]| > 0] must not evaluate the rhs when absent. *)
      let res = Builder.local b (fresh ctx "and") Htype.Bool in
      let la = recur a in
      let rhs_l = fresh ctx "rhs" and false_l = fresh ctx "sc" and done_l = fresh ctx "scdone" in
      Builder.if_else b la ~then_:rhs_l ~else_:false_l;
      Builder.set_block b rhs_l;
      let rv = recur c in
      Builder.instr b ~target:res "assign" [ rv ];
      Builder.jump b done_l;
      Builder.set_block b false_l;
      Builder.instr b ~target:res "assign" [ Builder.const_bool false ];
      Builder.jump b done_l;
      Builder.set_block b done_l;
      Instr.Local res
  | E_binop ("||", a, c) ->
      let res = Builder.local b (fresh ctx "or") Htype.Bool in
      let rhs_l = fresh ctx "rhs" and true_l = fresh ctx "sc" and done_l = fresh ctx "scdone" in
      let la = recur a in
      Builder.if_else b la ~then_:true_l ~else_:rhs_l;
      Builder.set_block b true_l;
      Builder.instr b ~target:res "assign" [ Builder.const_bool true ];
      Builder.jump b done_l;
      Builder.set_block b rhs_l;
      let rv = recur c in
      Builder.instr b ~target:res "assign" [ rv ];
      Builder.jump b done_l;
      Builder.set_block b done_l;
      Instr.Local res
  | E_binop (("<" | "<=" | ">" | ">=") as op, a, c) ->
      let mn =
        match op with "<" -> "int.lt" | "<=" -> "int.leq" | ">" -> "int.gt" | _ -> "int.geq"
      in
      Builder.emit b Htype.Bool mn [ recur a; recur c ]
  | E_binop ("+", a, c) -> (
      match (type_of ctx tenv a, type_of ctx tenv c) with
      | Some T_string, _ | _, Some T_string ->
          host_call b ~result:Htype.Bytes "Bro::cat" [ recur a; recur c ]
      | Some T_double, _ | _, Some T_double ->
          Builder.emit b Htype.Double "double.add" [ recur a; recur c ]
      | Some T_time, _ ->
          Builder.emit b Htype.Time "time.add" [ recur a; recur c ]
      | _ -> Builder.emit b (Htype.Int 64) "int.add" [ recur a; recur c ])
  | E_binop (op, a, c) -> (
      let mn =
        match op with
        | "-" -> "int.sub"
        | "*" -> "int.mul"
        | "/" -> "int.div"
        | "%" -> "int.mod"
        | op -> fail "operator %s" op
      in
      match (type_of ctx tenv a, type_of ctx tenv c) with
      | Some T_double, _ | _, Some T_double ->
          Builder.emit b Htype.Double ("double." ^ String.sub mn 4 (String.length mn - 4))
            [ recur a; recur c ]
      | _ -> Builder.emit b (Htype.Int 64) mn [ recur a; recur c ])
  | E_not e -> Builder.emit b Htype.Bool "bool.not" [ recur e ]
  | E_neg e -> Builder.emit b (Htype.Int 64) "int.neg" [ recur e ]
  | E_size e -> (
      let v = recur e in
      match type_of ctx tenv e with
      | Some (T_set _) -> Builder.emit b (Htype.Int 64) "set.size" [ v ]
      | Some (T_table _) -> Builder.emit b (Htype.Int 64) "map.size" [ v ]
      | Some (T_vector _) -> Builder.emit b (Htype.Int 64) "list.size" [ v ]
      | Some T_string | None -> Builder.emit b (Htype.Int 64) "bytes.length" [ v ]
      | Some t -> fail "|..| on %s" (btype_to_string t))
  | E_record_ctor fields ->
      (* An anonymous record type per constructor site. *)
      ctx.anon_counter <- ctx.anon_counter + 1;
      let tname = Printf.sprintf "bro::anon%d" ctx.anon_counter in
      Module_ir.add_type ctx.m tname
        (Module_ir.Struct_decl (List.map (fun (n, _) -> (n, Htype.Any)) fields));
      let s =
        Builder.emit b (Htype.Ref (Htype.Struct tname)) "new"
          [ Instr.Type_op (Htype.Struct tname) ]
      in
      let local = Builder.tmp b (Htype.Ref (Htype.Struct tname)) in
      Builder.instr b ~target:local "assign" [ s ];
      List.iter
        (fun (n, e) ->
          Builder.instr b "struct.set" [ Instr.Local local; Instr.Member n; recur e ])
        fields;
      Instr.Local local
  | E_vector_ctor es ->
      let l =
        Builder.emit b (Htype.Ref (Htype.List Htype.Any)) "new"
          [ Instr.Type_op (Htype.List Htype.Any) ]
      in
      let local = Builder.tmp b (Htype.Ref (Htype.List Htype.Any)) in
      Builder.instr b ~target:local "assign" [ l ];
      List.iter
        (fun e -> Builder.instr b "list.append" [ Instr.Local local; recur e ])
        es;
      Instr.Local local
  | E_call (fn, args) -> compile_call ctx b tenv fn args

and compile_key ctx b tenv keys : Instr.operand =
  match keys with
  | [ k ] -> compile_expr ctx b tenv k
  | ks -> Instr.Tuple_op (List.map (compile_expr ctx b tenv) ks)

and compile_membership ctx b tenv k c =
  let kv = compile_expr ctx b tenv k in
  let cv = compile_expr ctx b tenv c in
  match type_of ctx tenv c with
  | Some (T_set _) -> Builder.emit b Htype.Bool "set.exists" [ cv; kv ]
  | Some (T_table _) -> Builder.emit b Htype.Bool "map.exists" [ cv; kv ]
  | Some T_string | None -> Builder.emit b Htype.Bool "bytes.contains" [ cv; kv ]
  | Some t -> fail "'in' on %s" (btype_to_string t)

and compile_call ctx b tenv fn args : Instr.operand =
  let vals () = List.map (compile_expr ctx b tenv) args in
  match fn with
  | "fmt" -> host_call b ~result:Htype.Bytes "Bro::fmt" (vals ())
  | "cat" -> host_call b ~result:Htype.Bytes "Bro::cat" (vals ())
  | "lower" | "to_lower" -> (
      match vals () with
      | [ v ] -> Builder.emit b Htype.Bytes "bytes.to_lower" [ v ]
      | _ -> fail "to_lower arity")
  | "to_upper" -> (
      match vals () with
      | [ v ] -> Builder.emit b Htype.Bytes "bytes.to_upper" [ v ]
      | _ -> fail "to_upper arity")
  | "to_count" -> host_call b ~result:(Htype.Int 64) "Bro::to_count" (vals ())
  | "sha1" -> host_call b ~result:Htype.Bytes "Bro::sha1" (vals ())
  | "join" -> host_call b ~result:Htype.Bytes "Bro::join" (vals ())
  | "network_time" -> host_call b ~result:Htype.Time "Bro::network_time" []
  | "push" -> (
      match vals () with
      | [ v; x ] ->
          Builder.instr b "list.append" [ v; x ];
          Builder.const_bool true
      | _ -> fail "push arity")
  | "shift" -> (
      match vals () with
      | [ v ] -> Builder.emit b Htype.Any "list.pop_front" [ v ]
      | _ -> fail "shift arity")
  | "Log::write" -> (
      match vals () with
      | [ stream; record ] -> host_call b ~result:Htype.Bool "Bro::log_write" [ stream; record ]
      | _ -> fail "Log::write arity")
  | fn when List.mem_assoc fn (functions ctx) ->
      let result =
        match Hashtbl.find_opt ctx.func_results fn with
        | Some t -> htype_of t
        | None -> Htype.Any
      in
      if result = Htype.Void then begin
        Builder.instr b "call" [ Instr.Fname (func_name fn); Instr.Tuple_op (vals ()) ];
        Builder.const_bool true
      end
      else Builder.emit b result "call" [ Instr.Fname (func_name fn); Instr.Tuple_op (vals ()) ]
  | fn -> fail "unknown function %s" fn

and functions ctx =
  List.filter_map
    (function D_function (n, p, r, _) -> Some (n, (p, r)) | _ -> None)
    ctx.script

(* ---- Statement compilation --------------------------------------------------------- *)

let rec compile_stmt ctx b (tenv : tenv ref) (s : stmt) =
  match s with
  | S_expr e -> ignore (compile_expr ctx b !tenv e)
  | S_local (name, ty, init) ->
      let bty =
        match (ty, init) with
        | Some t, _ -> t
        | None, Some e -> Option.value ~default:T_any (type_of ctx !tenv e)
        | None, None -> fail "local %s needs type or initializer" name
      in
      let hty = htype_of bty in
      let name = Builder.local b name hty in
      tenv := (name, bty) :: !tenv;
      (match init with
      | Some e ->
          let v = compile_expr ctx b !tenv e in
          Builder.instr b ~target:name "assign" [ v ]
      | None -> (
          (* Containers and records need allocation even without an
             initializer. *)
          match bty with
          | T_set _ | T_table _ | T_vector _ | T_record _ ->
              let v =
                Builder.emit b hty "new" [ Instr.Type_op (Htype.deref hty) ]
              in
              Builder.instr b ~target:name "assign" [ v ]
          | _ -> ()))
  | S_assign (lhs, rhs) -> (
      let v = compile_expr ctx b !tenv rhs in
      match lhs with
      | E_id n ->
          if List.mem_assoc n !tenv then Builder.instr b ~target:n "assign" [ v ]
          else if Hashtbl.mem ctx.global_types n then
            Builder.instr b ~target:n "assign" [ v ]
          else fail "unknown assignment target %s" n
      | E_field (e, f) ->
          let r = compile_expr ctx b !tenv e in
          Builder.instr b "struct.set" [ r; Instr.Member f; v ]
      | E_index (e, keys) ->
          let c = compile_expr ctx b !tenv e in
          let k = compile_key ctx b !tenv keys in
          Builder.instr b "map.insert" [ c; k; v ]
      | _ -> fail "bad assignment target")
  | S_add e -> (
      match e with
      | E_index (se, keys) ->
          let s = compile_expr ctx b !tenv se in
          let k = compile_key ctx b !tenv keys in
          Builder.instr b "set.insert" [ s; k ]
      | _ -> fail "add expects s[k]")
  | S_delete e -> (
      match e with
      | E_index (se, keys) -> (
          let c = compile_expr ctx b !tenv se in
          let k = compile_key ctx b !tenv keys in
          match type_of ctx !tenv se with
          | Some (T_set _) -> Builder.instr b "set.remove" [ c; k ]
          | _ -> Builder.instr b "map.remove" [ c; k ])
      | _ -> fail "delete expects t[k]")
  | S_print args ->
      Builder.instr b "call"
        [ Instr.Fname "Bro::print";
          Instr.Tuple_op (List.map (compile_expr ctx b !tenv) args) ]
  | S_if (c, thens, elses) ->
      let cond = compile_expr ctx b !tenv c in
      let lt = fresh ctx "then" and le = fresh ctx "else" and fi = fresh ctx "fi" in
      Builder.if_else b cond ~then_:lt ~else_:le;
      Builder.set_block b lt;
      let saved = !tenv in
      List.iter (compile_stmt ctx b tenv) thens;
      tenv := saved;
      if not (terminated b) then Builder.jump b fi;
      Builder.set_block b le;
      List.iter (compile_stmt ctx b tenv) elses;
      tenv := saved;
      if not (terminated b) then Builder.jump b fi;
      Builder.set_block b fi
  | S_for (var, e, body) ->
      let container = compile_expr ctx b !tenv e in
      let cty = type_of ctx !tenv e in
      let it = Builder.tmp b (Htype.Iter Htype.Any) in
      let i0 = Builder.emit b (Htype.Iter Htype.Any) "iter.begin" [ container ] in
      Builder.instr b ~target:it "assign" [ i0 ];
      let head = fresh ctx "for" and body_l = fresh ctx "forbody" and done_l = fresh ctx "fordone" in
      Builder.jump b head;
      Builder.set_block b head;
      let at_end = Builder.emit b Htype.Bool "iter.at_end" [ Instr.Local it ] in
      Builder.if_else b at_end ~then_:done_l ~else_:body_l;
      Builder.set_block b body_l;
      let elem = Builder.emit b Htype.Any "iter.deref" [ Instr.Local it ] in
      let elem_ty, elem_op =
        match cty with
        | Some (T_table (ks, _)) ->
            (* map iteration yields (key, value); Bro iterates keys *)
            let k = Builder.emit b Htype.Any "tuple.get" [ elem; Builder.const_int 0 ] in
            ((match ks with [ k1 ] -> k1 | _ -> T_any), k)
        | Some (T_set [ k1 ]) -> (k1, elem)
        | Some (T_vector t) -> (t, elem)
        | _ -> (T_any, elem)
      in
      let var = Builder.local b var (htype_of elem_ty) in
      Builder.instr b ~target:var "assign" [ elem_op ];
      let saved = !tenv in
      tenv := (var, elem_ty) :: !tenv;
      List.iter (compile_stmt ctx b tenv) body;
      tenv := saved;
      let it2 = Builder.emit b (Htype.Iter Htype.Any) "iter.incr" [ Instr.Local it ] in
      Builder.instr b ~target:it "assign" [ it2 ];
      Builder.jump b head;
      Builder.set_block b done_l
  | S_return None -> Builder.instr b "return.void" []
  | S_return (Some e) ->
      let v = compile_expr ctx b !tenv e in
      Builder.return_result b v
  | S_event (name, args) ->
      Builder.instr b "call"
        [ Instr.Fname "Bro::queue_event";
          Instr.Tuple_op
            (Builder.const_string name :: List.map (compile_expr ctx b !tenv) args) ]

(* ---- Declaration compilation -------------------------------------------------------- *)

let compile_body ctx name ~cc params result body =
  let b =
    Builder.func ctx.m ~cc name ~exported:true
      ~params:(List.map (fun (n, t) -> (n, htype_of t)) params)
      ~result:(htype_of result)
  in
  let tenv = ref params in
  List.iter (compile_stmt ctx b tenv) body;
  if not (terminated b) then
    match htype_of result with
    | Htype.Void -> Builder.return_ b
    | _ ->
        (* Falling off a value-returning function is a runtime error. *)
        let e =
          Builder.emit b Htype.Exception "exception.new"
            [ Builder.const_string "Bro::NoReturn"; Builder.const_string name ]
        in
        Builder.instr b "throw" [ e ]

(** Compile a script into a HILTI module. *)
let compile (script : script) : Module_ir.t =
  let m = Module_ir.create "BroScripts" in
  let ctx =
    {
      script;
      m;
      label_counter = 0;
      anon_counter = 0;
      global_types = Hashtbl.create 16;
      func_results = Hashtbl.create 16;
    }
  in
  (* Declare the engine's C-level API (the host-application functions the
     compiled scripts call out to, §3.4). *)
  List.iter
    (fun (name, params, result) ->
      Module_ir.add_func m
        {
          Module_ir.fname = name;
          params;
          result;
          locals = [];
          blocks = [];
          cc = Module_ir.Cc_c;
          hook_priority = 0;
          exported = true;
        })
    [ ("Bro::print", [ ("args", Htype.Any) ], Htype.Void);
      ("Bro::fmt", [ ("args", Htype.Any) ], Htype.Bytes);
      ("Bro::cat", [ ("args", Htype.Any) ], Htype.Bytes);
      ("Bro::to_count", [ ("s", Htype.Bytes) ], Htype.Int 64);
      ("Bro::sha1", [ ("s", Htype.Bytes) ], Htype.Bytes);
      ("Bro::join", [ ("v", Htype.Any); ("sep", Htype.Bytes) ], Htype.Bytes);
      ("Bro::network_time", [], Htype.Time);
      ("Bro::log_write", [ ("stream", Htype.Bytes); ("rec", Htype.Any) ], Htype.Bool);
      ("Bro::queue_event", [ ("args", Htype.Any) ], Htype.Void) ];
  (* Records -> structs. *)
  List.iter
    (function
      | D_record (n, fields) ->
          Module_ir.add_type m (record_type n)
            (Module_ir.Struct_decl (List.map (fun (fn, ft) -> (fn, htype_of ft)) fields))
      | _ -> ())
    script;
  (* Globals + their types. *)
  List.iter
    (function
      | D_global (n, ty, _, _) ->
          Hashtbl.replace ctx.global_types n ty;
          Module_ir.add_global m n (htype_of ty)
      | D_function (n, _, r, _) -> Hashtbl.replace ctx.func_results n r
      | _ -> ())
    script;
  (* bro::init_globals: allocate containers, run initializers, defaults. *)
  let b = Builder.func m "bro::init_globals" ~exported:true ~params:[] ~result:Htype.Void in
  let tenv = ref [] in
  List.iter
    (function
      | D_global (name, ty, init, attrs) -> (
          (match ty with
          | T_set _ | T_table _ | T_vector _ ->
              let hty = htype_of ty in
              let v = Builder.emit b hty "new" [ Instr.Type_op (Htype.deref hty) ] in
              Builder.instr b ~target:name "assign" [ v ]
          | _ -> ());
          (match init with
          | Some e ->
              let v = compile_expr ctx b !tenv e in
              Builder.instr b ~target:name "assign" [ v ]
          | None -> ());
          List.iter
            (function
              | A_default d ->
                  let dv = compile_expr ctx b !tenv d in
                  Builder.instr b "map.default" [ Instr.Global name; dv ]
              | A_create_expire e ->
                  let iv = compile_expr ctx b !tenv e in
                  Builder.instr b "map.timeout"
                    [ Instr.Global name;
                      Instr.Const (Constant.Enum_label ("Hilti::ExpireStrategy", "Create"));
                      iv ]
              | A_read_expire e ->
                  let iv = compile_expr ctx b !tenv e in
                  Builder.instr b "map.timeout"
                    [ Instr.Global name;
                      Instr.Const (Constant.Enum_label ("Hilti::ExpireStrategy", "Access"));
                      iv ])
            attrs)
      | _ -> ())
    script;
  Builder.return_ b;
  (* Functions and event handlers (handlers become hooks, Fig. 8). *)
  List.iter
    (function
      | D_function (n, params, result, body) ->
          compile_body ctx (func_name n) ~cc:Module_ir.Cc_hilti params result body
      | D_event (n, params, body) ->
          compile_body ctx (event_hook n) ~cc:Module_ir.Cc_hook params T_void body
      | _ -> ())
    script;
  m
