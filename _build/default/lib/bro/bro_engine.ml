(** The Mini-Bro engine facade: one event-dispatch interface backed by
    either the standard script interpreter or the scripts compiled to
    HILTI (the [compile_scripts=T] switch of Fig. 8(c)).

    For the compiled engine, every event dispatch converts Bro values into
    HILTI values and runs the corresponding HILTI hook; script callouts
    (print/fmt/logging/event queuing) come back through registered host
    functions.  Both conversion directions run under the "bro/glue"
    profiler — the glue-code cost Figures 9/10 single out. *)

open Bro_ast

type mode = Interpreted | Compiled

type compiled = {
  api : Hilti_vm.Host_api.t;
  cscript : script;
  clogger : Bro_log.t;
  mutable cprint : string -> unit;
  cqueue : (string * Bro_val.t list) Queue.t;
  mutable cnetwork_time : Hilti_types.Time_ns.t;
}

type t = Interp of Bro_interp.t | Comp of compiled

(* ---- Bro-style rendering of HILTI values (must mirror Bro_val.to_string) --- *)

let rec hl_render (v : Hilti_vm.Value.t) : string =
  let module V = Hilti_vm.Value in
  match v with
  | V.Bool b -> if b then "T" else "F"
  | V.Int i -> Int64.to_string i
  | V.Double d -> Printf.sprintf "%g" d
  | V.String s -> s
  | V.Bytes b -> Hilti_types.Hbytes.to_string b
  | V.Addr a -> Hilti_types.Addr.to_string a
  | V.Port p -> Hilti_types.Port.to_string p
  | V.Net n -> Hilti_types.Network.to_string n
  | V.Time t -> Hilti_types.Time_ns.to_string t
  | V.Interval i -> Hilti_types.Interval_ns.to_string i
  | V.List d ->
      "[" ^ String.concat "," (List.map hl_render (Hilti_vm.Deque.to_list d)) ^ "]"
  | V.Set s ->
      let elems = Hilti_rt.Exp_map.fold (fun _ e acc -> hl_render e :: acc) s [] in
      "{" ^ String.concat "," (List.sort compare elems) ^ "}"
  | V.Map m ->
      let elems =
        Hilti_rt.Exp_map.fold
          (fun _ (k, value) acc -> (hl_render k ^ "->" ^ hl_render value) :: acc)
          m []
      in
      "{" ^ String.concat "," (List.sort compare elems) ^ "}"
  | V.Struct s ->
      let fields =
        Array.to_list s.V.sfields
        |> List.filter_map (fun (n, slot) ->
               Option.map (fun v -> n ^ "=" ^ hl_render v) !slot)
      in
      "[" ^ String.concat "," (List.sort compare fields) ^ "]"
  | V.Null -> "<void>"
  | other -> V.to_string other

let hl_num = function
  | Hilti_vm.Value.Int i -> i
  | v -> raise (Bro_val.Bro_error ("expected int, got " ^ Hilti_vm.Value.to_string v))

let fmt_hilti fmtstr args =
  let buf = Buffer.create (String.length fmtstr + 16) in
  let args = ref args in
  let nextv () =
    match !args with
    | [] -> raise (Bro_val.Bro_error "fmt: not enough arguments")
    | a :: rest ->
        args := rest;
        a
  in
  let n = String.length fmtstr in
  let i = ref 0 in
  while !i < n do
    if fmtstr.[!i] = '%' && !i + 1 < n then begin
      (match fmtstr.[!i + 1] with
      | 's' -> Buffer.add_string buf (hl_render (nextv ()))
      | 'd' -> Buffer.add_string buf (Int64.to_string (hl_num (nextv ())))
      | 'f' ->
          Buffer.add_string buf
            (Printf.sprintf "%f" (Hilti_vm.Value.as_double (nextv ())))
      | 'x' -> Buffer.add_string buf (Printf.sprintf "%Lx" (hl_num (nextv ())))
      | '%' -> Buffer.add_char buf '%'
      | c -> raise (Bro_val.Bro_error (Printf.sprintf "fmt: unsupported %%%c" c)));
      i := !i + 2
    end
    else begin
      Buffer.add_char buf fmtstr.[!i];
      incr i
    end
  done;
  Buffer.contents buf

(* ---- Loading ------------------------------------------------------------------- *)

let load ?(logger = Bro_log.create ()) ?(optimize = true) mode (script : script) : t =
  match mode with
  | Interpreted ->
      let interp = Bro_interp.load ~logger script in
      Bro_interp.init interp;
      Interp interp
  | Compiled ->
      let m = Bro_compile.compile script in
      let api = Hilti_vm.Host_api.compile ~optimize [ m ] in
      let c =
        {
          api;
          cscript = script;
          clogger = logger;
          cprint = print_endline;
          cqueue = Queue.create ();
          cnetwork_time = Hilti_types.Time_ns.epoch;
        }
      in
      let module V = Hilti_vm.Value in
      let reg name fn = Hilti_vm.Host_api.register api name fn in
      reg "Bro::print" (fun args ->
          c.cprint (String.concat ", " (List.map hl_render args));
          V.Null);
      reg "Bro::fmt" (fun args ->
          match args with
          | fmt :: rest ->
              let f =
                match fmt with
                | V.Bytes b -> Hilti_types.Hbytes.to_string b
                | V.String s -> s
                | v -> hl_render v
              in
              let b = Hilti_types.Hbytes.of_string (fmt_hilti f rest) in
              Hilti_types.Hbytes.freeze b;
              V.Bytes b
          | [] -> raise (Bro_val.Bro_error "fmt: no format"));
      reg "Bro::cat" (fun args ->
          let b =
            Hilti_types.Hbytes.of_string (String.concat "" (List.map hl_render args))
          in
          Hilti_types.Hbytes.freeze b;
          V.Bytes b);
      reg "Bro::to_count" (fun args ->
          match args with
          | [ v ] -> (
              let s = String.trim (hl_render v) in
              match Int64.of_string_opt s with
              | Some x -> V.Int x
              | None -> V.Int 0L)
          | _ -> raise (Bro_val.Bro_error "to_count arity"));
      reg "Bro::sha1" (fun args ->
          match args with
          | [ v ] ->
              let b = Hilti_types.Hbytes.of_string (Sha1.digest (hl_render v)) in
              Hilti_types.Hbytes.freeze b;
              V.Bytes b
          | _ -> raise (Bro_val.Bro_error "sha1 arity"));
      reg "Bro::join" (fun args ->
          match args with
          | [ V.List d; sep ] ->
              let s =
                String.concat (hl_render sep)
                  (List.map hl_render (Hilti_vm.Deque.to_list d))
              in
              let b = Hilti_types.Hbytes.of_string s in
              Hilti_types.Hbytes.freeze b;
              V.Bytes b
          | _ -> raise (Bro_val.Bro_error "join arity"));
      reg "Bro::network_time" (fun _ -> V.Time c.cnetwork_time);
      reg "Bro::log_write" (fun args ->
          match args with
          | [ stream; V.Struct s ] ->
              let stream = hl_render stream in
              let fields =
                Array.to_list s.V.sfields
                |> List.filter_map (fun (n, slot) ->
                       Option.map (fun v -> (n, hl_render v)) !slot)
              in
              Bro_log.write c.clogger stream fields;
              V.Bool true
          | _ -> raise (Bro_val.Bro_error "log_write arity"));
      reg "Bro::queue_event" (fun args ->
          match args with
          | name :: rest ->
              Queue.add (hl_render name, List.map Bro_val.of_hilti rest) c.cqueue;
              V.Null
          | [] -> raise (Bro_val.Bro_error "queue_event arity"));
      ignore (Hilti_vm.Host_api.call api "bro::init_globals" []);
      Comp c

(* ---- Dispatch -------------------------------------------------------------------- *)

let rec dispatch (t : t) name (args : Bro_val.t list) =
  match t with
  | Interp i -> Bro_interp.dispatch i name args
  | Comp c ->
      if event_handlers c.cscript name <> [] then begin
        let hargs = List.map Bro_val.to_hilti args in
        Hilti_vm.Host_api.run_hook c.api (Bro_compile.event_hook name) hargs
      end;
      while not (Queue.is_empty c.cqueue) do
        let n, a = Queue.take c.cqueue in
        dispatch t n a
      done

let logger = function Interp i -> i.Bro_interp.logger | Comp c -> c.clogger

let set_print_sink t sink =
  match t with
  | Interp i -> i.Bro_interp.print_sink <- sink
  | Comp c -> c.cprint <- sink

let set_network_time t ts =
  match t with
  | Interp i -> Bro_interp.set_network_time i ts
  | Comp c ->
      c.cnetwork_time <- ts;
      (* Trace time also drives the VM's timers, so table expiration
         attributes (&create_expire/&read_expire) take effect. *)
      Hilti_vm.Host_api.advance_time c.api ts

(** Call a script function (e.g. the fib benchmark). *)
let call_function t name (args : Bro_val.t list) : Bro_val.t =
  match t with
  | Interp i -> Bro_interp.call_value i name args
  | Comp c ->
      let hargs = List.map Bro_val.to_hilti args in
      Bro_val.of_hilti
        (Hilti_vm.Host_api.call c.api (Bro_compile.func_name name) hargs)

(** Abstract cycles executed by the compiled engine (0 for interpreted). *)
let cycles = function
  | Interp _ -> 0L
  | Comp c -> Hilti_vm.Host_api.cycles c.api
