(* Tiny dependency-free substring replacement used by the .evt parser. *)

let replace_all s ~pattern ~with_ =
  let plen = String.length pattern in
  if plen = 0 then s
  else begin
    let buf = Buffer.create (String.length s) in
    let i = ref 0 in
    while !i < String.length s do
      if
        !i + plen <= String.length s
        && String.sub s !i plen = pattern
      then begin
        Buffer.add_string buf with_;
        i := !i + plen
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  end
