lib/analyzers/http_pac.ml: Binpacxx Builder Events Fun Grammars Hilti_rt Hilti_types Hilti_vm Htype Instr List Mini_bro Module_ir Option Runtime String
