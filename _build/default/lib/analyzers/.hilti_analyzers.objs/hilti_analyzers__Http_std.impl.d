lib/analyzers/http_std.ml: Buffer Events List Mini_bro Option String
