lib/analyzers/evt.ml: Binpacxx Builder Events Hilti_rt Hilti_types Hilti_vm Http_pac Htype Instr List Mini_bro Module_ir Port Str_replace String
