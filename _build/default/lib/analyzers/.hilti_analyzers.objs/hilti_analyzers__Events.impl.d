lib/analyzers/events.ml: Bro_engine Bro_val Hilti_net Hilti_types Hilti_vm Int64 List Mini_bro Time_ns
