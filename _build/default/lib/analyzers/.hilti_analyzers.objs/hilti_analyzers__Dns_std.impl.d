lib/analyzers/dns_std.ml: Buffer Char Events List Printf String
