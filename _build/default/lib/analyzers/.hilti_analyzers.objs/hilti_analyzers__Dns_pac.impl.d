lib/analyzers/dns_pac.ml: Binpacxx Char Events Grammars Hilti_rt Hilti_vm Http_pac Int64 List Mini_bro Printf Runtime String
