lib/analyzers/str_replace.ml: Buffer String
