(** Event definitions shared by the standard and BinPAC++-based analyzers:
    both must raise byte-identical event streams (modulo the documented
    semantic differences of §6.4) into the Mini-Bro engine. *)

open Hilti_types
open Mini_bro

(** The Bro [connection] record value for a flow. *)
let connection_val ~uid ~(flow : Hilti_net.Flow.t) ~start_time : Bro_val.t =
  Bro_val.new_record "connection"
    [ ("uid", Bro_val.Vstring uid);
      ("start_time", Bro_val.Vtime start_time);
      ( "id",
        Bro_val.new_record "conn_id"
          [ ("orig_h", Bro_val.Vaddr flow.Hilti_net.Flow.src);
            ("orig_p", Bro_val.Vport flow.Hilti_net.Flow.src_port);
            ("resp_h", Bro_val.Vaddr flow.Hilti_net.Flow.dst);
            ("resp_p", Bro_val.Vport flow.Hilti_net.Flow.dst_port) ] ) ]

type http_request = {
  method_ : string;
  uri : string;
  version : string;
  host : string;
}

type http_reply = {
  r_version : string;
  code : int;
  reason : string;
  mime : string;
  body_len : int;
  body_sha1 : string;
}

type dns_request = { q_id : int; query : string; qtype : int }

type dns_reply = {
  r_id : int;
  rcode : int;
  answers : string list;
  ttls : int list;
}

(** A sink for analyzer events; the driver wires it to a Bro engine. *)
type sink = {
  raise_event : string -> Bro_val.t list -> unit;
  set_time : Time_ns.t -> unit;
}

let engine_sink (engine : Bro_engine.t) : sink =
  {
    raise_event = (fun name args -> Bro_engine.dispatch engine name args);
    set_time = (fun ts -> Bro_engine.set_network_time engine ts);
  }

let null_sink : sink = { raise_event = (fun _ _ -> ()); set_time = (fun _ -> ()) }

(* ---- Raising the concrete events -------------------------------------------- *)

let vstr s = Bro_val.Vstring s
let vcount i = Bro_val.Vcount (Int64.of_int i)

let raise_connection_established sink conn =
  sink.raise_event "connection_established" [ conn ]

let raise_connection_state_remove sink conn =
  sink.raise_event "connection_state_remove" [ conn ]

let raise_http_request sink conn (r : http_request) =
  sink.raise_event "http_request"
    [ conn; vstr r.method_; vstr r.uri; vstr r.version; vstr r.host ]

let raise_http_reply sink conn (r : http_reply) =
  sink.raise_event "http_reply"
    [ conn; vstr r.r_version; vcount r.code; vstr r.reason; vstr r.mime;
      vcount r.body_len; vstr r.body_sha1 ]

let raise_dns_request sink conn (r : dns_request) =
  sink.raise_event "dns_request" [ conn; vcount r.q_id; vstr r.query; vcount r.qtype ]

let raise_dns_reply sink conn (r : dns_reply) =
  sink.raise_event "dns_reply"
    [ conn; vcount r.r_id; vcount r.rcode;
      Bro_val.Vvector (Hilti_vm.Deque.of_list (List.map vstr r.answers));
      Bro_val.Vvector (Hilti_vm.Deque.of_list (List.map vcount r.ttls)) ]
