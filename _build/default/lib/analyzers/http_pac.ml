(** The BinPAC++-based HTTP analyzer: drives the HILTI-compiled HTTP
    parser over reassembled streams and turns parsed units into the same
    events the standard analyzer raises (§6.4).

    Events fire from {e inside} the parse, through hooks attached to the
    grammar's Request/Reply units (the event-configuration mechanism of
    Fig. 7(b)): each hook body calls back into the host, which converts
    the unit struct into event arguments — HILTI-to-Bro glue, profiled as
    such. *)

open Binpacxx
module V = Hilti_vm.Value

(* Struct-value access helpers. *)
let sfield st name =
  match st with
  | V.Struct s -> (
      match !(V.struct_field s name) with v -> v | exception _ -> None)
  | _ -> None

let sbytes st name =
  match sfield st name with
  | Some (V.Bytes b) -> Hilti_types.Hbytes.to_string b
  | _ -> ""

let slist st name =
  match sfield st name with
  | Some (V.List d) -> Hilti_vm.Deque.to_list d
  | _ -> []

(* Walk a Header-unit list for a (lowercase) name. *)
let find_header headers name =
  List.find_map
    (fun h ->
      if String.lowercase_ascii (sbytes h "name") = name then
        Some (sbytes h "value")
      else None)
    headers

let body_of st =
  (* body | chunks | body_close, whichever the grammar filled in *)
  match sfield st "body" with
  | Some (V.Bytes b) -> Hilti_types.Hbytes.to_string b
  | _ -> (
      match sfield st "chunks" with
      | Some (V.List d) ->
          String.concat ""
            (List.map (fun c -> sbytes c "data") (Hilti_vm.Deque.to_list d))
      | _ -> sbytes st "body_close")

let request_of_unit st : Events.http_request =
  let rl = Option.get (sfield st "request") in
  let version =
    match sfield rl "version" with Some v -> sbytes v "number" | None -> ""
  in
  {
    Events.method_ = sbytes rl "method";
    uri = sbytes rl "uri";
    version;
    host = Option.value ~default:"" (find_header (slist st "headers") "host");
  }

(* Field extraction is conversion glue; body reassembly and hashing are
   analysis work (the standard parser does the same in its parse path), so
   the caller computes them outside the glue window. *)
let reply_of_unit ~body ~sha st : Events.http_reply =
  let rl = Option.get (sfield st "reply") in
  let version =
    match sfield rl "version" with Some v -> sbytes v "number" | None -> ""
  in
  let code = int_of_string_opt (sbytes rl "status") |> Option.value ~default:0 in
  {
    Events.r_version = version;
    code;
    reason = sbytes rl "reason";
    mime =
      Option.value ~default:"-" (find_header (slist st "headers") "content-type");
    body_len = String.length body;
    body_sha1 = sha;
  }

(* ---- The loaded parser, shared across connections ---------------------------- *)

type t = {
  parser : Runtime.t;
  (* The driver points this at the connection being fed before resuming
     its fiber, so hook callbacks know whose event to raise. *)
  mutable current_conn : Mini_bro.Bro_val.t;
  mutable sink : Events.sink;
}

(** Load the HTTP grammar with event hooks attached (the ssh.evt
    equivalent for HTTP). *)
let load ?(optimize = true) () : t =
  let t_ref = ref None in
  let prepare (m : Module_ir.t) =
    (* Declare the host callbacks... *)
    List.iter
      (fun name ->
        Module_ir.add_func m
          {
            Module_ir.fname = name;
            params = [ ("self", Htype.Any) ];
            result = Htype.Void;
            locals = [];
            blocks = [];
            cc = Module_ir.Cc_c;
            hook_priority = 0;
            exported = true;
          })
      [ "Analyzer::http_request"; "Analyzer::http_reply" ];
    (* ...and attach hook bodies: on HTTP::Request -> host callback. *)
    let hook_body hook_name callback =
      let b =
        Builder.func m ~cc:Module_ir.Cc_hook hook_name
          ~params:[ ("self", Htype.Any) ]
          ~result:Htype.Void
      in
      Builder.call b callback [ Instr.Local "self" ];
      Builder.return_ b
    in
    hook_body "HTTP::Request" "Analyzer::http_request";
    hook_body "HTTP::Reply" "Analyzer::http_reply"
  in
  let parser = Runtime.load ~optimize ~prepare (Grammars.parse_http ()) in
  let t =
    { parser; current_conn = Mini_bro.Bro_val.Vvoid; sink = Events.null_sink }
  in
  t_ref := Some t;
  (* Converting a parsed unit struct into event arguments is the
     HILTI-to-Bro glue of §6.4 — profiled as such. *)
  let glue f =
    Hilti_rt.Profiler.time_exclusive Mini_bro.Bro_val.glue_profiler f
  in
  Hilti_vm.Host_api.register parser.Runtime.api "Analyzer::http_request"
    (fun args ->
      (match (args, !t_ref) with
      | [ st ], Some t ->
          let r = glue (fun () -> request_of_unit st) in
          Events.raise_http_request t.sink t.current_conn r
      | _ -> ());
      V.Null);
  Hilti_vm.Host_api.register parser.Runtime.api "Analyzer::http_reply"
    (fun args ->
      (match (args, !t_ref) with
      | [ st ], Some t ->
          let body = body_of st in
          let sha = if body = "" then "" else Mini_bro.Sha1.digest body in
          let r = glue (fun () -> reply_of_unit ~body ~sha st) in
          Events.raise_http_reply t.sink t.current_conn r
      | _ -> ());
      V.Null);
  t

(* ---- Per-connection-direction sessions ------------------------------------------ *)

type session = { t : t; conn : Mini_bro.Bro_val.t; s : Runtime.session }

let session t ~conn ~is_request =
  let unit_name = if is_request then "Requests" else "Replies" in
  { t; conn; s = Runtime.session t.parser ~unit_name }

let with_conn (ss : session) f =
  let saved_conn = ss.t.current_conn in
  ss.t.current_conn <- ss.conn;
  Fun.protect ~finally:(fun () -> ss.t.current_conn <- saved_conn) f

(** Feed reassembled stream data; events fire from inside the parse. *)
let feed (ss : session) data = with_conn ss (fun () -> ignore (Runtime.feed ss.s data))

let eof (ss : session) = with_conn ss (fun () -> ignore (Runtime.finish ss.s))
