(** Event configuration files (Fig. 7(b)): the declarative interface that
    connects BinPAC++ grammars to Bro events.

    An .evt file names the grammar, declares the protocol analyzer (top
    unit + trigger port), and maps unit hooks to events:

    {v
    grammar ssh.pac2;

    protocol analyzer SSH over TCP:
        parse with SSH::Banner,
        port 22/tcp;

    on SSH::Banner -> event ssh_banner(self.version, self.software);
    v}

    Loading an .evt attaches HILTI hook bodies to the grammar's units;
    when generated parsing code finishes a unit, the hook calls back into
    the engine, which converts the referenced fields to Bro values (glue)
    and dispatches the event — exactly the Fig. 7(d) workflow. *)

open Hilti_types

type event_binding = {
  unit_name : string;        (** without the module prefix *)
  event : string;
  args : string list;        (** field names of [self] *)
}

type t = {
  grammar_file : string;
  analyzer : string;
  transport : [ `Tcp | `Udp ];
  top_unit : string;
  port : Port.t;
  bindings : event_binding list;
}

exception Parse_error of string

(* ---- Parsing --------------------------------------------------------------------- *)

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokenize_words text =
  String.split_on_char '\n' text
  |> List.map strip_comment
  |> String.concat " "
  |> String.split_on_char ';'
  |> List.map String.trim
  |> List.filter (( <> ) "")

(* Split a statement into words on whitespace/commas/colons, while keeping
   :: namespaces intact ("SSH::Banner" is one word, "over TCP:" is two). *)
let words s =
  let protected =
    Str_replace.replace_all s ~pattern:"::" ~with_:"\x00"
  in
  String.split_on_char ' ' protected
  |> List.concat_map (String.split_on_char ',')
  |> List.concat_map (String.split_on_char ':')
  |> List.map String.trim
  |> List.filter (( <> ) "")
  |> List.map (fun w -> Str_replace.replace_all w ~pattern:"\x00" ~with_:"::")

let strip_self s =
  let p = "self." in
  if String.length s > 5 && String.sub s 0 5 = p then String.sub s 5 (String.length s - 5)
  else raise (Parse_error ("event argument must be self.<field>: " ^ s))

let local_unit name =
  match String.rindex_opt name ':' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name

(** Parse an event configuration (the contents of an .evt file). *)
let parse (text : string) : t =
  let stmts = tokenize_words text in
  let grammar_file = ref "" in
  let analyzer = ref "" in
  let transport = ref `Tcp in
  let top_unit = ref "" in
  let port = ref (Port.tcp 0) in
  let bindings = ref [] in
  List.iter
    (fun stmt ->
      match words stmt with
      | "grammar" :: file :: _ -> grammar_file := file
      | "protocol" :: "analyzer" :: name :: "over" :: proto :: rest ->
          analyzer := name;
          transport := (if String.uppercase_ascii proto = "UDP" then `Udp else `Tcp);
          (* "parse with X::Y , port N/tcp" *)
          let rec scan = function
            | "parse" :: "with" :: u :: rest ->
                top_unit := local_unit u;
                scan rest
            | "port" :: p :: rest ->
                port := Port.of_string p;
                scan rest
            | _ :: rest -> scan rest
            | [] -> ()
          in
          scan rest
      | "on" :: unit_name :: "->" :: "event" :: rest ->
          (* rest = name ( self.f1 self.f2 ... ) after tokenization; the
             parentheses are still glued to words. *)
          let flat = String.concat " " rest in
          let name, args =
            match String.index_opt flat '(' with
            | Some i ->
                let name = String.trim (String.sub flat 0 i) in
                let inner =
                  match String.rindex_opt flat ')' with
                  | Some j when j > i -> String.sub flat (i + 1) (j - i - 1)
                  | _ -> raise (Parse_error ("unbalanced parens: " ^ stmt))
                in
                ( name,
                  String.split_on_char ',' inner
                  |> List.concat_map (String.split_on_char ' ')
                  |> List.map String.trim
                  |> List.filter (( <> ) "")
                  |> List.map strip_self )
            | None -> (String.trim flat, [])
          in
          bindings :=
            { unit_name = local_unit unit_name; event = name; args } :: !bindings
      | [] -> ()
      | w :: _ -> raise (Parse_error ("unknown statement: " ^ w)))
    stmts;
  if !top_unit = "" then raise (Parse_error "missing 'parse with' clause");
  {
    grammar_file = !grammar_file;
    analyzer = !analyzer;
    transport = !transport;
    top_unit = !top_unit;
    port = !port;
    bindings = List.rev !bindings;
  }

(* ---- Loading: grammar + evt -> a parser that raises Bro events -------------------- *)

type loaded = {
  config : t;
  parser : Binpacxx.Runtime.t;
  mutable sink : Events.sink;
}

(** Compile [grammar] with the hook bodies the configuration requests;
    every triggered event lands in [sink] (settable later). *)
let load ?(optimize = true) (config : t) (grammar : Binpacxx.Ast.grammar) : loaded =
  let gname = grammar.Binpacxx.Ast.gname in
  let loaded = ref None in
  let prepare (m : Module_ir.t) =
    Module_ir.add_func m
      {
        Module_ir.fname = "Evt::raise";
        params = [ ("event", Htype.String); ("self", Htype.Any) ];
        result = Htype.Void;
        locals = [];
        blocks = [];
        cc = Module_ir.Cc_c;
        hook_priority = 0;
        exported = true;
      };
    List.iter
      (fun binding ->
        (* on <Unit> -> a hook body on <G>::<Unit>'s %done hook. *)
        let hook = gname ^ "::" ^ binding.unit_name in
        let b =
          Builder.func m ~cc:Module_ir.Cc_hook hook
            ~params:[ ("self", Htype.Any) ]
            ~result:Htype.Void
        in
        Builder.call b "Evt::raise"
          [ Builder.const_string binding.event; Instr.Local "self" ];
        Builder.return_ b)
      config.bindings
  in
  let parser = Binpacxx.Runtime.load ~optimize ~prepare grammar in
  let l = { config; parser; sink = Events.null_sink } in
  loaded := Some l;
  Hilti_vm.Host_api.register parser.Binpacxx.Runtime.api "Evt::raise" (fun args ->
      (match (args, !loaded) with
      | [ ev; st ], Some l ->
          let event =
            match ev with
            | Hilti_vm.Value.String s -> s
            | v -> Hilti_vm.Value.to_string v
          in
          (* Which binding fired?  Match by event name. *)
          (match
             List.find_opt (fun b -> b.event = event) l.config.bindings
           with
          | Some binding ->
              let field_vals =
                Hilti_rt.Profiler.time_exclusive Mini_bro.Bro_val.glue_profiler
                  (fun () ->
                    List.map
                      (fun f ->
                        match Http_pac.sfield st f with
                        | Some v -> Mini_bro.Bro_val.of_hilti_raw v
                        | None -> Mini_bro.Bro_val.Vstring "")
                      binding.args)
              in
              (* Fig. 7: the event carries exactly the declared
                 arguments. *)
              l.sink.Events.raise_event event field_vals
          | None -> ())
      | _ -> ());
      Hilti_vm.Value.Null);
  l

(** Parse one complete input (e.g. one direction of a connection),
    triggering the configured events into the sink. *)
let parse_input (l : loaded) (input : string) =
  match
    Binpacxx.Runtime.parse_string l.parser ~unit_name:l.config.top_unit input
  with
  | _ -> true
  | exception Binpacxx.Runtime.Parse_failed _ -> false
