(** Virtual threads and the cooperative scheduler (§3.2, §5).

    HILTI supplies applications with a large number of lightweight virtual
    threads identified by 64-bit integers; a runtime scheduler maps them to
    hardware threads via cooperative multitasking.  Virtual threads cannot
    share state: work is moved between them by scheduling jobs
    ([thread.schedule]), with arguments deep-copied by the caller (the VM
    layer performs the copy).

    This scheduler executes jobs first-come first-served per virtual
    thread, with round-robin service across threads holding pending work —
    deterministic, which the tests rely on.  Each virtual thread owns a
    context: its job queue, its own {!Timer_mgr}, and a scratch table of
    thread-local variables managed by the VM. *)

type job = { fn : unit -> unit; label : string }

type vthread = {
  id : int64;
  queue : job Queue.t;
  timers : Timer_mgr.t;
  locals : (string, Obj.t) Hashtbl.t;  (* thread-local slots, managed by VM *)
  mutable jobs_run : int;
}

type t = {
  threads : (int64, vthread) Hashtbl.t;
  mutable vthread_count : int;  (* stable stat *)
  mutable total_jobs : int;
  mutable running : bool;
  command_queue : job Queue.t;
      (** serialized operations executed between job steps, standing in for
          HILTI's dedicated manager thread (§5 "Runtime Library") *)
}

let create () =
  {
    threads = Hashtbl.create 64;
    vthread_count = 0;
    total_jobs = 0;
    running = false;
    command_queue = Queue.create ();
  }

let vthread t id =
  match Hashtbl.find_opt t.threads id with
  | Some vt -> vt
  | None ->
      let vt =
        {
          id;
          queue = Queue.create ();
          timers = Timer_mgr.create ();
          locals = Hashtbl.create 8;
          jobs_run = 0;
        }
      in
      Hashtbl.add t.threads id vt;
      t.vthread_count <- t.vthread_count + 1;
      vt

(** Schedule [fn] for asynchronous execution on virtual thread [id]
    ([thread.schedule]).  FIFO within a thread. *)
let schedule t id ?(label = "") fn =
  let vt = vthread t id in
  Queue.add { fn; label } vt.queue;
  t.total_jobs <- t.total_jobs + 1

(** Submit a serialized command (e.g. a file write) to the manager queue. *)
let command t ?(label = "cmd") fn = Queue.add { fn; label } t.command_queue

let pending t =
  Hashtbl.fold (fun _ vt acc -> acc + Queue.length vt.queue) t.threads 0
  + Queue.length t.command_queue

let drain_commands t =
  while not (Queue.is_empty t.command_queue) do
    (Queue.take t.command_queue).fn ()
  done

(** Run until all queues are empty.  Jobs may schedule further jobs.  Every
    job runs with its virtual thread's context current (see {!current}). *)
let current_vthread : vthread option ref = ref None

let current () = !current_vthread

let run_one_job vt =
  match Queue.take_opt vt.queue with
  | None -> false
  | Some job ->
      let saved = !current_vthread in
      current_vthread := Some vt;
      Fun.protect
        ~finally:(fun () -> current_vthread := saved)
        (fun () -> job.fn ());
      vt.jobs_run <- vt.jobs_run + 1;
      true

let run t =
  if t.running then invalid_arg "Scheduler.run: reentrant";
  t.running <- true;
  Fun.protect
    ~finally:(fun () -> t.running <- false)
    (fun () ->
      let progressed = ref true in
      while !progressed do
        progressed := false;
        drain_commands t;
        (* Deterministic round-robin: visit threads in id order. *)
        let ids =
          List.sort Int64.compare
            (Hashtbl.fold (fun id _ acc -> id :: acc) t.threads [])
        in
        List.iter
          (fun id ->
            let vt = Hashtbl.find t.threads id in
            if run_one_job vt then progressed := true)
          ids
      done;
      drain_commands t)

(** Advance every virtual thread's timer manager to [time] (global time
    advance broadcast). *)
let advance_time t time =
  Hashtbl.iter (fun _ vt -> ignore (Timer_mgr.advance vt.timers time)) t.threads

type stats = { vthreads : int; total_jobs : int }

let stats t = { vthreads = t.vthread_count; total_jobs = t.total_jobs }

(** The hash-based load-balancing helper the paper describes: map a flow
    key to a virtual thread id in [0, n). *)
let thread_for_hash ~threads hash =
  if threads <= 0 then invalid_arg "Scheduler.thread_for_hash";
  Int64.of_int (abs hash mod threads)
