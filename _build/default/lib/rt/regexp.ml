(** Regular expressions with incremental matching and simultaneous matching
    of multiple expressions (HILTI [regexp], §3.2).

    The engine compiles one or more patterns into a single Thompson NFA and
    executes it through a lazily-constructed DFA, the design HILTI's runtime
    uses so that token matching costs O(1) amortized per input byte.  A
    {!matcher} holds the DFA state across [feed] calls, enabling incremental
    matching over data that arrives in chunks: it reports [Need_more] when
    the outcome cannot be decided from the data seen so far.

    Supported syntax: literals, [.], escapes ([\n \r \t \0 \xNN \d \s \w]
    and escaped metacharacters), character classes with ranges and negation,
    alternation, grouping, and the postfix operators [* + ? {m,n}].
    Matching is anchored at the start position (BinPAC++ token semantics);
    unanchored search is layered on top. *)

(* ---- Pattern AST -------------------------------------------------------- *)

type cclass = (int * int) list  (* inclusive byte ranges, sorted *)

type ast =
  | Empty
  | Class of cclass
  | Seq of ast * ast
  | Alt of ast * ast
  | Star of ast
  | Plus of ast
  | Opt of ast
  | Repeat of ast * int * int option  (* {m,n}; None = unbounded *)

exception Parse_error of string

let any_class : cclass = [ (0, 255) ]

let negate (c : cclass) : cclass =
  let sorted = List.sort compare c in
  let rec go lo = function
    | [] -> if lo <= 255 then [ (lo, 255) ] else []
    | (a, b) :: rest ->
        let before = if lo < a then [ (lo, a - 1) ] else [] in
        before @ go (max lo (b + 1)) rest
  in
  go 0 sorted

let digit_class : cclass = [ (Char.code '0', Char.code '9') ]
let space_class : cclass = [ (9, 13); (32, 32) ]

let word_class : cclass =
  [ (Char.code '0', Char.code '9');
    (Char.code 'A', Char.code 'Z');
    (Char.code '_', Char.code '_');
    (Char.code 'a', Char.code 'z') ]

(* Recursive-descent pattern parser. *)
let parse_pattern (s : string) : ast =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at %d in /%s/" msg !pos s))
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad hex digit"
  in
  let parse_escape () : [ `Char of int | `Class of cclass ] =
    advance ();
    match peek () with
    | None -> fail "dangling escape"
    | Some c ->
        advance ();
        (match c with
        | 'n' -> `Char 10
        | 'r' -> `Char 13
        | 't' -> `Char 9
        | '0' -> `Char 0
        | 'a' -> `Char 7
        | 'f' -> `Char 12
        | 'v' -> `Char 11
        | 'd' -> `Class digit_class
        | 'D' -> `Class (negate digit_class)
        | 's' -> `Class space_class
        | 'S' -> `Class (negate space_class)
        | 'w' -> `Class word_class
        | 'W' -> `Class (negate word_class)
        | 'x' ->
            let digit () =
              match peek () with
              | Some c ->
                  advance ();
                  hex_digit c
              | None -> fail "bad \\x"
            in
            let h1 = digit () in
            let h2 = digit () in
            `Char ((h1 * 16) + h2)
        | c -> `Char (Char.code c))
  in
  let parse_class () : cclass =
    advance ();  (* consume '[' *)
    let negated =
      match peek () with
      | Some '^' ->
          advance ();
          true
      | _ -> false
    in
    let ranges = ref [] in
    let first = ref true in
    let item () : int =
      match peek () with
      | Some '\\' -> (
          match parse_escape () with
          | `Char c -> c
          | `Class cc ->
              ranges := cc @ !ranges;
              -1)
      | Some c ->
          advance ();
          Char.code c
      | None -> fail "unterminated class"
    in
    let rec loop () =
      match peek () with
      | Some ']' when not !first -> advance ()
      | None -> fail "unterminated class"
      | _ ->
          first := false;
          let lo = item () in
          if lo >= 0 then begin
            match peek () with
            | Some '-' when !pos + 1 < n && s.[!pos + 1] <> ']' ->
                advance ();
                let hi = item () in
                if hi < 0 || hi < lo then fail "bad range";
                ranges := (lo, hi) :: !ranges
            | _ -> ranges := (lo, lo) :: !ranges
          end;
          loop ()
    in
    loop ();
    let c = List.sort compare !ranges in
    if negated then negate c else c
  in
  let rec parse_alt () =
    let left = parse_seq () in
    match peek () with
    | Some '|' ->
        advance ();
        Alt (left, parse_alt ())
    | _ -> left
  and parse_seq () =
    let rec go acc =
      match peek () with
      | None | Some '|' | Some ')' -> acc
      | _ -> go (Seq (acc, parse_postfix ()))
    in
    match peek () with
    | None | Some '|' | Some ')' -> Empty
    | _ -> go (parse_postfix ())
  and parse_postfix () =
    let atom = parse_atom () in
    let rec apply atom =
      match peek () with
      | Some '*' ->
          advance ();
          apply (Star atom)
      | Some '+' ->
          advance ();
          apply (Plus atom)
      | Some '?' ->
          advance ();
          apply (Opt atom)
      | Some '{' ->
          advance ();
          let num () =
            let start = !pos in
            while (match peek () with Some '0' .. '9' -> true | _ -> false) do
              advance ()
            done;
            if !pos = start then None
            else Some (int_of_string (String.sub s start (!pos - start)))
          in
          let m = match num () with Some m -> m | None -> fail "bad {m,n}" in
          let upper =
            match peek () with
            | Some ',' ->
                advance ();
                num ()
            | _ -> Some m
          in
          (match peek () with
          | Some '}' -> advance ()
          | _ -> fail "bad {m,n}");
          (match upper with
          | Some u when u < m -> fail "bad {m,n}"
          | _ -> ());
          apply (Repeat (atom, m, upper))
      | _ -> atom
    in
    apply atom
  and parse_atom () =
    match peek () with
    | Some '(' ->
        advance ();
        let inner = parse_alt () in
        (match peek () with
        | Some ')' -> advance ()
        | _ -> fail "unbalanced parenthesis");
        inner
    | Some '[' -> Class (parse_class ())
    | Some '.' ->
        advance ();
        Class any_class
    | Some '\\' -> (
        match parse_escape () with
        | `Char c -> Class [ (c, c) ]
        | `Class cc -> Class cc)
    | Some ('*' | '+' | '?') -> fail "dangling quantifier"
    | Some ')' -> fail "unbalanced parenthesis"
    | Some '^' ->
        (* Patterns are anchored by construction; a leading ^ is a no-op. *)
        advance ();
        Empty
    | Some c ->
        advance ();
        Class [ (Char.code c, Char.code c) ]
    | None -> Empty
  in
  let ast = parse_alt () in
  if !pos <> n then fail "trailing input";
  ast

(* ---- Thompson NFA -------------------------------------------------------- *)

type nfa = {
  mutable eps : int list array;               (* epsilon edges *)
  mutable trans : (cclass * int) list array;  (* byte-class edges *)
  mutable accept : int array;                 (* pattern id or -1 *)
  mutable nstates : int;
}

let new_nfa () =
  { eps = Array.make 64 []; trans = Array.make 64 []; accept = Array.make 64 (-1); nstates = 0 }

let new_state nfa =
  if nfa.nstates = Array.length nfa.eps then begin
    let grow a fill =
      let b = Array.make (2 * Array.length a) fill in
      Array.blit a 0 b 0 (Array.length a);
      b
    in
    nfa.eps <- grow nfa.eps [];
    nfa.trans <- grow nfa.trans [];
    nfa.accept <- grow nfa.accept (-1)
  end;
  let s = nfa.nstates in
  nfa.nstates <- s + 1;
  s

let add_eps nfa a b = nfa.eps.(a) <- b :: nfa.eps.(a)
let add_trans nfa a cls b = nfa.trans.(a) <- (cls, b) :: nfa.trans.(a)

(* Compile the AST into the NFA; returns (entry, exit) states. *)
let rec build nfa = function
  | Empty ->
      let s = new_state nfa in
      (s, s)
  | Class c ->
      let a = new_state nfa and b = new_state nfa in
      add_trans nfa a c b;
      (a, b)
  | Seq (x, y) ->
      let ax, bx = build nfa x in
      let ay, by = build nfa y in
      add_eps nfa bx ay;
      (ax, by)
  | Alt (x, y) ->
      let a = new_state nfa and b = new_state nfa in
      let ax, bx = build nfa x in
      let ay, by = build nfa y in
      add_eps nfa a ax;
      add_eps nfa a ay;
      add_eps nfa bx b;
      add_eps nfa by b;
      (a, b)
  | Star x ->
      let a = new_state nfa and b = new_state nfa in
      let ax, bx = build nfa x in
      add_eps nfa a ax;
      add_eps nfa a b;
      add_eps nfa bx ax;
      add_eps nfa bx b;
      (a, b)
  | Plus x -> build nfa (Seq (x, Star x))
  | Opt x -> build nfa (Alt (x, Empty))
  | Repeat (x, m, upper) ->
      let required = List.init m (fun _ -> x) in
      let tail =
        match upper with
        | None -> [ Star x ]
        | Some u -> List.init (u - m) (fun _ -> Opt x)
      in
      let parts = required @ tail in
      build nfa (List.fold_left (fun acc p -> Seq (acc, p)) Empty parts)

(* ---- Lazy DFA ------------------------------------------------------------ *)

type dfa_state = {
  nfa_states : int list;  (* sorted *)
  accept_id : int;        (* lowest accepting pattern id, or -1 *)
  edges : dfa_state option array;  (* 256 lazily-computed successors *)
  dead : bool;
  no_exit : bool;
      (* No byte can extend any contained NFA state: the outcome is
         decidable without further input (e.g. /\r?\n/ after "\r\n"). *)
}

type t = {
  patterns : string array;
  nfa : nfa;
  cache : (string, dfa_state) Hashtbl.t;
  start : dfa_state;
  mutable dfa_states_built : int;
}

let eps_closure nfa states =
  let seen = Hashtbl.create 16 in
  let rec go s =
    if not (Hashtbl.mem seen s) then begin
      Hashtbl.add seen s ();
      List.iter go nfa.eps.(s)
    end
  in
  List.iter go states;
  List.sort Int.compare (Hashtbl.fold (fun s () acc -> s :: acc) seen [])

let state_key states = String.concat "," (List.map string_of_int states)

let intern_raw nfa cache states =
  let key = state_key states in
  match Hashtbl.find_opt cache key with
  | Some d -> (d, false)
  | None ->
      let accept_id =
        List.fold_left
          (fun acc s ->
            let a = nfa.accept.(s) in
            if a >= 0 && (acc < 0 || a < acc) then a else acc)
          (-1) states
      in
      let no_exit = List.for_all (fun s -> nfa.trans.(s) = []) states in
      let d =
        { nfa_states = states; accept_id; edges = Array.make 256 None;
          dead = states = []; no_exit }
      in
      Hashtbl.add cache key d;
      (d, true)

(** Compile a list of patterns into one joint automaton; pattern indices are
    the match ids reported by the matcher (first pattern = id 0, and lower
    ids win ties, matching HILTI's multi-pattern semantics). *)
let compile patterns =
  if patterns = [] then invalid_arg "Regexp.compile";
  let nfa = new_nfa () in
  let starts =
    List.mapi
      (fun id p ->
        let ast = parse_pattern p in
        let a, b = build nfa ast in
        nfa.accept.(b) <- id;
        a)
      patterns
  in
  let cache = Hashtbl.create 64 in
  let start, _ = intern_raw nfa cache (eps_closure nfa starts) in
  { patterns = Array.of_list patterns; nfa; cache; start; dfa_states_built = 1 }

let compile_one pattern = compile [ pattern ]

let patterns t = Array.to_list t.patterns

let class_contains byte (c : cclass) =
  List.exists (fun (lo, hi) -> byte >= lo && byte <= hi) c

let step t (d : dfa_state) byte =
  match d.edges.(byte) with
  | Some d' -> d'
  | None ->
      let targets =
        List.concat_map
          (fun s ->
            List.filter_map
              (fun (cls, tgt) -> if class_contains byte cls then Some tgt else None)
              t.nfa.trans.(s))
          d.nfa_states
      in
      let closed = eps_closure t.nfa targets in
      let d', fresh = intern_raw t.nfa t.cache closed in
      if fresh then t.dfa_states_built <- t.dfa_states_built + 1;
      d.edges.(byte) <- Some d';
      d'

let dfa_states_built t = t.dfa_states_built

(* ---- Incremental matcher -------------------------------------------------- *)

type matcher = {
  re : t;
  mutable state : dfa_state;
  mutable consumed : int;                 (* total bytes fed so far *)
  mutable last_accept : (int * int) option;  (* (pattern id, match length) *)
}

type outcome =
  | Match of int * int  (** (pattern id, length of longest match) *)
  | No_match
  | Need_more           (** undecidable without more input *)

let matcher t =
  let m = { re = t; state = t.start; consumed = 0; last_accept = None } in
  if t.start.accept_id >= 0 then m.last_accept <- Some (t.start.accept_id, 0);
  m

let reset m =
  m.state <- m.re.start;
  m.consumed <- 0;
  m.last_accept <-
    (if m.re.start.accept_id >= 0 then Some (m.re.start.accept_id, 0) else None)

let is_dead m = m.state.dead

(** Feed [len] bytes of [s] starting at [off].  Stops early once the
    automaton is dead.  Returns the number of bytes actually consumed. *)
let feed m s off len =
  let i = ref 0 in
  let continue = ref true in
  while !continue && !i < len do
    let st = step m.re m.state (Char.code (String.unsafe_get s (off + !i))) in
    m.state <- st;
    incr i;
    m.consumed <- m.consumed + 1;
    if st.accept_id >= 0 then m.last_accept <- Some (st.accept_id, m.consumed);
    if st.dead then continue := false
  done;
  !i

(** Decide the outcome.  [final] declares that no more input will arrive. *)
let result m ~final =
  if m.state.dead || m.state.no_exit || final then
    match m.last_accept with Some (id, len) -> Match (id, len) | None -> No_match
  else Need_more

(* ---- Convenience wrappers ------------------------------------------------- *)

(** Longest anchored match of [t] against [s] at [pos]. *)
let match_anchored t s ~pos =
  let m = matcher t in
  let _ = feed m s pos (String.length s - pos) in
  match result m ~final:true with Match (id, len) -> Some (id, len) | _ -> None

(** True iff [t] matches the whole of [s]. *)
let match_full t s =
  match match_anchored t s ~pos:0 with
  | Some (_, len) -> len = String.length s
  | None -> false

(** First (leftmost) match anywhere in [s] at or after [pos]:
    [(start, id, len)]. *)
let search t s ~pos =
  let n = String.length s in
  let rec scan p =
    if p > n then None
    else
      match match_anchored t s ~pos:p with
      | Some (id, len) -> Some (p, id, len)
      | None -> scan (p + 1)
  in
  scan pos

(** True iff [t] matches somewhere inside [s]. *)
let contains t s = search t s ~pos:0 <> None
