(** File output (HILTI [file]).

    Writes can be routed through a {!Scheduler} command queue so that
    multiple virtual threads emit to the same file without interleaving
    partial lines — the serialization mechanism §5 describes.  For testing,
    files can also be purely in-memory sinks. *)

type sink = Disk of out_channel | Memory of Buffer.t

type t = {
  path : string;
  mutable sink : sink option;
  mutable bytes_written : int;
  serializer : Scheduler.t option;
}

exception Closed of string

let open_disk ?serializer path =
  { path; sink = Some (Disk (open_out path)); bytes_written = 0; serializer }

let open_memory ?serializer path =
  { path; sink = Some (Memory (Buffer.create 256)); bytes_written = 0; serializer }

let path t = t.path
let bytes_written t = t.bytes_written

let do_write t s =
  match t.sink with
  | None -> raise (Closed t.path)
  | Some (Disk oc) ->
      output_string oc s;
      t.bytes_written <- t.bytes_written + String.length s
  | Some (Memory buf) ->
      Buffer.add_string buf s;
      t.bytes_written <- t.bytes_written + String.length s

(** Write a string; serialized through the scheduler's command queue when
    one is attached. *)
let write t s =
  match t.serializer with
  | Some sched -> Scheduler.command sched ~label:("write " ^ t.path) (fun () -> do_write t s)
  | None -> do_write t s

let write_line t s = write t (s ^ "\n")

(** Contents so far (memory sinks only). *)
let contents t =
  match t.sink with
  | Some (Memory buf) -> Buffer.contents buf
  | _ -> invalid_arg "Hfile.contents: not a memory sink"

let close t =
  (match t.sink with
  | Some (Disk oc) -> close_out oc
  | Some (Memory _) | None -> ());
  t.sink <- None
