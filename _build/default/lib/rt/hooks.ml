(** Hooks: functions with multiple bodies (HILTI [hook], §3.2, §5).

    A hook is a named callback slot to which any number of bodies can
    attach, each with a priority; running the hook executes every body in
    descending priority order.  Host applications use hooks for
    non-intrusive callbacks (BinPAC++ field hooks, Bro event handlers
    compile to hooks, Fig. 8).  Cross-compilation-unit hook merging is what
    HILTI's custom linker performs; {!Registry.merge} plays that role
    here. *)

type 'a body = { priority : int; seq : int; fn : 'a -> unit }

type 'a hook = { name : string; mutable bodies : 'a body list }

let create name = { name; bodies = [] }

let name h = h.name

let body_order a b =
  let c = Int.compare b.priority a.priority in
  if c <> 0 then c else Int.compare a.seq b.seq

let seq_counter = ref 0

(** Attach a body.  Higher priorities run first; equal priorities run in
    attachment order. *)
let add ?(priority = 0) h fn =
  incr seq_counter;
  h.bodies <- List.sort body_order ({ priority; seq = !seq_counter; fn } :: h.bodies)

let body_count h = List.length h.bodies

(** Run all bodies on [arg]. *)
let run h arg = List.iter (fun b -> b.fn arg) h.bodies

(** Run bodies until [pred] holds on the hook's side effects: HILTI hooks
    can short-circuit via [hook.stop]; we model that with bodies raising
    [Stop]. *)
exception Stop

let run_stoppable h arg =
  try
    List.iter (fun b -> b.fn arg) h.bodies;
    false
  with Stop -> true

(** A registry maps hook names to hooks, merging attachments from multiple
    compilation units. *)
module Registry = struct
  type 'a t = (string, 'a hook) Hashtbl.t

  let create () : 'a t = Hashtbl.create 16

  let find_or_create (t : 'a t) name =
    match Hashtbl.find_opt t name with
    | Some h -> h
    | None ->
        let h = { name; bodies = [] } in
        Hashtbl.add t name h;
        h

  let add ?priority (t : 'a t) name fn = add ?priority (find_or_create t name) fn

  let run (t : 'a t) name arg =
    match Hashtbl.find_opt t name with Some h -> run h arg | None -> ()

  (** Merge all hooks of [src] into [dst] (the linker's cross-unit step). *)
  let merge ~dst ~src =
    Hashtbl.iter
      (fun name (h : 'a hook) ->
        let target = find_or_create dst name in
        List.iter
          (fun b -> target.bodies <- List.sort body_order (b :: target.bodies))
          h.bodies)
      src

  let names (t : 'a t) = Hashtbl.fold (fun k _ acc -> k :: acc) t []
end
